/**
 * @file
 * E1 — Automaton size vs mismatch budget (paper Fig. "automaton
 * design" / design-size table). Compares the mismatch-matrix design
 * (states grow O(L*d)) with the AP counter design (O(L) STEs plus one
 * counter and one gate), per guide pattern (20-nt guide + NRG PAM).
 */

#include <cstdio>

#include "workloads.hpp"

#include "ap/machine.hpp"
#include "automata/builders.hpp"
#include "common/cli.hpp"

using namespace crispr;

int
main(int argc, char **argv)
{
    Cli cli("E1: automaton size per guide vs mismatch budget");
    cli.addInt("max-d", 6, "largest mismatch budget");
    if (!cli.parse(argc, argv))
        return 0;

    bench::printBanner(
        "E1", "automaton size per guide pattern vs mismatch budget",
        "matrix design grows ~2L states per extra mismatch; the "
        "AP counter design is flat in d");

    auto guides = core::randomGuides(1, 20, 7);
    Table table({"d", "matrix states", "matrix edges", "counter STEs",
                 "counters", "gates", "matrix/counter"});

    for (int d = 0; d <= cli.getInt("max-d"); ++d) {
        core::PatternSet site = core::buildPatternSet(
            guides, core::pamNRG(), d, false);
        automata::Nfa matrix =
            automata::buildHammingNfa(site.patterns[0].spec);
        automata::NfaStats ms = automata::computeStats(matrix);

        core::PatternSet pf = core::buildPatternSet(
            guides, core::pamNRG(), d, false,
            core::Orientation::PamFirst);
        ap::ApMachine counter =
            ap::buildCounterMachine(pf.patterns[0].spec);
        ap::MachineStats cs = counter.stats();

        table.row()
            .add(d)
            .add(static_cast<uint64_t>(ms.states))
            .add(static_cast<uint64_t>(ms.edges))
            .add(static_cast<uint64_t>(cs.stes))
            .add(static_cast<uint64_t>(cs.counters))
            .add(static_cast<uint64_t>(cs.gates))
            .add(static_cast<double>(ms.states) /
                     static_cast<double>(cs.stes),
                 2);
    }
    std::printf("%s", table.str().c_str());
    std::printf("closed-form check: hammingNfaStates(23, d, 0, 20) "
                "matches the built automata (see tests).\n");
    return 0;
}
