/**
 * @file
 * E12 — Engine micro-throughput (google-benchmark): bytes/second of
 * every scan path on a fixed 1 MB genome, isolating per-engine scan
 * cost from compilation and orchestration.
 */

#include <benchmark/benchmark.h>

#include "workloads.hpp"

#include "ap/simulator.hpp"
#include "automata/builders.hpp"
#include "automata/dfa.hpp"
#include "baselines/brute.hpp"
#include "baselines/casoffinder.hpp"
#include "baselines/casot.hpp"
#include "fpga/fabric.hpp"
#include "gpu/infant2.hpp"
#include "hscan/multipattern.hpp"
#include "hscan/parallel.hpp"
#include "hscan/prefilter.hpp"

using namespace crispr;

namespace {

constexpr size_t kGenomeLen = 1 << 20;

const bench::Workload &
fixedWorkload()
{
    static bench::Workload w = bench::makeWorkload(kGenomeLen, 4, 71);
    return w;
}

core::PatternSet
patterns(int d)
{
    return core::buildPatternSet(fixedWorkload().guides, core::pamNRG(),
                                 d, true);
}

void
reportBytes(benchmark::State &state)
{
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations()) * kGenomeLen);
}

void
BM_HscanDfa(benchmark::State &state)
{
    const int d = static_cast<int>(state.range(0));
    hscan::DatabaseOptions opts;
    opts.mode = hscan::ScanMode::Dfa;
    opts.maxDfaStates = 1u << 20;
    hscan::Database db = hscan::Database::compile(
        patterns(d).specsForStream(false), opts);
    hscan::Scanner scanner(db);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            scanner.scanAll(fixedWorkload().genome));
    reportBytes(state);
}
BENCHMARK(BM_HscanDfa)->Arg(0)->Arg(1);

void
BM_HscanBitParallel(benchmark::State &state)
{
    const int d = static_cast<int>(state.range(0));
    hscan::DatabaseOptions opts;
    opts.mode = hscan::ScanMode::BitParallel;
    hscan::Database db = hscan::Database::compile(
        patterns(d).specsForStream(false), opts);
    hscan::Scanner scanner(db);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            scanner.scanAll(fixedWorkload().genome));
    reportBytes(state);
}
BENCHMARK(BM_HscanBitParallel)->Arg(1)->Arg(3)->Arg(5);

void
BM_NfaInterpreter(benchmark::State &state)
{
    const int d = static_cast<int>(state.range(0));
    std::vector<automata::Nfa> nfas;
    for (const core::Pattern &p : patterns(d).patterns)
        nfas.push_back(automata::buildHammingNfa(p.spec));
    automata::Nfa u = automata::unionNfas(nfas);
    automata::NfaInterpreter interp(u);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            interp.scanAll(fixedWorkload().genome));
    reportBytes(state);
}
BENCHMARK(BM_NfaInterpreter)->Arg(1)->Arg(3);

void
BM_ApCycleSim(benchmark::State &state)
{
    const int d = static_cast<int>(state.range(0));
    std::vector<automata::Nfa> nfas;
    for (const core::Pattern &p : patterns(d).patterns)
        nfas.push_back(automata::buildHammingNfa(p.spec));
    automata::Nfa u = automata::unionNfas(nfas);
    ap::ApMachine machine = ap::fromNfa(u);
    ap::ApSimulator sim(machine);
    for (auto _ : state)
        benchmark::DoNotOptimize(sim.scanAll(fixedWorkload().genome));
    reportBytes(state);
}
BENCHMARK(BM_ApCycleSim)->Arg(1)->Arg(3);

void
BM_Infant2Functional(benchmark::State &state)
{
    const int d = static_cast<int>(state.range(0));
    std::vector<automata::Nfa> nfas;
    for (const core::Pattern &p : patterns(d).patterns)
        nfas.push_back(automata::buildHammingNfa(p.spec));
    automata::Nfa u = automata::unionNfas(nfas);
    gpu::Infant2Engine engine(u);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            engine.scanAll(fixedWorkload().genome));
    reportBytes(state);
}
BENCHMARK(BM_Infant2Functional)->Arg(1)->Arg(3);

void
BM_CasOffinderHost(benchmark::State &state)
{
    const int d = static_cast<int>(state.range(0));
    auto specs = patterns(d).specsForStream(false);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            baselines::casOffinderScan(fixedWorkload().genome, specs));
    }
    reportBytes(state);
}
BENCHMARK(BM_CasOffinderHost)->Arg(1)->Arg(3);

void
BM_CasOtDirect(benchmark::State &state)
{
    const int d = static_cast<int>(state.range(0));
    auto specs = patterns(d).specsForStream(false);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            baselines::casOtScan(fixedWorkload().genome, specs, {}));
    }
    reportBytes(state);
}
BENCHMARK(BM_CasOtDirect)->Arg(1)->Arg(3);

void
BM_BruteForce(benchmark::State &state)
{
    const int d = static_cast<int>(state.range(0));
    auto specs = patterns(d).specsForStream(false);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            baselines::bruteForceScan(fixedWorkload().genome, specs));
    }
    reportBytes(state);
}
BENCHMARK(BM_BruteForce)->Arg(1)->Arg(3);

void
BM_HscanPrefilter(benchmark::State &state)
{
    const int d = static_cast<int>(state.range(0));
    hscan::PrefilterMatcher matcher(
        patterns(d).specsForStream(false));
    for (auto _ : state)
        benchmark::DoNotOptimize(
            matcher.scanAll(fixedWorkload().genome));
    reportBytes(state);
}
BENCHMARK(BM_HscanPrefilter)->Arg(1)->Arg(3)->Arg(5);

void
BM_ParallelScan(benchmark::State &state)
{
    const unsigned threads = static_cast<unsigned>(state.range(0));
    hscan::Database db = hscan::Database::compile(
        patterns(3).specsForStream(false));
    hscan::ParallelOptions opts;
    opts.threads = threads;
    opts.chunkSize = 128 << 10;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            hscan::parallelScan(db, fixedWorkload().genome, opts));
    }
    reportBytes(state);
}
BENCHMARK(BM_ParallelScan)->Arg(1)->Arg(2)->Arg(4);

void
BM_DatabaseCompile(benchmark::State &state)
{
    const int d = static_cast<int>(state.range(0));
    auto specs = patterns(d).specsForStream(false);
    for (auto _ : state) {
        benchmark::DoNotOptimize(hscan::Database::compile(specs));
    }
}
BENCHMARK(BM_DatabaseCompile)->Arg(1)->Arg(3);

} // namespace

BENCHMARK_MAIN();
