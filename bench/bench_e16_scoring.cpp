/**
 * @file
 * E16 — in-scan scoring overhead and ranked-report throughput. Three
 * questions, one workload:
 *  1. What does in-scan position-weighted scoring cost? (scored scan
 *     throughput vs the boolean baseline; bar: >= 0.8x)
 *  2. Is the integrated ranked path (scored scan + topK) faster than
 *     the naive pipeline — boolean scan, then post-hoc re-walking
 *     every hit through hitMismatchPositions()/sitePenalty(), then
 *     sorting? (bar: faster at 1000 guides)
 *  3. Do the two pipelines agree? The ranked listings must be
 *     bit-identical (fatal on divergence — this is the conformance
 *     property, re-checked on benchmark-scale workloads).
 *
 * Emits a BENCH_e16_scoring.json row (see --json) for CI trend
 * tracking.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "core/engine_registry.hpp"
#include "core/score.hpp"
#include "core/session.hpp"
#include "workloads.hpp"

using namespace crispr;

namespace {

double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** The naive pipeline's rescoring step: re-walk every hit through the
 *  post-hoc primitives and rank the scored copies. */
std::vector<core::OffTargetHit>
postHocRank(const genome::Sequence &genome,
            const core::SearchResult &result, size_t top_k)
{
    std::vector<core::OffTargetHit> scored = result.hits;
    for (core::OffTargetHit &hit : scored) {
        const std::vector<size_t> positions =
            core::hitMismatchPositions(genome, result.patterns, hit);
        hit.mismatchMask = core::mismatchPositionsToMask(positions);
        hit.penalty = core::sitePenalty(
            positions, result.patterns.guideLength);
    }
    return core::rankHits(scored, 0.0, top_k);
}

} // namespace

int
main(int argc, char **argv)
{
    Cli cli("E16: in-scan scoring overhead + ranked-report throughput");
    cli.addInt("genome-mb", 1, "genome size in MB");
    cli.addInt("guides", 1000, "guide set size");
    cli.addInt("d", 3, "mismatch budget");
    cli.addInt("top-k", 100, "ranked report size");
    cli.addInt("family", 50,
               "guides per family (single-base variants of a shared "
               "core, so planted sites match many guides — the "
               "hit-dense regime where ranked reports matter)");
    cli.addInt("plant-percent", 50,
               "percentage of site slots planted with near-miss "
               "sites of the family cores");
    cli.addInt("reps", 5, "repetitions per measurement (median)");
    cli.addString("engine", "hscan", "engine name (see registry)");
    cli.addString("json", "BENCH_e16_scoring.json",
                  "output path of the JSON result row");
    if (!cli.parse(argc, argv))
        return 0;

    const size_t genome_mb =
        static_cast<size_t>(cli.getInt("genome-mb"));
    const size_t num_guides = static_cast<size_t>(cli.getInt("guides"));
    const int d = static_cast<int>(cli.getInt("d"));
    const size_t top_k = static_cast<size_t>(cli.getInt("top-k"));
    const size_t family =
        std::max<size_t>(1, static_cast<size_t>(cli.getInt("family")));
    const int plant_percent =
        static_cast<int>(cli.getInt("plant-percent"));
    const int reps = std::max(1, static_cast<int>(cli.getInt("reps")));
    const std::string engine_name = cli.getString("engine");
    const std::string json_path = cli.getString("json");

    const core::Engine *engine =
        core::EngineRegistry::instance().findByName(engine_name);
    if (!engine)
        fatal("unknown engine: %s", engine_name.c_str());

    bench::printBanner(
        "E16",
        strprintf("scored automata — %zu MB genome, %zu guides, d=%d, "
                  "top-%zu, engine=%s",
                  genome_mb, num_guides, d, top_k, engine->name()),
        "position-weighted penalties computed in-scan, ranked "
        "reports without a rescoring pass");

    // Guide families over a salted genome: each family is one random
    // 20-nt core plus single-base variants of it, and near-miss copies
    // of the cores (0..d mismatches, NGG PAM) are planted across the
    // genome — so one planted site matches many family members at
    // once. This is the hit-dense regime where ranked reports matter
    // (nobody reads an 800k-row flat listing) and where per-hit
    // scoring cost is actually visible next to the scan; sparse
    // random-background workloads measure nothing but scan noise.
    bench::Workload base_workload =
        bench::makeWorkload(genome_mb << 20, 1);
    bench::Workload w;
    w.genome = std::move(base_workload.genome);
    const double genome_mb_f =
        static_cast<double>(w.genome.size()) / 1e6;

    Rng rng(7);
    std::vector<genome::Sequence> cores;
    while (w.guides.size() < num_guides) {
        cores.push_back(genome::randomGuide(rng, 20));
        for (size_t v = 0;
             v < family && w.guides.size() < num_guides; ++v) {
            genome::Sequence variant = cores.back();
            if (v > 0) {
                const size_t p = rng.below(20);
                variant[p] = static_cast<uint8_t>(
                    (variant[p] + 1 + rng.below(3)) & 3);
            }
            w.guides.push_back(core::makeGuide(
                "g" + std::to_string(w.guides.size()),
                variant.str()));
        }
    }
    size_t planted = 0;
    {
        const size_t site_len = 23;
        for (size_t at = 0; at + site_len <= w.genome.size();
             at += site_len + 1) {
            if (!rng.chance(plant_percent / 100.0))
                continue;
            genome::Sequence site = cores[planted % cores.size()];
            site.append(genome::Sequence::fromString("AGG"));
            genome::plantSite(
                w.genome, at,
                genome::mutateSite(site,
                                   static_cast<int>(rng.below(
                                       static_cast<size_t>(d) + 1)),
                                   0, 20, rng));
            ++planted;
        }
    }
    std::printf("%zu families x %zu variants, %zu planted sites\n",
                cores.size(), family, planted);

    core::SearchConfig config;
    config.engine = engine->kind();
    config.maxMismatches = d;
    config.params = bench::defaultParams();
    core::SearchSession session(w.guides, config);

    core::SearchConfig boolean_cfg = config;
    boolean_cfg.inScanScores = false;
    core::SearchConfig scored_cfg = config; // inScanScores defaults on
    core::SearchConfig ranked_cfg = config;
    ranked_cfg.topK = top_k;

    // Compile outside every timer: all three configs share one
    // compilation (ranked knobs are runtime options). All four
    // pipelines are measured interleaved within each rep so machine
    // drift hits every side alike; the row value is the per-pipeline
    // median.
    core::SearchResult boolean_result = session.search(w.genome,
                                                       boolean_cfg);
    core::SearchResult scored_result;
    core::SearchResult ranked_result;
    std::vector<core::OffTargetHit> posthoc_ranked;
    std::vector<double> boolean_times, scored_times, ranked_times,
        posthoc_times;
    for (int rep = 0; rep < reps; ++rep) {
        double start = now();
        boolean_result = session.search(w.genome, boolean_cfg);
        boolean_times.push_back(now() - start);

        start = now();
        scored_result = session.search(w.genome, scored_cfg);
        scored_times.push_back(now() - start);

        start = now();
        ranked_result = session.search(w.genome, ranked_cfg);
        ranked_times.push_back(now() - start);

        // The naive pipeline: full boolean scan, then re-walk every
        // hit through the post-hoc primitives, then rank.
        start = now();
        const core::SearchResult base =
            session.search(w.genome, boolean_cfg);
        posthoc_ranked = postHocRank(w.genome, base, top_k);
        posthoc_times.push_back(now() - start);
    }
    if (scored_result.hits.size() != boolean_result.hits.size())
        fatal("scored scan changed the hit count (%zu vs %zu)",
              scored_result.hits.size(), boolean_result.hits.size());
    const auto median = [](std::vector<double> &times) {
        std::sort(times.begin(), times.end());
        return times[times.size() / 2];
    };
    const double boolean_s = median(boolean_times);
    const double scored_s = median(scored_times);
    const double ranked_s = median(ranked_times);
    const double posthoc_s = median(posthoc_times);
    if (ranked_result.ranked != posthoc_ranked)
        fatal("integrated ranked listing diverged from the post-hoc "
              "pipeline (%zu vs %zu entries)",
              ranked_result.ranked.size(), posthoc_ranked.size());

    const double boolean_mbps = genome_mb_f / boolean_s;
    const double scored_mbps = genome_mb_f / scored_s;
    const double scored_ratio = scored_mbps / boolean_mbps;
    const double ranked_speedup = posthoc_s / ranked_s;

    Table table({"pipeline", "seconds", "MB/s", "hits", "ranked"});
    table.row()
        .add("boolean scan")
        .add(boolean_s, 3)
        .add(boolean_mbps, 1)
        .add(static_cast<uint64_t>(boolean_result.hits.size()))
        .add("-");
    table.row()
        .add("scored scan")
        .add(scored_s, 3)
        .add(scored_mbps, 1)
        .add(static_cast<uint64_t>(scored_result.hits.size()))
        .add("-");
    table.row()
        .add("scored + top-K")
        .add(ranked_s, 3)
        .add(genome_mb_f / ranked_s, 1)
        .add(static_cast<uint64_t>(ranked_result.hits.size()))
        .add(static_cast<uint64_t>(ranked_result.ranked.size()));
    table.row()
        .add("boolean + post-hoc")
        .add(posthoc_s, 3)
        .add(genome_mb_f / posthoc_s, 1)
        .add(static_cast<uint64_t>(boolean_result.hits.size()))
        .add(static_cast<uint64_t>(posthoc_ranked.size()));
    std::printf("%s", table.str().c_str());

    std::printf("scoring: scored scan %.2fx boolean throughput "
                "(bar: >= 0.8x) %s\n",
                scored_ratio, scored_ratio >= 0.8 ? "PASS" : "MISS");
    std::printf("ranking: integrated top-%zu %.2fx the post-hoc "
                "pipeline (bar: > 1x) %s, listings bit-identical\n",
                top_k, ranked_speedup,
                ranked_speedup > 1.0 ? "PASS" : "MISS");

    std::ofstream json(json_path);
    if (json) {
        json << "{\"bench\": \"e16_scoring\", \"engine\": \""
             << engine->name() << "\", \"genome_bytes\": "
             << w.genome.size() << ", \"guides\": " << num_guides
             << ", \"d\": " << d << ", \"top_k\": " << top_k
             << ", \"hits\": " << boolean_result.hits.size()
             << ", \"boolean_mbps\": " << boolean_mbps
             << ", \"scored_mbps\": " << scored_mbps
             << ", \"scored_vs_boolean\": " << scored_ratio
             << ", \"ranked_s\": " << ranked_s
             << ", \"posthoc_s\": " << posthoc_s
             << ", \"ranked_speedup\": " << ranked_speedup << "}\n";
        std::printf("wrote %s\n", json_path.c_str());
    }
    return 0;
}
