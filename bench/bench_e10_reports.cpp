/**
 * @file
 * E10 — Output-reporting pressure (ties to the authors' companion
 * HPCA'18 reporting-bottleneck study). Short (10-nt) probe patterns
 * raise the report rate so the output event buffer model is actually
 * exercised: (a) report rate vs mismatch budget; (b) stall overhead vs
 * host drain rate at fixed budget. Full cycle simulation.
 */

#include <cstdio>

#include "workloads.hpp"

#include "ap/simulator.hpp"
#include "automata/builders.hpp"
#include "common/cli.hpp"
#include "fpga/report.hpp"

using namespace crispr;

namespace {

ap::ApMachine
buildMachine(const bench::Workload &w, int d)
{
    core::PatternSet set =
        core::buildPatternSet(w.guides, core::pamNRG(), d, true);
    std::vector<automata::Nfa> nfas;
    for (const core::Pattern &p : set.patterns)
        nfas.push_back(automata::buildHammingNfa(p.spec));
    automata::Nfa u = automata::unionNfas(nfas);
    return ap::fromNfa(u);
}

} // namespace

int
main(int argc, char **argv)
{
    Cli cli("E10: AP output-buffer pressure");
    cli.addInt("genome-kb", 512, "genome size in KB (cycle-simulated)");
    cli.addInt("guides", 4, "number of short probe guides");
    cli.addInt("max-d", 5, "largest mismatch budget");
    if (!cli.parse(argc, argv))
        return 0;

    const size_t genome_len =
        static_cast<size_t>(cli.getInt("genome-kb")) << 10;
    const size_t num_guides =
        static_cast<size_t>(cli.getInt("guides"));

    bench::printBanner(
        "E10",
        strprintf("AP reporting pressure — %zu KB genome, %zu short "
                  "(10-nt) probes, cycle sim",
                  genome_len >> 10, num_guides),
        "report rate grows steeply with d; a finite output buffer "
        "turns reporting bursts into input stalls");

    genome::GenomeSpec gs;
    gs.length = genome_len;
    gs.model = genome::CompositionModel::GcBiased;
    gs.seed = 51;
    bench::Workload w;
    w.genome = genome::generateGenome(gs);
    w.guides = core::guidesFromGenome(w.genome, num_guides, 10, 52);

    // (a) Report rate vs mismatch budget, generous buffer.
    std::printf("\n(a) report rate vs d (buffer 1024, drain 1/8)\n");
    Table table({"d", "events", "events/Ksym", "reporting cycles",
                 "stall cycles", "stall overhead"});
    for (int d = 0; d <= cli.getInt("max-d"); ++d) {
        ap::ApMachine machine = buildMachine(w, d);
        ap::ApSimulator sim(machine, {});
        ap::ApRunStats stats = sim.run(w.genome.codes(), nullptr);
        table.row()
            .add(d)
            .add(stats.reportEvents)
            .add(static_cast<double>(stats.reportEvents) * 1e3 /
                     static_cast<double>(stats.symbolCycles),
                 2)
            .add(stats.reportingCycles)
            .add(stats.stallCycles)
            .add(static_cast<double>(stats.stallCycles) /
                     static_cast<double>(stats.symbolCycles),
                 4);
    }
    std::printf("%s", table.str().c_str());

    // (b) Stall overhead vs drain rate at the highest budget.
    const int d = static_cast<int>(cli.getInt("max-d"));
    std::printf("\n(b) stall overhead vs host drain rate (d=%d, "
                "buffer 64)\n", d);
    Table sweep({"drain (cycles/vector)", "stall cycles",
                 "stall overhead", "kernel slowdown"});
    ap::ApMachine machine = buildMachine(w, d);
    for (uint32_t drain : {8u, 64u, 256u, 1024u}) {
        ap::ApSimConfig cfg;
        cfg.eventBufferDepth = 64;
        cfg.drainCyclesPerVector = drain;
        ap::ApSimulator sim(machine, cfg);
        ap::ApRunStats stats = sim.run(w.genome.codes(), nullptr);
        sweep.row()
            .add(static_cast<uint64_t>(drain))
            .add(stats.stallCycles)
            .add(static_cast<double>(stats.stallCycles) /
                     static_cast<double>(stats.symbolCycles),
                 4)
            .add(static_cast<double>(stats.totalCycles()) /
                     static_cast<double>(stats.symbolCycles),
                 3);
    }
    std::printf("%s", sweep.str().c_str());
    std::printf("a slow host drain (right column > 1.0) stalls the "
                "stream: the paper's proposed reporting-architecture "
                "improvements target exactly this overhead.\n");

    // (c) Report-stream encodings (the paper's proposed improvements):
    // output bytes + drain time per format for the d=max run.
    std::printf("\n(c) report-stream encodings at d=%d (1.5 GB/s host "
                "link)\n", d);
    std::vector<automata::ReportEvent> events;
    {
        ap::ApSimulator sim(machine, {});
        sim.run(w.genome.codes(), [&](uint32_t id, uint64_t end) {
            events.push_back(automata::ReportEvent{id, end});
        });
        automata::normalizeEvents(events);
    }
    size_t report_states = 0;
    for (const auto &el : machine.elements())
        report_states += el.report;
    fpga::ReportTraffic traffic =
        fpga::trafficOf(events, report_states, w.genome.size());

    Table enc({"format", "bytes", "bytes/event", "drain (us)"});
    for (fpga::ReportFormat f :
         {fpga::ReportFormat::RecordPerEvent,
          fpga::ReportFormat::CycleBitmap,
          fpga::ReportFormat::CompressedIds,
          fpga::ReportFormat::OffsetDelta}) {
        const uint64_t bytes = fpga::encodedBytes(f, traffic, events);
        enc.row()
            .add(fpga::reportFormatName(f))
            .add(bytes)
            .add(traffic.events
                     ? static_cast<double>(bytes) /
                           static_cast<double>(traffic.events)
                     : 0.0,
                 2)
            .add(fpga::drainSeconds(bytes, 1.5) * 1e6, 2);
    }
    std::printf("%s", enc.str().c_str());
    std::printf("recommended: %s\n",
                fpga::reportFormatName(
                    fpga::recommendFormat(traffic, events)));
    return 0;
}
