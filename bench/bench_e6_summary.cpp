/**
 * @file
 * E6 — Overall speedup summary: the five quantitative claims of the
 * paper's abstract, each evaluated at its own operating point, with
 * paper-vs-measured side by side. EXPERIMENTS.md records the output.
 */

#include <cstdio>

#include "workloads.hpp"

#include "common/cli.hpp"
#include "baselines/casot.hpp"

using namespace crispr;

int
main(int argc, char **argv)
{
    Cli cli("E6: abstract-claim summary table");
    cli.addInt("genome-mb", 4, "genome size in MB");
    if (!cli.parse(argc, argv))
        return 0;

    const size_t genome_len =
        static_cast<size_t>(cli.getInt("genome-mb")) << 20;

    bench::printBanner("E6", "paper-abstract claims, paper vs measured",
                       "all five abstract ratios in one table");

    core::EngineParams params = bench::defaultParams();
    Table table({"claim", "paper", "measured", "operating point"});

    // --- Claims 1-3: spatial platforms at the many-guide point. ---
    {
        bench::Workload w = bench::makeWorkload(genome_len, 200, 11);
        core::PatternSet set =
            core::buildPatternSet(w.guides, core::pamNRG(), 4, true);
        bench::SpatialEstimate fpga =
            bench::estimateFpga(w.genome.size(), set);
        bench::SpatialEstimate ap =
            bench::estimateAp(w.genome.size(), set);
        baselines::GpuDeviceModel gpu_model;
        baselines::CasOffinderWork coff =
            bench::estimateCasOffinderWork(w.genome, set);
        const double coff_kernel = gpu_model.kernelSeconds(coff);

        baselines::CasOtConfig casot_cfg;
        auto specs = set.specsForStream(false);
        baselines::CasOtResult casot =
            baselines::casOtScan(w.genome, specs, casot_cfg);

        table.row()
            .add("FPGA vs CasOFFinder")
            .add(">83x")
            .add(bench::speedupCell(coff_kernel, fpga.kernelSeconds))
            .add("200 guides, d=4, kernel");
        table.row()
            .add("FPGA vs CasOT (perl-adj)")
            .add(">600x")
            .add(bench::speedupCell(
                casot.perlAdjustedSeconds(casot_cfg),
                fpga.kernelSeconds))
            .add("200 guides, d=4");
        table.row()
            .add("FPGA vs CasOT (measured C++)")
            .add("(lower bound)")
            .add(bench::speedupCell(casot.seconds, fpga.kernelSeconds))
            .add("200 guides, d=4");
        table.row()
            .add("AP kernel vs FPGA kernel")
            .add("1.5x")
            .add(bench::speedupCell(fpga.kernelSeconds,
                                    ap.kernelSeconds))
            .add("200 guides, d=4");
    }

    // --- Claim 4: HScan vs CasOT, single thread, few guides. ---
    {
        bench::Workload w = bench::makeWorkload(genome_len, 10, 12);
        bench::Row hscan =
            bench::runRow(core::EngineKind::HscanAuto, w, 3, params);
        bench::Row casot =
            bench::runRow(core::EngineKind::CasOt, w, 3, params);
        const double perl = casot.metrics.at("casot.perl_adjusted_s");
        table.row()
            .add("HScan vs CasOT (perl-adj)")
            .add(">29.7x")
            .add(bench::speedupCell(perl, hscan.kernelSeconds))
            .add("10 guides, d=3");
        table.row()
            .add("HScan vs CasOT (measured C++)")
            .add("(lower bound)")
            .add(bench::speedupCell(casot.kernelSeconds,
                                    hscan.kernelSeconds))
            .add("10 guides, d=3");
    }

    // --- Claim 5: iNFAnt2 vs HScan, best case over d. ---
    {
        bench::Workload w = bench::makeWorkload(genome_len, 10, 13);
        double best = 0.0;
        int best_d = 0;
        bool beat_casoffinder_everywhere = true;
        for (int d = 1; d <= 3; ++d) {
            bench::Row infant = bench::runRow(
                core::EngineKind::GpuInfant2, w, d, params);
            bench::Row hscan = bench::runRow(
                core::EngineKind::HscanAuto, w, d, params);
            bench::Row coff = bench::runRow(
                core::EngineKind::CasOffinder, w, d, params);
            const double ratio =
                infant.kernelSeconds > 0
                    ? hscan.kernelSeconds / infant.kernelSeconds
                    : 0.0;
            if (ratio > best) {
                best = ratio;
                best_d = d;
            }
            if (infant.kernelSeconds > coff.kernelSeconds)
                beat_casoffinder_everywhere = false;
        }
        table.row()
            .add("iNFAnt2 vs 1-thread HScan (best)")
            .add("<=4.4x")
            .add(strprintf("%.1fx (d=%d)", best, best_d))
            .add("10 guides, best of d=1..3");
        table.row()
            .add("iNFAnt2 consistently beats CasOFFinder?")
            .add("no")
            .add(beat_casoffinder_everywhere ? "yes (!)" : "no")
            .add("10 guides, d=1..3");
    }

    std::printf("%s", table.str().c_str());
    std::printf("notes: device times are modelled (see DESIGN.md "
                "substitution table); CasOT perl-adj multiplies the "
                "measured C++ port by the documented x30 scripting "
                "factor.\n");
    return 0;
}
