/**
 * @file
 * Serving-layer throughput: requests/sec for coalesced single-guide
 * requests through SearchService vs the serial per-request baseline (a
 * fresh compile + genome pass per request, which is what a
 * session-per-client server costs). The paper's central throughput
 * lever — one automaton pass serves many gRNAs — shows up here as the
 * batching win.
 *
 * Emits a BENCH_service.json row (see --json) for CI trend tracking.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <future>
#include <memory>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "common/cli.hpp"
#include "common/executor.hpp"
#include "core/engine_registry.hpp"
#include "core/service.hpp"
#include "core/session.hpp"
#include "core/shard.hpp"
#include "workloads.hpp"

using namespace crispr;

namespace {

double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** One coalescing measurement: serve every request in slices of
 *  `batch` through a manual-mode service. @return requests/sec. */
double
runCoalesced(const core::SharedSequence &genome,
             const std::vector<std::vector<core::Guide>> &requests,
             const core::SearchConfig &config, size_t batch,
             size_t *hits)
{
    core::ServiceOptions options;
    options.batchWindowSeconds = -1.0; // manual: drain() per slice
    options.maxBatchRequests = batch;
    core::SearchService service(options);

    core::RequestOptions request;
    request.genome = genome;
    request.config = config;

    std::vector<std::future<core::SearchResult>> futures;
    futures.reserve(requests.size());
    const double start = now();
    for (size_t i = 0; i < requests.size();) {
        const size_t end = std::min(i + batch, requests.size());
        for (; i < end; ++i)
            futures.push_back(service.submit(requests[i], request));
        service.drain();
    }
    size_t total_hits = 0;
    for (auto &f : futures)
        total_hits += f.get().hits.size();
    const double seconds = now() - start;
    if (hits)
        *hits = total_hits;
    return static_cast<double>(requests.size()) / seconds;
}

/** The non-batching baseline: one session (compile + pass) each. */
double
runSerial(const genome::Sequence &genome,
          const std::vector<std::vector<core::Guide>> &requests,
          const core::SearchConfig &config, size_t *hits)
{
    size_t total_hits = 0;
    const double start = now();
    for (const auto &guides : requests) {
        core::SearchSession session(guides, config);
        total_hits += session.search(genome).hits.size();
    }
    const double seconds = now() - start;
    if (hits)
        *hits = total_hits;
    return static_cast<double>(requests.size()) / seconds;
}

/**
 * One --pool-compare measurement: `concurrent` client threads, each
 * serving one pre-compiled multi-chunk request (threads=2 per scan).
 * `spawn` selects the pre-executor baseline (fresh std::threads per
 * scan) vs the shared work-stealing pool. @return requests/sec.
 */
double
runConcurrent(const genome::Sequence &genome,
              const std::vector<std::vector<core::Guide>> &requests,
              const core::SearchConfig &config, size_t concurrent,
              bool spawn, size_t *hits)
{
    // The serving shape where per-scan thread spawning hurts: many
    // concurrent *small* requests, each scanned in 4 lanes over
    // fine-grained chunks. The spawn baseline pays 3 fresh OS threads
    // per request served; the pool schedules the same lanes as tasks
    // on one bounded worker set.
    constexpr size_t kRoundsPerClient = 4;
    const genome::Sequence target = genome.slice(0, 256 << 10);
    core::SearchConfig cfg = config;
    cfg.runtime().threads = 4;
    cfg.runtime().chunkSize = 32 << 10;
    cfg.runtime().spawnThreads = spawn;

    // Compile outside the timer: the row measures scan execution, and
    // compilation cost is identical in both modes.
    std::vector<std::unique_ptr<core::SearchSession>> sessions;
    for (size_t i = 0; i < concurrent; ++i)
        sessions.push_back(std::make_unique<core::SearchSession>(
            requests[i % requests.size()], cfg));

    std::vector<size_t> hit_counts(concurrent, 0);
    const double start = now();
    std::vector<std::thread> clients;
    clients.reserve(concurrent);
    for (size_t i = 0; i < concurrent; ++i)
        clients.emplace_back([&, i] {
            for (size_t round = 0; round < kRoundsPerClient; ++round)
                hit_counts[i] +=
                    sessions[i]->search(target).hits.size();
        });
    for (auto &client : clients)
        client.join();
    const double seconds = now() - start;
    if (hits)
        *hits = std::accumulate(hit_counts.begin(), hit_counts.end(),
                                size_t{0});
    return static_cast<double>(concurrent * kRoundsPerClient) /
           seconds;
}

/** One --db-compare row: time-to-first-result for a fresh session on
 *  a small target, cold (compile + persist) vs warm (database load).
 *  Uses engine=auto + databaseDir — the recommended production config.
 *  The warm load is served from the database's shared byte tier, so
 *  the measured cost is deserialization, which is what a restarted
 *  process pays once the blob is in the page cache. */
struct DbCompareRow
{
    size_t guides = 0;
    double coldSeconds = 0.0;
    double loadSeconds = 0.0;
    bool warmFromDb = false;
    size_t hits = 0;
};

DbCompareRow
runDbCompare(const genome::Sequence &target,
             const std::vector<core::Guide> &all_guides, size_t count,
             int d, const std::string &db_dir)
{
    DbCompareRow row;
    row.guides = count;
    const std::vector<core::Guide> guides(all_guides.begin(),
                                          all_guides.begin() + count);

    core::SearchConfig cfg;
    cfg.engine = core::EngineKind::Auto;
    cfg.maxMismatches = d;
    cfg.databaseDir = db_dir;
    cfg.params = bench::defaultParams();

    {
        core::SearchSession cold(guides, cfg);
        const double start = now();
        row.hits = cold.search(target).hits.size();
        row.coldSeconds = now() - start;
    }
    {
        core::SearchSession warm(guides, cfg);
        const double start = now();
        const size_t warm_hits = warm.search(target).hits.size();
        row.loadSeconds = now() - start;
        row.warmFromDb = warm.databaseHits() > 0;
        if (warm_hits != row.hits)
            fatal("database-loaded hit count diverged from cold "
                  "(%zu guides: %zu vs %zu)",
                  count, warm_hits, row.hits);
    }
    return row;
}

/**
 * One --overload row: open-loop offered load at a multiple of the
 * measured capacity, against a bounded-queue service. Goodput counts
 * admitted requests that completed inside their deadline; the excess
 * must be shed promptly as Error::overloaded rather than queued into
 * collapse — the acceptance bar is 4x-offered goodput >= 90% of the
 * 1x throughput.
 */
struct OverloadRow
{
    double multiplier = 1.0;
    double offeredRps = 0.0;
    size_t submitted = 0;
    size_t good = 0;   //!< admitted and completed inside deadline
    size_t shed = 0;   //!< Error::overloaded (admission / breaker)
    size_t failed = 0; //!< anything else (late, other errors)
    double goodputRps = 0.0;
    double p99Ms = 0.0;
};

OverloadRow
runOverload(const core::SharedSequence &genome,
            const std::vector<std::vector<core::Guide>> &requests,
            const core::SearchConfig &config, double capacity_rps,
            double multiplier, double deadline_seconds)
{
    OverloadRow row;
    row.multiplier = multiplier;
    row.offeredRps = capacity_rps * multiplier;

    core::ServiceOptions options;
    options.batchWindowSeconds = 0.001;
    options.maxBatchRequests = 64;
    options.maxQueueRequests = 128;
    options.admissionPolicy = core::AdmissionPolicy::RejectNew;
    options.pressureHighWatermark = 96;
    options.pressureLowWatermark = 32;
    core::SearchService service(options);

    // ~2 seconds of offered traffic per point, bounded for CI.
    const size_t total = std::clamp<size_t>(
        static_cast<size_t>(row.offeredRps * 2.0), size_t(64),
        size_t(2048));
    row.submitted = total;

    std::vector<std::future<common::Expected<core::SearchResult>>>
        futures(total);
    std::vector<double> sent_at(total, 0.0);
    std::atomic<size_t> submitted{0};

    const double start = now();
    // The collector waits for completions in submission order while
    // the submitter keeps the offered rate; FIFO dispatch makes the
    // sequential wait a faithful (slightly conservative) latency read.
    std::vector<double> latencies;
    latencies.reserve(total);
    std::thread collector([&] {
        for (size_t i = 0; i < total; ++i) {
            while (submitted.load(std::memory_order_acquire) <= i)
                std::this_thread::sleep_for(
                    std::chrono::microseconds(100));
            auto result = futures[i].get();
            const double done = now();
            if (result.ok()) {
                latencies.push_back(done - sent_at[i]);
                if (!result.value().timedOut)
                    ++row.good;
                else
                    ++row.failed;
            } else if (result.error().code() ==
                       common::ErrorCode::Overloaded) {
                ++row.shed;
            } else {
                ++row.failed;
            }
        }
    });

    core::RequestOptions request;
    request.genome = genome;
    request.config = config;
    for (size_t i = 0; i < total; ++i) {
        const double due = start + static_cast<double>(i) /
                                       row.offeredRps;
        while (now() < due)
            std::this_thread::sleep_for(
                std::chrono::microseconds(50));
        request.config.deadline =
            common::Deadline::after(deadline_seconds);
        sent_at[i] = now();
        futures[i] =
            service.trySubmit(requests[i % requests.size()], request);
        submitted.store(i + 1, std::memory_order_release);
    }
    collector.join();
    const double elapsed = now() - start;

    row.goodputRps = static_cast<double>(row.good) / elapsed;
    if (!latencies.empty()) {
        std::sort(latencies.begin(), latencies.end());
        row.p99Ms =
            latencies[std::min(latencies.size() - 1,
                               static_cast<size_t>(
                                   0.99 * static_cast<double>(
                                              latencies.size())))] *
            1e3;
    }
    return row;
}

/** A --shard-compare request: one guide set against one genome. */
struct ShardRequest
{
    size_t genome = 0; //!< index into the workload's genome list
    std::vector<core::Guide> guides;
};

/**
 * One --shard-compare measurement: every request scattered across
 * `shards` workers (windowed workers with a zero batch window, so
 * each shard's dispatcher scans its slice concurrently), gathered,
 * and verified per request. @return requests/sec.
 */
double
runSharded(const std::vector<core::SharedSequence> &genomes,
           const std::vector<ShardRequest> &requests,
           const core::SearchConfig &config, size_t shards,
           std::vector<std::vector<core::OffTargetHit>> *hits_out)
{
    core::ShardOptions options;
    options.shards = shards;
    options.service.batchWindowSeconds = 0.0;
    core::ShardedSearchService service(options);

    std::vector<std::future<core::SearchResult>> futures;
    futures.reserve(requests.size());
    const double start = now();
    for (const ShardRequest &r : requests) {
        core::RequestOptions request;
        request.genome = genomes[r.genome];
        request.config = config;
        futures.push_back(service.submit(r.guides, request));
    }
    if (hits_out)
        hits_out->clear();
    for (auto &f : futures) {
        core::SearchResult result = f.get();
        if (hits_out)
            hits_out->push_back(std::move(result.hits));
    }
    const double seconds = now() - start;
    return static_cast<double>(requests.size()) / seconds;
}

} // namespace

int
main(int argc, char **argv)
{
    Cli cli("SERVICE: coalesced vs serial request throughput");
    cli.addInt("genome-mb", 16, "genome size in MB");
    cli.addInt("requests", 64, "number of single-guide requests");
    cli.addInt("d", 1, "mismatch budget");
    cli.addString("engine", "hscan", "engine name (see registry)");
    cli.addInt("max-dfa-states", 1 << 20,
               "hscan DFA state budget for the merged database");
    cli.addBool("minimize-dfa",
                "Hopcroft-minimize the hscan DFA (off by default: a "
                "serving workload pays compile latency per batch, and "
                "minimization costs seconds to save microseconds of "
                "scan here; applied to serial and coalesced alike)");
    cli.addBool("pool-compare",
                "also measure concurrent multi-chunk requests with "
                "spawn-per-scan threads vs the shared work-stealing "
                "Executor, at 16 and 64 concurrent clients");
    cli.addBool("db-compare",
                "also measure cold-compile vs pattern-database "
                "startup latency (engine=auto + databaseDir) for "
                "guide sets of 10/100/1000");
    cli.addBool("overload",
                "also measure goodput and p99 admitted-latency at "
                "1x/2x/4x offered load against a bounded-queue "
                "service (excess shed as Error::overloaded)");
    cli.addBool("shard-compare",
                "also measure scatter-gather serving at 1/2/4/8 "
                "shards over a multi-genome workload (req/s + gather "
                "efficiency; merged hits verified bit-identical to "
                "serial at every shard count)");
    cli.addString("json", "BENCH_service.json",
                  "output path of the JSON result row");
    if (!cli.parse(argc, argv))
        return 0;

    const size_t genome_mb =
        static_cast<size_t>(cli.getInt("genome-mb"));
    const size_t num_requests =
        static_cast<size_t>(cli.getInt("requests"));
    const int d = static_cast<int>(cli.getInt("d"));
    const std::string engine_name = cli.getString("engine");
    const std::string json_path = cli.getString("json");

    const core::Engine *engine =
        core::EngineRegistry::instance().findByName(engine_name);
    if (!engine)
        fatal("unknown engine: %s", engine_name.c_str());

    bench::printBanner(
        "SERVICE",
        strprintf("cross-request batching — %zu MB genome, %zu "
                  "single-guide requests, d=%d, engine=%s",
                  genome_mb, num_requests, d, engine->name()),
        "one automaton pass serves many gRNAs at once");

    bench::Workload w =
        bench::makeWorkload(genome_mb << 20, num_requests);
    auto genome = std::make_shared<const genome::Sequence>(w.genome);

    // One single-guide request per sampled guide: the paper's serving
    // scenario (many clients, one shared reference).
    std::vector<std::vector<core::Guide>> requests;
    requests.reserve(num_requests);
    for (const core::Guide &guide : w.guides)
        requests.push_back({guide});

    core::SearchConfig config;
    // The compile half keys the coalescing; the runtime half is the
    // serving shape (serial single-chunk scans, default deadline).
    config.compile().engine = engine->kind();
    config.compile().maxMismatches = d;
    config.compile().params = bench::defaultParams();
    config.compile().params.hscanOpts.maxDfaStates =
        static_cast<uint32_t>(cli.getInt("max-dfa-states"));
    config.compile().params.hscanOpts.minimizeDfa =
        cli.getBool("minimize-dfa");
    config.runtime().threads = 1;

    size_t serial_hits = 0;
    const double serial_rps =
        runSerial(w.genome, requests, config, &serial_hits);

    Table table({"batch", "req/s", "vs serial", "hits"});
    table.row()
        .add("serial")
        .add(serial_rps, 2)
        .add("1.0x")
        .add(static_cast<uint64_t>(serial_hits));

    std::vector<std::pair<size_t, double>> coalesced;
    for (size_t batch : {size_t(1), size_t(8), size_t(64)}) {
        if (batch > num_requests)
            continue;
        size_t hits = 0;
        const double rps =
            runCoalesced(genome, requests, config, batch, &hits);
        coalesced.emplace_back(batch, rps);
        table.row()
            .add(strprintf("%zu", batch))
            .add(rps, 2)
            .add(bench::speedupCell(rps, serial_rps))
            .add(static_cast<uint64_t>(hits));
        if (hits != serial_hits)
            fatal("batched hit count diverged from serial "
                  "(batch=%zu: %zu vs %zu)",
                  batch, hits, serial_hits);
    }
    std::printf("%s", table.str().c_str());

    // Spawn-per-scan vs shared-pool under concurrency: every client
    // scans chunked at threads=2, so the spawn baseline creates
    // 2 * clients OS threads while the pool keeps one bounded worker
    // set and lets the clients help. The acceptance bar is pool >=
    // spawn at 64 clients.
    std::vector<std::pair<std::string, double>> pool_rows;
    if (cli.getBool("pool-compare")) {
        Table pool_table(
            {"clients", "mode", "req/s", "vs spawn", "hits"});
        for (size_t concurrent : {size_t(16), size_t(64)}) {
            size_t spawn_hits = 0, pool_hits = 0;
            const double spawn_rps =
                runConcurrent(w.genome, requests, config, concurrent,
                              /*spawn=*/true, &spawn_hits);
            const double pool_rps =
                runConcurrent(w.genome, requests, config, concurrent,
                              /*spawn=*/false, &pool_hits);
            if (spawn_hits != pool_hits)
                fatal("pooled hit count diverged from spawned "
                      "(%zu clients: %zu vs %zu)",
                      concurrent, pool_hits, spawn_hits);
            pool_rows.emplace_back(
                strprintf("spawn_%zu_rps", concurrent), spawn_rps);
            pool_rows.emplace_back(
                strprintf("pool_%zu_rps", concurrent), pool_rps);
            pool_table.row()
                .add(strprintf("%zu", concurrent))
                .add("spawn")
                .add(spawn_rps, 2)
                .add("1.0x")
                .add(static_cast<uint64_t>(spawn_hits));
            pool_table.row()
                .add(strprintf("%zu", concurrent))
                .add("pool")
                .add(pool_rps, 2)
                .add(bench::speedupCell(pool_rps, spawn_rps))
                .add(static_cast<uint64_t>(pool_hits));
        }
        std::printf("%s", pool_table.str().c_str());

        const auto pool_metrics =
            common::Executor::shared().metricsSnapshot();
        std::printf("executor: tasks=%.0f steals=%.0f dropped=%.0f\n",
                    pool_metrics.at("executor.tasks"),
                    pool_metrics.at("executor.steals"),
                    pool_metrics.at("executor.dropped"));
        pool_rows.emplace_back("executor_tasks",
                               pool_metrics.at("executor.tasks"));
        pool_rows.emplace_back("executor_steals",
                               pool_metrics.at("executor.steals"));
    }

    // Cold compile vs database load: the Hyperscan serialized-database
    // idiom. Guides come from a dedicated small workload so the row
    // measures startup latency, not genome scanning; the target slice
    // keeps the scan itself negligible.
    std::vector<DbCompareRow> db_rows;
    if (cli.getBool("db-compare")) {
        const size_t kMaxDbGuides = 1000;
        bench::Workload dbw =
            bench::makeWorkload(4 << 20, kMaxDbGuides, /*seed=*/43);
        const genome::Sequence target = dbw.genome.slice(0, 64 << 10);
        const std::filesystem::path db_dir =
            std::filesystem::temp_directory_path() /
            strprintf("bench_service_db_%d", getpid());
        std::filesystem::remove_all(db_dir);

        Table db_table({"guides", "cold compile", "db load",
                        "speedup", "source"});
        for (size_t count : {size_t(10), size_t(100), size_t(1000)}) {
            DbCompareRow row = runDbCompare(target, dbw.guides, count,
                                            d, db_dir.string());
            db_rows.push_back(row);
            db_table.row()
                .add(strprintf("%zu", count))
                .add(strprintf("%.1f ms", row.coldSeconds * 1e3))
                .add(strprintf("%.1f ms", row.loadSeconds * 1e3))
                .add(bench::speedupCell(1.0 / row.loadSeconds,
                                        1.0 / row.coldSeconds))
                .add(row.warmFromDb ? "database" : "recompiled");
        }
        std::printf("%s", db_table.str().c_str());
        std::filesystem::remove_all(db_dir);
    }

    // Scatter-gather serving: the same requests over N shard workers,
    // each scanning 1/N of its genome. Correctness is absolute (hits
    // verified per request against the serial sessions at every shard
    // count); the speedup bar is meaningful only when the host has
    // cores for the shards to run on, so it is gated on core count —
    // the same convention bench_hscan uses for unusable SIMD tiers.
    std::vector<std::pair<size_t, double>> shard_rows;
    double shard_efficiency_4 = 0.0;
    if (cli.getBool("shard-compare")) {
        constexpr size_t kShardGenomes = 4;
        const size_t per_genome_mb =
            std::max<size_t>(1, genome_mb / kShardGenomes);
        std::vector<core::SharedSequence> shard_genomes;
        std::vector<ShardRequest> shard_requests;
        for (size_t g = 0; g < kShardGenomes; ++g) {
            bench::Workload gw = bench::makeWorkload(
                per_genome_mb << 20,
                std::max<size_t>(1, num_requests / kShardGenomes),
                /*seed=*/100 + g);
            shard_genomes.push_back(
                std::make_shared<const genome::Sequence>(
                    std::move(gw.genome)));
            for (const core::Guide &guide : gw.guides)
                shard_requests.push_back(ShardRequest{g, {guide}});
        }

        // The serial reference every shard count must reproduce.
        std::vector<std::vector<core::OffTargetHit>> serial_shard_hits;
        for (const ShardRequest &r : shard_requests) {
            core::SearchSession session(r.guides, config);
            serial_shard_hits.push_back(
                session.search(*shard_genomes[r.genome]).hits);
        }

        Table shard_table({"shards", "req/s", "vs 1 shard",
                           "gather efficiency"});
        double shard_1_rps = 0.0;
        for (size_t shards : {size_t(1), size_t(2), size_t(4),
                              size_t(8)}) {
            std::vector<std::vector<core::OffTargetHit>> hits;
            const double rps = runSharded(shard_genomes,
                                          shard_requests, config,
                                          shards, &hits);
            for (size_t i = 0; i < shard_requests.size(); ++i)
                if (hits[i] != serial_shard_hits[i])
                    fatal("sharded hits diverged from serial "
                          "(%zu shards, request %zu)",
                          shards, i);
            if (shards == 1)
                shard_1_rps = rps;
            const double efficiency =
                rps / (static_cast<double>(shards) * shard_1_rps);
            if (shards == 4)
                shard_efficiency_4 = efficiency;
            shard_rows.emplace_back(shards, rps);
            shard_table.row()
                .add(strprintf("%zu", shards))
                .add(rps, 2)
                .add(bench::speedupCell(rps, shard_1_rps))
                .add(strprintf("%.0f%%", 100.0 * efficiency));
        }
        std::printf("%s", shard_table.str().c_str());

        const double speedup_4 = shard_rows[2].second / shard_1_rps;
        const unsigned cores = std::thread::hardware_concurrency();
        if (cores >= 4)
            std::printf("shard: 4-shard speedup %.2fx (bar: >= 2x) "
                        "%s, hits bit-identical at every count\n",
                        speedup_4,
                        speedup_4 >= 2.0 ? "PASS" : "MISS");
        else
            std::printf("shard: 4-shard speedup %.2fx — bar (>= 2x) "
                        "skipped: host has %u core(s), the shards "
                        "have nothing to run on in parallel; hits "
                        "bit-identical at every count\n",
                        speedup_4, cores);
    }

    // Overload: goodput must hold (>= 90% of 1x) while the offered
    // rate quadruples; the excess is shed at admission, not queued.
    double overload_capacity = 0.0;
    std::vector<OverloadRow> overload_rows;
    if (cli.getBool("overload")) {
        size_t cap_hits = 0;
        overload_capacity = runCoalesced(
            genome, requests, config,
            std::min<size_t>(64, num_requests), &cap_hits);
        // Generous per-request deadline: time to drain twice the
        // queue bound, so admitted requests comfortably finish and
        // misses indicate real overload, not a tight budget.
        const double deadline_seconds =
            std::max(0.5, 256.0 / overload_capacity);

        Table overload_table({"offered", "req/s offered", "goodput",
                              "vs 1x", "p99 ms", "shed", "failed"});
        double goodput_1x = 0.0;
        for (double multiplier : {1.0, 2.0, 4.0}) {
            OverloadRow row =
                runOverload(genome, requests, config,
                            overload_capacity, multiplier,
                            deadline_seconds);
            if (multiplier == 1.0)
                goodput_1x = row.goodputRps;
            overload_rows.push_back(row);
            overload_table.row()
                .add(strprintf("%.0fx", multiplier))
                .add(row.offeredRps, 2)
                .add(row.goodputRps, 2)
                .add(bench::speedupCell(row.goodputRps, goodput_1x))
                .add(row.p99Ms, 2)
                .add(static_cast<uint64_t>(row.shed))
                .add(static_cast<uint64_t>(row.failed));
        }
        std::printf("%s", overload_table.str().c_str());
        const OverloadRow &worst = overload_rows.back();
        std::printf("overload: 4x goodput %.2f req/s = %.0f%% of 1x "
                    "(bar: >= 90%%), %zu shed\n",
                    worst.goodputRps,
                    100.0 * worst.goodputRps / goodput_1x,
                    worst.shed);
    }

    std::ofstream json(json_path);
    if (json) {
        json << "{\"bench\": \"service\", \"engine\": \""
             << engine->name() << "\", \"genome_bytes\": "
             << w.genome.size() << ", \"requests\": " << num_requests
             << ", \"d\": " << d
             << ", \"serial_rps\": " << serial_rps;
        for (const auto &[batch, rps] : coalesced)
            json << ", \"coalesced_" << batch << "_rps\": " << rps;
        if (!coalesced.empty())
            json << ", \"speedup_max_batch\": "
                 << coalesced.back().second / serial_rps;
        for (const auto &[key, value] : pool_rows)
            json << ", \"" << key << "\": " << value;
        for (const DbCompareRow &row : db_rows)
            json << ", \"db_cold_" << row.guides
                 << "_s\": " << row.coldSeconds << ", \"db_load_"
                 << row.guides << "_s\": " << row.loadSeconds
                 << ", \"db_speedup_" << row.guides
                 << "\": " << row.coldSeconds / row.loadSeconds;
        if (!shard_rows.empty()) {
            for (const auto &[shards, rps] : shard_rows)
                json << ", \"shard_" << shards << "_rps\": " << rps;
            json << ", \"shard_4x_vs_1x\": "
                 << shard_rows[2].second / shard_rows[0].second
                 << ", \"shard_4_efficiency\": " << shard_efficiency_4
                 << ", \"shard_cores\": "
                 << std::thread::hardware_concurrency();
        }
        if (!overload_rows.empty()) {
            json << ", \"overload_capacity_rps\": "
                 << overload_capacity;
            for (const OverloadRow &row : overload_rows)
                json << ", \"overload_" << row.multiplier
                     << "x_goodput_rps\": " << row.goodputRps
                     << ", \"overload_" << row.multiplier
                     << "x_p99_ms\": " << row.p99Ms << ", \"overload_"
                     << row.multiplier << "x_shed\": " << row.shed;
            json << ", \"overload_4x_vs_1x\": "
                 << overload_rows.back().goodputRps /
                        overload_rows.front().goodputRps;
        }
        json << "}\n";
        std::printf("wrote %s\n", json_path.c_str());
    }
    return 0;
}
