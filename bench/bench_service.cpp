/**
 * @file
 * Serving-layer throughput: requests/sec for coalesced single-guide
 * requests through SearchService vs the serial per-request baseline (a
 * fresh compile + genome pass per request, which is what a
 * session-per-client server costs). The paper's central throughput
 * lever — one automaton pass serves many gRNAs — shows up here as the
 * batching win.
 *
 * Emits a BENCH_service.json row (see --json) for CI trend tracking.
 */

#include <chrono>
#include <cstdio>
#include <fstream>
#include <future>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "core/engine_registry.hpp"
#include "core/service.hpp"
#include "workloads.hpp"

using namespace crispr;

namespace {

double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** One coalescing measurement: serve every request in slices of
 *  `batch` through a manual-mode service. @return requests/sec. */
double
runCoalesced(const core::SharedSequence &genome,
             const std::vector<std::vector<core::Guide>> &requests,
             const core::SearchConfig &config, size_t batch,
             size_t *hits)
{
    core::ServiceOptions options;
    options.batchWindowSeconds = -1.0; // manual: drain() per slice
    options.maxBatchRequests = batch;
    core::SearchService service(options);

    core::RequestOptions request;
    request.genome = genome;
    request.config = config;

    std::vector<std::future<core::SearchResult>> futures;
    futures.reserve(requests.size());
    const double start = now();
    for (size_t i = 0; i < requests.size();) {
        const size_t end = std::min(i + batch, requests.size());
        for (; i < end; ++i)
            futures.push_back(service.submit(requests[i], request));
        service.drain();
    }
    size_t total_hits = 0;
    for (auto &f : futures)
        total_hits += f.get().hits.size();
    const double seconds = now() - start;
    if (hits)
        *hits = total_hits;
    return static_cast<double>(requests.size()) / seconds;
}

/** The non-batching baseline: one session (compile + pass) each. */
double
runSerial(const genome::Sequence &genome,
          const std::vector<std::vector<core::Guide>> &requests,
          const core::SearchConfig &config, size_t *hits)
{
    size_t total_hits = 0;
    const double start = now();
    for (const auto &guides : requests) {
        core::SearchSession session(guides, config);
        total_hits += session.search(genome).hits.size();
    }
    const double seconds = now() - start;
    if (hits)
        *hits = total_hits;
    return static_cast<double>(requests.size()) / seconds;
}

} // namespace

int
main(int argc, char **argv)
{
    Cli cli("SERVICE: coalesced vs serial request throughput");
    cli.addInt("genome-mb", 16, "genome size in MB");
    cli.addInt("requests", 64, "number of single-guide requests");
    cli.addInt("d", 1, "mismatch budget");
    cli.addString("engine", "hscan", "engine name (see registry)");
    cli.addInt("max-dfa-states", 1 << 20,
               "hscan DFA state budget for the merged database");
    cli.addBool("minimize-dfa",
                "Hopcroft-minimize the hscan DFA (off by default: a "
                "serving workload pays compile latency per batch, and "
                "minimization costs seconds to save microseconds of "
                "scan here; applied to serial and coalesced alike)");
    cli.addString("json", "BENCH_service.json",
                  "output path of the JSON result row");
    if (!cli.parse(argc, argv))
        return 0;

    const size_t genome_mb =
        static_cast<size_t>(cli.getInt("genome-mb"));
    const size_t num_requests =
        static_cast<size_t>(cli.getInt("requests"));
    const int d = static_cast<int>(cli.getInt("d"));
    const std::string engine_name = cli.getString("engine");
    const std::string json_path = cli.getString("json");

    const core::Engine *engine =
        core::EngineRegistry::instance().findByName(engine_name);
    if (!engine)
        fatal("unknown engine: %s", engine_name.c_str());

    bench::printBanner(
        "SERVICE",
        strprintf("cross-request batching — %zu MB genome, %zu "
                  "single-guide requests, d=%d, engine=%s",
                  genome_mb, num_requests, d, engine->name()),
        "one automaton pass serves many gRNAs at once");

    bench::Workload w =
        bench::makeWorkload(genome_mb << 20, num_requests);
    auto genome = std::make_shared<const genome::Sequence>(w.genome);

    // One single-guide request per sampled guide: the paper's serving
    // scenario (many clients, one shared reference).
    std::vector<std::vector<core::Guide>> requests;
    requests.reserve(num_requests);
    for (const core::Guide &guide : w.guides)
        requests.push_back({guide});

    core::SearchConfig config;
    // The compile half keys the coalescing; the runtime half is the
    // serving shape (serial single-chunk scans, default deadline).
    config.compile().engine = engine->kind();
    config.compile().maxMismatches = d;
    config.compile().params = bench::defaultParams();
    config.compile().params.hscanOpts.maxDfaStates =
        static_cast<uint32_t>(cli.getInt("max-dfa-states"));
    config.compile().params.hscanOpts.minimizeDfa =
        cli.getBool("minimize-dfa");
    config.runtime().threads = 1;

    size_t serial_hits = 0;
    const double serial_rps =
        runSerial(w.genome, requests, config, &serial_hits);

    Table table({"batch", "req/s", "vs serial", "hits"});
    table.row()
        .add("serial")
        .add(serial_rps, 2)
        .add("1.0x")
        .add(static_cast<uint64_t>(serial_hits));

    std::vector<std::pair<size_t, double>> coalesced;
    for (size_t batch : {size_t(1), size_t(8), size_t(64)}) {
        if (batch > num_requests)
            continue;
        size_t hits = 0;
        const double rps =
            runCoalesced(genome, requests, config, batch, &hits);
        coalesced.emplace_back(batch, rps);
        table.row()
            .add(strprintf("%zu", batch))
            .add(rps, 2)
            .add(bench::speedupCell(rps, serial_rps))
            .add(static_cast<uint64_t>(hits));
        if (hits != serial_hits)
            fatal("batched hit count diverged from serial "
                  "(batch=%zu: %zu vs %zu)",
                  batch, hits, serial_hits);
    }
    std::printf("%s", table.str().c_str());

    std::ofstream json(json_path);
    if (json) {
        json << "{\"bench\": \"service\", \"engine\": \""
             << engine->name() << "\", \"genome_bytes\": "
             << w.genome.size() << ", \"requests\": " << num_requests
             << ", \"d\": " << d
             << ", \"serial_rps\": " << serial_rps;
        for (const auto &[batch, rps] : coalesced)
            json << ", \"coalesced_" << batch << "_rps\": " << rps;
        if (!coalesced.empty())
            json << ", \"speedup_max_batch\": "
                 << coalesced.back().second / serial_rps;
        json << "}\n";
        std::printf("wrote %s\n", json_path.c_str());
    }
    return 0;
}
