/**
 * @file
 * Shared workload construction and measurement helpers for the
 * experiment harnesses (bench_e1 .. bench_e12). See DESIGN.md section 5
 * for the experiment index.
 */

#ifndef CRISPR_BENCH_WORKLOADS_HPP_
#define CRISPR_BENCH_WORKLOADS_HPP_

#include <string>
#include <vector>

#include <memory>

#include "common/logging.hpp"
#include "common/table.hpp"
#include "core/session.hpp"
#include "genome/generator.hpp"

namespace crispr::bench {

/** A benchmark workload: synthetic genome + guide set sampled from it. */
struct Workload
{
    genome::Sequence genome;
    std::vector<core::Guide> guides;
    /** Compile cache shared by every runRow on this workload. */
    mutable std::shared_ptr<core::SearchSession> session;
};

/**
 * Deterministic workload: GC-biased genome of `genome_len` bases with a
 * small N fraction, and `num_guides` 20-nt guides sampled from it.
 */
Workload makeWorkload(size_t genome_len, size_t num_guides,
                      uint64_t seed = 42);

/** Default engine parameters used across experiments (paper setups). */
core::EngineParams defaultParams();

/** One engine measurement row. */
struct Row
{
    std::string engine;
    double compileSeconds = 0.0;
    double hostSeconds = 0.0;
    double kernelSeconds = 0.0; //!< comparable execution time
    double totalSeconds = 0.0;
    size_t hits = 0;
    size_t events = 0;
    std::map<std::string, double> metrics;
};

/** Run one engine through the workload's SearchSession (created on
 *  first use; repeated (engine, d) rows reuse compilations) and collect
 *  a row. */
Row runRow(core::EngineKind engine, const Workload &w, int d,
           const core::EngineParams &params = defaultParams(),
           const core::PamSpec &pam = core::pamNRG());

/**
 * Analytic Cas-OFFinder work estimate for sweeps too large to execute:
 * stage-1 candidates come from a real PAM scan of the genome; stage-2
 * base compares use the expected early-exit depth on random background
 * ((d+1) / P(mismatch), P(mismatch)=3/4 for concrete guides).
 */
baselines::CasOffinderWork
estimateCasOffinderWork(const genome::Sequence &g,
                        const core::PatternSet &set);

/** Analytic FPGA kernel estimate (resource model, no execution). */
struct SpatialEstimate
{
    double kernelSeconds = 0.0;
    double totalSeconds = 0.0;
    double clockHz = 0.0;
    uint32_t passes = 1;
    uint64_t stateCount = 0;
    double utilization = 0.0;
};

SpatialEstimate estimateFpga(uint64_t symbols, const core::PatternSet &set,
                             const fpga::FpgaDeviceSpec &spec = {});

/** Analytic AP kernel estimate (capacity model, no execution).
 *  @param counter_design use the O(L) counter machines (doubles the
 *         streamed symbols: forward + reversed pass). */
SpatialEstimate estimateAp(uint64_t symbols, const core::PatternSet &set,
                           bool counter_design = false,
                           const ap::ApDeviceSpec &spec = {});

/** Analytic iNFAnt2 kernel estimate from the symbol histogram. */
SpatialEstimate estimateInfant2(const genome::Sequence &g,
                                const core::PatternSet &set,
                                const gpu::SimtModel &model = {},
                                size_t chunk = 512 << 10);

/** Print a standard experiment banner. */
void printBanner(const std::string &id, const std::string &title,
                 const std::string &paper_claim);

/** Format a speedup "AxB" cell, guarding division by zero. */
std::string speedupCell(double base, double other);

} // namespace crispr::bench

#endif // CRISPR_BENCH_WORKLOADS_HPP_
