/**
 * @file
 * E7 — Scaling with guide count (paper Fig.): spatial platforms stay
 * flat until device capacity forces extra passes; brute-force tools
 * scale linearly in the number of guides; the CPU automata engine sits
 * in between. Spatial times come from the capacity/clock models; CPU
 * times are measured on a genome slice and normalised per MB.
 */

#include <cstdio>

#include "workloads.hpp"

#include "common/cli.hpp"
#include "common/stopwatch.hpp"
#include "hscan/multipattern.hpp"

using namespace crispr;

int
main(int argc, char **argv)
{
    Cli cli("E7: runtime vs number of guides");
    cli.addInt("genome-mb", 8, "genome size (MB) the times refer to");
    cli.addInt("d", 3, "mismatch budget");
    cli.addInt("max-guides", 1000, "largest guide count");
    if (!cli.parse(argc, argv))
        return 0;

    const size_t genome_len =
        static_cast<size_t>(cli.getInt("genome-mb")) << 20;
    const int d = static_cast<int>(cli.getInt("d"));
    const size_t max_guides =
        static_cast<size_t>(cli.getInt("max-guides"));

    bench::printBanner(
        "E7",
        strprintf("runtime vs #guides — %zu MB genome, d=%d",
                  genome_len >> 20, d),
        "spatial platforms flat until capacity (then stepwise); "
        "CasOFFinder/CasOT linear in #guides");

    // CPU measurements run on a small slice, normalised to the target
    // genome size (scan cost is linear in stream length).
    bench::Workload w = bench::makeWorkload(genome_len, max_guides, 21);

    Table table({"guides", "hscan cpu (s)", "infant2 (s)", "fpga (s)",
                 "fpga passes", "ap (s)", "ap passes",
                 "casoffinder (s)", "casot est (s)"});

    baselines::GpuDeviceModel gpu_model;
    for (size_t n : {1u, 10u, 100u, 1000u}) {
        if (n > max_guides)
            break;
        std::vector<core::Guide> guides(w.guides.begin(),
                                        w.guides.begin() + n);
        core::PatternSet set =
            core::buildPatternSet(guides, core::pamNRG(), d, true);

        // HScan measured on a slice sized to keep the sweep fast; the
        // scan cost is linear in stream length so times normalise.
        const size_t slice_len = n > 100 ? (64 << 10) : (512 << 10);
        genome::Sequence slice = w.genome.slice(0, slice_len);
        const double scale = static_cast<double>(genome_len) /
                             static_cast<double>(slice_len);
        hscan::DatabaseOptions opts;
        if (n > 100) // a DFA attempt on >100k NFA states is futile
            opts.mode = hscan::ScanMode::BitParallel;
        hscan::Database db =
            hscan::Database::compile(set.specsForStream(false), opts);
        Stopwatch timer;
        hscan::Scanner scanner(db);
        scanner.scanAll(slice);
        const double hscan_s = timer.seconds() * scale;

        bench::SpatialEstimate fpga =
            bench::estimateFpga(genome_len, set);
        bench::SpatialEstimate ap = bench::estimateAp(genome_len, set);
        bench::SpatialEstimate infant =
            bench::estimateInfant2(w.genome, set);

        baselines::CasOffinderWork coff =
            bench::estimateCasOffinderWork(w.genome, set);
        const double coff_s = gpu_model.kernelSeconds(coff);
        // CasOT direct-cost estimate: PAM sites x guides x full guide
        // compare, at the measured single-thread compare throughput
        // (~1e9 base compares/s on this host; conservative).
        const double casot_s =
            static_cast<double>(coff.pamHits) * n * 20.0 / 1.0e9;

        table.row()
            .add(static_cast<uint64_t>(n))
            .add(hscan_s, 3)
            .add(infant.kernelSeconds, 3)
            .add(fpga.kernelSeconds, 3)
            .add(static_cast<uint64_t>(fpga.passes))
            .add(ap.kernelSeconds, 3)
            .add(static_cast<uint64_t>(ap.passes))
            .add(coff_s, 3)
            .add(casot_s, 3);
    }
    std::printf("%s", table.str().c_str());
    std::printf("hscan times are normalised from a 64-512 KB slice; "
                "casot is an analytic direct-mode estimate; spatial "
                "columns are capacity-model estimates (functional "
                "equivalence is covered by the tests).\n");
    return 0;
}
