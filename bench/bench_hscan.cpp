/**
 * @file
 * HScan kernel throughput: bytes/sec of the multi-pattern Shift-Or
 * scan at each SIMD tier (scalar / AVX2 / AVX-512), swept over
 * mismatch budget d = 1/3/5 and 10/100/1000 guides. This is the
 * kernel-level companion to bench_service: no sessions, no chunking —
 * one Scanner, one genome pass, so the tier comparison measures the
 * vector kernels and nothing else.
 *
 * --simd-compare emits the full tier matrix; the default run measures
 * only the host's best tier. Either way a BENCH_hscan.json row is
 * written (see --json) for CI trend tracking, like BENCH_service.json.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/logging.hpp"
#include "common/table.hpp"
#include "core/compile.hpp"
#include "hscan/multipattern.hpp"
#include "hscan/simd.hpp"
#include "workloads.hpp"

using namespace crispr;

namespace {

double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

struct Cell
{
    hscan::SimdTier tier;
    int d;
    size_t guides;
    double bytesPerSec = 0.0;
    uint64_t events = 0;
};

/** Best-of-`reps` whole-genome pass through one forced-tier Scanner. */
Cell
measure(const hscan::Database &db, const genome::Sequence &genome,
        hscan::SimdTier tier, int d, size_t guides, int reps)
{
    Cell cell;
    cell.tier = tier;
    cell.d = d;
    cell.guides = guides;
    for (int rep = 0; rep < reps; ++rep) {
        hscan::Scanner scanner(db, tier);
        if (scanner.simdTier() != tier)
            fatal("tier %s was not honoured (got %s)",
                  hscan::simdTierName(tier),
                  hscan::simdTierName(scanner.simdTier()));
        uint64_t events = 0;
        const double start = now();
        scanner.scan(genome.codes(),
                     [&](uint32_t, uint64_t) { ++events; });
        const double seconds = now() - start;
        cell.events = events;
        cell.bytesPerSec = std::max(
            cell.bytesPerSec,
            static_cast<double>(genome.size()) / seconds);
    }
    return cell;
}

const Cell *
findCell(const std::vector<Cell> &cells, hscan::SimdTier tier, int d,
         size_t guides)
{
    for (const Cell &c : cells)
        if (c.tier == tier && c.d == d && c.guides == guides)
            return &c;
    return nullptr;
}

} // namespace

int
main(int argc, char **argv)
{
    Cli cli("HSCAN: Shift-Or kernel throughput per SIMD tier");
    cli.addInt("genome-mb", 1, "genome size in MB");
    cli.addInt("reps", 1, "passes per cell (best kept)");
    cli.addBool("simd-compare",
                "measure every usable tier (scalar/avx2/avx512) "
                "instead of only the best one");
    cli.addString("json", "BENCH_hscan.json",
                  "output path of the JSON result row");
    if (!cli.parse(argc, argv))
        return 0;

    const size_t genome_bytes =
        static_cast<size_t>(cli.getInt("genome-mb")) << 20;
    const int reps = static_cast<int>(cli.getInt("reps"));
    const bool compare = cli.getBool("simd-compare");
    const std::string json_path = cli.getString("json");

    bench::printBanner(
        "HSCAN", "Shift-Or kernel throughput per SIMD tier",
        "the bit-parallel CPU path is the paper's software baseline; "
        "the vector tiers must scan bytes faster without changing one "
        "reported event");

    // A CRISPR_SIMD override pins every Scanner to one tier, so any
    // other requested tier would be measured at the pinned kernel —
    // only tiers that actually resolve to themselves are comparable.
    std::vector<hscan::SimdTier> tiers;
    if (compare) {
        for (hscan::SimdTier tier :
             {hscan::SimdTier::Scalar, hscan::SimdTier::Avx2,
              hscan::SimdTier::Avx512}) {
            if (hscan::simdTierUsable(tier) &&
                hscan::resolveSimdTier(tier) == tier)
                tiers.push_back(tier);
            else
                std::printf("note: tier %s not usable on this "
                            "host/build (or pinned away by "
                            "CRISPR_SIMD); skipped\n",
                            hscan::simdTierName(tier));
        }
    } else {
        tiers.push_back(hscan::resolveSimdTier());
    }

    static const int kBudgets[] = {1, 3, 5};
    static const size_t kGuideCounts[] = {10, 100, 1000};

    std::vector<Cell> cells;
    Table table({"d", "guides", "tier", "MB/s", "events"});
    for (int d : kBudgets) {
        for (size_t guides : kGuideCounts) {
            const bench::Workload w =
                bench::makeWorkload(genome_bytes, guides,
                                    /*seed=*/42 + d);
            const core::PatternSet set = core::buildPatternSet(
                w.guides, core::pamNRG(), d, /*both_strands=*/true);
            hscan::DatabaseOptions opts;
            opts.mode = hscan::ScanMode::BitParallel;
            const hscan::Database db = hscan::Database::compile(
                set.specsForStream(false), opts);

            uint64_t want_events = 0;
            for (hscan::SimdTier tier : tiers) {
                const Cell cell =
                    measure(db, w.genome, tier, d, guides, reps);
                // Tier equivalence is asserted here too, not just in
                // the test matrix: every tier must see the same
                // number of events on the same workload.
                if (tier == tiers.front())
                    want_events = cell.events;
                else if (cell.events != want_events)
                    fatal("tier %s saw %llu events, expected %llu",
                          hscan::simdTierName(tier),
                          static_cast<unsigned long long>(cell.events),
                          static_cast<unsigned long long>(want_events));
                table.row()
                    .add(static_cast<uint64_t>(d))
                    .add(static_cast<uint64_t>(guides))
                    .add(hscan::simdTierName(tier))
                    .add(cell.bytesPerSec / (1 << 20), 2)
                    .add(cell.events);
                cells.push_back(cell);
            }
        }
    }
    std::printf("%s", table.str().c_str());

    // The acceptance cell: vector speedup over scalar at d=3,
    // 100 guides (the mid-size shape engine=auto calibrates against).
    if (compare) {
        const Cell *scalar =
            findCell(cells, hscan::SimdTier::Scalar, 3, 100);
        for (hscan::SimdTier tier :
             {hscan::SimdTier::Avx2, hscan::SimdTier::Avx512}) {
            const Cell *vec = findCell(cells, tier, 3, 100);
            if (scalar && vec)
                std::printf("simd-compare: %s %.2fx over scalar at "
                            "d=3 guides=100 (bar: >= 2x)\n",
                            hscan::simdTierName(tier),
                            vec->bytesPerSec / scalar->bytesPerSec);
        }
    }

    std::ofstream json(json_path);
    if (json) {
        json << "{\"bench\": \"hscan\", \"genome_bytes\": "
             << genome_bytes << ", \"reps\": " << reps
             << ", \"best_tier\": \""
             << hscan::simdTierName(hscan::bestSimdTier()) << "\"";
        for (const Cell &cell : cells)
            json << ", \"shiftor_" << hscan::simdTierName(cell.tier)
                 << "_d" << cell.d << "_g" << cell.guides
                 << "_bps\": " << cell.bytesPerSec;
        if (compare) {
            const Cell *scalar =
                findCell(cells, hscan::SimdTier::Scalar, 3, 100);
            for (hscan::SimdTier tier :
                 {hscan::SimdTier::Avx2, hscan::SimdTier::Avx512}) {
                const Cell *vec = findCell(cells, tier, 3, 100);
                if (scalar && vec)
                    json << ", \"" << hscan::simdTierName(tier)
                         << "_speedup_d3_g100\": "
                         << vec->bytesPerSec / scalar->bytesPerSec;
            }
        }
        json << "}\n";
        std::printf("wrote %s\n", json_path.c_str());
    }
    return 0;
}
