#include "workloads.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>

#include "automata/builders.hpp"
#include "common/logging.hpp"

namespace crispr::bench {

using core::EngineKind;
using core::PatternSet;

Workload
makeWorkload(size_t genome_len, size_t num_guides, uint64_t seed)
{
    Workload w;
    genome::GenomeSpec spec;
    spec.length = genome_len;
    spec.model = genome::CompositionModel::GcBiased;
    spec.n_fraction = 0.003;
    spec.seed = seed;
    w.genome = genome::generateGenome(spec);
    w.guides = core::guidesFromGenome(w.genome, num_guides, 20, seed + 1);
    return w;
}

core::EngineParams
defaultParams()
{
    core::EngineParams params;
    // Benchmarks favour the analytic device models beyond 1 MB so the
    // harness completes quickly; correctness of the analytic path is
    // covered by the test suite.
    params.fullSimSymbolLimit = 1ull << 20;
    params.gpuChunk = 512 << 10;
    return params;
}

/**
 * When CRISPR_BENCH_METRICS_JSON names a file, every bench row appends
 * one compact JSON line there (engine, workload shape, full metric
 * map), so a sweep leaves a machine-readable artifact next to the
 * stdout tables. Append-only: multiple binaries in one CI run share
 * the file.
 */
void
exportRowMetrics(const Row &row, const Workload &w, int d)
{
    static const char *path = std::getenv("CRISPR_BENCH_METRICS_JSON");
    if (!path)
        return;
    static std::mutex mu;
    std::lock_guard<std::mutex> lock(mu);
    std::ofstream out(path, std::ios::app);
    if (!out)
        return;
    out << "{\"engine\": \"" << row.engine
        << "\", \"genome_bytes\": " << w.genome.size()
        << ", \"guides\": " << w.guides.size() << ", \"d\": " << d
        << ", \"hits\": " << row.hits
        << ", \"kernel_seconds\": " << row.kernelSeconds
        << ", \"metrics\": {";
    bool first = true;
    for (const auto &[key, value] : row.metrics) {
        out << (first ? "" : ", ") << "\"" << key << "\": ";
        if (std::isfinite(value))
            out << value;
        else
            out << "null";
        first = false;
    }
    out << "}}\n";
}

Row
runRow(EngineKind engine, const Workload &w, int d,
       const core::EngineParams &params, const core::PamSpec &pam)
{
    core::SearchConfig cfg;
    cfg.engine = engine;
    cfg.maxMismatches = d;
    cfg.pam = pam;
    cfg.params = params;
    if (!w.session)
        w.session = std::make_shared<core::SearchSession>(
            w.guides, core::SearchConfig{}, /*cache_capacity=*/16);
    core::SearchResult res = w.session->search(w.genome, cfg);

    Row row;
    row.engine = core::engineName(engine);
    row.compileSeconds = res.run.timing.compileSeconds;
    row.hostSeconds = res.run.timing.hostSeconds;
    row.kernelSeconds = res.run.timing.kernelSeconds;
    row.totalSeconds = res.run.timing.totalSeconds;
    row.hits = res.hits.size();
    row.events = res.run.events.size();
    row.metrics = res.run.metrics;
    exportRowMetrics(row, w, d);
    return row;
}

baselines::CasOffinderWork
estimateCasOffinderWork(const genome::Sequence &g, const PatternSet &set)
{
    baselines::CasOffinderWork work;
    work.genomeBytes = g.size();

    // Group patterns by exact-region layout, as the tool's stage 1 does.
    // For the guide+PAM shapes built by core::buildPatternSet there are
    // at most two shapes (forward, reverse).
    struct Shape
    {
        std::vector<std::pair<size_t, genome::BaseMask>> exact;
        size_t len;
        size_t guides = 0;
        double meanCompare = 0.0;
    };
    std::vector<Shape> shapes;
    for (const core::Pattern &p : set.patterns) {
        const auto &spec = p.spec;
        Shape key;
        key.len = spec.masks.size();
        const size_t hi = std::min(spec.mismatchHi, key.len);
        for (size_t j = 0; j < key.len; ++j)
            if (j < spec.mismatchLo || j >= hi)
                key.exact.emplace_back(j, spec.masks[j]);
        // Expected early-exit depth: mismatches arrive with probability
        // 3/4 per position on random background; the compare stops
        // after d+1 mismatches.
        key.meanCompare = std::min<double>(
            static_cast<double>(hi - spec.mismatchLo),
            (spec.maxMismatches + 1) / 0.75);
        auto it = std::find_if(shapes.begin(), shapes.end(),
                               [&](const Shape &s) {
                                   return s.exact == key.exact &&
                                          s.len == key.len;
                               });
        if (it == shapes.end()) {
            shapes.push_back(key);
            it = shapes.end() - 1;
        }
        ++it->guides;
        it->meanCompare = key.meanCompare;
    }

    for (const Shape &shape : shapes) {
        if (g.size() < shape.len)
            continue;
        uint64_t candidates = 0;
        const uint64_t positions = g.size() - shape.len + 1;
        work.positionsScanned += positions;
        for (uint64_t s = 0; s < positions; ++s) {
            bool ok = true;
            for (auto [j, mask] : shape.exact) {
                ++work.basesCompared;
                if (!genome::maskMatches(mask, g[s + j])) {
                    ok = false;
                    break;
                }
            }
            candidates += ok;
        }
        work.pamHits += candidates;
        work.comparisons += candidates * shape.guides;
        work.basesCompared += static_cast<uint64_t>(
            static_cast<double>(candidates) * shape.guides *
            shape.meanCompare);
    }
    return work;
}

namespace {

automata::NfaStats
unionStats(const PatternSet &set)
{
    automata::NfaStats total;
    for (const core::Pattern &p : set.patterns) {
        automata::Nfa nfa = automata::buildHammingNfa(p.spec);
        automata::NfaStats s = automata::computeStats(nfa);
        total.states += s.states;
        total.edges += s.edges;
        total.startStates += s.startStates;
        total.reportStates += s.reportStates;
        total.maxFanOut = std::max(total.maxFanOut, s.maxFanOut);
        total.maxFanIn = std::max(total.maxFanIn, s.maxFanIn);
    }
    return total;
}

} // namespace

SpatialEstimate
estimateFpga(uint64_t symbols, const PatternSet &set,
             const fpga::FpgaDeviceSpec &spec)
{
    automata::NfaStats stats = unionStats(set);
    fpga::ResourceEstimate res = fpga::estimateResources(stats, spec);
    SpatialEstimate e;
    e.clockHz = res.clockHz;
    e.passes = res.passes;
    e.stateCount = stats.states;
    e.utilization = res.lutUtilization;
    const double stream = static_cast<double>(symbols) / res.clockHz;
    const double pcie =
        static_cast<double>(symbols) / (spec.pcieGBs * 1e9);
    e.kernelSeconds = std::max(stream, pcie) * res.passes;
    e.totalSeconds =
        e.kernelSeconds + spec.configureSeconds * res.passes;
    return e;
}

SpatialEstimate
estimateAp(uint64_t symbols, const PatternSet &set, bool counter_design,
           const ap::ApDeviceSpec &spec)
{
    std::vector<ap::MachineStats> machines;
    machines.reserve(set.patterns.size());
    for (const core::Pattern &p : set.patterns) {
        ap::MachineStats ms;
        if (counter_design) {
            const size_t len = p.spec.masks.size();
            const size_t lo = p.spec.mismatchLo;
            ms.stes = lo + 2 * (len - lo); // PAM chain + chain + detectors
            ms.counters = 1;
            ms.gates = 1;
        } else {
            ms.stes = automata::hammingNfaStates(
                p.spec.masks.size(), p.spec.maxMismatches,
                p.spec.mismatchLo, p.spec.mismatchHi);
        }
        machines.push_back(ms);
    }
    ap::Placement placement = ap::placeMachines(machines, spec);

    SpatialEstimate e;
    e.clockHz = spec.clockHz;
    e.passes = placement.passes;
    e.stateCount = placement.stes;
    e.utilization = placement.utilization;
    // The counter design needs a forward and a reversed pass.
    const uint64_t streamed = counter_design ? 2 * symbols : symbols;
    e.kernelSeconds =
        static_cast<double>(streamed) / spec.clockHz * placement.passes;
    e.totalSeconds = e.kernelSeconds +
                     spec.configureSeconds * placement.passes;
    return e;
}

SpatialEstimate
estimateInfant2(const genome::Sequence &g, const PatternSet &set,
                const gpu::SimtModel &model, size_t chunk)
{
    std::vector<automata::Nfa> nfas;
    for (const core::Pattern &p : set.patterns)
        nfas.push_back(automata::buildHammingNfa(p.spec));
    automata::Nfa u = automata::unionNfas(nfas);
    gpu::TransitionGraph graph(u);

    uint64_t hist[genome::kNumSymbols] = {};
    for (size_t i = 0; i < g.size(); ++i)
        ++hist[g[i]];
    const size_t overlap = set.siteLength() + 2;
    gpu::Infant2Work work =
        gpu::workFromHistogram(graph, hist, g.size(), chunk, overlap);
    gpu::Infant2Time t =
        gpu::estimateInfant2Time(work, graph, g.size(), model);

    SpatialEstimate e;
    e.clockHz = model.clockHz;
    e.passes = 1;
    e.stateCount = u.size();
    e.kernelSeconds = t.kernelSeconds;
    e.totalSeconds = t.totalSeconds();
    return e;
}

void
printBanner(const std::string &id, const std::string &title,
            const std::string &paper_claim)
{
    std::printf("\n================================================"
                "===============================\n");
    std::printf("%s: %s\n", id.c_str(), title.c_str());
    if (!paper_claim.empty())
        std::printf("paper: %s\n", paper_claim.c_str());
    std::printf("================================================"
                "===============================\n");
}

std::string
speedupCell(double base, double other)
{
    if (other <= 0.0)
        return "n/a";
    return strprintf("%.1fx", base / other);
}

} // namespace crispr::bench
