/**
 * @file
 * E3 — CPU comparison (paper Fig.: single-thread HyperScan vs CasOT):
 * measured wall-clock of the HScan engine against the CasOT
 * reimplementation (direct and indexed modes) over a mismatch sweep.
 * The paper's >=29.7x claim was against the original Perl CasOT; the
 * "casot perl-adj" column applies the documented scripting factor.
 */

#include <cstdio>

#include "workloads.hpp"

#include "common/cli.hpp"

using namespace crispr;

int
main(int argc, char **argv)
{
    Cli cli("E3: CPU engines vs CasOT over a mismatch sweep");
    cli.addInt("genome-mb", 8, "genome size in MB");
    cli.addInt("guides", 10, "number of guides");
    cli.addInt("max-d", 4, "largest mismatch budget");
    if (!cli.parse(argc, argv))
        return 0;

    const size_t genome_len =
        static_cast<size_t>(cli.getInt("genome-mb")) << 20;
    const size_t guides = static_cast<size_t>(cli.getInt("guides"));

    bench::printBanner(
        "E3",
        strprintf("CPU: HScan vs CasOT — %zu MB genome, %zu guides, "
                  "NRG PAM, both strands",
                  genome_len >> 20, guides),
        "HyperScan outperforms CasOT by over 29.7x (vs the Perl "
        "original; measured C++ CasOT is a conservative stand-in)");

    bench::Workload w = bench::makeWorkload(genome_len, guides);
    core::EngineParams params = bench::defaultParams();

    Table table({"d", "hscan (s)", "hscan path", "prefilter (s)",
                 "casot (s)", "casot-indexed (s)", "casot perl-adj (s)",
                 "hscan vs casot", "hscan vs perl-adj", "hits"});

    for (int d = 1; d <= cli.getInt("max-d"); ++d) {
        bench::Row hscan =
            bench::runRow(core::EngineKind::HscanAuto, w, d, params);
        bench::Row prefilter = bench::runRow(
            core::EngineKind::HscanPrefilter, w, d, params);
        bench::Row casot =
            bench::runRow(core::EngineKind::CasOt, w, d, params);
        bench::Row casot_idx =
            bench::runRow(core::EngineKind::CasOtIndexed, w, d, params);
        const double perl_adj =
            casot.metrics.count("casot.perl_adjusted_s")
                ? casot.metrics.at("casot.perl_adjusted_s")
                : 0.0;

        table.row()
            .add(d)
            .add(hscan.kernelSeconds, 3)
            .add(hscan.metrics.at("hscan.dfa_path") > 0.5
                     ? "dfa"
                     : "bit-parallel")
            .add(prefilter.kernelSeconds, 3)
            .add(casot.kernelSeconds, 3)
            .add(casot_idx.kernelSeconds, 3)
            .add(perl_adj, 2)
            .add(bench::speedupCell(casot.kernelSeconds,
                                    hscan.kernelSeconds))
            .add(bench::speedupCell(perl_adj, hscan.kernelSeconds))
            .add(static_cast<uint64_t>(hscan.hits));
    }
    std::printf("%s", table.str().c_str());
    std::printf("expected shape: hscan ~flat-ish in d; casot-indexed "
                "grows combinatorially in d (seed-variant explosion).\n");
    return 0;
}
