/**
 * @file
 * E13 (extension) — Bulge-tolerant search: the paper's Hamming
 * formulation extended to DNA/RNA bulges via edit-distance automata.
 * Shows (a) automaton growth vs the bulge budget and its capacity
 * impact, (b) extra hits bulges uncover, (c) per-engine cost.
 */

#include <cstdio>

#include "workloads.hpp"

#include "ap/capacity.hpp"
#include "automata/edit.hpp"
#include "common/cli.hpp"
#include "common/stopwatch.hpp"
#include "core/bulge.hpp"
#include "fpga/resource.hpp"

using namespace crispr;

int
main(int argc, char **argv)
{
    Cli cli("E13: bulge-tolerant search (edit-distance automata)");
    cli.addInt("genome-kb", 2048, "genome size in KB");
    cli.addInt("guides", 4, "number of guides");
    cli.addInt("d", 2, "mismatch budget");
    cli.addInt("max-bulges", 2, "largest bulge budget");
    if (!cli.parse(argc, argv))
        return 0;

    const int d = static_cast<int>(cli.getInt("d"));
    bench::printBanner(
        "E13 (extension)",
        strprintf("bulge-tolerant search — d=%d, bulges 0..%lld", d,
                  static_cast<long long>(cli.getInt("max-bulges"))),
        "the automata formulation absorbs indels by construction; "
        "brute-force tools would need a new candidate-verification "
        "kernel");

    bench::Workload w = bench::makeWorkload(
        static_cast<size_t>(cli.getInt("genome-kb")) << 10,
        static_cast<size_t>(cli.getInt("guides")), 81);

    Table table({"bulges", "NFA states/guide", "AP guides/board",
                 "FPGA clock", "hits", "reference scan (s)",
                 "fpga kernel (s)"});

    for (int b = 0; b <= cli.getInt("max-bulges"); ++b) {
        auto specs = core::buildEditSpecs(w.guides, core::pamNRG(), d,
                                          b, true);
        automata::Nfa one = automata::buildEditNfa(specs[0]);
        automata::Nfa merged;
        for (const auto &s : specs)
            merged.merge(automata::buildEditNfa(s));
        automata::NfaStats stats = automata::computeStats(merged);

        // Capacity impact.
        ap::MachineStats per{one.size() * 2, 0, 0, 0};
        const uint64_t ap_guides = ap::machinesPerBoard(per) ;
        fpga::ResourceEstimate fres = fpga::estimateResources(stats);

        core::BulgeConfig cfg;
        cfg.maxMismatches = d;
        cfg.maxBulges = b;
        cfg.engine = core::EngineKind::Reference;
        Stopwatch timer;
        core::BulgeResult res = core::bulgeSearch(w.genome, w.guides,
                                                  cfg);
        const double ref_s = timer.seconds();
        const double fpga_kernel =
            static_cast<double>(w.genome.size()) / fres.clockHz *
            fres.passes;

        table.row()
            .add(b)
            .add(static_cast<uint64_t>(one.size()))
            .add(ap_guides)
            .add(strprintf("%.0f MHz", fres.clockHz / 1e6))
            .add(static_cast<uint64_t>(res.hits.size()))
            .add(ref_s, 3)
            .add(fpga_kernel, 4);
    }
    std::printf("%s", table.str().c_str());
    std::printf("spatial platforms pay only capacity (more STEs per "
                "guide) for bulge support; the stream rate — and hence "
                "kernel time — is unchanged.\n");
    return 0;
}
