/**
 * @file
 * E4 — GPU comparison (paper Fig.: iNFAnt2 vs Cas-OFFinder): modelled
 * device time of the iNFAnt2 transition-list engine against the
 * Cas-OFFinder GPU device model and the measured single-thread HScan,
 * over a mismatch sweep. The paper's findings to reproduce: iNFAnt2 is
 * NOT consistently faster than Cas-OFFinder, and is at best a few times
 * faster than single-thread HyperScan.
 */

#include <cstdio>

#include "workloads.hpp"

#include "common/cli.hpp"

using namespace crispr;

int
main(int argc, char **argv)
{
    Cli cli("E4: GPU engines over a mismatch sweep");
    cli.addInt("genome-mb", 4, "genome size in MB");
    cli.addInt("guides", 10, "number of guides");
    cli.addInt("max-d", 4, "largest mismatch budget");
    if (!cli.parse(argc, argv))
        return 0;

    const size_t genome_len =
        static_cast<size_t>(cli.getInt("genome-mb")) << 20;
    const size_t guides = static_cast<size_t>(cli.getInt("guides"));

    bench::printBanner(
        "E4",
        strprintf("GPU: iNFAnt2 vs Cas-OFFinder — %zu MB genome, %zu "
                  "guides", genome_len >> 20, guides),
        "iNFAnt2 not consistently better than CasOFFinder; at best "
        "~4.4x vs single-thread HyperScan");

    bench::Workload w = bench::makeWorkload(genome_len, guides);
    core::EngineParams params = bench::defaultParams();

    Table table({"d", "infant2 (s)", "casoffinder (s)", "hscan cpu (s)",
                 "infant2 vs casoffinder", "infant2 vs hscan",
                 "translist/symbol"});

    for (int d = 1; d <= cli.getInt("max-d"); ++d) {
        bench::Row infant =
            bench::runRow(core::EngineKind::GpuInfant2, w, d, params);
        bench::Row coff =
            bench::runRow(core::EngineKind::CasOffinder, w, d, params);
        bench::Row hscan =
            bench::runRow(core::EngineKind::HscanAuto, w, d, params);

        const double trans =
            infant.metrics.count("gpu.transitions_fetched")
                ? infant.metrics.at("gpu.transitions_fetched") /
                      static_cast<double>(w.genome.size())
                : 0.0;
        table.row()
            .add(d)
            .add(infant.kernelSeconds, 4)
            .add(coff.kernelSeconds, 4)
            .add(hscan.kernelSeconds, 4)
            .add(bench::speedupCell(coff.kernelSeconds,
                                    infant.kernelSeconds))
            .add(bench::speedupCell(hscan.kernelSeconds,
                                    infant.kernelSeconds))
            .add(trans, 1);
    }
    std::printf("%s", table.str().c_str());
    std::printf("expected shape: iNFAnt2 time grows with d (transition "
                "lists grow); Cas-OFFinder stays cheap at low guide "
                "counts, so the GPU NFA engine does not consistently "
                "win.\n");
    return 0;
}
