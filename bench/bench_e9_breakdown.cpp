/**
 * @file
 * E9 — End-to-end time decomposition (paper Fig./discussion of the
 * "1.5x is kernel-only" caveat): configure / input-transfer / kernel /
 * output-drain per platform. The AP's reconfiguration and the FPGA's
 * bitstream load dominate small inputs and amortise on large ones.
 */

#include <cstdio>

#include "workloads.hpp"

#include "ap/capacity.hpp"
#include "common/cli.hpp"

using namespace crispr;

int
main(int argc, char **argv)
{
    Cli cli("E9: end-to-end decomposition per platform");
    cli.addInt("genome-mb", 16, "genome size in MB");
    cli.addInt("guides", 200, "number of guides");
    cli.addInt("d", 4, "mismatch budget");
    if (!cli.parse(argc, argv))
        return 0;

    const size_t genome_len =
        static_cast<size_t>(cli.getInt("genome-mb")) << 20;
    const size_t guides = static_cast<size_t>(cli.getInt("guides"));
    const int d = static_cast<int>(cli.getInt("d"));

    bench::printBanner(
        "E9",
        strprintf("time decomposition — %zu MB, %zu guides, d=%d",
                  genome_len >> 20, guides, d),
        "kernel-only AP advantage shrinks end-to-end (configuration "
        "and output drain)");

    bench::Workload w = bench::makeWorkload(genome_len, guides, 41);
    core::PatternSet set =
        core::buildPatternSet(w.guides, core::pamNRG(), d, true);

    // Event census for the output-drain models, from the fast CPU path.
    baselines::GpuDeviceModel gpu_model;
    baselines::CasOffinderWork coff =
        bench::estimateCasOffinderWork(w.genome, set);
    const uint64_t events = coff.pamHits / 64; // matches << candidates

    Table table({"platform", "configure (s)", "transfer (s)",
                 "kernel (s)", "output (s)", "total (s)",
                 "kernel share"});

    // FPGA.
    {
        bench::SpatialEstimate e =
            bench::estimateFpga(genome_len, set);
        fpga::FpgaDeviceSpec spec;
        const double configure = spec.configureSeconds * e.passes;
        const double output = static_cast<double>(events) * 8.0 / 1.5e9;
        const double total = configure + e.kernelSeconds + output;
        table.row()
            .add("fpga")
            .add(configure, 3)
            .add("(overlapped)")
            .add(e.kernelSeconds, 3)
            .add(output, 4)
            .add(total, 3)
            .add(e.kernelSeconds / total, 2);
    }
    // AP.
    {
        bench::SpatialEstimate e = bench::estimateAp(genome_len, set);
        ap::ApDeviceSpec spec;
        ap::ApTimeBreakdown t =
            ap::estimateRun(genome_len, events, e.passes, spec);
        const double total =
            t.configureSeconds + e.kernelSeconds + t.outputSeconds;
        table.row()
            .add("ap (matrix)")
            .add(t.configureSeconds, 3)
            .add("(overlapped)")
            .add(e.kernelSeconds, 3)
            .add(t.outputSeconds, 4)
            .add(total, 3)
            .add(e.kernelSeconds / total, 2);
    }
    // GPU iNFAnt2.
    {
        bench::SpatialEstimate e = bench::estimateInfant2(w.genome, set);
        const double transfer = e.totalSeconds - e.kernelSeconds;
        table.row()
            .add("infant2-gpu")
            .add(0.0, 3)
            .add(formatSeconds(transfer))
            .add(e.kernelSeconds, 3)
            .add(0.0, 4)
            .add(e.totalSeconds, 3)
            .add(e.kernelSeconds / e.totalSeconds, 2);
    }
    // Cas-OFFinder.
    {
        const double kernel = gpu_model.kernelSeconds(coff);
        const double total = gpu_model.totalSeconds(coff);
        table.row()
            .add("casoffinder")
            .add(0.0, 3)
            .add(formatSeconds(static_cast<double>(genome_len) /
                               (gpu_model.pcieGBs * 1e9)))
            .add(kernel, 3)
            .add(formatSeconds(total - kernel -
                               static_cast<double>(genome_len) /
                                   (gpu_model.pcieGBs * 1e9)))
            .add(total, 3)
            .add(kernel / total, 2);
    }
    std::printf("%s", table.str().c_str());

    // The paper's caveat, quantified: kernel-only vs end-to-end ratio.
    bench::SpatialEstimate fpga = bench::estimateFpga(genome_len, set);
    bench::SpatialEstimate apx = bench::estimateAp(genome_len, set);
    ap::ApTimeBreakdown apt =
        ap::estimateRun(genome_len, events, apx.passes, {});
    const double fpga_total = fpga.totalSeconds;
    const double ap_total =
        apt.configureSeconds + apx.kernelSeconds + apt.outputSeconds;
    std::printf("\nAP vs FPGA: kernel-only %s, end-to-end %s "
                "(paper reports the 1.5x as kernel-only)\n",
                bench::speedupCell(fpga.kernelSeconds,
                                   apx.kernelSeconds).c_str(),
                bench::speedupCell(fpga_total, ap_total).c_str());
    return 0;
}
