/**
 * @file
 * E8 — Scaling with genome size (paper Fig.): every platform is linear
 * in the stream length; the slopes differ by orders of magnitude. The
 * crossover against the tools is independent of genome size (both
 * sides linear), which is why the paper's hg19 ratios transfer to the
 * synthetic genomes used here.
 */

#include <cstdio>

#include "workloads.hpp"

#include "common/cli.hpp"
#include "common/stopwatch.hpp"
#include "hscan/multipattern.hpp"

using namespace crispr;

int
main(int argc, char **argv)
{
    Cli cli("E8: runtime vs genome size");
    cli.addInt("guides", 10, "number of guides");
    cli.addInt("d", 3, "mismatch budget");
    cli.addInt("max-mb", 64, "largest genome size (MB)");
    if (!cli.parse(argc, argv))
        return 0;

    const size_t guides = static_cast<size_t>(cli.getInt("guides"));
    const int d = static_cast<int>(cli.getInt("d"));
    const size_t max_mb = static_cast<size_t>(cli.getInt("max-mb"));

    bench::printBanner(
        "E8",
        strprintf("runtime vs genome size — %zu guides, d=%d", guides,
                  d),
        "all platforms linear in genome length; slopes differ by "
        "orders of magnitude");

    // Build once at the largest size; prefixes give the smaller sizes.
    bench::Workload w = bench::makeWorkload(max_mb << 20, guides, 31);
    core::PatternSet set =
        core::buildPatternSet(w.guides, core::pamNRG(), d, true);
    hscan::Database db =
        hscan::Database::compile(set.specsForStream(false));

    baselines::GpuDeviceModel gpu_model;
    Table table({"genome", "hscan cpu (s)", "hscan MB/s", "infant2 (s)",
                 "fpga (s)", "ap (s)", "casoffinder (s)"});

    for (size_t mb = 1; mb <= max_mb; mb *= 4) {
        const size_t len = mb << 20;
        genome::Sequence g = w.genome.slice(0, len);

        Stopwatch timer;
        hscan::Scanner scanner(db);
        scanner.scanAll(g);
        const double hscan_s = timer.seconds();

        bench::SpatialEstimate fpga = bench::estimateFpga(len, set);
        bench::SpatialEstimate ap = bench::estimateAp(len, set);
        bench::SpatialEstimate infant = bench::estimateInfant2(g, set);
        baselines::CasOffinderWork coff =
            bench::estimateCasOffinderWork(g, set);

        table.row()
            .add(formatBytes(len))
            .add(hscan_s, 3)
            .add(static_cast<double>(len) / (hscan_s * 1e6), 1)
            .add(infant.kernelSeconds, 4)
            .add(fpga.kernelSeconds, 4)
            .add(ap.kernelSeconds, 4)
            .add(gpu_model.kernelSeconds(coff), 4);
    }
    std::printf("%s", table.str().c_str());
    return 0;
}
