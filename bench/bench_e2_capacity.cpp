/**
 * @file
 * E2 — Platform capacity (paper platform-configuration table): how many
 * guide patterns (both strands) fit on one AP D480 board and one KU060
 * FPGA, per mismatch budget, with utilisation.
 */

#include <cstdio>

#include "workloads.hpp"

#include "ap/capacity.hpp"
#include "automata/builders.hpp"
#include "common/cli.hpp"
#include "fpga/resource.hpp"

using namespace crispr;

int
main(int argc, char **argv)
{
    Cli cli("E2: guides per device vs mismatch budget");
    cli.addInt("max-d", 5, "largest mismatch budget");
    if (!cli.parse(argc, argv))
        return 0;

    bench::printBanner(
        "E2", "device capacity: guides per AP board / FPGA",
        "spatial capacity shrinks ~1/d for the matrix design; the "
        "counter design capacity is counter-bound and flat in d");

    ap::ApDeviceSpec ap_spec;
    fpga::FpgaDeviceSpec fpga_spec;
    auto guides = core::randomGuides(1, 20, 9);

    Table table({"d", "matrix STEs/guide", "AP guides/board",
                 "AP-counter guides/board", "FPGA guides/device",
                 "FPGA clock (MHz) @80% full"});

    for (int d = 1; d <= cli.getInt("max-d"); ++d) {
        core::PatternSet set =
            core::buildPatternSet(guides, core::pamNRG(), d, true);
        // Matrix machine resources per guide (2 strands).
        size_t stes = 0;
        for (const core::Pattern &p : set.patterns)
            stes += automata::hammingNfaStates(
                p.spec.masks.size(), p.spec.maxMismatches,
                p.spec.mismatchLo, p.spec.mismatchHi);
        ap::MachineStats per_strand{stes / 2, 0, 0, 0};
        uint64_t ap_guides =
            ap::machinesPerBoard(per_strand, ap_spec) / 2;

        // Counter design: PAM(3) + 2*20 STEs, 1 counter, 1 gate per
        // strand.
        ap::MachineStats counter{43, 1, 1, 0};
        uint64_t apc_guides =
            ap::machinesPerBoard(counter, ap_spec) / 2;

        // FPGA: how many guides until LUTs run out (solve by scaling a
        // one-guide estimate).
        automata::Nfa one =
            automata::buildHammingNfa(set.patterns[0].spec);
        automata::NfaStats ns = automata::computeStats(one);
        fpga::ResourceEstimate one_est =
            fpga::estimateResources(ns, fpga_spec);
        const double luts_per_guide =
            2.0 * static_cast<double>(one_est.luts - 256);
        uint64_t fpga_guides = static_cast<uint64_t>(
            (static_cast<double>(fpga_spec.luts) - 256.0) /
            luts_per_guide);

        // Clock at 80% utilisation.
        automata::NfaStats full = ns;
        full.states = static_cast<size_t>(0.8 * fpga_spec.luts * 0.8);
        full.edges = full.states * 2;
        fpga::ResourceEstimate full_est =
            fpga::estimateResources(full, fpga_spec);

        table.row()
            .add(d)
            .add(static_cast<uint64_t>(stes / 2))
            .add(ap_guides)
            .add(apc_guides)
            .add(fpga_guides)
            .add(full_est.clockHz / 1e6, 1);
    }
    std::printf("%s", table.str().c_str());
    std::printf("AP board: %u chips x %u STEs = %llu STEs; "
                "FPGA: %s (%llu LUTs)\n",
                ap_spec.chipsPerBoard(), ap_spec.stesPerChip(),
                static_cast<unsigned long long>(ap_spec.stesPerBoard()),
                fpga_spec.name,
                static_cast<unsigned long long>(fpga_spec.luts));
    return 0;
}
