/**
 * @file
 * E14 — The paper's proposed improvements for spatial architectures
 * (its closing contribution): genome striping, pattern partitioning,
 * and the stride-k input-rate architectural modification, evaluated on
 * the canonical many-guide workload with the D480 capacity model.
 */

#include <cstdio>

#include "workloads.hpp"

#include "ap/scaling.hpp"
#include "automata/builders.hpp"
#include "common/cli.hpp"

using namespace crispr;

int
main(int argc, char **argv)
{
    Cli cli("E14: proposed spatial-architecture improvements");
    cli.addInt("genome-mb", 64, "genome size in MB (modelled)");
    cli.addInt("guides", 8000, "number of guides (fills >1 board)");
    cli.addInt("d", 4, "mismatch budget");
    if (!cli.parse(argc, argv))
        return 0;

    const uint64_t symbols =
        static_cast<uint64_t>(cli.getInt("genome-mb")) << 20;
    const size_t guides = static_cast<size_t>(cli.getInt("guides"));
    const int d = static_cast<int>(cli.getInt("d"));

    bench::printBanner(
        "E14",
        strprintf("spatial improvements — %llu MB stream, %zu guides, "
                  "d=%d (D480 capacity model)",
                  static_cast<unsigned long long>(symbols >> 20),
                  guides, d),
        "striping/partitioning/striding, the paper's closing "
        "proposals");

    // Per-guide STE demand (both strands, matrix design).
    const uint64_t per_machine =
        automata::hammingNfaStates(23, d, 0, 20);
    const uint64_t total = per_machine * guides * 2;

    ap::ApDeviceSpec spec;
    Table table({"scheme", "devices", "passes/device", "STE x",
                 "kernel (s)", "speedup vs baseline"});
    const ap::ScalingEstimate base =
        ap::estimateBaseline(symbols, total, per_machine, spec);

    auto add = [&](const char *name, const ap::ScalingEstimate &e) {
        table.row()
            .add(name)
            .add(static_cast<uint64_t>(e.devices))
            .add(static_cast<uint64_t>(e.passesPerDevice))
            .add(e.steInflation, 2)
            .add(e.kernelSeconds, 3)
            .add(bench::speedupCell(base.kernelSeconds,
                                    e.kernelSeconds));
    };

    add("baseline (1 board)", base);
    add("genome striping x2",
        ap::estimateStriping(symbols, 22, 2, total, per_machine, spec));
    add("genome striping x4",
        ap::estimateStriping(symbols, 22, 4, total, per_machine, spec));
    add("pattern partition x2",
        ap::estimatePartition(symbols, 2, total, per_machine, spec));
    add("pattern partition x4",
        ap::estimatePartition(symbols, 4, total, per_machine, spec));
    add("input stride x2 (arch mod)",
        ap::estimateStride(symbols, 2, total, per_machine, spec));
    add("input stride x4 (arch mod)",
        ap::estimateStride(symbols, 4, total, per_machine, spec));

    std::printf("%s", table.str().c_str());
    std::printf("striping multiplies throughput with boards; "
                "partitioning removes reconfiguration passes; striding "
                "trades STE capacity (x%.1f at k=2) for symbol rate — "
                "the architectural modification the paper suggests for "
                "future automata hardware.\n",
                ap::strideInflation(2));
    return 0;
}
