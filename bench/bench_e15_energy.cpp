/**
 * @file
 * E15 — Energy comparison: kernel energy (power x kernel time) per
 * platform on the canonical workload. Spatial automata's win is even
 * larger in energy than in time because the AP and FPGA run at a small
 * fraction of a discrete GPU's power.
 */

#include <cstdio>

#include "workloads.hpp"

#include "common/cli.hpp"
#include "baselines/casot.hpp"

using namespace crispr;

int
main(int argc, char **argv)
{
    Cli cli("E15: kernel energy per platform");
    cli.addInt("genome-mb", 8, "genome size in MB");
    cli.addInt("guides", 200, "number of guides");
    cli.addInt("d", 4, "mismatch budget");
    cli.addInt("cpu-watts", 90, "host CPU package power under load");
    if (!cli.parse(argc, argv))
        return 0;

    const size_t genome_len =
        static_cast<size_t>(cli.getInt("genome-mb")) << 20;
    const size_t guides = static_cast<size_t>(cli.getInt("guides"));
    const int d = static_cast<int>(cli.getInt("d"));
    const double cpu_watts =
        static_cast<double>(cli.getInt("cpu-watts"));

    bench::printBanner(
        "E15",
        strprintf("kernel energy — %zu MB genome, %zu guides, d=%d",
                  genome_len >> 20, guides, d),
        "energy gaps exceed the time gaps: spatial automata run at a "
        "fraction of GPU/CPU power");

    bench::Workload w = bench::makeWorkload(genome_len, guides, 91);
    core::PatternSet set =
        core::buildPatternSet(w.guides, core::pamNRG(), d, true);

    ap::ApDeviceSpec ap_spec;
    fpga::FpgaDeviceSpec fpga_spec;
    gpu::SimtModel gpu_model;
    baselines::GpuDeviceModel coff_model;

    bench::SpatialEstimate fpga = bench::estimateFpga(genome_len, set);
    bench::SpatialEstimate ap = bench::estimateAp(genome_len, set);
    bench::SpatialEstimate infant =
        bench::estimateInfant2(w.genome, set, gpu_model);
    baselines::CasOffinderWork coff =
        bench::estimateCasOffinderWork(w.genome, set);
    const double coff_kernel = coff_model.kernelSeconds(coff);

    // CasOT measured (single thread, host CPU).
    auto specs = set.specsForStream(false);
    baselines::CasOtResult casot = baselines::casOtScan(w.genome, specs);

    // AP power: only the chips holding the design draw active power.
    std::vector<ap::MachineStats> machines;
    for (const core::Pattern &p : set.patterns)
        machines.push_back(ap::MachineStats{
            automata::hammingNfaStates(p.spec.masks.size(),
                                       p.spec.maxMismatches,
                                       p.spec.mismatchLo,
                                       p.spec.mismatchHi),
            0, 0, 0});
    ap::Placement placement = ap::placeMachines(machines, ap_spec);
    const double ap_watts =
        ap_spec.wattsPerChip * std::max<uint32_t>(1, placement.chipsUsed);

    Table table({"platform", "kernel (s)", "power (W)", "energy (J)",
                 "efficiency vs casoffinder"});
    const double coff_energy = coff_kernel * coff_model.watts;
    auto add = [&](const char *name, double kernel, double watts) {
        const double joules = kernel * watts;
        table.row()
            .add(name)
            .add(kernel, 4)
            .add(watts, 1)
            .add(joules, 3)
            .add(bench::speedupCell(coff_energy, joules));
    };
    add("ap (matrix)", ap.kernelSeconds, ap_watts);
    add("fpga", fpga.kernelSeconds, fpga_spec.watts);
    add("infant2-gpu", infant.kernelSeconds, gpu_model.watts);
    add("casoffinder (gpu)", coff_kernel, coff_model.watts);
    add("casot (cpu, measured)", casot.seconds, cpu_watts);

    std::printf("%s", table.str().c_str());
    std::printf("AP power scales with occupied chips (%u chip(s) "
                "here); CPU package power is a host-dependent "
                "estimate (--cpu-watts).\n",
                placement.chipsUsed);
    return 0;
}
