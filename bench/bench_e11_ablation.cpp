/**
 * @file
 * E11 — Design-choice ablations (DESIGN.md section 5):
 *   (a) AP matrix vs counter design: STE savings vs accuracy loss from
 *       the shared-counter trigger aliasing (full cycle sim vs golden);
 *   (b) CPU DFA vs bit-parallel path: where subset construction stops
 *       fitting and what that costs;
 *   (c) PAM stringency (NGG vs NRG): candidate and hit pressure.
 */

#include <algorithm>
#include <cstdio>

#include "workloads.hpp"

#include "common/cli.hpp"
#include "common/stopwatch.hpp"
#include "hscan/multipattern.hpp"

using namespace crispr;

namespace {

void
ablationCounterDesign(const bench::Workload &w,
                      const core::EngineParams &params)
{
    std::printf("\n(a) AP matrix vs counter design (full cycle sim, "
                "accuracy vs golden)\n");
    Table table({"d", "matrix STEs", "counter STEs+ctr", "STE ratio",
                 "golden hits", "counter hits", "missed", "spurious ev",
                 "counter kernel / matrix kernel"});
    for (int d = 1; d <= 3; ++d) {
        core::SearchConfig cfg;
        cfg.maxMismatches = d;
        cfg.params = params;
        cfg.params.fullSimSymbolLimit = 64ull << 20; // force full sim

        cfg.engine = core::EngineKind::Brute;
        auto golden = core::search(w.genome, w.guides, cfg);
        cfg.engine = core::EngineKind::Ap;
        auto matrix = core::search(w.genome, w.guides, cfg);
        cfg.engine = core::EngineKind::ApCounter;
        auto counter = core::search(w.genome, w.guides, cfg);

        size_t missed = 0;
        for (const auto &h : golden.hits) {
            if (std::find(counter.hits.begin(), counter.hits.end(),
                          h) == counter.hits.end())
                ++missed;
        }
        table.row()
            .add(d)
            .add(matrix.run.metrics.at("ap.stes"), 0)
            .add(counter.run.metrics.at("ap.stes"), 0)
            .add(matrix.run.metrics.at("ap.stes") /
                     counter.run.metrics.at("ap.stes"),
                 2)
            .add(static_cast<uint64_t>(golden.hits.size()))
            .add(static_cast<uint64_t>(counter.hits.size()))
            .add(static_cast<uint64_t>(missed))
            .add(static_cast<uint64_t>(counter.droppedEvents))
            .add(counter.run.timing.kernelSeconds /
                     matrix.run.timing.kernelSeconds,
                 2);
    }
    std::printf("%s", table.str().c_str());
    std::printf("counter design: O(L) STEs but trigger aliasing drops/"
                "adds events near overlapping PAM hits, and the second "
                "(reversed) stream pass doubles kernel time.\n");
}

void
ablationDfaVsBitParallel(const bench::Workload &w)
{
    std::printf("\n(b) CPU path: DFA vs bit-parallel\n");
    Table table({"d", "dfa states", "dfa bytes", "compile (s)",
                 "dfa scan (s)", "bitpar scan (s)", "fastest"});
    genome::Sequence slice = w.genome.slice(0, 2 << 20);
    for (int d = 0; d <= 3; ++d) {
        core::PatternSet set =
            core::buildPatternSet(w.guides, core::pamNRG(), d, true);
        auto specs = set.specsForStream(false);

        hscan::DatabaseOptions dopts;
        dopts.mode = hscan::ScanMode::Auto;
        dopts.maxDfaStates = 1u << 18;
        Stopwatch compile_timer;
        hscan::Database ddb = hscan::Database::compile(specs, dopts);
        const double compile_s = compile_timer.seconds();

        double dfa_s = -1.0;
        double dfa_states = 0.0, dfa_bytes = 0.0;
        if (ddb.effectiveMode() == hscan::ScanMode::Dfa) {
            hscan::Scanner scanner(ddb);
            Stopwatch t;
            scanner.scanAll(slice);
            dfa_s = t.seconds();
            dfa_states = ddb.dfaPrototype()->dfa().size();
            dfa_bytes =
                static_cast<double>(ddb.dfaPrototype()->dfa()
                                        .tableBytes());
        }
        hscan::DatabaseOptions bopts;
        bopts.mode = hscan::ScanMode::BitParallel;
        hscan::Scanner bscan(hscan::Database::compile(specs, bopts));
        Stopwatch t;
        bscan.scanAll(slice);
        const double bit_s = t.seconds();

        table.row()
            .add(d)
            .add(dfa_s >= 0 ? strprintf("%.0f", dfa_states)
                            : "over budget")
            .add(dfa_s >= 0 ? formatBytes(static_cast<uint64_t>(
                                  dfa_bytes))
                            : "-")
            .add(compile_s, 3)
            .add(dfa_s >= 0 ? strprintf("%.3f", dfa_s) : "-")
            .add(bit_s, 3)
            .add(dfa_s >= 0 && dfa_s < bit_s ? "dfa" : "bit-parallel");
    }
    std::printf("%s", table.str().c_str());
}

void
ablationPamStringency(const bench::Workload &w,
                      const core::EngineParams &params)
{
    std::printf("\n(c) PAM stringency: NGG vs NAG vs NRG (d=3)\n");
    Table table({"pam", "hits", "hscan (s)", "casoffinder candidates",
                 "casoffinder (s)"});
    baselines::GpuDeviceModel model;
    for (const core::PamSpec &pam :
         {core::pamNGG(), core::pamNAG(), core::pamNRG()}) {
        bench::Row hscan = bench::runRow(core::EngineKind::HscanAuto, w,
                                         3, params, pam);
        core::PatternSet set =
            core::buildPatternSet(w.guides, pam, 3, true);
        baselines::CasOffinderWork coff =
            bench::estimateCasOffinderWork(w.genome, set);
        table.row()
            .add(pam.iupac)
            .add(static_cast<uint64_t>(hscan.hits))
            .add(hscan.kernelSeconds, 3)
            .add(coff.pamHits)
            .add(model.kernelSeconds(coff), 4);
    }
    std::printf("%s", table.str().c_str());
    std::printf("the automata engines absorb the relaxed PAM for free "
                "(same stream rate); the brute-force tools pay "
                "proportionally to the candidate count.\n");
}

} // namespace

int
main(int argc, char **argv)
{
    Cli cli("E11: design ablations (counter design, DFA path, PAM)");
    cli.addInt("genome-kb", 2048, "genome size in KB");
    cli.addInt("guides", 4, "number of guides");
    if (!cli.parse(argc, argv))
        return 0;

    bench::printBanner("E11", "design-choice ablations",
                       "quantifies the trade-offs DESIGN.md section 3 "
                       "describes");

    bench::Workload w = bench::makeWorkload(
        static_cast<size_t>(cli.getInt("genome-kb")) << 10,
        static_cast<size_t>(cli.getInt("guides")), 61);
    core::EngineParams params = bench::defaultParams();

    ablationCounterDesign(w, params);
    ablationDfaVsBitParallel(w);
    ablationPamStringency(w, params);
    return 0;
}
