/**
 * @file
 * E5 — Spatial architectures vs the tools (paper's headline numbers):
 * FPGA and AP against Cas-OFFinder (GPU model) and CasOT (measured,
 * plus the Perl-adjusted column), at the canonical many-guide,
 * high-mismatch operating point where brute-force candidate
 * verification explodes and streaming automata stay flat.
 */

#include <cstdio>

#include "workloads.hpp"

#include "common/cli.hpp"
#include "common/stopwatch.hpp"
#include "baselines/casot.hpp"

using namespace crispr;

int
main(int argc, char **argv)
{
    Cli cli("E5: FPGA/AP vs CasOFFinder/CasOT at the canonical point");
    cli.addInt("genome-mb", 8, "genome size in MB");
    cli.addInt("guides", 200, "number of guides");
    cli.addInt("d", 4, "mismatch budget");
    if (!cli.parse(argc, argv))
        return 0;

    const size_t genome_len =
        static_cast<size_t>(cli.getInt("genome-mb")) << 20;
    const size_t guides = static_cast<size_t>(cli.getInt("guides"));
    const int d = static_cast<int>(cli.getInt("d"));

    bench::printBanner(
        "E5",
        strprintf("spatial: FPGA + AP vs tools — %zu MB genome, %zu "
                  "guides, d=%d", genome_len >> 20, guides, d),
        ">83x FPGA vs CasOFFinder, >600x FPGA vs CasOT(perl), AP "
        "kernel ~1.5x vs FPGA kernel");

    bench::Workload w = bench::makeWorkload(genome_len, guides);
    core::PatternSet set =
        core::buildPatternSet(w.guides, core::pamNRG(), d, true);

    // Spatial platforms: analytic estimates (capacity + clock models).
    bench::SpatialEstimate fpga =
        bench::estimateFpga(w.genome.size(), set);
    bench::SpatialEstimate ap = bench::estimateAp(w.genome.size(), set);
    bench::SpatialEstimate apc =
        bench::estimateAp(w.genome.size(), set, /*counter=*/true);

    // Cas-OFFinder: real algorithm run for the candidate census feeding
    // the GPU device model.
    baselines::GpuDeviceModel gpu_model;
    baselines::CasOffinderWork coff_work =
        bench::estimateCasOffinderWork(w.genome, set);
    const double coff_kernel = gpu_model.kernelSeconds(coff_work);
    const double coff_total = gpu_model.totalSeconds(coff_work);

    // CasOT: measured single-thread run of the direct algorithm.
    baselines::CasOtConfig casot_cfg;
    std::vector<automata::HammingSpec> specs = set.specsForStream(false);
    baselines::CasOtResult casot =
        baselines::casOtScan(w.genome, specs, casot_cfg);

    Table table({"platform", "kernel (s)", "total (s)",
                 "vs casoffinder (kernel)", "vs casot", "resources"});
    auto add = [&](const char *name, double kernel, double total,
                   const std::string &res) {
        table.row()
            .add(name)
            .add(kernel, 4)
            .add(total, 4)
            .add(bench::speedupCell(coff_kernel, kernel))
            .add(bench::speedupCell(casot.seconds, kernel))
            .add(res);
    };
    add("fpga", fpga.kernelSeconds, fpga.totalSeconds,
        strprintf("%llu states @ %.0f MHz, %u pass(es)",
                  static_cast<unsigned long long>(fpga.stateCount),
                  fpga.clockHz / 1e6, fpga.passes));
    add("ap (matrix)", ap.kernelSeconds, ap.totalSeconds,
        strprintf("%llu STEs, %u pass(es)",
                  static_cast<unsigned long long>(ap.stateCount),
                  ap.passes));
    add("ap (counter)", apc.kernelSeconds, apc.totalSeconds,
        strprintf("%llu STEs + counters, 2 stream passes",
                  static_cast<unsigned long long>(apc.stateCount)));
    table.row()
        .add("casoffinder (gpu model)")
        .add(coff_kernel, 4)
        .add(coff_total, 4)
        .add("1.0x")
        .add(bench::speedupCell(casot.seconds, coff_kernel))
        .add(strprintf("%llu candidates",
                       static_cast<unsigned long long>(
                           coff_work.pamHits)));
    table.row()
        .add("casot (measured C++)")
        .add(casot.seconds, 3)
        .add(casot.seconds, 3)
        .add(bench::speedupCell(coff_kernel, casot.seconds))
        .add("1.0x")
        .add(strprintf("%llu PAM sites",
                       static_cast<unsigned long long>(
                           casot.work.pamSites)));
    std::printf("%s", table.str().c_str());

    std::printf("\nheadline ratios:\n");
    std::printf("  FPGA vs CasOFFinder (kernel):   %s  (paper: >83x)\n",
                bench::speedupCell(coff_kernel,
                                   fpga.kernelSeconds).c_str());
    std::printf("  FPGA vs CasOT measured:         %s\n",
                bench::speedupCell(casot.seconds,
                                   fpga.kernelSeconds).c_str());
    std::printf("  FPGA vs CasOT perl-adjusted:    %s  (paper: >600x)\n",
                bench::speedupCell(casot.perlAdjustedSeconds(casot_cfg),
                                   fpga.kernelSeconds).c_str());
    std::printf("  AP kernel vs FPGA kernel:       %s  (paper: ~1.5x)\n",
                bench::speedupCell(fpga.kernelSeconds,
                                   ap.kernelSeconds).c_str());
    return 0;
}
