/**
 * @file
 * Bulge search example: finds off-target sites that plain Hamming
 * search misses because the genome carries a DNA/RNA bulge (an
 * inserted or deleted base) relative to the guide.
 *
 * Usage: bulge_search [--d 2] [--bulges 1] [--engine nfa-reference]
 */

#include <iostream>

#include "common/cli.hpp"
#include "common/logging.hpp"
#include "common/table.hpp"
#include "core/bulge.hpp"
#include "core/search.hpp"
#include "genome/generator.hpp"

using namespace crispr;

int
main(int argc, char **argv)
{
    Cli cli("Find bulge-tolerant off-target sites");
    cli.addInt("d", 2, "mismatch budget");
    cli.addInt("bulges", 1, "bulge budget");
    if (!cli.parse(argc, argv))
        return 0;

    // Demo genome with one planted clean site, one mismatched site and
    // one *bulged* site (deleted protospacer base) for the same guide.
    genome::GenomeSpec spec;
    spec.length = 1 << 20;
    spec.seed = 123;
    genome::Sequence genome_seq = genome::generateGenome(spec);
    core::Guide guide =
        core::makeGuide("demo", "GTCACCTCCAATGACTAGGG");

    genome::Sequence site = guide.protospacer;
    site.append(genome::Sequence::fromString("TGG"));
    genome::plantSite(genome_seq, 200000, site);

    Rng rng(5);
    genome::plantSite(genome_seq, 500000,
                      genome::mutateSite(site, 2, 0, 20, rng));

    genome::Sequence bulged; // delete protospacer position 7
    for (size_t i = 0; i < site.size(); ++i)
        if (i != 7)
            bulged.push_back(site[i]);
    genome::plantSite(genome_seq, 800000, bulged);

    const int d = static_cast<int>(cli.getInt("d"));
    const int b = static_cast<int>(cli.getInt("bulges"));

    // Plain Hamming search misses the bulged site...
    core::SearchConfig plain;
    plain.maxMismatches = d;
    core::SearchResult without =
        core::search(genome_seq, {guide}, plain);

    // ...the edit-distance automaton finds it.
    core::BulgeConfig cfg;
    cfg.maxMismatches = d;
    cfg.maxBulges = b;
    core::BulgeResult with_bulges =
        core::bulgeSearch(genome_seq, {guide}, cfg);

    std::cout << "guide " << guide.protospacer.str() << " + NRG, d="
              << d << ", bulges=" << b << "\n\n";
    std::cout << "hamming-only hits: " << without.hits.size() << "\n";
    for (const auto &h : without.hits)
        std::cout << "  start=" << h.start << " strand="
                  << core::strandStr(h.strand) << " mm="
                  << h.mismatches << "\n";
    std::cout << "bulge-tolerant hits: " << with_bulges.hits.size()
              << " (automaton: " << with_bulges.nfaStates
              << " states)\n";
    for (const auto &h : with_bulges.hits)
        std::cout << "  end=" << h.end << " strand="
                  << core::strandStr(h.strand) << "\n";
    std::cout << "\nthe site planted at 800000 (base deleted) appears "
                 "only in the bulge-tolerant result.\n";
    return 0;
}
