/**
 * @file
 * Quickstart: the smallest complete use of the library. Generates a
 * demo genome, plants a couple of off-target sites for a guide, runs
 * the default (HScan) engine, and prints the hits.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <iostream>

#include "core/report.hpp"
#include "core/session.hpp"
#include "genome/generator.hpp"

int
main()
{
    using namespace crispr;

    // 1. A genome. Real use: genome::readFastaFile("hg19.fa") +
    //    genome::concatenateRecords(...). Here: 1 MB synthetic.
    genome::GenomeSpec spec;
    spec.length = 1 << 20;
    spec.model = genome::CompositionModel::GcBiased;
    spec.seed = 2026;
    genome::Sequence genome_seq = genome::generateGenome(spec);

    // 2. A guide RNA (20-nt protospacer, 5'->3').
    core::Guide guide =
        core::makeGuide("demo-guide", "GACGCATAAAGATGAGACGC");

    // Plant an on-target site and two off-target sites (1 and 2
    // mismatches) so the demo has known answers.
    genome::Sequence site = guide.protospacer;
    site.append(genome::Sequence::fromString("TGG")); // NGG PAM
    Rng rng(7);
    genome::plantSite(genome_seq, 100000, site);
    genome::plantSite(genome_seq, 400000,
                      genome::mutateSite(site, 1, 0, 20, rng));
    genome::plantSite(genome_seq, 800000,
                      genome::mutateSite(site, 2, 0, 20, rng));

    // 3. Search: up to 3 mismatches, NGG+NAG PAMs, both strands. A
    //    SearchSession compiles the guide set once and reuses it for
    //    every search() — hold one per guide set when scanning more
    //    than one genome (one-shot code can call core::search instead).
    core::SearchConfig config;
    config.maxMismatches = 3;
    config.pam = core::pamNRG();
    config.engine = core::EngineKind::HscanAuto;

    core::SearchSession session({guide}, config);
    core::SearchResult result = session.search(genome_seq);

    // 4. Results.
    std::cout << "guide\tstart\tstrand\tmm\tsite (mismatches in "
                 "lower case)\n";
    core::printHits(std::cout, genome_seq, {guide}, result);
    std::cout << '\n';
    core::printSummary(std::cout, {guide}, result);
    std::cout << '\n' << core::timingLine(result.run) << '\n';
    return 0;
}
