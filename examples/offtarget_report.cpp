/**
 * @file
 * Off-target report: the CasOFFinder-style command-line workflow on
 * top of the library. Reads a (multi-record) FASTA reference and a
 * guide list, searches on a selectable engine, and writes a hit report
 * or CSV.
 *
 * Usage:
 *   offtarget_report --fasta ref.fa --guides guides.txt --d 3 \
 *       --pam NRG --engine hscan [--csv out.csv]
 *
 * `guides.txt`: one `name<TAB>sequence` or bare sequence per line.
 * Without --fasta a demo genome is generated so the example is
 * runnable out of the box.
 */

#include <fstream>
#include <iostream>
#include <sstream>

#include "common/cli.hpp"
#include "common/logging.hpp"
#include "core/engine_registry.hpp"
#include "core/report.hpp"
#include "core/score.hpp"
#include "core/session.hpp"
#include "genome/fasta.hpp"
#include "genome/generator.hpp"

using namespace crispr;

namespace {

core::EngineKind
engineByName(const std::string &name)
{
    // "auto" is a selector with no registry entry (the session expands
    // it through the cost model), so it resolves before findByName.
    if (name == "auto")
        return core::EngineKind::Auto;
    const core::Engine *engine =
        core::EngineRegistry::instance().findByName(name);
    if (engine)
        return engine->kind();
    std::string known = "auto";
    for (core::EngineKind kind : core::allEngines()) {
        if (!known.empty())
            known += ", ";
        known += core::engineName(kind);
    }
    fatal("unknown engine '%s' (one of: %s)", name.c_str(),
          known.c_str());
}

std::vector<core::Guide>
loadGuides(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open guide file '%s'", path.c_str());
    std::vector<core::Guide> guides;
    std::string line;
    size_t n = 0;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ls(line);
        std::string a, b;
        ls >> a >> b;
        if (b.empty())
            guides.push_back(
                core::makeGuide("g" + std::to_string(n), a));
        else
            guides.push_back(core::makeGuide(a, b));
        ++n;
    }
    if (guides.empty())
        fatal("guide file '%s' contains no guides", path.c_str());
    return guides;
}

} // namespace

int
main(int argc, char **argv)
{
    Cli cli("Search a reference genome for gRNA off-target sites");
    cli.addString("fasta", "", "reference FASTA (empty: demo genome)");
    cli.addString("guides", "", "guide list file (empty: demo guides)");
    cli.addInt("d", 3, "maximum mismatches in the protospacer");
    cli.addString("pam", "NRG", "PAM IUPAC pattern (3' of protospacer)");
    cli.addString("engine", "hscan",
                  "search engine (\"auto\" = cost-model selection)");
    cli.addInt("threads", 1,
               "worker threads for the CPU engines (0 = all cores)");
    cli.addBool("forward-only", "skip the reverse strand");
    cli.addString("csv", "", "also write hits as CSV to this file");
    cli.addInt("max-lines", 50, "max hit lines to print");
    cli.addInt("top-k", 0,
               "rank the K most dangerous sites by in-scan penalty "
               "(0 = no ranked report)");
    cli.addString("score-threshold", "0",
                  "ranked report: keep sites with penalty >= this");
    cli.addString("ranked-csv", "",
                  "write the ranked report as CSV to this file");
    if (!cli.parse(argc, argv))
        return 0;

    try {
        genome::Sequence genome_seq;
        genome::RecordMap record_map;
        bool have_map = false;
        if (cli.getString("fasta").empty()) {
            inform("no --fasta given; generating a 4 MB demo genome");
            genome::GenomeSpec spec;
            spec.length = 4 << 20;
            spec.seed = 99;
            genome_seq = genome::generateGenome(spec);
        } else {
            auto records =
                genome::readFastaFile(cli.getString("fasta"));
            genome_seq = genome::concatenateRecords(records);
            record_map = genome::RecordMap::fromRecords(records);
            have_map = true;
            inform("loaded %zu record(s), %zu bases", records.size(),
                   genome_seq.size());
        }

        std::vector<core::Guide> guides;
        if (cli.getString("guides").empty()) {
            inform("no --guides given; sampling 3 demo guides from "
                   "the reference");
            guides = core::guidesFromGenome(genome_seq, 3, 20, 1);
        } else {
            guides = loadGuides(cli.getString("guides"));
        }

        core::SearchConfig config;
        config.maxMismatches = static_cast<int>(cli.getInt("d"));
        config.pam = core::PamSpec{cli.getString("pam")};
        config.bothStrands = !cli.getBool("forward-only");
        config.engine = engineByName(cli.getString("engine"));
        config.threads =
            static_cast<unsigned>(cli.getInt("threads"));
        config.topK = static_cast<size_t>(cli.getInt("top-k"));
        config.scoreThreshold =
            std::stod(cli.getString("score-threshold"));

        core::SearchSession session(guides, config);
        core::SearchResult result = session.search(genome_seq);

        std::cout << core::timingLine(result.run) << "\n\n";
        core::printHits(std::cout, genome_seq, guides, result,
                        static_cast<size_t>(cli.getInt("max-lines")),
                        have_map ? &record_map : nullptr);
        std::cout << '\n';
        core::printSummary(std::cout, guides, result);

        // Specificity ranking (Hsu/MIT-style aggregate score).
        auto scores = core::scoreGuides(genome_seq, guides, result);
        std::cout << "\nguide\ton-targets\toff-targets\tspecificity\n";
        for (const auto &s : scores) {
            std::cout << guides[s.guide].name << '\t' << s.onTargets
                      << '\t' << s.offTargets << '\t'
                      << strprintf("%.1f", s.specificity) << '\n';
        }

        if (result.rankedMode) {
            std::cout << "\nranked sites (penalty desc, top "
                      << (config.topK > 0
                              ? std::to_string(config.topK)
                              : std::string("all"))
                      << "):\n";
            core::printRanked(std::cout, genome_seq, guides, result,
                              have_map ? &record_map : nullptr);
        }

        if (!cli.getString("ranked-csv").empty()) {
            std::ofstream csv(cli.getString("ranked-csv"));
            if (!csv)
                fatal("cannot open '%s'",
                      cli.getString("ranked-csv").c_str());
            core::writeRankedCsv(csv, genome_seq, guides, result);
            inform("wrote %zu ranked sites to %s",
                   result.ranked.size(),
                   cli.getString("ranked-csv").c_str());
        }

        if (!cli.getString("csv").empty()) {
            std::ofstream csv(cli.getString("csv"));
            if (!csv)
                fatal("cannot open '%s'",
                      cli.getString("csv").c_str());
            core::writeHitsCsv(csv, genome_seq, guides, result);
            inform("wrote %zu hits to %s", result.hits.size(),
                   cli.getString("csv").c_str());
        }
    } catch (const FatalError &e) {
        std::cerr << "error: " << e.what() << '\n';
        return 1;
    }
    return 0;
}
