/**
 * @file
 * Minimal serving loop over core::SearchService: reads a request file
 * (one request per line, each line a whitespace-separated list of
 * protospacer sequences), replays the requests from `--concurrency`
 * client threads against one shared reference, and prints the
 * per-request hit counts plus the service.* / store.* metrics.
 *
 * This is the server shape the serving layer is built for: every
 * client submits independently, the service coalesces whatever arrives
 * inside a batch window into one compiled pass over the cached genome,
 * and each client still gets exactly its own hits.
 *
 * Usage:
 *   search_server --requests reqs.txt [--fasta hg.fa | --twobit hg.2bit]
 *       [--d 3] [--engine hscan|auto] [--concurrency 4] [--window-ms 2]
 *       [--shards 4] [--db-dir /var/cache/crispr-db]
 *
 * --db-dir names a pattern database: the first run compiles and
 * persists every guide set it serves, and a restarted server pre-warms
 * from the directory and answers in milliseconds (watch
 * service.db_preloaded and session.db_hits in the metrics table).
 *
 * --shards N serves through a ShardedSearchService: each request is
 * scattered across N shard workers that each scan 1/N of the genome,
 * and the gathered result is bit-identical to single-shard serving.
 * --twobit names a packed ".2bit" reference (see genome/packed.hpp):
 * the store mmaps it once and every shard shares the single physical
 * copy — the health snapshot reports mmap-resident and heap-decoded
 * bytes separately.
 */

#include <fstream>
#include <future>
#include <iostream>
#include <sstream>
#include <thread>
#include <vector>

#include "crispr.hpp"
#include "genome/generator.hpp"

using namespace crispr;

namespace {

std::vector<std::vector<core::Guide>>
loadRequests(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open request file '%s'", path.c_str());
    std::vector<std::vector<core::Guide>> requests;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        std::vector<core::Guide> guides;
        std::istringstream ls(line);
        std::string seq;
        while (ls >> seq)
            guides.push_back(core::makeGuide(
                strprintf("r%zu.g%zu", requests.size(),
                          guides.size()),
                seq));
        if (!guides.empty())
            requests.push_back(std::move(guides));
    }
    if (requests.empty())
        fatal("request file '%s' contains no requests", path.c_str());
    return requests;
}

/**
 * Demo requests: single-guide requests sampled from the reference,
 * each planted back into it a few times (guide + AGG PAM, 0-2
 * mismatches) so the served hit counts are non-trivial.
 */
std::vector<std::vector<core::Guide>>
demoRequests(genome::Sequence &ref, size_t count)
{
    Rng rng(7);
    std::vector<std::vector<core::Guide>> requests;
    for (core::Guide &g : core::guidesFromGenome(ref, count, 20, 7)) {
        genome::Sequence site = g.protospacer;
        site.append(genome::Sequence::fromString("AGG"));
        for (int mismatches = 0; mismatches < 3; ++mismatches)
            genome::plantMutatedSites(ref, site, 2, mismatches, 0,
                                      g.protospacer.size(), rng);
        requests.push_back({std::move(g)});
    }
    return requests;
}

} // namespace

int
main(int argc, char **argv)
{
    Cli cli("Serve off-target search requests through SearchService");
    cli.addString("requests", "",
                  "request file: one request per line, each line one "
                  "or more protospacer sequences (empty: 16 demo "
                  "requests sampled from the reference)");
    cli.addString("fasta", "",
                  "reference FASTA, loaded through the GenomeStore "
                  "(empty: 4 MB demo genome)");
    cli.addString("twobit", "",
                  "packed \".2bit\" reference, mmap-shared across "
                  "every shard worker (takes precedence over --fasta)");
    cli.addInt("shards", 1,
               "shard workers: each request is scattered across N "
               "genome slices and gathered (1 = plain service)");
    cli.addInt("d", 3, "maximum mismatches in the protospacer");
    cli.addString("engine", "hscan",
                  "search engine (\"auto\" = cost-model selection)");
    cli.addInt("concurrency", 4, "client threads submitting requests");
    cli.addInt("window-ms", 2, "batch window in milliseconds");
    cli.addString("db-dir", "",
                  "pattern database directory: compiled state is "
                  "persisted there and pre-warmed at startup, so a "
                  "restarted server answers its first request in "
                  "milliseconds instead of recompiling");
    cli.addBool("health",
                "print the ServiceHealth snapshot after serving and "
                "exit nonzero when the service is not ready "
                "(readiness-probe mode)");
    if (!cli.parse(argc, argv))
        return 0;

    core::ShardOptions options;
    options.shards = std::max<size_t>(
        1, static_cast<size_t>(cli.getInt("shards")));
    options.service.batchWindowSeconds =
        static_cast<double>(cli.getInt("window-ms")) / 1000.0;
    options.service.databaseDir = cli.getString("db-dir");
    core::ShardedSearchService service(options);

    // Resolve the reference once, through the store: every request
    // then scans the same shared, immutable decoded sequence (for a
    // packed ref, additionally one shared mmap of the file).
    core::SharedSequence reference;
    std::vector<std::vector<core::Guide>> requests;
    if (const std::string &path = cli.getString("twobit");
        !path.empty()) {
        reference =
            service.store().load(core::GenomeRef::packed(path));
    } else if (const std::string &path = cli.getString("fasta");
               !path.empty()) {
        reference = service.store().loadFile(path);
    } else {
        genome::GenomeSpec spec;
        spec.length = 4 << 20;
        spec.model = genome::CompositionModel::GcBiased;
        spec.seed = 6;
        genome::Sequence demo = genome::generateGenome(spec);
        if (cli.getString("requests").empty())
            requests = demoRequests(demo, 16);
        reference = service.store().put("demo", std::move(demo));
    }

    if (const std::string &path = cli.getString("requests");
        !path.empty()) {
        requests = loadRequests(path);
    } else if (requests.empty()) {
        // FASTA given but no request file: sample guides from it
        // (each has at least one perfect protospacer match).
        for (core::Guide &g :
             core::guidesFromGenome(*reference, 16, 20, 7))
            requests.push_back({std::move(g)});
    }

    // "auto" is a selector with no registry entry (the session expands
    // it through the cost model), so it is resolved before findByName.
    core::EngineKind engine_kind = core::EngineKind::Auto;
    if (cli.getString("engine") != "auto") {
        const core::Engine *engine =
            core::EngineRegistry::instance().findByName(
                cli.getString("engine"));
        if (!engine)
            fatal("unknown engine: %s",
                  cli.getString("engine").c_str());
        engine_kind = engine->kind();
    }

    core::RequestOptions request;
    request.genome = reference;
    request.config.compile().engine = engine_kind;
    request.config.compile().maxMismatches =
        static_cast<int>(cli.getInt("d"));

    std::cout << "serving " << requests.size() << " requests from "
              << cli.getInt("concurrency") << " client threads ("
              << formatBytes(reference->size()) << " reference, d="
              << cli.getInt("d")
              << ", engine=" << core::engineName(engine_kind)
              << ", shards=" << service.shardCount() << ")\n";

    // Each client thread owns a slice of the request list; all submit
    // concurrently, so the window coalesces across clients.
    const size_t clients = std::max<size_t>(
        1, static_cast<size_t>(cli.getInt("concurrency")));
    std::vector<std::future<core::SearchResult>> futures(
        requests.size());
    std::vector<std::thread> pool;
    for (size_t c = 0; c < clients; ++c)
        pool.emplace_back([&, c] {
            for (size_t i = c; i < requests.size(); i += clients)
                futures[i] = service.submit(requests[i], request);
        });
    for (auto &t : pool)
        t.join();
    service.flush();

    Table table({"request", "guides", "hits", "batchmates", "timed out"});
    for (size_t i = 0; i < requests.size(); ++i) {
        core::SearchResult result = futures[i].get();
        table.row()
            .add(strprintf("r%zu", i))
            .add(static_cast<uint64_t>(requests[i].size()))
            .add(static_cast<uint64_t>(result.hits.size()))
            .add(static_cast<uint64_t>(static_cast<size_t>(
                result.run.metrics.at("service.batch_requests"))))
            .add(result.timedOut ? "yes" : "no");
    }
    std::cout << table.str();

    Table metrics_table({"metric", "value"});
    for (const auto &[key, value] : service.metricsSnapshot())
        metrics_table.row().add(key).add(value, 2);
    std::cout << metrics_table.str();

    if (cli.getBool("health")) {
        // Readiness-probe mode: report the health snapshot and exit
        // nonzero when the instance should not take traffic, so a
        // supervisor can gate it on this binary's exit code.
        const core::ServiceHealth health = service.health();
        Table health_table({"health", "value"});
        health_table.row().add("ready").add(health.ready() ? "yes"
                                                           : "no");
        health_table.row().add("accepting").add(
            health.accepting ? "yes" : "no");
        health_table.row().add("pressured").add(
            health.pressured ? "yes" : "no");
        health_table.row()
            .add("queue depth")
            .add(static_cast<uint64_t>(health.queueDepth));
        health_table.row()
            .add("queued bytes")
            .add(static_cast<uint64_t>(health.queuedBytes));
        health_table.row().add("est wait").add(
            strprintf("%.3fs", health.estWaitSeconds));
        health_table.row()
            .add("executor backlog")
            .add(static_cast<uint64_t>(health.executorQueueDepth));
        // Heap-decoded vs mmap-resident are different costs: the heap
        // copy is private pages per store, the mapping is one set of
        // shared file-backed pages no matter how many shards read it.
        health_table.row().add("store heap").add(
            strprintf("%s in %zu entries",
                      formatBytes(health.storeBytes).c_str(),
                      health.storeEntries));
        health_table.row().add("store mmap").add(
            formatBytes(health.storeMmapBytes));
        for (const auto &[engine, state] : health.breakers)
            health_table.row()
                .add(strprintf("breaker %s", engine.c_str()))
                .add(state);
        std::cout << health_table.str();
        return health.ready() ? 0 : 1;
    }
    return 0;
}
