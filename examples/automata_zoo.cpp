/**
 * @file
 * Automata zoo: builds every automaton design the library knows for a
 * guide, prints their shapes, and dumps ANML so the designs can be
 * inspected or fed to external automata tooling (VASim-style).
 *
 * Usage:
 *   automata_zoo [--guide ACGT...] [--d 3] [--out-dir /tmp]
 */

#include <fstream>
#include <iostream>

#include "ap/machine.hpp"
#include "automata/anml.hpp"
#include "automata/dot.hpp"
#include "automata/builders.hpp"
#include "automata/dfa.hpp"
#include "automata/hopcroft.hpp"
#include "common/cli.hpp"
#include "common/logging.hpp"
#include "common/table.hpp"
#include "core/compile.hpp"
#include "fpga/resource.hpp"

using namespace crispr;

int
main(int argc, char **argv)
{
    Cli cli("Inspect the automata designs for one guide");
    cli.addString("guide", "GACGCATAAAGATGAGACGC", "20-nt protospacer");
    cli.addInt("d", 3, "mismatch budget");
    cli.addString("out-dir", "", "write ANML files here (optional)");
    if (!cli.parse(argc, argv))
        return 0;

    try {
        const int d = static_cast<int>(cli.getInt("d"));
        core::Guide guide =
            core::makeGuide("g", cli.getString("guide"));
        core::PatternSet site = core::buildPatternSet(
            {guide}, core::pamNRG(), d, true);
        core::PatternSet pam_first = core::buildPatternSet(
            {guide}, core::pamNRG(), d, true,
            core::Orientation::PamFirst);

        std::cout << "guide: " << guide.protospacer.str() << " + NRG, d="
                  << d << "\n\n";

        Table table({"design", "states/STEs", "edges/wires", "extras",
                     "fan-out", "FPGA LUTs", "FPGA clock"});

        // Mismatch-matrix NFA, forward pattern.
        automata::Nfa fwd =
            automata::buildHammingNfa(site.patterns[0].spec);
        automata::NfaStats fs = automata::computeStats(fwd);
        fpga::ResourceEstimate fres = fpga::estimateResources(fs);
        table.row()
            .add("matrix NFA (fwd strand)")
            .add(static_cast<uint64_t>(fs.states))
            .add(static_cast<uint64_t>(fs.edges))
            .add("-")
            .add(static_cast<uint64_t>(fs.maxFanOut))
            .add(static_cast<uint64_t>(fres.luts))
            .add(strprintf("%.0f MHz", fres.clockHz / 1e6));

        // Both strands merged.
        std::vector<automata::Nfa> both;
        for (const core::Pattern &p : site.patterns)
            both.push_back(automata::buildHammingNfa(p.spec));
        automata::Nfa merged = automata::unionNfas(both);
        automata::NfaStats ms = automata::computeStats(merged);
        fpga::ResourceEstimate mres = fpga::estimateResources(ms);
        table.row()
            .add("matrix NFA (both strands)")
            .add(static_cast<uint64_t>(ms.states))
            .add(static_cast<uint64_t>(ms.edges))
            .add("-")
            .add(static_cast<uint64_t>(ms.maxFanOut))
            .add(static_cast<uint64_t>(mres.luts))
            .add(strprintf("%.0f MHz", mres.clockHz / 1e6));

        // AP counter design (PAM-first orientation).
        ap::ApMachine counter =
            ap::buildCounterMachine(pam_first.patterns[1].spec);
        ap::MachineStats cs = counter.stats();
        table.row()
            .add("AP counter design (rev strand)")
            .add(static_cast<uint64_t>(cs.stes))
            .add(static_cast<uint64_t>(cs.wires))
            .add(strprintf("%zu ctr, %zu gate", cs.counters, cs.gates))
            .add("-")
            .add("-")
            .add("133 MHz (AP)");

        // DFA, if it fits.
        auto dfa = automata::subsetConstruct(fwd, 1u << 18);
        if (dfa) {
            automata::Dfa min = automata::hopcroftMinimize(*dfa);
            table.row()
                .add("DFA (fwd, minimised)")
                .add(static_cast<uint64_t>(min.size()))
                .add(static_cast<uint64_t>(min.size() * 5))
                .add(formatBytes(min.tableBytes()))
                .add("1 (deterministic)")
                .add("-")
                .add("-");
        } else {
            table.row()
                .add("DFA (fwd)")
                .add("over 262144-state budget")
                .add("-")
                .add("-")
                .add("-")
                .add("-")
                .add("-");
        }
        std::cout << table.str();

        if (!cli.getString("out-dir").empty()) {
            const std::string dir = cli.getString("out-dir");
            auto dump = [&](const std::string &name,
                            const automata::Nfa &nfa) {
                const std::string path = dir + "/" + name + ".anml";
                std::ofstream out(path);
                if (!out)
                    fatal("cannot write '%s'", path.c_str());
                automata::writeAnml(out, nfa, name);
                std::cout << "wrote " << path << '\n';
            };
            dump("matrix_fwd", fwd);
            dump("matrix_both", merged);
            const std::string dot_path = dir + "/matrix_fwd.dot";
            std::ofstream dot(dot_path);
            if (!dot)
                fatal("cannot write '%s'", dot_path.c_str());
            automata::writeDot(dot, fwd, "matrix_fwd");
            std::cout << "wrote " << dot_path << '\n';
        }
    } catch (const FatalError &e) {
        std::cerr << "error: " << e.what() << '\n';
        return 1;
    }
    return 0;
}
