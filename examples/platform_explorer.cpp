/**
 * @file
 * Platform explorer: runs one off-target workload across every engine
 * in the registry and prints a side-by-side comparison — the
 * interactive version of the paper's cross-platform evaluation.
 *
 * Usage:
 *   platform_explorer [--genome-mb 4] [--guides 10] [--d 3]
 *       [--threads 1] [--requests 0] [--metrics-json out.json]
 *       [--trace-json out.json]
 *
 * --metrics-json dumps every engine's full metric map as one JSON
 * object keyed by engine name; --trace-json writes a chrome://tracing
 * file of the whole sweep (load it at chrome://tracing or
 * https://ui.perfetto.dev). --requests N additionally pushes N
 * single-guide requests through a SearchService and prints the
 * service.* / store.* serving metrics.
 */

#include <fstream>
#include <future>
#include <iostream>
#include <map>
#include <string_view>
#include <vector>

#include "common/cli.hpp"
#include "common/executor.hpp"
#include "common/logging.hpp"
#include "common/metrics.hpp"
#include "common/table.hpp"
#include "common/trace.hpp"
#include "core/engine_registry.hpp"
#include "core/report.hpp"
#include "core/service.hpp"
#include "core/session.hpp"
#include "genome/generator.hpp"

using namespace crispr;

int
main(int argc, char **argv)
{
    Cli cli("Compare every engine on one off-target workload");
    cli.addInt("genome-mb", 4, "genome size in MB");
    cli.addInt("guides", 10, "number of guides");
    cli.addInt("d", 3, "maximum mismatches");
    cli.addInt("threads", 1,
               "worker threads for the CPU engines (0 = all cores); "
               ">1 runs chunk lanes on the shared executor pool");
    cli.addInt("chunk-kb", 4096,
               "chunk size in KB for the CPU engines' chunked scans");
    cli.addBool("skip-slow", "skip the brute-force golden engine");
    cli.addInt("requests", 0,
               "also serve N single-guide requests through a "
               "SearchService and print the service.* metrics "
               "(0 = skip)");
    cli.addString("db-dir", "",
                  "pattern database directory: compiled engine state "
                  "is persisted there and warm-starts later sweeps "
                  "(see the session tier line)");
    cli.addString("metrics-json", "",
                  "write per-engine metric maps to this JSON file");
    cli.addString("trace-json", "",
                  "write a chrome://tracing span file of the sweep");
    if (!cli.parse(argc, argv))
        return 0;

    const size_t genome_len =
        static_cast<size_t>(cli.getInt("genome-mb")) << 20;

    genome::GenomeSpec spec;
    spec.length = genome_len;
    spec.model = genome::CompositionModel::GcBiased;
    spec.seed = 4;
    genome::Sequence genome_seq = genome::generateGenome(spec);
    auto guides = core::guidesFromGenome(
        genome_seq, static_cast<size_t>(cli.getInt("guides")), 20, 5);

    std::cout << "workload: " << formatBytes(genome_len) << " genome, "
              << guides.size() << " guides, d=" << cli.getInt("d")
              << ", NRG PAM, both strands\n";

    Table table({"engine", "hits", "compile", "host", "kernel*",
                 "total*", "notes"});
    size_t golden_hits = 0;
    bool have_golden = false;
    common::TraceSink trace;
    const bool want_trace = !cli.getString("trace-json").empty();
    std::map<std::string, std::map<std::string, double>> all_metrics;

    // One session serves every engine: the guide set is fixed, and the
    // per-call config picks the engine (each compiled once, cached).
    core::SearchSession session(guides, {},
                                /*cache_capacity=*/16);

    for (core::EngineKind kind : core::allEngines()) {
        if (cli.getBool("skip-slow") &&
            kind == core::EngineKind::Brute)
            continue;
        // Probe the registry first: a platform missing from this build
        // degrades to a "skipped" row instead of dying.
        if (!core::EngineRegistry::instance().tryFind(kind)) {
            table.row()
                .add(core::engineName(kind))
                .add("-")
                .add("-")
                .add("-")
                .add("-")
                .add("-")
                .add("skipped: engine not registered");
            continue;
        }
        core::SearchConfig config;
        config.maxMismatches = static_cast<int>(cli.getInt("d"));
        config.engine = kind;
        config.databaseDir = cli.getString("db-dir");
        config.threads =
            static_cast<unsigned>(cli.getInt("threads"));
        config.chunkSize =
            static_cast<size_t>(cli.getInt("chunk-kb")) << 10;
        config.params.fullSimSymbolLimit = 2ull << 20;
        if (want_trace)
            config.trace = &trace;

        auto attempt = session.trySearch(genome_seq, config);
        if (!attempt.ok()) {
            // e.g. the forced-DFA engine exceeding its state budget:
            // report the row and keep comparing the other platforms.
            table.row()
                .add(core::engineName(kind))
                .add("-")
                .add("-")
                .add("-")
                .add("-")
                .add("-")
                .add(attempt.error().str().substr(0, 40));
            continue;
        }
        core::SearchResult res = std::move(attempt).value();
        if (kind == core::EngineKind::Brute) {
            golden_hits = res.hits.size();
            have_golden = true;
        }
        all_metrics[core::engineName(kind)] = res.run.metrics;
        std::string note = res.run.notes;
        if (have_golden && res.hits.size() != golden_hits)
            note = strprintf("%zu/%zu golden hits! ", res.hits.size(),
                             golden_hits) + note;
        table.row()
            .add(core::engineName(kind))
            .add(static_cast<uint64_t>(res.hits.size()))
            .add(formatSeconds(res.run.timing.compileSeconds))
            .add(formatSeconds(res.run.timing.hostSeconds))
            .add(formatSeconds(res.run.timing.kernelSeconds))
            .add(formatSeconds(res.run.timing.totalSeconds))
            .add(note.substr(0, 40));
    }
    // The cost-model selector as its own row: engine=auto expands to
    // a ranked CPU-engine chain (DESIGN.md §11); which engine it
    // picked shows up in the session tier line below.
    {
        core::SearchConfig config;
        config.maxMismatches = static_cast<int>(cli.getInt("d"));
        config.engine = core::EngineKind::Auto;
        config.databaseDir = cli.getString("db-dir");
        config.threads =
            static_cast<unsigned>(cli.getInt("threads"));
        config.chunkSize =
            static_cast<size_t>(cli.getInt("chunk-kb")) << 10;
        config.params.fullSimSymbolLimit = 2ull << 20;
        if (want_trace)
            config.trace = &trace;
        auto attempt = session.trySearch(genome_seq, config);
        if (attempt.ok()) {
            const core::SearchResult &res = attempt.value();
            all_metrics["auto"] = res.run.metrics;
            table.row()
                .add("auto")
                .add(static_cast<uint64_t>(res.hits.size()))
                .add(formatSeconds(res.run.timing.compileSeconds))
                .add(formatSeconds(res.run.timing.hostSeconds))
                .add(formatSeconds(res.run.timing.kernelSeconds))
                .add(formatSeconds(res.run.timing.totalSeconds))
                .add(res.run.notes.substr(0, 40));
        }
    }

    std::cout << table.str();
    std::cout << "* kernel/total are modelled device times for the "
                 "GPU/FPGA/AP engines and measured wall-clock for the "
                 "CPU engines (see DESIGN.md).\n";

    // The compile tiers under the sweep: LRU hits, pattern-database
    // hits/misses (all zero without --db-dir), and what the engine
    // auto-selection cost model chose for this workload shape.
    const auto session_metrics = session.metricsSnapshot();
    const auto metric = [&](const char *key) {
        const auto it = session_metrics.find(key);
        return it == session_metrics.end() ? 0.0 : it->second;
    };
    std::cout << strprintf(
        "session tier: compiles=%.0f cache_hits=%.0f db_hits=%.0f "
        "db_misses=%.0f\n",
        metric("session.compiles"), metric("session.cache_hits"),
        metric("session.db_hits"), metric("session.db_misses"));
    std::string choices;
    constexpr std::string_view kAutoPrefix = "session.engine_auto.";
    for (const auto &[key, value] : session_metrics)
        if (key.starts_with(kAutoPrefix))
            choices += strprintf(" %s=%.0f",
                                 key.substr(kAutoPrefix.size()).c_str(),
                                 value);
    std::cout << "engine=auto choices:"
              << (choices.empty() ? " (none)" : choices.c_str())
              << "\n";

    // The execution layer under the sweep: every multi-threaded CPU
    // scan above ran its chunk lanes as tasks on the process-wide
    // work-stealing pool (threads=1 bypasses it, so these stay 0 on
    // single-threaded sweeps).
    const common::Executor &pool = common::Executor::shared();
    std::cout << strprintf(
        "executor pool: %u workers, tasks=%llu steals=%llu "
        "dropped=%llu pending=%zu\n",
        pool.workerCount(),
        static_cast<unsigned long long>(pool.tasksExecuted()),
        static_cast<unsigned long long>(pool.steals()),
        static_cast<unsigned long long>(pool.dropped()),
        pool.pendingCount());

    if (const std::string &path = cli.getString("metrics-json");
        !path.empty()) {
        std::ofstream out(path);
        if (!out)
            fatal("cannot open --metrics-json file %s", path.c_str());
        out << "{";
        bool first = true;
        for (const auto &[engine, metrics] : all_metrics) {
            out << (first ? "\n" : ",\n") << "  \"" << engine
                << "\": ";
            common::writeMetricsJson(metrics, out, 2);
            first = false;
        }
        out << "\n}\n";
        std::cout << "metrics written to " << path << "\n";
    }
    if (want_trace) {
        trace.writeJsonFile(cli.getString("trace-json"));
        std::cout << "trace (" << trace.size() << " spans) written to "
                  << cli.getString("trace-json") << "\n";
    }

    // The serving view of the same workload: N single-guide requests
    // coalesced by a SearchService over the store-cached genome.
    if (const auto num_requests =
            static_cast<size_t>(cli.getInt("requests"));
        num_requests > 0) {
        core::SearchService service{core::ServiceOptions{}};
        core::RequestOptions request;
        request.genome =
            service.store().put("explorer", std::move(genome_seq));
        request.config.compile().maxMismatches =
            static_cast<int>(cli.getInt("d"));

        std::vector<std::future<core::SearchResult>> futures;
        futures.reserve(num_requests);
        for (size_t i = 0; i < num_requests; ++i)
            futures.push_back(service.submit(
                {guides[i % guides.size()]}, request));
        service.flush();
        size_t served_hits = 0;
        for (auto &f : futures)
            served_hits += f.get().hits.size();

        std::cout << "\nserving view: " << num_requests
                  << " single-guide requests, " << served_hits
                  << " hits total\n";
        Table service_table({"metric", "value"});
        for (const auto &[key, value] : service.metricsSnapshot())
            service_table.row().add(key).add(value, 2);
        std::cout << service_table.str();

        const core::ServiceHealth health = service.health();
        std::cout << "health: "
                  << (health.ready() ? "ready" : "not ready")
                  << " (queue " << health.queueDepth << " req / "
                  << formatBytes(health.queuedBytes) << ", est wait "
                  << strprintf("%.3fs", health.estWaitSeconds)
                  << ", executor backlog "
                  << health.executorQueueDepth << ", store "
                  << formatBytes(health.storeBytes) << " heap + "
                  << formatBytes(health.storeMmapBytes)
                  << " mmap in " << health.storeEntries << " entries"
                  << (health.pressured ? ", PRESSURED" : "");
        for (const auto &[engine, state] : health.breakers)
            std::cout << ", breaker " << engine << "=" << state;
        std::cout << ")\n";
    }
    return 0;
}
