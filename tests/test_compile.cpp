/** @file Unit tests for guide -> pattern compilation. */

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "core/compile.hpp"

namespace crispr::core {
namespace {

std::vector<Guide>
twoGuides()
{
    return {makeGuide("g0", "ACGTACGTACGTACGTACGT"),
            makeGuide("g1", "TTTTCCCCGGGGAAAATTTT")};
}

TEST(Compile, SiteOrderShapes)
{
    PatternSet set =
        buildPatternSet(twoGuides(), pamNGG(), 3, true);
    EXPECT_EQ(set.guideLength, 20u);
    EXPECT_EQ(set.pamLength, 3u);
    EXPECT_EQ(set.siteLength(), 23u);
    ASSERT_EQ(set.patterns.size(), 4u);
    EXPECT_FALSE(set.needsReversedStream());

    // Forward pattern: guide masks then PAM; mismatches in [0, 20).
    const Pattern &fwd = set.patterns[0];
    EXPECT_EQ(fwd.strand, Strand::Forward);
    EXPECT_EQ(fwd.spec.mismatchLo, 0u);
    EXPECT_EQ(fwd.spec.mismatchHi, 20u);
    EXPECT_EQ(fwd.spec.masks[0], genome::iupacMask('A'));
    EXPECT_EQ(fwd.spec.masks[20], genome::iupacMask('N'));
    EXPECT_EQ(fwd.spec.masks[22], genome::iupacMask('G'));

    // Reverse pattern: revcomp site, PAM leading, mismatches [3, 23).
    const Pattern &rev = set.patterns[1];
    EXPECT_EQ(rev.strand, Strand::Reverse);
    EXPECT_EQ(rev.spec.mismatchLo, 3u);
    EXPECT_EQ(rev.spec.mismatchHi, 23u);
    EXPECT_EQ(rev.spec.masks[0], genome::iupacMask('C')); // comp of G
    EXPECT_EQ(rev.spec.masks[2], genome::iupacMask('N'));
    // Last base of revcomp pattern = complement of guide[0] = T.
    EXPECT_EQ(rev.spec.masks[22], genome::iupacMask('T'));

    // Report ids are the pattern indices.
    for (uint32_t i = 0; i < set.patterns.size(); ++i)
        EXPECT_EQ(set.patterns[i].spec.reportId, i);
}

TEST(Compile, PamFirstShapes)
{
    PatternSet set = buildPatternSet(twoGuides(), pamNGG(), 2, true,
                                     Orientation::PamFirst);
    ASSERT_EQ(set.patterns.size(), 4u);
    EXPECT_TRUE(set.needsReversedStream());
    // Every pattern leads with its exact region.
    for (const Pattern &p : set.patterns) {
        EXPECT_GT(p.spec.mismatchLo, 0u);
        EXPECT_EQ(p.spec.mismatchHi, p.spec.masks.size());
        if (p.strand == Strand::Forward)
            EXPECT_TRUE(p.reversedStream);
        else
            EXPECT_FALSE(p.reversedStream);
    }
    // Forward PamFirst pattern = reversed site: leading mask is the
    // last PAM base (G), trailing mask is guide[0].
    const Pattern &fwd = set.patterns[0];
    EXPECT_EQ(fwd.spec.masks[0], genome::iupacMask('G'));
    EXPECT_EQ(fwd.spec.masks[2], genome::iupacMask('N'));
    EXPECT_EQ(fwd.spec.masks[22], genome::iupacMask('A'));
}

TEST(Compile, ForwardSpecUndoesStreamReversal)
{
    PatternSet set = buildPatternSet(twoGuides(), pamNGG(), 2, true,
                                     Orientation::PamFirst);
    PatternSet site = buildPatternSet(twoGuides(), pamNGG(), 2, true,
                                      Orientation::SiteOrder);
    for (uint32_t i = 0; i < set.patterns.size(); ++i) {
        automata::HammingSpec a = set.forwardSpec(i);
        const automata::HammingSpec &b = site.patterns[i].spec;
        EXPECT_EQ(a.masks, b.masks) << "pattern " << i;
        EXPECT_EQ(a.mismatchLo, b.mismatchLo);
        EXPECT_EQ(std::min(a.mismatchHi, a.masks.size()),
                  std::min(b.mismatchHi, b.masks.size()));
    }
}

TEST(Compile, ForwardOnlyHalvesPatterns)
{
    PatternSet set = buildPatternSet(twoGuides(), pamNGG(), 1, false);
    EXPECT_EQ(set.patterns.size(), 2u);
    for (const Pattern &p : set.patterns)
        EXPECT_EQ(p.strand, Strand::Forward);
}

TEST(Compile, SpecsForStreamSplitsCorrectly)
{
    PatternSet set = buildPatternSet(twoGuides(), pamNGG(), 1, true,
                                     Orientation::PamFirst);
    EXPECT_EQ(set.specsForStream(false).size(), 2u); // reverse strand
    EXPECT_EQ(set.specsForStream(true).size(), 2u);  // forward strand
    PatternSet so = buildPatternSet(twoGuides(), pamNGG(), 1, true);
    EXPECT_EQ(so.specsForStream(false).size(), 4u);
    EXPECT_TRUE(so.specsForStream(true).empty());
}

TEST(Compile, Validation)
{
    EXPECT_THROW(buildPatternSet({}, pamNGG(), 1, true), FatalError);
    auto mixed = twoGuides();
    mixed.push_back(makeGuide("short", "ACGT"));
    EXPECT_THROW(buildPatternSet(mixed, pamNGG(), 1, true), FatalError);
    EXPECT_THROW(buildPatternSet(twoGuides(), pamNGG(), -1, true),
                 FatalError);
    EXPECT_THROW(buildPatternSet(twoGuides(), pamNGG(), 21, true),
                 FatalError);
}

TEST(Compile, StrandStr)
{
    EXPECT_STREQ(strandStr(Strand::Forward), "+");
    EXPECT_STREQ(strandStr(Strand::Reverse), "-");
}

} // namespace
} // namespace crispr::core
