/** @file Unit tests for the Cas-OFFinder reimplementation. */

#include <gtest/gtest.h>

#include "baselines/brute.hpp"
#include "baselines/casoffinder.hpp"
#include "test_util.hpp"

namespace crispr::baselines {
namespace {

using automata::HammingSpec;

std::vector<HammingSpec>
guideSpecs(Rng &rng, int d, size_t count)
{
    std::vector<HammingSpec> specs;
    for (uint32_t i = 0; i < count; ++i)
        specs.push_back(crispr::test::randomGuideSpec(rng, 10, 3, d, i));
    return specs;
}

TEST(CasOffinder, EqualsGoldenScan)
{
    Rng rng(41);
    for (int d = 0; d <= 3; ++d) {
        auto specs = guideSpecs(rng, d, 3);
        genome::Sequence g = crispr::test::randomGenome(rng, 4000, 0.01);
        auto result = casOffinderScan(g, specs);
        auto want = bruteForceScan(g, specs);
        EXPECT_EQ(result.events, want) << "d=" << d;
    }
}

TEST(CasOffinder, SharedPamScanAcrossGuides)
{
    // Guides sharing the PAM layout share stage 1: positionsScanned is
    // one genome pass per distinct shape, not per guide.
    Rng rng(42);
    genome::Sequence g = crispr::test::randomGenome(rng, 2000);

    std::vector<HammingSpec> specs;
    for (uint32_t i = 0; i < 5; ++i) {
        auto s = crispr::test::randomGuideSpec(rng, 10, 3, 1, i);
        // Force identical PAM masks across guides.
        s.masks[10] = genome::iupacMask('N');
        s.masks[11] = genome::iupacMask('G');
        s.masks[12] = genome::iupacMask('G');
        specs.push_back(s);
    }
    auto result = casOffinderScan(g, specs);
    EXPECT_EQ(result.work.positionsScanned, g.size() - 13 + 1);
}

TEST(CasOffinder, WorkCountersAreConsistent)
{
    Rng rng(43);
    auto specs = guideSpecs(rng, 2, 2);
    genome::Sequence g = crispr::test::randomGenome(rng, 3000);
    auto result = casOffinderScan(g, specs);
    EXPECT_GT(result.work.positionsScanned, 0u);
    EXPECT_GE(result.work.comparisons,
              result.work.matches);
    EXPECT_EQ(result.work.matches, result.events.size());
    EXPECT_EQ(result.work.genomeBytes, g.size());
    EXPECT_GE(result.hostSeconds, 0.0);
}

TEST(CasOffinderModel, KernelTimeMonotoneInWork)
{
    GpuDeviceModel model;
    CasOffinderWork small{}, large{};
    small.genomeBytes = 1 << 20;
    small.basesCompared = 1 << 22;
    large = small;
    large.basesCompared = 1ull << 28;
    EXPECT_LT(model.kernelSeconds(small), model.kernelSeconds(large));
    large.genomeBytes = 1ull << 30;
    EXPECT_LT(model.totalSeconds(small), model.totalSeconds(large));
}

TEST(CasOffinderModel, TotalIncludesTransfer)
{
    GpuDeviceModel model;
    CasOffinderWork w{};
    w.genomeBytes = 1ull << 30;
    EXPECT_GT(model.totalSeconds(w),
              model.kernelSeconds(w) +
                  static_cast<double>(w.genomeBytes) /
                      (model.pcieGBs * 1e9) * 0.99);
}

TEST(CasOffinder, DegeneratePamHandled)
{
    // NRG PAM (R = A|G): candidates must include both NAG and NGG sites.
    genome::Sequence g =
        genome::Sequence::fromString("AAAATAGAAAATGGAAA");
    HammingSpec spec;
    spec.masks = genome::masksFromIupac("AAAANRG");
    spec.maxMismatches = 0;
    spec.mismatchLo = 0;
    spec.mismatchHi = 4;
    auto result = casOffinderScan(g, std::span(&spec, 1));
    EXPECT_EQ(result.events.size(), 2u);
}

} // namespace
} // namespace crispr::baselines
