/** @file Fault-injection recovery tests (ctest label: fault).
 *
 *  Every scenario arms a named common::faultpoints point and drives a
 *  real SearchSession / ChunkedScanner through it, asserting the
 *  process survives, the typed error code (when the failure is
 *  terminal), and the recovery metrics (session.fallbacks,
 *  scan.retries, search.timed_out, parse.records_dropped). */

#include <memory>
#include <sstream>

#include <gtest/gtest.h>

#include "common/faultpoints.hpp"
#include "core/engine_registry.hpp"
#include "core/session.hpp"
#include "genome/fasta.hpp"
#include "test_util.hpp"

namespace crispr {
namespace {

namespace fp = common::faultpoints;
using common::ErrorCode;

/** A workload with a planted d=0 site so every scan has real hits. */
struct Workload
{
    std::vector<core::Guide> guides;
    genome::Sequence genome;

    explicit Workload(uint64_t seed, size_t genome_len = 6000)
    {
        guides.push_back(
            core::makeGuide("g0", "GATTACAGATTACAGATTAC"));
        genome::Sequence site = guides[0].protospacer;
        site.append(genome::Sequence::fromString("TGG"));
        Rng rng(seed);
        genome = test::randomGenome(rng, genome_len);
        genome::plantSite(genome, 1500, site);
    }

    core::SearchConfig
    config(core::EngineKind engine) const
    {
        core::SearchConfig cfg;
        cfg.maxMismatches = 2;
        cfg.engine = engine;
        return cfg;
    }
};

class FaultRecovery : public ::testing::Test
{
  protected:
    void SetUp() override { fp::resetAll(); }
    void TearDown() override { fp::resetAll(); }
};

TEST_F(FaultRecovery, FallsBackWhenCompileFails)
{
    Workload w(901);
    core::SearchConfig cfg = w.config(core::EngineKind::HscanAuto);
    cfg.fallbacks = {core::EngineKind::Reference};
    core::SearchSession session(w.guides, cfg);

    // The unfaulted answer, from the fallback engine directly.
    core::SearchResult want =
        core::search(w.genome, w.guides,
                     w.config(core::EngineKind::Reference));
    ASSERT_FALSE(want.hits.empty());

    fp::armFailOnce("session.compile");
    auto got = session.trySearch(w.genome);
    ASSERT_TRUE(got.ok()) << got.error().str();
    EXPECT_EQ(got.value().run.kind, core::EngineKind::Reference);
    EXPECT_EQ(got.value().hits, want.hits);
    EXPECT_EQ(got.value().run.metrics.at("session.fallbacks"), 1.0);
    EXPECT_EQ(got.value().run.metrics.at(
                  std::string("session.failures.") +
                  core::engineName(core::EngineKind::HscanAuto)),
              1.0);
    EXPECT_EQ(session.engineFailures(core::EngineKind::HscanAuto), 1u);
    EXPECT_EQ(session.engineFailures(core::EngineKind::Reference), 0u);
}

TEST_F(FaultRecovery, FallsBackWhenScanFails)
{
    Workload w(902);
    core::SearchConfig cfg = w.config(core::EngineKind::HscanAuto);
    cfg.fallbacks = {core::EngineKind::Reference};
    core::SearchSession session(w.guides, cfg);

    fp::armFailOnce("engine.scan");
    auto got = session.trySearch(w.genome);
    ASSERT_TRUE(got.ok()) << got.error().str();
    EXPECT_EQ(got.value().run.kind, core::EngineKind::Reference);
    EXPECT_FALSE(got.value().hits.empty());
    EXPECT_EQ(got.value().run.metrics.at("session.fallbacks"), 1.0);
    EXPECT_EQ(session.engineFailures(core::EngineKind::HscanAuto), 1u);
}

TEST_F(FaultRecovery, ChainExhaustionReturnsLastError)
{
    Workload w(903);
    core::SearchConfig cfg = w.config(core::EngineKind::HscanAuto);
    cfg.fallbacks = {core::EngineKind::Reference};
    core::SearchSession session(w.guides, cfg);

    // Both the primary and the fallback compile attempts fail.
    fp::armProbability("session.compile", 1.0);
    auto got = session.trySearch(w.genome);
    ASSERT_FALSE(got.ok());
    EXPECT_EQ(got.error().code(), ErrorCode::FaultInjected);
    // The error names every engine that was tried.
    bool found = false;
    for (const auto &[key, value] : got.error().context())
        if (key == "engines_tried")
            found = value.find(core::engineName(
                        core::EngineKind::Reference)) !=
                    std::string::npos;
    EXPECT_TRUE(found) << got.error().str();
    EXPECT_EQ(session.engineFailures(core::EngineKind::HscanAuto), 1u);
    EXPECT_EQ(session.engineFailures(core::EngineKind::Reference), 1u);
}

TEST_F(FaultRecovery, RetriesTransientChunkFault)
{
    Workload w(904);
    core::SearchConfig cfg = w.config(core::EngineKind::HscanAuto);
    core::SearchSession session(w.guides, cfg);
    core::SearchResult want = session.search(w.genome);
    ASSERT_FALSE(want.hits.empty());

    core::SearchConfig retrying = cfg;
    retrying.chunkSize = 1024;
    retrying.threads = 1;
    retrying.scanRetries = 2;
    retrying.retryBackoffSeconds = 0.0; // keep the test fast

    fp::armFailNth("chunk.scan", 2);
    auto got = session.trySearch(w.genome, retrying);
    ASSERT_TRUE(got.ok()) << got.error().str();
    EXPECT_EQ(got.value().hits, want.hits);
    // Every injected chunk failure becomes exactly one retry.
    EXPECT_EQ(got.value().run.metrics.at("scan.retries"),
              static_cast<double>(fp::failures("chunk.scan")));
    EXPECT_GE(fp::failures("chunk.scan"), 1u);
    EXPECT_EQ(got.value().run.metrics.at("scan.chunks_skipped"), 0.0);
    EXPECT_EQ(got.value().run.metrics.at("session.fallbacks"), 0.0);
}

TEST_F(FaultRecovery, RetryBudgetExhaustionIsTypedNotFatal)
{
    Workload w(905);
    core::SearchConfig cfg = w.config(core::EngineKind::HscanAuto);
    cfg.chunkSize = 1024;
    cfg.scanRetries = 1;
    cfg.retryBackoffSeconds = 0.0;
    core::SearchSession session(w.guides, cfg);

    // Every attempt of every chunk fails: the retry budget runs out
    // and the scan surfaces the injected error instead of dying.
    fp::armProbability("chunk.scan", 1.0);
    auto got = session.trySearch(w.genome);
    ASSERT_FALSE(got.ok());
    EXPECT_EQ(got.error().code(), ErrorCode::FaultInjected);
    EXPECT_EQ(session.engineFailures(core::EngineKind::HscanAuto), 1u);
}

TEST_F(FaultRecovery, ExpiredDeadlineYieldsPartialTimedOutResult)
{
    Workload w(906, 20000);
    core::SearchConfig cfg = w.config(core::EngineKind::HscanAuto);
    cfg.chunkSize = 1024;
    cfg.deadline = common::Deadline::after(0.0);
    core::SearchSession session(w.guides, cfg);

    auto got = session.trySearch(w.genome);
    ASSERT_TRUE(got.ok()) << got.error().str();
    EXPECT_TRUE(got.value().timedOut);
    EXPECT_EQ(got.value().run.metrics.at("search.timed_out"), 1.0);
    EXPECT_GT(got.value().run.metrics.at("scan.chunks_skipped"), 0.0);
    EXPECT_TRUE(got.value().hits.empty());
}

TEST_F(FaultRecovery, ExpiredDeadlineOnDeviceModelEngineNeverStarts)
{
    Workload w(907);
    core::SearchConfig cfg = w.config(core::EngineKind::Fpga);
    cfg.deadline = common::Deadline::after(0.0);
    core::SearchSession session(w.guides, cfg);

    // Device-model engines cannot stop mid-scan; an already-expired
    // deadline degrades to an empty timed-out run.
    auto got = session.trySearch(w.genome);
    ASSERT_TRUE(got.ok()) << got.error().str();
    EXPECT_TRUE(got.value().timedOut);
    EXPECT_TRUE(got.value().hits.empty());
}

TEST_F(FaultRecovery, CancellationStopsAStreamMidway)
{
    // Drive ChunkedScanner directly with a manual token cancelled by
    // the chunk observer after the first chunk lands.
    Workload w(908);
    const core::Engine &engine = core::EngineRegistry::instance()
                                     .engine(core::EngineKind::HscanAuto);
    core::PatternSet set = core::buildPatternSet(
        w.guides, core::pamNGG(), 2, /*both_strands=*/true);
    auto compiled = std::make_shared<const core::CompiledPattern>(
        engine.compile(set, core::EngineParams{}));

    common::Deadline token = common::Deadline::manual();
    core::ChunkedScanOptions opts;
    opts.chunkSize = 512;
    opts.threads = 1;
    opts.deadline = token;

    std::vector<genome::FastaRecord> records{{"chr0", "", w.genome}};
    std::ostringstream fasta;
    genome::writeFasta(fasta, records);
    std::istringstream in(fasta.str());
    genome::FastaStreamReader reader(in);

    size_t chunks_seen = 0;
    auto run = core::ChunkedScanner(engine, compiled, opts)
                   .tryScanStream(reader, [&](const core::ChunkScanView &) {
                       if (++chunks_seen == 1)
                           token.cancel();
                   });
    ASSERT_TRUE(run.ok()) << run.error().str();
    EXPECT_EQ(run.value().metrics.at("search.cancelled"), 1.0);
    // Cancellation is not a timeout: the token had no time limit.
    EXPECT_EQ(run.value().metrics.at("search.timed_out"), 0.0);
    // Far fewer chunks than the ~12 the full stream holds.
    EXPECT_LT(run.value().metrics.at("scan.chunks"), 4.0);
}

TEST_F(FaultRecovery, StreamFallsBackBeforeConsumingTheStream)
{
    // A device-model primary fails the chunkability check before any
    // byte is read, so the fallback engine scans the intact stream.
    Workload w(909);
    core::SearchConfig cfg = w.config(core::EngineKind::Fpga);
    cfg.fallbacks = {core::EngineKind::HscanAuto};
    core::SearchSession session(w.guides, cfg);

    core::SearchResult want =
        session.search(w.genome, w.config(core::EngineKind::HscanAuto));
    ASSERT_FALSE(want.hits.empty());

    std::vector<genome::FastaRecord> records{{"chr0", "", w.genome}};
    std::ostringstream fasta;
    genome::writeFasta(fasta, records);
    std::istringstream in(fasta.str());
    auto got = session.trySearchStream(in, cfg);
    ASSERT_TRUE(got.ok()) << got.error().str();
    EXPECT_EQ(got.value().run.kind, core::EngineKind::HscanAuto);
    EXPECT_EQ(got.value().hits, want.hits);
    EXPECT_EQ(got.value().run.metrics.at("session.fallbacks"), 1.0);
    EXPECT_EQ(session.engineFailures(core::EngineKind::Fpga), 1u);
}

TEST_F(FaultRecovery, StreamWithoutFallbackIsTypedUnsupported)
{
    Workload w(910);
    core::SearchSession session(w.guides,
                                w.config(core::EngineKind::Fpga));
    std::istringstream in(">chr\nACGTACGT\n");
    auto got = session.trySearchStream(in);
    ASSERT_FALSE(got.ok());
    EXPECT_EQ(got.error().code(), ErrorCode::UnsupportedEngine);
}

TEST_F(FaultRecovery, MalformedStreamIsTypedParseError)
{
    Workload w(911);
    core::SearchSession session(w.guides,
                                w.config(core::EngineKind::HscanAuto));
    std::istringstream in("ACGT before any header\n>chr\nACGT\n");
    auto got = session.trySearchStream(in);
    ASSERT_FALSE(got.ok());
    EXPECT_EQ(got.error().code(), ErrorCode::ParseError);
}

TEST_F(FaultRecovery, InjectedRecordFaultIsTypedInStrictMode)
{
    Workload w(912);
    core::SearchSession session(w.guides,
                                w.config(core::EngineKind::HscanAuto));
    std::vector<genome::FastaRecord> records{{"chr0", "", w.genome}};
    std::ostringstream fasta;
    genome::writeFasta(fasta, records);

    fp::armFailOnce("fasta.record");
    std::istringstream in(fasta.str());
    auto got = session.trySearchStream(in);
    ASSERT_FALSE(got.ok());
    EXPECT_EQ(got.error().code(), ErrorCode::ParseError);
}

TEST_F(FaultRecovery, LenientStreamDropsFaultedRecordAndContinues)
{
    // Two single-record chromosomes, a site planted in each; the
    // injected fault drops the first record, so only the second
    // record's hits survive — shifted to the front of the stream.
    Workload w(913);
    genome::Sequence site = w.guides[0].protospacer;
    site.append(genome::Sequence::fromString("TGG"));
    Rng rng(9130);
    genome::Sequence chr1 = test::randomGenome(rng, 3000);
    genome::plantSite(chr1, 700, site);

    core::SearchConfig cfg = w.config(core::EngineKind::HscanAuto);
    cfg.lenientFasta = true;
    core::SearchSession session(w.guides, cfg);

    core::SearchResult want = session.search(chr1);
    ASSERT_FALSE(want.hits.empty());

    std::vector<genome::FastaRecord> records{{"chr0", "", w.genome},
                                             {"chr1", "", chr1}};
    std::ostringstream fasta;
    genome::writeFasta(fasta, records);

    fp::armFailOnce("fasta.record");
    std::istringstream in(fasta.str());
    auto got = session.trySearchStream(in);
    ASSERT_TRUE(got.ok()) << got.error().str();
    EXPECT_EQ(got.value().run.metrics.at("parse.records_dropped"), 1.0);
    EXPECT_EQ(got.value().hits, want.hits);
}

TEST_F(FaultRecovery, EnvSpecStringArmsPoints)
{
    // armFromSpec is the same parser armFromEnv feeds
    // $CRISPR_FAULTPOINTS through; end-to-end: arming engine.scan via a
    // spec string fails the primary and falls back.
    Workload w(914);
    core::SearchConfig cfg = w.config(core::EngineKind::HscanAuto);
    cfg.fallbacks = {core::EngineKind::Reference};
    core::SearchSession session(w.guides, cfg);

    ASSERT_EQ(fp::armFromSpec("engine.scan=once"), 1u);
    auto got = session.trySearch(w.genome);
    ASSERT_TRUE(got.ok()) << got.error().str();
    EXPECT_EQ(got.value().run.kind, core::EngineKind::Reference);
    EXPECT_EQ(got.value().run.metrics.at("session.fallbacks"), 1.0);
}

} // namespace
} // namespace crispr
