/** @file Unit tests for guide/PAM modelling. */

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "core/guide.hpp"
#include "genome/generator.hpp"

namespace crispr::core {
namespace {

TEST(Guide, MakeGuideValidates)
{
    Guide g = makeGuide("g1", "ACGTACGTACGTACGTACGT");
    EXPECT_EQ(g.name, "g1");
    EXPECT_EQ(g.protospacer.size(), 20u);
    EXPECT_THROW(makeGuide("bad", "ACGTN"), FatalError);
    EXPECT_THROW(makeGuide("bad", "ACGR"), FatalError);
    EXPECT_THROW(makeGuide("bad", ""), FatalError);
}

TEST(Guide, RnaUracilTolerated)
{
    Guide g = makeGuide("rna", "ACGU");
    EXPECT_EQ(g.protospacer.str(), "ACGT");
}

TEST(Pam, PresetsAndMasks)
{
    EXPECT_EQ(pamNGG().iupac, "NGG");
    EXPECT_EQ(pamNAG().iupac, "NAG");
    EXPECT_EQ(pamNRG().iupac, "NRG");
    auto m = pamNRG().masks();
    ASSERT_EQ(m.size(), 3u);
    EXPECT_EQ(m[0], genome::iupacMask('N'));
    EXPECT_EQ(m[1], genome::iupacMask('R'));
    EXPECT_EQ(m[2], genome::iupacMask('G'));
    EXPECT_THROW(PamSpec{""}.masks(), FatalError);
}

TEST(Guide, RandomGuidesDeterministic)
{
    auto a = randomGuides(5, 20, 42);
    auto b = randomGuides(5, 20, 42);
    ASSERT_EQ(a.size(), 5u);
    for (size_t i = 0; i < 5; ++i) {
        EXPECT_EQ(a[i].protospacer, b[i].protospacer);
        EXPECT_EQ(a[i].name, "g" + std::to_string(i));
        EXPECT_EQ(a[i].protospacer.size(), 20u);
    }
}

TEST(Guide, GuidesFromGenomeHaveOnTargetSites)
{
    genome::GenomeSpec spec;
    spec.length = 10000;
    genome::Sequence g = genome::generateGenome(spec);
    auto guides = guidesFromGenome(g, 5, 20, 7);
    for (const Guide &guide : guides) {
        // The sampled window exists somewhere in the genome.
        bool found = false;
        for (size_t at = 0; at + 20 <= g.size() && !found; ++at) {
            found = g.slice(at, 20) == guide.protospacer;
        }
        EXPECT_TRUE(found) << guide.name;
    }
}

} // namespace
} // namespace crispr::core
