/** @file Tests for the engine registry, compile-once SearchSession,
 *  and the engine-agnostic chunked scan pipeline. */

#include <atomic>
#include <memory>
#include <set>
#include <sstream>
#include <thread>

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "core/engine_registry.hpp"
#include "core/session.hpp"
#include "genome/fasta.hpp"
#include "genome/generator.hpp"
#include "test_util.hpp"

namespace crispr {
namespace {

core::Guide
randomGuide(Rng &rng, const std::string &name)
{
    static const char bases[] = "ACGT";
    std::string seq;
    for (int i = 0; i < 20; ++i)
        seq += bases[rng.below(4)];
    return core::makeGuide(name, seq);
}

std::vector<core::Guide>
randomGuides(Rng &rng, size_t count)
{
    std::vector<core::Guide> guides;
    for (size_t i = 0; i < count; ++i)
        guides.push_back(randomGuide(rng, "g" + std::to_string(i)));
    return guides;
}

TEST(EngineRegistry, CoversEveryKindAndRoundTripsNames)
{
    const auto &registry = core::EngineRegistry::instance();
    std::vector<core::EngineKind> kinds = registry.kinds();
    EXPECT_EQ(kinds, core::allEngines());

    std::set<std::string> names;
    for (core::EngineKind kind : core::allEngines()) {
        const core::Engine &engine = registry.engine(kind);
        EXPECT_EQ(engine.kind(), kind);
        EXPECT_STREQ(engine.name(), core::engineName(kind));
        EXPECT_EQ(engine.requiredOrientation(),
                  core::requiredOrientation(kind));
        // Names are unique and look up the same adapter.
        EXPECT_TRUE(names.insert(engine.name()).second);
        const core::Engine *by_name = registry.findByName(engine.name());
        ASSERT_NE(by_name, nullptr);
        EXPECT_EQ(by_name->kind(), kind);
    }
    EXPECT_EQ(registry.findByName("no-such-engine"), nullptr);

    // Only the AP counter design needs the PamFirst orientation, and
    // only CPU engines accept chunked scans.
    for (core::EngineKind kind : core::allEngines()) {
        const core::Engine &engine = registry.engine(kind);
        EXPECT_EQ(engine.requiredOrientation() ==
                      core::Orientation::PamFirst,
                  kind == core::EngineKind::ApCounter)
            << engine.name();
        const bool device_model =
            kind == core::EngineKind::GpuInfant2 ||
            kind == core::EngineKind::Fpga ||
            kind == core::EngineKind::Ap ||
            kind == core::EngineKind::ApCounter;
        EXPECT_EQ(engine.supportsChunkedScan(), !device_model)
            << engine.name();
    }
}

TEST(SearchSession, CompilesOnceAcrossTenSearches)
{
    Rng rng(811);
    std::vector<core::Guide> guides = randomGuides(rng, 100);

    core::SearchConfig cfg;
    cfg.maxMismatches = 1;
    cfg.engine = core::EngineKind::HscanAuto;
    core::SearchSession session(guides, cfg);

    core::SearchResult last;
    for (int i = 0; i < 10; ++i) {
        genome::GenomeSpec gs;
        gs.length = 4000;
        gs.seed = 8110 + i;
        last = session.search(genome::generateGenome(gs));
    }
    EXPECT_EQ(session.compileCount(), 1u);
    EXPECT_EQ(session.cacheHits(), 9u);
    EXPECT_EQ(last.run.metrics.at("session.compiles"), 1.0);
    EXPECT_EQ(last.run.metrics.at("session.cache_hits"), 9.0);

    // A different config compiles again; repeating it hits the cache.
    core::SearchConfig other = cfg;
    other.maxMismatches = 2;
    genome::GenomeSpec gs;
    gs.length = 4000;
    gs.seed = 8199;
    genome::Sequence g = genome::generateGenome(gs);
    session.search(g, other);
    EXPECT_EQ(session.compileCount(), 2u);
    session.search(g, other);
    EXPECT_EQ(session.compileCount(), 2u);
    EXPECT_EQ(session.cacheHits(), 10u);
}

TEST(SearchSession, ReuseIsBitIdenticalToOneShotSearch)
{
    Rng rng(812);
    std::vector<core::Guide> guides = randomGuides(rng, 3);
    genome::Sequence site = guides[0].protospacer;
    site.append(genome::Sequence::fromString("AGG"));

    core::SearchConfig cfg;
    cfg.maxMismatches = 3;
    core::SearchSession session(guides, cfg);
    for (int i = 0; i < 3; ++i) {
        genome::GenomeSpec gs;
        gs.length = 20000;
        gs.seed = 8120 + i;
        genome::Sequence g = genome::generateGenome(gs);
        genome::plantSite(g, 500 + 333 * i, site);

        core::SearchResult fresh = core::search(g, guides, cfg);
        core::SearchResult reused = session.search(g);
        EXPECT_EQ(reused.hits, fresh.hits);
        EXPECT_EQ(reused.run.events, fresh.run.events);
        EXPECT_EQ(reused.droppedEvents, fresh.droppedEvents);
    }
    EXPECT_EQ(session.compileCount(), 1u);
}

TEST(ChunkedScan, SeamStraddlingSitesMatchWholeScan)
{
    // Sites planted across every chunk seam, one per mismatch count:
    // chunked events must be bit-identical to one whole-genome scan for
    // every chunk-capable engine, serial and threaded.
    const size_t chunk = 512;
    core::Guide guide = core::makeGuide("g0", "GATTACAGATTACAGATTAC");
    genome::Sequence site = guide.protospacer;
    site.append(genome::Sequence::fromString("TGG"));

    Rng rng(813);
    genome::Sequence g = test::randomGenome(rng, 6000);
    for (int d = 0; d <= 4; ++d) {
        genome::Sequence s =
            d == 0 ? site : genome::mutateSite(site, d, 0, 20, rng);
        // Straddle seam d+1: start 10 before it, end 13 after.
        genome::plantSite(g, (d + 1) * chunk - 10, s);
    }

    for (int d = 0; d <= 4; ++d) {
        core::PatternSet set = core::buildPatternSet(
            {guide}, core::pamNGG(), d, /*both_strands=*/true);
        for (core::EngineKind kind : core::allEngines()) {
            const core::Engine &engine =
                core::EngineRegistry::instance().engine(kind);
            if (!engine.supportsChunkedScan())
                continue;
            auto compiled = std::make_shared<const core::CompiledPattern>(
                engine.compile(set, core::EngineParams{}));
            core::EngineRun whole =
                engine.scan(*compiled, core::SequenceView(g));
            ASSERT_FALSE(whole.events.empty())
                << engine.name() << " d=" << d;
            for (unsigned threads : {1u, 3u}) {
                core::ChunkedScanOptions opts;
                opts.chunkSize = chunk;
                opts.threads = threads;
                core::EngineRun chunked =
                    core::ChunkedScanner(engine, compiled, opts).scan(g);
                EXPECT_EQ(chunked.events, whole.events)
                    << engine.name() << " d=" << d
                    << " threads=" << threads;
                EXPECT_EQ(chunked.metrics.at("scan.chunks"), 12.0);
            }
        }
    }
}

TEST(ChunkedScan, RejectsDeviceModelEngines)
{
    core::Guide guide = core::makeGuide("g0", "GATTACAGATTACAGATTAC");
    core::PatternSet set =
        core::buildPatternSet({guide}, core::pamNGG(), 1, true);
    const core::Engine &fpga =
        core::EngineRegistry::instance().engine(core::EngineKind::Fpga);
    auto compiled = std::make_shared<const core::CompiledPattern>(
        fpga.compile(set, core::EngineParams{}));
    EXPECT_THROW(core::ChunkedScanner(fpga, compiled), FatalError);
}

TEST(SearchSession, ThreadsPlumbedForEveryChunkCapableEngine)
{
    Rng rng(814);
    std::vector<core::Guide> guides = randomGuides(rng, 2);
    genome::Sequence site = guides[1].protospacer;
    site.append(genome::Sequence::fromString("CGG"));
    genome::Sequence g = test::randomGenome(rng, 9000);
    genome::plantSite(g, 2048 - 7, site); // straddles a chunk seam

    for (core::EngineKind kind : core::allEngines()) {
        if (!core::EngineRegistry::instance()
                 .engine(kind)
                 .supportsChunkedScan())
            continue;
        core::SearchConfig serial;
        serial.maxMismatches = 2;
        serial.engine = kind;
        core::SearchConfig threaded = serial;
        threaded.threads = 3;
        threaded.chunkSize = 2048;

        core::SearchSession session(guides, serial);
        core::SearchResult want = session.search(g);
        core::SearchResult got = session.search(g, threaded);
        EXPECT_EQ(got.hits, want.hits) << core::engineName(kind);
        EXPECT_EQ(got.run.events, want.run.events)
            << core::engineName(kind);
        EXPECT_EQ(got.run.metrics.at("scan.threads"), 3.0)
            << core::engineName(kind);
        // One compilation serves both the serial and the chunked scan.
        EXPECT_EQ(session.compileCount(), 1u) << core::engineName(kind);
    }
}

TEST(SearchSession, StreamedFastaMatchesInMemorySearch)
{
    Rng rng(815);
    std::vector<core::Guide> guides = randomGuides(rng, 2);
    genome::Sequence site = guides[0].protospacer;
    site.append(genome::Sequence::fromString("GGG"));

    std::vector<genome::FastaRecord> records;
    for (int r = 0; r < 3; ++r) {
        genome::Sequence chr = test::randomGenome(rng, 5000, 0.01);
        genome::plantSite(chr, 1000 + 700 * r, site);
        records.push_back({"chr" + std::to_string(r), "", chr});
    }
    // A reverse-strand site before the forward ones exercises the
    // cross-strand hit ordering of the streamed merge.
    genome::plantSite(records[0].seq, 200, site.reverseComplement());
    std::ostringstream fasta;
    genome::writeFasta(fasta, records);
    genome::Sequence all = genome::concatenateRecords(records);

    for (core::EngineKind kind : {core::EngineKind::HscanAuto,
                                  core::EngineKind::CasOffinder}) {
        for (unsigned threads : {1u, 3u}) {
            core::SearchConfig cfg;
            cfg.maxMismatches = 3;
            cfg.engine = kind;
            cfg.threads = threads;
            cfg.chunkSize = 1777;
            core::SearchSession session(guides, cfg);

            core::SearchResult want = session.search(all);
            std::istringstream in(fasta.str());
            core::SearchResult streamed = session.searchStream(in);
            EXPECT_EQ(streamed.hits, want.hits)
                << core::engineName(kind) << " threads=" << threads;
            EXPECT_EQ(streamed.run.events, want.run.events)
                << core::engineName(kind) << " threads=" << threads;
            EXPECT_EQ(streamed.droppedEvents, 0u);
            // Compiled once, reused by the streamed pass.
            EXPECT_EQ(session.compileCount(), 1u);
            EXPECT_GE(streamed.run.metrics.at("scan.chunks"), 8.0);
        }
    }
}

TEST(SearchSession, StreamingRejectsDeviceModelEngines)
{
    Rng rng(816);
    core::SearchConfig cfg;
    cfg.engine = core::EngineKind::GpuInfant2;
    core::SearchSession session(randomGuides(rng, 1), cfg);
    std::istringstream in(">chr\nACGTACGT\n");
    EXPECT_THROW(session.searchStream(in), FatalError);
}

TEST(SearchSession, LruEvictsLeastRecentlyUsedCompilation)
{
    Rng rng(818);
    std::vector<core::Guide> guides = randomGuides(rng, 3);
    genome::GenomeSpec gs;
    gs.length = 4000;
    gs.seed = 8180;
    genome::Sequence g = genome::generateGenome(gs);

    core::SearchConfig base;
    base.engine = core::EngineKind::HscanAuto;
    core::SearchConfig d0 = base, d1 = base, d2 = base;
    d0.maxMismatches = 0;
    d1.maxMismatches = 1;
    d2.maxMismatches = 2;

    core::SearchSession session(guides, base, /*cache_capacity=*/2);
    session.search(g, d0);
    session.search(g, d1);
    EXPECT_EQ(session.compileCount(), 2u);

    // Touch d0 so d1 is the LRU entry, then overflow the capacity.
    session.search(g, d0);
    EXPECT_EQ(session.cacheHits(), 1u);
    session.search(g, d2); // evicts d1
    EXPECT_EQ(session.compileCount(), 3u);

    session.search(g, d0); // still cached
    session.search(g, d2); // still cached
    EXPECT_EQ(session.compileCount(), 3u);
    session.search(g, d1); // evicted: recompiles
    EXPECT_EQ(session.compileCount(), 4u);
}

TEST(SearchSession, ConcurrentSearchesShareOneCompilation)
{
    Rng rng(819);
    std::vector<core::Guide> guides = randomGuides(rng, 20);
    genome::GenomeSpec gs;
    gs.length = 6000;
    gs.seed = 8190;
    genome::Sequence g = genome::generateGenome(gs);

    core::SearchConfig cfg;
    cfg.maxMismatches = 2;
    cfg.engine = core::EngineKind::HscanAuto;
    core::SearchSession session(guides, cfg);
    core::SearchResult want = session.search(g);
    session.clearCache();

    // A fresh cache hammered by many threads with one config: the
    // compile lock must serialise them onto a single compilation.
    core::SearchSession fresh(guides, cfg);
    constexpr int kThreads = 8;
    std::vector<core::SearchResult> results(kThreads);
    std::vector<std::thread> pool;
    for (int t = 0; t < kThreads; ++t)
        pool.emplace_back(
            [&, t] { results[t] = fresh.search(g); });
    for (auto &t : pool)
        t.join();
    EXPECT_EQ(fresh.compileCount(), 1u);
    EXPECT_EQ(fresh.cacheHits(), kThreads - 1u);
    for (const core::SearchResult &r : results)
        EXPECT_EQ(r.hits, want.hits);
}

TEST(SearchSession, ClearCacheRacingSearchesIsSafe)
{
    Rng rng(820);
    std::vector<core::Guide> guides = randomGuides(rng, 10);
    genome::GenomeSpec gs;
    gs.length = 5000;
    gs.seed = 8200;
    genome::Sequence g = genome::generateGenome(gs);

    core::SearchConfig cfg;
    cfg.maxMismatches = 1;
    cfg.engine = core::EngineKind::HscanAuto;
    core::SearchSession session(guides, cfg);
    core::SearchResult want = session.search(g);

    // Searches hold shared_ptrs to compiled patterns, so evicting the
    // cache mid-search must neither crash nor corrupt results.
    std::atomic<bool> stop{false};
    std::thread clearer([&] {
        while (!stop.load())
            session.clearCache();
    });
    constexpr int kThreads = 4;
    std::vector<std::thread> pool;
    std::atomic<int> mismatches{0};
    for (int t = 0; t < kThreads; ++t)
        pool.emplace_back([&] {
            for (int i = 0; i < 8; ++i) {
                core::SearchResult r = session.search(g);
                if (r.hits != want.hits)
                    mismatches.fetch_add(1);
            }
        });
    for (auto &t : pool)
        t.join();
    stop.store(true);
    clearer.join();
    EXPECT_EQ(mismatches.load(), 0);
    // Every search still succeeded; compiles just stopped being shared.
    EXPECT_GE(session.compileCount(), 1u);
}

TEST(Engines, RuntimeThreadsDriveParallelScan)
{
    Rng rng(817);
    std::vector<core::Guide> guides = randomGuides(rng, 2);
    genome::Sequence g = test::randomGenome(rng, 8000);

    core::SearchConfig serial;
    serial.maxMismatches = 2;
    serial.engine = core::EngineKind::HscanAuto;

    core::SearchConfig threaded = serial;
    threaded.runtime().threads = 3;
    threaded.runtime().chunkSize = 1 << 10;

    core::SearchSession session(guides, serial);
    core::SearchResult want = session.search(g);
    core::SearchResult got = session.search(g, threaded);
    EXPECT_EQ(got.hits, want.hits);
    EXPECT_EQ(got.run.metrics.at("scan.threads"), 3.0);
}

} // namespace
} // namespace crispr
