/** @file Unit tests for the golden brute-force verifier. */

#include <algorithm>

#include <gtest/gtest.h>

#include "baselines/brute.hpp"
#include "genome/generator.hpp"
#include "test_util.hpp"

namespace crispr::baselines {
namespace {

using automata::HammingSpec;
using automata::ReportEvent;
using genome::Sequence;

HammingSpec
specOf(const std::string &pattern, int d, size_t lo = 0,
       size_t hi = SIZE_MAX, uint32_t id = 0)
{
    HammingSpec spec;
    spec.masks = genome::masksFromIupac(pattern);
    spec.maxMismatches = d;
    spec.mismatchLo = lo;
    spec.mismatchHi = hi;
    spec.reportId = id;
    return spec;
}

TEST(WindowMismatches, CountsAndRejects)
{
    Sequence g = Sequence::fromString("ACGTAC");
    EXPECT_EQ(windowMismatches(g, 0, specOf("ACGT", 2)), 0);
    EXPECT_EQ(windowMismatches(g, 1, specOf("CGTT", 2)), 1);
    EXPECT_EQ(windowMismatches(g, 0, specOf("TTTT", 2)), -1);
    // Exact-region violation rejects outright.
    EXPECT_EQ(windowMismatches(g, 0, specOf("TCGT", 2, 1, 4)), -1);
    // N in the exact region rejects; N in mismatch region counts.
    Sequence gn = Sequence::fromString("ACNT");
    EXPECT_EQ(windowMismatches(gn, 0, specOf("ACGT", 1)), 1);
    EXPECT_EQ(windowMismatches(gn, 0, specOf("ACGT", 1, 0, 2)), -1);
}

TEST(BruteForce, FindsPlantedSites)
{
    genome::GenomeSpec gs;
    gs.length = 5000;
    gs.seed = 3;
    Sequence g = genome::generateGenome(gs);
    Rng rng(4);
    Sequence site = Sequence::fromString("ACGTACGTACGTACGTACGTTGG");
    auto offsets = genome::plantMutatedSites(g, site, 5, 2, 0, 20, rng);
    ASSERT_EQ(offsets.size(), 5u);

    auto spec = specOf(site.str(), 2, 0, 20, 9);
    auto events = bruteForceScan(g, std::span(&spec, 1));
    for (size_t at : offsets) {
        const ReportEvent want{9, at + site.size() - 1};
        EXPECT_TRUE(std::find(events.begin(), events.end(), want) !=
                    events.end())
            << "missing planted site at " << at;
    }
}

TEST(BruteForce, BoundarySites)
{
    // Sites at offset 0 and at the very end must be found.
    Sequence g = Sequence::fromString("ACGTTTTACGT");
    auto spec = specOf("ACGT", 0);
    auto events = bruteForceScan(g, std::span(&spec, 1));
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].end, 3u);
    EXPECT_EQ(events[1].end, 10u);
}

TEST(BruteForce, DBoundaryExactness)
{
    // A site at exactly d mismatches is in; d+1 is out.
    Sequence g = Sequence::fromString("AAAA");
    for (int d = 0; d <= 4; ++d) {
        auto spec = specOf(std::string(4 - d, 'A') +
                               std::string(d, 'C'),
                           d);
        EXPECT_EQ(
            bruteForceScan(g, std::span(&spec, 1)).size(), 1u)
            << "d=" << d;
        if (d < 4) {
            auto over = specOf(std::string(3 - d, 'A') +
                                   std::string(d + 1, 'C'),
                               d);
            EXPECT_TRUE(
                bruteForceScan(g, std::span(&over, 1)).empty());
        }
    }
}

TEST(BruteForce, PatternLongerThanGenome)
{
    Sequence g = Sequence::fromString("AC");
    auto spec = specOf("ACGT", 1);
    EXPECT_TRUE(bruteForceScan(g, std::span(&spec, 1)).empty());
}

TEST(BruteForce, OverlappingSitesAllReported)
{
    Sequence g = Sequence::fromString("AAAAA");
    auto spec = specOf("AA", 0);
    EXPECT_EQ(bruteForceScan(g, std::span(&spec, 1)).size(), 4u);
}

TEST(NormalizeEvents, SortsAndDedups)
{
    std::vector<ReportEvent> events = {
        {2, 10}, {1, 10}, {2, 10}, {1, 3}};
    normalizeEvents(events);
    ASSERT_EQ(events.size(), 3u);
    EXPECT_EQ(events[0], (ReportEvent{1, 3}));
    EXPECT_EQ(events[1], (ReportEvent{1, 10}));
    EXPECT_EQ(events[2], (ReportEvent{2, 10}));
}

} // namespace
} // namespace crispr::baselines
