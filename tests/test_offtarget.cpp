/** @file Unit tests for event -> hit conversion and annotations. */

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "core/offtarget.hpp"
#include "genome/generator.hpp"

namespace crispr::core {
namespace {

std::vector<Guide>
oneGuide()
{
    return {makeGuide("g0", "ACGTACGTACGTACGTACGT")};
}

TEST(OffTarget, ForwardStreamCoordinates)
{
    // Genome with the exact site at offset 7.
    genome::Sequence g =
        genome::Sequence::fromString(std::string(7, 'T') +
                                     "ACGTACGTACGTACGTACGT" "AGG" +
                                     std::string(5, 'T'));
    PatternSet set = buildPatternSet(oneGuide(), pamNGG(), 1, true);
    // Event: pattern 0 (forward), end = 7 + 23 - 1.
    std::vector<automata::ReportEvent> events = {{0, 29}};
    auto hits = hitsFromEvents(g, set, events);
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_EQ(hits[0].guide, 0u);
    EXPECT_EQ(hits[0].strand, Strand::Forward);
    EXPECT_EQ(hits[0].start, 7u);
    EXPECT_EQ(hits[0].mismatches, 0);
}

TEST(OffTarget, ReversedStreamCoordinates)
{
    genome::Sequence g =
        genome::Sequence::fromString(std::string(7, 'T') +
                                     "ACGTACGTACGTACGTACGT" "AGG" +
                                     std::string(5, 'T'));
    PatternSet set = buildPatternSet(oneGuide(), pamNGG(), 1, true,
                                     Orientation::PamFirst);
    // Forward-strand PamFirst pattern scans the reversed stream; the
    // site [7, 30) maps to reversed end = N - 1 - 7.
    std::vector<automata::ReportEvent> events = {
        {0, g.size() - 1 - 7}};
    auto hits = hitsFromEvents(g, set, events);
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_EQ(hits[0].strand, Strand::Forward);
    EXPECT_EQ(hits[0].start, 7u);
    EXPECT_EQ(hits[0].mismatches, 0);
}

TEST(OffTarget, MismatchCountRecomputed)
{
    // Site with 1 mismatch in the guide region.
    genome::Sequence g =
        genome::Sequence::fromString("CCGTACGTACGTACGTACGT" "AGG");
    PatternSet set = buildPatternSet(oneGuide(), pamNGG(), 2, false);
    std::vector<automata::ReportEvent> events = {{0, 22}};
    auto hits = hitsFromEvents(g, set, events);
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_EQ(hits[0].mismatches, 1);
}

TEST(OffTarget, UnverifiableEventPanicsOrDrops)
{
    genome::Sequence g =
        genome::Sequence::fromString(std::string(30, 'T'));
    PatternSet set = buildPatternSet(oneGuide(), pamNGG(), 0, false);
    std::vector<automata::ReportEvent> events = {{0, 25}};
    EXPECT_THROW(hitsFromEvents(g, set, events), PanicError);
    size_t dropped = 0;
    auto hits = hitsFromEvents(g, set, events, true, &dropped);
    EXPECT_TRUE(hits.empty());
    EXPECT_EQ(dropped, 1u);
}

TEST(OffTarget, DedupAcrossDuplicateEvents)
{
    genome::Sequence g = genome::Sequence::fromString(
        "ACGTACGTACGTACGTACGT" "AGG");
    PatternSet set = buildPatternSet(oneGuide(), pamNGG(), 1, false);
    std::vector<automata::ReportEvent> events = {{0, 22}, {0, 22}};
    EXPECT_EQ(hitsFromEvents(g, set, events).size(), 1u);
}

TEST(OffTarget, SiteStringReadsOnStrand)
{
    // Reverse-strand site: genome holds revcomp(guide+PAM).
    genome::Sequence site =
        genome::Sequence::fromString("ACGTACGTACGTACGTACGT" "AGG");
    genome::Sequence g = site.reverseComplement();
    PatternSet set = buildPatternSet(oneGuide(), pamNGG(), 0, true);
    // Reverse pattern (id 1) matches the forward stream at end 22.
    std::vector<automata::ReportEvent> events = {{1, 22}};
    auto hits = hitsFromEvents(g, set, events);
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_EQ(hits[0].strand, Strand::Reverse);
    EXPECT_EQ(hitSiteString(g, set, hits[0]),
              "ACGTACGTACGTACGTACGTAGG");
}

TEST(OffTarget, AlignmentLowercasesMismatches)
{
    genome::Sequence g = genome::Sequence::fromString(
        "CCGTACGTACGTACGTACGT" "AGG");
    PatternSet set = buildPatternSet(oneGuide(), pamNGG(), 2, false);
    std::vector<automata::ReportEvent> events = {{0, 22}};
    auto hits = hitsFromEvents(g, set, events);
    ASSERT_EQ(hits.size(), 1u);
    std::string aln = hitAlignmentString(g, set, hits[0]);
    EXPECT_EQ(aln, "cCGTACGTACGTACGTACGTAGG");
}

TEST(OffTarget, HitsSortedByGuideThenPosition)
{
    genome::Sequence g = genome::Sequence::fromString(
        "ACGTACGTACGTACGTACGT" "AGG" "TT" "ACGTACGTACGTACGTACGT" "TGG");
    PatternSet set = buildPatternSet(oneGuide(), pamNGG(), 0, false);
    std::vector<automata::ReportEvent> events = {{0, 47}, {0, 22}};
    auto hits = hitsFromEvents(g, set, events);
    ASSERT_EQ(hits.size(), 2u);
    EXPECT_LT(hits[0].start, hits[1].start);
}

} // namespace
} // namespace crispr::core
