/** @file Unit tests for SymbolClass. */

#include <gtest/gtest.h>

#include "automata/charclass.hpp"
#include "common/logging.hpp"

namespace crispr::automata {
namespace {

using genome::baseCode;
using genome::iupacMask;
using genome::kCodeN;

TEST(SymbolClass, MatchClassExcludesN)
{
    SymbolClass cls = SymbolClass::match(iupacMask('R'));
    EXPECT_TRUE(cls.matches(baseCode('A')));
    EXPECT_TRUE(cls.matches(baseCode('G')));
    EXPECT_FALSE(cls.matches(baseCode('C')));
    EXPECT_FALSE(cls.matches(kCodeN));
}

TEST(SymbolClass, MismatchClassIncludesN)
{
    SymbolClass cls = SymbolClass::mismatch(iupacMask('R'));
    EXPECT_FALSE(cls.matches(baseCode('A')));
    EXPECT_FALSE(cls.matches(baseCode('G')));
    EXPECT_TRUE(cls.matches(baseCode('C')));
    EXPECT_TRUE(cls.matches(baseCode('T')));
    EXPECT_TRUE(cls.matches(kCodeN));
}

TEST(SymbolClass, MatchAndMismatchPartitionTheAlphabet)
{
    for (genome::BaseMask m = 1; m < 16; ++m) {
        SymbolClass match = SymbolClass::match(m);
        SymbolClass mismatch = SymbolClass::mismatch(m);
        for (uint8_t c = 0; c < genome::kNumSymbols; ++c)
            EXPECT_NE(match.matches(c), mismatch.matches(c));
    }
}

TEST(SymbolClass, AnyAndNone)
{
    for (uint8_t c = 0; c < genome::kNumSymbols; ++c) {
        EXPECT_TRUE(SymbolClass::any().matches(c));
        EXPECT_FALSE(SymbolClass::none().matches(c));
    }
    EXPECT_TRUE(SymbolClass::none().empty());
}

TEST(SymbolClass, SetOperators)
{
    SymbolClass a = SymbolClass::match(iupacMask('A'));
    SymbolClass g = SymbolClass::match(iupacMask('G'));
    SymbolClass ag = a | g;
    EXPECT_TRUE(ag.matches(baseCode('A')));
    EXPECT_TRUE(ag.matches(baseCode('G')));
    EXPECT_EQ((ag & a), a);
    EXPECT_TRUE((a & g).empty());
}

TEST(SymbolClass, StrRendering)
{
    EXPECT_EQ(SymbolClass::match(iupacMask('A')).str(), "A");
    EXPECT_EQ(SymbolClass::match(iupacMask('R')).str(), "[AG]");
    EXPECT_EQ(SymbolClass::any().str(), "*");
    EXPECT_EQ(SymbolClass::mismatch(iupacMask('A')).str(), "[CGTN]");
}

class SymbolClassRoundTrip : public ::testing::TestWithParam<int>
{
};

TEST_P(SymbolClassRoundTrip, ParseInvertsStr)
{
    SymbolClass cls(static_cast<uint8_t>(GetParam()));
    if (cls.empty())
        return; // "[]" is not produced
    EXPECT_EQ(SymbolClass::parse(cls.str()), cls);
}

INSTANTIATE_TEST_SUITE_P(AllMasks, SymbolClassRoundTrip,
                         ::testing::Range(1, 32));

TEST(SymbolClass, ParseErrors)
{
    EXPECT_THROW(SymbolClass::parse("[AC"), FatalError);
    EXPECT_THROW(SymbolClass::parse("[AX]"), FatalError);
}

} // namespace
} // namespace crispr::automata
