/**
 * @file
 * The SIMD conformance matrix: proves every vector kernel tier
 * (scalar / AVX2 / AVX-512) of the Shift-Or matcher and the prefilter
 * anchor probe is bit-identical to the scalar reference — across lane
 * boundaries and ragged tails, chunk seams, the whole mismatch-budget
 * range, and the prefilter work-counter invariants — and that tier
 * dispatch resolves with the documented precedence (CRISPR_SIMD env
 * over the per-request tier over CPUID).
 *
 * Tiers the host or build cannot run are skipped with a logged note,
 * so the suite passes (and still proves scalar identity) on any
 * machine.
 */

#include <cstdio>
#include <cstdlib>
#include <optional>

#include <gtest/gtest.h>

#include "baselines/brute.hpp"
#include "common/logging.hpp"
#include "core/search.hpp"
#include "hscan/multipattern.hpp"
#include "hscan/prefilter.hpp"
#include "hscan/shiftor.hpp"
#include "hscan/simd.hpp"
#include "hscan/simd_shiftor.hpp"
#include "test_util.hpp"

namespace crispr::hscan {
namespace {

using automata::HammingSpec;
using automata::ReportEvent;
using genome::Sequence;

/**
 * The concrete tiers this host/build can execute, widest last. Tiers
 * that cannot run are announced once so a log of a green run on a
 * non-AVX host shows what was not covered.
 */
std::vector<SimdTier>
usableTiers()
{
    std::vector<SimdTier> tiers;
    for (SimdTier tier :
         {SimdTier::Scalar, SimdTier::Avx2, SimdTier::Avx512}) {
        if (simdTierUsable(tier)) {
            tiers.push_back(tier);
        } else {
            static bool noted[4] = {};
            if (!noted[static_cast<int>(tier)]) {
                noted[static_cast<int>(tier)] = true;
                std::printf("[  NOTE    ] SIMD tier %s not usable on "
                            "this host/build; skipping its cases\n",
                            simdTierName(tier));
            }
        }
    }
    return tiers;
}

/** Scoped save/set/restore of one environment variable. */
class EnvGuard
{
  public:
    explicit EnvGuard(const char *name) : name_(name)
    {
        if (const char *v = std::getenv(name))
            saved_ = v;
    }
    ~EnvGuard()
    {
        if (saved_)
            setenv(name_, saved_->c_str(), 1);
        else
            unsetenv(name_);
    }
    void set(const char *value) { setenv(name_, value, 1); }
    void clear() { unsetenv(name_); }

  private:
    const char *name_;
    std::optional<std::string> saved_;
};

std::vector<ReportEvent>
scalarScan(std::span<const HammingSpec> specs, const Sequence &g)
{
    ShiftOrMatcher m(specs);
    auto events = m.scanAll(g);
    automata::normalizeEvents(events);
    return events;
}

std::vector<ReportEvent>
tierScan(std::span<const HammingSpec> specs, const Sequence &g,
         SimdTier tier)
{
    SimdShiftOrMatcher m(specs, tier);
    auto events = m.scanAll(g);
    automata::normalizeEvents(events);
    return events;
}

TEST(SimdDispatch, TierTableIsCoherent)
{
    EXPECT_TRUE(simdTierUsable(SimdTier::Scalar));
    EXPECT_FALSE(simdTierUsable(SimdTier::Auto));
    EXPECT_TRUE(simdTierUsable(bestSimdTier()));

    for (SimdTier tier : {SimdTier::Auto, SimdTier::Scalar,
                          SimdTier::Avx2, SimdTier::Avx512})
        EXPECT_EQ(parseSimdTier(simdTierName(tier)), tier);
    EXPECT_EQ(parseSimdTier("sse9"), std::nullopt);

    EXPECT_EQ(simdTierGaugeValue(SimdTier::Scalar), 0.0);
    EXPECT_EQ(simdTierGaugeValue(SimdTier::Avx2), 1.0);
    EXPECT_EQ(simdTierGaugeValue(SimdTier::Avx512), 2.0);
}

TEST(SimdDispatch, EnvOverridesRequestedTier)
{
    EnvGuard env("CRISPR_SIMD");

    // No override: Auto resolves to the widest usable tier and a
    // concrete usable request is honoured verbatim.
    env.clear();
    EXPECT_EQ(resolveSimdTier(SimdTier::Auto), bestSimdTier());
    EXPECT_EQ(resolveSimdTier(SimdTier::Scalar), SimdTier::Scalar);
    EXPECT_EQ(resolveSimdTier(), bestSimdTier());

    // The env kill switch wins over any per-request tier.
    env.set("scalar");
    EXPECT_EQ(resolveSimdTier(SimdTier::Auto), SimdTier::Scalar);
    EXPECT_EQ(resolveSimdTier(bestSimdTier()), SimdTier::Scalar);

    // env=auto explicitly hands the choice back to CPUID.
    env.set("auto");
    EXPECT_EQ(resolveSimdTier(SimdTier::Scalar), bestSimdTier());

    // A vector tier in the env is honoured when usable.
    if (simdTierUsable(SimdTier::Avx2)) {
        env.set("avx2");
        EXPECT_EQ(resolveSimdTier(SimdTier::Scalar), SimdTier::Avx2);
    }

    // An unparseable value is ignored (warned once), not fatal.
    env.set("quantum");
    EXPECT_EQ(resolveSimdTier(SimdTier::Scalar), SimdTier::Scalar);
}

TEST(SimdDispatch, UnusableRequestDegradesBelowNeverAbove)
{
    EnvGuard env("CRISPR_SIMD");
    env.clear();
    // Whatever tier resolution returns must always be executable —
    // the never-an-illegal-instruction contract.
    for (SimdTier requested : {SimdTier::Auto, SimdTier::Scalar,
                               SimdTier::Avx2, SimdTier::Avx512}) {
        const SimdTier resolved = resolveSimdTier(requested);
        EXPECT_TRUE(simdTierUsable(resolved))
            << "requested " << simdTierName(requested);
        if (requested != SimdTier::Auto)
            EXPECT_LE(static_cast<int>(resolved),
                      static_cast<int>(requested));
    }
}

TEST(SimdShiftOr, LaneBoundaryPatternCounts)
{
    // Pattern counts straddling the 4-lane (AVX2) and 8-lane
    // (AVX-512) boundaries: padded lanes must never report.
    Rng rng(test::testSeed(8101));
    const Sequence g = test::randomGenome(rng, 3000, 0.01);
    for (size_t patterns : {1u, 3u, 4u, 5u, 7u, 8u, 9u, 16u, 17u}) {
        std::vector<HammingSpec> specs;
        for (uint32_t i = 0; i < patterns; ++i)
            specs.push_back(test::randomGuideSpec(rng, 10, 3, 2, i));
        const auto want = scalarScan(specs, g);
        EXPECT_EQ(want, baselines::bruteForceScan(g, specs));
        for (SimdTier tier : usableTiers())
            EXPECT_EQ(tierScan(specs, g, tier), want)
                << "patterns=" << patterns << " tier="
                << simdTierName(tier);
    }
}

TEST(SimdShiftOr, TailGenomeLengths)
{
    // Genome lengths 0 and +-1 around the vector block widths (32
    // positions for AVX2, 64 for AVX-512): the ragged tail and the
    // empty input must match the scalar reference exactly.
    Rng rng(test::testSeed(8102));
    std::vector<HammingSpec> specs;
    for (uint32_t i = 0; i < 5; ++i)
        specs.push_back(test::randomGuideSpec(rng, 8, 2, 1, i));
    for (size_t len : {0u, 1u, 9u, 10u, 11u, 31u, 32u, 33u, 63u, 64u,
                       65u, 127u, 128u, 129u}) {
        const Sequence g = test::randomGenome(rng, len);
        const auto want = scalarScan(specs, g);
        for (SimdTier tier : usableTiers())
            EXPECT_EQ(tierScan(specs, g, tier), want)
                << "len=" << len << " tier=" << simdTierName(tier);
    }
}

TEST(SimdShiftOr, ChunkSeamIdentityPerTier)
{
    // Streaming in ragged chunks (sizes coprime to every lane width)
    // through the same matcher must equal the whole-sequence scan.
    Rng rng(test::testSeed(8103));
    std::vector<HammingSpec> specs;
    for (uint32_t i = 0; i < 6; ++i)
        specs.push_back(test::randomGuideSpec(rng, 12, 3, 2, i));
    const Sequence g = test::randomGenome(rng, 2000, 0.01);

    for (SimdTier tier : usableTiers()) {
        SimdShiftOrMatcher whole(specs, tier);
        auto want = whole.scanAll(g);
        automata::normalizeEvents(want);

        for (size_t chunk : {1u, 7u, 41u, 333u}) {
            SimdShiftOrMatcher streamed(specs, tier);
            streamed.reset();
            std::vector<ReportEvent> got;
            auto sink = [&](uint32_t id, uint64_t end) {
                got.push_back(ReportEvent{id, end});
            };
            for (size_t at = 0; at < g.size(); at += chunk) {
                const size_t n = std::min(chunk, g.size() - at);
                streamed.scan({g.data() + at, n}, sink, at);
            }
            automata::normalizeEvents(got);
            EXPECT_EQ(got, want)
                << "chunk=" << chunk << " tier=" << simdTierName(tier);
        }
    }
}

TEST(SimdShiftOr, MismatchSaturationD0To5)
{
    // The full mismatch-budget range against the brute-force golden
    // scan, with heterogeneous budgets sharing one row block.
    Rng rng(test::testSeed(8104));
    const Sequence g = test::randomGenome(rng, 4000, 0.01);
    for (int d = 0; d <= 5; ++d) {
        std::vector<HammingSpec> specs;
        for (uint32_t i = 0; i < 6; ++i)
            specs.push_back(
                test::randomGuideSpec(rng, 10, 3, i % (d + 1), i));
        const auto want = baselines::bruteForceScan(g, specs);
        EXPECT_EQ(scalarScan(specs, g), want) << "d=" << d;
        for (SimdTier tier : usableTiers())
            EXPECT_EQ(tierScan(specs, g, tier), want)
                << "d=" << d << " tier=" << simdTierName(tier);
    }
}

TEST(SimdShiftOr, SixtyFourPositionPatterns)
{
    // Full-word patterns: the accept bit lives in bit 63, where a
    // shifted-in carry would corrupt a lane that mis-handled the
    // top bit.
    Rng rng(test::testSeed(8105));
    std::vector<HammingSpec> specs;
    for (uint32_t i = 0; i < 5; ++i)
        specs.push_back(test::randomSpec(rng, 64, 2, i));
    const Sequence g = test::randomGenome(rng, 3000);
    const auto want = baselines::bruteForceScan(g, specs);
    EXPECT_EQ(scalarScan(specs, g), want);
    for (SimdTier tier : usableTiers())
        EXPECT_EQ(tierScan(specs, g, tier), want)
            << "tier=" << simdTierName(tier);
}

TEST(SimdPrefilter, EventsAndStatsBitIdenticalAcrossTiers)
{
    Rng rng(test::testSeed(8106));
    std::vector<HammingSpec> specs;
    for (uint32_t i = 0; i < 8; ++i)
        specs.push_back(test::randomGuideSpec(rng, 20, 3, 3, i));

    // Genome lengths around the 32/64-position probe blocks plus a
    // large one spanning several blocks.
    for (size_t len : {0u, 22u, 23u, 24u, 63u, 64u, 65u, 127u, 128u,
                       129u, 5000u}) {
        const Sequence g = test::randomGenome(rng, len, 0.01);
        PrefilterMatcher scalar(specs);
        const auto want = scalar.scanAll(g);
        const PrefilterStats want_stats = scalar.stats();
        EXPECT_EQ(want, baselines::bruteForceScan(g, specs))
            << "len=" << len;

        for (SimdTier tier : usableTiers()) {
            PrefilterMatcher m(specs);
            m.setSimdTier(tier);
            EXPECT_EQ(m.simdTier(), tier);
            EXPECT_EQ(m.scanAll(g), want)
                << "len=" << len << " tier=" << simdTierName(tier);
            // The cascade itself must be identical, not just its
            // output: every tier probes, survives, and verifies the
            // exact same candidates.
            EXPECT_EQ(m.stats().anchorsProbed, want_stats.anchorsProbed);
            EXPECT_EQ(m.stats().anchorsHit, want_stats.anchorsHit);
            EXPECT_EQ(m.stats().verifications,
                      want_stats.verifications);
            EXPECT_EQ(m.stats().events, want_stats.events);
        }
    }
}

TEST(SimdPrefilter, StatInvariantsHold)
{
    Rng rng(test::testSeed(8107));
    std::vector<HammingSpec> specs;
    for (uint32_t i = 0; i < 10; ++i)
        specs.push_back(test::randomGuideSpec(rng, 20, 3, 3, i));
    const Sequence g = test::randomGenome(rng, 20000, 0.01);

    for (SimdTier tier : usableTiers()) {
        PrefilterMatcher m(specs);
        m.setSimdTier(tier);
        const auto events = m.scanAll(g);
        const PrefilterStats &s = m.stats();

        // A candidate can only come from a probed position, every
        // surviving candidate is verified against at least one spec,
        // and every event came out of a verification.
        EXPECT_GT(s.anchorsProbed, 0u);
        EXPECT_LE(s.anchorsHit, s.anchorsProbed);
        EXPECT_GE(s.verifications, s.anchorsHit);
        EXPECT_LE(s.events, s.verifications);
        EXPECT_EQ(s.events, events.size())
            << "tier=" << simdTierName(tier);

        // Verified hits are a subset of anchor survivors: every event
        // still satisfies the anchor predicate at its site.
        for (const ReportEvent &ev : events) {
            const HammingSpec &spec = specs[ev.reportId];
            const size_t start = ev.end + 1 - spec.masks.size();
            for (size_t j = std::min(spec.mismatchHi,
                                     spec.masks.size());
                 j < spec.masks.size(); ++j)
                EXPECT_TRUE(genome::maskMatches(spec.masks[j],
                                                g[start + j]))
                    << "tier=" << simdTierName(tier);
        }
    }
}

TEST(SimdSearch, RuntimeOptionsTierReachesTheScanAndEnvWins)
{
    EnvGuard env("CRISPR_SIMD");
    env.clear();

    Rng rng(test::testSeed(8108));
    std::vector<core::Guide> guides;
    static const char bases[] = "ACGT";
    for (int i = 0; i < 4; ++i) {
        std::string seq;
        for (int j = 0; j < 20; ++j)
            seq += bases[rng.below(4)];
        guides.push_back(
            core::makeGuide("g" + std::to_string(i), seq));
    }
    const Sequence g = test::randomGenome(rng, 50000);

    core::SearchConfig cfg;
    cfg.engine = core::EngineKind::HscanBitParallel;

    // The per-request tier reaches the kernel (scan.simd_tier gauge)
    // and every tier reports identical hits.
    std::optional<std::vector<core::OffTargetHit>> first;
    for (SimdTier tier : usableTiers()) {
        cfg.simdTier = tier;
        core::SearchResult res = core::search(g, guides, cfg);
        EXPECT_EQ(res.run.metrics.at("scan.simd_tier"),
                  simdTierGaugeValue(tier))
            << "tier=" << simdTierName(tier);
        if (first)
            EXPECT_EQ(res.hits, *first)
                << "tier=" << simdTierName(tier);
        else
            first = res.hits;
    }

    // The CRISPR_SIMD kill switch overrides the request.
    env.set("scalar");
    cfg.simdTier = bestSimdTier();
    core::SearchResult res = core::search(g, guides, cfg);
    EXPECT_EQ(res.run.metrics.at("scan.simd_tier"), 0.0);
    EXPECT_EQ(res.hits, *first);

    // And the same precedence holds on the prefilter cascade.
    env.clear();
    cfg.engine = core::EngineKind::HscanPrefilter;
    for (SimdTier tier : usableTiers()) {
        cfg.simdTier = tier;
        core::SearchResult pre = core::search(g, guides, cfg);
        EXPECT_EQ(pre.run.metrics.at("scan.simd_tier"),
                  simdTierGaugeValue(tier));
        EXPECT_EQ(pre.hits, *first) << "tier=" << simdTierName(tier);
        EXPECT_GT(pre.run.metrics.at("scan.prefilter.anchors_probed"),
                  0.0);
        EXPECT_LE(pre.run.metrics.at("scan.prefilter.anchors_hit"),
                  pre.run.metrics.at("scan.prefilter.anchors_probed"));
        EXPECT_GE(pre.run.metrics.at("scan.prefilter.verifications"),
                  pre.run.metrics.at("scan.prefilter.anchors_hit"));
    }
}

TEST(SimdSearch, ChunkedAndThreadedScansHonourTheTier)
{
    EnvGuard env("CRISPR_SIMD");
    env.clear();

    Rng rng(test::testSeed(8109));
    std::vector<core::Guide> guides;
    static const char bases[] = "ACGT";
    for (int i = 0; i < 3; ++i) {
        std::string seq;
        for (int j = 0; j < 20; ++j)
            seq += bases[rng.below(4)];
        guides.push_back(
            core::makeGuide("g" + std::to_string(i), seq));
    }
    const Sequence g = test::randomGenome(rng, 100000);

    core::SearchConfig serial;
    serial.engine = core::EngineKind::HscanBitParallel;
    serial.simdTier = SimdTier::Scalar;
    const core::SearchResult want = core::search(g, guides, serial);

    for (SimdTier tier : usableTiers()) {
        core::SearchConfig cfg = serial;
        cfg.simdTier = tier;
        cfg.threads = 4;
        cfg.chunkSize = 4096;
        core::SearchResult res = core::search(g, guides, cfg);
        EXPECT_EQ(res.hits, want.hits)
            << "tier=" << simdTierName(tier);
    }
}

} // namespace
} // namespace crispr::hscan
