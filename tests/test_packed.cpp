/** @file Unit tests for packed genome storage and DOT export. */

#include <gtest/gtest.h>

#include "automata/builders.hpp"
#include "automata/dot.hpp"
#include "genome/packed.hpp"
#include "test_util.hpp"

namespace crispr::genome {
namespace {

TEST(Packed, RoundTripsWithNs)
{
    Rng rng(301);
    Sequence s = crispr::test::randomGenome(rng, 10007, 0.05);
    PackedSequence p = PackedSequence::pack(s);
    EXPECT_EQ(p.size(), s.size());
    EXPECT_EQ(p.unpack(), s);
}

TEST(Packed, RandomAccessMatches)
{
    Rng rng(302);
    Sequence s = crispr::test::randomGenome(rng, 2048, 0.1);
    PackedSequence p = PackedSequence::pack(s);
    for (size_t i = 0; i < s.size(); i += 7)
        EXPECT_EQ(p.at(i), s[i]) << i;
}

TEST(Packed, DecodeWindowClampsAtEnd)
{
    Sequence s = Sequence::fromString("ACGTNACG");
    PackedSequence p = PackedSequence::pack(s);
    std::vector<uint8_t> out;
    p.decode(2, 4, out);
    EXPECT_EQ(Sequence(out).str(), "GTNA");
    p.decode(6, 10, out);
    EXPECT_EQ(Sequence(out).str(), "CG");
    p.decode(100, 4, out);
    EXPECT_TRUE(out.empty());
}

TEST(Packed, MemoryIsRoughlyQuarter)
{
    Rng rng(303);
    Sequence s = crispr::test::randomGenome(rng, 1 << 16, 0.001);
    PackedSequence p = PackedSequence::pack(s);
    EXPECT_LT(p.memoryBytes(), s.size() / 3);
}

TEST(Packed, ChunkIterationCoversEverythingWithOverlap)
{
    Rng rng(304);
    Sequence s = crispr::test::randomGenome(rng, 5000, 0.02);
    PackedSequence p = PackedSequence::pack(s);

    std::vector<uint8_t> reconstructed;
    size_t chunks = 0;
    p.forEachChunk(700, 16, [&](size_t start,
                                std::span<const uint8_t> codes) {
        ++chunks;
        const size_t lead = start >= 16 ? 16 : start;
        // Overlap region must repeat the previous chunk's tail.
        for (size_t i = 0; i < codes.size(); ++i) {
            const size_t pos = start - lead + i;
            EXPECT_EQ(codes[i], s[pos]);
        }
        // Collect the non-overlap part.
        reconstructed.insert(reconstructed.end(),
                             codes.begin() + lead, codes.end());
    });
    EXPECT_EQ(chunks, (s.size() + 699) / 700);
    EXPECT_EQ(Sequence(std::move(reconstructed)), s);
}

} // namespace
} // namespace crispr::genome

namespace crispr::automata {
namespace {

TEST(Dot, ContainsStatesEdgesAndDecorations)
{
    HammingSpec spec;
    spec.masks = genome::masksFromIupac("ACG");
    spec.maxMismatches = 1;
    Nfa nfa = buildHammingNfa(spec);
    std::string dot = dotString(nfa, "demo");
    EXPECT_NE(dot.find("digraph \"demo\""), std::string::npos);
    EXPECT_NE(dot.find("doublecircle"), std::string::npos); // reports
    EXPECT_NE(dot.find("lightblue"), std::string::npos);    // starts
    EXPECT_NE(dot.find("->"), std::string::npos);
    // One node line per state.
    size_t nodes = 0;
    for (StateId s = 0; s < nfa.size(); ++s) {
        if (dot.find("q" + std::to_string(s) + " [label=") !=
            std::string::npos)
            ++nodes;
    }
    EXPECT_EQ(nodes, nfa.size());
}

} // namespace
} // namespace crispr::automata
