/** @file Unit tests for the AP capacity/timing model. */

#include <gtest/gtest.h>

#include "ap/capacity.hpp"

namespace crispr::ap {
namespace {

TEST(ApCapacity, DeviceConstantsDeriveD480)
{
    ApDeviceSpec spec;
    EXPECT_EQ(spec.stesPerChip(), 49152u);
    EXPECT_EQ(spec.chipsPerBoard(), 32u);
    EXPECT_EQ(spec.stesPerBoard(), 49152ull * 32);
}

TEST(ApCapacity, SmallMachinesPackIntoBlocks)
{
    // 100-STE automata: two fit per 256-STE block.
    std::vector<MachineStats> machines(10, MachineStats{100, 0, 0, 0});
    Placement p = placeMachines(machines);
    EXPECT_EQ(p.stes, 1000u);
    EXPECT_EQ(p.blocksUsed, 5u);
    EXPECT_TRUE(p.fits);
    EXPECT_EQ(p.passes, 1u);
    EXPECT_NEAR(p.utilization, 1000.0 / (5 * 256), 1e-9);
}

TEST(ApCapacity, LargeMachinesSpanBlocks)
{
    std::vector<MachineStats> machines(1, MachineStats{600, 0, 0, 0});
    Placement p = placeMachines(machines);
    EXPECT_EQ(p.blocksUsed, 3u); // ceil(600/256)
    EXPECT_EQ(p.chipsUsed, 1u);
}

TEST(ApCapacity, CountersLimitChips)
{
    // 1000 counters at 768/chip need 2 chips even with few STEs.
    std::vector<MachineStats> machines(1000, MachineStats{10, 1, 1, 0});
    Placement p = placeMachines(machines);
    EXPECT_GE(p.chipsUsed, 2u);
    EXPECT_TRUE(p.fits);
}

TEST(ApCapacity, OverflowRequiresPasses)
{
    // Each automaton takes a whole block (200 STEs); 192 blocks/chip,
    // 32 chips/board = 6144 blocks. 10000 such automata need 2 passes.
    std::vector<MachineStats> machines(10000,
                                       MachineStats{200, 0, 0, 0});
    Placement p = placeMachines(machines);
    EXPECT_FALSE(p.fits);
    EXPECT_EQ(p.passes, 2u);
}

TEST(ApCapacity, MachinesPerBoard)
{
    ApDeviceSpec spec;
    // 128-STE machine: 2 per block -> 2*192*32 per board.
    MachineStats m{128, 0, 0, 0};
    EXPECT_EQ(machinesPerBoard(m, spec), 2ull * 192 * 32);
    // Counter design: 43 STEs (5/block... 256/43 = 5), 1 counter
    // (768/chip), 1 gate (2304/chip): counters bind first.
    MachineStats c{43, 1, 1, 0};
    EXPECT_EQ(machinesPerBoard(c, spec), 768ull * 32);
    // Zero-STE machine is degenerate.
    EXPECT_EQ(machinesPerBoard(MachineStats{}, spec), 0u);
}

TEST(ApCapacity, EstimateRunDecomposition)
{
    ApDeviceSpec spec;
    const uint64_t symbols = 1ull << 20;
    ApTimeBreakdown t = estimateRun(symbols, 1000, 1, spec);
    EXPECT_DOUBLE_EQ(t.configureSeconds, spec.configureSeconds);
    // Kernel paced by the 133 MHz symbol rate (slower than input BW).
    EXPECT_NEAR(t.kernelSeconds,
                static_cast<double>(symbols) / spec.clockHz, 1e-6);
    EXPECT_GT(t.outputSeconds, 0.0);
    EXPECT_NEAR(t.totalSeconds(),
                t.configureSeconds + t.kernelSeconds + t.outputSeconds,
                1e-12);

    // Two passes double configure and kernel.
    ApTimeBreakdown t2 = estimateRun(symbols, 1000, 2, spec);
    EXPECT_NEAR(t2.kernelSeconds, 2 * t.kernelSeconds, 1e-9);
    EXPECT_NEAR(t2.configureSeconds, 2 * t.configureSeconds, 1e-9);
}

TEST(ApCapacity, EmptyPlacement)
{
    Placement p = placeMachines({});
    EXPECT_EQ(p.stes, 0u);
    EXPECT_EQ(p.blocksUsed, 0u);
    EXPECT_EQ(p.chipsUsed, 0u);
    EXPECT_TRUE(p.fits);
}

} // namespace
} // namespace crispr::ap
