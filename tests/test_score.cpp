/** @file Unit tests for guide specificity scoring. */

#include <gtest/gtest.h>

#include "core/score.hpp"
#include "genome/generator.hpp"

namespace crispr::core {
namespace {

TEST(SitePenalty, PerfectDuplicateIsFullStrength)
{
    EXPECT_DOUBLE_EQ(sitePenalty({}, 20), 1.0);
}

TEST(SitePenalty, PamProximalMismatchHurtsLess)
{
    // A PAM-proximal mismatch (high weight) reduces the penalty more
    // than a PAM-distal one.
    const double distal = sitePenalty({0}, 20);   // weight 0
    const double proximal = sitePenalty({13}, 20); // weight 0.851
    EXPECT_GT(distal, proximal);
    EXPECT_NEAR(distal, 1.0, 1e-9);
    EXPECT_NEAR(proximal, 1.0 - 0.851, 1e-9);
}

TEST(SitePenalty, MoreMismatchesLowerPenalty)
{
    const double one = sitePenalty({5}, 20);
    const double two = sitePenalty({5, 10}, 20);
    const double three = sitePenalty({5, 10, 15}, 20);
    EXPECT_GT(one, two);
    EXPECT_GT(two, three);
    EXPECT_GT(three, 0.0);
}

TEST(SitePenalty, NonStandardLengthFallsBack)
{
    const double distal = sitePenalty({0}, 18);
    const double proximal = sitePenalty({17}, 18);
    EXPECT_GT(distal, proximal);
}

TEST(Score, MismatchPositionsMapBothStrands)
{
    // Guide with a known mismatch at protospacer position 2.
    Guide guide = makeGuide("g", "ACGTACGTACGTACGTACGT");
    genome::Sequence site = guide.protospacer;
    site[2] = genome::complementCode(site[2]) == site[2]
                  ? 0
                  : static_cast<uint8_t>((site[2] + 1) & 3);
    site.append(genome::Sequence::fromString("TGG"));

    // Forward copy at 100; reverse-complement copy at 400.
    genome::GenomeSpec gs;
    gs.length = 1000;
    gs.seed = 601;
    genome::Sequence g = genome::generateGenome(gs);
    genome::plantSite(g, 100, site);
    genome::plantSite(g, 400, site.reverseComplement());

    SearchConfig cfg;
    cfg.maxMismatches = 1;
    cfg.pam = pamNGG();
    SearchResult res = search(g, {guide}, cfg);

    size_t checked = 0;
    for (const OffTargetHit &hit : res.hits) {
        if (hit.mismatches != 1)
            continue;
        if (hit.start != 100 && hit.start != 400)
            continue;
        auto positions = hitMismatchPositions(g, res.patterns, hit);
        ASSERT_EQ(positions.size(), 1u) << "start " << hit.start;
        EXPECT_EQ(positions[0], 2u) << "start " << hit.start;
        ++checked;
    }
    EXPECT_EQ(checked, 2u);
}

TEST(Score, SpecificityAggregatesAndRanks)
{
    // Guide A: one clean on-target only. Guide B: on-target plus two
    // close off-targets -> lower specificity.
    auto ga = makeGuide("a", "GATTACAGATTACAGATTAC");
    auto gb = makeGuide("b", "CCTTGGAACCTTGGAACCTT");

    genome::GenomeSpec gs;
    gs.length = 50000;
    gs.seed = 602;
    genome::Sequence g = genome::generateGenome(gs);

    auto plant = [&](const Guide &guide, size_t at, int mm, Rng &rng) {
        genome::Sequence site = guide.protospacer;
        site.append(genome::Sequence::fromString("AGG"));
        genome::plantSite(
            g, at,
            mm == 0 ? site : genome::mutateSite(site, mm, 10, 20, rng));
    };
    Rng rng(603);
    plant(ga, 1000, 0, rng);
    plant(gb, 5000, 0, rng);
    plant(gb, 9000, 1, rng);
    plant(gb, 13000, 1, rng);

    SearchConfig cfg;
    cfg.maxMismatches = 2;
    cfg.pam = pamNGG();
    SearchResult res = search(g, {ga, gb}, cfg);
    auto scores = scoreGuides(g, {ga, gb}, res);
    ASSERT_EQ(scores.size(), 2u);
    EXPECT_GE(scores[0].onTargets, 1u);
    EXPECT_GE(scores[1].offTargets, 2u);
    EXPECT_GT(scores[0].specificity, scores[1].specificity);
    EXPECT_LE(scores[1].specificity, 100.0);
}

TEST(Score, DuplicatePerfectSitesPenalised)
{
    auto guide = makeGuide("g", "GATTACAGATTACAGATTAC");
    genome::Sequence site = guide.protospacer;
    site.append(genome::Sequence::fromString("AGG"));
    genome::GenomeSpec gs;
    gs.length = 20000;
    gs.seed = 604;
    genome::Sequence g = genome::generateGenome(gs);
    genome::plantSite(g, 1000, site);
    genome::plantSite(g, 5000, site);

    SearchConfig cfg;
    cfg.maxMismatches = 0;
    cfg.pam = pamNGG();
    SearchResult res = search(g, {guide}, cfg);
    auto scores = scoreGuides(g, {guide}, res);
    ASSERT_EQ(scores.size(), 1u);
    EXPECT_EQ(scores[0].onTargets, 2u);
    EXPECT_NEAR(scores[0].specificity, 50.0, 1e-6);
}

} // namespace
} // namespace crispr::core
