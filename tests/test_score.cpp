/** @file Unit tests for guide specificity scoring. */

#include <cmath>

#include <gtest/gtest.h>

#include "core/score.hpp"
#include "genome/generator.hpp"

namespace crispr::core {
namespace {

TEST(SitePenalty, PerfectDuplicateIsFullStrength)
{
    EXPECT_DOUBLE_EQ(sitePenalty({}, 20), 1.0);
}

TEST(SitePenalty, PamProximalMismatchHurtsLess)
{
    // A PAM-proximal mismatch (high weight) reduces the penalty more
    // than a PAM-distal one.
    const double distal = sitePenalty({0}, 20);   // weight 0
    const double proximal = sitePenalty({13}, 20); // weight 0.851
    EXPECT_GT(distal, proximal);
    EXPECT_NEAR(distal, 1.0, 1e-9);
    EXPECT_NEAR(proximal, 1.0 - 0.851, 1e-9);
}

TEST(SitePenalty, MoreMismatchesLowerPenalty)
{
    const double one = sitePenalty({5}, 20);
    const double two = sitePenalty({5, 10}, 20);
    const double three = sitePenalty({5, 10, 15}, 20);
    EXPECT_GT(one, two);
    EXPECT_GT(two, three);
    EXPECT_GT(three, 0.0);
}

TEST(SitePenalty, NonStandardLengthFallsBack)
{
    const double distal = sitePenalty({0}, 18);
    const double proximal = sitePenalty({17}, 18);
    EXPECT_GT(distal, proximal);
}

TEST(Score, MismatchPositionsMapBothStrands)
{
    // Guide with a known mismatch at protospacer position 2.
    Guide guide = makeGuide("g", "ACGTACGTACGTACGTACGT");
    genome::Sequence site = guide.protospacer;
    site[2] = genome::complementCode(site[2]) == site[2]
                  ? 0
                  : static_cast<uint8_t>((site[2] + 1) & 3);
    site.append(genome::Sequence::fromString("TGG"));

    // Forward copy at 100; reverse-complement copy at 400.
    genome::GenomeSpec gs;
    gs.length = 1000;
    gs.seed = 601;
    genome::Sequence g = genome::generateGenome(gs);
    genome::plantSite(g, 100, site);
    genome::plantSite(g, 400, site.reverseComplement());

    SearchConfig cfg;
    cfg.maxMismatches = 1;
    cfg.pam = pamNGG();
    SearchResult res = search(g, {guide}, cfg);

    size_t checked = 0;
    for (const OffTargetHit &hit : res.hits) {
        if (hit.mismatches != 1)
            continue;
        if (hit.start != 100 && hit.start != 400)
            continue;
        auto positions = hitMismatchPositions(g, res.patterns, hit);
        ASSERT_EQ(positions.size(), 1u) << "start " << hit.start;
        EXPECT_EQ(positions[0], 2u) << "start " << hit.start;
        ++checked;
    }
    EXPECT_EQ(checked, 2u);
}

TEST(Score, SpecificityAggregatesAndRanks)
{
    // Guide A: one clean on-target only. Guide B: on-target plus two
    // close off-targets -> lower specificity.
    auto ga = makeGuide("a", "GATTACAGATTACAGATTAC");
    auto gb = makeGuide("b", "CCTTGGAACCTTGGAACCTT");

    genome::GenomeSpec gs;
    gs.length = 50000;
    gs.seed = 602;
    genome::Sequence g = genome::generateGenome(gs);

    auto plant = [&](const Guide &guide, size_t at, int mm, Rng &rng) {
        genome::Sequence site = guide.protospacer;
        site.append(genome::Sequence::fromString("AGG"));
        genome::plantSite(
            g, at,
            mm == 0 ? site : genome::mutateSite(site, mm, 10, 20, rng));
    };
    Rng rng(603);
    plant(ga, 1000, 0, rng);
    plant(gb, 5000, 0, rng);
    plant(gb, 9000, 1, rng);
    plant(gb, 13000, 1, rng);

    SearchConfig cfg;
    cfg.maxMismatches = 2;
    cfg.pam = pamNGG();
    SearchResult res = search(g, {ga, gb}, cfg);
    auto scores = scoreGuides(g, {ga, gb}, res);
    ASSERT_EQ(scores.size(), 2u);
    EXPECT_GE(scores[0].onTargets, 1u);
    EXPECT_GE(scores[1].offTargets, 2u);
    EXPECT_GT(scores[0].specificity, scores[1].specificity);
    EXPECT_LE(scores[1].specificity, 100.0);
}

// Golden table: the exact published Hsu et al. 2013 weights for 20-nt
// guides, pinned value by value so a table edit can never slip through
// as a "refactor". EXPECT_EQ on doubles — these are literals, not
// computed values.
TEST(ScoreTable, TwentyNtTableMatchesPublishedWeights)
{
    const std::vector<double> want = {
        0.000, 0.000, 0.014, 0.000, 0.000, 0.395, 0.317,
        0.000, 0.389, 0.079, 0.445, 0.508, 0.613, 0.851,
        0.732, 0.828, 0.615, 0.804, 0.685, 0.583,
    };
    EXPECT_EQ(scoreWeightTable(20), want);
    // A single mismatch at position p has no distance/count damping:
    // the penalty is exactly 1 - w_p.
    for (size_t p = 0; p < 20; ++p)
        EXPECT_EQ(sitePenalty({p}, 20), 1.0 - want[p])
            << "position " << p;
}

// Non-20-nt guides fall back to the documented linear ramp: 0 at the
// PAM-distal end rising to 0.8 PAM-proximal, exactly.
TEST(ScoreTable, NonStandardLengthUsesLinearRamp)
{
    const std::vector<double> w18 = scoreWeightTable(18);
    ASSERT_EQ(w18.size(), 18u);
    for (size_t p = 0; p < 18; ++p)
        EXPECT_EQ(w18[p], 0.8 * static_cast<double>(p) / 17.0)
            << "position " << p;
    // Degenerate lengths: no ramp to speak of, all-zero weights.
    EXPECT_EQ(scoreWeightTable(1), std::vector<double>{0.0});
    EXPECT_TRUE(scoreWeightTable(0).empty());
}

// Mask round trip: positions -> mask -> positions is the identity
// (ascending order restored).
TEST(ScoreTable, MismatchMaskRoundTrips)
{
    const std::vector<size_t> positions = {0, 3, 19};
    const uint64_t mask = mismatchPositionsToMask(positions);
    EXPECT_EQ(mask, (uint64_t{1} << 0) | (uint64_t{1} << 3) |
                        (uint64_t{1} << 19));
    EXPECT_EQ(mismatchMaskToPositions(mask), positions);
    EXPECT_EQ(mismatchPositionsToMask({}), 0u);
    EXPECT_TRUE(mismatchMaskToPositions(0).empty());
}

TEST(Score, DuplicatePerfectSitesPenalised)
{
    auto guide = makeGuide("g", "GATTACAGATTACAGATTAC");
    genome::Sequence site = guide.protospacer;
    site.append(genome::Sequence::fromString("AGG"));
    genome::GenomeSpec gs;
    gs.length = 20000;
    gs.seed = 604;
    genome::Sequence g = genome::generateGenome(gs);
    genome::plantSite(g, 1000, site);
    genome::plantSite(g, 5000, site);

    SearchConfig cfg;
    cfg.maxMismatches = 0;
    cfg.pam = pamNGG();
    SearchResult res = search(g, {guide}, cfg);
    auto scores = scoreGuides(g, {guide}, res);
    ASSERT_EQ(scores.size(), 1u);
    EXPECT_EQ(scores[0].onTargets, 2u);
    EXPECT_NEAR(scores[0].specificity, 50.0, 1e-6);
}

// The counting convention, pinned: onTargets counts EVERY perfect
// site (duplicates included), while only perfect sites beyond the
// first contribute penalty — so three perfect copies read as
// onTargets=3, penaltySum=2.0.
TEST(Score, OnTargetsCountAllPerfectSites)
{
    auto guide = makeGuide("g", "GATTACAGATTACAGATTAC");
    genome::Sequence site = guide.protospacer;
    site.append(genome::Sequence::fromString("AGG"));
    genome::GenomeSpec gs;
    gs.length = 30000;
    gs.seed = 605;
    genome::Sequence g = genome::generateGenome(gs);
    genome::plantSite(g, 1000, site);
    genome::plantSite(g, 9000, site);
    genome::plantSite(g, 17000, site);

    SearchConfig cfg;
    cfg.maxMismatches = 0;
    cfg.pam = pamNGG();
    SearchResult res = search(g, {guide}, cfg);
    auto scores = scoreGuides(g, {guide}, res);
    ASSERT_EQ(scores.size(), 1u);
    EXPECT_EQ(scores[0].onTargets, 3u);
    EXPECT_EQ(scores[0].offTargets, 0u);
    EXPECT_EQ(scores[0].penaltySum, 2.0);
    EXPECT_EQ(scores[0].specificity, 100.0 / 3.0);
}

// Edge guards: a guide with no hits at all, and one with only its
// single intended perfect site, both score EXACTLY 100.0 — not nearly
// — and nothing in the summary is NaN.
TEST(Score, ZeroHitAndSinglePerfectGuidesScoreExactlyHundred)
{
    auto hitless = makeGuide("none", "GATTACAGATTACAGATTAC");
    auto clean = makeGuide("clean", "CCTTGGAACCTTGGAACCTT");
    genome::GenomeSpec gs;
    gs.length = 20000;
    gs.seed = 606;
    genome::Sequence g = genome::generateGenome(gs);
    genome::Sequence site = clean.protospacer;
    site.append(genome::Sequence::fromString("AGG"));
    genome::plantSite(g, 5000, site);

    SearchConfig cfg;
    cfg.maxMismatches = 0;
    cfg.pam = pamNGG();
    SearchResult res = search(g, {hitless, clean}, cfg);
    auto scores = scoreGuides(g, {hitless, clean}, res);
    ASSERT_EQ(scores.size(), 2u);
    EXPECT_EQ(scores[0].onTargets, 0u);
    EXPECT_EQ(scores[0].penaltySum, 0.0);
    EXPECT_EQ(scores[0].specificity, 100.0); // exact, not EXPECT_NEAR
    EXPECT_EQ(scores[1].onTargets, 1u);
    EXPECT_EQ(scores[1].penaltySum, 0.0);
    EXPECT_EQ(scores[1].specificity, 100.0);
    for (const GuideScore &s : scores) {
        EXPECT_FALSE(std::isnan(s.specificity));
        EXPECT_FALSE(std::isnan(s.penaltySum));
    }
}

// scoreGuidesFromHits (the genome-free aggregation over in-scan
// penalties) is bit-identical to the re-walking scoreGuides on the
// same result — both sum the same doubles in the same hit order.
TEST(Score, ScoreGuidesFromHitsMatchesRewalk)
{
    auto ga = makeGuide("a", "GATTACAGATTACAGATTAC");
    auto gb = makeGuide("b", "CCTTGGAACCTTGGAACCTT");
    genome::GenomeSpec gs;
    gs.length = 40000;
    gs.seed = 607;
    genome::Sequence g = genome::generateGenome(gs);
    Rng rng(608);
    for (const Guide &guide : {ga, gb}) {
        genome::Sequence site = guide.protospacer;
        site.append(genome::Sequence::fromString("AGG"));
        genome::plantSite(g, 1000 + rng.below(15000), site);
        for (int mm = 1; mm <= 2; ++mm)
            genome::plantSite(g, 18000 + rng.below(20000),
                              genome::mutateSite(site, mm, 0, 20, rng));
    }

    SearchConfig cfg;
    cfg.maxMismatches = 2;
    cfg.pam = pamNGG();
    SearchResult res = search(g, {ga, gb}, cfg);
    ASSERT_FALSE(res.hits.empty());

    const auto rewalk = scoreGuides(g, {ga, gb}, res);
    const auto from_hits = scoreGuidesFromHits(2, res);
    ASSERT_EQ(from_hits.size(), rewalk.size());
    for (size_t i = 0; i < rewalk.size(); ++i) {
        EXPECT_EQ(from_hits[i].guide, rewalk[i].guide);
        EXPECT_EQ(from_hits[i].onTargets, rewalk[i].onTargets);
        EXPECT_EQ(from_hits[i].offTargets, rewalk[i].offTargets);
        EXPECT_EQ(from_hits[i].penaltySum, rewalk[i].penaltySum);
        EXPECT_EQ(from_hits[i].specificity, rewalk[i].specificity);
    }
}

} // namespace
} // namespace crispr::core
