/** @file Unit tests for synthetic genome / workload generation. */

#include <gtest/gtest.h>

#include "genome/generator.hpp"
#include "genome/sequence.hpp"

namespace crispr::genome {
namespace {

TEST(Generator, DeterministicInSeed)
{
    GenomeSpec spec;
    spec.length = 10000;
    spec.seed = 7;
    EXPECT_EQ(generateGenome(spec), generateGenome(spec));
    GenomeSpec other = spec;
    other.seed = 8;
    EXPECT_NE(generateGenome(spec), generateGenome(other));
}

TEST(Generator, UniformComposition)
{
    GenomeSpec spec;
    spec.length = 200000;
    spec.model = CompositionModel::Uniform;
    Sequence g = generateGenome(spec);
    size_t counts[5] = {};
    for (size_t i = 0; i < g.size(); ++i)
        ++counts[g[i]];
    for (int b = 0; b < 4; ++b)
        EXPECT_NEAR(static_cast<double>(counts[b]) / g.size(), 0.25, 0.01);
    EXPECT_EQ(counts[kCodeN], 0u);
}

TEST(Generator, GcBiasedComposition)
{
    GenomeSpec spec;
    spec.length = 200000;
    spec.model = CompositionModel::GcBiased;
    Sequence g = generateGenome(spec);
    size_t gc = 0;
    for (size_t i = 0; i < g.size(); ++i)
        gc += g[i] == 1 || g[i] == 2;
    EXPECT_NEAR(static_cast<double>(gc) / g.size(), 0.41, 0.01);
}

TEST(Generator, Markov1DepletesCpG)
{
    GenomeSpec spec;
    spec.length = 400000;
    spec.model = CompositionModel::Markov1;
    Sequence g = generateGenome(spec);
    size_t cg = 0, gc = 0;
    for (size_t i = 0; i + 1 < g.size(); ++i) {
        cg += g[i] == 1 && g[i + 1] == 2; // C then G
        gc += g[i] == 2 && g[i + 1] == 1; // G then C
    }
    // CpG dinucleotides should be clearly rarer than GpC.
    EXPECT_LT(cg, gc / 2);
}

TEST(Generator, NFractionInsertsRuns)
{
    GenomeSpec spec;
    spec.length = 100000;
    spec.n_fraction = 0.05;
    Sequence g = generateGenome(spec);
    double frac = static_cast<double>(g.countN()) / g.size();
    EXPECT_GT(frac, 0.02);
    EXPECT_LT(frac, 0.08);
}

TEST(Generator, RandomGuideIsConcrete)
{
    Rng rng(3);
    Sequence g = randomGuide(rng, 20);
    EXPECT_EQ(g.size(), 20u);
    EXPECT_EQ(g.countN(), 0u);
}

TEST(Generator, SampleGuideAvoidsN)
{
    GenomeSpec spec;
    spec.length = 5000;
    spec.n_fraction = 0.2;
    Sequence g = generateGenome(spec);
    Rng rng(5);
    for (int i = 0; i < 20; ++i) {
        Sequence s = sampleGuideFromGenome(g, rng, 20);
        ASSERT_FALSE(s.empty());
        EXPECT_EQ(s.countN(), 0u);
    }
}

TEST(Generator, MutateSiteExactDistanceInRange)
{
    Rng rng(11);
    Sequence site = Sequence::fromString("ACGTACGTACGTACGTACGTTGG");
    for (int d = 0; d <= 5; ++d) {
        Sequence mut = mutateSite(site, d, 0, 20, rng);
        int diff = 0;
        for (size_t i = 0; i < site.size(); ++i)
            diff += mut[i] != site[i];
        EXPECT_EQ(diff, d);
        // PAM region [20, 23) untouched.
        for (size_t i = 20; i < 23; ++i)
            EXPECT_EQ(mut[i], site[i]);
    }
}

TEST(Generator, PlantSiteOverwrites)
{
    Sequence g = Sequence::fromString("AAAAAAAAAA");
    plantSite(g, 3, Sequence::fromString("CGT"));
    EXPECT_EQ(g.str(), "AAACGTAAAA");
}

TEST(Generator, PlantMutatedSitesNonOverlapping)
{
    GenomeSpec spec;
    spec.length = 20000;
    Sequence g = generateGenome(spec);
    Rng rng(13);
    Sequence site = Sequence::fromString("ACGTACGTACGTACGTACGTTGG");
    auto offsets = plantMutatedSites(g, site, 10, 2, 0, 20, rng);
    EXPECT_EQ(offsets.size(), 10u);
    for (size_t i = 1; i < offsets.size(); ++i)
        EXPECT_GE(offsets[i], offsets[i - 1] + site.size());
    for (size_t at : offsets) {
        auto masks = masksFromIupac(site.str());
        EXPECT_EQ(maskHamming(masks, g, at, SIZE_MAX), 2u);
    }
}

} // namespace
} // namespace crispr::genome
