/** @file Unit tests for the Hamming automaton builders. */

#include <tuple>

#include <gtest/gtest.h>

#include "automata/builders.hpp"
#include "automata/interp.hpp"
#include "baselines/brute.hpp"
#include "common/logging.hpp"
#include "test_util.hpp"

namespace crispr::automata {
namespace {

using genome::Sequence;

HammingSpec
specOf(const std::string &pattern, int d, size_t lo = 0,
       size_t hi = SIZE_MAX, uint32_t id = 0)
{
    HammingSpec spec;
    spec.masks = genome::masksFromIupac(pattern);
    spec.maxMismatches = d;
    spec.mismatchLo = lo;
    spec.mismatchHi = hi;
    spec.reportId = id;
    return spec;
}

std::vector<ReportEvent>
interpEvents(const Nfa &nfa, const Sequence &seq)
{
    NfaInterpreter interp(nfa);
    auto events = interp.scanAll(seq);
    normalizeEvents(events);
    return events;
}

TEST(Builders, ExactChainMatchesSubstring)
{
    Nfa nfa = buildExactNfa(genome::masksFromIupac("ACG"), 5);
    EXPECT_EQ(nfa.size(), 3u);
    auto events = interpEvents(nfa, Sequence::fromString("TTACGACGT"));
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0], (ReportEvent{5, 4}));
    EXPECT_EQ(events[1], (ReportEvent{5, 7}));
}

TEST(Builders, HammingD1FindsOneMismatch)
{
    Nfa nfa = buildHammingNfa(specOf("ACGT", 1));
    // "ACTT" is within distance 1, "ACCC" is not.
    auto hits = interpEvents(nfa, Sequence::fromString("ACTT"));
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_EQ(hits[0].end, 3u);
    EXPECT_TRUE(interpEvents(nfa, Sequence::fromString("ACCC")).empty());
}

TEST(Builders, ExactRegionPinsPam)
{
    // Guide AA with PAM GG pinned: mismatches allowed only at [0, 2).
    Nfa nfa = buildHammingNfa(specOf("AAGG", 2, 0, 2));
    EXPECT_FALSE(
        interpEvents(nfa, Sequence::fromString("TTGG")).empty());
    // PAM broken: no match even though budget would allow it.
    EXPECT_TRUE(
        interpEvents(nfa, Sequence::fromString("AAGC")).empty());
}

TEST(Builders, GenomeNCountsAsMismatch)
{
    Nfa nfa = buildHammingNfa(specOf("ACGT", 1));
    EXPECT_FALSE(
        interpEvents(nfa, Sequence::fromString("ACNT")).empty());
    EXPECT_TRUE(
        interpEvents(nfa, Sequence::fromString("ANNT")).empty());
}

TEST(Builders, RejectsBadSpecs)
{
    EXPECT_THROW(buildHammingNfa(specOf("", 1)), FatalError);
    EXPECT_THROW(buildHammingNfa(specOf("ACG", -1)), FatalError);
    HammingSpec empty_pos = specOf("ACG", 1);
    empty_pos.masks[1] = 0;
    EXPECT_THROW(buildHammingNfa(empty_pos), FatalError);
}

TEST(Builders, UnionKeepsReportIds)
{
    std::vector<Nfa> parts;
    parts.push_back(buildExactNfa(genome::masksFromIupac("AC"), 1));
    parts.push_back(buildExactNfa(genome::masksFromIupac("GT"), 2));
    Nfa u = unionNfas(parts);
    auto events = interpEvents(u, Sequence::fromString("ACGT"));
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].reportId, 1u);
    EXPECT_EQ(events[1].reportId, 2u);
}

using SizeParam = std::tuple<int, int>; // (length, d)

class HammingSizeFormula : public ::testing::TestWithParam<SizeParam>
{
};

TEST_P(HammingSizeFormula, ClosedFormMatchesBuilder)
{
    auto [len, d] = GetParam();
    Rng rng(static_cast<uint64_t>(len * 31 + d));
    for (int trial = 0; trial < 3; ++trial) {
        auto spec = crispr::test::randomSpec(
            rng, static_cast<size_t>(len), d, 0);
        Nfa nfa = buildHammingNfa(spec);
        EXPECT_EQ(nfa.size(),
                  hammingNfaStates(spec.masks.size(), spec.maxMismatches,
                                   spec.mismatchLo, spec.mismatchHi));
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HammingSizeFormula,
    ::testing::Combine(::testing::Values(1, 4, 8, 23),
                       ::testing::Values(0, 1, 3, 6)));

TEST(Builders, SizeGrowsLinearlyInD)
{
    // The matrix design is O(L * d): state count increments per d are
    // bounded by 2L.
    const size_t L = 23;
    size_t prev = hammingNfaStates(L, 0, 0, 20);
    for (int d = 1; d <= 6; ++d) {
        size_t cur = hammingNfaStates(L, d, 0, 20);
        EXPECT_GT(cur, prev);
        EXPECT_LE(cur - prev, 2 * L);
        prev = cur;
    }
}

class HammingVsBrute
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(HammingVsBrute, InterpreterEqualsGoldenScan)
{
    auto [d, seed] = GetParam();
    Rng rng(static_cast<uint64_t>(seed) * 977 + d);
    auto spec = crispr::test::randomGuideSpec(rng, 8, 3, d, 42);
    genome::Sequence g = crispr::test::randomGenome(rng, 3000, 0.02);
    Nfa nfa = buildHammingNfa(spec);
    auto got = interpEvents(nfa, g);
    auto want = baselines::bruteForceScan(g, std::span(&spec, 1));
    EXPECT_EQ(got, want) << crispr::test::eventsToString(got) << " vs "
                         << crispr::test::eventsToString(want);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HammingVsBrute,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 4),
                       ::testing::Values(1, 2, 3)));

} // namespace
} // namespace crispr::automata
