/** @file Unit tests for the spatial scaling models (E14). */

#include <gtest/gtest.h>

#include "ap/scaling.hpp"
#include "common/logging.hpp"

namespace crispr::ap {
namespace {

constexpr uint64_t kSymbols = 64ull << 20;
constexpr uint64_t kPerMachine = 179; // 23-nt site, d=4
constexpr uint64_t kTotal = kPerMachine * 16000;

TEST(Scaling, BaselinePassesMatchCapacity)
{
    // 16000 one-block automata on 6144 blocks/board -> 3 passes.
    ScalingEstimate e =
        estimateBaseline(kSymbols, kTotal, kPerMachine);
    EXPECT_EQ(e.devices, 1u);
    EXPECT_EQ(e.passesPerDevice, 3u);
    ApDeviceSpec spec;
    EXPECT_NEAR(e.kernelSeconds,
                static_cast<double>(kSymbols) / spec.clockHz * 3, 1e-6);
}

TEST(Scaling, StripingDividesStreamNotPasses)
{
    ScalingEstimate base =
        estimateBaseline(kSymbols, kTotal, kPerMachine);
    ScalingEstimate x2 =
        estimateStriping(kSymbols, 22, 2, kTotal, kPerMachine);
    EXPECT_EQ(x2.passesPerDevice, base.passesPerDevice);
    EXPECT_NEAR(x2.kernelSeconds, base.kernelSeconds / 2, 1e-3);
}

TEST(Scaling, PartitionReducesPasses)
{
    ScalingEstimate x4 =
        estimatePartition(kSymbols, 4, kTotal, kPerMachine);
    EXPECT_EQ(x4.passesPerDevice, 1u);
    ScalingEstimate base =
        estimateBaseline(kSymbols, kTotal, kPerMachine);
    EXPECT_LT(x4.kernelSeconds, base.kernelSeconds);
}

TEST(Scaling, StrideTradesCapacityForRate)
{
    // Small design (fits easily): stride-2 halves kernel time.
    ScalingEstimate small =
        estimateStride(kSymbols, 2, kPerMachine * 10, kPerMachine);
    ScalingEstimate small_base =
        estimateBaseline(kSymbols, kPerMachine * 10, kPerMachine);
    EXPECT_EQ(small.passesPerDevice, 1u);
    EXPECT_NEAR(small.kernelSeconds, small_base.kernelSeconds / 2,
                1e-3);
    EXPECT_GT(small.steInflation, 2.0);

    // Capacity-bound design: the inflation eats the rate gain.
    ScalingEstimate big = estimateStride(kSymbols, 2, kTotal,
                                         kPerMachine);
    ScalingEstimate big_base =
        estimateBaseline(kSymbols, kTotal, kPerMachine);
    EXPECT_GE(big.kernelSeconds, big_base.kernelSeconds * 0.9);
}

TEST(Scaling, StrideOneIsIdentity)
{
    ScalingEstimate s = estimateStride(kSymbols, 1, kTotal,
                                       kPerMachine);
    ScalingEstimate base =
        estimateBaseline(kSymbols, kTotal, kPerMachine);
    EXPECT_DOUBLE_EQ(s.kernelSeconds, base.kernelSeconds);
    EXPECT_DOUBLE_EQ(s.steInflation, 1.0);
}

TEST(Scaling, InvalidArguments)
{
    EXPECT_THROW(estimateStriping(1, 0, 0, 1, 1), FatalError);
    EXPECT_THROW(estimatePartition(1, 0, 1, 1), FatalError);
    EXPECT_THROW(estimateStride(1, 0, 1, 1), FatalError);
}

TEST(Scaling, InflationMonotone)
{
    double prev = strideInflation(1);
    EXPECT_DOUBLE_EQ(prev, 1.0);
    for (uint32_t k = 2; k <= 8; ++k) {
        double cur = strideInflation(k);
        EXPECT_GT(cur, prev);
        prev = cur;
    }
}

} // namespace
} // namespace crispr::ap
