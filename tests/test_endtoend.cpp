/** @file End-to-end integration: FASTA file on disk -> multi-record
 *  search -> record-coordinate report -> CSV, the full application
 *  workflow of the offtarget_report example. */

#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "ap/capacity.hpp"
#include "core/report.hpp"
#include "genome/generator.hpp"
#include "genome/record_map.hpp"

namespace crispr {
namespace {

TEST(EndToEnd, FastaFileToVerifiedCsv)
{
    // Build a two-record reference with one planted site per record.
    const std::string path = "/tmp/crispr_e2e.fa";
    core::Guide guide =
        core::makeGuide("g0", "GATTACAGATTACAGATTAC");
    genome::Sequence site = guide.protospacer;
    site.append(genome::Sequence::fromString("CGG"));

    genome::GenomeSpec gs;
    gs.length = 40000;
    gs.seed = 501;
    genome::Sequence chr1 = genome::generateGenome(gs);
    gs.seed = 502;
    genome::Sequence chr2 = genome::generateGenome(gs);
    Rng rng(503);
    genome::plantSite(chr1, 1234, site);
    genome::plantSite(chr2, 31000,
                      genome::mutateSite(site, 2, 0, 20, rng));

    std::vector<genome::FastaRecord> records;
    records.push_back({"chr1", "left", chr1});
    records.push_back({"chr2", "right", chr2});
    genome::writeFastaFile(path, records);

    // The application workflow.
    auto loaded = genome::readFastaFile(path);
    genome::Sequence ref = genome::concatenateRecords(loaded);
    genome::RecordMap map = genome::RecordMap::fromRecords(loaded);

    core::SearchConfig cfg;
    cfg.maxMismatches = 2;
    cfg.pam = core::pamNGG();
    core::SearchResult res = core::search(ref, {guide}, cfg);

    // Both planted sites are found at their record coordinates.
    bool found1 = false, found2 = false;
    for (const core::OffTargetHit &hit : res.hits) {
        auto loc = map.locateWindow(hit.start, res.patterns.siteLength());
        ASSERT_TRUE(loc.withinRecord);
        if (loc.name == "chr1" && loc.offset == 1234 &&
            hit.mismatches == 0)
            found1 = true;
        if (loc.name == "chr2" && loc.offset == 31000 &&
            hit.mismatches == 2)
            found2 = true;
    }
    EXPECT_TRUE(found1);
    EXPECT_TRUE(found2);

    // CSV round-trip contains every hit.
    std::ostringstream csv;
    core::writeHitsCsv(csv, ref, {guide}, res);
    size_t lines = 0;
    for (char c : csv.str())
        lines += c == '\n';
    EXPECT_EQ(lines, res.hits.size() + 1); // header + rows

    // The record-coordinate report prints chr names.
    std::ostringstream report;
    core::printHits(report, ref, {guide}, res, SIZE_MAX, &map);
    EXPECT_NE(report.str().find("chr1:1234"), std::string::npos);
    EXPECT_NE(report.str().find("chr2:31000"), std::string::npos);
}

TEST(EndToEnd, EveryEngineFindsThePlantedSites)
{
    core::Guide guide =
        core::makeGuide("g0", "CTTGCAAGTACCTTGCAAGT");
    genome::Sequence site = guide.protospacer;
    site.append(genome::Sequence::fromString("AGG"));
    genome::GenomeSpec gs;
    gs.length = 30000;
    gs.seed = 504;
    genome::Sequence ref = genome::generateGenome(gs);
    genome::plantSite(ref, 7777, site);
    // Reverse-strand copy.
    genome::Sequence rc = site.reverseComplement();
    genome::plantSite(ref, 21000, rc);

    for (core::EngineKind kind :
         {core::EngineKind::HscanAuto, core::EngineKind::HscanPrefilter,
          core::EngineKind::Fpga, core::EngineKind::Ap,
          core::EngineKind::GpuInfant2, core::EngineKind::CasOffinder,
          core::EngineKind::CasOt}) {
        core::SearchConfig cfg;
        cfg.maxMismatches = 1;
        cfg.engine = kind;
        core::SearchResult res = core::search(ref, {guide}, cfg);
        bool fwd = false, rev = false;
        for (const auto &hit : res.hits) {
            fwd |= hit.start == 7777 &&
                   hit.strand == core::Strand::Forward;
            rev |= hit.start == 21000 &&
                   hit.strand == core::Strand::Reverse;
        }
        EXPECT_TRUE(fwd) << core::engineName(kind);
        EXPECT_TRUE(rev) << core::engineName(kind);
    }
}

TEST(EndToEnd, EveryEngineReportsDroppedEvents)
{
    // Every adapter publishes an events.dropped metric agreeing with
    // the verifier; only the AP counter design (the documented tolerant
    // exception) may drop anything.
    core::Guide guide =
        core::makeGuide("g0", "CTTGCAAGTACCTTGCAAGT");
    genome::GenomeSpec gs;
    gs.length = 20000;
    gs.seed = 505;
    genome::Sequence ref = genome::generateGenome(gs);

    for (core::EngineKind kind : core::allEngines()) {
        core::SearchConfig cfg;
        cfg.maxMismatches = 2;
        cfg.engine = kind;
        core::SearchResult res = core::search(ref, {guide}, cfg);
        ASSERT_EQ(res.run.metrics.count("events.dropped"), 1u)
            << core::engineName(kind);
        EXPECT_EQ(res.run.metrics.at("events.dropped"),
                  static_cast<double>(res.droppedEvents))
            << core::engineName(kind);
        if (kind != core::EngineKind::ApCounter)
            EXPECT_EQ(res.droppedEvents, 0u) << core::engineName(kind);
    }
}

TEST(EndToEnd, ApEstimateInputBandwidthBound)
{
    // With a slow host link the AP kernel is paced by input delivery,
    // not the 133 MHz symbol rate.
    ap::ApDeviceSpec slow;
    slow.inputBandwidth = 50e6; // 50 MB/s
    const uint64_t symbols = 100 << 20;
    ap::ApTimeBreakdown t = ap::estimateRun(symbols, 0, 1, slow);
    EXPECT_NEAR(t.kernelSeconds,
                static_cast<double>(symbols) / 50e6, 1e-3);
}

} // namespace
} // namespace crispr
