/** @file Unit tests for result presentation. */

#include <sstream>

#include <gtest/gtest.h>

#include "core/report.hpp"
#include "genome/generator.hpp"

namespace crispr::core {
namespace {

struct Fixture
{
    genome::Sequence genome;
    std::vector<Guide> guides;
    SearchResult result;

    Fixture()
    {
        genome = genome::Sequence::fromString(
            "CCGTACGTACGTACGTACGT" "AGG" // 1 mismatch site at 0
            "TTTTT"
            "ACGTACGTACGTACGTACGT" "TGG"); // exact site at 28
        guides = {makeGuide("guideA", "ACGTACGTACGTACGTACGT")};
        SearchConfig cfg;
        cfg.maxMismatches = 2;
        cfg.engine = EngineKind::HscanAuto;
        cfg.pam = pamNGG();
        result = search(genome, guides, cfg);
    }
};

TEST(Report, PrintHitsListsEveryHit)
{
    Fixture f;
    ASSERT_GE(f.result.hits.size(), 2u);
    std::ostringstream out;
    printHits(out, f.genome, f.guides, f.result);
    std::string text = out.str();
    EXPECT_NE(text.find("guideA\t0\t+\t1\t"), std::string::npos);
    EXPECT_NE(text.find("guideA\t28\t+\t0\t"), std::string::npos);
}

TEST(Report, PrintHitsTruncates)
{
    Fixture f;
    std::ostringstream out;
    printHits(out, f.genome, f.guides, f.result, 1);
    EXPECT_NE(out.str().find("more hits"), std::string::npos);
}

TEST(Report, SummaryBuckets)
{
    Fixture f;
    std::ostringstream out;
    printSummary(out, f.guides, f.result);
    std::string text = out.str();
    EXPECT_NE(text.find("guideA"), std::string::npos);
    EXPECT_NE(text.find("mm=0"), std::string::npos);
    EXPECT_NE(text.find("mm=2"), std::string::npos);
}

TEST(Report, CsvHasHeaderAndRows)
{
    Fixture f;
    std::ostringstream out;
    writeHitsCsv(out, f.genome, f.guides, f.result);
    std::string text = out.str();
    EXPECT_EQ(text.find("guide,start,strand,mismatches,site"), 0u);
    EXPECT_NE(text.find("guideA,28,+,0,"), std::string::npos);
}

TEST(Report, TimingLineMentionsEngine)
{
    Fixture f;
    std::string line = timingLine(f.result.run);
    EXPECT_NE(line.find("hscan"), std::string::npos);
    EXPECT_NE(line.find("events="), std::string::npos);
}

} // namespace
} // namespace crispr::core
