/** @file Unit tests for ANML serialisation. */

#include <gtest/gtest.h>

#include "automata/anml.hpp"
#include "automata/builders.hpp"
#include "automata/interp.hpp"
#include "common/logging.hpp"
#include "test_util.hpp"

namespace crispr::automata {
namespace {

bool
sameAutomaton(const Nfa &a, const Nfa &b)
{
    if (a.size() != b.size())
        return false;
    for (StateId s = 0; s < a.size(); ++s) {
        const auto &x = a.state(s);
        const auto &y = b.state(s);
        if (x.cls != y.cls || x.start != y.start || x.report != y.report ||
            (x.report && x.reportId != y.reportId) || x.out != y.out)
            return false;
    }
    return true;
}

TEST(Anml, RoundTripsHammingAutomaton)
{
    Rng rng(5);
    auto spec = crispr::test::randomGuideSpec(rng, 10, 3, 2, 17);
    Nfa nfa = buildHammingNfa(spec);
    Nfa back = anmlFromString(anmlString(nfa));
    EXPECT_TRUE(sameAutomaton(nfa, back));
}

TEST(Anml, RoundTripPreservesBehaviour)
{
    Rng rng(6);
    auto spec = crispr::test::randomGuideSpec(rng, 8, 3, 1, 3);
    Nfa nfa = buildHammingNfa(spec);
    Nfa back = anmlFromString(anmlString(nfa));
    genome::Sequence g = crispr::test::randomGenome(rng, 1000);
    NfaInterpreter ia(nfa), ib(back);
    auto ea = ia.scanAll(g);
    auto eb = ib.scanAll(g);
    normalizeEvents(ea);
    normalizeEvents(eb);
    EXPECT_EQ(ea, eb);
}

TEST(Anml, OutputContainsExpectedMarkup)
{
    Nfa nfa;
    StateId a = nfa.addState(SymbolClass::parse("[AG]"),
                             StartKind::AllInput);
    StateId b = nfa.addState(SymbolClass::parse("T"));
    nfa.addEdge(a, b);
    nfa.setReport(b, 9);
    std::string text = anmlString(nfa, "net1");
    EXPECT_NE(text.find("automata-network id=\"net1\""),
              std::string::npos);
    EXPECT_NE(text.find("symbol-set=\"[AG]\""), std::string::npos);
    EXPECT_NE(text.find("start=\"all-input\""), std::string::npos);
    EXPECT_NE(text.find("report-code=\"9\""), std::string::npos);
    EXPECT_NE(text.find("activate-on-match element=\"q1\""),
              std::string::npos);
}

TEST(Anml, ParseErrors)
{
    EXPECT_THROW(anmlFromString("<state-transition-element id=\"a\"/>"),
                 FatalError);
    EXPECT_THROW(
        anmlFromString("<state-transition-element id=\"a\" "
                       "symbol-set=\"A\" start=\"bogus\"/>"),
        FatalError);
    // Duplicate id.
    EXPECT_THROW(
        anmlFromString("<state-transition-element id=\"a\" "
                       "symbol-set=\"A\"/>"
                       "<state-transition-element id=\"a\" "
                       "symbol-set=\"C\"/>"),
        FatalError);
    // Edge to an unknown element.
    EXPECT_THROW(
        anmlFromString("<state-transition-element id=\"a\" "
                       "symbol-set=\"A\">"
                       "<activate-on-match element=\"zz\"/>"
                       "</state-transition-element>"),
        FatalError);
}

} // namespace
} // namespace crispr::automata
