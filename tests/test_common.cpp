/** @file Unit tests for the common substrate. */

#include <gtest/gtest.h>

#include "common/cli.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"
#include "common/stopwatch.hpp"
#include "common/table.hpp"

namespace crispr {
namespace {

TEST(Strprintf, FormatsLikePrintf)
{
    EXPECT_EQ(strprintf("x=%d y=%s", 42, "hi"), "x=42 y=hi");
    EXPECT_EQ(strprintf("%.2f", 1.005), "1.00");
    EXPECT_EQ(strprintf("empty"), "empty");
}

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("bad input %d", 1), FatalError);
    try {
        fatal("code %d", 7);
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "code 7");
    }
}

TEST(Logging, PanicThrowsPanicError)
{
    EXPECT_THROW(panic("bug"), PanicError);
}

TEST(Logging, AssertMacroFiresOnFalse)
{
    EXPECT_THROW(CRISPR_ASSERT(1 == 2), PanicError);
    EXPECT_NO_THROW(CRISPR_ASSERT(1 == 1));
}

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowCoversRange)
{
    Rng rng(7);
    std::vector<int> seen(8, 0);
    for (int i = 0; i < 4000; ++i)
        ++seen[rng.below(8)];
    for (int c : seen)
        EXPECT_GT(c, 300); // each bucket near 500
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(99);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Stopwatch, MonotoneNonNegative)
{
    Stopwatch sw;
    double a = sw.seconds();
    double b = sw.seconds();
    EXPECT_GE(a, 0.0);
    EXPECT_GE(b, a);
    sw.reset();
    EXPECT_GE(sw.seconds(), 0.0);
}

TEST(Table, AlignsColumnsAndRendersRows)
{
    Table t({"name", "value"});
    t.row().add("alpha").add(uint64_t{10});
    t.row().add("b").add(3.14159, 2);
    std::string s = t.str();
    EXPECT_NE(s.find("| alpha | 10    |"), std::string::npos);
    EXPECT_NE(s.find("3.14"), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, CsvOutput)
{
    Table t({"a", "b"});
    t.row().add(1).add(2);
    EXPECT_EQ(t.csv(), "a,b\n1,2\n");
}

TEST(Format, Bytes)
{
    EXPECT_EQ(formatBytes(512), "512.0 B");
    EXPECT_EQ(formatBytes(16ull << 20), "16.0 MB");
    EXPECT_EQ(formatBytes(3ull << 30), "3.0 GB");
}

TEST(Format, Seconds)
{
    EXPECT_EQ(formatSeconds(2.5), "2.500 s");
    EXPECT_EQ(formatSeconds(0.0035), "3.50 ms");
    EXPECT_EQ(formatSeconds(2.5e-7), "250.0 ns");
    EXPECT_EQ(formatSeconds(5e-9), "5.0 ns");
}

TEST(Cli, ParsesFlagsAndPositionals)
{
    Cli cli("test");
    cli.addString("name", "default", "a name");
    cli.addInt("count", 3, "a count");
    cli.addBool("verbose", "be chatty");
    const char *argv[] = {"prog", "--name=foo", "--count", "9",
                          "--verbose", "pos1"};
    ASSERT_TRUE(cli.parse(6, argv));
    EXPECT_EQ(cli.getString("name"), "foo");
    EXPECT_EQ(cli.getInt("count"), 9);
    EXPECT_TRUE(cli.getBool("verbose"));
    ASSERT_EQ(cli.positional().size(), 1u);
    EXPECT_EQ(cli.positional()[0], "pos1");
}

TEST(Cli, DefaultsApplyWhenAbsent)
{
    Cli cli("test");
    cli.addString("name", "default", "a name");
    cli.addInt("count", 3, "a count");
    cli.addBool("verbose", "be chatty");
    const char *argv[] = {"prog"};
    ASSERT_TRUE(cli.parse(1, argv));
    EXPECT_EQ(cli.getString("name"), "default");
    EXPECT_EQ(cli.getInt("count"), 3);
    EXPECT_FALSE(cli.getBool("verbose"));
}

TEST(Cli, RejectsUnknownAndMalformedFlags)
{
    Cli cli("test");
    cli.addInt("count", 3, "a count");
    const char *unknown[] = {"prog", "--nope"};
    EXPECT_THROW(cli.parse(2, unknown), FatalError);

    Cli cli2("test");
    cli2.addInt("count", 3, "a count");
    const char *notint[] = {"prog", "--count", "abc"};
    EXPECT_THROW(cli2.parse(3, notint), FatalError);

    Cli cli3("test");
    cli3.addInt("count", 3, "a count");
    const char *missing[] = {"prog", "--count"};
    EXPECT_THROW(cli3.parse(2, missing), FatalError);
}

} // namespace
} // namespace crispr
