/** @file Unit tests for k-mer coding. */

#include <map>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "genome/kmer.hpp"

namespace crispr::genome {
namespace {

TEST(Kmer, EncodeDecodeRoundTrip)
{
    Sequence s = Sequence::fromString("ACGTGCA");
    uint64_t code = 0;
    ASSERT_TRUE(encodeKmer(s, 0, 4, code));
    EXPECT_EQ(decodeKmer(code, 4).str(), "ACGT");
    ASSERT_TRUE(encodeKmer(s, 3, 4, code));
    EXPECT_EQ(decodeKmer(code, 4).str(), "TGCA");
}

TEST(Kmer, EncodeFailsOnN)
{
    Sequence s = Sequence::fromString("ACNT");
    uint64_t code = 0;
    EXPECT_FALSE(encodeKmer(s, 0, 4, code));
    EXPECT_TRUE(encodeKmer(s, 3, 1, code));
}

TEST(Kmer, CodesAreOrderedLexicographically)
{
    Sequence a = Sequence::fromString("AAAA");
    Sequence b = Sequence::fromString("AAAC");
    uint64_t ca = 0, cb = 0;
    ASSERT_TRUE(encodeKmer(a, 0, 4, ca));
    ASSERT_TRUE(encodeKmer(b, 0, 4, cb));
    EXPECT_LT(ca, cb);
}

TEST(Kmer, RollingMatchesDirectEncoding)
{
    Rng rng(21);
    std::vector<uint8_t> codes(3000);
    for (auto &c : codes) {
        c = rng.chance(0.03) ? kCodeN
                             : static_cast<uint8_t>(rng.below(4));
    }
    Sequence s(std::move(codes));

    for (size_t k : {1u, 5u, 12u, 31u}) {
        std::map<size_t, uint64_t> rolling;
        forEachKmer(s, k, [&](size_t pos, uint64_t code) {
            rolling[pos] = code;
        });
        for (size_t pos = 0; pos + k <= s.size(); ++pos) {
            uint64_t direct = 0;
            const bool ok = encodeKmer(s, pos, k, direct);
            auto it = rolling.find(pos);
            if (ok) {
                ASSERT_NE(it, rolling.end()) << "k=" << k << " pos=" << pos;
                EXPECT_EQ(it->second, direct);
            } else {
                EXPECT_EQ(it, rolling.end());
            }
        }
    }
}

TEST(Kmer, ShortSequenceYieldsNothing)
{
    Sequence s = Sequence::fromString("ACG");
    size_t n = 0;
    forEachKmer(s, 5, [&](size_t, uint64_t) { ++n; });
    EXPECT_EQ(n, 0u);
}

} // namespace
} // namespace crispr::genome
