/** @file Unit tests for FASTA I/O. */

#include <sstream>

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "genome/fasta.hpp"

namespace crispr::genome {
namespace {

TEST(Fasta, ParsesMultiRecord)
{
    std::istringstream in(">chr1 human chromosome 1\nACGT\nACGT\n"
                          ">chr2\nTTTT\n");
    auto recs = readFasta(in);
    ASSERT_EQ(recs.size(), 2u);
    EXPECT_EQ(recs[0].name, "chr1");
    EXPECT_EQ(recs[0].comment, "human chromosome 1");
    EXPECT_EQ(recs[0].seq.str(), "ACGTACGT");
    EXPECT_EQ(recs[1].name, "chr2");
    EXPECT_TRUE(recs[1].comment.empty());
    EXPECT_EQ(recs[1].seq.str(), "TTTT");
}

TEST(Fasta, HandlesCrlfAndBlankLines)
{
    std::istringstream in(">r\r\nAC\r\n\r\nGT\r\n");
    auto recs = readFasta(in);
    ASSERT_EQ(recs.size(), 1u);
    EXPECT_EQ(recs[0].seq.str(), "ACGT");
}

TEST(Fasta, SoftMaskedAndDegenerateBases)
{
    std::istringstream in(">r\nacgtRYn\n");
    auto recs = readFasta(in);
    EXPECT_EQ(recs[0].seq.str(), "ACGTNNN");
}

TEST(Fasta, RejectsDataBeforeHeader)
{
    std::istringstream in("ACGT\n>r\nACGT\n");
    EXPECT_THROW(readFasta(in), FatalError);
}

TEST(Fasta, RejectsEmptyInput)
{
    std::istringstream in("");
    EXPECT_THROW(readFasta(in), FatalError);
}

TEST(Fasta, RejectsEmptyRecordName)
{
    std::istringstream in(">\nACGT\n");
    EXPECT_THROW(readFasta(in), FatalError);
}

TEST(Fasta, LenientModeDropsMalformedRecordsWhole)
{
    // Unlike the streaming reader (which cannot rewind and truncates),
    // the whole-file parser drops a malformed record entirely: the
    // leading headerless text, the nameless record, and the record
    // with an invalid character all vanish, and each is counted.
    std::istringstream in("ACGT\n"
                          ">\nTTTT\n"
                          ">good1\nACGT\n"
                          ">bad\nGG1GG\nCCCC\n"
                          ">good2 keep me\nTT TT\n");
    size_t dropped = 0;
    auto recs = readFasta(in, FastaParseOptions{/*lenient=*/true},
                          &dropped);
    EXPECT_EQ(dropped, 3u);
    ASSERT_EQ(recs.size(), 2u);
    EXPECT_EQ(recs[0].name, "good1");
    EXPECT_EQ(recs[0].seq.str(), "ACGT");
    EXPECT_EQ(recs[1].name, "good2");
    EXPECT_EQ(recs[1].comment, "keep me");
    EXPECT_EQ(recs[1].seq.str(), "TTTT");
}

TEST(Fasta, LenientModeIsANoOpOnCleanInput)
{
    const std::string text = ">chr1\nACGT\r\n\nacgtRYn\n>chr2\nTTTT\n";
    std::istringstream strict_in(text);
    auto want = readFasta(strict_in);

    std::istringstream in(text);
    size_t dropped = 99;
    auto got = readFasta(in, FastaParseOptions{/*lenient=*/true},
                         &dropped);
    EXPECT_EQ(dropped, 0u);
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].name, want[i].name);
        EXPECT_EQ(got[i].seq, want[i].seq);
    }
}

TEST(Fasta, LenientModeStillRequiresAtLeastOneRecord)
{
    std::istringstream in(">\nACGT\n");
    EXPECT_THROW(readFasta(in, FastaParseOptions{/*lenient=*/true}),
                 FatalError);
}

TEST(Fasta, RoundTripsThroughWriter)
{
    std::vector<FastaRecord> recs;
    recs.push_back({"a", "first", Sequence::fromString("ACGTACGTACGT")});
    recs.push_back({"b", "", Sequence::fromString("NNNN")});
    std::ostringstream out;
    writeFasta(out, recs, 5);
    std::istringstream in(out.str());
    auto back = readFasta(in);
    ASSERT_EQ(back.size(), 2u);
    EXPECT_EQ(back[0].name, "a");
    EXPECT_EQ(back[0].comment, "first");
    EXPECT_EQ(back[0].seq, recs[0].seq);
    EXPECT_EQ(back[1].seq, recs[1].seq);
}

TEST(Fasta, WriterWrapsLines)
{
    std::vector<FastaRecord> recs;
    recs.push_back({"a", "", Sequence::fromString("ACGTACG")});
    std::ostringstream out;
    writeFasta(out, recs, 4);
    EXPECT_EQ(out.str(), ">a\nACGT\nACG\n");
}

TEST(Fasta, ConcatenateInsertsSeparators)
{
    std::vector<FastaRecord> recs;
    recs.push_back({"a", "", Sequence::fromString("AC")});
    recs.push_back({"b", "", Sequence::fromString("GT")});
    std::vector<size_t> bounds;
    Sequence all = concatenateRecords(recs, &bounds);
    EXPECT_EQ(all.str(), "ACNGT");
    ASSERT_EQ(bounds.size(), 2u);
    EXPECT_EQ(bounds[0], 0u);
    EXPECT_EQ(bounds[1], 3u);
}

TEST(Fasta, FileRoundTrip)
{
    const std::string path = "/tmp/crispr_test_roundtrip.fa";
    std::vector<FastaRecord> recs;
    recs.push_back({"chrT", "test", Sequence::fromString("ACGTNACGT")});
    writeFastaFile(path, recs);
    auto back = readFastaFile(path);
    ASSERT_EQ(back.size(), 1u);
    EXPECT_EQ(back[0].seq, recs[0].seq);
    EXPECT_THROW(readFastaFile("/tmp/does_not_exist.fa"), FatalError);
}

} // namespace
} // namespace crispr::genome
