/** @file Unit tests for FASTA I/O. */

#include <sstream>

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "genome/fasta.hpp"

namespace crispr::genome {
namespace {

TEST(Fasta, ParsesMultiRecord)
{
    std::istringstream in(">chr1 human chromosome 1\nACGT\nACGT\n"
                          ">chr2\nTTTT\n");
    auto recs = readFasta(in);
    ASSERT_EQ(recs.size(), 2u);
    EXPECT_EQ(recs[0].name, "chr1");
    EXPECT_EQ(recs[0].comment, "human chromosome 1");
    EXPECT_EQ(recs[0].seq.str(), "ACGTACGT");
    EXPECT_EQ(recs[1].name, "chr2");
    EXPECT_TRUE(recs[1].comment.empty());
    EXPECT_EQ(recs[1].seq.str(), "TTTT");
}

TEST(Fasta, HandlesCrlfAndBlankLines)
{
    std::istringstream in(">r\r\nAC\r\n\r\nGT\r\n");
    auto recs = readFasta(in);
    ASSERT_EQ(recs.size(), 1u);
    EXPECT_EQ(recs[0].seq.str(), "ACGT");
}

TEST(Fasta, SoftMaskedAndDegenerateBases)
{
    std::istringstream in(">r\nacgtRYn\n");
    auto recs = readFasta(in);
    EXPECT_EQ(recs[0].seq.str(), "ACGTNNN");
}

TEST(Fasta, RejectsDataBeforeHeader)
{
    std::istringstream in("ACGT\n>r\nACGT\n");
    EXPECT_THROW(readFasta(in), FatalError);
}

TEST(Fasta, RejectsEmptyInput)
{
    std::istringstream in("");
    EXPECT_THROW(readFasta(in), FatalError);
}

TEST(Fasta, RejectsEmptyRecordName)
{
    std::istringstream in(">\nACGT\n");
    EXPECT_THROW(readFasta(in), FatalError);
}

TEST(Fasta, RoundTripsThroughWriter)
{
    std::vector<FastaRecord> recs;
    recs.push_back({"a", "first", Sequence::fromString("ACGTACGTACGT")});
    recs.push_back({"b", "", Sequence::fromString("NNNN")});
    std::ostringstream out;
    writeFasta(out, recs, 5);
    std::istringstream in(out.str());
    auto back = readFasta(in);
    ASSERT_EQ(back.size(), 2u);
    EXPECT_EQ(back[0].name, "a");
    EXPECT_EQ(back[0].comment, "first");
    EXPECT_EQ(back[0].seq, recs[0].seq);
    EXPECT_EQ(back[1].seq, recs[1].seq);
}

TEST(Fasta, WriterWrapsLines)
{
    std::vector<FastaRecord> recs;
    recs.push_back({"a", "", Sequence::fromString("ACGTACG")});
    std::ostringstream out;
    writeFasta(out, recs, 4);
    EXPECT_EQ(out.str(), ">a\nACGT\nACG\n");
}

TEST(Fasta, ConcatenateInsertsSeparators)
{
    std::vector<FastaRecord> recs;
    recs.push_back({"a", "", Sequence::fromString("AC")});
    recs.push_back({"b", "", Sequence::fromString("GT")});
    std::vector<size_t> bounds;
    Sequence all = concatenateRecords(recs, &bounds);
    EXPECT_EQ(all.str(), "ACNGT");
    ASSERT_EQ(bounds.size(), 2u);
    EXPECT_EQ(bounds[0], 0u);
    EXPECT_EQ(bounds[1], 3u);
}

TEST(Fasta, FileRoundTrip)
{
    const std::string path = "/tmp/crispr_test_roundtrip.fa";
    std::vector<FastaRecord> recs;
    recs.push_back({"chrT", "test", Sequence::fromString("ACGTNACGT")});
    writeFastaFile(path, recs);
    auto back = readFastaFile(path);
    ASSERT_EQ(back.size(), 1u);
    EXPECT_EQ(back[0].seq, recs[0].seq);
    EXPECT_THROW(readFastaFile("/tmp/does_not_exist.fa"), FatalError);
}

} // namespace
} // namespace crispr::genome
