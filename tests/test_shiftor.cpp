/** @file Unit tests for the bit-parallel Hamming matcher. */

#include <bit>

#include <gtest/gtest.h>

#include "baselines/brute.hpp"
#include "common/logging.hpp"
#include "hscan/shiftor.hpp"
#include "test_util.hpp"

namespace crispr::hscan {
namespace {

using automata::HammingSpec;
using automata::ReportEvent;
using genome::Sequence;

HammingSpec
specOf(const std::string &pattern, int d, size_t lo = 0,
       size_t hi = SIZE_MAX, uint32_t id = 0)
{
    HammingSpec spec;
    spec.masks = genome::masksFromIupac(pattern);
    spec.maxMismatches = d;
    spec.mismatchLo = lo;
    spec.mismatchHi = hi;
    spec.reportId = id;
    return spec;
}

TEST(ShiftOr, ExactMatch)
{
    auto spec = specOf("ACG", 0);
    ShiftOrMatcher m(std::span(&spec, 1));
    auto events = m.scanAll(Sequence::fromString("TACGACG"));
    automata::normalizeEvents(events);
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].end, 3u);
    EXPECT_EQ(events[1].end, 6u);
}

TEST(ShiftOr, OneMismatch)
{
    auto spec = specOf("ACGT", 1);
    ShiftOrMatcher m(std::span(&spec, 1));
    EXPECT_EQ(m.scanAll(Sequence::fromString("ACTT")).size(), 1u);
    // AGTT is 2 mismatches from ACGT (pos 1 and 2): over budget.
    EXPECT_TRUE(m.scanAll(Sequence::fromString("AGTT")).empty());
    EXPECT_TRUE(m.scanAll(Sequence::fromString("AGTC")).empty());
}

TEST(ShiftOr, PamPinnedExactRegion)
{
    auto spec = specOf("AAGG", 2, 0, 2);
    ShiftOrMatcher m(std::span(&spec, 1));
    EXPECT_FALSE(m.scanAll(Sequence::fromString("TTGG")).empty());
    EXPECT_TRUE(m.scanAll(Sequence::fromString("AAGC")).empty());
}

TEST(ShiftOr, GenomeNCountsAsMismatch)
{
    auto spec = specOf("ACGT", 1);
    ShiftOrMatcher m(std::span(&spec, 1));
    EXPECT_FALSE(m.scanAll(Sequence::fromString("ACNT")).empty());
    EXPECT_TRUE(m.scanAll(Sequence::fromString("ANNT")).empty());
}

TEST(ShiftOr, RejectsOversizedPatterns)
{
    HammingSpec spec;
    spec.masks.assign(65, genome::iupacMask('A'));
    spec.maxMismatches = 0;
    EXPECT_THROW(ShiftOrMatcher(std::span(&spec, 1)), FatalError);
    HammingSpec empty;
    EXPECT_THROW(ShiftOrMatcher(std::span(&empty, 1)), FatalError);
}

TEST(ShiftOr, SixtyFourPositionBoundary)
{
    Rng rng(17);
    HammingSpec spec;
    for (int i = 0; i < 64; ++i)
        spec.masks.push_back(
            static_cast<genome::BaseMask>(1u << rng.below(4)));
    spec.maxMismatches = 2;
    spec.mismatchLo = 0;
    spec.mismatchHi = 64;

    genome::Sequence g = crispr::test::randomGenome(rng, 4000);
    // Plant one site with 2 mismatches.
    Sequence site;
    for (auto m : spec.masks)
        site.push_back(static_cast<uint8_t>(
            std::countr_zero(static_cast<unsigned>(m))));
    Sequence mut = genome::mutateSite(site, 2, 0, 64, rng);
    genome::plantSite(g, 100, mut);

    ShiftOrMatcher m(std::span(&spec, 1));
    auto got = m.scanAll(g);
    automata::normalizeEvents(got);
    auto want = baselines::bruteForceScan(g, std::span(&spec, 1));
    EXPECT_EQ(got, want);
    bool found_planted = false;
    for (auto &e : got)
        found_planted |= e.end == 163;
    EXPECT_TRUE(found_planted);
}

TEST(ShiftOr, ChunkedStreamingEqualsWholeScan)
{
    Rng rng(23);
    auto spec = crispr::test::randomGuideSpec(rng, 12, 3, 2, 5);
    genome::Sequence g = crispr::test::randomGenome(rng, 1000);

    ShiftOrMatcher whole(std::span(&spec, 1));
    auto expect = whole.scanAll(g);

    ShiftOrMatcher chunked(std::span(&spec, 1));
    chunked.reset();
    std::vector<ReportEvent> got;
    auto sink = [&](uint32_t id, uint64_t end) {
        got.push_back(ReportEvent{id, end});
    };
    for (size_t at = 0; at < g.size(); at += 41) {
        size_t n = std::min<size_t>(41, g.size() - at);
        chunked.scan({g.data() + at, n}, sink, at);
    }
    EXPECT_EQ(got, expect);
}

TEST(ShiftOr, MultiplePatternsIndependentReports)
{
    std::vector<HammingSpec> specs = {specOf("AC", 0, 0, SIZE_MAX, 1),
                                      specOf("GT", 0, 0, SIZE_MAX, 2)};
    ShiftOrMatcher m(specs);
    auto events = m.scanAll(Sequence::fromString("ACGT"));
    automata::normalizeEvents(events);
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].reportId, 1u);
    EXPECT_EQ(events[1].reportId, 2u);
}

class ShiftOrVsBrute
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(ShiftOrVsBrute, AgreesWithGoldenScan)
{
    auto [d, seed] = GetParam();
    Rng rng(static_cast<uint64_t>(seed) * 1337 + d);
    std::vector<HammingSpec> specs;
    for (uint32_t i = 0; i < 4; ++i)
        specs.push_back(crispr::test::randomGuideSpec(rng, 10, 3, d, i));
    genome::Sequence g = crispr::test::randomGenome(rng, 5000, 0.01);

    ShiftOrMatcher m(specs);
    auto got = m.scanAll(g);
    automata::normalizeEvents(got);
    auto want = baselines::bruteForceScan(g, specs);
    EXPECT_EQ(got, want);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ShiftOrVsBrute,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 5),
                       ::testing::Values(1, 2)));

TEST(ShiftOr, StateBytesReported)
{
    auto spec = specOf("ACGT", 3);
    ShiftOrMatcher m(std::span(&spec, 1));
    EXPECT_GT(m.stateBytes(), 4 * sizeof(uint64_t));
    EXPECT_EQ(m.patternCount(), 1u);
}

} // namespace
} // namespace crispr::hscan
