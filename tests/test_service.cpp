/** @file Tests for the serving layer: SearchService request batching
 *  (coalescing, demux, deadlines, batch-split fallback) and the
 *  GenomeStore load-once LRU cache behind it. */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <thread>

#include <gtest/gtest.h>

#include "common/executor.hpp"
#include "common/faultpoints.hpp"
#include "core/engine_registry.hpp"
#include "core/service.hpp"
#include "core/session.hpp"
#include "test_util.hpp"

namespace crispr {
namespace {

core::Guide
randomGuide(Rng &rng, const std::string &name)
{
    static const char bases[] = "ACGT";
    std::string seq;
    for (int i = 0; i < 20; ++i)
        seq += bases[rng.below(4)];
    return core::makeGuide(name, seq);
}

std::vector<core::Guide>
randomGuides(Rng &rng, size_t count)
{
    std::vector<core::Guide> guides;
    for (size_t i = 0; i < count; ++i)
        guides.push_back(randomGuide(rng, "g" + std::to_string(i)));
    return guides;
}

/** A manual-mode service: requests queue until drain(). */
core::ServiceOptions
manualMode()
{
    core::ServiceOptions options;
    options.batchWindowSeconds = -1.0;
    return options;
}

std::vector<core::EngineKind>
chunkCapableEngines()
{
    std::vector<core::EngineKind> kinds;
    for (core::EngineKind kind : core::allEngines())
        if (core::EngineRegistry::instance()
                .engine(kind)
                .supportsChunkedScan())
            kinds.push_back(kind);
    return kinds;
}

// The batching contract: N coalesced requests return bit-identical
// hits to N independent search() calls, on every chunk-capable engine
// and every mismatch budget the paper's workloads use.
TEST(SearchService, BatchedEqualsSerialOnEveryChunkCapableEngine)
{
    const uint64_t seed = test::testSeed(9001);
    Rng rng(seed);
    auto genome = std::make_shared<const genome::Sequence>(
        test::randomGenome(rng, 20000));

    constexpr size_t kRequests = 3;
    std::vector<std::vector<core::Guide>> guide_sets;
    for (size_t r = 0; r < kRequests; ++r)
        guide_sets.push_back(randomGuides(rng, 2));

    size_t coalesced_runs = 0;
    for (core::EngineKind kind : chunkCapableEngines()) {
        for (int d = 0; d <= 4; ++d) {
            core::RequestOptions request;
            request.genome = genome;
            request.config.engine = kind;
            request.config.maxMismatches = d;

            // The workload must be servable per-request to begin with
            // (hscan-dfa rejects high budgets when the DFA exceeds its
            // state budget); those combinations are no conformance
            // statement and are skipped.
            std::vector<core::SearchResult> serial;
            bool engine_serves = true;
            for (size_t r = 0; r < kRequests && engine_serves; ++r) {
                core::SearchSession session(guide_sets[r],
                                            request.config);
                auto result = session.trySearch(*genome);
                if (!result.ok())
                    engine_serves = false;
                else
                    serial.push_back(std::move(result).value());
            }
            if (!engine_serves)
                continue;

            core::SearchService service(manualMode());
            std::vector<std::future<core::SearchResult>> futures;
            for (size_t r = 0; r < kRequests; ++r)
                futures.push_back(
                    service.submit(guide_sets[r], request));
            EXPECT_EQ(service.drain(), kRequests);
            ASSERT_EQ(service.batchCount(), 1u)
                << core::engineName(kind) << " d=" << d
                << " seed=" << seed;

            // A merged compile may legitimately exceed a budget the
            // per-request compiles fit in (again hscan-dfa); the
            // service then splits — results must still be identical.
            const bool split = service.batchSplitCount() > 0;
            if (!split) {
                EXPECT_EQ(service.coalescedCount(), kRequests);
                ++coalesced_runs;
            }

            for (size_t r = 0; r < kRequests; ++r) {
                core::SearchResult batched = futures[r].get();
                EXPECT_EQ(batched.hits, serial[r].hits)
                    << core::engineName(kind) << " d=" << d
                    << " request=" << r << " seed=" << seed;
                EXPECT_FALSE(batched.timedOut);
                EXPECT_EQ(batched.run.metrics.at(
                              "service.batch_requests"),
                          split ? 1.0
                                : static_cast<double>(kRequests));
                EXPECT_EQ(
                    batched.run.metrics.at("service.coalesced"),
                    split ? 0.0 : 1.0);
                // The demuxed pattern slice matches a solo compile.
                EXPECT_EQ(batched.patterns.patterns.size(),
                          serial[r].patterns.patterns.size());
            }
        }
    }
    // Coalescing must be the norm, not the exception.
    EXPECT_GE(coalesced_runs, 30u);
}

TEST(SearchService, IncompatibleConfigsDoNotCoalesce)
{
    Rng rng(9002);
    auto genome = std::make_shared<const genome::Sequence>(
        test::randomGenome(rng, 6000));
    core::SearchService service(manualMode());

    core::RequestOptions d2;
    d2.genome = genome;
    d2.config.maxMismatches = 2;
    core::RequestOptions d3 = d2;
    d3.config.maxMismatches = 3;

    auto f1 = service.submit(randomGuides(rng, 1), d2);
    auto f2 = service.submit(randomGuides(rng, 1), d3);
    EXPECT_EQ(service.drain(), 2u);
    EXPECT_EQ(service.batchCount(), 2u);
    EXPECT_EQ(service.coalescedCount(), 0u);
    EXPECT_EQ(
        f1.get().run.metrics.at("service.batch_requests"), 1.0);
    EXPECT_EQ(
        f2.get().run.metrics.at("service.batch_requests"), 1.0);
}

// A batch member whose deadline is already gone completes empty and
// timed out without delaying or corrupting its batchmates.
TEST(SearchService, DeadlinesStayPerRequestInsideABatch)
{
    Rng rng(9003);
    auto genome = std::make_shared<const genome::Sequence>(
        test::randomGenome(rng, 12000));
    std::vector<core::Guide> guides_ok = randomGuides(rng, 2);
    std::vector<core::Guide> guides_late = randomGuides(rng, 2);
    std::vector<core::Guide> guides_cancelled = randomGuides(rng, 2);

    core::SearchService service(manualMode());
    core::RequestOptions request;
    request.genome = genome;
    request.config.maxMismatches = 3;

    core::RequestOptions late = request;
    late.config.deadline = common::Deadline::after(0.0);
    core::RequestOptions cancelled = request;
    cancelled.config.deadline = common::Deadline::manual();
    cancelled.config.deadline.cancel();

    auto f_ok = service.submit(guides_ok, request);
    auto f_late = service.submit(guides_late, late);
    auto f_cancelled = service.submit(guides_cancelled, cancelled);
    service.drain();

    core::SearchResult ok = f_ok.get();
    core::SearchResult late_result = f_late.get();
    core::SearchResult cancelled_result = f_cancelled.get();

    EXPECT_EQ(ok.hits,
              core::search(*genome, guides_ok, request.config).hits);
    EXPECT_FALSE(ok.timedOut);

    EXPECT_TRUE(late_result.timedOut);
    EXPECT_TRUE(late_result.hits.empty());
    EXPECT_EQ(late_result.run.metrics.at("search.timed_out"), 1.0);

    EXPECT_TRUE(cancelled_result.timedOut);
    EXPECT_TRUE(cancelled_result.hits.empty());
    EXPECT_EQ(cancelled_result.run.metrics.at("search.cancelled"),
              1.0);

    auto metrics = service.metricsSnapshot();
    EXPECT_EQ(metrics.at("service.expired"), 2.0);
}

// A failing merged compile degrades to per-request serial execution:
// every member still gets correct results, and the split is counted.
TEST(SearchService, MergedFailureSplitsBatchIntoSerialRequests)
{
    Rng rng(9004);
    auto genome = std::make_shared<const genome::Sequence>(
        test::randomGenome(rng, 8000));
    std::vector<std::vector<core::Guide>> guide_sets;
    for (size_t r = 0; r < 3; ++r)
        guide_sets.push_back(randomGuides(rng, 2));

    core::SearchService service(manualMode());
    core::RequestOptions request;
    request.genome = genome;
    request.config.maxMismatches = 2;

    std::vector<std::future<core::SearchResult>> futures;
    for (const auto &guides : guide_sets)
        futures.push_back(service.submit(guides, request));

    // Fires on the merged compile and auto-disarms, so the
    // per-request serial retries succeed.
    common::faultpoints::armFailOnce("session.compile");
    service.drain();
    common::faultpoints::resetAll();

    EXPECT_EQ(service.batchSplitCount(), 1u);
    for (size_t r = 0; r < guide_sets.size(); ++r) {
        core::SearchResult got = futures[r].get();
        core::SearchResult want =
            core::search(*genome, guide_sets[r], request.config);
        EXPECT_EQ(got.hits, want.hits) << "request " << r;
        EXPECT_EQ(got.run.metrics.at("service.batch_requests"),
                  1.0);
    }
}

TEST(SearchService, WindowedModeServesConcurrentSubmitters)
{
    Rng rng(9005);
    auto genome = std::make_shared<const genome::Sequence>(
        test::randomGenome(rng, 8000));

    core::ServiceOptions options;
    options.batchWindowSeconds = 0.01;
    core::SearchService service(options);

    core::RequestOptions request;
    request.genome = genome;
    request.config.maxMismatches = 2;

    constexpr size_t kThreads = 4;
    std::vector<std::vector<core::Guide>> guide_sets;
    for (size_t t = 0; t < kThreads; ++t)
        guide_sets.push_back(randomGuides(rng, 1));

    std::vector<std::future<core::SearchResult>> futures(kThreads);
    std::vector<std::thread> pool;
    for (size_t t = 0; t < kThreads; ++t)
        pool.emplace_back([&, t] {
            futures[t] = service.submit(guide_sets[t], request);
        });
    for (auto &t : pool)
        t.join();
    service.flush();

    for (size_t t = 0; t < kThreads; ++t) {
        ASSERT_EQ(futures[t].wait_for(std::chrono::seconds(0)),
                  std::future_status::ready);
        EXPECT_EQ(
            futures[t].get().hits,
            core::search(*genome, guide_sets[t], request.config)
                .hits);
    }
    EXPECT_EQ(service.requestCount(), kThreads);
}

TEST(SearchService, DestructorServesPendingRequests)
{
    Rng rng(9006);
    auto genome = std::make_shared<const genome::Sequence>(
        test::randomGenome(rng, 4000));
    std::vector<core::Guide> guides = randomGuides(rng, 1);

    std::future<core::SearchResult> fut;
    core::RequestOptions request;
    request.genome = genome;
    {
        core::SearchService service(manualMode());
        fut = service.submit(guides, request);
        // No drain(): the destructor must serve it.
    }
    EXPECT_EQ(fut.get().hits,
              core::search(*genome, guides, request.config).hits);
}

TEST(SearchService, RejectsRequestsWithoutGuidesOrGenome)
{
    core::SearchService service(manualMode());

    core::RequestOptions no_genome;
    auto f1 = service.trySubmit({core::makeGuide("g", "ACGTACGTACGT"
                                                      "ACGTACGT")},
                                no_genome);
    auto r1 = f1.get();
    ASSERT_FALSE(r1.ok());
    EXPECT_EQ(r1.error().code(),
              common::ErrorCode::InvalidArgument);

    Rng rng(9007);
    core::RequestOptions request;
    request.genome = std::make_shared<const genome::Sequence>(
        test::randomGenome(rng, 100));
    auto f2 = service.submit({}, request);
    EXPECT_THROW(f2.get(), common::ErrorException);
}

TEST(SearchService, GenomePathResolvesThroughTheStore)
{
    Rng rng(9008);
    genome::Sequence ref = test::randomGenome(rng, 3000);
    std::string path = ::testing::TempDir() + "service_ref.fa";
    {
        std::ofstream out(path);
        out << ">ref\n";
        for (size_t i = 0; i < ref.size(); ++i)
            out << genome::baseChar(ref[i]);
        out << "\n";
    }

    core::SearchService service(manualMode());
    std::vector<core::Guide> guides = randomGuides(rng, 1);
    core::RequestOptions request;
    request.genomePath = path;
    auto f1 = service.submit(guides, request);
    auto f2 = service.submit(guides, request);
    service.drain();

    EXPECT_EQ(f1.get().hits, f2.get().hits);
    EXPECT_EQ(service.store().hits(), 1u);   // second submit
    EXPECT_EQ(service.store().misses(), 1u); // first submit loads
    EXPECT_EQ(service.store().entryCount(), 1u);
    std::remove(path.c_str());
}

TEST(GenomeStore, EvictsLeastRecentlyUsedByBytes)
{
    Rng rng(9009);
    core::GenomeStore store(/*max_bytes=*/2500);
    store.put("a", test::randomGenome(rng, 1000));
    store.put("b", test::randomGenome(rng, 1000));
    EXPECT_EQ(store.entryCount(), 2u);
    EXPECT_EQ(store.bytes(), 2000u);

    // Touch "a" so "b" is the LRU victim when "c" arrives.
    core::SharedSequence a = store.get("a");
    ASSERT_NE(a, nullptr);
    store.put("c", test::randomGenome(rng, 1000));

    EXPECT_EQ(store.evictions(), 1u);
    EXPECT_EQ(store.entryCount(), 2u);
    EXPECT_LE(store.bytes(), 2500u);
    EXPECT_EQ(store.get("b"), nullptr);
    EXPECT_NE(store.get("a"), nullptr);
    EXPECT_NE(store.get("c"), nullptr);
    // The evicted shared_ptr held by a caller stays valid (the store
    // drops its reference only).
    EXPECT_EQ(a->size(), 1000u);

    auto metrics = store.metricsSnapshot();
    EXPECT_EQ(metrics.at("store.evictions"), 1.0);
    EXPECT_EQ(metrics.at("store.entries"), 2.0);
}

TEST(GenomeStore, ConcurrentGetOrLoadParsesOnce)
{
    Rng rng(9010);
    genome::Sequence ref = test::randomGenome(rng, 2000);
    core::GenomeStore store;
    std::atomic<int> loads{0};

    constexpr size_t kThreads = 8;
    std::vector<core::SharedSequence> seen(kThreads);
    std::vector<std::thread> pool;
    for (size_t t = 0; t < kThreads; ++t)
        pool.emplace_back([&, t] {
            seen[t] = store.getOrLoad("ref", [&] {
                loads.fetch_add(1);
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(20));
                return common::Expected<genome::Sequence>(
                    genome::Sequence(ref));
            });
        });
    for (auto &t : pool)
        t.join();

    EXPECT_EQ(loads.load(), 1);
    for (size_t t = 1; t < kThreads; ++t)
        EXPECT_EQ(seen[t].get(), seen[0].get());
    EXPECT_EQ(store.misses() + store.hits(), kThreads);
    EXPECT_EQ(store.metricsSnapshot().at("store.loads"), 1.0);
}

TEST(GenomeStore, LoadErrorsAreNotCached)
{
    core::GenomeStore store;
    std::atomic<int> attempts{0};
    auto failing = [&]() -> common::Expected<genome::Sequence> {
        attempts.fetch_add(1);
        return common::Error(common::ErrorCode::ParseError,
                             "synthetic");
    };
    EXPECT_FALSE(store.tryGetOrLoad("bad", failing).ok());
    EXPECT_FALSE(store.tryGetOrLoad("bad", failing).ok());
    EXPECT_EQ(attempts.load(), 2); // the failure was retried
    EXPECT_EQ(store.entryCount(), 0u);

    Rng rng(9011);
    genome::Sequence ref = test::randomGenome(rng, 500);
    auto recovered =
        store.tryGetOrLoad("bad", [&] {
            attempts.fetch_add(1);
            return common::Expected<genome::Sequence>(
                genome::Sequence(ref));
        });
    ASSERT_TRUE(recovered.ok());
    EXPECT_EQ(recovered.value()->size(), 500u);
}

// Soak: 200 requests from 8 client threads across 4 genomes, every
// scan fanned out on the shared Executor, with probabilistic
// chunk-scan faults injected underneath the retry budget. Every
// request must come back bit-identical to its serial reference — no
// hit lost to a faulted-and-retried chunk, none duplicated by the
// pool fan-out — and the shared pool must actually have been used.
TEST(SearchService, SoakPooledRequestsSurviveInjectedChunkFaults)
{
    const uint64_t seed = test::testSeed(9100);
    Rng rng(seed);

    constexpr size_t kGenomes = 4;
    constexpr size_t kGuideSets = 8;
    constexpr size_t kRequests = 200;
    constexpr size_t kClients = 8;

    std::vector<std::shared_ptr<const genome::Sequence>> genomes;
    for (size_t g = 0; g < kGenomes; ++g)
        genomes.push_back(std::make_shared<const genome::Sequence>(
            test::randomGenome(rng, 20000)));
    std::vector<std::vector<core::Guide>> guide_sets;
    for (size_t s = 0; s < kGuideSets; ++s)
        guide_sets.push_back(randomGuides(rng, 2));

    core::RequestOptions base;
    base.config.maxMismatches = 2;
    base.config.threads = 2;
    base.config.chunkSize = 4096;
    base.config.scanRetries = 3;

    // Serial, fault-free references for every (genome, guide set)
    // combination a request can draw.
    core::SearchConfig serial = base.config;
    serial.threads = 1;
    std::vector<std::vector<core::OffTargetHit>> expected(
        kGenomes * kGuideSets);
    for (size_t g = 0; g < kGenomes; ++g)
        for (size_t s = 0; s < kGuideSets; ++s)
            expected[g * kGuideSets + s] =
                core::search(*genomes[g], guide_sets[s], serial)
                    .hits;

    const uint64_t pool_tasks_before =
        common::Executor::shared().tasksExecuted();

    common::faultpoints::armProbability("chunk.scan", 0.02, seed);
    {
        core::ServiceOptions options;
        options.batchWindowSeconds = 0.002;
        core::SearchService service(options);

        std::vector<std::future<core::SearchResult>> futures(
            kRequests);
        std::atomic<size_t> next_request{0};
        std::vector<std::thread> clients;
        for (size_t c = 0; c < kClients; ++c)
            clients.emplace_back([&] {
                for (;;) {
                    const size_t r = next_request.fetch_add(1);
                    if (r >= kRequests)
                        break;
                    core::RequestOptions request = base;
                    request.genome = genomes[r % kGenomes];
                    futures[r] = service.submit(
                        guide_sets[(r / kGenomes) % kGuideSets],
                        request);
                }
            });
        for (auto &client : clients)
            client.join();
        service.flush();

        for (size_t r = 0; r < kRequests; ++r) {
            core::SearchResult got = futures[r].get();
            const size_t want = (r % kGenomes) * kGuideSets +
                                (r / kGenomes) % kGuideSets;
            ASSERT_EQ(got.hits, expected[want])
                << "request " << r << " seed=" << seed
                << " (rerun with CRISPR_TEST_SEED=" << seed << ")";
            EXPECT_FALSE(got.timedOut) << "request " << r;
        }
        EXPECT_EQ(service.requestCount(), kRequests);
    }
    EXPECT_GE(common::faultpoints::failures("chunk.scan"), 1u)
        << "the soak never actually injected a fault";
    common::faultpoints::resetAll();

    // executor.tasks is monotone and the soak scheduled on the pool.
    EXPECT_GT(common::Executor::shared().tasksExecuted(),
              pool_tasks_before);
}

// A pool task failing hard (no retry budget) must still trigger the
// session's engine fallback chain, exactly as the pre-pool threaded
// scan did.
TEST(SearchService, FallbackChainFiresWhenAPoolTaskFails)
{
    Rng rng(9101);
    auto genome = std::make_shared<const genome::Sequence>(
        test::randomGenome(rng, 16000));
    std::vector<core::Guide> guides = randomGuides(rng, 2);

    core::RequestOptions request;
    request.genome = genome;
    request.config.maxMismatches = 2;
    request.config.threads = 2;
    request.config.chunkSize = 4096;
    request.config.scanRetries = 0;
    request.config.fallbacks = {core::EngineKind::Reference};

    core::SearchConfig serial = request.config;
    serial.threads = 1;
    serial.fallbacks.clear();
    const std::vector<core::OffTargetHit> want =
        core::search(*genome, guides, serial).hits;

    core::SearchService service(manualMode());
    auto fut = service.submit(guides, request);
    common::faultpoints::armFailNth("chunk.scan", 1);
    service.drain();
    common::faultpoints::resetAll();

    core::SearchResult got = fut.get();
    EXPECT_EQ(got.hits, want);
    EXPECT_EQ(got.run.metrics.at("session.fallbacks"), 1.0);
}

} // namespace
} // namespace crispr
