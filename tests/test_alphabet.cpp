/** @file Unit tests for the DNA alphabet. */

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "genome/alphabet.hpp"

namespace crispr::genome {
namespace {

TEST(Alphabet, BaseCodes)
{
    EXPECT_EQ(baseCode('A'), 0);
    EXPECT_EQ(baseCode('c'), 1);
    EXPECT_EQ(baseCode('G'), 2);
    EXPECT_EQ(baseCode('t'), 3);
    EXPECT_EQ(baseCode('U'), 3); // RNA tolerated
    EXPECT_EQ(baseCode('N'), kCodeN);
    EXPECT_EQ(baseCode('x'), kCodeInvalid);
    EXPECT_EQ(baseCode('>'), kCodeInvalid);
}

TEST(Alphabet, BaseCharsRoundTrip)
{
    for (uint8_t c = 0; c < kNumSymbols; ++c)
        EXPECT_EQ(baseCode(baseChar(c)), c);
}

TEST(Alphabet, ComplementPairs)
{
    EXPECT_EQ(complementCode(baseCode('A')), baseCode('T'));
    EXPECT_EQ(complementCode(baseCode('C')), baseCode('G'));
    EXPECT_EQ(complementCode(baseCode('G')), baseCode('C'));
    EXPECT_EQ(complementCode(baseCode('T')), baseCode('A'));
    EXPECT_EQ(complementCode(kCodeN), kCodeN);
}

TEST(Alphabet, ComplementIsInvolution)
{
    for (uint8_t c = 0; c < kNumSymbols; ++c)
        EXPECT_EQ(complementCode(complementCode(c)), c);
}

TEST(Alphabet, IupacMasks)
{
    EXPECT_EQ(iupacMask('A'), 0b0001);
    EXPECT_EQ(iupacMask('C'), 0b0010);
    EXPECT_EQ(iupacMask('G'), 0b0100);
    EXPECT_EQ(iupacMask('T'), 0b1000);
    EXPECT_EQ(iupacMask('R'), 0b0101); // A|G
    EXPECT_EQ(iupacMask('Y'), 0b1010); // C|T
    EXPECT_EQ(iupacMask('S'), 0b0110); // G|C
    EXPECT_EQ(iupacMask('W'), 0b1001); // A|T
    EXPECT_EQ(iupacMask('K'), 0b1100); // G|T
    EXPECT_EQ(iupacMask('M'), 0b0011); // A|C
    EXPECT_EQ(iupacMask('B'), 0b1110);
    EXPECT_EQ(iupacMask('D'), 0b1101);
    EXPECT_EQ(iupacMask('H'), 0b1011);
    EXPECT_EQ(iupacMask('V'), 0b0111);
    EXPECT_EQ(iupacMask('N'), kMaskAny);
    EXPECT_EQ(iupacMask('Z'), 0);
    EXPECT_EQ(iupacMask('n'), kMaskAny); // case insensitive
}

TEST(Alphabet, MaskIupacRoundTrip)
{
    for (genome::BaseMask m = 1; m < 16; ++m)
        EXPECT_EQ(iupacMask(maskIupac(m)), m) << "mask " << int(m);
}

TEST(Alphabet, MaskMatchesSemantics)
{
    EXPECT_TRUE(maskMatches(iupacMask('R'), baseCode('A')));
    EXPECT_TRUE(maskMatches(iupacMask('R'), baseCode('G')));
    EXPECT_FALSE(maskMatches(iupacMask('R'), baseCode('C')));
    // Genome N never matches any mask, even IUPAC 'N'.
    EXPECT_FALSE(maskMatches(kMaskAny, kCodeN));
    EXPECT_FALSE(maskMatches(iupacMask('A'), kCodeN));
}

TEST(Alphabet, ComplementMaskMirrorsBaseSet)
{
    EXPECT_EQ(complementMask(iupacMask('A')), iupacMask('T'));
    EXPECT_EQ(complementMask(iupacMask('R')), iupacMask('Y'));
    EXPECT_EQ(complementMask(iupacMask('S')), iupacMask('S'));
    EXPECT_EQ(complementMask(iupacMask('N')), iupacMask('N'));
    for (genome::BaseMask m = 0; m < 16; ++m)
        EXPECT_EQ(complementMask(complementMask(m)), m);
}

TEST(Alphabet, ValidateIupac)
{
    EXPECT_NO_THROW(validateIupac("ACGTNRWSKM", "test"));
    EXPECT_THROW(validateIupac("ACGX", "test"), FatalError);
}

} // namespace
} // namespace crispr::genome
