/** @file Unit + property tests for the edit-distance (bulge) automata
 *  and the core bulge-search API. */

#include <algorithm>

#include <gtest/gtest.h>

#include "automata/builders.hpp"
#include "automata/edit.hpp"
#include "baselines/brute.hpp"
#include "common/logging.hpp"
#include "core/bulge.hpp"
#include "core/search.hpp"
#include "genome/generator.hpp"
#include "test_util.hpp"

namespace crispr::automata {
namespace {

using genome::Sequence;

EditSpec
editSpec(const std::string &pattern, int d, int b, size_t lo = 0,
         size_t hi = SIZE_MAX, uint32_t id = 0)
{
    EditSpec spec;
    spec.masks = genome::masksFromIupac(pattern);
    spec.maxMismatches = d;
    spec.maxBulges = b;
    spec.editLo = lo;
    spec.editHi = hi;
    spec.reportId = id;
    return spec;
}

std::vector<ReportEvent>
nfaEvents(const EditSpec &spec, const Sequence &g)
{
    Nfa nfa = buildEditNfa(spec);
    NfaInterpreter interp(nfa);
    auto events = interp.scanAll(g);
    normalizeEvents(events);
    return events;
}

TEST(EditNfa, ZeroBulgesEqualsHammingAutomaton)
{
    Rng rng(91);
    for (int trial = 0; trial < 6; ++trial) {
        auto hspec = crispr::test::randomGuideSpec(rng, 8, 3, 2, 5);
        EditSpec espec;
        espec.masks = hspec.masks;
        espec.maxMismatches = hspec.maxMismatches;
        espec.maxBulges = 0;
        espec.editLo = hspec.mismatchLo;
        espec.editHi = hspec.mismatchHi;
        espec.reportId = hspec.reportId;

        Sequence g = crispr::test::randomGenome(rng, 2000, 0.02);
        auto edit_events = nfaEvents(espec, g);
        auto want = baselines::bruteForceScan(g, std::span(&hspec, 1));
        EXPECT_EQ(edit_events, want) << "trial " << trial;
    }
}

TEST(EditNfa, FindsDeletionBulge)
{
    // Pattern ACGTACGT; genome contains ACGACGT (position 3 deleted).
    auto spec = editSpec("ACGTACGT", 0, 1);
    Sequence g = Sequence::fromString("TTTACGACGTTTT");
    auto events = nfaEvents(spec, g);
    ASSERT_FALSE(events.empty());
    // Window TTT[ACGACGT]TTT ends at index 9.
    bool found = false;
    for (auto &e : events)
        found |= e.end == 9;
    EXPECT_TRUE(found);
    // Without a bulge budget it is not found.
    auto strict = editSpec("ACGTACGT", 0, 0);
    EXPECT_TRUE(nfaEvents(strict, g).empty());
}

TEST(EditNfa, FindsInsertionBulge)
{
    // Genome contains ACGTTACGT (extra T inserted mid-pattern).
    auto spec = editSpec("ACGTACGT", 0, 1);
    Sequence g = Sequence::fromString("GGACGTTACGTGG");
    auto events = nfaEvents(spec, g);
    bool found = false;
    for (auto &e : events)
        found |= e.end == 10;
    EXPECT_TRUE(found);
    auto strict = editSpec("ACGTACGT", 1, 0); // a mismatch can't fix it
    auto strict_events = nfaEvents(strict, g);
    for (auto &e : strict_events)
        EXPECT_NE(e.end, 10u);
}

TEST(EditNfa, TypedBudgetsAreSeparate)
{
    // One substitution AND one deletion: needs (d=1, b=1); neither
    // (2,0) nor (0,2) finds it.
    auto both = editSpec("ACGTACGT", 1, 1);
    //                       ACG ACGT with T->C sub at the end: ACGACGC
    Sequence g = Sequence::fromString("TTACGACGCTT");
    auto hits = nfaEvents(both, g);
    bool found = false;
    for (auto &e : hits)
        found |= e.end == 8;
    EXPECT_TRUE(found);

    for (auto spec : {editSpec("ACGTACGT", 2, 0),
                      editSpec("ACGTACGT", 0, 2)}) {
        auto events = nfaEvents(spec, g);
        for (auto &e : events)
            EXPECT_NE(e.end, 8u) << "d=" << spec.maxMismatches;
    }
}

TEST(EditNfa, PamStaysRigid)
{
    // Guide AAAA + PAM GG; edits allowed only in [0, 4).
    auto spec = editSpec("AAAAGG", 1, 1, 0, 4);
    // Deletion inside the PAM must not be tolerated: AAAAG.
    Sequence g1 = Sequence::fromString("TTAAAAGTT");
    for (auto &e : nfaEvents(spec, g1))
        EXPECT_NE(e.end, 6u);
    // Deletion inside the guide is fine: AAAGG.
    Sequence g2 = Sequence::fromString("TTAAAGGTT");
    bool found = false;
    for (auto &e : nfaEvents(spec, g2))
        found |= e.end == 6;
    EXPECT_TRUE(found);
}

TEST(EditNfa, StateCountScalesWithBudgets)
{
    const std::string guide(20, 'A');
    size_t prev = 0;
    for (int b = 0; b <= 2; ++b) {
        Nfa nfa = buildEditNfa(editSpec(guide + "CGG", 3, b, 0, 20));
        EXPECT_GT(nfa.size(), prev);
        prev = nfa.size();
    }
}

TEST(EditNfa, RejectsBadSpecs)
{
    EXPECT_THROW(buildEditNfa(editSpec("", 1, 1)), FatalError);
    EXPECT_THROW(buildEditNfa(editSpec("ACG", -1, 0)), FatalError);
    EXPECT_THROW(buildEditNfa(editSpec("ACG", 0, -1)), FatalError);
}

class EditNfaVsDp
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(EditNfaVsDp, AgreeOnRandomInputs)
{
    auto [d, b, seed] = GetParam();
    Rng rng(static_cast<uint64_t>(seed) * 6029 + d * 31 + b);
    for (int trial = 0; trial < 3; ++trial) {
        const size_t len = 4 + rng.below(8);
        auto spec = crispr::test::randomSpec(rng, len, d, 7);
        EditSpec espec;
        espec.masks = spec.masks;
        espec.maxMismatches = d;
        espec.maxBulges = b;
        espec.editLo = spec.mismatchLo;
        espec.editHi = spec.mismatchHi;
        espec.reportId = 7;

        Sequence g = crispr::test::randomGenome(rng, 1200, 0.03);
        auto nfa_events = nfaEvents(espec, g);
        auto dp_events = editDistanceScan(g, espec);
        normalizeEvents(dp_events);
        EXPECT_EQ(nfa_events, dp_events)
            << "len=" << len << " d=" << d << " b=" << b;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EditNfaVsDp,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values(0, 1, 2),
                       ::testing::Values(1, 2, 3)));

} // namespace
} // namespace crispr::automata

namespace crispr::core {
namespace {

TEST(BulgeSearch, EnginesMatchGoldenDp)
{
    genome::GenomeSpec gs;
    gs.length = 30000;
    gs.seed = 77;
    genome::Sequence g = genome::generateGenome(gs);
    auto guides = guidesFromGenome(g, 2, 20, 78);

    // Plant a bulged site for guide 0: delete protospacer position 9,
    // append a valid PAM.
    genome::Sequence site = guides[0].protospacer;
    genome::Sequence bulged;
    for (size_t i = 0; i < site.size(); ++i)
        if (i != 9)
            bulged.push_back(site[i]);
    bulged.append(genome::Sequence::fromString("AGG"));
    genome::plantSite(g, 15000, bulged);

    BulgeConfig cfg;
    cfg.maxMismatches = 1;
    cfg.maxBulges = 1;

    auto golden = bulgeSearchGolden(g, guides, cfg);
    const BulgeHit planted{0, Strand::Forward,
                           15000 + bulged.size() - 1};
    EXPECT_TRUE(std::find(golden.begin(), golden.end(), planted) !=
                golden.end());

    for (EngineKind kind :
         {EngineKind::Reference, EngineKind::Fpga, EngineKind::Ap,
          EngineKind::GpuInfant2, EngineKind::HscanDfa}) {
        cfg.engine = kind;
        BulgeResult res = bulgeSearch(g, guides, cfg);
        EXPECT_EQ(res.hits, golden) << engineName(kind);
        EXPECT_GT(res.nfaStates, 0u);
    }
}

TEST(BulgeSearch, UnsupportedEngineIsFatal)
{
    genome::Sequence g =
        genome::Sequence::fromString("ACGTACGTACGTACGTACGTACGTACGT");
    auto guides = std::vector<Guide>{
        makeGuide("g", "ACGTACGTACGTACGTACGT")};
    BulgeConfig cfg;
    cfg.engine = EngineKind::CasOt;
    EXPECT_THROW(bulgeSearch(g, guides, cfg), FatalError);
}

TEST(BulgeSearch, ZeroBulgesMatchesHammingSearch)
{
    genome::GenomeSpec gs;
    gs.length = 20000;
    gs.seed = 79;
    genome::Sequence g = genome::generateGenome(gs);
    auto guides = guidesFromGenome(g, 2, 20, 80);

    BulgeConfig bcfg;
    bcfg.maxMismatches = 2;
    bcfg.maxBulges = 0;
    bcfg.engine = EngineKind::Reference;
    BulgeResult bres = bulgeSearch(g, guides, bcfg);

    SearchConfig scfg;
    scfg.maxMismatches = 2;
    SearchResult sres = search(g, guides, scfg);

    // Hamming hits map to (end = start + 22) bulge hits.
    std::vector<BulgeHit> expect;
    for (const OffTargetHit &h : sres.hits)
        expect.push_back(BulgeHit{h.guide, h.strand, h.start + 22});
    std::sort(expect.begin(), expect.end());
    expect.erase(std::unique(expect.begin(), expect.end()),
                 expect.end());
    EXPECT_EQ(bres.hits, expect);
}

} // namespace
} // namespace crispr::core
