/** @file Cross-engine integration tests: every engine must return the
 *  identical verified hit set. This is the central correctness claim of
 *  the reproduction. */

#include <algorithm>

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "core/report.hpp"
#include "core/search.hpp"
#include "genome/generator.hpp"

namespace crispr::core {
namespace {

struct Workload
{
    genome::Sequence genome;
    std::vector<Guide> guides;
    std::vector<size_t> planted;
};

/** Genome with guides sampled from it and extra mutated sites planted. */
Workload
makeWorkload(uint64_t seed, size_t genome_len, size_t num_guides, int d)
{
    Workload w;
    genome::GenomeSpec gs;
    gs.length = genome_len;
    gs.seed = seed;
    gs.model = genome::CompositionModel::GcBiased;
    gs.n_fraction = 0.005;
    w.genome = genome::generateGenome(gs);
    w.guides = guidesFromGenome(w.genome, num_guides, 20, seed + 1);

    // Plant mutated sites (guide + NGG PAM) for guide 0.
    Rng rng(seed + 2);
    genome::Sequence site = w.guides[0].protospacer;
    site.append(genome::Sequence::fromString("TGG"));
    w.planted =
        genome::plantMutatedSites(w.genome, site, 4,
                                  std::max(0, d - 1), 0, 20, rng);
    return w;
}

class CrossEngine
    : public ::testing::TestWithParam<std::tuple<EngineKind, int>>
{
};

TEST_P(CrossEngine, AllEnginesAgreeWithBruteForce)
{
    auto [engine, d] = GetParam();
    Workload w = makeWorkload(100 + d, 20000, 3, d);

    SearchConfig golden;
    golden.maxMismatches = d;
    golden.engine = EngineKind::Brute;
    SearchResult want = search(w.genome, w.guides, golden);

    SearchConfig cfg;
    cfg.maxMismatches = d;
    cfg.engine = engine;
    SearchResult got = search(w.genome, w.guides, cfg);

    if (engine == EngineKind::ApCounter) {
        // The counter design aliases overlapping trigger windows onto
        // one shared counter (documented limitation, quantified by the
        // E11 ablation): spurious events are dropped by verification,
        // so surviving hits are a subset of the golden set; sites can
        // also be missed when a second trigger opens inside a window.
        for (const OffTargetHit &h : got.hits) {
            EXPECT_TRUE(std::find(want.hits.begin(), want.hits.end(),
                                  h) != want.hits.end());
        }
        return;
    }
    EXPECT_EQ(got.hits, want.hits);
    EXPECT_EQ(got.droppedEvents, 0u);

    // Planted sites for guide 0 must be present.
    for (size_t at : w.planted) {
        bool found = false;
        for (const OffTargetHit &h : got.hits) {
            found |= h.guide == 0 && h.start == at &&
                     h.strand == Strand::Forward;
        }
        EXPECT_TRUE(found) << "planted site at " << at << " missing";
    }
}

INSTANTIATE_TEST_SUITE_P(
    Engines, CrossEngine,
    ::testing::Combine(
        ::testing::Values(EngineKind::Reference, EngineKind::HscanAuto,
                          EngineKind::HscanBitParallel,
                          EngineKind::HscanPrefilter,
                          EngineKind::GpuInfant2, EngineKind::Fpga,
                          EngineKind::Ap, EngineKind::ApCounter,
                          EngineKind::CasOffinder, EngineKind::CasOt,
                          EngineKind::CasOtIndexed),
        ::testing::Values(0, 1, 2, 3)));

TEST(Search, TimingFieldsPopulated)
{
    Workload w = makeWorkload(7, 10000, 2, 2);
    for (EngineKind engine :
         {EngineKind::HscanAuto, EngineKind::Fpga, EngineKind::Ap,
          EngineKind::GpuInfant2, EngineKind::CasOffinder,
          EngineKind::CasOt}) {
        SearchConfig cfg;
        cfg.maxMismatches = 2;
        cfg.engine = engine;
        SearchResult res = search(w.genome, w.guides, cfg);
        EXPECT_GT(res.run.timing.totalSeconds, 0.0)
            << engineName(engine);
        EXPECT_GT(res.run.timing.kernelSeconds, 0.0)
            << engineName(engine);
        EXPECT_LE(res.run.timing.kernelSeconds,
                  res.run.timing.totalSeconds + 1e-12)
            << engineName(engine);
        EXPECT_FALSE(timingLine(res.run).empty());
    }
}

TEST(Search, SpatialEnginesExposeCapacityMetrics)
{
    Workload w = makeWorkload(8, 8000, 2, 2);
    SearchConfig cfg;
    cfg.maxMismatches = 2;

    cfg.engine = EngineKind::Fpga;
    auto fpga = search(w.genome, w.guides, cfg);
    EXPECT_GT(fpga.run.metrics.at("fpga.luts"), 0.0);
    EXPECT_GT(fpga.run.metrics.at("fpga.clock_mhz"), 0.0);

    cfg.engine = EngineKind::Ap;
    auto ap = search(w.genome, w.guides, cfg);
    EXPECT_GT(ap.run.metrics.at("ap.stes"), 0.0);
    EXPECT_GE(ap.run.metrics.at("ap.passes"), 1.0);

    cfg.engine = EngineKind::ApCounter;
    auto apc = search(w.genome, w.guides, cfg);
    EXPECT_GT(apc.run.metrics.at("ap.counters"), 0.0);
    // Counter design uses far fewer STEs than the matrix design.
    EXPECT_LT(apc.run.metrics.at("ap.stes"),
              ap.run.metrics.at("ap.stes"));
}

TEST(Search, AnalyticPathBeyondFullSimLimit)
{
    // Force the analytic path with a tiny full-sim limit; hits must be
    // unchanged.
    Workload w = makeWorkload(9, 12000, 2, 2);
    SearchConfig cfg;
    cfg.maxMismatches = 2;
    cfg.engine = EngineKind::Fpga;
    SearchResult full = search(w.genome, w.guides, cfg);
    cfg.params.fullSimSymbolLimit = 1;
    SearchResult analytic = search(w.genome, w.guides, cfg);
    EXPECT_EQ(full.hits, analytic.hits);
    EXPECT_NE(analytic.run.notes.find("analytic"), std::string::npos);

    cfg.engine = EngineKind::Ap;
    SearchResult ap = search(w.genome, w.guides, cfg);
    EXPECT_EQ(ap.hits, full.hits);

    cfg.engine = EngineKind::GpuInfant2;
    SearchResult gpu = search(w.genome, w.guides, cfg);
    EXPECT_EQ(gpu.hits, full.hits);

    cfg.engine = EngineKind::ApCounter;
    SearchResult apc = search(w.genome, w.guides, cfg);
    EXPECT_EQ(apc.hits, full.hits);
}

TEST(Search, WrongOrientationIsFatal)
{
    Workload w = makeWorkload(10, 2000, 1, 1);
    PatternSet site_order =
        buildPatternSet(w.guides, pamNRG(), 1, true);
    EngineParams params;
    auto run_counter = [&] {
        runEngine(EngineKind::ApCounter, w.genome, site_order, params);
    };
    EXPECT_THROW(run_counter(), crispr::FatalError);
    PatternSet pam_first = buildPatternSet(
        w.guides, pamNRG(), 1, true, Orientation::PamFirst);
    auto run_fpga = [&] {
        runEngine(EngineKind::Fpga, w.genome, pam_first, params);
    };
    EXPECT_THROW(run_fpga(), crispr::FatalError);
}

TEST(Search, NrgPamSupersetOfNggAndNag)
{
    Workload w = makeWorkload(11, 15000, 2, 2);
    SearchConfig cfg;
    cfg.maxMismatches = 2;
    cfg.engine = EngineKind::HscanAuto;

    cfg.pam = pamNGG();
    auto ngg = search(w.genome, w.guides, cfg);
    cfg.pam = pamNAG();
    auto nag = search(w.genome, w.guides, cfg);
    cfg.pam = pamNRG();
    auto nrg = search(w.genome, w.guides, cfg);

    EXPECT_EQ(nrg.hits.size(), ngg.hits.size() + nag.hits.size());
    for (const auto &h : ngg.hits)
        EXPECT_TRUE(std::find(nrg.hits.begin(), nrg.hits.end(), h) !=
                    nrg.hits.end());
}

} // namespace
} // namespace crispr::core
