/**
 * @file
 * Scoring conformance tier (ctest label `scoring`): the differential
 * proof behind in-scan position-weighted scoring. Asserts, with
 * bit-exact (EXPECT_EQ on doubles) comparisons, that
 *  (a) every engine's in-scan mismatch mask + site penalty equals the
 *      post-hoc hitMismatchPositions() / sitePenalty() recomputation,
 *  (b) a ranked search (topK / scoreThreshold) returns exactly
 *      rankHits() over the hits of an unranked full search — ranking
 *      never changes which hits exist,
 *  (c) the ranked listing is invariant across shard counts and
 *      chunk/thread geometry (bit-stable merge order), and
 *  (d) a serialized-database round trip (the v2 engine-state envelope
 *      that carries the weight table) preserves scored state exactly.
 *
 * Reproducibility: assertion messages carry the seed; rerun with
 * `CRISPR_TEST_SEED=<seed> ctest -L scoring`.
 */

#include <algorithm>
#include <filesystem>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include <gtest/gtest.h>

#include "core/score.hpp"
#include "core/session.hpp"
#include "core/shard.hpp"
#include "test_util.hpp"

namespace crispr {
namespace {

namespace fs = std::filesystem;

using core::EngineKind;

/** RAII temp directory under the system temp root. */
struct TempDir
{
    fs::path path;

    explicit TempDir(const std::string &tag)
    {
        path = fs::temp_directory_path() /
               ("crispr_scoretest_" + tag + "_" +
                std::to_string(::getpid()));
        fs::remove_all(path);
        fs::create_directories(path);
    }

    ~TempDir() { fs::remove_all(path); }

    std::string str() const { return path.string(); }
};

core::Guide
randomGuide(Rng &rng, const std::string &name)
{
    static const char bases[] = "ACGT";
    std::string seq;
    for (int i = 0; i < 20; ++i)
        seq += bases[rng.below(4)];
    return core::makeGuide(name, seq);
}

/** A genome salted with planted near-miss sites (0..d mismatches, both
 *  strands) for every guide, so scored hits actually exist. */
struct ScoredWorkload
{
    genome::Sequence genome;
    std::vector<core::Guide> guides;
};

ScoredWorkload
makeScoredWorkload(uint64_t seed, size_t genome_len, size_t n_guides,
                   int d)
{
    Rng rng(seed);
    ScoredWorkload w;
    w.genome = test::randomGenome(rng, genome_len);
    for (size_t g = 0; g < n_guides; ++g) {
        w.guides.push_back(
            randomGuide(rng, "g" + std::to_string(g)));
        genome::Sequence site = w.guides.back().protospacer;
        site.append(genome::Sequence::fromString("AGG"));
        for (int copy = 0; copy < 6; ++copy) {
            const int mm = static_cast<int>(rng.below(d + 1));
            genome::Sequence mutated =
                genome::mutateSite(site, mm, 0, 20, rng);
            if (rng.chance(0.3))
                mutated = mutated.reverseComplement();
            genome::plantSite(
                w.genome,
                rng.below(genome_len - mutated.size() + 1), mutated);
        }
    }
    return w;
}

/** Serialize one record as FASTA text for the streamed-scan check. */
std::string
fastaOf(const genome::Sequence &seq)
{
    std::string out = ">chr\n";
    const std::string s = seq.str();
    for (size_t i = 0; i < s.size(); i += 70)
        out += s.substr(i, 70) + "\n";
    return out;
}

/** Per-hit differential check: in-scan mask and penalty vs the
 *  post-hoc recomputation. Bit-exact, not approximate. */
void
expectScoredExactly(const genome::Sequence &genome,
                    const core::SearchResult &result,
                    const std::string &label)
{
    for (const core::OffTargetHit &hit : result.hits) {
        const std::vector<size_t> positions =
            core::hitMismatchPositions(genome, result.patterns, hit);
        EXPECT_EQ(positions.size(),
                  static_cast<size_t>(hit.mismatches))
            << label << " guide=" << hit.guide
            << " start=" << hit.start;
        EXPECT_EQ(hit.mismatchMask,
                  core::mismatchPositionsToMask(positions))
            << label << " guide=" << hit.guide
            << " start=" << hit.start;
        EXPECT_EQ(hit.penalty,
                  core::sitePenalty(positions,
                                    result.patterns.guideLength))
            << label << " guide=" << hit.guide
            << " start=" << hit.start
            << " (in-scan penalty must be bit-identical to post-hoc "
               "sitePenalty)";
    }
}

// (a) Every engine's in-scan scores equal the post-hoc recomputation,
// bit for bit — hitsFromEvents is the single funnel, so the guarantee
// must hold on every registry engine, including survivors of the AP
// counter design's verification.
TEST(ScoreConformance, InScanScoresMatchPostHocOnEveryEngine)
{
    const uint64_t seed = test::testSeed(16001);
    const ScoredWorkload w = makeScoredWorkload(seed, 12000, 2, 3);

    core::SearchConfig cfg;
    cfg.maxMismatches = 3;
    cfg.params.fullSimSymbolLimit = 4 << 10;
    core::SearchSession session(w.guides, cfg, /*cache_capacity=*/16);

    auto reference = session.trySearch(w.genome);
    ASSERT_TRUE(reference.ok()) << reference.error().str();
    size_t mismatched_hits = 0;
    for (const auto &hit : reference.value().hits)
        if (hit.mismatches > 0)
            ++mismatched_hits;
    ASSERT_GE(mismatched_hits, 4u)
        << "workload seed=" << seed
        << " planted too few imperfect sites to prove anything";

    Rng trng(seed ^ 0x5C04Eull);
    for (EngineKind kind : core::allEngines()) {
        core::SearchConfig engine_cfg = cfg;
        engine_cfg.engine = kind;
        engine_cfg.threads = 1 + trng.below(4);
        engine_cfg.chunkSize = size_t{2048} << trng.below(3);
        const std::string label =
            std::string("seed=") + std::to_string(seed) +
            " engine=" + core::engineName(kind);
        auto got = session.trySearch(w.genome, engine_cfg);
        if (!got.ok()) {
            const auto code = got.error().code();
            if (kind == EngineKind::HscanDfa &&
                (code == common::ErrorCode::CompileFailed ||
                 code == common::ErrorCode::ResourceExhausted))
                continue;
            FAIL() << label << " failed: " << got.error().str();
        }
        expectScoredExactly(w.genome, got.value(), label);
        if (kind != EngineKind::ApCounter) {
            EXPECT_EQ(got.value().hits, reference.value().hits)
                << label
                << " (scored hits must stay engine-independent)";
        }
    }
}

// (a, streamed) The per-chunk verification path scores identically to
// the in-memory pass: whole OffTargetHit equality covers mask and
// penalty through operator==.
TEST(ScoreConformance, StreamedChunksScoreIdentically)
{
    const uint64_t seed = test::testSeed(16002);
    const ScoredWorkload w = makeScoredWorkload(seed, 9000, 2, 3);

    core::SearchConfig cfg;
    cfg.maxMismatches = 3;
    core::SearchSession session(w.guides, cfg);
    auto want = session.trySearch(w.genome);
    ASSERT_TRUE(want.ok()) << want.error().str();

    Rng rng(seed ^ 0xFEED);
    cfg.chunkSize = size_t{512} << rng.below(4);
    cfg.threads = 1 + rng.below(4);
    std::istringstream in(fastaOf(w.genome));
    auto streamed = session.trySearchStream(in, cfg);
    ASSERT_TRUE(streamed.ok()) << streamed.error().str();
    EXPECT_EQ(streamed.value().hits, want.value().hits)
        << "seed=" << seed << " chunk=" << cfg.chunkSize
        << " threads=" << cfg.threads;
    expectScoredExactly(w.genome, streamed.value(),
                        "streamed seed=" + std::to_string(seed));
}

// (b) Ranked mode is a view, not a different search: topK/threshold
// return exactly rankHits() over the unranked full result, and leave
// the full hit list untouched.
TEST(ScoreConformance, RankedEqualsFilterAfterFullSearch)
{
    const uint64_t seed = test::testSeed(16003);
    const ScoredWorkload w = makeScoredWorkload(seed, 16000, 3, 3);

    core::SearchConfig cfg;
    cfg.maxMismatches = 3;
    core::SearchSession session(w.guides, cfg);
    auto full = session.trySearch(w.genome);
    ASSERT_TRUE(full.ok()) << full.error().str();
    ASSERT_GE(full.value().hits.size(), 6u) << "seed=" << seed;
    EXPECT_FALSE(full.value().rankedMode);
    EXPECT_TRUE(full.value().ranked.empty());

    // A threshold equal to an actual hit penalty exercises the >=
    // boundary: that hit must be kept.
    std::vector<double> penalties;
    for (const auto &hit : full.value().hits)
        penalties.push_back(hit.penalty);
    std::sort(penalties.begin(), penalties.end());
    const double threshold = penalties[penalties.size() / 2];

    struct Knobs
    {
        size_t topK;
        double scoreThreshold;
    };
    const Knobs cases[] = {
        {3, 0.0},              // top-K only
        {0, threshold},        // threshold only (all survivors)
        {2, threshold},        // both
        {1000000, 0.0},        // K past the hit count: keeps all
    };
    for (const Knobs &k : cases) {
        core::SearchConfig ranked_cfg = cfg;
        ranked_cfg.topK = k.topK;
        ranked_cfg.scoreThreshold = k.scoreThreshold;
        auto ranked = session.trySearch(w.genome, ranked_cfg);
        ASSERT_TRUE(ranked.ok()) << ranked.error().str();
        const std::string label = "seed=" + std::to_string(seed) +
                                  " topK=" + std::to_string(k.topK) +
                                  " threshold=" +
                                  std::to_string(k.scoreThreshold);
        EXPECT_TRUE(ranked.value().rankedMode) << label;
        EXPECT_EQ(ranked.value().hits, full.value().hits)
            << label << " (ranking must not change the hit set)";
        const auto want = core::rankHits(full.value().hits,
                                         k.scoreThreshold, k.topK);
        EXPECT_EQ(ranked.value().ranked, want) << label;
        EXPECT_EQ(ranked.value().run.metrics.at("search.ranked"),
                  static_cast<double>(want.size()))
            << label;
        for (const auto &hit : ranked.value().ranked)
            EXPECT_GE(hit.penalty, k.scoreThreshold) << label;
        // Penalty-descending with deterministic tiebreaks.
        for (size_t i = 1; i < ranked.value().ranked.size(); ++i)
            EXPECT_FALSE(core::rankedHitBefore(
                ranked.value().ranked[i],
                ranked.value().ranked[i - 1]))
                << label << " rank " << i << " out of order";
    }
}

// (c) The ranked listing is bit-stable across shard counts and
// chunk/thread geometry: per-shard top-K merges to exactly the
// single-session listing (the superset argument in shard.hpp).
TEST(ScoreConformance, RankedInvariantAcrossShardsAndGeometry)
{
    const uint64_t seed = test::testSeed(16004);
    Rng rng(seed);
    const ScoredWorkload w = makeScoredWorkload(seed, 24000, 3, 3);
    auto genome =
        std::make_shared<const genome::Sequence>(w.genome);

    core::SearchConfig config;
    config.maxMismatches = 3;
    core::SearchSession session(w.guides, config);
    const core::SearchResult full = session.search(*genome);
    ASSERT_GE(full.hits.size(), 8u) << "seed=" << seed;
    const size_t top_k = full.hits.size() / 2;
    config.topK = top_k;
    const core::SearchResult reference =
        session.search(*genome, config);
    ASSERT_TRUE(reference.rankedMode);
    ASSERT_EQ(reference.ranked.size(), top_k);

    // Geometry invariance within one session first.
    for (int i = 0; i < 3; ++i) {
        core::SearchConfig geo = config;
        geo.chunkSize = size_t{512} << rng.below(5);
        geo.threads = 1 + rng.below(4);
        const core::SearchResult again = session.search(*genome, geo);
        EXPECT_EQ(again.ranked, reference.ranked)
            << "seed=" << seed << " chunk=" << geo.chunkSize
            << " threads=" << geo.threads;
    }

    // Scatter-gather invariance at every shard count.
    const size_t kChunkSizes[] = {257, 1031, 4096};
    for (size_t shards : {1, 2, 4, 8}) {
        core::ShardOptions options;
        options.shards = shards;
        options.service.batchWindowSeconds = -1.0;
        core::ShardedSearchService service(options);

        core::RequestOptions request;
        request.genome = genome;
        request.config = config;
        request.config.chunkSize = kChunkSizes[rng.below(3)];
        request.config.threads =
            1u + static_cast<unsigned>(rng.below(3));
        auto fut = service.trySubmit(w.guides, request);
        service.drain();
        auto merged = fut.get();
        ASSERT_TRUE(merged.ok())
            << shards << " shards seed=" << seed << ": "
            << merged.error().message();
        EXPECT_TRUE(merged.value().rankedMode) << shards << " shards";
        EXPECT_EQ(merged.value().ranked, reference.ranked)
            << shards << " shards chunk="
            << request.config.chunkSize
            << " threads=" << request.config.threads
            << " seed=" << seed;
        EXPECT_EQ(merged.value().hits, full.hits)
            << shards << " shards seed=" << seed;
    }
}

// (d) The serialized pattern database preserves scored state: a warm
// start from the v2 envelope (which carries the weight table) scores
// bit-identically to the cold compile that wrote it.
TEST(ScoreConformance, DatabaseRoundTripPreservesScoredState)
{
    const uint64_t seed = test::testSeed(16005);
    const ScoredWorkload w = makeScoredWorkload(seed, 10000, 2, 2);
    TempDir dir("roundtrip");

    core::SearchConfig cfg;
    cfg.maxMismatches = 2;
    cfg.engine = EngineKind::HscanBitParallel;
    cfg.databaseDir = dir.str();
    cfg.topK = 5;

    core::SearchSession cold(w.guides, cfg);
    const core::SearchResult cold_result = cold.search(w.genome);
    EXPECT_EQ(cold.compileCount(), 1u);
    EXPECT_EQ(cold.databaseMisses(), 1u);
    ASSERT_FALSE(cold_result.hits.empty()) << "seed=" << seed;

    core::SearchSession warm(w.guides, cfg);
    const core::SearchResult warm_result = warm.search(w.genome);
    EXPECT_EQ(warm.compileCount(), 0u);
    EXPECT_EQ(warm.databaseHits(), 1u);

    // Whole-struct equality: mask and penalty round-trip exactly.
    EXPECT_EQ(warm_result.hits, cold_result.hits) << "seed=" << seed;
    EXPECT_EQ(warm_result.ranked, cold_result.ranked)
        << "seed=" << seed;
    EXPECT_EQ(warm_result.patterns.scoreWeights,
              cold_result.patterns.scoreWeights);
    EXPECT_EQ(warm_result.patterns.scoreWeights,
              core::scoreWeightTable(20));
    expectScoredExactly(w.genome, warm_result,
                        "warm seed=" + std::to_string(seed));
}

} // namespace
} // namespace crispr
