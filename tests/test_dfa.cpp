/** @file Unit tests for subset construction and DFA scanning. */

#include <gtest/gtest.h>

#include "automata/builders.hpp"
#include "automata/dfa.hpp"
#include "test_util.hpp"

namespace crispr::automata {
namespace {

using genome::Sequence;

Nfa
hammingNfa(const std::string &pattern, int d, size_t lo = 0,
           size_t hi = SIZE_MAX, uint32_t id = 0)
{
    HammingSpec spec;
    spec.masks = genome::masksFromIupac(pattern);
    spec.maxMismatches = d;
    spec.mismatchLo = lo;
    spec.mismatchHi = hi;
    spec.reportId = id;
    return buildHammingNfa(spec);
}

TEST(Dfa, ExactPatternScan)
{
    auto dfa = subsetConstruct(hammingNfa("ACG", 0), 1000);
    ASSERT_TRUE(dfa.has_value());
    auto events = dfa->scanAll(Sequence::fromString("ACGACG"));
    normalizeEvents(events);
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].end, 2u);
    EXPECT_EQ(events[1].end, 5u);
}

TEST(Dfa, EquivalentToInterpreter)
{
    Rng rng(55);
    for (int trial = 0; trial < 10; ++trial) {
        auto spec = crispr::test::randomGuideSpec(rng, 6, 2, 2, trial);
        Nfa nfa = buildHammingNfa(spec);
        auto dfa = subsetConstruct(nfa, 1u << 18);
        ASSERT_TRUE(dfa.has_value());
        Sequence g = crispr::test::randomGenome(rng, 2000, 0.02);
        auto got = dfa->scanAll(g);
        NfaInterpreter interp(nfa);
        auto want = interp.scanAll(g);
        normalizeEvents(got);
        normalizeEvents(want);
        EXPECT_EQ(got, want);
    }
}

TEST(Dfa, StateCapReturnsNullopt)
{
    auto dfa = subsetConstruct(
        hammingNfa("ACGTACGTACGTACGTACGT", 4), 16);
    EXPECT_FALSE(dfa.has_value());
}

TEST(Dfa, ChunkedScanEqualsWholeScan)
{
    auto dfa = subsetConstruct(hammingNfa("ACGT", 1), 100000);
    ASSERT_TRUE(dfa.has_value());
    Rng rng(9);
    Sequence g = crispr::test::randomGenome(rng, 500);

    auto whole = dfa->scanAll(g);

    std::vector<ReportEvent> chunked;
    uint32_t state = 0;
    auto sink = [&](uint32_t id, uint64_t end) {
        chunked.push_back(ReportEvent{id, end});
    };
    for (size_t at = 0; at < g.size(); at += 37) {
        size_t n = std::min<size_t>(37, g.size() - at);
        state = dfa->scan({g.data() + at, n}, sink, at, state);
    }
    EXPECT_EQ(chunked, whole);
}

TEST(Dfa, StartOfDataAnchoring)
{
    // A SOD-anchored exact pattern only matches at offset 0.
    Nfa nfa;
    StateId a = nfa.addState(
        SymbolClass::match(genome::iupacMask('A')),
        StartKind::StartOfData);
    StateId b = nfa.addState(SymbolClass::match(genome::iupacMask('C')));
    nfa.addEdge(a, b);
    nfa.setReport(b, 0);

    auto dfa = subsetConstruct(nfa, 100);
    ASSERT_TRUE(dfa.has_value());
    auto hit = dfa->scanAll(Sequence::fromString("ACAC"));
    ASSERT_EQ(hit.size(), 1u);
    EXPECT_EQ(hit[0].end, 1u);
    EXPECT_TRUE(dfa->scanAll(Sequence::fromString("GACAC")).empty());
}

TEST(Dfa, MultiPatternReports)
{
    std::vector<Nfa> parts;
    parts.push_back(hammingNfa("AC", 0, 0, SIZE_MAX, 10));
    parts.push_back(hammingNfa("AC", 1, 0, SIZE_MAX, 20));
    Nfa u = unionNfas(parts);
    auto dfa = subsetConstruct(u, 10000);
    ASSERT_TRUE(dfa.has_value());
    auto events = dfa->scanAll(Sequence::fromString("AC"));
    normalizeEvents(events);
    // Exact site matches both patterns.
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].reportId, 10u);
    EXPECT_EQ(events[1].reportId, 20u);
}

TEST(Dfa, TableBytesPositive)
{
    auto dfa = subsetConstruct(hammingNfa("ACGT", 1), 100000);
    ASSERT_TRUE(dfa.has_value());
    EXPECT_GT(dfa->tableBytes(),
              static_cast<size_t>(dfa->size()) * Dfa::kAlphabet * 4 - 1);
}

} // namespace
} // namespace crispr::automata
