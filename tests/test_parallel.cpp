/** @file Unit tests for the parallel scanner and the prefilter engine. */

#include <algorithm>
#include <bit>

#include <gtest/gtest.h>

#include "baselines/brute.hpp"
#include "common/logging.hpp"
#include "hscan/parallel.hpp"
#include "hscan/prefilter.hpp"
#include "test_util.hpp"

namespace crispr::hscan {
namespace {

using automata::HammingSpec;

std::vector<HammingSpec>
guideSpecs(Rng &rng, int d, size_t count)
{
    std::vector<HammingSpec> specs;
    for (uint32_t i = 0; i < count; ++i)
        specs.push_back(crispr::test::randomGuideSpec(rng, 12, 3, d, i));
    return specs;
}

TEST(ParallelScan, MatchesSerialScanAcrossThreadCounts)
{
    Rng rng(201);
    auto specs = guideSpecs(rng, 2, 4);
    genome::Sequence g = crispr::test::randomGenome(rng, 200000, 0.01);
    Database db = Database::compile(specs);

    Scanner serial(db);
    auto want = serial.scanAll(g);
    automata::normalizeEvents(want);

    for (unsigned threads : {1u, 2u, 4u, 7u}) {
        ParallelOptions opts;
        opts.threads = threads;
        opts.chunkSize = 13000; // force many chunks and odd seams
        auto got = parallelScan(db, g, opts);
        EXPECT_EQ(got, want) << "threads=" << threads;
    }
}

TEST(ParallelScan, SeamSitesNotDuplicatedOrLost)
{
    Rng rng(202);
    auto spec = crispr::test::randomGuideSpec(rng, 12, 3, 1, 0);
    genome::Sequence g = crispr::test::randomGenome(rng, 60000);
    // Plant a site exactly straddling a chunk boundary.
    genome::Sequence site;
    for (auto m : spec.masks)
        site.push_back(static_cast<uint8_t>(
            std::countr_zero(static_cast<unsigned>(m & 0xf))));
    genome::plantSite(g, 9995, site); // chunk size 10000 below

    Database db = Database::compile(std::vector<HammingSpec>{spec});
    ParallelOptions opts;
    opts.threads = 3;
    opts.chunkSize = 10000;
    auto got = parallelScan(db, g, opts);
    auto want = baselines::bruteForceScan(g, std::span(&spec, 1));
    EXPECT_EQ(got, want);
}

TEST(ParallelScan, EmptyAndTinyInputs)
{
    Rng rng(203);
    auto specs = guideSpecs(rng, 1, 2);
    Database db = Database::compile(specs);
    EXPECT_TRUE(parallelScan(db, genome::Sequence()).empty());
    genome::Sequence tiny = crispr::test::randomGenome(rng, 5);
    auto got = parallelScan(db, tiny);
    auto want = baselines::bruteForceScan(tiny, specs);
    EXPECT_EQ(got, want);
}

TEST(ParallelScan, RejectsChunkSmallerThanPattern)
{
    Rng rng(204);
    auto specs = guideSpecs(rng, 1, 1);
    Database db = Database::compile(specs);
    genome::Sequence g = crispr::test::randomGenome(rng, 100);
    ParallelOptions opts;
    opts.chunkSize = 4;
    EXPECT_THROW(parallelScan(db, g, opts), FatalError);
}

TEST(Prefilter, MatchesGoldenScan)
{
    Rng rng(205);
    for (int d = 0; d <= 4; ++d) {
        auto specs = guideSpecs(rng, d, 3);
        genome::Sequence g =
            crispr::test::randomGenome(rng, 20000, 0.01);
        PrefilterMatcher matcher(specs);
        auto got = matcher.scanAll(g);
        auto want = baselines::bruteForceScan(g, specs);
        EXPECT_EQ(got, want) << "d=" << d;
        EXPECT_GT(matcher.stats().anchorsProbed, 0u);
        EXPECT_GE(matcher.stats().anchorsHit,
                  matcher.stats().events / specs.size());
    }
}

TEST(Prefilter, SharesAnchorScansAcrossGuides)
{
    Rng rng(206);
    std::vector<HammingSpec> specs;
    for (uint32_t i = 0; i < 6; ++i) {
        auto s = crispr::test::randomGuideSpec(rng, 10, 0, 1, i);
        s.masks.push_back(genome::iupacMask('N'));
        s.masks.push_back(genome::iupacMask('G'));
        s.masks.push_back(genome::iupacMask('G'));
        s.mismatchHi = 10;
        specs.push_back(s);
    }
    PrefilterMatcher matcher(specs);
    EXPECT_EQ(matcher.shapeCount(), 1u);
    genome::Sequence g = crispr::test::randomGenome(rng, 5000);
    matcher.scanAll(g);
    // One anchor probe per position, not per (position, guide).
    EXPECT_EQ(matcher.stats().anchorsProbed, g.size() - 13 + 1);
}

TEST(Prefilter, RequiresAnAnchor)
{
    HammingSpec anchorless;
    anchorless.masks = genome::masksFromIupac("ACGT");
    anchorless.maxMismatches = 1;
    EXPECT_THROW(PrefilterMatcher(std::span(&anchorless, 1)),
                 FatalError);
}

} // namespace
} // namespace crispr::hscan
