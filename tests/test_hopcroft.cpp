/** @file Unit tests for Hopcroft minimisation. */

#include <gtest/gtest.h>

#include "automata/builders.hpp"
#include "automata/dfa.hpp"
#include "automata/hopcroft.hpp"
#include "test_util.hpp"

namespace crispr::automata {
namespace {

Dfa
dfaOf(const std::string &pattern, int d, uint32_t id = 0)
{
    HammingSpec spec;
    spec.masks = genome::masksFromIupac(pattern);
    spec.maxMismatches = d;
    spec.reportId = id;
    auto dfa = subsetConstruct(buildHammingNfa(spec), 1u << 20);
    EXPECT_TRUE(dfa.has_value());
    return *dfa;
}

TEST(Hopcroft, NeverGrows)
{
    Dfa dfa = dfaOf("ACGTAC", 1);
    Dfa min = hopcroftMinimize(dfa);
    EXPECT_LE(min.size(), dfa.size());
}

TEST(Hopcroft, PreservesLanguage)
{
    Rng rng(77);
    for (int trial = 0; trial < 8; ++trial) {
        auto spec = crispr::test::randomGuideSpec(rng, 6, 2, 1, trial);
        auto dfa = subsetConstruct(buildHammingNfa(spec), 1u << 20);
        ASSERT_TRUE(dfa.has_value());
        Dfa min = hopcroftMinimize(*dfa);
        genome::Sequence g = crispr::test::randomGenome(rng, 1500, 0.02);
        auto a = dfa->scanAll(g);
        auto b = min.scanAll(g);
        normalizeEvents(a);
        normalizeEvents(b);
        EXPECT_EQ(a, b);
    }
}

TEST(Hopcroft, Idempotent)
{
    Dfa min = hopcroftMinimize(dfaOf("ACGT", 1));
    Dfa min2 = hopcroftMinimize(min);
    EXPECT_EQ(min2.size(), min.size());
}

TEST(Hopcroft, DistinguishesReportIds)
{
    // Two exact patterns of the same shape but different ids must stay
    // distinguishable after minimisation.
    std::vector<Nfa> parts;
    HammingSpec s1, s2;
    s1.masks = genome::masksFromIupac("AC");
    s1.reportId = 1;
    s2.masks = genome::masksFromIupac("GT");
    s2.reportId = 2;
    parts.push_back(buildHammingNfa(s1));
    parts.push_back(buildHammingNfa(s2));
    auto dfa = subsetConstruct(unionNfas(parts), 10000);
    ASSERT_TRUE(dfa.has_value());
    Dfa min = hopcroftMinimize(*dfa);
    auto events = min.scanAll(genome::Sequence::fromString("ACGT"));
    normalizeEvents(events);
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].reportId, 1u);
    EXPECT_EQ(events[1].reportId, 2u);
}

TEST(Hopcroft, CollapsesRedundantStates)
{
    // Duplicate the same pattern twice under one report id: the merged
    // DFA has redundant structure the minimiser must collapse to the
    // single-pattern size.
    HammingSpec spec;
    spec.masks = genome::masksFromIupac("ACGT");
    spec.reportId = 3;
    std::vector<Nfa> twice;
    twice.push_back(buildHammingNfa(spec));
    twice.push_back(buildHammingNfa(spec));
    auto dup = subsetConstruct(unionNfas(twice), 1u << 16);
    auto single = subsetConstruct(buildHammingNfa(spec), 1u << 16);
    ASSERT_TRUE(dup && single);
    EXPECT_EQ(hopcroftMinimize(*dup).size(),
              hopcroftMinimize(*single).size());
}

} // namespace
} // namespace crispr::automata
