/** @file Unit tests for multi-record coordinate mapping. */

#include <sstream>

#include <gtest/gtest.h>

#include "core/report.hpp"
#include "genome/record_map.hpp"

namespace crispr::genome {
namespace {

std::vector<FastaRecord>
threeRecords()
{
    std::vector<FastaRecord> recs;
    recs.push_back({"chr1", "", Sequence::fromString("ACGTACGTAC")});
    recs.push_back({"chr2", "", Sequence::fromString("TTTT")});
    recs.push_back({"chr3", "", Sequence::fromString("GGGGGG")});
    return recs;
}

TEST(RecordMap, LocatesWithinRecords)
{
    auto recs = threeRecords();
    RecordMap map = RecordMap::fromRecords(recs);
    EXPECT_EQ(map.recordCount(), 3u);
    // Stream: chr1[0..9] N chr2[11..14] N chr3[16..21].
    EXPECT_EQ(map.streamLength(), 22u);

    auto a = map.locate(0);
    EXPECT_TRUE(a.withinRecord);
    EXPECT_EQ(a.name, "chr1");
    EXPECT_EQ(a.offset, 0u);

    auto b = map.locate(9);
    EXPECT_EQ(b.name, "chr1");
    EXPECT_EQ(b.offset, 9u);

    auto c = map.locate(11);
    EXPECT_EQ(c.name, "chr2");
    EXPECT_EQ(c.offset, 0u);

    auto d = map.locate(21);
    EXPECT_EQ(d.name, "chr3");
    EXPECT_EQ(d.offset, 5u);
}

TEST(RecordMap, SeparatorAndOutOfRange)
{
    RecordMap map = RecordMap::fromRecords(threeRecords());
    auto sep = map.locate(10); // the N between chr1 and chr2
    EXPECT_FALSE(sep.withinRecord);
    EXPECT_EQ(sep.name, "chr1");

    auto past = map.locate(22);
    EXPECT_FALSE(past.withinRecord);
    EXPECT_TRUE(past.name.empty());
}

TEST(RecordMap, WindowRejectsSeparatorCrossing)
{
    RecordMap map = RecordMap::fromRecords(threeRecords());
    auto ok = map.locateWindow(11, 4); // exactly chr2
    EXPECT_TRUE(ok.withinRecord);
    EXPECT_EQ(ok.name, "chr2");
    auto crossing = map.locateWindow(8, 4); // chr1 tail + separator
    EXPECT_FALSE(crossing.withinRecord);
}

TEST(RecordMap, MatchesConcatenateRecords)
{
    auto recs = threeRecords();
    std::vector<size_t> bounds;
    Sequence all = concatenateRecords(recs, &bounds);
    RecordMap map = RecordMap::fromRecords(recs);
    EXPECT_EQ(map.streamLength(), all.size());
    for (size_t r = 0; r < recs.size(); ++r) {
        auto loc = map.locate(bounds[r]);
        EXPECT_EQ(loc.name, recs[r].name);
        EXPECT_EQ(loc.offset, 0u);
    }
}

TEST(RecordMap, PrintHitsUsesRecordCoordinates)
{
    // One record with a planted site; the report prints chrX:offset.
    std::vector<FastaRecord> recs;
    recs.push_back({"chrX", "",
                    Sequence::fromString(
                        std::string(5, 'T') +
                        "ACGTACGTACGTACGTACGT" "AGG")});
    Sequence all = concatenateRecords(recs);
    RecordMap map = RecordMap::fromRecords(recs);

    auto guides = std::vector<core::Guide>{
        core::makeGuide("g", "ACGTACGTACGTACGTACGT")};
    core::SearchConfig cfg;
    cfg.maxMismatches = 0;
    cfg.pam = core::pamNGG();
    core::SearchResult res = core::search(all, guides, cfg);
    ASSERT_EQ(res.hits.size(), 1u);

    std::ostringstream out;
    core::printHits(out, all, guides, res, SIZE_MAX, &map);
    EXPECT_NE(out.str().find("chrX:5"), std::string::npos);
}

} // namespace
} // namespace crispr::genome
