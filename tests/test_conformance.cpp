/**
 * @file
 * Cross-engine conformance suite (ctest label `conformance`):
 * randomized workloads — guide length 16..24, d = 0..4, NGG/NAG/NRG
 * PAMs, genomes 1 KB .. 256 KB salted with Ns, multi-record FASTA
 * with CRLF line endings — run through every engine in the registry
 * and asserted bit-identical against the reference NFA interpreter.
 * This generalises the hand-picked seam cases in test_session.cpp to
 * generated ones.
 *
 * Reproducibility: every assertion message carries the workload seed
 * and parameters; rerun one workload with
 * `CRISPR_TEST_SEED=<seed> ctest -L conformance` (an explicit seed
 * becomes workload 0 of every shard).
 */

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/session.hpp"
#include "genome/fasta.hpp"
#include "hscan/simd.hpp"
#include "test_util.hpp"

namespace crispr {
namespace {

using core::EngineKind;

constexpr int kShards = 8;
constexpr int kWorkloadsPerShard = 25; // x kShards = 200 workloads

/** One generated workload; str() is the repro line for failures. */
struct Workload
{
    uint64_t seed = 0;
    size_t guideLen = 20;
    size_t nGuides = 1;
    int d = 0;
    int pamChoice = 0; // 0=NGG 1=NAG 2=NRG
    bool bothStrands = true;
    size_t genomeLen = 0;
    size_t nRecords = 1;
    double nFraction = 0.0;

    std::vector<core::Guide> guides;
    std::vector<genome::FastaRecord> records;
    genome::Sequence genome; //!< concatenated records (N separators)
    std::string fastaText;   //!< CRLF-laden serialization

    std::string
    str() const
    {
        std::ostringstream os;
        os << "workload{seed=" << seed << " guide_len=" << guideLen
           << " guides=" << nGuides << " d=" << d << " pam="
           << (pamChoice == 0 ? "NGG"
                              : (pamChoice == 1 ? "NAG" : "NRG"))
           << " both_strands=" << bothStrands
           << " genome_len=" << genomeLen
           << " records=" << nRecords << " n_frac=" << nFraction
           << "}";
        return os.str();
    }
};

core::PamSpec
pamOf(int choice)
{
    switch (choice) {
    case 0:
        return core::pamNGG();
    case 1:
        return core::pamNAG();
    default:
        return core::pamNRG();
    }
}

/** A concrete base drawn from one IUPAC mask. */
uint8_t
baseFromMask(genome::BaseMask mask, Rng &rng)
{
    std::vector<uint8_t> allowed;
    for (uint8_t b = 0; b < 4; ++b)
        if (mask & (1u << b))
            allowed.push_back(b);
    if (allowed.empty())
        return 0;
    return allowed[rng.below(allowed.size())];
}

/** guide protospacer + a concrete PAM drawn from the spec. */
genome::Sequence
siteFor(const core::Guide &guide, const core::PamSpec &pam, Rng &rng)
{
    std::vector<uint8_t> codes(guide.protospacer.codes().begin(),
                               guide.protospacer.codes().end());
    for (genome::BaseMask mask : genome::masksFromIupac(pam.iupac))
        codes.push_back(baseFromMask(mask, rng));
    return genome::Sequence(std::move(codes));
}

/** Serialize records by hand so every line ends in CRLF. */
std::string
crlfFasta(const std::vector<genome::FastaRecord> &records, Rng &rng)
{
    std::string out;
    for (const genome::FastaRecord &rec : records) {
        out += ">" + rec.name + "\r\n";
        const std::string seq = rec.seq.str();
        const size_t width = 60 + rng.below(21);
        for (size_t i = 0; i < seq.size(); i += width)
            out += seq.substr(i, width) + "\r\n";
    }
    return out;
}

Workload
makeWorkload(uint64_t seed)
{
    Workload w;
    w.seed = seed;
    Rng rng(seed);
    w.guideLen = 16 + rng.below(9); // 16..24
    w.nGuides = 1 + rng.below(2);
    w.d = static_cast<int>(rng.below(5)); // 0..4
    w.pamChoice = static_cast<int>(rng.below(3));
    w.bothStrands = rng.chance(0.75);
    w.genomeLen = (size_t{1024} << rng.below(9)) + rng.below(1024);
    w.nRecords = 1 + rng.below(3);
    w.nFraction = rng.chance(0.5) ? 0.01 : 0.0;

    const core::PamSpec pam = pamOf(w.pamChoice);
    for (size_t g = 0; g < w.nGuides; ++g)
        w.guides.push_back(core::makeGuide(
            "g" + std::to_string(g),
            test::randomGenome(rng, w.guideLen, 0.0).str()));

    // Split the genome across records, then plant mutated sites —
    // including one flush against a record end, the seam/boundary
    // case chunked scans must not lose.
    std::vector<size_t> cuts;
    for (size_t r = 0; r + 1 < w.nRecords; ++r)
        cuts.push_back(1 + rng.below(w.genomeLen - 1));
    std::sort(cuts.begin(), cuts.end());
    cuts.push_back(w.genomeLen);
    size_t from = 0;
    for (size_t r = 0; r < w.nRecords; ++r) {
        const size_t len = cuts[r] - from;
        from = cuts[r];
        genome::FastaRecord rec;
        rec.name = "rec" + std::to_string(r);
        rec.seq = test::randomGenome(rng, len, w.nFraction);
        w.records.push_back(std::move(rec));
    }
    for (size_t g = 0; g < w.nGuides; ++g) {
        const genome::Sequence site =
            siteFor(w.guides[g], pam, rng);
        for (int copy = 0; copy < 3; ++copy) {
            genome::FastaRecord &rec =
                w.records[rng.below(w.records.size())];
            if (rec.seq.size() < site.size())
                continue;
            const genome::Sequence mutated = genome::mutateSite(
                site, static_cast<int>(rng.below(w.d + 1)), 0,
                w.guideLen, rng);
            const size_t at =
                copy == 0 ? rec.seq.size() - site.size()
                          : rng.below(rec.seq.size() - site.size() +
                                      1);
            genome::plantSite(rec.seq, at, mutated);
        }
    }
    w.genome = genome::concatenateRecords(w.records);
    w.fastaText = crlfFasta(w.records, rng);
    return w;
}

core::SearchConfig
configFor(const Workload &w, EngineKind kind)
{
    core::SearchConfig cfg;
    cfg.pam = pamOf(w.pamChoice);
    cfg.maxMismatches = w.d;
    cfg.bothStrands = w.bothStrands;
    cfg.engine = kind;
    // Device-model engines switch to the verified analytic event path
    // past this limit, which keeps 256 KB workloads tractable while
    // small genomes still exercise the cycle simulators.
    cfg.params.fullSimSymbolLimit = 16 << 10;
    return cfg;
}

/** Every hit of `got` must appear in `want` (AP counter design). */
void
expectSubset(const std::vector<core::OffTargetHit> &got,
             const std::vector<core::OffTargetHit> &want,
             const std::string &label)
{
    for (const core::OffTargetHit &h : got)
        EXPECT_TRUE(std::find(want.begin(), want.end(), h) !=
                    want.end())
            << label << " hit (guide=" << h.guide
            << " start=" << h.start << ") not in the reference set";
}

/**
 * Draw a forced SIMD tier as part of the scan geometry. A drawn tier
 * this host/build cannot run is noted once and degraded to scalar, so
 * the workload is still covered (the vector-capable engines must be
 * bit-identical at whatever tier actually runs).
 */
hscan::SimdTier
drawSimdTier(Rng &rng)
{
    static const hscan::SimdTier tiers[] = {hscan::SimdTier::Scalar,
                                            hscan::SimdTier::Avx2,
                                            hscan::SimdTier::Avx512};
    hscan::SimdTier tier = tiers[rng.below(std::size(tiers))];
    if (!hscan::simdTierUsable(tier)) {
        static bool noted[4] = {};
        if (!noted[static_cast<int>(tier)]) {
            noted[static_cast<int>(tier)] = true;
            std::printf("[  NOTE    ] forced SIMD tier %s is not "
                        "usable on this host/build; degrading those "
                        "draws to scalar\n",
                        hscan::simdTierName(tier));
        }
        tier = hscan::SimdTier::Scalar;
    }
    return tier;
}

class Conformance : public ::testing::TestWithParam<int>
{
};

TEST_P(Conformance, EveryEngineMatchesReference)
{
    const uint64_t base =
        test::testSeed(0xC04F04ull * 1000003 + GetParam());
    for (int i = 0; i < kWorkloadsPerShard; ++i) {
        const Workload w =
            makeWorkload(base + i * 0x9E3779B97F4A7C15ull);
        core::SearchSession session(w.guides,
                                    configFor(w, EngineKind::Reference),
                                    /*cache_capacity=*/16);
        auto want = session.trySearch(w.genome);
        ASSERT_TRUE(want.ok())
            << w.str() << " reference failed: "
            << want.error().str();

        // Scan geometry is randomized per engine: threads 1..8 run as
        // lanes on the shared Executor (1 = the pool-free serial
        // path), with a chunk size small enough that multi-chunk
        // fan-out actually happens. Bit-identity must hold across all
        // of it; the failure label carries the geometry.
        Rng trng(w.seed ^ 0x7EAD5EEDull);
        for (EngineKind kind : core::allEngines()) {
            core::SearchConfig cfg = configFor(w, kind);
            cfg.threads = 1 + trng.below(8);
            cfg.chunkSize = size_t{2048} << trng.below(4);
            cfg.simdTier = drawSimdTier(trng);
            const std::string label =
                w.str() + " engine=" + core::engineName(kind) +
                " threads=" + std::to_string(cfg.threads) +
                " chunk=" + std::to_string(cfg.chunkSize) +
                " simd=" + hscan::simdTierName(cfg.simdTier);
            auto got = session.trySearch(w.genome, cfg);
            if (!got.ok()) {
                // The forced-DFA kind may legitimately blow its state
                // budget at high d / long guides; everything else
                // must serve every workload.
                const auto code = got.error().code();
                if (kind == EngineKind::HscanDfa &&
                    (code == common::ErrorCode::CompileFailed ||
                     code == common::ErrorCode::ResourceExhausted))
                    continue;
                FAIL() << label
                       << " failed: " << got.error().str();
            }
            if (kind == EngineKind::ApCounter) {
                // Documented limitation: shared-counter aliasing can
                // both drop and miss sites; survivors are verified.
                expectSubset(got.value().hits, want.value().hits,
                             label);
                continue;
            }
            EXPECT_EQ(got.value().hits, want.value().hits) << label;
            EXPECT_EQ(got.value().droppedEvents, 0u) << label;
            EXPECT_EQ(got.value().run.metrics.at("events.dropped"),
                      0.0)
                << label;
        }
    }
}

TEST_P(Conformance, StreamedScanMatchesInMemory)
{
    // CRLF-laden multi-record FASTA through the streaming pipeline
    // with a random chunk geometry must reproduce the in-memory hits
    // of the same engine exactly.
    static const EngineKind chunkable[] = {
        EngineKind::Brute,          EngineKind::Reference,
        EngineKind::HscanAuto,      EngineKind::HscanBitParallel,
        EngineKind::HscanPrefilter, EngineKind::CasOffinder,
        EngineKind::CasOt,          EngineKind::CasOtIndexed,
    };
    const uint64_t base =
        test::testSeed(0x57AE11ull * 1000003 + GetParam());
    for (int i = 0; i < kWorkloadsPerShard; ++i) {
        const uint64_t seed = base + i * 0x9E3779B97F4A7C15ull;
        const Workload w = makeWorkload(seed);
        Rng rng(seed ^ 0xFEED);
        const EngineKind kind =
            chunkable[rng.below(std::size(chunkable))];

        core::SearchConfig cfg = configFor(w, kind);
        core::SearchSession session(w.guides, cfg);
        auto want = session.trySearch(w.genome);
        const std::string label =
            w.str() + " engine=" + core::engineName(kind);
        ASSERT_TRUE(want.ok())
            << label << " in-memory failed: " << want.error().str();

        cfg.chunkSize = size_t{512} << rng.below(5); // 512..8192
        // 1 = the serial bypass; 2..8 fan chunk scans out as lanes on
        // the shared work-stealing pool (possibly more lanes than the
        // pool has workers — the submitting thread helps).
        cfg.threads = 1 + rng.below(8);
        cfg.simdTier = drawSimdTier(rng);
        std::istringstream in(w.fastaText);
        auto streamed = session.trySearchStream(in, cfg);
        ASSERT_TRUE(streamed.ok())
            << label << " (chunk=" << cfg.chunkSize
            << " threads=" << cfg.threads
            << " simd=" << hscan::simdTierName(cfg.simdTier)
            << ") streamed failed: " << streamed.error().str();
        EXPECT_EQ(streamed.value().hits, want.value().hits)
            << label << " chunk=" << cfg.chunkSize
            << " threads=" << cfg.threads
            << " simd=" << hscan::simdTierName(cfg.simdTier);
    }
}

INSTANTIATE_TEST_SUITE_P(Shards, Conformance,
                         ::testing::Range(0, kShards));

} // namespace
} // namespace crispr
