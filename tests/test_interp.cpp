/** @file Unit tests for the reference NFA interpreter. */

#include <gtest/gtest.h>

#include "automata/builders.hpp"
#include "automata/interp.hpp"
#include "test_util.hpp"

namespace crispr::automata {
namespace {

using genome::Sequence;

TEST(Interp, StartKindsBehave)
{
    // All-input start: matches anywhere. Start-of-data: offset 0 only.
    Nfa anywhere;
    StateId s1 = anywhere.addState(
        SymbolClass::match(genome::iupacMask('A')), StartKind::AllInput);
    anywhere.setReport(s1, 0);
    NfaInterpreter ia(anywhere);
    EXPECT_EQ(ia.scanAll(Sequence::fromString("CACA")).size(), 2u);

    Nfa anchored;
    StateId s2 = anchored.addState(
        SymbolClass::match(genome::iupacMask('A')),
        StartKind::StartOfData);
    anchored.setReport(s2, 0);
    NfaInterpreter ib(anchored);
    EXPECT_EQ(ib.scanAll(Sequence::fromString("ACAA")).size(), 1u);
    EXPECT_EQ(ib.scanAll(Sequence::fromString("CAAA")).size(), 0u);
}

TEST(Interp, ChunkedScanEqualsWholeScan)
{
    Rng rng(31);
    auto spec = crispr::test::randomGuideSpec(rng, 8, 3, 2, 1);
    Nfa nfa = buildHammingNfa(spec);
    Sequence g = crispr::test::randomGenome(rng, 700);

    NfaInterpreter whole(nfa);
    auto expect = whole.scanAll(g);

    NfaInterpreter chunked(nfa);
    chunked.reset();
    std::vector<ReportEvent> got;
    auto sink = [&](uint32_t id, uint64_t end) {
        got.push_back(ReportEvent{id, end});
    };
    for (size_t at = 0; at < g.size(); at += 23) {
        size_t n = std::min<size_t>(23, g.size() - at);
        chunked.scan({g.data() + at, n}, sink, at);
    }
    EXPECT_EQ(got, expect);
}

TEST(Interp, ResetClearsState)
{
    Nfa nfa = buildExactNfa(genome::masksFromIupac("AC"), 0);
    NfaInterpreter interp(nfa);
    std::vector<ReportEvent> events;
    auto sink = [&](uint32_t id, uint64_t end) {
        events.push_back(ReportEvent{id, end});
    };
    Sequence a = Sequence::fromString("A");
    Sequence c = Sequence::fromString("C");
    interp.scan(a.codes(), sink, 0);
    interp.reset();
    interp.scan(c.codes(), sink, 1);
    // Without reset the A->C continuation would have reported.
    EXPECT_TRUE(events.empty());
}

TEST(Interp, ActiveAndActivationCounts)
{
    Nfa nfa = buildExactNfa(genome::masksFromIupac("AA"), 0);
    NfaInterpreter interp(nfa);
    Sequence g = Sequence::fromString("AAA");
    interp.reset();
    interp.scan(g.codes(), nullptr, 0);
    // After "AAA": state0 active (start-anywhere) and state1 active.
    EXPECT_EQ(interp.activeCount(), 2u);
    // Activations: t0: s0. t1: s0,s1. t2: s0,s1 -> 5 total.
    EXPECT_EQ(interp.activationCount(), 5u);
}

TEST(Interp, DuplicateReportsPossibleBeforeNormalize)
{
    // Two accepting rows of one pattern can fire on the same symbol.
    HammingSpec spec;
    spec.masks = genome::masksFromIupac("AAA");
    spec.maxMismatches = 2;
    spec.reportId = 4;
    Nfa nfa = buildHammingNfa(spec);
    NfaInterpreter interp(nfa);
    // "AGA" reaches distance 1; also paths with 2 mismatches may exist
    // for other alignments. Normalisation collapses duplicates.
    auto events = interp.scanAll(Sequence::fromString("AGAAGA"));
    auto raw_size = events.size();
    normalizeEvents(events);
    EXPECT_LE(events.size(), raw_size);
    for (size_t i = 1; i < events.size(); ++i)
        EXPECT_TRUE(events[i - 1] < events[i]);
}

} // namespace
} // namespace crispr::automata
