/** @file Overload-protection tests: circuit breakers (unit and wired
 *  into the session fallback chain), SearchService admission control
 *  (request/byte bounds, reject-new vs drop-oldest, cost-aware early
 *  rejection), pressure hysteresis with engine=auto degradation,
 *  health snapshots, deadline-aware GenomeStore loads, pattern-db
 *  store degradation, and a bounded-queue chaos soak. */

#include <atomic>
#include <chrono>
#include <filesystem>
#include <thread>

#include <sys/stat.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "common/faultpoints.hpp"
#include "common/logging.hpp"
#include "common/metrics.hpp"
#include "core/breaker.hpp"
#include "core/service.hpp"
#include "core/session.hpp"
#include "test_util.hpp"

namespace crispr {
namespace {

using common::Deadline;
using common::ErrorCode;

core::Guide
randomGuide(Rng &rng, const std::string &name)
{
    static const char bases[] = "ACGT";
    std::string seq;
    for (int i = 0; i < 20; ++i)
        seq += bases[rng.below(4)];
    return core::makeGuide(name, seq);
}

std::vector<core::Guide>
randomGuides(Rng &rng, size_t count)
{
    std::vector<core::Guide> guides;
    for (size_t i = 0; i < count; ++i)
        guides.push_back(randomGuide(rng, "g" + std::to_string(i)));
    return guides;
}

/** A manual-mode service: requests queue until drain(). */
core::ServiceOptions
manualMode()
{
    core::ServiceOptions options;
    options.batchWindowSeconds = -1.0;
    return options;
}

bool
isReady(const std::future<common::Expected<core::SearchResult>> &fut)
{
    return fut.wait_for(std::chrono::seconds(0)) ==
           std::future_status::ready;
}

// ---------------------------------------------------------------------
// CircuitBreakerBoard unit transitions (deterministic, no clock games:
// openSeconds is either huge or zero).
// ---------------------------------------------------------------------

TEST(CircuitBreaker, OpensAtThresholdAndBlocksWhileCoolingDown)
{
    core::BreakerOptions options;
    options.failureThreshold = 2;
    options.openSeconds = 3600.0;
    core::CircuitBreakerBoard board(options);

    EXPECT_TRUE(board.admit("x"));
    board.recordFailure("x");
    EXPECT_EQ(board.state("x"),
              core::CircuitBreakerBoard::State::Closed);
    EXPECT_TRUE(board.admit("x"));
    board.recordFailure("x");
    EXPECT_EQ(board.state("x"),
              core::CircuitBreakerBoard::State::Open);
    EXPECT_FALSE(board.admit("x"));
    EXPECT_FALSE(board.admit("x"));

    const auto metrics = board.metricsSnapshot();
    EXPECT_EQ(metrics.at("session.breaker.x.open"), 1.0);
    EXPECT_EQ(metrics.at("session.breaker.x.state"), 2.0);
    // Other engines are unaffected.
    EXPECT_TRUE(board.admit("y"));
}

TEST(CircuitBreaker, HalfOpenAdmitsExactlyOneProbeThenCloses)
{
    core::BreakerOptions options;
    options.failureThreshold = 1;
    options.openSeconds = 0.0; // the very next request probes
    core::CircuitBreakerBoard board(options);

    board.recordFailure("x");
    EXPECT_EQ(board.state("x"),
              core::CircuitBreakerBoard::State::Open);
    EXPECT_TRUE(board.admit("x")); // the probe
    EXPECT_EQ(board.state("x"),
              core::CircuitBreakerBoard::State::HalfOpen);
    EXPECT_FALSE(board.admit("x")); // probe already in flight
    board.recordSuccess("x");
    EXPECT_EQ(board.state("x"),
              core::CircuitBreakerBoard::State::Closed);
    EXPECT_TRUE(board.admit("x"));

    const auto metrics = board.metricsSnapshot();
    EXPECT_EQ(metrics.at("session.breaker.x.open"), 1.0);
    EXPECT_EQ(metrics.at("session.breaker.x.half_open"), 1.0);
    EXPECT_EQ(metrics.at("session.breaker.x.closed"), 1.0);
    EXPECT_EQ(board.stateNames().at("x"), "closed");
}

TEST(CircuitBreaker, FailedProbeReopens)
{
    core::BreakerOptions options;
    options.failureThreshold = 1;
    options.openSeconds = 0.0;
    core::CircuitBreakerBoard board(options);

    board.recordFailure("x");
    EXPECT_TRUE(board.admit("x"));
    board.recordFailure("x"); // probe failed
    EXPECT_EQ(board.state("x"),
              core::CircuitBreakerBoard::State::Open);
    EXPECT_EQ(board.metricsSnapshot().at("session.breaker.x.open"),
              2.0);
}

TEST(CircuitBreaker, ThresholdZeroDisablesTheBoard)
{
    core::BreakerOptions options;
    options.failureThreshold = 0;
    core::CircuitBreakerBoard board(options);
    for (int i = 0; i < 20; ++i) {
        board.recordFailure("x");
        EXPECT_TRUE(board.admit("x"));
    }
}

// ---------------------------------------------------------------------
// The breaker wired into the session fallback chain: a failing engine
// opens its breaker, later requests on the same board skip it without
// burning a compile, and a half-open probe re-admits it.
// ---------------------------------------------------------------------

TEST(SearchSession, OpenBreakerSkipsTheEngineAcrossSessions)
{
    Rng rng(test::testSeed(9200));
    genome::Sequence genome = test::randomGenome(rng, 16000);
    std::vector<core::Guide> guides = randomGuides(rng, 2);

    core::BreakerOptions breaker;
    breaker.failureThreshold = 1;
    breaker.openSeconds = 3600.0; // stays open for the whole test
    auto board =
        std::make_shared<core::CircuitBreakerBoard>(breaker);

    core::SearchConfig config;
    config.maxMismatches = 2;
    config.engine = core::EngineKind::HscanBitParallel;
    config.fallbacks = {core::EngineKind::Reference};
    config.breakers = board;
    const std::string primary =
        core::engineName(core::EngineKind::HscanBitParallel);

    // Request 1: the primary's compile fails, the breaker opens, the
    // fallback serves.
    common::faultpoints::armFailOnce("session.compile");
    core::SearchSession first(guides, config);
    auto served = first.trySearch(genome);
    common::faultpoints::resetAll();
    ASSERT_TRUE(served.ok()) << served.error().str();
    EXPECT_EQ(served.value().run.kind, core::EngineKind::Reference);
    EXPECT_EQ(served.value().run.metrics.at("session.fallbacks"), 1.0);
    EXPECT_EQ(board->state(primary),
              core::CircuitBreakerBoard::State::Open);

    // Request 2 (fresh session, same board, no fault): the open
    // breaker skips the now-healthy primary without attempting it.
    core::SearchSession second(guides, config);
    auto skipped = second.trySearch(genome);
    ASSERT_TRUE(skipped.ok()) << skipped.error().str();
    EXPECT_EQ(skipped.value().run.kind, core::EngineKind::Reference);
    EXPECT_EQ(board->state(primary),
              core::CircuitBreakerBoard::State::Open);
    EXPECT_EQ(
        second.metricsSnapshot().at("session.breaker." + primary +
                                    ".open"),
        1.0);
}

TEST(SearchSession, HalfOpenProbeReadmitsTheRecoveredEngine)
{
    Rng rng(test::testSeed(9201));
    genome::Sequence genome = test::randomGenome(rng, 16000);
    std::vector<core::Guide> guides = randomGuides(rng, 2);

    core::BreakerOptions breaker;
    breaker.failureThreshold = 1;
    breaker.openSeconds = 0.0; // the next request probes immediately
    auto board =
        std::make_shared<core::CircuitBreakerBoard>(breaker);

    core::SearchConfig config;
    config.maxMismatches = 2;
    config.engine = core::EngineKind::HscanBitParallel;
    config.fallbacks = {core::EngineKind::Reference};
    config.breakers = board;
    const std::string primary =
        core::engineName(core::EngineKind::HscanBitParallel);

    common::faultpoints::armFailOnce("session.compile");
    core::SearchSession first(guides, config);
    ASSERT_TRUE(first.trySearch(genome).ok());
    common::faultpoints::resetAll();
    ASSERT_EQ(board->state(primary),
              core::CircuitBreakerBoard::State::Open);

    // The recovered engine serves its probe and the breaker closes.
    core::SearchSession second(guides, config);
    auto probed = second.trySearch(genome);
    ASSERT_TRUE(probed.ok()) << probed.error().str();
    EXPECT_EQ(probed.value().run.kind,
              core::EngineKind::HscanBitParallel);
    EXPECT_EQ(board->state(primary),
              core::CircuitBreakerBoard::State::Closed);
}

// ---------------------------------------------------------------------
// Admission control: bounded queues, both policies, and the cost-aware
// early rejection. Shed requests must complete promptly with
// Error::overloaded and cost zero scan work.
// ---------------------------------------------------------------------

TEST(SearchService, RejectNewShedsTheArrivalWithZeroScanWork)
{
    Rng rng(test::testSeed(9210));
    auto genome = std::make_shared<const genome::Sequence>(
        test::randomGenome(rng, 20000));
    core::RequestOptions request;
    request.genome = genome;
    request.config.maxMismatches = 2;

    core::ServiceOptions options = manualMode();
    options.maxQueueRequests = 2;
    core::SearchService service(options);

    auto f1 = service.trySubmit(randomGuides(rng, 1), request);
    auto f2 = service.trySubmit(randomGuides(rng, 1), request);
    auto f3 = service.trySubmit(randomGuides(rng, 1), request);

    // The overflow arrival resolves immediately — before any drain, so
    // it cannot have cost a scan — with Error::overloaded.
    ASSERT_TRUE(isReady(f3));
    EXPECT_FALSE(isReady(f1));
    auto rejected = f3.get();
    ASSERT_FALSE(rejected.ok());
    EXPECT_EQ(rejected.error().code(), ErrorCode::Overloaded);
    EXPECT_EQ(service.rejectedCount(), 1u);
    EXPECT_EQ(service.batchCount(), 0u);

    // The admitted requests are unharmed.
    EXPECT_EQ(service.drain(), 2u);
    EXPECT_TRUE(f1.get().ok());
    EXPECT_TRUE(f2.get().ok());
}

TEST(SearchService, DropOldestShedsTheQueueFrontAndServesTheArrival)
{
    Rng rng(test::testSeed(9211));
    auto genome = std::make_shared<const genome::Sequence>(
        test::randomGenome(rng, 20000));
    core::RequestOptions request;
    request.genome = genome;
    request.config.maxMismatches = 2;

    core::ServiceOptions options = manualMode();
    options.maxQueueRequests = 2;
    options.admissionPolicy = core::AdmissionPolicy::DropOldest;
    core::SearchService service(options);

    auto f1 = service.trySubmit(randomGuides(rng, 1), request);
    auto f2 = service.trySubmit(randomGuides(rng, 1), request);
    auto f3 = service.trySubmit(randomGuides(rng, 1), request);

    // Freshest-work-wins: the oldest queued request was shed.
    ASSERT_TRUE(isReady(f1));
    auto shed = f1.get();
    ASSERT_FALSE(shed.ok());
    EXPECT_EQ(shed.error().code(), ErrorCode::Overloaded);
    EXPECT_EQ(service.shedCount(), 1u);
    EXPECT_EQ(service.rejectedCount(), 0u);

    EXPECT_EQ(service.drain(), 2u);
    EXPECT_TRUE(f2.get().ok());
    EXPECT_TRUE(f3.get().ok());
}

TEST(SearchService, ByteBoundAdmitsALoneOversizedRequest)
{
    Rng rng(test::testSeed(9212));
    auto genome = std::make_shared<const genome::Sequence>(
        test::randomGenome(rng, 20000));
    core::RequestOptions request;
    request.genome = genome;
    request.config.maxMismatches = 2;

    core::ServiceOptions options = manualMode();
    options.maxQueueBytes = 10000; // smaller than one genome
    core::SearchService service(options);

    // A request bigger than the whole byte budget still admits when
    // the queue is empty — otherwise it could never be served at all.
    auto f1 = service.trySubmit(randomGuides(rng, 1), request);
    EXPECT_FALSE(isReady(f1));

    auto f2 = service.trySubmit(randomGuides(rng, 1), request);
    ASSERT_TRUE(isReady(f2));
    auto refused = f2.get();
    ASSERT_FALSE(refused.ok());
    EXPECT_EQ(refused.error().code(), ErrorCode::Overloaded);

    EXPECT_EQ(service.drain(), 1u);
    EXPECT_TRUE(f1.get().ok());
}

TEST(SearchService, CostAwareAdmissionRejectsUnmeetableDeadlines)
{
    Rng rng(test::testSeed(9213));
    // Big enough that the cost model predicts milliseconds per scan.
    auto genome = std::make_shared<const genome::Sequence>(
        test::randomGenome(rng, 4 << 20));
    core::RequestOptions request;
    request.genome = genome;
    request.config.maxMismatches = 2;
    request.config.threads = 1;

    core::SearchService service(manualMode());

    // Build a queue whose estimated wait dwarfs a 50 ms deadline.
    std::vector<std::future<common::Expected<core::SearchResult>>>
        queued;
    for (size_t i = 0; i < 32; ++i)
        queued.push_back(
            service.trySubmit(randomGuides(rng, 1), request));

    // A fresh deadline the queue cannot meet: rejected at submit,
    // before costing a scan.
    core::RequestOptions hurried = request;
    hurried.config.deadline = Deadline::after(0.05);
    auto doomed = service.trySubmit(randomGuides(rng, 1), hurried);
    ASSERT_TRUE(isReady(doomed));
    auto doomed_result = doomed.get();
    ASSERT_FALSE(doomed_result.ok());
    EXPECT_EQ(doomed_result.error().code(), ErrorCode::Overloaded);
    EXPECT_EQ(service.rejectedCount(), 1u);

    // A generous deadline is admitted.
    core::RequestOptions patient = request;
    patient.config.deadline = Deadline::after(600.0);
    auto admitted = service.trySubmit(randomGuides(rng, 1), patient);
    EXPECT_FALSE(isReady(admitted));

    // An already-expired deadline is admitted too: it completes as a
    // prompt timed-out result at dispatch, which keeps deadline
    // semantics exact (and is cheaper than an error path).
    core::RequestOptions expired = request;
    expired.config.deadline = Deadline::after(0.0);
    auto lapsed = service.trySubmit(randomGuides(rng, 1), expired);

    service.drain();
    auto lapsed_result = lapsed.get();
    ASSERT_TRUE(lapsed_result.ok());
    EXPECT_TRUE(lapsed_result.value().timedOut);
    EXPECT_EQ(lapsed_result.value().run.metrics.at("scan.bytes"), 0.0);
    EXPECT_TRUE(admitted.get().ok());
    for (auto &fut : queued)
        EXPECT_TRUE(fut.get().ok());
    if (common::kMetricsEnabled)
        EXPECT_GE(service.metricsSnapshot().at(
                      "service.est_wait_seconds.max"),
                  0.05);
}

// ---------------------------------------------------------------------
// Pressure hysteresis: sustained backlog degrades the service (auto
// pinned to the cheapest viable engine, window collapsed) and recovery
// is gated on the low watermark.
// ---------------------------------------------------------------------

TEST(SearchService, PressurePinsAutoBatchesAndExitsAfterDraining)
{
    Rng rng(test::testSeed(9220));
    auto genome = std::make_shared<const genome::Sequence>(
        test::randomGenome(rng, 20000));
    core::RequestOptions request;
    request.genome = genome;
    request.config.maxMismatches = 2;
    request.config.engine = core::EngineKind::Auto;

    core::ServiceOptions options = manualMode();
    options.pressureHighWatermark = 4;
    options.pressureLowWatermark = 1;
    core::SearchService service(options);

    std::vector<std::future<common::Expected<core::SearchResult>>>
        futures;
    for (size_t i = 0; i < 4; ++i)
        futures.push_back(
            service.trySubmit(randomGuides(rng, 1), request));

    core::ServiceHealth pressured = service.health();
    EXPECT_TRUE(pressured.pressured);
    EXPECT_FALSE(pressured.ready());
    EXPECT_EQ(pressured.queueDepth, 4u);
    EXPECT_EQ(pressured.queuedBytes, 4u * genome->size());
    EXPECT_GT(pressured.estWaitSeconds, 0.0);

    // The drained batch runs degraded: engine=auto pinned to the cost
    // model's cheapest viable choice, results still correct.
    EXPECT_EQ(service.drain(), 4u);
    EXPECT_GE(service.degradedCount(), 1u);
    for (auto &fut : futures) {
        auto result = fut.get();
        ASSERT_TRUE(result.ok()) << result.error().str();
        EXPECT_NE(result.value().run.kind, core::EngineKind::Auto);
    }

    // Hysteresis: the empty queue is at the low watermark, so the
    // pressure state cleared with the dispatch.
    core::ServiceHealth recovered = service.health();
    EXPECT_FALSE(recovered.pressured);
    EXPECT_TRUE(recovered.ready());
    const auto metrics = service.metricsSnapshot();
    EXPECT_EQ(metrics.at("service.pressure_enters"), 1.0);
    EXPECT_EQ(metrics.at("service.pressure_exits"), 1.0);
    EXPECT_EQ(metrics.at("service.pressure"), 0.0);
}

TEST(SearchService, HealthSnapshotOnAFreshService)
{
    core::SearchService service(manualMode());
    const core::ServiceHealth health = service.health();
    EXPECT_TRUE(health.ready());
    EXPECT_TRUE(health.accepting);
    EXPECT_FALSE(health.pressured);
    EXPECT_EQ(health.queueDepth, 0u);
    EXPECT_EQ(health.queuedBytes, 0u);
    EXPECT_EQ(health.estWaitSeconds, 0.0);
    EXPECT_EQ(health.executingBatches, 0u);
    EXPECT_TRUE(health.breakers.empty());
}

// ---------------------------------------------------------------------
// Deadline-aware GenomeStore loads.
// ---------------------------------------------------------------------

TEST(GenomeStore, PreExpiredDeadlineFailsFastWithoutLoading)
{
    core::GenomeStore store;
    std::atomic<int> attempts{0};
    auto result = store.tryGetOrLoad(
        "k",
        [&]() -> common::Expected<genome::Sequence> {
            attempts.fetch_add(1);
            return genome::Sequence::fromString("ACGTACGT");
        },
        Deadline::after(0.0));
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().code(), ErrorCode::DeadlineExceeded);
    EXPECT_EQ(attempts.load(), 0);
    EXPECT_EQ(store.deadlineExceededCount(), 1u);
    EXPECT_EQ(store.metricsSnapshot().at("store.deadline_exceeded"),
              1.0);

    // The key is not poisoned: a later unbounded load succeeds.
    auto loaded = store.tryGetOrLoad(
        "k", [&]() -> common::Expected<genome::Sequence> {
            attempts.fetch_add(1);
            return genome::Sequence::fromString("ACGTACGT");
        });
    ASSERT_TRUE(loaded.ok());
    EXPECT_EQ(attempts.load(), 1);
}

TEST(GenomeStore, DeadlineExpiresWhileAnotherCallerLoads)
{
    core::GenomeStore store;
    std::atomic<bool> release{false};

    // A slow loader owns the entry; a bounded waiter on the same key
    // must give up promptly instead of riding out the whole load.
    std::thread slow([&] {
        auto loaded = store.tryGetOrLoad(
            "k", [&]() -> common::Expected<genome::Sequence> {
                while (!release.load())
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(1));
                return genome::Sequence::fromString("ACGTACGT");
            });
        EXPECT_TRUE(loaded.ok());
    });

    // Wait until the loader thread owns the entry.
    while (store.entryCount() == 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));

    auto bounded = store.tryGetOrLoad(
        "k",
        [&]() -> common::Expected<genome::Sequence> {
            ADD_FAILURE() << "waiter must not load";
            return genome::Sequence::fromString("ACGT");
        },
        Deadline::after(0.05));
    ASSERT_FALSE(bounded.ok());
    EXPECT_EQ(bounded.error().code(), ErrorCode::DeadlineExceeded);
    EXPECT_EQ(store.deadlineExceededCount(), 1u);

    release.store(true);
    slow.join();

    // The slow load still completed and is served to later callers.
    auto ready = store.tryGetOrLoad(
        "k",
        [&]() -> common::Expected<genome::Sequence> {
            ADD_FAILURE() << "entry must already be resident";
            return genome::Sequence::fromString("ACGT");
        },
        Deadline::after(10.0));
    ASSERT_TRUE(ready.ok());
    EXPECT_EQ(ready.value()->size(), 8u);
}

// ---------------------------------------------------------------------
// Pattern-database store degradation: persistence failures must never
// fail a search.
// ---------------------------------------------------------------------

TEST(SearchSession, DbStoreFaultDegradesToInMemoryOnly)
{
    Rng rng(test::testSeed(9230));
    genome::Sequence genome = test::randomGenome(rng, 16000);
    std::vector<core::Guide> guides = randomGuides(rng, 2);

    const std::filesystem::path dir =
        std::filesystem::temp_directory_path() /
        strprintf("crispr_overload_db_%d", getpid());
    std::filesystem::remove_all(dir);

    core::SearchConfig config;
    config.maxMismatches = 2;
    config.engine = core::EngineKind::HscanBitParallel;
    config.databaseDir = dir.string();

    common::faultpoints::armFailOnce("db.store");
    core::SearchSession session(guides, config);
    auto served = session.trySearch(genome);
    common::faultpoints::resetAll();
    ASSERT_TRUE(served.ok()) << served.error().str();
    EXPECT_EQ(
        session.metricsSnapshot().at("session.db_store_failures"),
        1.0);

    // The blob entered the in-memory tier before the disk attempt, so
    // a second session still warm-starts from the database.
    core::SearchSession warm(guides, config);
    ASSERT_TRUE(warm.trySearch(genome).ok());
    EXPECT_GE(warm.metricsSnapshot().at("session.db_hits"), 1.0);

    std::filesystem::remove_all(dir);
}

TEST(SearchSession, ReadOnlyDatabaseDirDegradesToWarning)
{
    if (::geteuid() == 0)
        GTEST_SKIP() << "root ignores directory permissions";

    Rng rng(test::testSeed(9231));
    genome::Sequence genome = test::randomGenome(rng, 16000);
    std::vector<core::Guide> guides = randomGuides(rng, 2);

    const std::filesystem::path dir =
        std::filesystem::temp_directory_path() /
        strprintf("crispr_overload_rodb_%d", getpid());
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    ::chmod(dir.c_str(), 0500);

    core::SearchConfig config;
    config.maxMismatches = 2;
    config.engine = core::EngineKind::HscanBitParallel;
    config.databaseDir = dir.string();

    // The store fails against the read-only directory; the search
    // must still serve, with the failure counted.
    core::SearchSession session(guides, config);
    auto served = session.trySearch(genome);
    ASSERT_TRUE(served.ok()) << served.error().str();
    EXPECT_GE(
        session.metricsSnapshot().at("session.db_store_failures"),
        1.0);

    ::chmod(dir.c_str(), 0700);
    std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------
// Chaos soak: sustained 8-client overload against a bounded queue with
// injected chunk faults underneath. Every future resolves exactly once
// — admitted requests bit-identical to their serial reference, shed
// requests with Error::overloaded — and the service tears down clean.
// ---------------------------------------------------------------------

TEST(SearchService, OverloadSoakShedsCleanlyAndServesBitIdentical)
{
    const uint64_t seed = test::testSeed(9240);
    Rng rng(seed);

    constexpr size_t kGenomes = 2;
    constexpr size_t kGuideSets = 4;
    constexpr size_t kRequests = 240;
    constexpr size_t kClients = 8;

    std::vector<std::shared_ptr<const genome::Sequence>> genomes;
    for (size_t g = 0; g < kGenomes; ++g)
        genomes.push_back(std::make_shared<const genome::Sequence>(
            test::randomGenome(rng, 20000)));
    std::vector<std::vector<core::Guide>> guide_sets;
    for (size_t s = 0; s < kGuideSets; ++s)
        guide_sets.push_back(randomGuides(rng, 2));

    core::RequestOptions base;
    base.config.maxMismatches = 2;
    base.config.threads = 2;
    base.config.chunkSize = 4096;
    base.config.scanRetries = 3;

    // Serial, fault-free references for every (genome, guide set)
    // combination a request can draw.
    core::SearchConfig serial = base.config;
    serial.threads = 1;
    std::vector<std::vector<core::OffTargetHit>> expected(
        kGenomes * kGuideSets);
    for (size_t g = 0; g < kGenomes; ++g)
        for (size_t s = 0; s < kGuideSets; ++s)
            expected[g * kGuideSets + s] =
                core::search(*genomes[g], guide_sets[s], serial).hits;

    size_t good = 0, shed = 0;
    common::faultpoints::armProbability("chunk.scan", 0.02, seed);
    {
        core::ServiceOptions options;
        options.batchWindowSeconds = 0.001;
        options.maxBatchRequests = 8;
        options.maxQueueRequests = 16;
        options.admissionPolicy = core::AdmissionPolicy::DropOldest;
        options.pressureHighWatermark = 12;
        options.pressureLowWatermark = 2;
        core::SearchService service(options);

        // 8 unpaced clients against a 16-deep queue: offered load far
        // exceeds drain capacity, so shedding is guaranteed.
        std::vector<std::future<common::Expected<core::SearchResult>>>
            futures(kRequests);
        std::atomic<size_t> next_request{0};
        std::vector<std::thread> clients;
        for (size_t c = 0; c < kClients; ++c)
            clients.emplace_back([&] {
                for (;;) {
                    const size_t r = next_request.fetch_add(1);
                    if (r >= kRequests)
                        break;
                    core::RequestOptions request = base;
                    request.genome = genomes[r % kGenomes];
                    futures[r] = service.trySubmit(
                        guide_sets[(r / kGenomes) % kGuideSets],
                        request);
                }
            });
        for (auto &client : clients)
            client.join();
        service.flush();

        for (size_t r = 0; r < kRequests; ++r) {
            auto result = futures[r].get();
            if (!result.ok()) {
                // The only legitimate failure is admission shedding.
                ASSERT_EQ(result.error().code(),
                          ErrorCode::Overloaded)
                    << "request " << r << ": "
                    << result.error().str()
                    << " (rerun with CRISPR_TEST_SEED=" << seed
                    << ")";
                ++shed;
                continue;
            }
            const size_t want = (r % kGenomes) * kGuideSets +
                                (r / kGenomes) % kGuideSets;
            ASSERT_EQ(result.value().hits, expected[want])
                << "request " << r << " seed=" << seed;
            ++good;
        }
        EXPECT_EQ(good + shed, kRequests);
        EXPECT_EQ(service.requestCount(), kRequests);
        EXPECT_EQ(service.shedCount(), kRequests - good);
        // The queue bound must have actually bitten: an unbounded
        // queue would have served all 240.
        EXPECT_GT(shed, 0u) << "offered load never exceeded capacity";
        EXPECT_GT(good, 0u);

        const core::ServiceHealth health = service.health();
        EXPECT_EQ(health.queueDepth, 0u);
    } // destructor must drain without hanging or abandoning futures
    common::faultpoints::resetAll();
}

} // namespace
} // namespace crispr
