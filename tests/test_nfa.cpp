/** @file Unit tests for the homogeneous NFA container. */

#include <gtest/gtest.h>

#include "automata/nfa.hpp"
#include "common/logging.hpp"
#include "genome/alphabet.hpp"

namespace crispr::automata {
namespace {

SymbolClass
cls(char c)
{
    return SymbolClass::match(genome::iupacMask(c));
}

TEST(Nfa, BuildsStatesAndEdges)
{
    Nfa nfa;
    StateId a = nfa.addState(cls('A'), StartKind::AllInput);
    StateId b = nfa.addState(cls('C'));
    nfa.addEdge(a, b);
    nfa.setReport(b, 7);
    EXPECT_EQ(nfa.size(), 2u);
    EXPECT_EQ(nfa.edgeCount(), 1u);
    EXPECT_EQ(nfa.startStates(), std::vector<StateId>{a});
    EXPECT_EQ(nfa.reportStates(), std::vector<StateId>{b});
    EXPECT_EQ(nfa.maxReportId(), 7);
    EXPECT_NO_THROW(nfa.validate());
}

TEST(Nfa, FanStatistics)
{
    Nfa nfa;
    StateId a = nfa.addState(cls('A'), StartKind::AllInput);
    StateId b = nfa.addState(cls('C'));
    StateId c = nfa.addState(cls('G'));
    nfa.addEdge(a, b);
    nfa.addEdge(a, c);
    nfa.addEdge(b, c);
    nfa.setReport(c, 0);
    EXPECT_EQ(nfa.maxFanOut(), 2u);
    EXPECT_EQ(nfa.maxFanIn(), 2u);
    NfaStats st = computeStats(nfa);
    EXPECT_EQ(st.states, 3u);
    EXPECT_EQ(st.edges, 3u);
    EXPECT_EQ(st.startStates, 1u);
    EXPECT_EQ(st.reportStates, 1u);
}

TEST(Nfa, MergeOffsetsStateIds)
{
    Nfa a;
    StateId a0 = a.addState(cls('A'), StartKind::AllInput);
    StateId a1 = a.addState(cls('C'));
    a.addEdge(a0, a1);
    a.setReport(a1, 1);

    Nfa b;
    StateId b0 = b.addState(cls('G'), StartKind::AllInput);
    StateId b1 = b.addState(cls('T'));
    b.addEdge(b0, b1);
    b.setReport(b1, 2);

    StateId off = a.merge(b);
    EXPECT_EQ(off, 2u);
    EXPECT_EQ(a.size(), 4u);
    EXPECT_EQ(a.state(2).cls, cls('G'));
    ASSERT_EQ(a.state(2).out.size(), 1u);
    EXPECT_EQ(a.state(2).out[0], 3u);
    EXPECT_EQ(a.state(3).reportId, 2u);
}

TEST(Nfa, TrimRemovesDeadStates)
{
    Nfa nfa;
    StateId a = nfa.addState(cls('A'), StartKind::AllInput);
    StateId b = nfa.addState(cls('C'));
    StateId orphan = nfa.addState(cls('G')); // unreachable
    StateId deadend = nfa.addState(cls('T')); // reaches no report
    nfa.addEdge(a, b);
    nfa.addEdge(a, deadend);
    nfa.addEdge(orphan, b);
    nfa.setReport(b, 0);

    nfa.trim();
    EXPECT_EQ(nfa.size(), 2u);
    EXPECT_EQ(nfa.reportStates().size(), 1u);
    EXPECT_EQ(nfa.startStates().size(), 1u);
    EXPECT_EQ(nfa.edgeCount(), 1u);
}

TEST(Nfa, TrimKeepsEverythingWhenAllLive)
{
    Nfa nfa;
    StateId a = nfa.addState(cls('A'), StartKind::AllInput);
    StateId b = nfa.addState(cls('C'));
    nfa.addEdge(a, b);
    nfa.setReport(b, 3);
    nfa.trim();
    EXPECT_EQ(nfa.size(), 2u);
    EXPECT_EQ(nfa.state(1).reportId, 3u);
}

TEST(Nfa, ValidateCatchesCorruption)
{
    Nfa nfa;
    StateId a = nfa.addState(cls('A'), StartKind::AllInput);
    nfa.setReport(a, 0);
    // Report state with an empty class can never fire.
    Nfa bad;
    StateId s = bad.addState(SymbolClass::none(), StartKind::AllInput);
    bad.setReport(s, 0);
    EXPECT_THROW(bad.validate(), PanicError);
}

TEST(Nfa, AddEdgeBoundsChecked)
{
    Nfa nfa;
    nfa.addState(cls('A'));
    EXPECT_THROW(nfa.addEdge(0, 5), PanicError);
}

} // namespace
} // namespace crispr::automata
