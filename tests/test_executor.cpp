/** @file Concurrency tests for the shared work-stealing Executor:
 *  stealing under skewed task costs, bounded-queue backpressure,
 *  exception capture, deadline/cancellation drops, shutdown with a
 *  backlog, and bit-identical pool-vs-serial scan results. This tier
 *  (label `concurrency`) is the suite CI runs under ThreadSanitizer —
 *  see scripts/ci.sh and the `tsan` CMake preset.
 *
 *  The tests never rely on hardware_concurrency (CI machines may have
 *  a single core): every pool is instanced with an explicit thread
 *  count, and blocking is arranged with gates, not timing.
 */

#include <atomic>
#include <condition_variable>
#include <future>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/executor.hpp"
#include "core/guide.hpp"
#include "core/search.hpp"
#include "genome/chunking.hpp"
#include "test_util.hpp"

namespace crispr {
namespace {

using common::Deadline;
using common::ErrorCode;
using common::ErrorException;
using common::Executor;
using common::ExecutorOptions;

ExecutorOptions
poolOf(unsigned threads, size_t queue_bound = 4096)
{
    ExecutorOptions options;
    options.threads = threads;
    options.queueBound = queue_bound;
    return options;
}

/** A reusable gate: tasks block in wait() until open() is called. */
class Gate
{
  public:
    void
    wait()
    {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock, [this] { return open_; });
    }
    void
    open()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            open_ = true;
        }
        cv_.notify_all();
    }

  private:
    std::mutex mutex_;
    std::condition_variable cv_;
    bool open_ = false;
};

// A producer worker fills its own deque with skew-cost subtasks and
// then parks, so every subtask MUST be stolen by the other workers —
// stealing is asserted deterministically, not probabilistically.
TEST(Executor, StealsSkewedTasksFromABusyWorkersDeque)
{
    Executor pool(poolOf(4));
    constexpr size_t kSubtasks = 64;

    std::atomic<size_t> completed{0};
    std::mutex done_mutex;
    std::condition_variable done_cv;

    auto producer = pool.submit([&] {
        // Runs on a worker thread: nested submissions land in this
        // worker's own deque, bypassing the bounded injection queue.
        for (size_t i = 0; i < kSubtasks; ++i) {
            pool.submit([&, i] {
                // Skewed costs: every 8th subtask is ~20x the rest.
                std::this_thread::sleep_for(std::chrono::microseconds(
                    i % 8 == 0 ? 2000 : 100));
                if (completed.fetch_add(1) + 1 == kSubtasks) {
                    std::lock_guard<std::mutex> lock(done_mutex);
                    done_cv.notify_all();
                }
            });
        }
        // Park this worker until the others have stolen and finished
        // everything; its deque is untouched by its owner meanwhile.
        std::unique_lock<std::mutex> lock(done_mutex);
        done_cv.wait(lock, [&] { return completed == kSubtasks; });
    });
    producer.get();

    EXPECT_EQ(completed, kSubtasks);
    // The producer never popped its own deque, so all 64 subtasks
    // crossed worker boundaries.
    EXPECT_GE(pool.steals(), kSubtasks);
    EXPECT_GE(pool.tasksExecuted(), kSubtasks + 1);
}

TEST(Executor, BoundedQueueBlocksExternalSubmittersUntilDrained)
{
    Executor pool(poolOf(1, /*queue_bound=*/2));

    Gate gate;
    std::atomic<bool> blocker_running{false};
    auto blocker = pool.submit([&] {
        blocker_running = true;
        gate.wait();
    });
    while (!blocker_running)
        std::this_thread::yield();

    // The lone worker is parked in the blocker, so these two sit in
    // the global queue and exactly fill the bound.
    auto f1 = pool.submit([] {});
    auto f2 = pool.submit([] {});

    std::atomic<bool> third_submitted{false};
    std::thread submitter([&] {
        auto f3 = pool.submit([] {});
        third_submitted = true;
        f3.get();
    });

    // Backpressure: the third submit must still be blocked well after
    // the queue filled. (A broken implementation returns quickly and
    // fails the expectation; a correct one can never set the flag
    // before the gate opens, so the sleep cannot make this flaky.)
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    EXPECT_FALSE(third_submitted);

    gate.open();
    submitter.join();
    EXPECT_TRUE(third_submitted);
    blocker.get();
    f1.get();
    f2.get();
    EXPECT_EQ(pool.tasksExecuted(), 4u);
}

TEST(Executor, ExceptionsPropagateThroughFuturesAndPoolSurvives)
{
    Executor pool(poolOf(2));

    auto failing =
        pool.submit([]() -> int { throw std::runtime_error("boom"); });
    try {
        failing.get();
        FAIL() << "expected the task's exception to rethrow";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "boom");
    }

    // The worker that ran the throwing task is still serving.
    auto ok = pool.submit([] { return 42; });
    EXPECT_EQ(ok.get(), 42);
}

TEST(Executor, ExpiredDeadlineDropsTheTaskWithoutRunningIt)
{
    Executor pool(poolOf(1));

    std::atomic<bool> ran{false};
    common::TaskOptions timed;
    timed.deadline = Deadline::after(0.0);
    auto expired = pool.submit([&] { ran = true; }, timed);
    try {
        expired.get();
        FAIL() << "expected DeadlineExceeded";
    } catch (const ErrorException &e) {
        EXPECT_EQ(e.error().code(), ErrorCode::DeadlineExceeded);
    }
    EXPECT_FALSE(ran);

    common::TaskOptions cancelled;
    cancelled.deadline = Deadline::manual();
    cancelled.deadline.cancel();
    auto dropped = pool.submit([&] { ran = true; }, cancelled);
    try {
        dropped.get();
        FAIL() << "expected Cancelled";
    } catch (const ErrorException &e) {
        EXPECT_EQ(e.error().code(), ErrorCode::Cancelled);
    }
    EXPECT_FALSE(ran);
    EXPECT_EQ(pool.dropped(), 2u);
    EXPECT_EQ(pool.tasksExecuted(), 0u);
}

TEST(Executor, ShutdownFinishesInflightAndCancelsTheBacklog)
{
    auto pool = std::make_unique<Executor>(poolOf(1));

    Gate gate;
    std::atomic<bool> inflight_running{false};
    std::atomic<int> backlog_ran{0};
    auto inflight = pool->submit([&] {
        inflight_running = true;
        gate.wait();
    });
    while (!inflight_running)
        std::this_thread::yield();

    std::vector<std::future<void>> backlog;
    for (int i = 0; i < 4; ++i)
        backlog.push_back(pool->submit([&] { ++backlog_ran; }));

    // Destroy the pool while the worker is mid-task with a backlog
    // queued behind it. The destructor blocks joining the worker, so
    // it runs on its own thread and the gate opens afterwards.
    std::thread destroyer([&] { pool.reset(); });
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    gate.open();
    destroyer.join();

    // The in-flight task finished; every queued task was failed, not
    // run and not abandoned.
    inflight.get();
    EXPECT_EQ(backlog_ran, 0);
    for (auto &fut : backlog) {
        try {
            fut.get();
            FAIL() << "expected Cancelled for a queued task";
        } catch (const ErrorException &e) {
            EXPECT_EQ(e.error().code(), ErrorCode::Cancelled);
        }
    }
}

TEST(Executor, ForIndicesRunsEveryIndexOnceAndStopsOnFalse)
{
    Executor pool(poolOf(3));

    constexpr size_t kIndices = 200;
    std::vector<std::atomic<int>> visits(kIndices);
    const size_t ran = pool.forIndices(
        kIndices, 4, {}, [&](size_t index, unsigned lane) {
            EXPECT_LT(lane, 4u);
            ++visits[index];
            return true;
        });
    EXPECT_EQ(ran, kIndices);
    for (size_t i = 0; i < kIndices; ++i)
        EXPECT_EQ(visits[i], 1) << "index " << i;

    // `body` returning false stops further grabs: not every index
    // runs, and the count reported matches the visits made.
    std::atomic<size_t> made{0};
    const size_t partial = pool.forIndices(
        kIndices, 4, {}, [&](size_t, unsigned) {
            return ++made < 5;
        });
    EXPECT_EQ(partial, made);
    EXPECT_LT(partial, kIndices);
    EXPECT_GE(partial, 5u);
}

// The determinism contract behind the whole replumb: a pool-fanned
// chunked scan is bit-identical to the serial path for a fixed seed,
// whatever the lane interleaving was.
TEST(Executor, PoolScanIsBitIdenticalToSerialScan)
{
    const uint64_t seed = test::testSeed(70101);
    Rng rng(seed);
    const genome::Sequence seq = test::randomGenome(rng, 60000);

    std::vector<core::Guide> guides;
    static const char bases[] = "ACGT";
    for (int g = 0; g < 4; ++g) {
        std::string s;
        for (int i = 0; i < 20; ++i)
            s += bases[rng.below(4)];
        guides.push_back(
            core::makeGuide("g" + std::to_string(g), s));
    }

    core::SearchConfig serial;
    serial.maxMismatches = 4;
    serial.threads = 1;
    serial.chunkSize = 4096;
    const core::SearchResult expected =
        core::search(seq, guides, serial);

    Executor pool(poolOf(6));
    for (unsigned threads : {2u, 3u, 6u, 8u}) {
        core::SearchConfig pooled = serial;
        pooled.threads = threads;
        pooled.executor = &pool;
        const core::SearchResult got =
            core::search(seq, guides, pooled);
        EXPECT_EQ(got.hits, expected.hits)
            << "threads=" << threads << " seed=" << seed
            << " (rerun with CRISPR_TEST_SEED=" << seed << ")";
    }
}

// A task submitted with mayBlock (a shard gather join, say) must not
// be picked up by helping waits — only a dedicated worker may run it.
// A scan's helper that executed a task which transitively waits on
// the helper's own thread would deadlock; this pins the skip rule
// (the deadlock itself needed a shard dispatcher mid-scan to steal a
// gather whose sub-request was queued behind that same dispatcher).
TEST(Executor, HelpingWaitsSkipMayBlockTasks)
{
    Executor pool(poolOf(1));
    Gate occupy;
    std::atomic<bool> worker_busy{false};
    // Park the lone worker so every later task sits in the queue and
    // the helping wait below is the only possible executor.
    std::future<void> parked = pool.submit([&] {
        worker_busy.store(true);
        occupy.wait();
    });
    while (!worker_busy.load())
        std::this_thread::yield();

    common::TaskOptions blocking;
    blocking.mayBlock = true;
    std::atomic<bool> blocking_ran{false};
    std::future<void> blocked =
        pool.submit([&] { blocking_ran.store(true); }, blocking);
    std::future<void> plain = pool.submit([] {});

    // The default (non-opt-in) helping wait drains the plain task —
    // queued BEHIND the mayBlock one — and leaves the mayBlock task
    // for the worker.
    pool.wait(plain);
    plain.get();
    EXPECT_FALSE(blocking_ran.load());
    EXPECT_NE(blocked.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);

    // An opted-in wait (a coordinator joining its own gathers) may
    // execute it inline.
    pool.wait(blocked, /*include_blocking=*/true);
    blocked.get();
    EXPECT_TRUE(blocking_ran.load());
    occupy.open();
    parked.get();
}

// One resolver for the 0-means-all-cores convention: the genome layer
// delegates to the executor, so nested scan paths can't each invent
// their own hardware-concurrency answer and multiply worker counts.
TEST(Executor, ResolveThreadsIsTheSingleImplementation)
{
    EXPECT_EQ(genome::resolveThreads(0), Executor::resolveThreads(0));
    EXPECT_EQ(genome::resolveThreads(5), 5u);
    EXPECT_EQ(Executor::resolveThreads(5), 5u);
    EXPECT_GE(Executor::resolveThreads(0), 1u);
}

} // namespace
} // namespace crispr
