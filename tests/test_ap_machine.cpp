/** @file Unit tests for the AP machine model. */

#include <gtest/gtest.h>

#include "ap/machine.hpp"
#include "automata/builders.hpp"
#include "common/logging.hpp"
#include "test_util.hpp"

namespace crispr::ap {
namespace {

using automata::HammingSpec;
using automata::StartKind;
using automata::SymbolClass;

HammingSpec
pamFirstSpec(const std::string &pattern, int d, size_t pam_len,
             uint32_t id = 0)
{
    HammingSpec spec;
    spec.masks = genome::masksFromIupac(pattern);
    spec.maxMismatches = d;
    spec.mismatchLo = pam_len;
    spec.mismatchHi = spec.masks.size();
    spec.reportId = id;
    return spec;
}

TEST(ApMachine, FromNfaPreservesStructure)
{
    crispr::Rng rng(3);
    auto spec = crispr::test::randomGuideSpec(rng, 8, 3, 2, 5);
    automata::Nfa nfa = automata::buildHammingNfa(spec);
    ApMachine m = fromNfa(nfa);
    EXPECT_EQ(m.size(), nfa.size());
    MachineStats st = m.stats();
    EXPECT_EQ(st.stes, nfa.size());
    EXPECT_EQ(st.counters, 0u);
    EXPECT_EQ(st.gates, 0u);
    EXPECT_EQ(st.wires, nfa.edgeCount());
}

TEST(ApMachine, CounterDesignResourceShape)
{
    // PAM(3) + guide(20): 3 PAM STEs + 20 chain + 20 detectors,
    // 1 counter, 1 gate — O(L), independent of d.
    auto spec =
        pamFirstSpec("CCN" "ACGTACGTACGTACGTACGT", 3, 3);
    ApMachine m = buildCounterMachine(spec);
    MachineStats st = m.stats();
    EXPECT_EQ(st.stes, 43u);
    EXPECT_EQ(st.counters, 1u);
    EXPECT_EQ(st.gates, 1u);

    auto spec5 = pamFirstSpec("CCN" "ACGTACGTACGTACGTACGT", 5, 3);
    EXPECT_EQ(buildCounterMachine(spec5).stats().stes, 43u);
}

TEST(ApMachine, CounterDesignRequiresPamFirst)
{
    HammingSpec site_order;
    site_order.masks = genome::masksFromIupac("ACGTNGG");
    site_order.maxMismatches = 1;
    site_order.mismatchLo = 0;
    site_order.mismatchHi = 4;
    EXPECT_THROW(buildCounterMachine(site_order), FatalError);

    // Empty mismatch region.
    HammingSpec all_exact;
    all_exact.masks = genome::masksFromIupac("ACGT");
    all_exact.maxMismatches = 0;
    all_exact.mismatchLo = 4;
    all_exact.mismatchHi = 4;
    EXPECT_THROW(buildCounterMachine(all_exact), FatalError);
}

TEST(ApMachine, ValidateCatchesBadWiring)
{
    ApMachine m;
    ElemId ste = m.addSte(SymbolClass::any(), StartKind::AllInput);
    ElemId ctr = m.addCounter(2, CounterMode::Latch);
    ElemId gate = m.addGate(GateType::And);
    m.connect(ste, gate);
    m.connect(ste, ctr, Port::CountUp);

    // Counter driven on Port::In is invalid.
    ApMachine bad1 = m;
    bad1.connect(ste, ctr, Port::In);
    EXPECT_THROW(bad1.validate(), FatalError);

    // Gate-to-gate wiring is invalid (single combinational layer).
    ApMachine bad2 = m;
    ElemId gate2 = bad2.addGate(GateType::Or);
    bad2.connect(gate, gate2);
    EXPECT_THROW(bad2.validate(), FatalError);

    // Inverted STE input is invalid.
    ApMachine bad3 = m;
    ElemId ste2 = bad3.addSte(SymbolClass::any());
    bad3.connect(ste, ste2, Port::In, /*inverted=*/true);
    EXPECT_THROW(bad3.validate(), FatalError);

    // A gate with no inputs is invalid.
    ApMachine bad4;
    bad4.addGate(GateType::And);
    EXPECT_THROW(bad4.validate(), FatalError);
}

TEST(ApMachine, CounterTargetMustBePositive)
{
    ApMachine m;
    EXPECT_THROW(m.addCounter(0, CounterMode::Latch), FatalError);
}

TEST(ApMachine, MergeOffsetsWiring)
{
    auto spec = pamFirstSpec("CCN" "ACGT", 1, 3, 7);
    ApMachine a = buildCounterMachine(spec);
    const size_t one = a.size();
    const size_t wires = a.wires().size();
    ApMachine b = buildCounterMachine(spec);
    mergeMachines(a, b);
    EXPECT_EQ(a.size(), 2 * one);
    EXPECT_EQ(a.wires().size(), 2 * wires);
    // Second copy's wires reference the second copy's elements.
    for (size_t w = wires; w < a.wires().size(); ++w) {
        EXPECT_GE(a.wires()[w].from, one);
        EXPECT_GE(a.wires()[w].to, one);
    }
    EXPECT_NO_THROW(a.validate());
}

} // namespace
} // namespace crispr::ap
