/** @file Unit tests for the FPGA fabric and resource model. */

#include <gtest/gtest.h>

#include "automata/builders.hpp"
#include "baselines/brute.hpp"
#include "fpga/fabric.hpp"
#include "test_util.hpp"

namespace crispr::fpga {
namespace {

using automata::HammingSpec;
using automata::NfaStats;

TEST(FpgaFabric, EqualsGoldenScan)
{
    crispr::Rng rng(71);
    for (int d = 0; d <= 3; ++d) {
        auto spec = crispr::test::randomGuideSpec(rng, 10, 3, d, 1);
        FpgaFabric fabric(automata::buildHammingNfa(spec));
        genome::Sequence g = crispr::test::randomGenome(rng, 3000, 0.01);
        auto got = fabric.scanAll(g);
        auto want = baselines::bruteForceScan(g, std::span(&spec, 1));
        EXPECT_EQ(got, want) << "d=" << d;
    }
}

TEST(FpgaFabric, RunStatsCountCyclesAndReports)
{
    crispr::Rng rng(72);
    auto spec = crispr::test::randomGuideSpec(rng, 8, 3, 1, 0);
    FpgaFabric fabric(automata::buildHammingNfa(spec));
    genome::Sequence g = crispr::test::randomGenome(rng, 512);
    FpgaRunStats stats = fabric.run(g.codes(), nullptr);
    EXPECT_EQ(stats.cycles, 512u);
    EXPECT_GT(stats.stateToggles, 0u);
    EXPECT_GT(fabric.kernelSeconds(stats), 0.0);
}

TEST(FpgaResource, EstimatesScaleWithAutomatonSize)
{
    NfaStats small{100, 200, 1, 4, 2, 2};
    NfaStats large{10000, 20000, 100, 400, 2, 2};
    FpgaDeviceSpec spec;
    ResourceEstimate rs = estimateResources(small, spec);
    ResourceEstimate rl = estimateResources(large, spec);
    EXPECT_LT(rs.luts, rl.luts);
    EXPECT_LT(rs.flipflops, rl.flipflops);
    EXPECT_TRUE(rs.fits);
    EXPECT_TRUE(rl.fits);
    // Congestion: the larger design closes timing at a lower clock.
    EXPECT_GT(rs.clockHz, rl.clockHz);
    EXPECT_GE(rs.clockHz, spec.minClockHz);
}

TEST(FpgaResource, OverCapacityNeedsPasses)
{
    NfaStats huge{1000000, 2000000, 1000, 4000, 2, 2};
    ResourceEstimate r = estimateResources(huge);
    EXPECT_FALSE(r.fits);
    EXPECT_GE(r.passes, 2u);
}

TEST(FpgaResource, ClockWithinBounds)
{
    FpgaDeviceSpec spec;
    NfaStats tiny{1, 0, 1, 1, 0, 0};
    ResourceEstimate r = estimateResources(tiny, spec);
    EXPECT_LE(r.clockHz, spec.baseClockHz);
    EXPECT_GE(r.clockHz, spec.minClockHz);
}

TEST(FpgaFabric, TimeBreakdownPacedByClockOrPcie)
{
    crispr::Rng rng(73);
    auto spec = crispr::test::randomGuideSpec(rng, 10, 3, 2, 0);
    FpgaFabric fabric(automata::buildHammingNfa(spec));
    const uint64_t symbols = 100'000'000;
    FpgaTimeBreakdown t = fabric.timeBreakdown(symbols);
    const double stream =
        static_cast<double>(symbols) / fabric.resources().clockHz;
    EXPECT_GE(t.kernelSeconds, stream * 0.999);
    EXPECT_GT(t.totalSeconds(), t.kernelSeconds); // + configure
}

TEST(FpgaFabric, KernelTimeScalesWithPasses)
{
    // Same stats, one device pass vs forced multi-pass estimate.
    NfaStats stats{400000, 800000, 10, 20, 2, 2};
    FpgaDeviceSpec spec;
    ResourceEstimate r = estimateResources(stats, spec);
    EXPECT_GE(r.passes, 2u);
    // timeBreakdown multiplies by passes; verified via FpgaFabric on a
    // small automaton with a doctored spec instead (white-box check of
    // estimateResources consistency).
    EXPECT_GT(static_cast<double>(r.passes) * 1.0, 1.0);
}

} // namespace
} // namespace crispr::fpga
