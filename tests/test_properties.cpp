/** @file Randomised property tests: all functional engines must agree
 *  on arbitrary (degenerate-mask, N-salted) pattern/genome inputs, not
 *  just the guide+PAM shapes the rest of the suite uses. */

#include <algorithm>

#include <gtest/gtest.h>

#include "ap/simulator.hpp"
#include "automata/builders.hpp"
#include "automata/dfa.hpp"
#include "automata/hopcroft.hpp"
#include "baselines/brute.hpp"
#include "baselines/casoffinder.hpp"
#include "baselines/casot.hpp"
#include "fpga/fabric.hpp"
#include "gpu/infant2.hpp"
#include "core/score.hpp"
#include "core/session.hpp"
#include "hscan/multipattern.hpp"
#include "hscan/parallel.hpp"
#include "hscan/prefilter.hpp"
#include "test_util.hpp"

namespace crispr {
namespace {

using automata::HammingSpec;
using automata::ReportEvent;

class RandomizedCrossValidation : public ::testing::TestWithParam<int>
{
};

TEST_P(RandomizedCrossValidation, AllEnginesAgree)
{
    Rng rng(static_cast<uint64_t>(GetParam()) * 7919);

    // Random multi-pattern set with arbitrary mismatch windows and
    // degenerate masks, over an N-salted genome.
    std::vector<HammingSpec> specs;
    const size_t num = 1 + rng.below(4);
    for (uint32_t i = 0; i < num; ++i) {
        const size_t len = 2 + rng.below(14);
        const int d = static_cast<int>(rng.below(4));
        specs.push_back(test::randomSpec(rng, len, d, i));
    }
    genome::Sequence g = test::randomGenome(rng, 2500, 0.03);

    const auto want = baselines::bruteForceScan(g, specs);

    // Reference interpreter.
    {
        std::vector<automata::Nfa> nfas;
        for (const auto &s : specs)
            nfas.push_back(automata::buildHammingNfa(s));
        automata::Nfa u = automata::unionNfas(nfas);
        automata::NfaInterpreter interp(u);
        auto got = interp.scanAll(g);
        automata::normalizeEvents(got);
        EXPECT_EQ(got, want) << "interpreter";

        // FPGA fabric.
        fpga::FpgaFabric fabric(u);
        EXPECT_EQ(fabric.scanAll(g), want) << "fpga";

        // iNFAnt2 with small chunks to stress seam handling.
        gpu::Infant2Engine infant(u, gpu::SimtModel{}, 256, 40);
        EXPECT_EQ(infant.scanAll(g), want) << "infant2";

        // AP matrix machine.
        ap::ApMachine machine = ap::fromNfa(u);
        ap::ApSimulator sim(machine);
        EXPECT_EQ(sim.scanAll(g), want) << "ap";

        // DFA (when it fits) incl. minimisation.
        auto dfa = automata::subsetConstruct(u, 1u << 16);
        if (dfa) {
            auto got_dfa = dfa->scanAll(g);
            automata::normalizeEvents(got_dfa);
            EXPECT_EQ(got_dfa, want) << "dfa";
            auto min = automata::hopcroftMinimize(*dfa);
            auto got_min = min.scanAll(g);
            automata::normalizeEvents(got_min);
            EXPECT_EQ(got_min, want) << "min-dfa";
        }
    }

    // HScan bit-parallel.
    {
        hscan::DatabaseOptions opts;
        opts.mode = hscan::ScanMode::BitParallel;
        hscan::Scanner scanner(hscan::Database::compile(specs, opts));
        auto got = scanner.scanAll(g);
        automata::normalizeEvents(got);
        EXPECT_EQ(got, want) << "shift-or";
    }

    // Baseline tools.
    EXPECT_EQ(baselines::casOffinderScan(g, specs).events, want)
        << "casoffinder";
    EXPECT_EQ(baselines::casOtScan(g, specs).events, want)
        << "casot-direct";
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomizedCrossValidation,
                         ::testing::Range(1, 13));

class GuideShapeCrossValidation : public ::testing::TestWithParam<int>
{
};

TEST_P(GuideShapeCrossValidation, RealisticShapesAgree)
{
    // Guide(20) + NRG PAM, both strands, planted near-miss sites at the
    // d boundary (exactly d and exactly d+1 mismatches).
    const int d = 1 + GetParam() % 4;
    Rng rng(static_cast<uint64_t>(GetParam()) * 104729);
    genome::Sequence g = test::randomGenome(rng, 8000);

    genome::Sequence guide = genome::randomGuide(rng, 20);
    genome::Sequence site = guide;
    site.append(genome::Sequence::fromString("AGG"));
    // Plant: one site at exactly d, one at exactly d+1 (must not hit).
    genome::Sequence at_d = genome::mutateSite(site, d, 0, 20, rng);
    genome::Sequence over_d = genome::mutateSite(site, d + 1, 0, 20, rng);
    genome::plantSite(g, 1000, at_d);
    genome::plantSite(g, 3000, over_d);

    HammingSpec fwd;
    fwd.masks = genome::masksFromIupac(guide.str() + "NRG");
    fwd.maxMismatches = d;
    fwd.mismatchLo = 0;
    fwd.mismatchHi = 20;
    fwd.reportId = 0;
    HammingSpec rev;
    rev.masks = genome::reverseComplementMasks(fwd.masks);
    rev.maxMismatches = d;
    rev.mismatchLo = 3;
    rev.mismatchHi = 23;
    rev.reportId = 1;
    std::vector<HammingSpec> specs = {fwd, rev};

    auto want = baselines::bruteForceScan(g, specs);
    EXPECT_TRUE(std::find(want.begin(), want.end(),
                          ReportEvent{0, 1022}) != want.end());
    EXPECT_TRUE(std::find(want.begin(), want.end(),
                          ReportEvent{0, 3022}) == want.end());

    hscan::Scanner scanner(hscan::Database::compile(specs));
    auto got = scanner.scanAll(g);
    automata::normalizeEvents(got);
    EXPECT_EQ(got, want);

    // PAM-anchored prefilter engine (the PAM is the anchor here).
    hscan::PrefilterMatcher prefilter(specs);
    EXPECT_EQ(prefilter.scanAll(g), want);

    // Multi-threaded scan with odd seams.
    hscan::ParallelOptions popts;
    popts.threads = 3;
    popts.chunkSize = 997;
    EXPECT_EQ(hscan::parallelScan(hscan::Database::compile(specs), g,
                                  popts),
              want);

    baselines::CasOtConfig idx;
    idx.mode = baselines::CasOtMode::Indexed;
    EXPECT_EQ(baselines::casOtScan(g, specs, idx).events, want);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GuideShapeCrossValidation,
                         ::testing::Range(0, 8));

class ScoredHitProperty : public ::testing::TestWithParam<int>
{
};

// Differential scoring property: the mismatch-position mask filled
// in-scan equals the post-hoc hitMismatchPositions() recomputation for
// every hit on every engine (the bit-level twin of the penalty
// equality the scoring tier proves).
TEST_P(ScoredHitProperty, InScanMaskMatchesPostHocOnEveryEngine)
{
    const uint64_t seed =
        test::testSeed(0x5C03Eull * 1000003 + GetParam());
    Rng rng(seed);
    genome::Sequence g = test::randomGenome(rng, 6000);

    std::vector<core::Guide> guides;
    for (int i = 0; i < 2; ++i) {
        guides.push_back(core::makeGuide(
            "g" + std::to_string(i),
            genome::randomGuide(rng, 20).str()));
        genome::Sequence site = guides.back().protospacer;
        site.append(genome::Sequence::fromString("AGG"));
        for (int copy = 0; copy < 4; ++copy) {
            genome::Sequence mutated = genome::mutateSite(
                site, static_cast<int>(rng.below(4)), 0, 20, rng);
            if (rng.chance(0.3))
                mutated = mutated.reverseComplement();
            genome::plantSite(
                g, rng.below(g.size() - mutated.size() + 1), mutated);
        }
    }

    core::SearchConfig cfg;
    cfg.maxMismatches = 3;
    cfg.params.fullSimSymbolLimit = 4 << 10;
    core::SearchSession session(guides, cfg, /*cache_capacity=*/16);
    for (core::EngineKind kind : core::allEngines()) {
        core::SearchConfig engine_cfg = cfg;
        engine_cfg.engine = kind;
        auto got = session.trySearch(g, engine_cfg);
        if (!got.ok()) {
            const auto code = got.error().code();
            if (kind == core::EngineKind::HscanDfa &&
                (code == common::ErrorCode::CompileFailed ||
                 code == common::ErrorCode::ResourceExhausted))
                continue;
            FAIL() << "seed=" << seed << " engine="
                   << core::engineName(kind)
                   << " failed: " << got.error().str();
        }
        for (const core::OffTargetHit &hit : got.value().hits) {
            const auto positions = core::hitMismatchPositions(
                g, got.value().patterns, hit);
            EXPECT_EQ(hit.mismatchMask,
                      core::mismatchPositionsToMask(positions))
                << "seed=" << seed
                << " engine=" << core::engineName(kind)
                << " guide=" << hit.guide << " start=" << hit.start;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScoredHitProperty,
                         ::testing::Range(0, 4));

} // namespace
} // namespace crispr
