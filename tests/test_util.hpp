/**
 * @file
 * Shared helpers for the test suite: random pattern/genome generation
 * and event-set comparison.
 */

#ifndef CRISPR_TESTS_TEST_UTIL_HPP_
#define CRISPR_TESTS_TEST_UTIL_HPP_

#include <cstdlib>
#include <string>
#include <vector>

#include "automata/builders.hpp"
#include "automata/interp.hpp"
#include "common/rng.hpp"
#include "genome/generator.hpp"
#include "genome/sequence.hpp"

namespace crispr::test {

/**
 * Deterministic seed for randomized suites: the CRISPR_TEST_SEED
 * environment variable overrides `fallback` when set. Failure
 * messages print the seed actually used, so a red run reproduces
 * with `CRISPR_TEST_SEED=<printed seed> ctest -R <test>`.
 */
inline uint64_t
testSeed(uint64_t fallback)
{
    if (const char *env = std::getenv("CRISPR_TEST_SEED"))
        return std::strtoull(env, nullptr, 10);
    return fallback;
}

/** A random concrete-base Hamming spec with guide+PAM layout. */
inline automata::HammingSpec
randomGuideSpec(Rng &rng, size_t guide_len, size_t pam_len, int d,
                uint32_t report_id)
{
    automata::HammingSpec spec;
    for (size_t i = 0; i < guide_len; ++i)
        spec.masks.push_back(
            static_cast<genome::BaseMask>(1u << rng.below(4)));
    for (size_t i = 0; i < pam_len; ++i) {
        // PAM positions get random (possibly degenerate) IUPAC masks.
        genome::BaseMask m =
            static_cast<genome::BaseMask>(1 + rng.below(15));
        spec.masks.push_back(m);
    }
    spec.maxMismatches = d;
    spec.mismatchLo = 0;
    spec.mismatchHi = guide_len;
    spec.reportId = report_id;
    return spec;
}

/** A fully random spec: degenerate masks anywhere, random mm window. */
inline automata::HammingSpec
randomSpec(Rng &rng, size_t len, int d, uint32_t report_id)
{
    automata::HammingSpec spec;
    for (size_t i = 0; i < len; ++i)
        spec.masks.push_back(
            static_cast<genome::BaseMask>(1 + rng.below(15)));
    spec.maxMismatches = d;
    size_t a = rng.below(len + 1);
    size_t b = rng.below(len + 1);
    spec.mismatchLo = std::min(a, b);
    spec.mismatchHi = std::max(a, b);
    spec.reportId = report_id;
    return spec;
}

/** Short uniform random genome, optionally salted with Ns. */
inline genome::Sequence
randomGenome(Rng &rng, size_t len, double n_fraction = 0.0)
{
    std::vector<uint8_t> codes(len);
    for (auto &c : codes) {
        c = n_fraction > 0.0 && rng.chance(n_fraction)
                ? genome::kCodeN
                : static_cast<uint8_t>(rng.below(4));
    }
    return genome::Sequence(std::move(codes));
}

/** Pretty-print an event list for failure messages. */
inline std::string
eventsToString(const std::vector<automata::ReportEvent> &events,
               size_t limit = 10)
{
    std::string out;
    for (size_t i = 0; i < events.size() && i < limit; ++i) {
        out += "(" + std::to_string(events[i].reportId) + "," +
               std::to_string(events[i].end) + ") ";
    }
    if (events.size() > limit)
        out += "...";
    return out;
}

} // namespace crispr::test

#endif // CRISPR_TESTS_TEST_UTIL_HPP_
