/** @file Unit tests for the iNFAnt2 GPU engine simulator. */

#include <bit>

#include <gtest/gtest.h>

#include "automata/builders.hpp"
#include "baselines/brute.hpp"
#include "common/logging.hpp"
#include "gpu/infant2.hpp"
#include "test_util.hpp"

namespace crispr::gpu {
namespace {

using automata::HammingSpec;
using automata::Nfa;

Nfa
unionOf(const std::vector<HammingSpec> &specs)
{
    std::vector<Nfa> nfas;
    for (const auto &s : specs)
        nfas.push_back(automata::buildHammingNfa(s));
    return automata::unionNfas(nfas);
}

TEST(TransitionGraph, CountsAndLists)
{
    // Exact chain A->C: destination C matches symbol C only, so the C
    // list holds the one edge; start state A is a persistent start on A.
    Nfa nfa = automata::buildExactNfa(genome::masksFromIupac("AC"), 0);
    TransitionGraph graph(nfa);
    EXPECT_EQ(graph.numStates(), 2u);
    EXPECT_EQ(graph.totalTransitions(), 1u);
    EXPECT_EQ(graph.transitions(genome::baseCode('C')).size(), 1u);
    EXPECT_TRUE(graph.transitions(genome::baseCode('A')).empty());
    EXPECT_EQ(graph.persistentStarts(genome::baseCode('A')).size(), 1u);
    EXPECT_TRUE(graph.persistentStarts(genome::baseCode('C')).empty());
    EXPECT_EQ(graph.reportOf(1), 0);
    EXPECT_EQ(graph.reportOf(0), -1);
}

TEST(TransitionGraph, ListsSortedByDestination)
{
    crispr::Rng rng(81);
    auto spec = crispr::test::randomGuideSpec(rng, 10, 3, 2, 0);
    TransitionGraph graph(automata::buildHammingNfa(spec));
    for (uint8_t c = 0; c < genome::kNumSymbols; ++c) {
        const auto &list = graph.transitions(c);
        for (size_t i = 1; i < list.size(); ++i)
            EXPECT_LE(list[i - 1].dst, list[i].dst);
    }
}

TEST(Infant2, EqualsGoldenScan)
{
    crispr::Rng rng(82);
    for (int d = 0; d <= 3; ++d) {
        std::vector<HammingSpec> specs;
        for (uint32_t i = 0; i < 3; ++i)
            specs.push_back(
                crispr::test::randomGuideSpec(rng, 10, 3, d, i));
        Infant2Engine engine(unionOf(specs), SimtModel{}, 512, 32);
        genome::Sequence g = crispr::test::randomGenome(rng, 3000, 0.01);
        auto got = engine.scanAll(g);
        auto want = baselines::bruteForceScan(g, specs);
        EXPECT_EQ(got, want) << "d=" << d;
    }
}

TEST(Infant2, ChunkSeamsProduceNoDuplicatesOrGaps)
{
    // Plant a site exactly straddling a chunk boundary.
    crispr::Rng rng(83);
    auto spec = crispr::test::randomGuideSpec(rng, 12, 3, 1, 0);
    genome::Sequence g = crispr::test::randomGenome(rng, 2048);
    genome::Sequence site;
    for (size_t j = 0; j < 15; ++j) {
        genome::BaseMask m = spec.masks[j];
        site.push_back(static_cast<uint8_t>(
            std::countr_zero(static_cast<unsigned>(m))));
    }
    genome::plantSite(g, 505, site); // straddles the 512 boundary

    Infant2Engine engine(automata::buildHammingNfa(spec), SimtModel{},
                         512, 32);
    auto got = engine.scanAll(g);
    auto want = baselines::bruteForceScan(g, std::span(&spec, 1));
    EXPECT_EQ(got, want);
}

TEST(Infant2, WorkCountersMatchHistogramPrediction)
{
    crispr::Rng rng(84);
    auto spec = crispr::test::randomGuideSpec(rng, 10, 3, 2, 0);
    Nfa nfa = automata::buildHammingNfa(spec);
    genome::Sequence g = crispr::test::randomGenome(rng, 4096, 0.01);

    // Single chunk covering everything: the histogram prediction is
    // exact (no overlap approximation).
    Infant2Engine engine(nfa, SimtModel{}, 1 << 20, 32);
    engine.scanAll(g);

    uint64_t hist[genome::kNumSymbols] = {};
    for (size_t i = 0; i < g.size(); ++i)
        ++hist[g[i]];
    Infant2Work predicted = workFromHistogram(
        engine.graph(), hist, g.size(), 1 << 20, 32);
    EXPECT_EQ(engine.work().transitionsFetched,
              predicted.transitionsFetched);
    EXPECT_EQ(engine.work().startInjections,
              predicted.startInjections);
    EXPECT_EQ(engine.work().symbols, predicted.symbols);
    EXPECT_EQ(engine.work().chunks, predicted.chunks);
}

TEST(Infant2, TimeGrowsWithMismatchBudget)
{
    // The paper's GPU finding: the transition-list fetch cost grows
    // with automaton size, i.e. with d.
    crispr::Rng rng(85);
    genome::Sequence g = crispr::test::randomGenome(rng, 20000);
    double prev = 0.0;
    for (int d = 0; d <= 3; ++d) {
        std::vector<HammingSpec> specs;
        Rng r2(4);
        for (uint32_t i = 0; i < 4; ++i)
            specs.push_back(
                crispr::test::randomGuideSpec(r2, 20, 3, d, i));
        Infant2Engine engine(unionOf(specs), SimtModel{}, 4096, 32);
        engine.scanAll(g);
        double t = engine.estimateTime().kernelSeconds;
        EXPECT_GT(t, prev) << "d=" << d;
        prev = t;
    }
}

TEST(Infant2, RejectsBadChunking)
{
    crispr::Rng rng(86);
    auto spec = crispr::test::randomGuideSpec(rng, 8, 3, 1, 0);
    Nfa nfa = automata::buildHammingNfa(spec);
    EXPECT_THROW(Infant2Engine(nfa, SimtModel{}, 0, 0), FatalError);
    EXPECT_THROW(Infant2Engine(nfa, SimtModel{}, 64, 64), FatalError);
}

TEST(Infant2, TransferIncludesTablesAndGenome)
{
    crispr::Rng rng(87);
    auto spec = crispr::test::randomGuideSpec(rng, 10, 3, 2, 0);
    Infant2Engine engine(automata::buildHammingNfa(spec));
    genome::Sequence g = crispr::test::randomGenome(rng, 10000);
    engine.scanAll(g);
    Infant2Time t = engine.estimateTime();
    SimtModel model;
    EXPECT_GT(t.transferSeconds,
              static_cast<double>(g.size()) / (model.pcieGBs * 1e9) *
                  0.999);
    EXPECT_GT(t.totalSeconds(), t.kernelSeconds);
}

} // namespace
} // namespace crispr::gpu
