/** @file Unit tests for the HScan database and scanner facade. */

#include <gtest/gtest.h>

#include "baselines/brute.hpp"
#include "common/logging.hpp"
#include "hscan/multipattern.hpp"
#include "test_util.hpp"

namespace crispr::hscan {
namespace {

using automata::HammingSpec;

std::vector<HammingSpec>
smallSpecs(Rng &rng, int d, size_t count = 3)
{
    std::vector<HammingSpec> specs;
    for (uint32_t i = 0; i < count; ++i)
        specs.push_back(crispr::test::randomGuideSpec(rng, 8, 3, d, i));
    return specs;
}

TEST(Database, AutoPicksDfaForSmallSets)
{
    Rng rng(1);
    Database db = Database::compile(smallSpecs(rng, 1));
    EXPECT_EQ(db.effectiveMode(), ScanMode::Dfa);
    EXPECT_TRUE(db.dfaPrototype().has_value());
}

TEST(Database, AutoFallsBackToBitParallel)
{
    Rng rng(2);
    DatabaseOptions opts;
    opts.maxDfaStates = 8; // absurdly small cap
    Database db = Database::compile(smallSpecs(rng, 2), opts);
    EXPECT_EQ(db.effectiveMode(), ScanMode::BitParallel);
    EXPECT_FALSE(db.dfaPrototype().has_value());
}

TEST(Database, ForcedDfaOverBudgetIsFatal)
{
    Rng rng(3);
    DatabaseOptions opts;
    opts.mode = ScanMode::Dfa;
    opts.maxDfaStates = 8;
    EXPECT_THROW(Database::compile(smallSpecs(rng, 2), opts), FatalError);
}

TEST(Database, EmptyIsFatal)
{
    EXPECT_THROW(Database::compile({}), FatalError);
}

TEST(Database, SerializeRoundTrip)
{
    Rng rng(4);
    auto specs = smallSpecs(rng, 2);
    Database db = Database::compile(specs);
    auto blob = db.serialize();
    Database back = Database::deserialize(blob);
    EXPECT_EQ(back.effectiveMode(), db.effectiveMode());
    ASSERT_EQ(back.specs().size(), specs.size());
    for (size_t i = 0; i < specs.size(); ++i) {
        EXPECT_EQ(back.specs()[i].masks, specs[i].masks);
        EXPECT_EQ(back.specs()[i].maxMismatches,
                  specs[i].maxMismatches);
        EXPECT_EQ(back.specs()[i].mismatchLo, specs[i].mismatchLo);
        EXPECT_EQ(back.specs()[i].mismatchHi, specs[i].mismatchHi);
        EXPECT_EQ(back.specs()[i].reportId, specs[i].reportId);
    }
}

TEST(Database, DeserializeRejectsGarbage)
{
    EXPECT_THROW(Database::deserialize({1, 2, 3}), FatalError);
    Rng rng(5);
    auto blob = Database::compile(smallSpecs(rng, 1)).serialize();
    blob.pop_back();
    EXPECT_THROW(Database::deserialize(blob), FatalError);
    blob.push_back(0);
    blob.push_back(0);
    EXPECT_THROW(Database::deserialize(blob), FatalError);
}

TEST(Scanner, BothPathsAgreeWithGolden)
{
    Rng rng(6);
    auto specs = smallSpecs(rng, 2, 4);
    genome::Sequence g = crispr::test::randomGenome(rng, 4000, 0.01);
    auto want = baselines::bruteForceScan(g, specs);

    for (ScanMode mode : {ScanMode::Dfa, ScanMode::BitParallel}) {
        DatabaseOptions opts;
        opts.mode = mode;
        opts.maxDfaStates = 1u << 20;
        Database db = Database::compile(specs, opts);
        Scanner scanner(db);
        auto got = scanner.scanAll(g);
        automata::normalizeEvents(got);
        EXPECT_EQ(got, want) << "mode " << static_cast<int>(mode);
        EXPECT_EQ(scanner.mode(), mode);
    }
}

TEST(Scanner, StatsAccumulateAndReset)
{
    Rng rng(7);
    Database db = Database::compile(smallSpecs(rng, 0));
    Scanner scanner(db);
    genome::Sequence g = crispr::test::randomGenome(rng, 100);
    scanner.scanAll(g);
    EXPECT_EQ(scanner.stats().symbols, 100u);
    scanner.reset();
    EXPECT_EQ(scanner.stats().symbols, 0u);
}

TEST(Scanner, ChunkedScanEqualsWhole)
{
    Rng rng(8);
    auto specs = smallSpecs(rng, 2);
    genome::Sequence g = crispr::test::randomGenome(rng, 900);
    Database db = Database::compile(specs);
    Scanner whole(db);
    auto expect = whole.scanAll(g);

    Scanner chunked(db);
    chunked.reset();
    std::vector<automata::ReportEvent> got;
    auto sink = [&](uint32_t id, uint64_t end) {
        got.push_back(automata::ReportEvent{id, end});
    };
    for (size_t at = 0; at < g.size(); at += 111) {
        size_t n = std::min<size_t>(111, g.size() - at);
        chunked.scan({g.data() + at, n}, sink, at);
    }
    EXPECT_EQ(got, expect);
    EXPECT_EQ(chunked.stats().symbols, g.size());
}

TEST(Database, InfoMentionsPathAndCounts)
{
    Rng rng(9);
    Database db = Database::compile(smallSpecs(rng, 1));
    std::string info = db.info();
    EXPECT_NE(info.find("3 patterns"), std::string::npos);
    EXPECT_NE(info.find("dfa"), std::string::npos);
}

} // namespace
} // namespace crispr::hscan
