/** @file Unit tests for the streaming FASTA reader. */

#include <sstream>

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "genome/fasta.hpp"
#include "genome/fasta_stream.hpp"
#include "hscan/multipattern.hpp"
#include "test_util.hpp"

namespace crispr::genome {
namespace {

std::string
sampleFasta()
{
    return ">chr1 first\nACGTACGT\nACGT\n"
           ">chr2\nTT\r\nTT\n\n"
           ">chr3\nGGGgggNRY\n";
}

Sequence
streamAll(const std::string &text, size_t chunk)
{
    std::istringstream in(text);
    FastaStreamReader reader(in);
    Sequence all;
    std::vector<uint8_t> buf;
    while (reader.next(chunk, buf))
        for (uint8_t c : buf)
            all.push_back(c);
    return all;
}

TEST(FastaStream, MatchesConcatenatedWholeFileRead)
{
    std::istringstream in(sampleFasta());
    auto records = readFasta(in);
    Sequence want = concatenateRecords(records);

    for (size_t chunk : {1u, 3u, 7u, 100u, 10000u})
        EXPECT_EQ(streamAll(sampleFasta(), chunk), want)
            << "chunk " << chunk;
}

TEST(FastaStream, TracksRecordOffsets)
{
    std::istringstream in(sampleFasta());
    FastaStreamReader reader(in);
    std::vector<uint8_t> buf;
    while (reader.next(5, buf)) {
    }
    ASSERT_EQ(reader.records().size(), 3u);
    EXPECT_EQ(reader.records()[0].name, "chr1");
    EXPECT_EQ(reader.records()[0].start, 0u);
    EXPECT_EQ(reader.records()[1].name, "chr2");
    EXPECT_EQ(reader.records()[1].start, 13u); // 12 bases + separator
    EXPECT_EQ(reader.records()[2].name, "chr3");
    EXPECT_EQ(reader.records()[2].start, 18u);
    EXPECT_EQ(reader.offset(), 27u);
}

TEST(FastaStream, ErrorsMatchWholeFileReader)
{
    {
        std::istringstream in("ACGT\n");
        FastaStreamReader reader(in);
        std::vector<uint8_t> buf;
        EXPECT_THROW(reader.next(10, buf), FatalError);
    }
    {
        std::istringstream in("");
        FastaStreamReader reader(in);
        std::vector<uint8_t> buf;
        EXPECT_THROW(reader.next(10, buf), FatalError);
    }
    {
        std::istringstream in(">r\nAC1T\n");
        FastaStreamReader reader(in);
        std::vector<uint8_t> buf;
        EXPECT_THROW(reader.next(10, buf), FatalError);
    }
}

TEST(FastaStream, TryNextReturnsTypedParseErrors)
{
    struct Case
    {
        const char *text;
        const char *what;
    };
    for (const Case &c :
         {Case{"ACGT\n", "before any"}, Case{"", "no records"},
          Case{">r\nAC1T\n", "invalid character"},
          Case{">\nACGT\n", "empty record name"}}) {
        std::istringstream in(c.text);
        FastaStreamReader reader(in);
        std::vector<uint8_t> buf;
        auto got = reader.tryNext(10, buf);
        ASSERT_FALSE(got.ok()) << c.text;
        EXPECT_EQ(got.error().code(), common::ErrorCode::ParseError)
            << c.text;
        EXPECT_NE(got.error().message().find(c.what),
                  std::string::npos)
            << got.error().str();
    }
}

TEST(FastaStream, LenientModeSkipsMalformedRecords)
{
    // A headerless prefix, a nameless record, and a record with an
    // invalid character (truncated at the bad byte, remainder
    // skipped) are each dropped; the good records still stream.
    const std::string text = "ACGT\n"
                             ">\nTTTT\n"
                             ">good1\nACGT\n"
                             ">bad\nGG1GG\nCCCC\n"
                             ">good2\nTTTT\n";
    std::istringstream in(text);
    FastaStreamReader reader(in, FastaStreamOptions{/*lenient=*/true});
    Sequence all;
    std::vector<uint8_t> buf;
    while (reader.next(5, buf))
        for (uint8_t c : buf)
            all.push_back(c);
    EXPECT_EQ(reader.recordsDropped(), 3u);
    // good1, then bad's emitted prefix "GG", then good2 — each record
    // separated by a single N.
    EXPECT_EQ(all, Sequence::fromString("ACGTNGGNTTTT"));
    ASSERT_EQ(reader.records().size(), 3u);
    EXPECT_EQ(reader.records()[0].name, "good1");
    EXPECT_EQ(reader.records()[1].name, "bad");
    EXPECT_EQ(reader.records()[2].name, "good2");
}

TEST(FastaStream, LenientModeStillAcceptsCleanInput)
{
    std::istringstream strict_in(sampleFasta());
    Sequence want = concatenateRecords(readFasta(strict_in));

    std::istringstream in(sampleFasta());
    FastaStreamReader reader(in, FastaStreamOptions{/*lenient=*/true});
    Sequence all;
    std::vector<uint8_t> buf;
    while (reader.next(7, buf))
        for (uint8_t c : buf)
            all.push_back(c);
    EXPECT_EQ(all, want);
    EXPECT_EQ(reader.recordsDropped(), 0u);
}

TEST(FastaStream, DrivesStreamingScanIdentically)
{
    // Scanning the stream chunk-by-chunk through an HScan scanner must
    // equal scanning the concatenated sequence in one go.
    Rng rng(411);
    std::vector<FastaRecord> records;
    for (int r = 0; r < 3; ++r) {
        records.push_back(
            {"r" + std::to_string(r), "",
             crispr::test::randomGenome(rng, 4000, 0.01)});
    }
    std::ostringstream fasta_text;
    writeFasta(fasta_text, records);

    std::vector<automata::HammingSpec> specs;
    for (uint32_t i = 0; i < 3; ++i)
        specs.push_back(crispr::test::randomGuideSpec(rng, 10, 3, 2, i));
    hscan::Database db = hscan::Database::compile(specs);

    hscan::Scanner whole(db);
    Sequence all = concatenateRecords(records);
    auto want = whole.scanAll(all);
    automata::normalizeEvents(want);

    std::istringstream in(fasta_text.str());
    FastaStreamReader reader(in);
    hscan::Scanner streaming(db);
    streaming.reset();
    std::vector<automata::ReportEvent> got;
    std::vector<uint8_t> buf;
    uint64_t at = 0;
    while (reader.next(1777, buf)) {
        streaming.scan(buf,
                       [&](uint32_t id, uint64_t end) {
                           got.push_back(
                               automata::ReportEvent{id, end});
                       },
                       at);
        at += buf.size();
    }
    automata::normalizeEvents(got);
    EXPECT_EQ(got, want);
}

} // namespace
} // namespace crispr::genome
