/** @file Unit tests for the CasOT reimplementation. */

#include <algorithm>

#include <gtest/gtest.h>

#include "baselines/brute.hpp"
#include "baselines/casot.hpp"
#include "common/logging.hpp"
#include "test_util.hpp"

namespace crispr::baselines {
namespace {

using automata::HammingSpec;

std::vector<HammingSpec>
guideSpecs(Rng &rng, int d, size_t count, size_t guide_len = 10)
{
    std::vector<HammingSpec> specs;
    for (uint32_t i = 0; i < count; ++i)
        specs.push_back(
            crispr::test::randomGuideSpec(rng, guide_len, 3, d, i));
    return specs;
}

TEST(CasOtDirect, EqualsGoldenScan)
{
    Rng rng(51);
    for (int d = 0; d <= 3; ++d) {
        auto specs = guideSpecs(rng, d, 3);
        genome::Sequence g = crispr::test::randomGenome(rng, 4000, 0.01);
        CasOtConfig cfg;
        cfg.mode = CasOtMode::Direct;
        auto result = casOtScan(g, specs, cfg);
        EXPECT_EQ(result.events, bruteForceScan(g, specs)) << "d=" << d;
    }
}

TEST(CasOtIndexed, EqualsGoldenScanWithFullSeedBudget)
{
    Rng rng(52);
    for (int d = 0; d <= 3; ++d) {
        auto specs = guideSpecs(rng, d, 2, 12);
        genome::Sequence g = crispr::test::randomGenome(rng, 4000, 0.01);
        CasOtConfig cfg;
        cfg.mode = CasOtMode::Indexed;
        cfg.seedLength = 8;
        auto result = casOtScan(g, specs, cfg);
        EXPECT_EQ(result.events, bruteForceScan(g, specs)) << "d=" << d;
    }
}

TEST(CasOtIndexed, NInSeedHandledByIrregularList)
{
    // Plant a site whose seed region contains an N: the seed index
    // cannot represent it, so the irregular side list must find it.
    Rng rng(53);
    genome::Sequence g = crispr::test::randomGenome(rng, 2000, 0.0);
    genome::Sequence site =
        genome::Sequence::fromString("ACGTACGTACTGG"); // 10 + PAM TGG
    genome::plantSite(g, 500, site);
    g[505] = genome::kCodeN; // N inside the PAM-proximal seed

    HammingSpec spec;
    spec.masks = genome::masksFromIupac("ACGTACGTACNGG");
    spec.maxMismatches = 2;
    spec.mismatchLo = 0;
    spec.mismatchHi = 10;
    spec.reportId = 0;

    CasOtConfig cfg;
    cfg.mode = CasOtMode::Indexed;
    cfg.seedLength = 8;
    auto result = casOtScan(g, std::span(&spec, 1), cfg);
    auto want = bruteForceScan(g, std::span(&spec, 1));
    EXPECT_EQ(result.events, want);
    const automata::ReportEvent planted{0, 512};
    EXPECT_TRUE(std::find(want.begin(), want.end(), planted) !=
                want.end());
}

TEST(CasOtIndexed, SeedCapLosesSensitivity)
{
    // With the seed budget capped below d, sites whose mismatches
    // cluster in the seed are (correctly, per the real tool) missed.
    Rng rng(54);
    genome::Sequence g = crispr::test::randomGenome(rng, 3000);
    genome::Sequence site =
        genome::Sequence::fromString("ACGTACGTACGTACGTACGTTGG");
    // Mutate 3 positions inside the last-12 seed region [8, 20).
    genome::Sequence mut = genome::mutateSite(site, 3, 10, 20, rng);
    genome::plantSite(g, 1000, mut);

    HammingSpec spec;
    spec.masks = genome::masksFromIupac(site.str());
    spec.maxMismatches = 3;
    spec.mismatchLo = 0;
    spec.mismatchHi = 20;

    CasOtConfig full;
    full.mode = CasOtMode::Indexed;
    auto full_result = casOtScan(g, std::span(&spec, 1), full);

    CasOtConfig capped = full;
    capped.maxSeedMismatches = 2;
    auto capped_result = casOtScan(g, std::span(&spec, 1), capped);

    // Capped results are a subset of the full results.
    for (const auto &e : capped_result.events) {
        EXPECT_TRUE(std::find(full_result.events.begin(),
                              full_result.events.end(),
                              e) != full_result.events.end());
    }
    const automata::ReportEvent planted{0, 1000 + 22};
    EXPECT_TRUE(std::find(full_result.events.begin(),
                          full_result.events.end(),
                          planted) != full_result.events.end());
    EXPECT_TRUE(std::find(capped_result.events.begin(),
                          capped_result.events.end(),
                          planted) == capped_result.events.end());
}

TEST(CasOtIndexed, SeedVariantCountMatchesFormula)
{
    Rng rng(55);
    auto specs = guideSpecs(rng, 2, 1, 12);
    genome::Sequence g = crispr::test::randomGenome(rng, 500);
    CasOtConfig cfg;
    cfg.mode = CasOtMode::Indexed;
    cfg.seedLength = 6;
    auto result = casOtScan(g, specs, cfg);
    // sum_{i<=2} C(6,i) * 3^i = 1 + 18 + 135 = 154.
    EXPECT_EQ(result.work.seedVariants, 154u);
    EXPECT_EQ(result.work.indexLookups, 154u);
}

TEST(CasOt, WorkCountersPopulated)
{
    Rng rng(56);
    auto specs = guideSpecs(rng, 1, 2);
    genome::Sequence g = crispr::test::randomGenome(rng, 2000);
    auto direct = casOtScan(g, specs, {});
    EXPECT_GT(direct.work.pamSites, 0u);
    EXPECT_GT(direct.work.basesCompared, 0u);
    EXPECT_EQ(direct.work.matches, direct.events.size());
    EXPECT_GE(direct.seconds, 0.0);
    EXPECT_DOUBLE_EQ(direct.perlAdjustedSeconds({}),
                     direct.seconds * 30.0);
}

TEST(CasOt, RejectsBadConfigs)
{
    Rng rng(57);
    auto specs = guideSpecs(rng, 1, 1);
    genome::Sequence g = crispr::test::randomGenome(rng, 100);
    CasOtConfig cfg;
    cfg.seedLength = 0;
    EXPECT_THROW(casOtScan(g, specs, cfg), FatalError);
    cfg.seedLength = 17;
    EXPECT_THROW(casOtScan(g, specs, cfg), FatalError);
}

TEST(CasOtIndexed, DegenerateSeedBaseIsFatal)
{
    HammingSpec spec;
    spec.masks = genome::masksFromIupac("ACGRACGTACGT" "TGG");
    spec.maxMismatches = 1;
    spec.mismatchLo = 0;
    spec.mismatchHi = 12;
    CasOtConfig cfg;
    cfg.mode = CasOtMode::Indexed;
    cfg.seedLength = 12; // seed covers the degenerate R at position 3
    genome::Sequence g =
        genome::Sequence::fromString("ACGTACGTACGTTGGACGT");
    EXPECT_THROW(casOtScan(g, std::span(&spec, 1), cfg), FatalError);
}

} // namespace
} // namespace crispr::baselines
