/** @file Tests for the sharded serving layer: ShardedSearchService
 *  scatter-gather bit-identity across shard counts and geometries,
 *  seam correctness at shard boundaries, the packed ".2bit" genome
 *  format, mmap load-once sharing under concurrent workers, and
 *  deadline-cut partial gathers. */

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <thread>

#include <unistd.h>

#include <gtest/gtest.h>

#include "common/executor.hpp"
#include "core/session.hpp"
#include "core/shard.hpp"
#include "genome/packed.hpp"
#include "test_util.hpp"

namespace crispr {
namespace {

namespace fs = std::filesystem;

core::Guide
randomGuide(Rng &rng, const std::string &name)
{
    static const char bases[] = "ACGT";
    std::string seq;
    for (int i = 0; i < 20; ++i)
        seq += bases[rng.below(4)];
    return core::makeGuide(name, seq);
}

std::vector<core::Guide>
randomGuides(Rng &rng, size_t count)
{
    std::vector<core::Guide> guides;
    for (size_t i = 0; i < count; ++i)
        guides.push_back(randomGuide(rng, "g" + std::to_string(i)));
    return guides;
}

/** Manual-mode worker options: requests queue until drain(). */
core::ShardOptions
manualShards(size_t shards)
{
    core::ShardOptions options;
    options.shards = shards;
    options.service.batchWindowSeconds = -1.0;
    return options;
}

/** RAII temp directory under the system temp root. */
struct TempDir
{
    fs::path path;

    explicit TempDir(const std::string &tag)
    {
        path = fs::temp_directory_path() /
               ("crispr_shardtest_" + tag + "_" +
                std::to_string(::getpid()));
        fs::remove_all(path);
        fs::create_directories(path);
    }

    ~TempDir() { fs::remove_all(path); }

    std::string str() const { return path.string(); }
};

// The tentpole contract: the merged result of an N-shard
// scatter-gather is bit-identical to a direct single-session search —
// hits AND events — at every shard count and under randomized chunk /
// thread geometry (shard seams may land anywhere relative to chunk
// seams; neither may show in the result).
TEST(ShardedSearchService, BitIdenticalAcrossShardCounts)
{
    const uint64_t seed = test::testSeed(9301);
    Rng rng(seed);
    auto genome = std::make_shared<const genome::Sequence>(
        test::randomGenome(rng, 24000));
    auto guides = randomGuides(rng, 3);

    core::SearchConfig config;
    config.maxMismatches = 3;
    core::SearchSession session(guides, config);
    const core::SearchResult serial = session.search(*genome);

    const size_t kChunkSizes[] = {257, 1031, 8192};
    for (size_t shards : {1, 2, 3, 5, 8}) {
        core::RequestOptions request;
        request.genome = genome;
        request.config = config;
        request.config.chunkSize = kChunkSizes[rng.below(3)];
        request.config.threads = 1u + static_cast<unsigned>(rng.below(3));

        core::ShardedSearchService service(manualShards(shards));
        auto fut = service.trySubmit(guides, request);
        service.drain();
        auto merged = fut.get();
        ASSERT_TRUE(merged.ok())
            << shards << " shards seed=" << seed << ": "
            << merged.error().message();
        EXPECT_EQ(merged.value().hits, serial.hits)
            << shards << " shards chunk="
            << request.config.chunkSize
            << " threads=" << request.config.threads
            << " seed=" << seed;
        EXPECT_EQ(merged.value().run.events, serial.run.events)
            << shards << " shards seed=" << seed;
        EXPECT_FALSE(merged.value().timedOut);
        EXPECT_EQ(service.gatherCount(), 1u);
    }
}

// Seam correctness, adversarially: sites planted straddling every
// shard boundary are found exactly once — the boundary shard re-reads
// the seam overlap but only the end-owning shard reports.
TEST(ShardedSearchService, BoundaryStraddlingSitesFoundOnce)
{
    const uint64_t seed = test::testSeed(9302);
    Rng rng(seed);
    constexpr size_t kShards = 4;
    constexpr size_t kGenomeLen = 8000; // divisible by kShards
    genome::Sequence seq = test::randomGenome(rng, kGenomeLen);

    // One 20bp protospacer + "TGG" PAM planted across each interior
    // boundary, at varying offsets so the cut lands in the guide, in
    // the PAM, and right at the site edges.
    const core::Guide guide =
        core::makeGuide("planted", "ACGTACGTACGTACGTACGT");
    genome::Sequence site = guide.protospacer;
    site.append(genome::Sequence::fromString("TGG"));
    std::vector<uint64_t> planted;
    for (size_t b = 1; b < kShards; ++b) {
        const uint64_t boundary = kGenomeLen * b / kShards;
        const uint64_t start = boundary - 2 - 5 * b; // straddles it
        for (size_t i = 0; i < site.size(); ++i)
            seq[start + i] = site[i];
        planted.push_back(start);
    }
    auto genome_ptr =
        std::make_shared<const genome::Sequence>(std::move(seq));

    core::RequestOptions request;
    request.genome = genome_ptr;
    request.config.maxMismatches = 0;

    core::ShardedSearchService service(manualShards(kShards));
    auto fut = service.trySubmit({guide}, request);
    service.drain();
    auto merged = fut.get();
    ASSERT_TRUE(merged.ok()) << merged.error().message();

    core::SearchSession session({guide}, request.config);
    const core::SearchResult serial = session.search(*genome_ptr);
    EXPECT_EQ(merged.value().hits, serial.hits) << "seed=" << seed;

    for (uint64_t start : planted) {
        const size_t copies = static_cast<size_t>(std::count_if(
            merged.value().hits.begin(), merged.value().hits.end(),
            [&](const core::OffTargetHit &h) {
                return h.start == start &&
                       h.strand == core::Strand::Forward;
            }));
        EXPECT_EQ(copies, 1u)
            << "site straddling a shard boundary at " << start
            << " reported " << copies << " times, seed=" << seed;
    }
}

// A caller-restricted scanRange is partitioned, not overridden: the
// sharded result over [a, b) equals the session's over the same range.
TEST(ShardedSearchService, CallerScanRangeIsPartitioned)
{
    const uint64_t seed = test::testSeed(9303);
    Rng rng(seed);
    auto genome = std::make_shared<const genome::Sequence>(
        test::randomGenome(rng, 16000));
    auto guides = randomGuides(rng, 2);

    core::SearchConfig config;
    config.maxMismatches = 2;
    config.scanRange = core::ScanRange{3000, 13000};

    core::SearchSession session(guides, config);
    const core::SearchResult ranged = session.search(*genome);

    for (size_t shards : {1, 3}) {
        core::RequestOptions request;
        request.genome = genome;
        request.config = config;

        core::ShardedSearchService service(manualShards(shards));
        auto fut = service.trySubmit(guides, request);
        service.drain();
        auto merged = fut.get();
        ASSERT_TRUE(merged.ok()) << merged.error().message();
        EXPECT_EQ(merged.value().hits, ranged.hits)
            << shards << " shards seed=" << seed;
        EXPECT_EQ(merged.value().run.events, ranged.run.events);
    }
}

// Packed ".2bit" round trip: write, map, decode — identical sequence,
// N exceptions included; and the mapping reports its residency.
TEST(PackedFile, RoundTripPreservesSequence)
{
    const uint64_t seed = test::testSeed(9304);
    Rng rng(seed);
    TempDir dir("roundtrip");
    const genome::Sequence original =
        test::randomGenome(rng, 10007, /*n_fraction=*/0.02);

    const std::string path = (dir.path / "g.2bit").string();
    ASSERT_TRUE(genome::PackedFile::writeSequence(path, original).ok());

    auto mapped = genome::PackedFile::map(path);
    ASSERT_TRUE(mapped.ok()) << mapped.error().message();
    EXPECT_EQ(mapped.value()->size(), original.size());
    EXPECT_EQ(mapped.value()->unpack(), original) << "seed=" << seed;
    EXPECT_EQ(mapped.value()->fileBytes(), fs::file_size(path));
#if defined(__unix__) || defined(__APPLE__)
    EXPECT_TRUE(mapped.value()->memoryMapped());
#endif
}

// Corrupt packed files are rejected up front, never trusted partially.
TEST(PackedFile, CorruptFilesAreRejected)
{
    TempDir dir("corrupt");
    const genome::Sequence seq =
        genome::Sequence::fromString("ACGTNACGTNACGTN");
    const std::string good = (dir.path / "good.2bit").string();
    ASSERT_TRUE(genome::PackedFile::writeSequence(good, seq).ok());
    std::vector<char> bytes;
    {
        std::ifstream in(good, std::ios::binary);
        bytes.assign(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
    }

    auto write_variant = [&](const std::string &name,
                             std::vector<char> data) {
        const std::string path = (dir.path / name).string();
        std::ofstream out(path, std::ios::binary);
        out.write(data.data(),
                  static_cast<std::streamsize>(data.size()));
        return path;
    };

    // Truncated payload.
    auto truncated = std::vector<char>(bytes.begin(), bytes.end() - 1);
    EXPECT_FALSE(
        genome::PackedFile::map(write_variant("trunc.2bit", truncated))
            .ok());
    // Wrong magic.
    auto magic = bytes;
    magic[0] = 'X';
    EXPECT_FALSE(
        genome::PackedFile::map(write_variant("magic.2bit", magic)).ok());
    // Unsupported version.
    auto version = bytes;
    version[8] = 99;
    EXPECT_FALSE(
        genome::PackedFile::map(write_variant("ver.2bit", version)).ok());
    // Header shorter than the fixed layout.
    EXPECT_FALSE(genome::PackedFile::map(
                     write_variant("short.2bit",
                                   std::vector<char>(bytes.begin(),
                                                     bytes.begin() + 8)))
                     .ok());
    // N-exception list out of range (last u64 of the file).
    auto bad_n = bytes;
    for (size_t i = bad_n.size() - 8; i < bad_n.size(); ++i)
        bad_n[i] = static_cast<char>(0xff);
    EXPECT_FALSE(
        genome::PackedFile::map(write_variant("badn.2bit", bad_n)).ok());
}

// Load-once under contention: concurrent typed loads of one packed
// ref through one store decode once and share one mapping.
TEST(GenomeStore, PackedRefLoadsOnceUnderConcurrency)
{
    const uint64_t seed = test::testSeed(9305);
    Rng rng(seed);
    TempDir dir("loadonce");
    const genome::Sequence original = test::randomGenome(rng, 40000);
    const std::string path = (dir.path / "shared.2bit").string();
    ASSERT_TRUE(genome::PackedFile::writeSequence(path, original).ok());

    core::GenomeStore store;
    const core::GenomeRef ref = core::GenomeRef::packed(path);
    constexpr size_t kThreads = 8;
    std::vector<core::SharedSequence> loaded(kThreads);
    std::vector<std::thread> threads;
    for (size_t t = 0; t < kThreads; ++t)
        threads.emplace_back([&, t] {
            auto result = store.tryLoad(ref);
            if (result.ok())
                loaded[t] = std::move(result).value();
        });
    for (auto &t : threads)
        t.join();

    ASSERT_TRUE(loaded[0] != nullptr);
    for (size_t t = 1; t < kThreads; ++t)
        EXPECT_EQ(loaded[t].get(), loaded[0].get())
            << "concurrent loads decoded separate copies";
    EXPECT_EQ(*loaded[0], original);
    EXPECT_EQ(store.metricsSnapshot().at("store.loads"), 1.0);
    EXPECT_EQ(store.entryCount(), 1u);
#if defined(__unix__) || defined(__APPLE__)
    EXPECT_EQ(store.mmapBytes(), fs::file_size(path));
    // Dropping the entry releases the mmap accounting with it.
    EXPECT_TRUE(store.erase(ref));
    EXPECT_EQ(store.mmapBytes(), 0u);
#endif
}

// N shard workers naming one packed ref share one physical mapping:
// store.mmap_bytes stays at one file's worth regardless of shard
// count, and the serving result matches the in-memory path.
TEST(ShardedSearchService, PackedGenomeMappedOnceAcrossShards)
{
    const uint64_t seed = test::testSeed(9306);
    Rng rng(seed);
    TempDir dir("sharedmap");
    const genome::Sequence original = test::randomGenome(rng, 20000);
    const std::string path = (dir.path / "ref.2bit").string();
    ASSERT_TRUE(genome::PackedFile::writeSequence(path, original).ok());
    auto guides = randomGuides(rng, 2);

    core::ShardedSearchService service(manualShards(4));
    core::RequestOptions request;
    request.genomeRef = core::GenomeRef::packed(path);
    request.config.maxMismatches = 2;
    auto fut = service.trySubmit(guides, request);
    service.drain();
    auto merged = fut.get();
    ASSERT_TRUE(merged.ok()) << merged.error().message();

    core::SearchSession session(guides, request.config);
    EXPECT_EQ(merged.value().hits, session.search(original).hits)
        << "seed=" << seed;
    EXPECT_EQ(service.store().metricsSnapshot().at("store.loads"), 1.0);
#if defined(__unix__) || defined(__APPLE__)
    EXPECT_EQ(service.store().mmapBytes(), fs::file_size(path));
    EXPECT_EQ(service.health().storeMmapBytes, fs::file_size(path));
#endif
    EXPECT_EQ(service.health().storeBytes, original.size());
}

// A deadline that cuts the scatter short still gathers: the merged
// result is ok, flagged timedOut, and its hits are a subset of the
// full result (each shard contributed its verified prefix).
TEST(ShardedSearchService, DeadlineMidGatherReturnsPartial)
{
    const uint64_t seed = test::testSeed(9307);
    Rng rng(seed);
    auto genome = std::make_shared<const genome::Sequence>(
        test::randomGenome(rng, 60000));
    auto guides = randomGuides(rng, 2);

    core::SearchConfig config;
    config.maxMismatches = 3;
    core::SearchSession session(guides, config);
    const core::SearchResult full = session.search(*genome);

    core::ShardedSearchService service(manualShards(4));
    core::RequestOptions request;
    request.genome = genome;
    request.config = config;
    request.config.chunkSize = 1024;
    request.config.deadline = common::Deadline::after(1e-7);
    auto fut = service.trySubmit(guides, request);
    service.drain();
    auto merged = fut.get();

    ASSERT_TRUE(merged.ok()) << merged.error().message();
    EXPECT_TRUE(merged.value().timedOut);
    EXPECT_EQ(service.partialCount(), 1u);

    std::set<core::OffTargetHit> full_hits(full.hits.begin(),
                                           full.hits.end());
    for (const auto &hit : merged.value().hits)
        EXPECT_TRUE(full_hits.count(hit))
            << "partial result invented a hit, seed=" << seed;
}

// Ranked gathers under a deadline cut: the merged top-K over whatever
// the shards managed is still a valid listing — possibly short, never
// over K, with no duplicate and no phantom entries, ordered penalty
// descending.
TEST(ShardedSearchService, RankedDeadlinePartialStaysValid)
{
    const uint64_t seed = test::testSeed(9310);
    Rng rng(seed);
    auto genome = std::make_shared<const genome::Sequence>(
        test::randomGenome(rng, 60000));
    auto guides = randomGuides(rng, 2);

    core::SearchConfig config;
    config.maxMismatches = 3;
    config.topK = 10;
    core::SearchSession session(guides, config);
    const core::SearchResult full = session.search(*genome);

    core::ShardedSearchService service(manualShards(4));
    core::RequestOptions request;
    request.genome = genome;
    request.config = config;
    request.config.chunkSize = 1024;
    request.config.deadline = common::Deadline::after(1e-7);
    auto fut = service.trySubmit(guides, request);
    service.drain();
    auto merged = fut.get();

    ASSERT_TRUE(merged.ok()) << merged.error().message();
    EXPECT_TRUE(merged.value().timedOut);
    EXPECT_TRUE(merged.value().rankedMode);
    const auto &ranked = merged.value().ranked;
    EXPECT_LE(ranked.size(), 10u);

    // No duplicates, no phantoms: every ranked entry is one of the
    // merged (verified) hits and one of the full result's hits.
    std::set<core::OffTargetHit> unique(ranked.begin(), ranked.end());
    EXPECT_EQ(unique.size(), ranked.size())
        << "duplicate ranked entry, seed=" << seed;
    std::set<core::OffTargetHit> merged_hits(
        merged.value().hits.begin(), merged.value().hits.end());
    std::set<core::OffTargetHit> full_hits(full.hits.begin(),
                                           full.hits.end());
    for (const auto &hit : ranked) {
        EXPECT_TRUE(merged_hits.count(hit))
            << "ranked entry missing from merged hits, seed=" << seed;
        EXPECT_TRUE(full_hits.count(hit))
            << "ranked entry is a phantom, seed=" << seed;
    }
    for (size_t i = 1; i < ranked.size(); ++i)
        EXPECT_FALSE(core::rankedHitBefore(ranked[i], ranked[i - 1]))
            << "ranked order violated at " << i << ", seed=" << seed;
}

// Regression: windowed workers (zero batch window, dispatcher-thread
// scans) serving many concurrent requests at a high shard count. This
// is the shape that once deadlocked — a dispatcher mid-scan helping
// the pool could pick up a gather task whose sub-request was queued
// behind that same dispatcher (now excluded via TaskOptions::mayBlock
// — see HelpingWaitsSkipMayBlockTasks in test_executor.cpp). Every
// future must resolve, bit-identical to serial.
TEST(ShardedSearchService, WindowedDispatchUnderLoadCompletes)
{
    const uint64_t seed = test::testSeed(9309);
    Rng rng(seed);
    std::vector<core::SharedSequence> genomes;
    for (int g = 0; g < 2; ++g)
        genomes.push_back(std::make_shared<const genome::Sequence>(
            test::randomGenome(rng, 16000)));
    auto guides = randomGuides(rng, 8);

    core::SearchConfig config;
    config.maxMismatches = 2;
    config.chunkSize = 1024;
    config.threads = 2; // dispatcher scans fan out and help the pool

    std::vector<std::vector<core::OffTargetHit>> serial;
    for (size_t i = 0; i < guides.size(); ++i) {
        core::SearchSession session({guides[i]}, config);
        serial.push_back(session.search(*genomes[i % 2]).hits);
    }

    core::ShardOptions options;
    options.shards = 8;
    options.service.batchWindowSeconds = 0.0;
    core::ShardedSearchService service(options);
    std::vector<std::future<core::SearchResult>> futures;
    for (int round = 0; round < 3; ++round)
        for (size_t i = 0; i < guides.size(); ++i) {
            core::RequestOptions request;
            request.genome = genomes[i % 2];
            request.config = config;
            futures.push_back(service.submit({guides[i]}, request));
        }
    for (size_t f = 0; f < futures.size(); ++f)
        EXPECT_EQ(futures[f].get().hits,
                  serial[f % guides.size()])
            << "request " << f << " seed=" << seed;
    service.flush();
}

// Coordinator bookkeeping: error requests are counted and completed,
// health aggregates the workers, and the metrics snapshot carries the
// coordinator's shard.* keys plus summed worker service.* keys.
TEST(ShardedSearchService, ErrorsHealthAndMetrics)
{
    core::ShardedSearchService service(manualShards(2));

    // No genome named: completes immediately with InvalidArgument.
    auto no_genome =
        service.trySubmit({core::makeGuide("g", "ACGTACGTACGTACGTACGT")},
                          core::RequestOptions{});
    EXPECT_FALSE(no_genome.get().ok());
    // Empty guide list: same, without touching a worker.
    core::RequestOptions request;
    request.genomeRef = core::GenomeRef::memory("absent");
    auto no_guides = service.trySubmit({}, request);
    EXPECT_FALSE(no_guides.get().ok());
    // A memory ref that was never put(): resolution fails up front.
    auto absent =
        service.trySubmit({core::makeGuide("g", "ACGTACGTACGTACGTACGT")},
                          request);
    EXPECT_FALSE(absent.get().ok());
    EXPECT_EQ(service.errorCount(), 3u);
    EXPECT_EQ(service.requestCount(), 3u);
    EXPECT_EQ(service.gatherCount(), 0u);

    const core::ServiceHealth health = service.health();
    EXPECT_TRUE(health.accepting);
    EXPECT_EQ(health.queueDepth, 0u);

    const auto metrics = service.metricsSnapshot();
    EXPECT_EQ(metrics.at("shard.count"), 2.0);
    EXPECT_EQ(metrics.at("shard.requests"), 3.0);
    EXPECT_EQ(metrics.at("shard.errors"), 3.0);
}

// The execution-defaults satellite: a request field left at its
// built-in default inherits ServiceOptions::defaults (request >
// service default > built-in), observable through scan.threads.
TEST(SearchService, ExecutionDefaultsAreInherited)
{
    const uint64_t seed = test::testSeed(9308);
    Rng rng(seed);
    auto genome = std::make_shared<const genome::Sequence>(
        test::randomGenome(rng, 12000));
    auto guides = randomGuides(rng, 1);

    core::ServiceOptions options;
    options.batchWindowSeconds = -1.0;
    options.defaults.threads = 2;
    core::SearchService service(options);

    // Inherits threads = 2 from the service defaults. Drained alone:
    // a batch runs with its earliest member's runtime options, so
    // coalescing the two would mask the override.
    core::RequestOptions inherit;
    inherit.genome = genome;
    auto inherited = service.trySubmit(guides, inherit);
    service.drain();
    // Explicit request value beats the service default.
    core::RequestOptions target;
    target.genome = genome;
    target.config.threads = 3;
    auto overridden = service.trySubmit(guides, target);
    service.drain();

    auto inherited_result = inherited.get();
    ASSERT_TRUE(inherited_result.ok());
    EXPECT_EQ(inherited_result.value().run.metrics.at("scan.threads"),
              2.0);
    auto overridden_result = overridden.get();
    ASSERT_TRUE(overridden_result.ok());
    EXPECT_EQ(overridden_result.value().run.metrics.at("scan.threads"),
              3.0);
}

} // namespace
} // namespace crispr
