/**
 * @file
 * Observability-layer tests: the metric primitives (counter / gauge /
 * log-bucketed histogram), the registry-to-map bridge, the metric-key
 * contract search results must honour, per-chunk latency histograms,
 * and chrome://tracing span capture. Histogram- and trace-specific
 * assertions skip under -DCRISPR_METRICS=OFF, where the inverse
 * (everything compiles to a no-op) is asserted instead.
 */

#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "core/session.hpp"
#include "hscan/simd.hpp"
#include "test_util.hpp"

namespace crispr {
namespace {

using common::kMetricsEnabled;
using common::MetricsRegistry;
using common::TraceSink;
using common::TraceSpan;

/** The log-bucketed quantile is exact to within a factor of two. */
void
expectWithin2x(double got, double want, const char *what)
{
    EXPECT_GE(got, want / 2.0) << what;
    EXPECT_LE(got, want * 2.0) << what;
}

TEST(Metrics, CounterAndGaugeBasics)
{
    MetricsRegistry reg;
    common::Counter c = reg.counter("test.count");
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);
    // Same name, same cell.
    EXPECT_EQ(reg.counter("test.count").value(), 42u);

    common::Gauge g = reg.gauge("test.gauge");
    g.set(2.5);
    EXPECT_EQ(g.value(), 2.5);

    // Default-constructed handles are inert, not crashing.
    common::Counter none;
    none.inc();
    EXPECT_EQ(none.value(), 0u);
    common::Histogram no_hist;
    no_hist.observe(1.0);
    EXPECT_EQ(no_hist.count(), 0u);
}

TEST(Metrics, CountersAreThreadSafe)
{
    MetricsRegistry reg;
    constexpr int kThreads = 4;
    constexpr int kIncs = 10000;
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
        // Each thread registers the same name itself: registration
        // and increment must both be safe concurrently.
        workers.emplace_back([&reg] {
            common::Counter c = reg.counter("shared.count");
            common::Histogram h = reg.histogram("shared.hist");
            for (int i = 0; i < kIncs; ++i) {
                c.inc();
                h.observe(1e-3);
            }
        });
    }
    for (auto &w : workers)
        w.join();
    EXPECT_EQ(reg.counter("shared.count").value(),
              static_cast<uint64_t>(kThreads) * kIncs);
    if (kMetricsEnabled)
        EXPECT_EQ(reg.histogram("shared.hist").count(),
                  static_cast<uint64_t>(kThreads) * kIncs);
}

TEST(Metrics, HistogramQuantiles)
{
    if (!kMetricsEnabled)
        GTEST_SKIP() << "histograms compiled out";
    MetricsRegistry reg;
    common::Histogram h = reg.histogram("lat");
    // 90% fast (1 ms), 10% slow (1 s): p50 must sit at the fast mode,
    // p99 at the slow one.
    for (int i = 0; i < 900; ++i)
        h.observe(1e-3);
    for (int i = 0; i < 100; ++i)
        h.observe(1.0);
    EXPECT_EQ(h.count(), 1000u);
    expectWithin2x(h.sum(), 900 * 1e-3 + 100 * 1.0, "sum");
    EXPECT_DOUBLE_EQ(h.max(), 1.0); // max is exact, not bucketed
    expectWithin2x(h.quantile(0.5), 1e-3, "p50");
    expectWithin2x(h.quantile(0.9), 1e-3, "p90 (900/1000 are fast)");
    expectWithin2x(h.quantile(0.99), 1.0, "p99");
    // Quantiles are monotone in q.
    EXPECT_LE(h.quantile(0.5), h.quantile(0.9));
    EXPECT_LE(h.quantile(0.9), h.quantile(0.99));
    EXPECT_LE(h.quantile(0.99), h.max());

    // Values spanning decades stay ordered.
    common::Histogram wide = reg.histogram("wide");
    for (double v : {1e-9, 1e-6, 1e-3, 1.0, 1e3})
        wide.observe(v);
    expectWithin2x(wide.quantile(0.0), 1e-9, "min decade");
    expectWithin2x(wide.quantile(1.0), 1e3, "max decade");
}

TEST(Metrics, HistogramDisabledIsNoOp)
{
    if (kMetricsEnabled)
        GTEST_SKIP() << "covered by HistogramQuantiles";
    MetricsRegistry reg;
    common::Histogram h = reg.histogram("lat");
    h.observe(1.0);
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.quantile(0.5), 0.0);
    // And no histogram keys leak into the bridged map.
    EXPECT_TRUE(reg.toMap().empty());
}

TEST(Metrics, RegistryBridgesToMap)
{
    MetricsRegistry reg;
    reg.counter("a.count").inc(3);
    reg.gauge("b.gauge").set(1.5);
    reg.histogram("c.lat"); // registered but empty: no keys
    std::map<std::string, double> out{{"preexisting", 7.0}};
    reg.mergeInto(out);
    EXPECT_EQ(out.at("a.count"), 3.0);
    EXPECT_EQ(out.at("b.gauge"), 1.5);
    EXPECT_EQ(out.at("preexisting"), 7.0);
    EXPECT_EQ(out.count("c.lat.count"), 0u);

    if (kMetricsEnabled) {
        reg.histogram("c.lat").observe(0.25);
        const auto map = reg.toMap();
        EXPECT_EQ(map.at("c.lat.count"), 1.0);
        expectWithin2x(map.at("c.lat.sum"), 0.25, "bridged sum");
        EXPECT_DOUBLE_EQ(map.at("c.lat.max"), 0.25);
        for (const char *q : {"c.lat.p50", "c.lat.p90", "c.lat.p99"})
            expectWithin2x(map.at(q), 0.25, q);
    }
}

TEST(Metrics, WriteMetricsJson)
{
    std::map<std::string, double> m{{"scan.bytes", 1024.0},
                                    {"scan.seconds", 0.5}};
    std::ostringstream os;
    common::writeMetricsJson(m, os);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"scan.bytes\""), std::string::npos);
    EXPECT_NE(json.find("1024"), std::string::npos);
    EXPECT_EQ(json.front(), '{');
}

/** A small deterministic search setup shared by the contract tests. */
struct SearchFixture
{
    std::vector<core::Guide> guides;
    genome::Sequence genome;
    core::SearchConfig config;

    explicit SearchFixture(size_t genome_len = 20000)
    {
        Rng rng(test::testSeed(0x3E7121));
        guides = core::randomGuides(2, 20, rng.next());
        genome = test::randomGenome(rng, genome_len, 0.0);
        config.maxMismatches = 2;
        config.engine = core::EngineKind::Reference;
    }
};

TEST(MetricsContract, SessionCountersAreMonotone)
{
    SearchFixture fx(4000);
    core::SearchSession session(fx.guides, fx.config);

    auto first = session.trySearch(fx.genome);
    ASSERT_TRUE(first.ok()) << first.error().str();
    const auto &m1 = first.value().run.metrics;
    EXPECT_EQ(m1.at("session.compiles"), 1.0);
    EXPECT_EQ(m1.at("session.cache_hits"), 0.0);
    EXPECT_EQ(m1.at("events.dropped"), 0.0);
    EXPECT_EQ(m1.at("scan.bytes"),
              static_cast<double>(fx.genome.size()));
    EXPECT_EQ(m1.at("search.hits"),
              static_cast<double>(first.value().hits.size()));

    auto second = session.trySearch(fx.genome);
    auto third = session.trySearch(fx.genome);
    ASSERT_TRUE(second.ok() && third.ok());
    const auto &m3 = third.value().run.metrics;
    EXPECT_EQ(m3.at("session.compiles"), 1.0);
    EXPECT_EQ(m3.at("session.cache_hits"), 2.0);
    EXPECT_EQ(session.compileCount(), 1u);
    EXPECT_EQ(session.cacheHits(), 2u);

    const auto snap = session.metricsSnapshot();
    EXPECT_EQ(snap.at("session.compiles"), 1.0);
    EXPECT_EQ(snap.at("session.cache_hits"), 2.0);
}

TEST(MetricsContract, ChunkedScanExportsLatencyHistogram)
{
    SearchFixture fx(20000);
    fx.config.threads = 2;
    fx.config.chunkSize = 4096;
    core::SearchSession session(fx.guides, fx.config);
    auto res = session.trySearch(fx.genome);
    ASSERT_TRUE(res.ok()) << res.error().str();
    const auto &m = res.value().run.metrics;
    EXPECT_EQ(m.at("scan.bytes"),
              static_cast<double>(fx.genome.size()));
    EXPECT_GE(m.at("scan.chunks"), 2.0);
    if (!kMetricsEnabled) {
        EXPECT_EQ(m.count("scan.chunk_seconds.count"), 0u);
        return;
    }
    ASSERT_EQ(m.count("scan.chunk_seconds.count"), 1u)
        << "per-chunk latency histogram missing";
    EXPECT_EQ(m.at("scan.chunk_seconds.count"), m.at("scan.chunks"));
    EXPECT_LE(m.at("scan.chunk_seconds.p50"),
              m.at("scan.chunk_seconds.p90"));
    EXPECT_LE(m.at("scan.chunk_seconds.p90"),
              m.at("scan.chunk_seconds.p99"));
    EXPECT_LE(m.at("scan.chunk_seconds.p99"),
              m.at("scan.chunk_seconds.max") * 2.0);
}

TEST(MetricsContract, PrefilterCascadeExportsItsCounters)
{
    // The filter-cascade work counters are part of the metric
    // contract: every prefilter scan exports how many anchors it
    // probed, how many survived, and how many verifications ran —
    // and the resolved kernel tier rides along as a gauge.
    SearchFixture fx(20000);
    fx.config.engine = core::EngineKind::HscanPrefilter;
    core::SearchSession session(fx.guides, fx.config);
    auto res = session.trySearch(fx.genome);
    ASSERT_TRUE(res.ok()) << res.error().str();
    const auto &m = res.value().run.metrics;

    ASSERT_EQ(m.count("scan.prefilter.anchors_probed"), 1u);
    ASSERT_EQ(m.count("scan.prefilter.anchors_hit"), 1u);
    ASSERT_EQ(m.count("scan.prefilter.verifications"), 1u);
    EXPECT_GT(m.at("scan.prefilter.anchors_probed"), 0.0);
    EXPECT_LE(m.at("scan.prefilter.anchors_hit"),
              m.at("scan.prefilter.anchors_probed"));
    EXPECT_GE(m.at("scan.prefilter.verifications"),
              m.at("scan.prefilter.anchors_hit"));

    ASSERT_EQ(m.count("scan.simd_tier"), 1u);
    EXPECT_EQ(m.at("scan.simd_tier"),
              hscan::simdTierGaugeValue(hscan::resolveSimdTier()));

    // The vector-capable Shift-Or engine exports the tier gauge too.
    core::SearchConfig bp = fx.config;
    bp.engine = core::EngineKind::HscanBitParallel;
    auto bp_res =
        core::SearchSession(fx.guides, bp).trySearch(fx.genome);
    ASSERT_TRUE(bp_res.ok()) << bp_res.error().str();
    EXPECT_EQ(bp_res.value().run.metrics.at("scan.simd_tier"),
              hscan::simdTierGaugeValue(hscan::resolveSimdTier()));
}

TEST(MetricsContract, SearchRecordsTraceSpans)
{
    SearchFixture fx(20000);
    fx.config.threads = 2;
    fx.config.chunkSize = 4096;
    TraceSink sink;
    fx.config.trace = &sink;
    core::SearchSession session(fx.guides, fx.config);
    auto res = session.trySearch(fx.genome);
    ASSERT_TRUE(res.ok()) << res.error().str();
    if (!kMetricsEnabled) {
        EXPECT_EQ(sink.size(), 0u);
        return;
    }
    EXPECT_EQ(sink.count("search"), 1u);
    EXPECT_EQ(sink.count("pattern.compile"), 1u);
    EXPECT_EQ(sink.count("engine.compile"), 1u);
    EXPECT_EQ(sink.count("scan"), 1u);
    EXPECT_EQ(sink.count("report"), 1u);
    EXPECT_GE(sink.count("chunk.scan"), 2u);

    std::ostringstream os;
    sink.writeJson(os);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"chunk.scan\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
}

TEST(MetricsContract, StreamedSearchRecordsParseSpans)
{
    SearchFixture fx(20000);
    fx.config.threads = 2;
    fx.config.chunkSize = 4096;
    TraceSink sink;
    fx.config.trace = &sink;
    core::SearchSession session(fx.guides, fx.config);

    std::string fasta = ">chr\n";
    const std::string seq = fx.genome.str();
    for (size_t i = 0; i < seq.size(); i += 70)
        fasta += seq.substr(i, 70) + "\n";
    std::istringstream in(fasta);
    auto res = session.trySearchStream(in);
    ASSERT_TRUE(res.ok()) << res.error().str();
    if (!kMetricsEnabled) {
        EXPECT_EQ(sink.size(), 0u);
        return;
    }
    EXPECT_EQ(sink.count("search"), 1u);
    EXPECT_GE(sink.count("parse"), 1u);
    EXPECT_GE(sink.count("chunk.scan"), 2u);
    EXPECT_GE(sink.count("report"), 1u);
}

TEST(MetricsContract, SpanFinishStopsTheClock)
{
    TraceSink sink;
    {
        TraceSpan span(&sink, "outer");
        {
            TraceSpan inner(&sink, "inner");
            inner.finish();
            inner.finish(); // idempotent
        }
    }
    TraceSpan inert(nullptr, "never");
    inert.finish();
    if (!kMetricsEnabled) {
        EXPECT_EQ(sink.size(), 0u);
        return;
    }
    EXPECT_EQ(sink.size(), 2u);
    EXPECT_EQ(sink.count("outer"), 1u);
    EXPECT_EQ(sink.count("inner"), 1u);
    EXPECT_EQ(sink.count("never"), 0u);
    for (const auto &ev : sink.events())
        EXPECT_GE(ev.startMicros + ev.durMicros,
                  ev.startMicros); // no underflow
}

} // namespace
} // namespace crispr
