/** @file Tests for the ahead-of-time pattern database tier: engine
 *  state serialization round-trips, corrupt/stale blob rejection, the
 *  SearchSession disk tier, SearchService pre-warm, and the engine=auto
 *  cost-model selection. */

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "common/serial.hpp"
#include "core/engine_auto.hpp"
#include "core/engine_registry.hpp"
#include "core/pattern_db.hpp"
#include "core/service.hpp"
#include "core/session.hpp"
#include "genome/generator.hpp"
#include "test_util.hpp"

namespace crispr {
namespace {

namespace fs = std::filesystem;

core::Guide
randomGuide(Rng &rng, const std::string &name, size_t length = 20)
{
    static const char bases[] = "ACGT";
    std::string seq;
    for (size_t i = 0; i < length; ++i)
        seq += bases[rng.below(4)];
    return core::makeGuide(name, seq);
}

std::vector<core::Guide>
randomGuides(Rng &rng, size_t count, size_t length = 20)
{
    std::vector<core::Guide> guides;
    for (size_t i = 0; i < count; ++i)
        guides.push_back(
            randomGuide(rng, "g" + std::to_string(i), length));
    return guides;
}

genome::Sequence
testGenome(uint64_t seed, size_t length = 20000)
{
    genome::GenomeSpec gs;
    gs.length = length;
    gs.seed = seed;
    return genome::generateGenome(gs);
}

/** RAII temp directory under the system temp root. */
struct TempDir
{
    fs::path path;

    explicit TempDir(const std::string &tag)
    {
        path = fs::temp_directory_path() /
               ("crispr_dbtest_" + tag + "_" +
                std::to_string(::getpid()));
        fs::remove_all(path);
        fs::create_directories(path);
    }

    ~TempDir() { fs::remove_all(path); }

    std::string str() const { return path.string(); }
};

/** The engines that must support serialization (ISSUE acceptance). */
std::vector<core::EngineKind>
serializableEngines()
{
    return {core::EngineKind::HscanAuto, core::EngineKind::HscanDfa,
            core::EngineKind::HscanBitParallel,
            core::EngineKind::Reference};
}

core::PatternSet
patternSetFor(const std::vector<core::Guide> &guides, int d,
              const core::Engine &engine)
{
    return core::buildPatternSet(guides, core::pamNRG(), d,
                                 /*both_strands=*/true,
                                 engine.requiredOrientation());
}

TEST(EngineSerialization, CapabilityFlagMatchesTheEngineClass)
{
    const auto &registry = core::EngineRegistry::instance();
    for (core::EngineKind kind : serializableEngines())
        EXPECT_TRUE(registry.engine(kind).supportsSerialization())
            << core::engineName(kind);
    // Device-model engines report the capability cleanly absent.
    Rng rng(1);
    for (core::EngineKind kind :
         {core::EngineKind::Fpga, core::EngineKind::Ap,
          core::EngineKind::GpuInfant2, core::EngineKind::Brute}) {
        const core::Engine &engine = registry.engine(kind);
        EXPECT_FALSE(engine.supportsSerialization()) << engine.name();
        core::PatternSet set =
            patternSetFor(randomGuides(rng, 1), 1, engine);
        auto compiled = engine.tryCompile(set);
        ASSERT_TRUE(compiled.ok()) << engine.name();
        auto blob = engine.serializeState(compiled.value());
        ASSERT_FALSE(blob.ok()) << engine.name();
        EXPECT_EQ(blob.error().code(),
                  common::ErrorCode::UnsupportedEngine)
            << engine.name();
    }
}

TEST(EngineSerialization, RoundTripIsBitIdenticalPerEngineAndBudget)
{
    Rng rng(test::testSeed(9101));
    const genome::Sequence genome_seq = testGenome(9102);

    for (core::EngineKind kind : serializableEngines()) {
        const core::Engine &engine =
            core::EngineRegistry::instance().engine(kind);
        for (int d = 0; d <= 4; ++d) {
            // Shorter guides at high d keep the forced-DFA subset
            // construction inside a sane budget while still exercising
            // every mismatch tier.
            std::vector<core::Guide> guides =
                randomGuides(rng, 2, d >= 3 ? 12 : 20);
            core::EngineParams params;
            params.hscanOpts.maxDfaStates = 1u << 21;
            core::PatternSet set = patternSetFor(guides, d, engine);
            auto compiled = engine.tryCompile(set, params);
            ASSERT_TRUE(compiled.ok())
                << engine.name() << " d=" << d;

            auto blob = engine.serializeState(compiled.value());
            ASSERT_TRUE(blob.ok()) << engine.name() << " d=" << d;

            auto loaded =
                engine.deserializeState(set, params, blob.value());
            ASSERT_TRUE(loaded.ok())
                << engine.name() << " d=" << d << ": "
                << (loaded.ok() ? "" : loaded.error().message());
            EXPECT_GE(loaded.value().metrics.count(
                          "compile.from_database"),
                      1u);

            core::EngineRun cold = engine.scan(
                compiled.value(), core::SequenceView(genome_seq));
            core::EngineRun warm = engine.scan(
                loaded.value(), core::SequenceView(genome_seq));
            EXPECT_EQ(cold.events, warm.events)
                << engine.name() << " d=" << d;

            // And the blob itself is stable: re-serializing the loaded
            // state reproduces it bit for bit.
            auto reblob = engine.serializeState(loaded.value());
            ASSERT_TRUE(reblob.ok()) << engine.name() << " d=" << d;
            EXPECT_EQ(blob.value(), reblob.value())
                << engine.name() << " d=" << d;
        }
    }
}

TEST(EngineSerialization, RejectsTruncatedBitFlippedAndVersionBumped)
{
    Rng rng(test::testSeed(9103));
    const core::Engine &engine =
        core::EngineRegistry::instance().engine(
            core::EngineKind::HscanDfa);
    std::vector<core::Guide> guides = randomGuides(rng, 3);
    core::PatternSet set = patternSetFor(guides, 2, engine);
    auto compiled = engine.tryCompile(set);
    ASSERT_TRUE(compiled.ok());
    auto blob = engine.serializeState(compiled.value());
    ASSERT_TRUE(blob.ok());
    const std::vector<uint8_t> &good = blob.value();

    // A clean load works (baseline for the mutations below).
    ASSERT_TRUE(engine.deserializeState(set, {}, good).ok());

    // Truncation at every boundary class: header, mid-payload, tail.
    for (size_t keep : {size_t{0}, size_t{7}, size_t{27},
                        good.size() / 2, good.size() - 1}) {
        std::vector<uint8_t> cut(good.begin(),
                                 good.begin() +
                                     static_cast<long>(keep));
        auto result = engine.deserializeState(set, {}, cut);
        ASSERT_FALSE(result.ok()) << "kept " << keep;
        EXPECT_EQ(result.error().code(), common::ErrorCode::ParseError)
            << "kept " << keep;
    }

    // A single flipped payload bit trips the content hash.
    {
        std::vector<uint8_t> flipped = good;
        flipped[flipped.size() - 3] ^= 0x10;
        auto result = engine.deserializeState(set, {}, flipped);
        ASSERT_FALSE(result.ok());
        EXPECT_EQ(result.error().code(),
                  common::ErrorCode::ParseError);
    }

    // A bumped format version (envelope bytes 4..8) is version skew,
    // not corruption: InvalidArgument, so callers recompile.
    {
        std::vector<uint8_t> bumped = good;
        bumped[4] += 1;
        auto result = engine.deserializeState(set, {}, bumped);
        ASSERT_FALSE(result.ok());
        EXPECT_EQ(result.error().code(),
                  common::ErrorCode::InvalidArgument);
    }

    // Wrong engine: a DFA blob handed to the NFA reference engine.
    {
        const core::Engine &other =
            core::EngineRegistry::instance().engine(
                core::EngineKind::Reference);
        core::PatternSet other_set = patternSetFor(guides, 2, other);
        auto result = other.deserializeState(other_set, {}, good);
        ASSERT_FALSE(result.ok());
        EXPECT_EQ(result.error().code(),
                  common::ErrorCode::InvalidArgument);
    }

    // Wrong guide set: the embedded pattern-set digest catches it.
    {
        std::vector<core::Guide> other_guides = randomGuides(rng, 3);
        core::PatternSet other_set =
            patternSetFor(other_guides, 2, engine);
        auto result = engine.deserializeState(other_set, {}, good);
        ASSERT_FALSE(result.ok());
        EXPECT_EQ(result.error().code(),
                  common::ErrorCode::InvalidArgument);
    }
}

TEST(PatternDatabase, StoresLoadsAndPreloads)
{
    TempDir dir("store");
    auto db = core::PatternDatabase::open(dir.str());
    ASSERT_TRUE(db.ok());

    const std::vector<uint8_t> blob{1, 2, 3, 4, 5};
    EXPECT_FALSE(db.value()->load("missing").has_value());
    ASSERT_TRUE(db.value()->store("key-a", blob).ok());
    auto loaded = db.value()->load("key-a");
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(*loaded, blob);

    // The file on disk is the key's stable name, and a second open()
    // of the same directory shares the same instance.
    EXPECT_TRUE(fs::exists(dir.path /
                           core::PatternDatabase::fileNameFor("key-a")));
    auto again = core::PatternDatabase::open(dir.str());
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(again.value().get(), db.value().get());
    EXPECT_EQ(db.value()->preload(), 1u);
    EXPECT_EQ(db.value()->residentCount(), 1u);
}

TEST(SearchSession, DatabaseTierWarmStartsBitIdentically)
{
    Rng rng(test::testSeed(9104));
    TempDir dir("session");
    std::vector<core::Guide> guides = randomGuides(rng, 3);
    const genome::Sequence genome_seq = testGenome(9105);

    core::SearchConfig cfg;
    cfg.maxMismatches = 2;
    cfg.engine = core::EngineKind::HscanDfa;
    cfg.params.hscanOpts.maxDfaStates = 1u << 21;
    cfg.databaseDir = dir.str();

    // Cold process: compiles, and persists the compiled state.
    core::SearchSession cold(guides, cfg);
    core::SearchResult cold_result = cold.search(genome_seq);
    EXPECT_EQ(cold.compileCount(), 1u);
    EXPECT_EQ(cold.databaseHits(), 0u);
    EXPECT_EQ(cold.databaseMisses(), 1u);
    EXPECT_EQ(cold_result.run.metrics.at("session.db_misses"), 1.0);

    // "Restarted" process: same guides + config, fresh session. The
    // compile is served from disk; hits are bit-identical.
    core::SearchSession warm(guides, cfg);
    core::SearchResult warm_result = warm.search(genome_seq);
    EXPECT_EQ(warm.compileCount(), 0u);
    EXPECT_EQ(warm.databaseHits(), 1u);
    EXPECT_EQ(warm.databaseMisses(), 0u);
    EXPECT_EQ(warm_result.run.metrics.at("session.db_hits"), 1.0);
    if (common::kMetricsEnabled)
        EXPECT_EQ(warm_result.run.metrics.count(
                      "session.db_load_seconds.count"),
                  1u);
    EXPECT_EQ(warm_result.run.metrics.at("compile.from_database"), 1.0);
    EXPECT_EQ(cold_result.hits, warm_result.hits);
    EXPECT_EQ(cold_result.run.events, warm_result.run.events);

    // A different mismatch budget is a different key: no stale blob
    // is served, the session compiles fresh.
    core::SearchConfig other = cfg;
    other.maxMismatches = 3;
    core::SearchSession third(guides, other);
    third.search(genome_seq);
    EXPECT_EQ(third.compileCount(), 1u);
    EXPECT_EQ(third.databaseHits(), 0u);
}

TEST(SearchSession, CorruptDatabaseEntryFallsBackToCompile)
{
    Rng rng(test::testSeed(9106));
    TempDir dir("corrupt");
    std::vector<core::Guide> guides = randomGuides(rng, 4);
    const genome::Sequence genome_seq = testGenome(9107, 8000);

    core::SearchConfig cfg;
    cfg.maxMismatches = 1;
    cfg.engine = core::EngineKind::HscanBitParallel;
    cfg.databaseDir = dir.str();

    core::SearchResult expected =
        core::SearchSession(guides, cfg).search(genome_seq);

    // Copy every stored blob, with one byte flipped, into a second
    // directory. The copy simulates a fresh process inheriting a
    // corrupted database: the first directory's shared in-memory tier
    // (which still holds the good bytes) must not mask the damage.
    TempDir corrupt_dir("corrupt2");
    size_t corrupted = 0;
    for (const auto &entry : fs::directory_iterator(dir.path)) {
        const fs::path copy =
            corrupt_dir.path / entry.path().filename();
        fs::copy_file(entry.path(), copy);
        std::fstream f(copy, std::ios::in | std::ios::out |
                                 std::ios::binary);
        f.seekg(-2, std::ios::end);
        char byte = 0;
        f.get(byte);
        f.seekp(-2, std::ios::end);
        f.put(static_cast<char>(byte ^ 0x40));
        ++corrupted;
    }
    ASSERT_GE(corrupted, 1u);

    // The corrupt blob is rejected, the session recompiles, results
    // are unaffected, and the rewritten blob serves the next session.
    core::SearchConfig corrupt_cfg = cfg;
    corrupt_cfg.databaseDir = corrupt_dir.str();
    setQuiet(true);
    core::SearchSession recovered(guides, corrupt_cfg);
    core::SearchResult result = recovered.search(genome_seq);
    setQuiet(false);
    EXPECT_EQ(recovered.compileCount(), 1u);
    EXPECT_EQ(recovered.databaseHits(), 0u);
    EXPECT_EQ(recovered.databaseMisses(), 1u);
    EXPECT_EQ(result.hits, expected.hits);

    core::SearchSession after(guides, corrupt_cfg);
    after.search(genome_seq);
    EXPECT_EQ(after.databaseHits(), 1u);
}

TEST(SearchService, PrewarmsFromTheDatabaseDirectory)
{
    Rng rng(test::testSeed(9108));
    TempDir dir("service");
    std::vector<core::Guide> guides = randomGuides(rng, 6);
    auto genome_seq =
        std::make_shared<const genome::Sequence>(testGenome(9109));

    core::ServiceOptions opts;
    opts.batchWindowSeconds = -1.0; // manual mode
    opts.databaseDir = dir.str();

    core::RequestOptions req;
    req.genome = genome_seq;
    req.config.maxMismatches = 2;
    req.config.engine = core::EngineKind::HscanDfa;

    core::SearchResult first;
    {
        core::SearchService service(opts);
        auto fut = service.submit(guides, req);
        service.drain();
        first = fut.get();
        EXPECT_EQ(service.metricsSnapshot().at("service.db_preloaded"),
                  0.0);
    }

    // Restarted service: construction preloads the blob the first
    // process persisted, and the request is served from it.
    {
        core::SearchService service(opts);
        EXPECT_EQ(service.metricsSnapshot().at("service.db_preloaded"),
                  1.0);
        auto fut = service.submit(guides, req);
        service.drain();
        core::SearchResult second = fut.get();
        EXPECT_EQ(second.hits, first.hits);
        EXPECT_EQ(second.run.metrics.at("session.db_hits"), 1.0);
        EXPECT_EQ(second.run.metrics.at("session.compiles"), 0.0);
    }
}

TEST(EngineAuto, CostModelRanksAndCountsItsChoice)
{
    // Small workload, tiny d, scalar Shift-Or: the dense-table DFA is
    // predicted to fit and wins on per-symbol cost. The tier is pinned
    // so the expectation is deterministic across hosts.
    core::AutoCalibration scalar_cal;
    scalar_cal.shiftOrTier = hscan::SimdTier::Scalar;
    core::WorkloadShape small;
    small.guideCount = 4;
    small.maxMismatches = 1;
    EXPECT_EQ(core::chooseAutoEngine(small, 1u << 22, scalar_cal),
              core::EngineKind::HscanDfa);

    // Same workload with a starved state budget: DFA is demoted below
    // Shift-Or instead of burning a doomed compile attempt.
    EXPECT_EQ(core::chooseAutoEngine(small, 8, scalar_cal),
              core::EngineKind::HscanBitParallel);

    // A vector Shift-Or tier only ever lowers the bit-parallel
    // prediction, so the crossover where Shift-Or overtakes the DFA
    // moves toward smaller workloads — never the other way.
    core::AutoCalibration avx512_cal = scalar_cal;
    avx512_cal.shiftOrTier = hscan::SimdTier::Avx512;
    for (size_t guides : {1u, 4u, 16u, 64u}) {
        core::WorkloadShape shape;
        shape.guideCount = guides;
        shape.maxMismatches = 2;
        const double scalar_ns = core::predictedNsPerSymbol(
            core::EngineKind::HscanBitParallel, shape, scalar_cal);
        const double avx512_ns = core::predictedNsPerSymbol(
            core::EngineKind::HscanBitParallel, shape, avx512_cal);
        EXPECT_LT(avx512_ns, scalar_ns) << "guides=" << guides;
        EXPECT_EQ(core::predictedNsPerSymbol(core::EngineKind::HscanDfa,
                                             shape, avx512_cal),
                  core::predictedNsPerSymbol(core::EngineKind::HscanDfa,
                                             shape, scalar_cal));
    }

    // Every ranking is a permutation of the full CPU chain, so the
    // fallback machinery always has somewhere to go.
    for (size_t guides : {1u, 10u, 100u, 1000u}) {
        for (int d = 0; d <= 4; ++d) {
            core::WorkloadShape shape;
            shape.guideCount = guides;
            shape.maxMismatches = d;
            auto ranking = core::autoEngineRanking(shape, 1u << 22);
            ASSERT_EQ(ranking.size(), 3u);
            std::sort(ranking.begin(), ranking.end());
            EXPECT_TRUE(std::is_sorted(ranking.begin(), ranking.end()));
        }
    }

    EXPECT_STREQ(core::engineName(core::EngineKind::Auto), "auto");
}

TEST(EngineAuto, SearchHitsAreBitIdenticalToTheSelectedEngine)
{
    Rng rng(test::testSeed(9110));
    const genome::Sequence genome_seq = testGenome(9111);

    // Sweep workload shapes that steer the model to different
    // choices; whatever auto picks must match that engine exactly.
    struct Case
    {
        size_t guides;
        int d;
    };
    for (Case c : {Case{2, 1}, Case{16, 2}, Case{64, 3}}) {
        std::vector<core::Guide> guides = randomGuides(rng, c.guides);

        core::SearchConfig auto_cfg;
        auto_cfg.maxMismatches = c.d;
        auto_cfg.engine = core::EngineKind::Auto;
        core::SearchSession session(guides, auto_cfg);
        core::SearchResult picked = session.search(genome_seq);

        // The session recorded its choice.
        const auto metrics = session.metricsSnapshot();
        core::WorkloadShape shape;
        shape.guideCount = c.guides;
        shape.maxMismatches = c.d;
        const core::EngineKind choice = core::chooseAutoEngine(
            shape, auto_cfg.params.hscanOpts.maxDfaStates);
        EXPECT_EQ(metrics.at(std::string("session.engine_auto.") +
                             core::engineName(choice)),
                  1.0)
            << "guides=" << c.guides << " d=" << c.d;

        // Bit-identity against every engine auto can select. A forced
        // engine that cannot serve the workload at all (hscan-dfa
        // exceeding its state budget at the largest shape) is no
        // conformance statement — auto demotes it and is covered by
        // the fallback test below.
        for (core::EngineKind kind : serializableEngines()) {
            core::SearchConfig forced = auto_cfg;
            forced.engine = kind;
            auto direct = core::SearchSession(guides, forced)
                              .trySearch(genome_seq);
            if (!direct.ok())
                continue;
            EXPECT_EQ(picked.hits, direct.value().hits)
                << "auto vs " << core::engineName(kind)
                << " guides=" << c.guides << " d=" << c.d;
        }
    }
}

TEST(EngineAuto, FallsBackThroughTheRankingOnCompileFailure)
{
    Rng rng(test::testSeed(9112));
    // A guide load and budget that forces the DFA attempt to fail
    // (8 states can never hold the subset construction), so auto must
    // degrade through its ranking and still serve the search.
    std::vector<core::Guide> guides = randomGuides(rng, 4);
    const genome::Sequence genome_seq = testGenome(9113, 8000);

    core::SearchConfig cfg;
    cfg.maxMismatches = 1;
    cfg.engine = core::EngineKind::Auto;
    cfg.params.hscanOpts.maxDfaStates = 8;

    core::SearchSession session(guides, cfg);
    auto result = session.trySearch(genome_seq);
    ASSERT_TRUE(result.ok());

    core::SearchConfig reference = cfg;
    reference.engine = core::EngineKind::Reference;
    core::SearchResult expected =
        core::SearchSession(guides, reference).search(genome_seq);
    EXPECT_EQ(result.value().hits, expected.hits);
}

} // namespace
} // namespace crispr
