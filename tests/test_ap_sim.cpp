/** @file Unit tests for the AP cycle simulator. */

#include <gtest/gtest.h>

#include "ap/simulator.hpp"
#include "automata/builders.hpp"
#include "baselines/brute.hpp"
#include "test_util.hpp"

namespace crispr::ap {
namespace {

using automata::HammingSpec;
using automata::ReportEvent;
using automata::StartKind;
using automata::SymbolClass;
using genome::Sequence;

TEST(ApSim, MatrixMachineEqualsGoldenScan)
{
    crispr::Rng rng(61);
    for (int d = 0; d <= 3; ++d) {
        auto spec = crispr::test::randomGuideSpec(rng, 10, 3, d, 2);
        automata::Nfa nfa = automata::buildHammingNfa(spec);
        ApMachine m = fromNfa(nfa);
        ApSimulator sim(m);
        Sequence g = crispr::test::randomGenome(rng, 3000, 0.01);
        auto got = sim.scanAll(g);
        auto want = baselines::bruteForceScan(g, std::span(&spec, 1));
        EXPECT_EQ(got, want) << "d=" << d;
    }
}

TEST(ApSim, RunStatsPopulated)
{
    crispr::Rng rng(62);
    auto spec = crispr::test::randomGuideSpec(rng, 8, 3, 1, 0);
    ApMachine m = fromNfa(automata::buildHammingNfa(spec));
    ApSimulator sim(m);
    Sequence g = crispr::test::randomGenome(rng, 1000);
    ApRunStats stats = sim.run(g.codes(), nullptr);
    EXPECT_EQ(stats.symbolCycles, 1000u);
    EXPECT_GT(stats.steActivations, 0u);
    EXPECT_GT(sim.kernelSeconds(stats), 0.0);
    EXPECT_NEAR(sim.kernelSeconds(stats),
                1000.0 / sim.config().clockHz, 1e-4);
}

HammingSpec
pamFirstSpec(const std::string &pattern, int d, size_t pam_len,
             uint32_t id = 0)
{
    HammingSpec spec;
    spec.masks = genome::masksFromIupac(pattern);
    spec.maxMismatches = d;
    spec.mismatchLo = pam_len;
    spec.mismatchHi = spec.masks.size();
    spec.reportId = id;
    return spec;
}

TEST(ApSimCounter, FindsIsolatedSitesExactly)
{
    // Counter design on a genome with well-separated planted sites:
    // results must equal the golden scan.
    crispr::Rng rng(63);
    const std::string pattern = "CGG" "ACGTACGTACGTACGTACGT";
    auto spec = pamFirstSpec(pattern, 2, 3, 4);

    // A genome unlikely to contain accidental CGG-triggered overlaps:
    // all-T background with planted sites.
    Sequence g = Sequence::fromString(std::string(2000, 'T'));
    Sequence site = Sequence::fromString(pattern);
    for (size_t at : {50u, 500u, 1500u}) {
        Sequence mut = genome::mutateSite(site, 2, 3, 23, rng);
        genome::plantSite(g, at, mut);
    }

    ApMachine m = buildCounterMachine(spec);
    ApSimulator sim(m);
    auto got = sim.scanAll(g);
    auto want = baselines::bruteForceScan(g, std::span(&spec, 1));
    EXPECT_EQ(got, want);
    EXPECT_EQ(got.size(), 3u);
}

TEST(ApSimCounter, RejectsOverBudgetSites)
{
    const std::string pattern = "CGG" "AAAAAAAAAA";
    auto spec = pamFirstSpec(pattern, 1, 3);
    Sequence g = Sequence::fromString(
        std::string("TTTT") + "CGGAACAAAAAAA" + std::string(20, 'T') +
        "CGGAACAACAAAA" + std::string(20, 'T'));
    // First site: 1 mismatch (C at guide pos 2) -> reported.
    // Second site: 2 mismatches -> suppressed by the counter.
    ApMachine m = buildCounterMachine(spec);
    ApSimulator sim(m);
    auto got = sim.scanAll(g);
    auto want = baselines::bruteForceScan(g, std::span(&spec, 1));
    EXPECT_EQ(got, want);
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0].end, 4u + 13u - 1u);
}

TEST(ApSimCounter, OverlappingTriggersShareTheCounter)
{
    // The documented limitation: a second PAM trigger inside an open
    // window resets the shared counter, so the first window can be
    // reported even though it exceeds the budget (a false positive
    // relative to the golden scan).
    const std::string pattern = "GG" "AAAAAAAA";
    auto spec = pamFirstSpec(pattern, 1, 2);
    //            0123456789...
    Sequence g = Sequence::fromString("GGACCGGAAAAAAAATTTT");
    // Window at 0: GG then ACCGGAAA -> mismatches at guide pos 1,2 (C,C)
    // and pos 3,4 (G,G)... well over budget -> golden scan rejects it.
    // But the GG at 5-6 re-triggers and resets the counter mid-window.
    ApMachine m = buildCounterMachine(spec);
    ApSimulator sim(m);
    auto got = sim.scanAll(g);
    auto want = baselines::bruteForceScan(g, std::span(&spec, 1));
    // The golden scan finds the window at 5 (GG + AAAAAAAA exact).
    ASSERT_GE(want.size(), 1u);
    // The counter design reports a superset here (the overlap artefact).
    for (const auto &e : want)
        EXPECT_TRUE(std::find(got.begin(), got.end(), e) != got.end());
    EXPECT_GT(got.size(), want.size());
}

TEST(ApSim, OutputBufferStallsUnderReportPressure)
{
    // An automaton that reports on every 'A' of an all-A genome floods
    // the event buffer; the stall model must kick in.
    automata::Nfa nfa;
    auto s = nfa.addState(SymbolClass::match(genome::iupacMask('A')),
                          StartKind::AllInput);
    nfa.setReport(s, 0);
    ApMachine m = fromNfa(nfa);

    ApSimConfig cfg;
    cfg.eventBufferDepth = 4;
    cfg.drainCyclesPerVector = 8;
    ApSimulator sim(m, cfg);
    Sequence g = Sequence::fromString(std::string(1000, 'A'));
    ApRunStats stats = sim.run(g.codes(), nullptr);
    EXPECT_EQ(stats.reportingCycles, 1000u);
    EXPECT_GT(stats.stallCycles, 0u);
    EXPECT_GT(stats.totalCycles(), stats.symbolCycles);

    // With the model disabled there are no stalls.
    ApSimConfig off;
    off.eventBufferDepth = 0;
    ApSimulator sim2(m, off);
    ApRunStats stats2 = sim2.run(g.codes(), nullptr);
    EXPECT_EQ(stats2.stallCycles, 0u);
}

TEST(ApSim, CounterPulseVsLatchModes)
{
    // Count two 'A' pulses; Pulse mode fires only on the reaching
    // cycle, Latch stays asserted.
    for (CounterMode mode : {CounterMode::Pulse, CounterMode::Latch}) {
        ApMachine m;
        ElemId a = m.addSte(SymbolClass::match(genome::iupacMask('A')),
                            StartKind::AllInput, "a");
        ElemId ctr = m.addCounter(2, mode, "c");
        m.connect(a, ctr, Port::CountUp);
        m.setReport(ctr, 1);

        ApSimulator sim(m);
        std::vector<ReportEvent> events;
        sim.run(Sequence::fromString("AAAA").codes(),
                [&](uint32_t id, uint64_t end) {
                    events.push_back(ReportEvent{id, end});
                });
        if (mode == CounterMode::Pulse) {
            ASSERT_EQ(events.size(), 1u);
            EXPECT_EQ(events[0].end, 1u); // second A reaches target
        } else {
            ASSERT_EQ(events.size(), 3u); // cycles 1, 2, 3
            EXPECT_EQ(events[0].end, 1u);
        }
    }
}

TEST(ApSim, CounterResetDominates)
{
    // Reset and count on the same cycle: reset first, then count.
    ApMachine m;
    ElemId a = m.addSte(SymbolClass::match(genome::iupacMask('A')),
                        StartKind::AllInput, "a");
    ElemId any = m.addSte(SymbolClass::any(), StartKind::AllInput, "any");
    ElemId ctr = m.addCounter(3, CounterMode::Latch, "c");
    m.connect(any, ctr, Port::CountUp); // +1 every cycle
    m.connect(a, ctr, Port::Reset);     // reset on every A
    m.setReport(ctr, 2);

    ApSimulator sim(m);
    std::vector<ReportEvent> events;
    // A appears every 2nd symbol: the counter never reaches 3.
    sim.run(Sequence::fromString("ACACACACAC").codes(),
            [&](uint32_t id, uint64_t end) {
                events.push_back(ReportEvent{id, end});
            });
    EXPECT_TRUE(events.empty());

    // Without resets it latches at cycle 2 and stays on.
    ApMachine m2;
    ElemId any2 =
        m2.addSte(SymbolClass::any(), StartKind::AllInput, "any");
    ElemId ctr2 = m2.addCounter(3, CounterMode::Latch, "c");
    m2.connect(any2, ctr2, Port::CountUp);
    m2.setReport(ctr2, 2);
    ApSimulator sim2(m2);
    std::vector<ReportEvent> events2;
    sim2.run(Sequence::fromString("ACACA").codes(),
             [&](uint32_t id, uint64_t end) {
                 events2.push_back(ReportEvent{id, end});
             });
    EXPECT_EQ(events2.size(), 3u); // cycles 2, 3, 4
}

} // namespace
} // namespace crispr::ap
