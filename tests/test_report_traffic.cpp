/** @file Unit tests for the report-stream encoding models. */

#include <gtest/gtest.h>

#include "fpga/report.hpp"

namespace crispr::fpga {
namespace {

using automata::ReportEvent;

std::vector<ReportEvent>
sampleEvents()
{
    // Three reporting cycles: 10 (2 events), 11, 500.
    return {{1, 10}, {2, 10}, {1, 11}, {3, 500}};
}

TEST(ReportTraffic, TrafficOfCountsCyclesAndEvents)
{
    ReportTraffic t = trafficOf(sampleEvents(), 64, 1000);
    EXPECT_EQ(t.events, 4u);
    EXPECT_EQ(t.reportingCycles, 3u);
    EXPECT_EQ(t.reportStates, 64u);
    EXPECT_EQ(t.totalCycles, 1000u);
}

TEST(ReportTraffic, RecordPerEventBytes)
{
    ReportTraffic t = trafficOf(sampleEvents(), 64, 1000);
    EXPECT_EQ(encodedBytes(ReportFormat::RecordPerEvent, t,
                           sampleEvents()),
              4u * 8);
}

TEST(ReportTraffic, CycleBitmapDependsOnDesignWidth)
{
    auto events = sampleEvents();
    ReportTraffic narrow = trafficOf(events, 8, 1000);
    ReportTraffic wide = trafficOf(events, 4096, 1000);
    EXPECT_EQ(encodedBytes(ReportFormat::CycleBitmap, narrow, events),
              3u * (4 + 1));
    EXPECT_EQ(encodedBytes(ReportFormat::CycleBitmap, wide, events),
              3u * (4 + 512));
}

TEST(ReportTraffic, CompressedIdsBytes)
{
    auto events = sampleEvents();
    ReportTraffic t = trafficOf(events, 64, 1000);
    EXPECT_EQ(encodedBytes(ReportFormat::CompressedIds, t, events),
              3u * 5 + 4u * 2);
}

TEST(ReportTraffic, OffsetDeltaExploitsClustering)
{
    // Dense clustered reports: deltas of 1 encode in one byte.
    std::vector<ReportEvent> dense;
    for (uint64_t t = 100; t < 200; ++t)
        dense.push_back({0, t});
    ReportTraffic traffic = trafficOf(dense, 64, 1000);
    const uint64_t delta =
        encodedBytes(ReportFormat::OffsetDelta, traffic, dense);
    const uint64_t record =
        encodedBytes(ReportFormat::RecordPerEvent, traffic, dense);
    EXPECT_LE(delta, record / 2);
}

TEST(ReportTraffic, RecommendPicksTheCheapest)
{
    // Sparse single events: record-per-event or offset-delta wins over
    // a wide bitmap.
    std::vector<ReportEvent> sparse = {{0, 10}, {1, 100000}};
    ReportTraffic t = trafficOf(sparse, 4096, 1u << 20);
    ReportFormat best = recommendFormat(t, sparse);
    EXPECT_NE(best, ReportFormat::CycleBitmap);
    const uint64_t best_bytes = encodedBytes(best, t, sparse);
    for (ReportFormat f :
         {ReportFormat::RecordPerEvent, ReportFormat::CycleBitmap,
          ReportFormat::CompressedIds, ReportFormat::OffsetDelta}) {
        EXPECT_LE(best_bytes, encodedBytes(f, t, sparse));
    }
}

TEST(ReportTraffic, DrainSeconds)
{
    EXPECT_DOUBLE_EQ(drainSeconds(1'500'000'000ull, 1.5), 1.0);
}

TEST(ReportTraffic, EmptyRun)
{
    std::vector<ReportEvent> none;
    ReportTraffic t = trafficOf(none, 128, 500);
    EXPECT_EQ(t.events, 0u);
    EXPECT_EQ(t.reportingCycles, 0u);
    for (ReportFormat f :
         {ReportFormat::RecordPerEvent, ReportFormat::CycleBitmap,
          ReportFormat::CompressedIds, ReportFormat::OffsetDelta}) {
        EXPECT_EQ(encodedBytes(f, t, none), 0u);
    }
}

} // namespace
} // namespace crispr::fpga
