/** @file Unit tests for Sequence. */

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "genome/sequence.hpp"

namespace crispr::genome {
namespace {

TEST(Sequence, FromStringAndBack)
{
    Sequence s = Sequence::fromString("ACGTN");
    ASSERT_EQ(s.size(), 5u);
    EXPECT_EQ(s.str(), "ACGTN");
    EXPECT_EQ(s[0], 0);
    EXPECT_EQ(s[4], kCodeN);
}

TEST(Sequence, LowerCaseAccepted)
{
    EXPECT_EQ(Sequence::fromString("acgt").str(), "ACGT");
}

TEST(Sequence, DegenerateLettersBecomeN)
{
    EXPECT_EQ(Sequence::fromString("ARYG").str(), "ANNG");
}

TEST(Sequence, RejectsInvalidCharacters)
{
    EXPECT_THROW(Sequence::fromString("AC GT"), FatalError);
    EXPECT_THROW(Sequence::fromString("ACX1"), FatalError);
}

TEST(Sequence, ReverseComplement)
{
    Sequence s = Sequence::fromString("AACGTN");
    EXPECT_EQ(s.reverseComplement().str(), "NACGTT");
}

TEST(Sequence, ReverseComplementInvolution)
{
    Sequence s = Sequence::fromString("GATTACANGGG");
    EXPECT_EQ(s.reverseComplement().reverseComplement(), s);
}

TEST(Sequence, SliceClampsAtEnd)
{
    Sequence s = Sequence::fromString("ACGTACGT");
    EXPECT_EQ(s.slice(2, 3).str(), "GTA");
    EXPECT_EQ(s.slice(6, 10).str(), "GT");
    EXPECT_TRUE(s.slice(8, 2).empty());
    EXPECT_TRUE(s.slice(100, 2).empty());
}

TEST(Sequence, AppendAndPushBack)
{
    Sequence s = Sequence::fromString("AC");
    s.push_back(baseCode('G'));
    s.append(Sequence::fromString("TT"));
    EXPECT_EQ(s.str(), "ACGTT");
}

TEST(Sequence, CountN)
{
    EXPECT_EQ(Sequence::fromString("ANNGTN").countN(), 3u);
    EXPECT_EQ(Sequence::fromString("ACGT").countN(), 0u);
}

TEST(Sequence, ConstructorRejectsInvalidCodes)
{
    EXPECT_THROW(Sequence(std::vector<uint8_t>{0, 1, 9}), PanicError);
}

TEST(MaskHamming, CountsMismatchesExactly)
{
    Sequence text = Sequence::fromString("ACGTACGT");
    auto pat = masksFromIupac("ACGA"); // last position differs at 0
    EXPECT_EQ(maskHamming(pat, text, 0, SIZE_MAX), 1u);
    auto pat2 = masksFromIupac("ACGT");
    EXPECT_EQ(maskHamming(pat2, text, 0, SIZE_MAX), 0u);
    EXPECT_EQ(maskHamming(pat2, text, 4, SIZE_MAX), 0u);
}

TEST(MaskHamming, EarlyExitAtLimit)
{
    Sequence text = Sequence::fromString("AAAAAAAA");
    auto pat = masksFromIupac("CCCCCCCC");
    EXPECT_EQ(maskHamming(pat, text, 0, 2), 3u); // limit+1 via early exit
}

TEST(MaskHamming, GenomeNIsAlwaysMismatch)
{
    Sequence text = Sequence::fromString("ANGT");
    auto pat = masksFromIupac("ANGT"); // IUPAC N matches ACGT, not N
    EXPECT_EQ(maskHamming(pat, text, 0, SIZE_MAX), 1u);
}

TEST(MaskHamming, DegenerateMasksMatchTheirSets)
{
    Sequence text = Sequence::fromString("AGGT");
    auto pat = masksFromIupac("RGGT"); // R = A|G
    EXPECT_EQ(maskHamming(pat, text, 0, SIZE_MAX), 0u);
}

TEST(Masks, ReverseComplementMasks)
{
    auto m = masksFromIupac("ANG");
    auto rc = reverseComplementMasks(m);
    // revcomp of A-N-G is C-N-T.
    EXPECT_EQ(rc[0], iupacMask('C'));
    EXPECT_EQ(rc[1], iupacMask('N'));
    EXPECT_EQ(rc[2], iupacMask('T'));
}

TEST(Masks, FromIupacRejectsInvalid)
{
    EXPECT_THROW(masksFromIupac("ACZ"), FatalError);
}

} // namespace
} // namespace crispr::genome
