/** @file Unit tests for full-machine ANML serialisation, plus the
 *  umbrella-header compile check. */

#include <gtest/gtest.h>

#include "crispr.hpp" // umbrella header: must compile standalone

#include "ap/anml.hpp"
#include "ap/simulator.hpp"
#include "test_util.hpp"

namespace crispr::ap {
namespace {

ApMachine
counterMachine()
{
    automata::HammingSpec spec;
    spec.masks = genome::masksFromIupac("CGG" "ACGTACGTAC");
    spec.maxMismatches = 2;
    spec.mismatchLo = 3;
    spec.mismatchHi = 13;
    spec.reportId = 9;
    return buildCounterMachine(spec);
}

bool
sameMachine(const ApMachine &a, const ApMachine &b)
{
    if (a.size() != b.size() || a.wires().size() != b.wires().size())
        return false;
    for (ElemId e = 0; e < a.size(); ++e) {
        const Element &x = a.element(e);
        const Element &y = b.element(e);
        if (x.kind != y.kind || x.cls != y.cls || x.start != y.start ||
            x.target != y.target || x.mode != y.mode ||
            x.gate != y.gate || x.report != y.report ||
            (x.report && x.reportId != y.reportId) || x.name != y.name)
            return false;
    }
    for (size_t w = 0; w < a.wires().size(); ++w) {
        const Wire &x = a.wires()[w];
        const Wire &y = b.wires()[w];
        if (x.from != y.from || x.to != y.to || x.port != y.port ||
            x.inverted != y.inverted)
            return false;
    }
    return true;
}

TEST(ApAnml, RoundTripsCounterMachine)
{
    ApMachine m = counterMachine();
    ApMachine back = machineAnmlFromString(machineAnmlString(m));
    EXPECT_TRUE(sameMachine(m, back));
}

TEST(ApAnml, RoundTripPreservesBehaviour)
{
    ApMachine m = counterMachine();
    ApMachine back = machineAnmlFromString(machineAnmlString(m));
    crispr::Rng rng(401);
    genome::Sequence g = crispr::test::randomGenome(rng, 2000);
    ApSimulator sa(m), sb(back);
    EXPECT_EQ(sa.scanAll(g), sb.scanAll(g));
}

TEST(ApAnml, OutputContainsElementMarkup)
{
    std::string text = machineAnmlString(counterMachine(), "net");
    EXPECT_NE(text.find("<counter id="), std::string::npos);
    EXPECT_NE(text.find("at-target=\"latch\""), std::string::npos);
    EXPECT_NE(text.find("<boolean id="), std::string::npos);
    EXPECT_NE(text.find("function=\"and\""), std::string::npos);
    EXPECT_NE(text.find("port=\"count\""), std::string::npos);
    EXPECT_NE(text.find("port=\"reset\""), std::string::npos);
    EXPECT_NE(text.find("inverted=\"1\""), std::string::npos);
    EXPECT_NE(text.find("report-code=\"9\""), std::string::npos);
}

TEST(ApAnml, ParseErrors)
{
    EXPECT_THROW(machineAnmlFromString("<counter id=\"a\"/>"),
                 FatalError);
    EXPECT_THROW(
        machineAnmlFromString("<wire from=\"a\" to=\"b\"/>"),
        FatalError);
    EXPECT_THROW(machineAnmlFromString(
                     "<boolean id=\"a\" function=\"and\"/>"
                     "<boolean id=\"a\" function=\"or\"/>"),
                 FatalError);
}

TEST(ApAnml, RoundTripsPlainSteNetworkToo)
{
    crispr::Rng rng(402);
    auto spec = crispr::test::randomGuideSpec(rng, 10, 3, 2, 3);
    ApMachine m = fromNfa(automata::buildHammingNfa(spec));
    ApMachine back = machineAnmlFromString(machineAnmlString(m));
    EXPECT_TRUE(sameMachine(m, back));
}

} // namespace
} // namespace crispr::ap
