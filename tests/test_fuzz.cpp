/** @file Failure-injection / fuzz tests: the parsers must reject
 *  arbitrary malformed input with FatalError — never crash, never
 *  raise PanicError (which would indicate an internal bug). */

#include <sstream>

#include <gtest/gtest.h>

#include "ap/anml.hpp"
#include "automata/anml.hpp"
#include "common/logging.hpp"
#include "genome/fasta.hpp"
#include "genome/fasta_stream.hpp"
#include "hscan/database.hpp"
#include "test_util.hpp"

namespace crispr {
namespace {

/** Random printable-ish text with FASTA/XML-like fragments mixed in. */
std::string
randomText(Rng &rng, size_t len)
{
    static const char *fragments[] = {
        ">", "<", "\"", "=", "\n", "ACGT", "state-transition-element",
        "symbol-set", "id", "/>", "wire", "counter", "report-code",
        "N", "\r\n", " ", "[", "]", "*",
    };
    std::string out;
    while (out.size() < len) {
        if (rng.chance(0.5)) {
            out += fragments[rng.below(std::size(fragments))];
        } else {
            out.push_back(static_cast<char>(32 + rng.below(95)));
        }
    }
    return out;
}

template <typename Fn>
void
expectGraceful(Fn &&fn, const std::string &what)
{
    try {
        fn();
    } catch (const FatalError &) {
        // Expected rejection path.
    } catch (const PanicError &e) {
        FAIL() << what << " raised PanicError (internal bug): "
               << e.what();
    } catch (const std::exception &e) {
        // std::stoul etc. escaping the parser would be a robustness
        // bug worth knowing about.
        FAIL() << what << " raised unexpected exception: " << e.what();
    }
}

/** "name seed=S trial=T" — everything needed to replay one case. */
std::string
fuzzCase(const char *what, uint64_t seed, int trial)
{
    return std::string(what) + " seed=" + std::to_string(seed) +
           " trial=" + std::to_string(trial);
}

class ParserFuzz : public ::testing::TestWithParam<int>
{
};

TEST_P(ParserFuzz, FastaReaderNeverCrashes)
{
    const uint64_t seed =
        test::testSeed(static_cast<uint64_t>(GetParam()) * 131);
    Rng rng(seed);
    for (int trial = 0; trial < 40; ++trial) {
        std::string text = randomText(rng, 200);
        expectGraceful(
            [&] {
                std::istringstream in(text);
                genome::readFasta(in);
            },
            fuzzCase("readFasta", seed, trial));
    }
}

TEST_P(ParserFuzz, FastaStreamNeverCrashes)
{
    const uint64_t seed =
        test::testSeed(static_cast<uint64_t>(GetParam()) * 137);
    Rng rng(seed);
    for (int trial = 0; trial < 40; ++trial) {
        std::string text = randomText(rng, 200);
        expectGraceful(
            [&] {
                std::istringstream in(text);
                genome::FastaStreamReader reader(in);
                std::vector<uint8_t> buf;
                while (reader.next(64, buf)) {
                }
            },
            fuzzCase("FastaStreamReader", seed, trial));
    }
}

TEST_P(ParserFuzz, AnmlParsersNeverCrash)
{
    const uint64_t seed =
        test::testSeed(static_cast<uint64_t>(GetParam()) * 139);
    Rng rng(seed);
    for (int trial = 0; trial < 40; ++trial) {
        std::string text = randomText(rng, 300);
        expectGraceful([&] { automata::anmlFromString(text); },
                       fuzzCase("anmlFromString", seed, trial));
        expectGraceful([&] { ap::machineAnmlFromString(text); },
                       fuzzCase("machineAnmlFromString", seed, trial));
    }
}

TEST_P(ParserFuzz, DatabaseDeserializeNeverCrashes)
{
    const uint64_t seed =
        test::testSeed(static_cast<uint64_t>(GetParam()) * 149);
    Rng rng(seed);
    // Mutated valid blobs plus pure garbage.
    auto spec = crispr::test::randomGuideSpec(rng, 8, 3, 1, 0);
    auto blob =
        hscan::Database::compile(std::vector{spec}).serialize();
    for (int trial = 0; trial < 40; ++trial) {
        auto mutated = blob;
        const size_t flips = 1 + rng.below(8);
        for (size_t f = 0; f < flips && !mutated.empty(); ++f)
            mutated[rng.below(mutated.size())] =
                static_cast<uint8_t>(rng.below(256));
        expectGraceful(
            [&] { hscan::Database::deserialize(mutated); },
            fuzzCase("Database::deserialize", seed, trial));

        std::vector<uint8_t> garbage(rng.below(64));
        for (auto &b : garbage)
            b = static_cast<uint8_t>(rng.below(256));
        expectGraceful(
            [&] { hscan::Database::deserialize(garbage); },
            fuzzCase("Database::deserialize(garbage)", seed, trial));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz, ::testing::Range(1, 5));

} // namespace
} // namespace crispr
