/** @file Unit tests for the typed error taxonomy (common::Error /
 *  Expected / Status), the Deadline token, and the fault-point
 *  framework. */

#include <cmath>
#include <string>

#include <gtest/gtest.h>

#include "common/deadline.hpp"
#include "common/error.hpp"
#include "common/faultpoints.hpp"
#include "common/logging.hpp"

namespace crispr::common {
namespace {

TEST(Error, CarriesCodeMessageAndContext)
{
    Error e = Error(ErrorCode::ScanFailed, "chunk 3 failed")
                  .withContext("engine", "hs-auto")
                  .withContext("chunk", "3");
    EXPECT_EQ(e.code(), ErrorCode::ScanFailed);
    EXPECT_FALSE(e.ok());
    EXPECT_EQ(e.message(), "chunk 3 failed");
    ASSERT_EQ(e.context().size(), 2u);
    EXPECT_EQ(e.str(),
              "[scan_failed] chunk 3 failed (engine=hs-auto, chunk=3)");

    EXPECT_TRUE(Error().ok());
    EXPECT_STREQ(errorCodeName(ErrorCode::DeadlineExceeded),
                 "deadline_exceeded");
    EXPECT_STREQ(errorCodeName(ErrorCode::FaultInjected),
                 "fault_injected");
}

TEST(Expected, HoldsValueOrError)
{
    Expected<int> ok(42);
    ASSERT_TRUE(ok.ok());
    EXPECT_EQ(ok.value(), 42);

    Expected<int> bad(Error(ErrorCode::ParseError, "nope"));
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.error().code(), ErrorCode::ParseError);
}

TEST(Expected, ValueOrThrowRaisesErrorException)
{
    EXPECT_EQ(Expected<int>(7).valueOrThrow(), 7);
    try {
        Expected<int>(Error(ErrorCode::CompileFailed, "boom"))
            .valueOrThrow();
        FAIL() << "expected ErrorException";
    } catch (const ErrorException &e) {
        EXPECT_EQ(e.error().code(), ErrorCode::CompileFailed);
        EXPECT_NE(std::string(e.what()).find("boom"),
                  std::string::npos);
    }
    // The bridge derives from FatalError: legacy catch sites work.
    EXPECT_THROW(Expected<int>(Error(ErrorCode::Internal, "x"))
                     .valueOrThrow(),
                 FatalError);
}

TEST(Status, OkAndError)
{
    Status ok;
    EXPECT_TRUE(ok.ok());
    ok.throwIfError(); // no-op

    Status bad(Error(ErrorCode::InvalidArgument, "bad chunk size"));
    EXPECT_FALSE(bad.ok());
    EXPECT_THROW(bad.throwIfError(), ErrorException);
}

TEST(Deadline, DefaultIsUnlimited)
{
    Deadline d;
    EXPECT_FALSE(d.limited());
    EXPECT_FALSE(d.expired());
    EXPECT_FALSE(d.cancelled());
    EXPECT_FALSE(d.timedOut());
    d.cancel(); // no-op
    EXPECT_FALSE(d.expired());
    EXPECT_TRUE(std::isinf(d.remainingSeconds()));
}

TEST(Deadline, TimesOut)
{
    Deadline far = Deadline::after(3600.0);
    EXPECT_TRUE(far.limited());
    EXPECT_FALSE(far.expired());
    EXPECT_GT(far.remainingSeconds(), 3000.0);

    Deadline past = Deadline::after(0.0);
    EXPECT_TRUE(past.timedOut());
    EXPECT_TRUE(past.expired());
    EXPECT_FALSE(past.cancelled());
    EXPECT_EQ(past.remainingSeconds(), 0.0);
}

TEST(Deadline, CancellationIsSharedAcrossCopies)
{
    Deadline token = Deadline::manual();
    Deadline copy = token;
    EXPECT_FALSE(copy.expired());
    EXPECT_FALSE(copy.timedOut());
    token.cancel();
    EXPECT_TRUE(copy.cancelled());
    EXPECT_TRUE(copy.expired());
    EXPECT_FALSE(copy.timedOut());
    EXPECT_EQ(copy.remainingSeconds(), 0.0);
}

class FaultPoints : public ::testing::Test
{
  protected:
    void SetUp() override { faultpoints::resetAll(); }
    void TearDown() override { faultpoints::resetAll(); }
};

TEST_F(FaultPoints, UnarmedNeverFails)
{
    EXPECT_FALSE(faultpoints::shouldFail("t.unarmed"));
    EXPECT_EQ(faultpoints::visits("t.unarmed"), 0u);
}

TEST_F(FaultPoints, FailOnceFiresExactlyOnce)
{
    faultpoints::armFailOnce("t.once");
    EXPECT_TRUE(faultpoints::shouldFail("t.once"));
    EXPECT_FALSE(faultpoints::shouldFail("t.once"));
    EXPECT_FALSE(faultpoints::shouldFail("t.once"));
    EXPECT_EQ(faultpoints::failures("t.once"), 1u);
}

TEST_F(FaultPoints, FailNthFiresOnThatVisitOnly)
{
    faultpoints::armFailNth("t.nth", 3);
    EXPECT_FALSE(faultpoints::shouldFail("t.nth"));
    EXPECT_FALSE(faultpoints::shouldFail("t.nth"));
    EXPECT_TRUE(faultpoints::shouldFail("t.nth"));
    EXPECT_FALSE(faultpoints::shouldFail("t.nth"));
    EXPECT_EQ(faultpoints::visits("t.nth"), 4u);
    EXPECT_EQ(faultpoints::failures("t.nth"), 1u);
}

TEST_F(FaultPoints, ProbabilityExtremesAreDeterministic)
{
    faultpoints::armProbability("t.never", 0.0, 7);
    faultpoints::armProbability("t.always", 1.0, 7);
    for (int i = 0; i < 50; ++i) {
        EXPECT_FALSE(faultpoints::shouldFail("t.never"));
        EXPECT_TRUE(faultpoints::shouldFail("t.always"));
    }
    EXPECT_EQ(faultpoints::failures("t.always"), 50u);
}

TEST_F(FaultPoints, ProbabilityStreamIsSeedDeterministic)
{
    auto draw = [](uint64_t seed) {
        faultpoints::armProbability("t.prob", 0.5, seed);
        std::string pattern;
        for (int i = 0; i < 32; ++i)
            pattern += faultpoints::shouldFail("t.prob") ? '1' : '0';
        return pattern;
    };
    const std::string a = draw(42);
    const std::string b = draw(42);
    EXPECT_EQ(a, b);
    // Roughly half fire (sanity, not a distribution test).
    EXPECT_NE(a.find('1'), std::string::npos);
    EXPECT_NE(a.find('0'), std::string::npos);
}

TEST_F(FaultPoints, DisarmAndRearmResetCounters)
{
    faultpoints::armFailNth("t.re", 1);
    EXPECT_TRUE(faultpoints::shouldFail("t.re"));
    faultpoints::disarm("t.re");
    EXPECT_FALSE(faultpoints::shouldFail("t.re"));
    EXPECT_EQ(faultpoints::failures("t.re"), 1u); // readable after disarm
    faultpoints::armFailNth("t.re", 1);
    EXPECT_EQ(faultpoints::visits("t.re"), 0u);
    EXPECT_TRUE(faultpoints::shouldFail("t.re"));
}

TEST_F(FaultPoints, ArmsFromSpecString)
{
    setQuiet(true);
    EXPECT_EQ(faultpoints::armFromSpec(
                  "a=once;b=nth:2,c=prob:1.0:9;junk;d=wat:1"),
              3u);
    setQuiet(false);
    EXPECT_TRUE(faultpoints::shouldFail("a"));
    EXPECT_FALSE(faultpoints::shouldFail("b"));
    EXPECT_TRUE(faultpoints::shouldFail("b"));
    EXPECT_TRUE(faultpoints::shouldFail("c"));
    EXPECT_FALSE(faultpoints::shouldFail("junk"));
    EXPECT_FALSE(faultpoints::shouldFail("d"));
}

} // namespace
} // namespace crispr::common
