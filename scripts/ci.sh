#!/usr/bin/env bash
# CI entry point: build + test the default preset, re-run everything
# under ASan/UBSan, run the fault-injection, cross-engine conformance,
# serving-layer, executor-concurrency, pattern-database,
# overload-protection, sharded-serving, and scoring-conformance
# suites as their own line items (service, database, overload, shard,
# and scoring also under ASan; the simd+conformance labels twice per
# preset — CRISPR_SIMD=scalar and native tier;
# concurrency/service/fault/overload/simd/shard/scoring under
# ThreadSanitizer via the tsan preset, since those are the suites that
# exercise the shared work-stealing pool), prove the
# -DCRISPR_METRICS=OFF configuration
# still builds and passes, smoke-test a cold-start-from-database
# server restart plus the --health readiness probe, and archive a
# metrics + trace artifact from the platform explorer plus a
# serving-throughput row (spawn-per-scan vs shared-pool, cold-compile
# vs database-load, 1x/2x/4x overload goodput, and 1/2/4/8-shard
# scatter-gather req/s) from bench_service plus a per-tier SIMD
# kernel-throughput row from bench_hscan and a scored-vs-boolean /
# ranked-vs-post-hoc row from bench_e16_scoring.
#
# Usage: scripts/ci.sh [-j N]
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)
while getopts "j:" opt; do
    case "$opt" in
    j) jobs="$OPTARG" ;;
    *) echo "usage: $0 [-j N]" >&2; exit 2 ;;
    esac
done

run() {
    echo "==> $*"
    "$@"
}

for preset in default sanitize; do
    run cmake --preset "$preset"
    run cmake --build --preset "$preset" -j "$jobs"
    run ctest --preset "$preset" -j "$jobs" --timeout 600
done

# The fault-injection label, by itself: `ctest -L fault` is the suite
# that proves the process survives injected compile/scan/parse faults.
run ctest --test-dir build -L fault --output-on-failure -j "$jobs" --timeout 600

# The conformance label: randomized workloads through every registry
# engine, bit-identical against the reference interpreter.
run ctest --test-dir build -L conformance --output-on-failure -j "$jobs" --timeout 600

# The SIMD matrix, twice per preset: once pinned to the scalar
# reference kernel via the CRISPR_SIMD override and once at the
# host's native tier, so a vector-kernel bug can never hide behind
# dispatch (and the conformance sweep re-rolls its random tier draws
# under both). Sanitizers see the vector kernels too: masked loads
# and lane tails are exactly where they earn their keep.
for tree in build build-sanitize; do
    run env CRISPR_SIMD=scalar ctest --test-dir "$tree" \
        -L "simd|conformance" --output-on-failure -j "$jobs" --timeout 600
    run ctest --test-dir "$tree" -L "simd|conformance" \
        --output-on-failure -j "$jobs" --timeout 600
done

# The serving layer, as its own line item on both presets: request
# coalescing is the most concurrency-heavy code in the library, so the
# service label runs under the sanitizers too.
run ctest --test-dir build -L service --output-on-failure -j "$jobs" --timeout 600
run ctest --test-dir build-sanitize -L service --output-on-failure \
    -j "$jobs" --timeout 600

# The concurrency label: the shared work-stealing Executor under
# skewed loads, backpressure, cancellation, and shutdown.
run ctest --test-dir build -L concurrency --output-on-failure \
    -j "$jobs" --timeout 600

# The pattern-database label on both presets: serialization round
# trips, corrupt-blob rejection, warm starts, and engine=auto
# conformance all touch the filesystem and deserialize attacker-shaped
# bytes, so it runs under ASan/UBSan as well.
run ctest --test-dir build -L database --output-on-failure -j "$jobs" --timeout 600
run ctest --test-dir build-sanitize -L database --output-on-failure \
    -j "$jobs" --timeout 600

# The overload label on both presets: admission control, load
# shedding, circuit breakers, pressure degradation, and the
# bounded-queue chaos soak — the suite that proves the serving layer
# degrades instead of collapsing.
run ctest --test-dir build -L overload --output-on-failure -j "$jobs" --timeout 600
run ctest --test-dir build-sanitize -L overload --output-on-failure \
    -j "$jobs" --timeout 600

# The sharded-serving label on both presets: scatter-gather
# bit-identity across shard counts, shard-seam correctness, the packed
# ".2bit" reader (attacker-shaped file bytes, so ASan/UBSan matter),
# and mmap load-once sharing under concurrent requests.
run ctest --test-dir build -L shard --output-on-failure -j "$jobs" --timeout 600
run ctest --test-dir build-sanitize -L shard --output-on-failure \
    -j "$jobs" --timeout 600

# The scoring conformance label on both presets: in-scan penalties
# bit-identical to the post-hoc recomputation on every engine,
# ranked-mode equivalence to filter-after-full-search, shard/geometry
# invariance of the ranked listing, and scored-state database round
# trips (deserialized weight tables are attacker-shaped bytes, so
# ASan/UBSan matter).
run ctest --test-dir build -L scoring --output-on-failure -j "$jobs" --timeout 600
run ctest --test-dir build-sanitize -L scoring --output-on-failure \
    -j "$jobs" --timeout 600

# ThreadSanitizer over every suite that touches the pool: the
# concurrency tier plus the service (coalescing + soak), fault
# (retry/fallback under injected failures), overload (admission +
# breakers under 8-client saturation), and shard (scatter-gather
# helping joins + shared-mmap loads) tiers. TSan cannot combine with
# ASan, so this is its own preset and build tree.
run cmake --preset tsan
run cmake --build --preset tsan -j "$jobs"
run ctest --test-dir build-tsan \
    -L "concurrency|service|fault|overload|simd|shard|scoring" \
    --output-on-failure -j "$jobs" --timeout 600

# The observability layer is compile-time optional; an OFF build must
# still compile and pass the whole tier-1 suite (histogram/trace tests
# skip themselves).
run cmake -B build-nometrics -S . -DCMAKE_BUILD_TYPE=Release \
    -DCRISPR_METRICS=OFF
run cmake --build build-nometrics -j "$jobs"
run ctest --test-dir build-nometrics --output-on-failure -j "$jobs" --timeout 600

# Archive a small observability artifact: per-engine metric maps and a
# chrome://tracing span file from one explorer sweep.
mkdir -p build/artifacts
run ./build/examples/platform_explorer --genome-mb 1 --guides 4 \
    --threads 2 --chunk-kb 128 --skip-slow \
    --metrics-json build/artifacts/engine_metrics.json \
    --trace-json build/artifacts/search_trace.json
test -s build/artifacts/engine_metrics.json
test -s build/artifacts/search_trace.json

# Cold-start-from-database smoke test: run the demo server twice
# against the same database directory. The first run compiles and
# persists; the second must pre-warm from the directory (a non-zero
# service.db_preloaded proves the service found the blobs) and serve
# the same requests.
db_smoke_dir=$(mktemp -d)
trap 'rm -rf "$db_smoke_dir"' EXIT
run ./build/examples/search_server --engine auto \
    --db-dir "$db_smoke_dir" > build/artifacts/db_smoke_cold.txt
run ./build/examples/search_server --engine auto --health \
    --db-dir "$db_smoke_dir" > build/artifacts/db_smoke_warm.txt
grep -q 'service.db_preloaded' build/artifacts/db_smoke_warm.txt
# --health doubles as the readiness probe: an idle post-serve service
# must report ready (exit 0, checked by `run` via set -e) and say so.
grep -q 'ready *| *yes' build/artifacts/db_smoke_warm.txt
! grep -q 'service.db_preloaded *| *0\.00' \
    build/artifacts/db_smoke_warm.txt

# Serving-layer throughput row (small shape for CI speed): coalesced
# vs serial requests/sec plus the spawn-per-scan vs shared-pool
# comparison at 16/64 concurrent clients and the cold-compile vs
# pattern-database startup rows, archived for trend tracking. The
# fresh row is also copied next to the committed BENCH_service.json
# snapshot at the repo root so a reviewer can diff the trajectory.
run ./build/bench/bench_service --genome-mb 2 --requests 64 \
    --pool-compare --db-compare --overload --shard-compare \
    --json build/artifacts/BENCH_service.json
test -s build/artifacts/BENCH_service.json
grep -q '"pool_64_rps"' build/artifacts/BENCH_service.json
grep -q '"db_speedup_100"' build/artifacts/BENCH_service.json
grep -q '"overload_4x_goodput_rps"' build/artifacts/BENCH_service.json
grep -q '"shard_4_rps"' build/artifacts/BENCH_service.json
run cp build/artifacts/BENCH_service.json BENCH_service.latest.json

# Kernel-level SIMD throughput row: scalar/avx2/avx512 bytes/sec on
# the Shift-Or scan across d=1/3/5 x 10/100/1000 guides (unusable
# tiers are skipped with a note). The binary itself asserts every
# tier reports identical event counts, so this doubles as one more
# cross-tier identity check on a bench-sized workload.
run ./build/bench/bench_hscan --simd-compare \
    --json build/artifacts/BENCH_hscan.json
test -s build/artifacts/BENCH_hscan.json
grep -q '"shiftor_scalar_d3_g100_bps"' build/artifacts/BENCH_hscan.json
grep -q '"best_tier"' build/artifacts/BENCH_hscan.json
run cp build/artifacts/BENCH_hscan.json BENCH_hscan.latest.json

# Scored-automata row (small shape for CI speed): in-scan scoring
# overhead vs the boolean baseline and the integrated ranked path vs
# boolean + post-hoc rescoring, on the hit-dense guide-family
# workload. The binary fatals if the two ranked listings diverge, so
# this doubles as a conformance check at bench scale.
run ./build/bench/bench_e16_scoring --genome-mb 1 --guides 200 \
    --reps 3 --json build/artifacts/BENCH_e16_scoring.json
test -s build/artifacts/BENCH_e16_scoring.json
grep -q '"scored_vs_boolean"' build/artifacts/BENCH_e16_scoring.json
grep -q '"ranked_speedup"' build/artifacts/BENCH_e16_scoring.json
run cp build/artifacts/BENCH_e16_scoring.json \
    BENCH_e16_scoring.latest.json

echo "==> ci: all green"
