#!/usr/bin/env bash
# CI entry point: build + test the default preset, re-run everything
# under ASan/UBSan, run the fault-injection, cross-engine conformance,
# serving-layer, and executor-concurrency suites as their own line
# items (service also under ASan; concurrency/service/fault under
# ThreadSanitizer via the tsan preset, since those are the suites that
# exercise the shared work-stealing pool), prove the
# -DCRISPR_METRICS=OFF configuration still builds and passes, and
# archive a metrics + trace artifact from the platform explorer plus a
# serving-throughput row (including the spawn-per-scan vs shared-pool
# comparison) from bench_service.
#
# Usage: scripts/ci.sh [-j N]
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)
while getopts "j:" opt; do
    case "$opt" in
    j) jobs="$OPTARG" ;;
    *) echo "usage: $0 [-j N]" >&2; exit 2 ;;
    esac
done

run() {
    echo "==> $*"
    "$@"
}

for preset in default sanitize; do
    run cmake --preset "$preset"
    run cmake --build --preset "$preset" -j "$jobs"
    run ctest --preset "$preset" -j "$jobs"
done

# The fault-injection label, by itself: `ctest -L fault` is the suite
# that proves the process survives injected compile/scan/parse faults.
run ctest --test-dir build -L fault --output-on-failure -j "$jobs"

# The conformance label: randomized workloads through every registry
# engine, bit-identical against the reference interpreter.
run ctest --test-dir build -L conformance --output-on-failure -j "$jobs"

# The serving layer, as its own line item on both presets: request
# coalescing is the most concurrency-heavy code in the library, so the
# service label runs under the sanitizers too.
run ctest --test-dir build -L service --output-on-failure -j "$jobs"
run ctest --test-dir build-sanitize -L service --output-on-failure \
    -j "$jobs"

# The concurrency label: the shared work-stealing Executor under
# skewed loads, backpressure, cancellation, and shutdown.
run ctest --test-dir build -L concurrency --output-on-failure \
    -j "$jobs"

# ThreadSanitizer over every suite that touches the pool: the
# concurrency tier plus the service (coalescing + soak) and fault
# (retry/fallback under injected failures) tiers. TSan cannot combine
# with ASan, so this is its own preset and build tree.
run cmake --preset tsan
run cmake --build --preset tsan -j "$jobs"
run ctest --test-dir build-tsan -L "concurrency|service|fault" \
    --output-on-failure -j "$jobs"

# The observability layer is compile-time optional; an OFF build must
# still compile and pass the whole tier-1 suite (histogram/trace tests
# skip themselves).
run cmake -B build-nometrics -S . -DCMAKE_BUILD_TYPE=Release \
    -DCRISPR_METRICS=OFF
run cmake --build build-nometrics -j "$jobs"
run ctest --test-dir build-nometrics --output-on-failure -j "$jobs"

# Archive a small observability artifact: per-engine metric maps and a
# chrome://tracing span file from one explorer sweep.
mkdir -p build/artifacts
run ./build/examples/platform_explorer --genome-mb 1 --guides 4 \
    --threads 2 --chunk-kb 128 --skip-slow \
    --metrics-json build/artifacts/engine_metrics.json \
    --trace-json build/artifacts/search_trace.json
test -s build/artifacts/engine_metrics.json
test -s build/artifacts/search_trace.json

# Serving-layer throughput row (small shape for CI speed): coalesced
# vs serial requests/sec plus the spawn-per-scan vs shared-pool
# comparison at 16/64 concurrent clients, archived for trend tracking.
run ./build/bench/bench_service --genome-mb 2 --requests 64 \
    --pool-compare --json build/artifacts/BENCH_service.json
test -s build/artifacts/BENCH_service.json
grep -q '"pool_64_rps"' build/artifacts/BENCH_service.json

echo "==> ci: all green"
