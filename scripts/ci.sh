#!/usr/bin/env bash
# CI entry point: build + test the default preset, re-run everything
# under ASan/UBSan, run the fault-injection and cross-engine
# conformance suites as their own line items, prove the
# -DCRISPR_METRICS=OFF configuration still builds and passes, and
# archive a metrics + trace artifact from the platform explorer.
#
# Usage: scripts/ci.sh [-j N]
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)
while getopts "j:" opt; do
    case "$opt" in
    j) jobs="$OPTARG" ;;
    *) echo "usage: $0 [-j N]" >&2; exit 2 ;;
    esac
done

run() {
    echo "==> $*"
    "$@"
}

for preset in default sanitize; do
    run cmake --preset "$preset"
    run cmake --build --preset "$preset" -j "$jobs"
    run ctest --preset "$preset" -j "$jobs"
done

# The fault-injection label, by itself: `ctest -L fault` is the suite
# that proves the process survives injected compile/scan/parse faults.
run ctest --test-dir build -L fault --output-on-failure -j "$jobs"

# The conformance label: randomized workloads through every registry
# engine, bit-identical against the reference interpreter.
run ctest --test-dir build -L conformance --output-on-failure -j "$jobs"

# The observability layer is compile-time optional; an OFF build must
# still compile and pass the whole tier-1 suite (histogram/trace tests
# skip themselves).
run cmake -B build-nometrics -S . -DCMAKE_BUILD_TYPE=Release \
    -DCRISPR_METRICS=OFF
run cmake --build build-nometrics -j "$jobs"
run ctest --test-dir build-nometrics --output-on-failure -j "$jobs"

# Archive a small observability artifact: per-engine metric maps and a
# chrome://tracing span file from one explorer sweep.
mkdir -p build/artifacts
run ./build/examples/platform_explorer --genome-mb 1 --guides 4 \
    --threads 2 --skip-slow \
    --metrics-json build/artifacts/engine_metrics.json \
    --trace-json build/artifacts/search_trace.json
test -s build/artifacts/engine_metrics.json
test -s build/artifacts/search_trace.json

echo "==> ci: all green"
