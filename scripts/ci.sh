#!/usr/bin/env bash
# CI entry point: build + test the default preset, re-run everything
# under ASan/UBSan, run the fault-injection, cross-engine conformance,
# and serving-layer suites as their own line items (service also under
# the sanitizers), prove the -DCRISPR_METRICS=OFF configuration still
# builds and passes, and archive a metrics + trace artifact from the
# platform explorer plus a serving-throughput row from bench_service.
#
# Usage: scripts/ci.sh [-j N]
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)
while getopts "j:" opt; do
    case "$opt" in
    j) jobs="$OPTARG" ;;
    *) echo "usage: $0 [-j N]" >&2; exit 2 ;;
    esac
done

run() {
    echo "==> $*"
    "$@"
}

for preset in default sanitize; do
    run cmake --preset "$preset"
    run cmake --build --preset "$preset" -j "$jobs"
    run ctest --preset "$preset" -j "$jobs"
done

# The fault-injection label, by itself: `ctest -L fault` is the suite
# that proves the process survives injected compile/scan/parse faults.
run ctest --test-dir build -L fault --output-on-failure -j "$jobs"

# The conformance label: randomized workloads through every registry
# engine, bit-identical against the reference interpreter.
run ctest --test-dir build -L conformance --output-on-failure -j "$jobs"

# The serving layer, as its own line item on both presets: request
# coalescing is the most concurrency-heavy code in the library, so the
# service label runs under the sanitizers too.
run ctest --test-dir build -L service --output-on-failure -j "$jobs"
run ctest --test-dir build-sanitize -L service --output-on-failure \
    -j "$jobs"

# The observability layer is compile-time optional; an OFF build must
# still compile and pass the whole tier-1 suite (histogram/trace tests
# skip themselves).
run cmake -B build-nometrics -S . -DCMAKE_BUILD_TYPE=Release \
    -DCRISPR_METRICS=OFF
run cmake --build build-nometrics -j "$jobs"
run ctest --test-dir build-nometrics --output-on-failure -j "$jobs"

# Archive a small observability artifact: per-engine metric maps and a
# chrome://tracing span file from one explorer sweep.
mkdir -p build/artifacts
run ./build/examples/platform_explorer --genome-mb 1 --guides 4 \
    --threads 2 --skip-slow \
    --metrics-json build/artifacts/engine_metrics.json \
    --trace-json build/artifacts/search_trace.json
test -s build/artifacts/engine_metrics.json
test -s build/artifacts/search_trace.json

# Serving-layer throughput row (small shape for CI speed): coalesced
# vs serial requests/sec, archived for trend tracking.
run ./build/bench/bench_service --genome-mb 4 --requests 16 \
    --json build/artifacts/BENCH_service.json
test -s build/artifacts/BENCH_service.json

echo "==> ci: all green"
