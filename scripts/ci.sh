#!/usr/bin/env bash
# CI entry point: build + test the default preset, re-run everything
# under ASan/UBSan, then run the fault-injection suite on its own so
# recovery-path regressions are visible as a separate line item.
#
# Usage: scripts/ci.sh [-j N]
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)
while getopts "j:" opt; do
    case "$opt" in
    j) jobs="$OPTARG" ;;
    *) echo "usage: $0 [-j N]" >&2; exit 2 ;;
    esac
done

run() {
    echo "==> $*"
    "$@"
}

for preset in default sanitize; do
    run cmake --preset "$preset"
    run cmake --build --preset "$preset" -j "$jobs"
    run ctest --preset "$preset" -j "$jobs"
done

# The fault-injection label, by itself: `ctest -L fault` is the suite
# that proves the process survives injected compile/scan/parse faults.
run ctest --test-dir build -L fault --output-on-failure -j "$jobs"

echo "==> ci: all green"
