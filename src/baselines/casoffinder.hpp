/**
 * @file
 * From-scratch reimplementation of the Cas-OFFinder algorithm (Bae,
 * Park, Kim 2014), the GPU baseline of the paper.
 *
 * The algorithm is a two-stage brute-force search:
 *   stage 1: scan every genome position for an exact-region (PAM) match;
 *   stage 2: for every surviving candidate and every guide, count
 *            mismatches over the mismatch-allowed region with early exit.
 *
 * The *algorithm* runs natively here (functionally verified against the
 * golden scan). Because the original is an OpenCL GPU tool, a documented
 * device model converts the counted device work into an estimated GPU
 * execution time (see GpuDeviceModel); the host wall-clock of this
 * reimplementation is also reported.
 */

#ifndef CRISPR_BASELINES_CASOFFINDER_HPP_
#define CRISPR_BASELINES_CASOFFINDER_HPP_

#include <span>
#include <vector>

#include "automata/builders.hpp"
#include "automata/interp.hpp"
#include "genome/sequence.hpp"

namespace crispr::baselines {

/** Work the device executed, for the timing model. */
struct CasOffinderWork
{
    uint64_t positionsScanned = 0;  //!< stage-1 PAM probes
    uint64_t pamHits = 0;           //!< candidates surviving stage 1
    uint64_t comparisons = 0;       //!< stage-2 (candidate, guide) pairs
    uint64_t basesCompared = 0;     //!< stage-2 base probes (early exit)
    uint64_t matches = 0;
    uint64_t genomeBytes = 0;
};

/**
 * Timing model of the OpenCL tool on a mid-range discrete GPU
 * (GTX-980-class, as in the paper's era). Constants are calibrated to
 * the published throughput of Cas-OFFinder 2.4 (see EXPERIMENTS.md) and
 * deliberately include the tool's real inefficiencies: chunked PCIe
 * transfers, uncoalesced candidate gathers, and host-side result
 * collection.
 */
struct GpuDeviceModel
{
    double pcieGBs = 6.0;          //!< host->device streaming bandwidth
    double memoryGBs = 224.0;      //!< device DRAM bandwidth (GTX 980)
    /**
     * Effective fraction of peak DRAM bandwidth the stage-2 candidate
     * gathers achieve. Uncoalesced single-byte probes burn a whole
     * 128-byte line per touch (1/128 = 0.008 upper bound); measured
     * occupancy and divergence of the OpenCL tool cost a further ~6x.
     * Calibrated so the modelled tool reproduces the paper's implied
     * end-to-end throughput (see EXPERIMENTS.md, E5/E6).
     */
    double gatherEfficiency = 0.0012;
    double compareNsPerBase = 0.02; //!< amortised ALU cost per base cmp
    double hostNsPerCandidate = 1.2; //!< buffer readback + host filter
    double launchOverheadS = 2.0e-3; //!< per kernel-batch launch
    double watts = 165.0;          //!< device power under load
    uint64_t chunkBytes = 64ull << 20; //!< genome streamed in chunks

    /** Estimated device execution seconds for the given work. */
    double kernelSeconds(const CasOffinderWork &work) const;
    /** Estimated end-to-end seconds (transfers + host side included). */
    double totalSeconds(const CasOffinderWork &work) const;
};

/** Cas-OFFinder reimplementation result. */
struct CasOffinderResult
{
    std::vector<automata::ReportEvent> events;
    CasOffinderWork work;
    double hostSeconds = 0.0; //!< measured wall-clock of this C++ port
};

/**
 * Run the Cas-OFFinder algorithm for a set of Hamming pattern specs.
 * Specs with a common exact region (PAM placement and masks) share
 * stage 1; the event set equals bruteForceScan() (tested).
 */
CasOffinderResult
casOffinderScan(const genome::Sequence &genome,
                std::span<const automata::HammingSpec> specs);

} // namespace crispr::baselines

#endif // CRISPR_BASELINES_CASOFFINDER_HPP_
