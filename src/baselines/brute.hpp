/**
 * @file
 * Golden brute-force verifier: a direct O(genome x pattern) Hamming scan
 * that defines the ground-truth match set every engine (CPU, GPU, FPGA,
 * AP, and both baseline tools) is validated against.
 */

#ifndef CRISPR_BASELINES_BRUTE_HPP_
#define CRISPR_BASELINES_BRUTE_HPP_

#include <span>
#include <vector>

#include "automata/builders.hpp"
#include "automata/interp.hpp"
#include "genome/sequence.hpp"

namespace crispr::baselines {

/**
 * Scan `genome` for every spec: a window starting at s matches when all
 * exact positions (outside [mismatchLo, mismatchHi)) match their mask
 * and the mismatch-allowed positions have at most maxMismatches
 * mismatching positions (a genome N counts as a mismatch; an N at an
 * exact position disqualifies the window).
 *
 * @return events (reportId, end index of the window), sorted by
 *         (end, reportId), at most one event per (spec, window).
 */
std::vector<automata::ReportEvent>
bruteForceScan(const genome::Sequence &genome,
               std::span<const automata::HammingSpec> specs);

/**
 * Mismatch count of one window, or -1 when the window is rejected
 * (exact-region mismatch or over budget). `start` + pattern length must
 * be within the genome.
 */
int windowMismatches(const genome::Sequence &genome, size_t start,
                     const automata::HammingSpec &spec);

/**
 * As above, additionally collecting the 0-based *site* offsets of the
 * mismatching positions (ascending) into `mismatch_offsets` when the
 * window is accepted. On rejection the vector contents are
 * unspecified. Used by the in-scan scoring path to derive each hit's
 * mismatch-position mask during verification.
 */
int windowMismatches(const genome::Sequence &genome, size_t start,
                     const automata::HammingSpec &spec,
                     std::vector<size_t> &mismatch_offsets);

// normalizeEvents lives in automata/interp.hpp; re-exported here for
// convenience of baseline users.
using automata::normalizeEvents;

} // namespace crispr::baselines

#endif // CRISPR_BASELINES_BRUTE_HPP_
