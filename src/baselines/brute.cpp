#include "baselines/brute.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace crispr::baselines {

using automata::HammingSpec;
using automata::ReportEvent;

int
windowMismatches(const genome::Sequence &genome, size_t start,
                 const HammingSpec &spec)
{
    const size_t len = spec.masks.size();
    CRISPR_ASSERT(start + len <= genome.size());
    const size_t lo = spec.mismatchLo;
    const size_t hi = std::min(spec.mismatchHi, len);
    int mismatches = 0;
    for (size_t j = 0; j < len; ++j) {
        if (genome::maskMatches(spec.masks[j], genome[start + j]))
            continue;
        const bool allowed = j >= lo && j < hi;
        if (!allowed)
            return -1;
        if (++mismatches > spec.maxMismatches)
            return -1;
    }
    return mismatches;
}

int
windowMismatches(const genome::Sequence &genome, size_t start,
                 const HammingSpec &spec,
                 std::vector<size_t> &mismatch_offsets)
{
    mismatch_offsets.clear();
    const size_t len = spec.masks.size();
    CRISPR_ASSERT(start + len <= genome.size());
    const size_t lo = spec.mismatchLo;
    const size_t hi = std::min(spec.mismatchHi, len);
    int mismatches = 0;
    for (size_t j = 0; j < len; ++j) {
        if (genome::maskMatches(spec.masks[j], genome[start + j]))
            continue;
        const bool allowed = j >= lo && j < hi;
        if (!allowed)
            return -1;
        if (++mismatches > spec.maxMismatches)
            return -1;
        mismatch_offsets.push_back(j);
    }
    return mismatches;
}

std::vector<ReportEvent>
bruteForceScan(const genome::Sequence &genome,
               std::span<const HammingSpec> specs)
{
    std::vector<ReportEvent> events;
    for (const HammingSpec &spec : specs) {
        const size_t len = spec.masks.size();
        if (len == 0 || genome.size() < len)
            continue;
        for (size_t s = 0; s + len <= genome.size(); ++s) {
            if (windowMismatches(genome, s, spec) >= 0) {
                events.push_back(
                    ReportEvent{spec.reportId,
                                static_cast<uint64_t>(s + len - 1)});
            }
        }
    }
    normalizeEvents(events);
    return events;
}

} // namespace crispr::baselines
