/**
 * @file
 * From-scratch reimplementation of the CasOT algorithm (Xiao et al.
 * 2014), the single-threaded CPU baseline of the paper.
 *
 * Two faithful modes:
 *  - Direct:  the tool's actual control flow — enumerate every PAM
 *    (exact-region) site in the genome and compare each site against
 *    every query, position by position. (The original is a Perl script;
 *    our C++ port is algorithm-faithful, so measured speedups against it
 *    are *lower bounds* on the paper's numbers — see EXPERIMENTS.md.)
 *  - Indexed: the seed-index variant — hash PAM-adjacent seed k-mers of
 *    the genome, enumerate all seed variants of each query within the
 *    mismatch budget, and verify the candidates. Cost grows
 *    combinatorially with the budget, the effect the paper's motivation
 *    section describes.
 *
 * Both modes produce exactly the golden match set (tested), including
 * genome-N handling (N in seed handled via an irregular-site side list).
 */

#ifndef CRISPR_BASELINES_CASOT_HPP_
#define CRISPR_BASELINES_CASOT_HPP_

#include <span>
#include <vector>

#include "automata/builders.hpp"
#include "automata/interp.hpp"
#include "genome/sequence.hpp"

namespace crispr::baselines {

/** Algorithm variant. */
enum class CasOtMode
{
    Direct,  //!< per-PAM-site full comparison (the tool's actual loop)
    Indexed, //!< seed index + variant enumeration
};

/** Configuration of the CasOT run. */
struct CasOtConfig
{
    CasOtMode mode = CasOtMode::Direct;
    /** Seed length (PAM-proximal positions) for Indexed mode; <= 16. */
    size_t seedLength = 12;
    /**
     * Cap on seed mismatches for Indexed mode. The real tool defaults
     * to 2 and silently loses sensitivity beyond it; SIZE_MAX keeps
     * full sensitivity (seed budget = total budget).
     */
    size_t maxSeedMismatches = SIZE_MAX;
    /**
     * Documented slowdown factor of the original Perl implementation
     * relative to this C++ port; applied only when reporting
     * "paper-comparable" times, never to measured ones.
     */
    double scriptingFactor = 30.0;
};

/** Work counters for reporting and model sanity checks. */
struct CasOtWork
{
    uint64_t pamSites = 0;          //!< exact-region sites enumerated
    uint64_t comparisons = 0;       //!< (site, query) comparisons
    uint64_t basesCompared = 0;
    uint64_t seedVariants = 0;      //!< Indexed: enumerated seed variants
    uint64_t indexLookups = 0;      //!< Indexed: hash probes
    uint64_t verifications = 0;     //!< Indexed: full-site verifications
    uint64_t matches = 0;
};

/** CasOT run result. */
struct CasOtResult
{
    std::vector<automata::ReportEvent> events;
    CasOtWork work;
    double seconds = 0.0;          //!< measured wall-clock (C++ port)
    double indexBuildSeconds = 0.0; //!< Indexed: index construction part

    /** Paper-comparable time: measured x scriptingFactor. */
    double
    perlAdjustedSeconds(const CasOtConfig &cfg) const
    {
        return seconds * cfg.scriptingFactor;
    }
};

/** Run the CasOT algorithm over the given pattern specs. */
CasOtResult casOtScan(const genome::Sequence &genome,
                      std::span<const automata::HammingSpec> specs,
                      const CasOtConfig &cfg = {});

} // namespace crispr::baselines

#endif // CRISPR_BASELINES_CASOT_HPP_
