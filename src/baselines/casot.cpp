#include "baselines/casot.hpp"

#include <algorithm>
#include <bit>
#include <map>

#include "common/logging.hpp"
#include "common/stopwatch.hpp"
#include "baselines/brute.hpp"

namespace crispr::baselines {

using automata::HammingSpec;
using automata::ReportEvent;

namespace {

struct ShapeKey
{
    size_t len;
    size_t lo;
    size_t hi;
    std::vector<genome::BaseMask> exactMasks;

    bool
    operator<(const ShapeKey &o) const
    {
        if (len != o.len)
            return len < o.len;
        if (lo != o.lo)
            return lo < o.lo;
        if (hi != o.hi)
            return hi < o.hi;
        return exactMasks < o.exactMasks;
    }
};

ShapeKey
shapeOf(const HammingSpec &spec)
{
    ShapeKey key;
    key.len = spec.masks.size();
    key.lo = spec.mismatchLo;
    key.hi = std::min(spec.mismatchHi, key.len);
    for (size_t j = 0; j < key.len; ++j)
        if (j < key.lo || j >= key.hi)
            key.exactMasks.push_back(spec.masks[j]);
    return key;
}

/** Enumerate the candidate start positions whose exact region matches. */
std::vector<uint64_t>
pamSites(const genome::Sequence &genome, const ShapeKey &key,
         const HammingSpec &proto, CasOtWork &work)
{
    std::vector<uint64_t> sites;
    if (genome.size() < key.len)
        return sites;
    std::vector<size_t> exact_pos;
    for (size_t j = 0; j < key.len; ++j)
        if (j < key.lo || j >= key.hi)
            exact_pos.push_back(j);
    for (size_t s = 0; s + key.len <= genome.size(); ++s) {
        bool ok = true;
        for (size_t j : exact_pos) {
            if (!genome::maskMatches(proto.masks[j], genome[s + j])) {
                ok = false;
                break;
            }
        }
        if (ok)
            sites.push_back(s);
    }
    work.pamSites += sites.size();
    return sites;
}

/** Seed positions: the mismatch-allowed positions adjacent to the PAM. */
std::vector<size_t>
seedPositions(const ShapeKey &key, size_t seed_len)
{
    std::vector<size_t> mm;
    for (size_t j = key.lo; j < key.hi; ++j)
        mm.push_back(j);
    const size_t n = std::min(seed_len, mm.size());
    std::vector<size_t> seed;
    if (key.lo == 0) {
        // Exact region trails (forward 3'-PAM): seed is PAM-proximal,
        // i.e. the last n mismatchable positions.
        seed.assign(mm.end() - static_cast<ptrdiff_t>(n), mm.end());
    } else {
        // Exact region leads (reverse-complement pattern).
        seed.assign(mm.begin(), mm.begin() + static_cast<ptrdiff_t>(n));
    }
    return seed;
}

/** Sorted (seedCode, site) index plus N-containing irregular sites. */
struct SeedIndex
{
    std::vector<std::pair<uint32_t, uint64_t>> entries;
    std::vector<uint64_t> irregular;
};

SeedIndex
buildIndex(const genome::Sequence &genome,
           const std::vector<uint64_t> &sites,
           const std::vector<size_t> &seed_pos)
{
    SeedIndex index;
    index.entries.reserve(sites.size());
    for (uint64_t s : sites) {
        uint32_t code = 0;
        bool regular = true;
        for (size_t j : seed_pos) {
            const uint8_t b = genome[s + j];
            if (b >= 4) {
                regular = false;
                break;
            }
            code = (code << 2) | b;
        }
        if (regular)
            index.entries.emplace_back(code, s);
        else
            index.irregular.push_back(s);
    }
    std::sort(index.entries.begin(), index.entries.end());
    return index;
}

/** Concrete base codes of the query at the seed positions. */
std::vector<uint8_t>
querySeed(const HammingSpec &spec, const std::vector<size_t> &seed_pos)
{
    std::vector<uint8_t> bases;
    bases.reserve(seed_pos.size());
    for (size_t j : seed_pos) {
        const genome::BaseMask m = spec.masks[j] & 0xf;
        if (std::popcount(static_cast<unsigned>(m)) != 1)
            fatal("CasOT indexed mode requires concrete (non-degenerate) "
                  "bases at seed positions");
        bases.push_back(
            static_cast<uint8_t>(std::countr_zero(
                static_cast<unsigned>(m))));
    }
    return bases;
}

} // namespace

CasOtResult
casOtScan(const genome::Sequence &genome,
          std::span<const HammingSpec> specs, const CasOtConfig &cfg)
{
    if (cfg.seedLength == 0 || cfg.seedLength > 16)
        fatal("CasOT seed length must be 1..16");

    Stopwatch timer;
    CasOtResult result;

    std::map<ShapeKey, std::vector<const HammingSpec *>> groups;
    for (const HammingSpec &s : specs)
        groups[shapeOf(s)].push_back(&s);

    for (const auto &[key, group] : groups) {
        const HammingSpec &proto = *group.front();
        std::vector<uint64_t> sites =
            pamSites(genome, key, proto, result.work);

        if (cfg.mode == CasOtMode::Direct) {
            // The tool's actual loop: every site against every query,
            // all positions compared (no early exit, as in the script).
            for (uint64_t s : sites) {
                for (const HammingSpec *spec : group) {
                    ++result.work.comparisons;
                    int mismatches = 0;
                    for (size_t j = key.lo; j < key.hi; ++j) {
                        ++result.work.basesCompared;
                        if (!genome::maskMatches(spec->masks[j],
                                                 genome[s + j]))
                            ++mismatches;
                    }
                    if (mismatches <= spec->maxMismatches) {
                        ++result.work.matches;
                        result.events.push_back(ReportEvent{
                            spec->reportId, s + key.len - 1});
                    }
                }
            }
            continue;
        }

        // Indexed mode.
        Stopwatch index_timer;
        const std::vector<size_t> seed_pos =
            seedPositions(key, cfg.seedLength);
        SeedIndex index = buildIndex(genome, sites, seed_pos);
        result.indexBuildSeconds += index_timer.seconds();

        for (const HammingSpec *spec : group) {
            const std::vector<uint8_t> seed = querySeed(*spec, seed_pos);
            const size_t k_seed =
                std::min(static_cast<size_t>(spec->maxMismatches),
                         cfg.maxSeedMismatches);

            // Enumerate every seed variant within k_seed mismatches.
            // Each variant visits a distinct code, so no dedup needed.
            std::vector<uint8_t> variant = seed;
            auto lookup = [&](uint32_t code) {
                ++result.work.indexLookups;
                auto range = std::equal_range(
                    index.entries.begin(), index.entries.end(),
                    std::make_pair(code, uint64_t{0}),
                    [](const auto &a, const auto &b) {
                        return a.first < b.first;
                    });
                for (auto it = range.first; it != range.second; ++it) {
                    ++result.work.verifications;
                    if (windowMismatches(genome, it->second, *spec) >= 0) {
                        ++result.work.matches;
                        result.events.push_back(ReportEvent{
                            spec->reportId, it->second + key.len - 1});
                    }
                }
            };

            auto encode = [&] {
                uint32_t code = 0;
                for (uint8_t b : variant)
                    code = (code << 2) | b;
                return code;
            };

            // Recursive enumeration over positions >= idx with
            // `remaining` substitutions left.
            auto enumerate = [&](auto &&self, size_t idx,
                                 size_t remaining) -> void {
                ++result.work.seedVariants;
                lookup(encode());
                if (remaining == 0)
                    return;
                for (size_t i = idx; i < variant.size(); ++i) {
                    const uint8_t orig = variant[i];
                    for (uint8_t delta = 1; delta <= 3; ++delta) {
                        variant[i] =
                            static_cast<uint8_t>((orig + delta) & 3);
                        self(self, i + 1, remaining - 1);
                    }
                    variant[i] = orig;
                }
            };
            enumerate(enumerate, 0, k_seed);

            // Irregular (N-in-seed) sites: verified linearly.
            for (uint64_t s : index.irregular) {
                ++result.work.verifications;
                if (windowMismatches(genome, s, *spec) >= 0) {
                    ++result.work.matches;
                    result.events.push_back(
                        ReportEvent{spec->reportId, s + key.len - 1});
                }
            }
        }
    }

    normalizeEvents(result.events);
    result.seconds = timer.seconds();
    return result;
}

} // namespace crispr::baselines
