#include "baselines/casoffinder.hpp"

#include <algorithm>
#include <map>

#include "common/logging.hpp"
#include "common/stopwatch.hpp"
#include "baselines/brute.hpp"

namespace crispr::baselines {

using automata::HammingSpec;
using automata::ReportEvent;

namespace {

/** Shape signature: specs sharing it can share the stage-1 PAM scan. */
struct ShapeKey
{
    size_t len;
    size_t lo;
    size_t hi;
    std::vector<genome::BaseMask> exactMasks; // masks outside [lo, hi)

    bool
    operator<(const ShapeKey &o) const
    {
        if (len != o.len)
            return len < o.len;
        if (lo != o.lo)
            return lo < o.lo;
        if (hi != o.hi)
            return hi < o.hi;
        return exactMasks < o.exactMasks;
    }
};

ShapeKey
shapeOf(const HammingSpec &spec)
{
    ShapeKey key;
    key.len = spec.masks.size();
    key.lo = spec.mismatchLo;
    key.hi = std::min(spec.mismatchHi, key.len);
    for (size_t j = 0; j < key.len; ++j) {
        if (j < key.lo || j >= key.hi)
            key.exactMasks.push_back(spec.masks[j]);
    }
    return key;
}

} // namespace

double
GpuDeviceModel::kernelSeconds(const CasOffinderWork &work) const
{
    // Stage 1 streams the genome linearly (coalesced).
    const double stage1 =
        static_cast<double>(work.genomeBytes) / (memoryGBs * 1e9);
    // Stage 2 gathers candidate windows (uncoalesced, dominating).
    const double gather_bytes =
        static_cast<double>(work.basesCompared); // one byte per probe
    const double stage2_mem =
        gather_bytes / (memoryGBs * gatherEfficiency * 1e9);
    const double stage2_alu =
        static_cast<double>(work.basesCompared) * compareNsPerBase * 1e-9;
    const double batches = std::max<double>(
        1.0, static_cast<double>(work.genomeBytes) /
                 static_cast<double>(chunkBytes));
    return stage1 + std::max(stage2_mem, stage2_alu) +
           batches * launchOverheadS;
}

double
GpuDeviceModel::totalSeconds(const CasOffinderWork &work) const
{
    const double transfer =
        static_cast<double>(work.genomeBytes) / (pcieGBs * 1e9);
    const double host =
        static_cast<double>(work.pamHits) * hostNsPerCandidate * 1e-9;
    return kernelSeconds(work) + transfer + host;
}

CasOffinderResult
casOffinderScan(const genome::Sequence &genome,
                std::span<const HammingSpec> specs)
{
    Stopwatch timer;
    CasOffinderResult result;
    result.work.genomeBytes = genome.size();

    // Group specs by shape so stage 1 runs once per distinct PAM layout
    // (the tool scans once per PAM orientation).
    std::map<ShapeKey, std::vector<const HammingSpec *>> groups;
    for (const HammingSpec &s : specs)
        groups[shapeOf(s)].push_back(&s);

    for (const auto &[key, group] : groups) {
        if (genome.size() < key.len)
            continue;
        const size_t len = key.len;
        const size_t lo = key.lo;
        const size_t hi = key.hi;

        // Stage 1: collect candidate starts where the exact region
        // matches. (On the device this is one thread per position.)
        std::vector<size_t> exact_pos;
        for (size_t j = 0; j < len; ++j)
            if (j < lo || j >= hi)
                exact_pos.push_back(j);
        const HammingSpec &proto = *group.front();

        std::vector<uint64_t> candidates;
        for (size_t s = 0; s + len <= genome.size(); ++s) {
            ++result.work.positionsScanned;
            bool ok = true;
            for (size_t j : exact_pos) {
                ++result.work.basesCompared;
                if (!genome::maskMatches(proto.masks[j], genome[s + j])) {
                    ok = false;
                    break;
                }
            }
            if (ok)
                candidates.push_back(s);
        }
        result.work.pamHits += candidates.size();

        // Stage 2: compare every (candidate, guide) pair with early exit.
        for (uint64_t s : candidates) {
            for (const HammingSpec *spec : group) {
                ++result.work.comparisons;
                int mismatches = 0;
                bool ok = true;
                for (size_t j = lo; j < hi; ++j) {
                    ++result.work.basesCompared;
                    if (!genome::maskMatches(spec->masks[j],
                                             genome[s + j])) {
                        if (++mismatches > spec->maxMismatches) {
                            ok = false;
                            break;
                        }
                    }
                }
                if (ok) {
                    ++result.work.matches;
                    result.events.push_back(
                        ReportEvent{spec->reportId, s + len - 1});
                }
            }
        }
    }

    normalizeEvents(result.events);
    result.hostSeconds = timer.seconds();
    return result;
}

} // namespace crispr::baselines
