/**
 * @file
 * Deterministic synthetic-genome and guide-set generation: the stand-in
 * for hg19 + published gRNA sets (see the substitution table in
 * DESIGN.md). Supports planting off-target sites with a known mismatch
 * count so tests and benches have exact ground truth.
 */

#ifndef CRISPR_GENOME_GENERATOR_HPP_
#define CRISPR_GENOME_GENERATOR_HPP_

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "genome/sequence.hpp"

namespace crispr::genome {

/** Base-composition models for synthetic genomes. */
enum class CompositionModel
{
    Uniform,  //!< each base equiprobable
    GcBiased, //!< human-like ~41% GC content
    Markov1,  //!< order-1 Markov chain with human-like dinucleotide bias
};

/** Parameters of synthetic genome generation. */
struct GenomeSpec
{
    size_t length = 1 << 20;
    CompositionModel model = CompositionModel::GcBiased;
    double n_fraction = 0.0; //!< fraction of positions replaced by N runs
    uint64_t seed = 42;
};

/** Generate a synthetic genome per the spec. Deterministic in the seed. */
Sequence generateGenome(const GenomeSpec &spec);

/** A site planted into a genome, with its ground-truth properties. */
struct PlantedSite
{
    size_t offset;      //!< start of the site in the genome
    uint32_t guide;     //!< index of the guide it derives from
    int mismatches;     //!< exact Hamming distance to the guide pattern
    bool reverse;       //!< planted on the reverse strand
};

/**
 * Generate a random guide protospacer (concrete ACGT sequence) of the
 * given length.
 */
Sequence randomGuide(Rng &rng, size_t length = 20);

/**
 * Sample a guide protospacer from a genome (guaranteeing an on-target
 * site exists), avoiding windows containing N. @return empty sequence if
 * no N-free window exists.
 */
Sequence sampleGuideFromGenome(const Sequence &genome, Rng &rng,
                               size_t length = 20);

/**
 * Mutate `site` at exactly `mismatches` distinct positions chosen from
 * [lo, hi) (changing each base to a different concrete base).
 */
Sequence mutateSite(const Sequence &site, int mismatches, size_t lo,
                    size_t hi, Rng &rng);

/**
 * Overwrite genome[offset .. offset+site.size()) with `site`.
 * Offsets out of range raise PanicError.
 */
void plantSite(Sequence &genome, size_t offset, const Sequence &site);

/**
 * Plant `count` non-overlapping mutated copies of `site` (a concrete
 * guide+PAM sequence), each with exactly `mismatches` mismatches confined
 * to [mut_lo, mut_hi). Returns the planted offsets. Best-effort: if the
 * genome is too crowded fewer sites may be planted.
 */
std::vector<size_t> plantMutatedSites(Sequence &genome, const Sequence &site,
                                      int count, int mismatches,
                                      size_t mut_lo, size_t mut_hi,
                                      Rng &rng);

} // namespace crispr::genome

#endif // CRISPR_GENOME_GENERATOR_HPP_
