/**
 * @file
 * Streaming FASTA reader: decodes a (possibly multi-gigabyte)
 * multi-record FASTA into genome-code chunks without materialising the
 * whole reference, inserting the same single-N record separators as
 * concatenateRecords() so chunked scanning over the stream is
 * bit-identical to scanning the concatenated sequence (tested).
 *
 * Robustness: CRLF line endings, blank lines, and stray whitespace
 * inside sequence lines are accepted in both modes. Malformed input
 * (sequence data before any header, an empty record name, an invalid
 * sequence character) is a typed ParseError via tryNext() — or, in
 * lenient mode, the malformed record is skipped and counted in
 * recordsDropped() instead. Because the reader cannot rewind what it
 * already emitted, a record found invalid mid-sequence in lenient mode
 * is truncated at the bad character (the emitted prefix stays in the
 * stream) and its remainder is skipped.
 */

#ifndef CRISPR_GENOME_FASTA_STREAM_HPP_
#define CRISPR_GENOME_FASTA_STREAM_HPP_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace crispr::genome {

/** Streaming-reader options. */
struct FastaStreamOptions
{
    /** Skip malformed records (counted) instead of erroring. */
    bool lenient = false;
};

/** Incremental FASTA decoder. */
class FastaStreamReader
{
  public:
    /** @param in FASTA text stream; must outlive the reader. */
    explicit FastaStreamReader(std::istream &in,
                               FastaStreamOptions options = {});

    /**
     * Decode up to `max_codes` further genome codes into `out`
     * (cleared first). @return false when the stream is exhausted and
     * nothing was produced; ParseError on malformed input (strict
     * mode) or a record-free stream.
     */
    common::Expected<bool> tryNext(size_t max_codes,
                                   std::vector<uint8_t> &out);

    /** Throwing wrapper over tryNext() (ErrorException). */
    bool next(size_t max_codes, std::vector<uint8_t> &out);

    /** Global stream offset of the next code to be produced. */
    uint64_t offset() const { return offset_; }

    /** Malformed records skipped so far (lenient mode). */
    size_t recordsDropped() const { return recordsDropped_; }

    /** Names of the records seen so far, with their stream offsets. */
    struct RecordInfo
    {
        std::string name;
        uint64_t start;
    };
    const std::vector<RecordInfo> &records() const { return records_; }

  private:
    /** Skip the rest of the current record and count it dropped. */
    void dropRecord();

    std::istream &in_;
    FastaStreamOptions options_;
    uint64_t offset_ = 0;
    bool sawRecord_ = false;
    bool pendingSeparator_ = false;
    bool skippingRecord_ = false; //!< lenient: discard until next '>'
    size_t recordsDropped_ = 0;
    std::string line_;
    size_t linePos_ = 0;
    std::vector<RecordInfo> records_;
};

} // namespace crispr::genome

#endif // CRISPR_GENOME_FASTA_STREAM_HPP_
