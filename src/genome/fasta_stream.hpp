/**
 * @file
 * Streaming FASTA reader: decodes a (possibly multi-gigabyte)
 * multi-record FASTA into genome-code chunks without materialising the
 * whole reference, inserting the same single-N record separators as
 * concatenateRecords() so chunked scanning over the stream is
 * bit-identical to scanning the concatenated sequence (tested).
 */

#ifndef CRISPR_GENOME_FASTA_STREAM_HPP_
#define CRISPR_GENOME_FASTA_STREAM_HPP_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace crispr::genome {

/** Incremental FASTA decoder. */
class FastaStreamReader
{
  public:
    /** @param in FASTA text stream; must outlive the reader. */
    explicit FastaStreamReader(std::istream &in);

    /**
     * Decode up to `max_codes` further genome codes into `out`
     * (cleared first). @return false when the stream is exhausted and
     * nothing was produced.
     */
    bool next(size_t max_codes, std::vector<uint8_t> &out);

    /** Global stream offset of the next code to be produced. */
    uint64_t offset() const { return offset_; }

    /** Names of the records seen so far, with their stream offsets. */
    struct RecordInfo
    {
        std::string name;
        uint64_t start;
    };
    const std::vector<RecordInfo> &records() const { return records_; }

  private:
    std::istream &in_;
    uint64_t offset_ = 0;
    bool sawRecord_ = false;
    bool pendingSeparator_ = false;
    std::string line_;
    size_t linePos_ = 0;
    std::vector<RecordInfo> records_;
};

} // namespace crispr::genome

#endif // CRISPR_GENOME_FASTA_STREAM_HPP_
