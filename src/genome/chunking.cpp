#include "genome/chunking.hpp"

#include "common/executor.hpp"
#include "common/logging.hpp"

namespace crispr::genome {

std::vector<ScanChunk>
planScanChunks(size_t n, size_t chunk_size, size_t overlap)
{
    if (chunk_size <= overlap)
        fatal("scan chunk size (%zu) must exceed the pattern overlap "
              "(%zu)", chunk_size, overlap);
    std::vector<ScanChunk> chunks;
    for (size_t at = 0; at < n; at += chunk_size) {
        ScanChunk c;
        c.emitFrom = at;
        c.leadFrom = at >= overlap ? at - overlap : 0;
        c.end = std::min(n, at + chunk_size);
        chunks.push_back(c);
    }
    return chunks;
}

unsigned
resolveThreads(unsigned requested)
{
    return common::Executor::resolveThreads(requested);
}

} // namespace crispr::genome
