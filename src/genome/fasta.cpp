#include "genome/fasta.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/logging.hpp"

namespace crispr::genome {

std::vector<FastaRecord>
readFasta(std::istream &in, const FastaParseOptions &options,
          size_t *records_dropped)
{
    std::vector<FastaRecord> records;
    std::string line;
    std::string pending; // accumulated sequence text of the open record
    bool have_record = false;
    bool record_bad = false; // lenient: drop the open record at flush
    size_t dropped = 0;
    bool dropped_headerless = false;

    auto flush = [&] {
        if (!have_record)
            return;
        if (record_bad) {
            records.pop_back();
            ++dropped;
            record_bad = false;
        } else {
            records.back().seq = Sequence::fromString(pending);
        }
        pending.clear();
    };

    // A character the decoder accepts (base, soft-mask, IUPAC).
    auto valid_base = [](char c) {
        return baseCode(c) != kCodeInvalid || iupacMask(c) != 0;
    };

    size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (line.empty())
            continue;
        if (line[0] == '>') {
            flush();
            FastaRecord rec;
            std::string header = line.substr(1);
            auto ws = header.find_first_of(" \t");
            if (ws == std::string::npos) {
                rec.name = header;
            } else {
                rec.name = header.substr(0, ws);
                auto rest = header.find_first_not_of(" \t", ws);
                if (rest != std::string::npos)
                    rec.comment = header.substr(rest);
            }
            if (rec.name.empty()) {
                if (!options.lenient)
                    fatal("FASTA line %zu: empty record name", line_no);
                // Open a placeholder so the record's lines are
                // attributed to it, then drop it whole at flush.
                rec.name = "?";
                record_bad = true;
            }
            records.push_back(std::move(rec));
            have_record = true;
            continue;
        }
        if (!have_record) {
            if (!options.lenient)
                fatal("FASTA line %zu: sequence data before any '>' "
                      "header",
                      line_no);
            if (!dropped_headerless) {
                ++dropped; // the headerless prefix, counted once
                dropped_headerless = true;
            }
            continue;
        }
        std::string kept;
        kept.reserve(line.size());
        for (char c : line) {
            if (c == ' ' || c == '\t')
                continue;
            if (!valid_base(c)) {
                if (!options.lenient)
                    fatal("FASTA line %zu: invalid character '%c'",
                          line_no, c);
                record_bad = true;
                break;
            }
            kept += c;
        }
        if (!record_bad)
            pending += kept;
    }
    flush();
    if (records_dropped)
        *records_dropped = dropped;
    if (records.empty())
        fatal("FASTA input contains no records");
    return records;
}

std::vector<FastaRecord>
readFasta(std::istream &in)
{
    return readFasta(in, FastaParseOptions{});
}

std::vector<FastaRecord>
readFastaFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open FASTA file '%s'", path.c_str());
    return readFasta(in);
}

void
writeFasta(std::ostream &out, const std::vector<FastaRecord> &records,
           size_t line_width)
{
    CRISPR_ASSERT(line_width > 0);
    for (const auto &rec : records) {
        out << '>' << rec.name;
        if (!rec.comment.empty())
            out << ' ' << rec.comment;
        out << '\n';
        std::string ascii = rec.seq.str();
        for (size_t i = 0; i < ascii.size(); i += line_width)
            out << ascii.substr(i, line_width) << '\n';
    }
}

void
writeFastaFile(const std::string &path,
               const std::vector<FastaRecord> &records, size_t line_width)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot open '%s' for writing", path.c_str());
    writeFasta(out, records, line_width);
}

Sequence
concatenateRecords(const std::vector<FastaRecord> &records,
                   std::vector<size_t> *boundaries)
{
    Sequence out;
    if (boundaries)
        boundaries->clear();
    for (size_t r = 0; r < records.size(); ++r) {
        if (r > 0)
            out.push_back(kCodeN); // separator: no cross-record matches
        if (boundaries)
            boundaries->push_back(out.size());
        out.append(records[r].seq);
    }
    return out;
}

} // namespace crispr::genome
