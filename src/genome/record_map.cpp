#include "genome/record_map.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace crispr::genome {

RecordMap
RecordMap::fromRecords(const std::vector<FastaRecord> &records)
{
    RecordMap map;
    uint64_t at = 0;
    for (size_t r = 0; r < records.size(); ++r) {
        if (r > 0)
            ++at; // the N separator
        map.names_.push_back(records[r].name);
        map.starts_.push_back(at);
        map.lengths_.push_back(records[r].seq.size());
        at += records[r].seq.size();
    }
    map.total_ = at;
    return map;
}

RecordMap::Location
RecordMap::locate(uint64_t global) const
{
    Location loc;
    if (starts_.empty() || global >= total_)
        return loc;
    auto it = std::upper_bound(starts_.begin(), starts_.end(), global);
    const size_t idx = static_cast<size_t>(it - starts_.begin()) - 1;
    loc.name = names_[idx];
    loc.offset = global - starts_[idx];
    loc.withinRecord = loc.offset < lengths_[idx];
    if (!loc.withinRecord)
        loc.offset = lengths_[idx]; // clamp onto the separator edge
    return loc;
}

RecordMap::Location
RecordMap::locateWindow(uint64_t global, size_t len) const
{
    Location loc = locate(global);
    if (!loc.withinRecord)
        return loc;
    if (len > 0) {
        Location last = locate(global + len - 1);
        if (!last.withinRecord || last.name != loc.name) {
            loc.withinRecord = false;
            return loc;
        }
    }
    return loc;
}

} // namespace crispr::genome
