/**
 * @file
 * Chunk planning for seam-safe scans: splitting a stream of `n` symbols
 * into fixed-size emit zones, each re-scanning `overlap` leading symbols
 * so that no window straddling a seam is lost. Events whose end index
 * falls before a chunk's emit zone belong to the previous chunk and are
 * dropped, which makes chunked results bit-identical to a single scan
 * (no cross-chunk deduplication needed). Shared by the HScan parallel
 * scanner and the engine-agnostic core::ChunkedScanner.
 */

#ifndef CRISPR_GENOME_CHUNKING_HPP_
#define CRISPR_GENOME_CHUNKING_HPP_

#include <cstddef>
#include <vector>

namespace crispr::genome {

/** One planned chunk: scan [leadFrom, end), emit events in [emitFrom, end). */
struct ScanChunk
{
    size_t emitFrom; //!< first position this chunk reports for
    size_t leadFrom; //!< scan start (emitFrom minus up to `overlap`)
    size_t end;      //!< one past the last position scanned
};

/**
 * Plan the chunks covering [0, n). `chunkSize` is the emit-zone size
 * and must exceed `overlap` (fatal otherwise); `overlap` must be at
 * least the longest pattern length minus one for seam safety.
 */
std::vector<ScanChunk> planScanChunks(size_t n, size_t chunk_size,
                                      size_t overlap);

/**
 * Resolve a worker-thread request: 0 means all hardware threads (at
 * least 1), anything else is returned unchanged. Thin wrapper over
 * common::Executor::resolveThreads — the executor owns the
 * 0-means-all-cores convention, so every scan path resolves the same
 * way and nested parallel scans (a service batch over a chunked
 * engine) cannot multiply worker counts.
 */
unsigned resolveThreads(unsigned requested);

} // namespace crispr::genome

#endif // CRISPR_GENOME_CHUNKING_HPP_
