/**
 * @file
 * 2-bit packed genome storage: 4 bases per byte plus an exception list
 * for N positions. Cuts resident memory 4x for hg-scale references;
 * a chunked decode adapter feeds the (byte-per-base) scan engines.
 */

#ifndef CRISPR_GENOME_PACKED_HPP_
#define CRISPR_GENOME_PACKED_HPP_

#include <cstdint>
#include <functional>
#include <vector>

#include "genome/sequence.hpp"

namespace crispr::genome {

/** A 2-bit packed DNA sequence with N exceptions. */
class PackedSequence
{
  public:
    PackedSequence() = default;

    /** Pack a byte-per-base sequence. */
    static PackedSequence pack(const Sequence &seq);

    /** Unpack the whole sequence. */
    Sequence unpack() const;

    /** Decode [pos, pos+len) into `out` (resized; clamped at end). */
    void decode(size_t pos, size_t len, std::vector<uint8_t> &out) const;

    /** Base code (0-4) at a position. */
    uint8_t at(size_t pos) const;

    size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    /** Resident bytes (packed payload + N exceptions). */
    size_t memoryBytes() const;

    /**
     * Stream the sequence in chunks of `chunk_len` decoded codes with
     * `overlap` leading codes repeated from the previous chunk (for
     * seamless pattern scanning). fn(chunk_start, codes) where codes
     * spans [chunk_start - lead, chunk_end).
     */
    void forEachChunk(size_t chunk_len, size_t overlap,
                      const std::function<void(
                          size_t, std::span<const uint8_t>)> &fn) const;

  private:
    size_t size_ = 0;
    std::vector<uint8_t> words_;       //!< 4 bases per byte
    std::vector<uint64_t> nPositions_; //!< sorted N positions
};

} // namespace crispr::genome

#endif // CRISPR_GENOME_PACKED_HPP_
