/**
 * @file
 * 2-bit packed genome storage: 4 bases per byte plus an exception list
 * for N positions. Cuts resident memory 4x for hg-scale references;
 * a chunked decode adapter feeds the (byte-per-base) scan engines.
 *
 * PackedFile adds the on-disk form (the ".2bit" format, DESIGN.md
 * §14): the same payload behind a fixed little-endian header, written
 * atomically (temp file + rename, like the pattern database) and
 * loaded via mmap on POSIX hosts so N shard workers reading one
 * reference share a single physical copy — the kernel page cache —
 * instead of N decoded heaps. Hosts without mmap fall back to one
 * heap read; the API is identical either way.
 *
 * Layout (offsets in bytes, all integers little-endian):
 *   0   char[8]  magic "CRISPR2B"
 *   8   u32      version (1)
 *   12  u32      reserved (0)
 *   16  u64      baseCount
 *   24  u64      nExceptionCount
 *   32  u8[]     packed words, (baseCount+3)/4 bytes, zero-padded to
 *                the next 8-byte boundary
 *   ..  u64[]    sorted N positions (nExceptionCount entries)
 */

#ifndef CRISPR_GENOME_PACKED_HPP_
#define CRISPR_GENOME_PACKED_HPP_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "genome/sequence.hpp"

namespace crispr::genome {

/** A 2-bit packed DNA sequence with N exceptions. */
class PackedSequence
{
  public:
    PackedSequence() = default;

    /** Pack a byte-per-base sequence. */
    static PackedSequence pack(const Sequence &seq);

    /** Unpack the whole sequence. */
    Sequence unpack() const;

    /** Decode [pos, pos+len) into `out` (resized; clamped at end). */
    void decode(size_t pos, size_t len, std::vector<uint8_t> &out) const;

    /** Base code (0-4) at a position. */
    uint8_t at(size_t pos) const;

    size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    /** Resident bytes (packed payload + N exceptions). */
    size_t memoryBytes() const;

    /**
     * Stream the sequence in chunks of `chunk_len` decoded codes with
     * `overlap` leading codes repeated from the previous chunk (for
     * seamless pattern scanning). fn(chunk_start, codes) where codes
     * spans [chunk_start - lead, chunk_end).
     */
    void forEachChunk(size_t chunk_len, size_t overlap,
                      const std::function<void(
                          size_t, std::span<const uint8_t>)> &fn) const;

    /** The packed payload, exposed for the PackedFile writer. */
    std::span<const uint8_t> words() const { return words_; }
    std::span<const uint64_t> nExceptions() const { return nPositions_; }

  private:
    size_t size_ = 0;
    std::vector<uint8_t> words_;       //!< 4 bases per byte
    std::vector<uint64_t> nPositions_; //!< sorted N positions
};

/**
 * A read-only ".2bit" packed genome file (layout in the file
 * comment), decoded on demand. map() prefers POSIX mmap(PROT_READ,
 * MAP_SHARED) — every mapping of one file shares the same physical
 * pages — and falls back to a single heap read where mmap is
 * unavailable. Handles are immutable and safe to share across
 * threads.
 */
class PackedFile
{
  public:
    static constexpr uint32_t kVersion = 1;
    /** Fixed header size (bytes) preceding the packed words. */
    static constexpr size_t kHeaderBytes = 32;

    /**
     * Serialize `packed` to `path` atomically: the bytes land in a
     * unique temp file first and rename() publishes them, so a reader
     * never observes a torn file (the PatternDatabase store idiom).
     */
    static common::Status write(const std::string &path,
                                const PackedSequence &packed);

    /** Pack + write in one call. */
    static common::Status writeSequence(const std::string &path,
                                        const Sequence &seq);

    /**
     * Map `path` read-only. Rejects bad magic, unknown versions, size
     * arithmetic that disagrees with the actual file length, and
     * unsorted/out-of-range N exceptions (the file is attacker-shaped
     * bytes until proven otherwise).
     */
    static common::Expected<std::shared_ptr<const PackedFile>>
    map(const std::string &path);

    ~PackedFile();
    PackedFile(const PackedFile &) = delete;
    PackedFile &operator=(const PackedFile &) = delete;

    size_t size() const { return size_; } //!< bases
    /** Bytes resident via the mapping (or the heap fallback). */
    size_t fileBytes() const { return fileBytes_; }
    /** True when backed by mmap (false on the heap-read fallback). */
    bool memoryMapped() const { return mmapped_; }

    /** Decode [pos, pos+len) into `out` (resized; clamped at end). */
    void decode(size_t pos, size_t len, std::vector<uint8_t> &out) const;

    /** Decode the whole sequence. */
    Sequence unpack() const;

  private:
    PackedFile() = default;

    size_t size_ = 0;
    size_t fileBytes_ = 0;
    bool mmapped_ = false;
    void *mapBase_ = nullptr;          //!< mmap base (when mmapped_)
    std::vector<uint8_t> heap_;        //!< fallback storage
    std::span<const uint8_t> words_;   //!< into mapBase_ or heap_
    std::span<const uint64_t> nPositions_;
};

} // namespace crispr::genome

#endif // CRISPR_GENOME_PACKED_HPP_
