/**
 * @file
 * In-memory DNA sequence: a contiguous vector of base codes (0-4) that
 * every engine in the library streams over. Conversions to/from ASCII,
 * reverse complement, slicing, and Hamming distance live here.
 */

#ifndef CRISPR_GENOME_SEQUENCE_HPP_
#define CRISPR_GENOME_SEQUENCE_HPP_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "genome/alphabet.hpp"

namespace crispr::genome {

/**
 * A DNA sequence stored as one base code (0-4) per byte.
 *
 * A byte-per-base layout (rather than 2-bit packing) keeps the scan loops
 * of all engines branch-free and is what streaming automata hardware
 * consumes (one input symbol per cycle).
 */
class Sequence
{
  public:
    Sequence() = default;

    /** Construct from raw codes (values must be < kNumSymbols). */
    explicit Sequence(std::vector<uint8_t> codes);

    /**
     * Parse from ASCII. Characters acgtACGTuU map to codes; every other
     * IUPAC / unknown character maps to N. Whitespace is rejected.
     */
    static Sequence fromString(const std::string &ascii);

    /** Render as an upper-case ASCII string. */
    std::string str() const;

    size_t size() const { return codes_.size(); }
    bool empty() const { return codes_.empty(); }

    uint8_t operator[](size_t i) const { return codes_[i]; }
    uint8_t &operator[](size_t i) { return codes_[i]; }

    const uint8_t *data() const { return codes_.data(); }
    uint8_t *data() { return codes_.data(); }

    std::span<const uint8_t> codes() const { return codes_; }

    /** Append a single base code. */
    void push_back(uint8_t code);

    /** Append another sequence. */
    void append(const Sequence &other);

    /** Copy of the subsequence [pos, pos+len). Clamped at the end. */
    Sequence slice(size_t pos, size_t len) const;

    /** Reverse complement of this sequence. */
    Sequence reverseComplement() const;

    /** Count of N symbols. */
    size_t countN() const;

    bool operator==(const Sequence &other) const = default;

  private:
    std::vector<uint8_t> codes_;
};

/**
 * Hamming distance between a pattern of BaseMasks and a genome window
 * starting at `pos` (same length as the pattern). A genome N counts as a
 * mismatch against every mask.
 * @return number of mismatching positions, or `limit+1` via early exit
 *         once the count exceeds `limit` (pass SIZE_MAX for exact count).
 */
size_t maskHamming(std::span<const BaseMask> pattern, const Sequence &text,
                   size_t pos, size_t limit);

/** Convert an IUPAC pattern string to a vector of BaseMasks. */
std::vector<BaseMask> masksFromIupac(const std::string &pattern);

/** Reverse complement of a mask pattern. */
std::vector<BaseMask> reverseComplementMasks(std::span<const BaseMask> m);

} // namespace crispr::genome

#endif // CRISPR_GENOME_SEQUENCE_HPP_
