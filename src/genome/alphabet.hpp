/**
 * @file
 * DNA alphabet: base codes, IUPAC degenerate codes, complements.
 *
 * Conventions used throughout the library:
 *  - A genome is a stream of 3-bit codes: A=0, C=1, G=2, T=3, N=4.
 *  - A pattern position is a 4-bit BaseMask over {A,C,G,T}; bit b is set
 *    iff base code b matches. IUPAC letters map to masks (N -> 0b1111,
 *    R -> A|G, ...).
 *  - A genome 'N' matches *no* mask: unresolved reference positions never
 *    produce hits (this matches CasOFFinder/CasOT behaviour).
 */

#ifndef CRISPR_GENOME_ALPHABET_HPP_
#define CRISPR_GENOME_ALPHABET_HPP_

#include <cstdint>
#include <string>

namespace crispr::genome {

/** Number of distinct genome symbol codes (A, C, G, T, N). */
inline constexpr int kNumSymbols = 5;

/** Code of the unresolved base 'N' in a genome stream. */
inline constexpr uint8_t kCodeN = 4;

/** Code of an invalid / non-DNA character. */
inline constexpr uint8_t kCodeInvalid = 0xff;

/** 4-bit match mask over base codes {A=1, C=2, G=4, T=8}. */
using BaseMask = uint8_t;

/** Mask that matches any concrete base (IUPAC 'N'). */
inline constexpr BaseMask kMaskAny = 0xf;

/**
 * Convert an ASCII base character to its code.
 * @return 0-3 for acgtACGT, 4 for nN, kCodeInvalid otherwise.
 */
uint8_t baseCode(char c);

/** Convert a code (0-4) back to an upper-case ASCII character. */
char baseChar(uint8_t code);

/** Complement of a base code (A<->T, C<->G, N->N). */
uint8_t complementCode(uint8_t code);

/**
 * Convert an IUPAC character (ACGTURYSWKMBDHVN, case-insensitive) to a
 * BaseMask. @return 0 for non-IUPAC characters.
 */
BaseMask iupacMask(char c);

/** Inverse of iupacMask(); returns the canonical IUPAC letter of a mask. */
char maskIupac(BaseMask mask);

/** Complement of a mask (complement of the base set it denotes). */
BaseMask complementMask(BaseMask mask);

/** True iff genome symbol code `code` matches pattern mask `mask`. */
inline bool
maskMatches(BaseMask mask, uint8_t code)
{
    // N (code 4) shifts past the 4-bit mask and never matches.
    return code < 4 && ((mask >> code) & 1u);
}

/** Validate that every character of `s` is IUPAC; fatal() otherwise. */
void validateIupac(const std::string &s, const char *what);

} // namespace crispr::genome

#endif // CRISPR_GENOME_ALPHABET_HPP_
