/**
 * @file
 * FASTA reading and writing. Real reference genomes (hg19 etc.) drop in
 * through this path unchanged; the test-suite and the synthetic-genome
 * generator round-trip through it.
 */

#ifndef CRISPR_GENOME_FASTA_HPP_
#define CRISPR_GENOME_FASTA_HPP_

#include <iosfwd>
#include <string>
#include <vector>

#include "genome/sequence.hpp"

namespace crispr::genome {

/** One FASTA record: a header name plus its sequence. */
struct FastaRecord
{
    std::string name;    //!< text after '>' up to first whitespace
    std::string comment; //!< remainder of the header line (may be empty)
    Sequence seq;
};

/** Whole-file parser options. */
struct FastaParseOptions
{
    /**
     * Skip malformed records (empty name, invalid sequence characters,
     * headerless leading data) instead of raising; each skipped record
     * increments *records_dropped.
     */
    bool lenient = false;
};

/**
 * Parse all records from a FASTA stream.
 * Handles multi-record files, CRLF line endings, blank lines, stray
 * whitespace inside sequence lines, lower-case (soft-masked) bases, and
 * degenerate IUPAC letters (mapped to N). A file with no '>' header or
 * with invalid sequence characters raises FatalError — unless
 * options.lenient is set, in which case malformed records are dropped
 * whole and counted.
 */
std::vector<FastaRecord> readFasta(std::istream &in);
std::vector<FastaRecord> readFasta(std::istream &in,
                                   const FastaParseOptions &options,
                                   size_t *records_dropped = nullptr);

/** Parse all records from a FASTA file on disk. */
std::vector<FastaRecord> readFastaFile(const std::string &path);

/** Write records in FASTA format with the given line width. */
void writeFasta(std::ostream &out, const std::vector<FastaRecord> &records,
                size_t line_width = 70);

/** Write records to a file on disk. */
void writeFastaFile(const std::string &path,
                    const std::vector<FastaRecord> &records,
                    size_t line_width = 70);

/**
 * Concatenate all records of a FASTA file into a single scan stream,
 * inserting one 'N' between records so no match can span a record
 * boundary. @param[out] boundaries start offset of each record within
 * the concatenated stream (may be null).
 */
Sequence concatenateRecords(const std::vector<FastaRecord> &records,
                            std::vector<size_t> *boundaries = nullptr);

} // namespace crispr::genome

#endif // CRISPR_GENOME_FASTA_HPP_
