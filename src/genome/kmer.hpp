/**
 * @file
 * 2-bit k-mer coding and a rolling k-mer scanner. Used by the CasOT
 * baseline's exact-seed index.
 */

#ifndef CRISPR_GENOME_KMER_HPP_
#define CRISPR_GENOME_KMER_HPP_

#include <cstdint>
#include <functional>

#include "genome/sequence.hpp"

namespace crispr::genome {

/** Maximum k representable in a 64-bit 2-bit code. */
inline constexpr size_t kMaxK = 31;

/**
 * Encode genome[pos .. pos+k) into a 2-bit packed code (base at `pos` in
 * the most significant position).
 * @return true on success; false if the window contains an N.
 */
bool encodeKmer(const Sequence &seq, size_t pos, size_t k, uint64_t &code);

/** Decode a 2-bit k-mer code back into a Sequence of length k. */
Sequence decodeKmer(uint64_t code, size_t k);

/**
 * Invoke `fn(pos, code)` for every N-free k-mer window of `seq`, using a
 * rolling update (O(1) per position).
 */
void forEachKmer(const Sequence &seq, size_t k,
                 const std::function<void(size_t, uint64_t)> &fn);

} // namespace crispr::genome

#endif // CRISPR_GENOME_KMER_HPP_
