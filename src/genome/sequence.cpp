#include "genome/sequence.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace crispr::genome {

Sequence::Sequence(std::vector<uint8_t> codes) : codes_(std::move(codes))
{
    for (uint8_t c : codes_)
        CRISPR_ASSERT(c < kNumSymbols);
}

Sequence
Sequence::fromString(const std::string &ascii)
{
    std::vector<uint8_t> codes;
    codes.reserve(ascii.size());
    for (char ch : ascii) {
        if (ch == ' ' || ch == '\t' || ch == '\n' || ch == '\r')
            fatal("sequence string contains whitespace");
        uint8_t code = baseCode(ch);
        if (code == kCodeInvalid) {
            // Degenerate IUPAC letters in a *genome* are unresolved
            // positions; collapse them to N like the real tools do.
            code = iupacMask(ch) != 0 ? kCodeN : kCodeInvalid;
        }
        if (code == kCodeInvalid)
            fatal("invalid sequence character '%c'", ch);
        codes.push_back(code);
    }
    Sequence s;
    s.codes_ = std::move(codes);
    return s;
}

std::string
Sequence::str() const
{
    std::string out;
    out.reserve(codes_.size());
    for (uint8_t c : codes_)
        out.push_back(baseChar(c));
    return out;
}

void
Sequence::push_back(uint8_t code)
{
    CRISPR_ASSERT(code < kNumSymbols);
    codes_.push_back(code);
}

void
Sequence::append(const Sequence &other)
{
    codes_.insert(codes_.end(), other.codes_.begin(), other.codes_.end());
}

Sequence
Sequence::slice(size_t pos, size_t len) const
{
    Sequence out;
    if (pos >= codes_.size())
        return out;
    size_t end = std::min(codes_.size(), pos + len);
    out.codes_.assign(codes_.begin() + pos, codes_.begin() + end);
    return out;
}

Sequence
Sequence::reverseComplement() const
{
    Sequence out;
    out.codes_.resize(codes_.size());
    for (size_t i = 0; i < codes_.size(); ++i)
        out.codes_[codes_.size() - 1 - i] = complementCode(codes_[i]);
    return out;
}

size_t
Sequence::countN() const
{
    return static_cast<size_t>(
        std::count(codes_.begin(), codes_.end(), kCodeN));
}

size_t
maskHamming(std::span<const BaseMask> pattern, const Sequence &text,
            size_t pos, size_t limit)
{
    CRISPR_ASSERT(pos + pattern.size() <= text.size());
    size_t mismatches = 0;
    for (size_t i = 0; i < pattern.size(); ++i) {
        if (!maskMatches(pattern[i], text[pos + i])) {
            if (++mismatches > limit)
                return mismatches;
        }
    }
    return mismatches;
}

std::vector<BaseMask>
masksFromIupac(const std::string &pattern)
{
    validateIupac(pattern, "pattern");
    std::vector<BaseMask> out;
    out.reserve(pattern.size());
    for (char c : pattern)
        out.push_back(iupacMask(c));
    return out;
}

std::vector<BaseMask>
reverseComplementMasks(std::span<const BaseMask> m)
{
    std::vector<BaseMask> out(m.size());
    for (size_t i = 0; i < m.size(); ++i)
        out[m.size() - 1 - i] = complementMask(m[i]);
    return out;
}

} // namespace crispr::genome
