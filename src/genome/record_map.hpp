/**
 * @file
 * Record map: converts offsets in a concatenated multi-record scan
 * stream (see concatenateRecords) back to (record name, local offset)
 * coordinates — chromosome-style reporting for multi-FASTA references.
 */

#ifndef CRISPR_GENOME_RECORD_MAP_HPP_
#define CRISPR_GENOME_RECORD_MAP_HPP_

#include <cstdint>
#include <string>
#include <vector>

#include "genome/fasta.hpp"

namespace crispr::genome {

/** Maps concatenated-stream offsets to per-record coordinates. */
class RecordMap
{
  public:
    RecordMap() = default;

    /** Build from FASTA records (mirrors concatenateRecords layout:
     *  one N separator between consecutive records). */
    static RecordMap fromRecords(const std::vector<FastaRecord> &records);

    /** A located position. */
    struct Location
    {
        std::string name;    //!< record name ("" when out of range)
        uint64_t offset = 0; //!< 0-based offset within the record
        bool withinRecord = false; //!< false on separators / past end
    };

    /** Locate a global stream offset. */
    Location locate(uint64_t global) const;

    /**
     * Locate a window [global, global+len); withinRecord only if the
     * whole window lies inside one record (no separator crossing).
     */
    Location locateWindow(uint64_t global, size_t len) const;

    size_t recordCount() const { return names_.size(); }

    /** Total stream length (records + separators). */
    uint64_t streamLength() const { return total_; }

  private:
    std::vector<std::string> names_;
    std::vector<uint64_t> starts_;  //!< stream offset of each record
    std::vector<uint64_t> lengths_;
    uint64_t total_ = 0;
};

} // namespace crispr::genome

#endif // CRISPR_GENOME_RECORD_MAP_HPP_
