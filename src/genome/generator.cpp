#include "genome/generator.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace crispr::genome {

namespace {

/** Draw one base from a cumulative distribution over {A,C,G,T}. */
uint8_t
drawBase(Rng &rng, const double *cum)
{
    double u = rng.uniform();
    for (uint8_t b = 0; b < 3; ++b)
        if (u < cum[b])
            return b;
    return 3;
}

} // namespace

Sequence
generateGenome(const GenomeSpec &spec)
{
    Rng rng(spec.seed);
    std::vector<uint8_t> codes(spec.length);

    switch (spec.model) {
      case CompositionModel::Uniform: {
        for (size_t i = 0; i < spec.length; ++i)
            codes[i] = static_cast<uint8_t>(rng.below(4));
        break;
      }
      case CompositionModel::GcBiased: {
        // Human genome ~41% GC: P(A)=P(T)=0.295, P(C)=P(G)=0.205.
        const double cum[3] = {0.295, 0.500, 0.705};
        for (size_t i = 0; i < spec.length; ++i)
            codes[i] = drawBase(rng, cum);
        break;
      }
      case CompositionModel::Markov1: {
        // Order-1 transition probabilities with CpG depletion, the most
        // prominent dinucleotide bias of mammalian genomes.
        // Rows: previous base A,C,G,T; cumulative over next base A,C,G.
        static const double cum[4][3] = {
            {0.33, 0.51, 0.79}, // after A
            {0.36, 0.62, 0.67}, // after C: CG rare (5%)
            {0.30, 0.51, 0.79}, // after G
            {0.22, 0.42, 0.70}, // after T
        };
        uint8_t prev = static_cast<uint8_t>(rng.below(4));
        for (size_t i = 0; i < spec.length; ++i) {
            uint8_t b = drawBase(rng, cum[prev]);
            codes[i] = b;
            prev = b;
        }
        break;
      }
    }

    if (spec.n_fraction > 0.0 && spec.length > 0) {
        // Insert N runs (assembly gaps) of geometric length, mean 50.
        size_t n_total =
            static_cast<size_t>(spec.n_fraction *
                                static_cast<double>(spec.length));
        size_t placed = 0;
        while (placed < n_total) {
            size_t run = 1 + rng.below(100);
            run = std::min(run, n_total - placed);
            size_t at = rng.below(spec.length);
            for (size_t i = 0; i < run && at + i < spec.length; ++i)
                codes[at + i] = kCodeN;
            placed += run;
        }
    }

    return Sequence(std::move(codes));
}

Sequence
randomGuide(Rng &rng, size_t length)
{
    std::vector<uint8_t> codes(length);
    for (auto &c : codes)
        c = static_cast<uint8_t>(rng.below(4));
    return Sequence(std::move(codes));
}

Sequence
sampleGuideFromGenome(const Sequence &genome, Rng &rng, size_t length)
{
    if (genome.size() < length)
        return Sequence();
    for (int attempt = 0; attempt < 1000; ++attempt) {
        size_t at = rng.below(genome.size() - length + 1);
        Sequence window = genome.slice(at, length);
        if (window.countN() == 0)
            return window;
    }
    return Sequence();
}

Sequence
mutateSite(const Sequence &site, int mismatches, size_t lo, size_t hi,
           Rng &rng)
{
    CRISPR_ASSERT(lo <= hi && hi <= site.size());
    CRISPR_ASSERT(static_cast<size_t>(mismatches) <= hi - lo);
    Sequence out = site;
    std::vector<size_t> positions;
    for (size_t i = lo; i < hi; ++i)
        positions.push_back(i);
    // Partial Fisher-Yates: pick `mismatches` distinct positions.
    for (int m = 0; m < mismatches; ++m) {
        size_t j = m + rng.below(positions.size() - m);
        std::swap(positions[m], positions[j]);
        size_t at = positions[m];
        uint8_t old = out[at];
        CRISPR_ASSERT(old < 4);
        uint8_t nb = static_cast<uint8_t>((old + 1 + rng.below(3)) & 3);
        out[at] = nb;
    }
    return out;
}

void
plantSite(Sequence &genome, size_t offset, const Sequence &site)
{
    CRISPR_ASSERT(offset + site.size() <= genome.size());
    for (size_t i = 0; i < site.size(); ++i)
        genome[offset + i] = site[i];
}

std::vector<size_t>
plantMutatedSites(Sequence &genome, const Sequence &site, int count,
                  int mismatches, size_t mut_lo, size_t mut_hi, Rng &rng)
{
    std::vector<size_t> offsets;
    if (genome.size() < site.size())
        return offsets;
    std::vector<std::pair<size_t, size_t>> used; // [start, end)
    int attempts = 0;
    while (static_cast<int>(offsets.size()) < count && attempts < count * 200) {
        ++attempts;
        size_t at = rng.below(genome.size() - site.size() + 1);
        size_t end = at + site.size();
        bool overlaps = false;
        for (auto [s, e] : used) {
            if (at < e && s < end) {
                overlaps = true;
                break;
            }
        }
        if (overlaps)
            continue;
        Sequence mutated = mutateSite(site, mismatches, mut_lo, mut_hi, rng);
        plantSite(genome, at, mutated);
        used.emplace_back(at, end);
        offsets.push_back(at);
    }
    std::sort(offsets.begin(), offsets.end());
    return offsets;
}

} // namespace crispr::genome
