#include "genome/fasta_stream.hpp"

#include <istream>

#include "common/logging.hpp"
#include "genome/alphabet.hpp"

namespace crispr::genome {

FastaStreamReader::FastaStreamReader(std::istream &in) : in_(in) {}

bool
FastaStreamReader::next(size_t max_codes, std::vector<uint8_t> &out)
{
    out.clear();
    CRISPR_ASSERT(max_codes > 0);

    while (out.size() < max_codes) {
        if (linePos_ >= line_.size()) {
            // Fetch the next non-empty line.
            if (!std::getline(in_, line_)) {
                line_.clear();
                linePos_ = 0;
                break;
            }
            if (!line_.empty() && line_.back() == '\r')
                line_.pop_back();
            linePos_ = 0;
            if (line_.empty())
                continue;
            if (line_[0] == '>') {
                std::string header = line_.substr(1);
                auto ws = header.find_first_of(" \t");
                std::string name =
                    ws == std::string::npos ? header
                                            : header.substr(0, ws);
                if (name.empty())
                    fatal("FASTA stream: empty record name");
                if (sawRecord_)
                    pendingSeparator_ = true;
                sawRecord_ = true;
                // The record's start offset accounts for the pending
                // separator that will be emitted first.
                records_.push_back(RecordInfo{
                    std::move(name),
                    offset_ + (pendingSeparator_ ? 1 : 0)});
                line_.clear();
                continue;
            }
            if (!sawRecord_)
                fatal("FASTA stream: sequence data before any '>' "
                      "header");
        }
        if (pendingSeparator_) {
            out.push_back(kCodeN);
            ++offset_;
            pendingSeparator_ = false;
            continue;
        }
        while (linePos_ < line_.size() && out.size() < max_codes) {
            const char c = line_[linePos_++];
            uint8_t code = baseCode(c);
            if (code == kCodeInvalid) {
                code = iupacMask(c) != 0 ? kCodeN : kCodeInvalid;
            }
            if (code == kCodeInvalid)
                fatal("FASTA stream: invalid character '%c'", c);
            out.push_back(code);
            ++offset_;
        }
    }
    if (out.empty() && !sawRecord_)
        fatal("FASTA stream contains no records");
    return !out.empty();
}

} // namespace crispr::genome
