#include "genome/fasta_stream.hpp"

#include <istream>

#include "common/faultpoints.hpp"
#include "common/logging.hpp"
#include "genome/alphabet.hpp"

namespace crispr::genome {

using common::Error;
using common::ErrorCode;

FastaStreamReader::FastaStreamReader(std::istream &in,
                                     FastaStreamOptions options)
    : in_(in), options_(options)
{
}

void
FastaStreamReader::dropRecord()
{
    ++recordsDropped_;
    skippingRecord_ = true;
    line_.clear();
    linePos_ = 0;
}

common::Expected<bool>
FastaStreamReader::tryNext(size_t max_codes, std::vector<uint8_t> &out)
{
    out.clear();
    CRISPR_ASSERT(max_codes > 0);

    while (out.size() < max_codes) {
        if (linePos_ >= line_.size()) {
            // Fetch the next non-empty line.
            if (!std::getline(in_, line_)) {
                line_.clear();
                linePos_ = 0;
                break;
            }
            if (!line_.empty() && line_.back() == '\r')
                line_.pop_back();
            linePos_ = 0;
            if (line_.empty())
                continue;
            if (line_[0] == '>') {
                skippingRecord_ = false;
                std::string header = line_.substr(1);
                auto ws = header.find_first_of(" \t");
                std::string name =
                    ws == std::string::npos ? header
                                            : header.substr(0, ws);
                line_.clear();
                const bool injected =
                    common::faultpoints::shouldFail("fasta.record");
                if (name.empty() || injected) {
                    const char *what =
                        injected ? "injected fasta.record fault"
                                 : "empty record name";
                    if (!options_.lenient)
                        return Error(
                            ErrorCode::ParseError,
                            strprintf("FASTA stream: %s", what));
                    dropRecord();
                    continue;
                }
                if (sawRecord_)
                    pendingSeparator_ = true;
                sawRecord_ = true;
                // The record's start offset accounts for the pending
                // separator that will be emitted first.
                records_.push_back(RecordInfo{
                    std::move(name),
                    offset_ + (pendingSeparator_ ? 1 : 0)});
                continue;
            }
            if (skippingRecord_) {
                line_.clear();
                continue;
            }
            if (!sawRecord_) {
                if (!options_.lenient)
                    return Error(ErrorCode::ParseError,
                                 "FASTA stream: sequence data before "
                                 "any '>' header");
                // The headerless prefix counts as one dropped record.
                dropRecord();
                continue;
            }
        }
        if (pendingSeparator_) {
            out.push_back(kCodeN);
            ++offset_;
            pendingSeparator_ = false;
            continue;
        }
        while (linePos_ < line_.size() && out.size() < max_codes) {
            const char c = line_[linePos_++];
            if (c == ' ' || c == '\t' || c == '\r')
                continue; // stray whitespace inside a sequence line
            uint8_t code = baseCode(c);
            if (code == kCodeInvalid) {
                code = iupacMask(c) != 0 ? kCodeN : kCodeInvalid;
            }
            if (code == kCodeInvalid) {
                if (!options_.lenient)
                    return Error(
                        ErrorCode::ParseError,
                        strprintf(
                            "FASTA stream: invalid character '%c'",
                            c));
                // Truncate at the bad character; skip the remainder.
                dropRecord();
                break;
            }
            out.push_back(code);
            ++offset_;
        }
    }
    if (out.empty() && !sawRecord_)
        return Error(ErrorCode::ParseError,
                     "FASTA stream contains no records");
    return !out.empty();
}

bool
FastaStreamReader::next(size_t max_codes, std::vector<uint8_t> &out)
{
    return tryNext(max_codes, out).valueOrThrow();
}

} // namespace crispr::genome
