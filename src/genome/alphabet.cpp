#include "genome/alphabet.hpp"

#include <array>
#include <cctype>

#include "common/logging.hpp"

namespace crispr::genome {

namespace {

constexpr std::array<uint8_t, 256>
makeCodeTable()
{
    std::array<uint8_t, 256> t{};
    for (auto &v : t)
        v = kCodeInvalid;
    t['A'] = t['a'] = 0;
    t['C'] = t['c'] = 1;
    t['G'] = t['g'] = 2;
    t['T'] = t['t'] = 3;
    t['U'] = t['u'] = 3; // RNA input tolerated
    t['N'] = t['n'] = kCodeN;
    return t;
}

constexpr std::array<uint8_t, 256> kCodeTable = makeCodeTable();

constexpr BaseMask A = 1, C = 2, G = 4, T = 8;

constexpr std::array<BaseMask, 256>
makeIupacTable()
{
    std::array<BaseMask, 256> t{};
    auto set = [&t](char lo, char hi, BaseMask m) {
        t[static_cast<unsigned char>(lo)] = m;
        t[static_cast<unsigned char>(hi)] = m;
    };
    set('a', 'A', A);
    set('c', 'C', C);
    set('g', 'G', G);
    set('t', 'T', T);
    set('u', 'U', T);
    set('r', 'R', A | G);
    set('y', 'Y', C | T);
    set('s', 'S', G | C);
    set('w', 'W', A | T);
    set('k', 'K', G | T);
    set('m', 'M', A | C);
    set('b', 'B', C | G | T);
    set('d', 'D', A | G | T);
    set('h', 'H', A | C | T);
    set('v', 'V', A | C | G);
    set('n', 'N', A | C | G | T);
    return t;
}

constexpr std::array<BaseMask, 256> kIupacTable = makeIupacTable();

constexpr char kMaskToIupac[16] = {
    '?', 'A', 'C', 'M', 'G', 'R', 'S', 'V',
    'T', 'W', 'Y', 'H', 'K', 'D', 'B', 'N',
};

} // namespace

uint8_t
baseCode(char c)
{
    return kCodeTable[static_cast<unsigned char>(c)];
}

char
baseChar(uint8_t code)
{
    static constexpr char chars[] = {'A', 'C', 'G', 'T', 'N'};
    CRISPR_ASSERT(code < kNumSymbols);
    return chars[code];
}

uint8_t
complementCode(uint8_t code)
{
    CRISPR_ASSERT(code < kNumSymbols);
    return code == kCodeN ? kCodeN : static_cast<uint8_t>(3 - code);
}

BaseMask
iupacMask(char c)
{
    return kIupacTable[static_cast<unsigned char>(c)];
}

char
maskIupac(BaseMask mask)
{
    CRISPR_ASSERT(mask < 16);
    return kMaskToIupac[mask];
}

BaseMask
complementMask(BaseMask mask)
{
    // Complementing the base set: base b is in the result iff
    // complement(b) is in the input. A<->T is bit0<->bit3, C<->G is
    // bit1<->bit2, i.e. a 4-bit reversal.
    BaseMask out = 0;
    for (int b = 0; b < 4; ++b)
        if ((mask >> b) & 1u)
            out |= static_cast<BaseMask>(1u << (3 - b));
    return out;
}

void
validateIupac(const std::string &s, const char *what)
{
    for (char c : s) {
        if (iupacMask(c) == 0)
            fatal("%s contains non-IUPAC character '%c'", what, c);
    }
}

} // namespace crispr::genome
