#include "genome/packed.hpp"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <system_error>
#include <thread>

#include "common/logging.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#define CRISPR_PACKED_HAS_MMAP 1
#else
#define CRISPR_PACKED_HAS_MMAP 0
#endif

namespace crispr::genome {

namespace fs = std::filesystem;
using common::Error;
using common::ErrorCode;

namespace {

constexpr char kMagic[8] = {'C', 'R', 'I', 'S', 'P', 'R', '2', 'B'};

/** Decode [pos, end) of a packed payload into byte-per-base codes. */
void
decodePacked(std::span<const uint8_t> words,
             std::span<const uint64_t> n_positions, size_t size,
             size_t pos, size_t len, std::vector<uint8_t> &out)
{
    if (pos >= size) {
        out.clear();
        return;
    }
    const size_t end = std::min(size, pos + len);
    out.resize(end - pos);
    for (size_t i = pos; i < end; ++i)
        out[i - pos] = static_cast<uint8_t>(
            (words[i >> 2] >> ((i & 3) * 2)) & 3);
    // Patch N exceptions intersecting [pos, end).
    auto it = std::lower_bound(n_positions.begin(), n_positions.end(),
                               static_cast<uint64_t>(pos));
    for (; it != n_positions.end() && *it < end; ++it)
        out[*it - pos] = kCodeN;
}

void
storeU32(uint8_t *at, uint32_t v)
{
    std::memcpy(at, &v, sizeof(v));
}

void
storeU64(uint8_t *at, uint64_t v)
{
    std::memcpy(at, &v, sizeof(v));
}

uint32_t
loadU32(const uint8_t *at)
{
    uint32_t v;
    std::memcpy(&v, at, sizeof(v));
    return v;
}

uint64_t
loadU64(const uint8_t *at)
{
    uint64_t v;
    std::memcpy(&v, at, sizeof(v));
    return v;
}

size_t
paddedWordBytes(uint64_t base_count)
{
    const size_t raw = static_cast<size_t>((base_count + 3) / 4);
    return (raw + 7) & ~size_t(7);
}

} // namespace

PackedSequence
PackedSequence::pack(const Sequence &seq)
{
    PackedSequence p;
    p.size_ = seq.size();
    p.words_.assign((seq.size() + 3) / 4, 0);
    for (size_t i = 0; i < seq.size(); ++i) {
        uint8_t code = seq[i];
        if (code == kCodeN) {
            p.nPositions_.push_back(i);
            code = 0; // stored as A; the exception list overrides
        }
        p.words_[i >> 2] |= static_cast<uint8_t>(code << ((i & 3) * 2));
    }
    return p;
}

Sequence
PackedSequence::unpack() const
{
    std::vector<uint8_t> codes;
    decode(0, size_, codes);
    return Sequence(std::move(codes));
}

void
PackedSequence::decode(size_t pos, size_t len,
                       std::vector<uint8_t> &out) const
{
    decodePacked(words_, nPositions_, size_, pos, len, out);
}

uint8_t
PackedSequence::at(size_t pos) const
{
    CRISPR_ASSERT(pos < size_);
    if (std::binary_search(nPositions_.begin(), nPositions_.end(),
                           static_cast<uint64_t>(pos)))
        return kCodeN;
    return static_cast<uint8_t>(
        (words_[pos >> 2] >> ((pos & 3) * 2)) & 3);
}

size_t
PackedSequence::memoryBytes() const
{
    return words_.size() + nPositions_.size() * sizeof(uint64_t);
}

void
PackedSequence::forEachChunk(
    size_t chunk_len, size_t overlap,
    const std::function<void(size_t, std::span<const uint8_t>)> &fn)
    const
{
    CRISPR_ASSERT(chunk_len > 0);
    std::vector<uint8_t> buffer;
    for (size_t at = 0; at < size_; at += chunk_len) {
        const size_t lead = at >= overlap ? at - overlap : 0;
        const size_t end = std::min(size_, at + chunk_len);
        decode(lead, end - lead, buffer);
        fn(at, std::span<const uint8_t>(buffer.data(), buffer.size()));
        if (end == size_)
            break;
    }
}

common::Status
PackedFile::write(const std::string &path, const PackedSequence &packed)
{
    const std::span<const uint8_t> words = packed.words();
    const std::span<const uint64_t> n_positions = packed.nExceptions();
    const size_t padded = paddedWordBytes(packed.size());

    std::vector<uint8_t> header(kHeaderBytes, 0);
    std::memcpy(header.data(), kMagic, sizeof(kMagic));
    storeU32(header.data() + 8, kVersion);
    storeU32(header.data() + 12, 0);
    storeU64(header.data() + 16, packed.size());
    storeU64(header.data() + 24, n_positions.size());

    // Unique temp per writer thread so concurrent writers never
    // interleave; rename() is atomic within the directory (the
    // PatternDatabase::store idiom).
    const std::string tmp =
        path + strprintf(".tmp.%llu",
                         static_cast<unsigned long long>(
                             std::hash<std::thread::id>{}(
                                 std::this_thread::get_id())));
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            return Error(ErrorCode::Internal,
                         "cannot open packed genome temp file for "
                         "writing")
                .withContext("path", tmp);
        out.write(reinterpret_cast<const char *>(header.data()),
                  static_cast<std::streamsize>(header.size()));
        out.write(reinterpret_cast<const char *>(words.data()),
                  static_cast<std::streamsize>(words.size()));
        const std::vector<uint8_t> pad(padded - words.size(), 0);
        out.write(reinterpret_cast<const char *>(pad.data()),
                  static_cast<std::streamsize>(pad.size()));
        out.write(reinterpret_cast<const char *>(n_positions.data()),
                  static_cast<std::streamsize>(n_positions.size() *
                                               sizeof(uint64_t)));
        if (!out.good())
            return Error(ErrorCode::Internal,
                         "short write to packed genome temp file")
                .withContext("path", tmp);
    }
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec) {
        fs::remove(tmp, ec);
        return Error(ErrorCode::Internal,
                     "cannot publish packed genome file")
            .withContext("path", path);
    }
    return common::Status();
}

common::Status
PackedFile::writeSequence(const std::string &path, const Sequence &seq)
{
    return write(path, PackedSequence::pack(seq));
}

common::Expected<std::shared_ptr<const PackedFile>>
PackedFile::map(const std::string &path)
{
    auto file = std::shared_ptr<PackedFile>(new PackedFile());

#if CRISPR_PACKED_HAS_MMAP
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        return Error(ErrorCode::InvalidArgument,
                     "cannot open packed genome file")
            .withContext("path", path);
    struct stat st;
    if (::fstat(fd, &st) != 0 || st.st_size < 0) {
        ::close(fd);
        return Error(ErrorCode::InvalidArgument,
                     "cannot stat packed genome file")
            .withContext("path", path);
    }
    const size_t total = static_cast<size_t>(st.st_size);
    if (total < kHeaderBytes) {
        ::close(fd);
        return Error(ErrorCode::ParseError,
                     "packed genome file shorter than its header")
            .withContext("path", path);
    }
    void *base = ::mmap(nullptr, total, PROT_READ, MAP_SHARED, fd, 0);
    ::close(fd); // the mapping outlives the descriptor
    if (base == MAP_FAILED)
        return Error(ErrorCode::Internal,
                     "mmap failed for packed genome file")
            .withContext("path", path);
    file->mapBase_ = base;
    file->mmapped_ = true;
    file->fileBytes_ = total;
    const uint8_t *bytes = static_cast<const uint8_t *>(base);
#else
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return Error(ErrorCode::InvalidArgument,
                     "cannot open packed genome file")
            .withContext("path", path);
    file->heap_.assign(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
    if (!in.good() && !in.eof())
        return Error(ErrorCode::ParseError,
                     "cannot read packed genome file")
            .withContext("path", path);
    const size_t total = file->heap_.size();
    if (total < kHeaderBytes)
        return Error(ErrorCode::ParseError,
                     "packed genome file shorter than its header")
            .withContext("path", path);
    file->fileBytes_ = total;
    const uint8_t *bytes = file->heap_.data();
#endif

    if (std::memcmp(bytes, kMagic, sizeof(kMagic)) != 0)
        return Error(ErrorCode::ParseError,
                     "packed genome file has wrong magic")
            .withContext("path", path);
    const uint32_t version = loadU32(bytes + 8);
    if (version != kVersion)
        return Error(ErrorCode::ParseError,
                     strprintf("unsupported packed genome version %u",
                               version))
            .withContext("path", path);
    const uint64_t base_count = loadU64(bytes + 16);
    const uint64_t n_count = loadU64(bytes + 24);
    const size_t padded = paddedWordBytes(base_count);
    // The declared counts must reproduce the file length exactly: a
    // truncated or padded file is rejected, not partially trusted.
    if (base_count > (uint64_t(1) << 62) ||
        n_count > base_count ||
        total != kHeaderBytes + padded + n_count * sizeof(uint64_t))
        return Error(ErrorCode::ParseError,
                     "packed genome file size disagrees with its "
                     "header counts")
            .withContext("path", path);

    file->size_ = static_cast<size_t>(base_count);
    file->words_ = std::span<const uint8_t>(
        bytes + kHeaderBytes, static_cast<size_t>((base_count + 3) / 4));
    file->nPositions_ = std::span<const uint64_t>(
        reinterpret_cast<const uint64_t *>(bytes + kHeaderBytes +
                                           padded),
        static_cast<size_t>(n_count));
    // N exceptions must be strictly increasing and in range, or the
    // binary-search decode contract breaks.
    for (size_t i = 0; i < file->nPositions_.size(); ++i) {
        if (file->nPositions_[i] >= base_count ||
            (i > 0 &&
             file->nPositions_[i] <= file->nPositions_[i - 1]))
            return Error(ErrorCode::ParseError,
                         "packed genome N-exception list is unsorted "
                         "or out of range")
                .withContext("path", path);
    }
    return std::shared_ptr<const PackedFile>(std::move(file));
}

PackedFile::~PackedFile()
{
#if CRISPR_PACKED_HAS_MMAP
    if (mmapped_ && mapBase_)
        ::munmap(mapBase_, fileBytes_);
#endif
}

void
PackedFile::decode(size_t pos, size_t len,
                   std::vector<uint8_t> &out) const
{
    decodePacked(words_, nPositions_, size_, pos, len, out);
}

Sequence
PackedFile::unpack() const
{
    std::vector<uint8_t> codes;
    decode(0, size_, codes);
    return Sequence(std::move(codes));
}

} // namespace crispr::genome
