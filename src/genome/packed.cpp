#include "genome/packed.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace crispr::genome {

PackedSequence
PackedSequence::pack(const Sequence &seq)
{
    PackedSequence p;
    p.size_ = seq.size();
    p.words_.assign((seq.size() + 3) / 4, 0);
    for (size_t i = 0; i < seq.size(); ++i) {
        uint8_t code = seq[i];
        if (code == kCodeN) {
            p.nPositions_.push_back(i);
            code = 0; // stored as A; the exception list overrides
        }
        p.words_[i >> 2] |= static_cast<uint8_t>(code << ((i & 3) * 2));
    }
    return p;
}

Sequence
PackedSequence::unpack() const
{
    std::vector<uint8_t> codes;
    decode(0, size_, codes);
    return Sequence(std::move(codes));
}

void
PackedSequence::decode(size_t pos, size_t len,
                       std::vector<uint8_t> &out) const
{
    if (pos >= size_) {
        out.clear();
        return;
    }
    const size_t end = std::min(size_, pos + len);
    out.resize(end - pos);
    for (size_t i = pos; i < end; ++i)
        out[i - pos] = static_cast<uint8_t>(
            (words_[i >> 2] >> ((i & 3) * 2)) & 3);
    // Patch N exceptions intersecting [pos, end).
    auto it = std::lower_bound(nPositions_.begin(), nPositions_.end(),
                               static_cast<uint64_t>(pos));
    for (; it != nPositions_.end() && *it < end; ++it)
        out[*it - pos] = kCodeN;
}

uint8_t
PackedSequence::at(size_t pos) const
{
    CRISPR_ASSERT(pos < size_);
    if (std::binary_search(nPositions_.begin(), nPositions_.end(),
                           static_cast<uint64_t>(pos)))
        return kCodeN;
    return static_cast<uint8_t>(
        (words_[pos >> 2] >> ((pos & 3) * 2)) & 3);
}

size_t
PackedSequence::memoryBytes() const
{
    return words_.size() + nPositions_.size() * sizeof(uint64_t);
}

void
PackedSequence::forEachChunk(
    size_t chunk_len, size_t overlap,
    const std::function<void(size_t, std::span<const uint8_t>)> &fn)
    const
{
    CRISPR_ASSERT(chunk_len > 0);
    std::vector<uint8_t> buffer;
    for (size_t at = 0; at < size_; at += chunk_len) {
        const size_t lead = at >= overlap ? at - overlap : 0;
        const size_t end = std::min(size_, at + chunk_len);
        decode(lead, end - lead, buffer);
        fn(at, std::span<const uint8_t>(buffer.data(), buffer.size()));
        if (end == size_)
            break;
    }
}

} // namespace crispr::genome
