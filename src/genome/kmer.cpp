#include "genome/kmer.hpp"

#include "common/logging.hpp"

namespace crispr::genome {

bool
encodeKmer(const Sequence &seq, size_t pos, size_t k, uint64_t &code)
{
    CRISPR_ASSERT(k > 0 && k <= kMaxK);
    CRISPR_ASSERT(pos + k <= seq.size());
    uint64_t c = 0;
    for (size_t i = 0; i < k; ++i) {
        uint8_t b = seq[pos + i];
        if (b >= 4)
            return false;
        c = (c << 2) | b;
    }
    code = c;
    return true;
}

Sequence
decodeKmer(uint64_t code, size_t k)
{
    CRISPR_ASSERT(k > 0 && k <= kMaxK);
    std::vector<uint8_t> codes(k);
    for (size_t i = 0; i < k; ++i) {
        codes[k - 1 - i] = static_cast<uint8_t>(code & 3);
        code >>= 2;
    }
    return Sequence(std::move(codes));
}

void
forEachKmer(const Sequence &seq, size_t k,
            const std::function<void(size_t, uint64_t)> &fn)
{
    CRISPR_ASSERT(k > 0 && k <= kMaxK);
    if (seq.size() < k)
        return;
    const uint64_t mask = (k == 32) ? ~0ULL : ((1ULL << (2 * k)) - 1);
    uint64_t code = 0;
    size_t valid = 0; // number of consecutive non-N bases ending here
    for (size_t i = 0; i < seq.size(); ++i) {
        uint8_t b = seq[i];
        if (b >= 4) {
            valid = 0;
            code = 0;
            continue;
        }
        code = ((code << 2) | b) & mask;
        if (++valid >= k)
            fn(i + 1 - k, code);
    }
}

} // namespace crispr::genome
