#include "common/error.hpp"

namespace crispr::common {

const char *
errorCodeName(ErrorCode code)
{
    switch (code) {
    case ErrorCode::Ok:
        return "ok";
    case ErrorCode::InvalidArgument:
        return "invalid_argument";
    case ErrorCode::ParseError:
        return "parse_error";
    case ErrorCode::UnsupportedEngine:
        return "unsupported_engine";
    case ErrorCode::CompileFailed:
        return "compile_failed";
    case ErrorCode::ScanFailed:
        return "scan_failed";
    case ErrorCode::DeadlineExceeded:
        return "deadline_exceeded";
    case ErrorCode::Cancelled:
        return "cancelled";
    case ErrorCode::ResourceExhausted:
        return "resource_exhausted";
    case ErrorCode::Overloaded:
        return "overloaded";
    case ErrorCode::FaultInjected:
        return "fault_injected";
    case ErrorCode::Internal:
        return "internal";
    }
    return "unknown";
}

std::string
Error::str() const
{
    std::string out = "[";
    out += errorCodeName(code_);
    out += "] ";
    out += message_;
    if (!context_.empty()) {
        out += " (";
        for (size_t i = 0; i < context_.size(); ++i) {
            if (i > 0)
                out += ", ";
            out += context_[i].first;
            out += '=';
            out += context_[i].second;
        }
        out += ')';
    }
    return out;
}

} // namespace crispr::common
