/**
 * @file
 * The execution layer: a process-wide, lazily-started work-stealing
 * thread pool shared by every parallel scan path (hscan::parallelScan,
 * core::ChunkedScanner, core::SearchService), so N concurrent requests
 * share one bounded set of workers instead of each spawning fresh
 * std::threads and oversubscribing the machine N-fold.
 *
 * Structure (see DESIGN.md "Execution layer"):
 *  - one deque per worker; the owner pushes/pops its back (LIFO, cache
 *    warm), idle workers steal from other deques' fronts (FIFO, oldest
 *    work first) — counted in the `executor.steals` metric;
 *  - a bounded global injection queue for external submitters; a full
 *    queue blocks submit() (backpressure) unless the caller is itself
 *    a pool worker, in which case the task goes to its own deque
 *    (unbounded) so nested submission can never self-deadlock;
 *  - task futures capture exceptions (future.get() rethrows);
 *  - a task carrying an expired Deadline at dequeue time is dropped
 *    without running: its future fails with DeadlineExceeded or
 *    Cancelled and `executor.dropped` counts it;
 *  - joins help: forIndices() and wait() execute pending pool tasks
 *    while they wait, so a worker blocked on nested work contributes
 *    instead of deadlocking the pool. Helping loops skip tasks
 *    submitted with TaskOptions::mayBlock (e.g. shard gather joins):
 *    a helper inside a scan must only pick up work guaranteed to
 *    finish on its own, never a task that may transitively wait on
 *    the helper's own thread;
 *  - the destructor stops the workers (the in-flight task of each
 *    finishes), then fails every still-queued task with Cancelled —
 *    no future is ever abandoned, even at static teardown.
 *
 * `Executor::shared()` is the process-wide pool (hardware_concurrency
 * workers, constructed on first use); instanced pools exist for tests
 * and benchmarks. The single-thread scan path (`threads == 1`) never
 * touches the pool at all — the paper's single-core measurements stay
 * pool-free by construction.
 *
 * Metrics: `executor.tasks` (executed), `executor.steals`,
 * `executor.dropped`, `executor.queue_depth` (pending, sampled at
 * submit/dequeue), `executor.wait_seconds` (submit-to-dequeue
 * latency). A task submitted with a TraceSink records a `pool` span
 * around its execution.
 */

#ifndef CRISPR_COMMON_EXECUTOR_HPP_
#define CRISPR_COMMON_EXECUTOR_HPP_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/deadline.hpp"
#include "common/error.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"

namespace crispr::common {

/** Pool shape; fixed for the pool's lifetime. */
struct ExecutorOptions
{
    /** Worker threads; 0 = hardware_concurrency (at least 1). */
    unsigned threads = 0;
    /**
     * Bound of the global injection queue. An external submit() past
     * the bound blocks until a worker drains (backpressure); worker
     * threads bypass the bound via their own deques.
     */
    size_t queueBound = 4096;
};

/** Per-task options. */
struct TaskOptions
{
    /** Expired at dequeue time => the task is dropped, not run. */
    Deadline deadline;
    /** When set, execution records a `pool` span into this sink. */
    TraceSink *trace = nullptr;
    /**
     * The task may block waiting on other serving-side progress (a
     * scatter-gather join waiting on shard futures, say). Blocking
     * tasks are executed only by dedicated workers and by waits that
     * opt in (`wait(fut, true)`) — never by the helping loops inside
     * scans and joins. A scan's helper that picked up a task which
     * transitively waits on that very scan's thread (a shard gather
     * waiting on a sub-request queued behind the dispatcher doing the
     * helping) would deadlock; the flag keeps dependency-bearing work
     * off threads whose own progress the work might wait for.
     */
    bool mayBlock = false;
};

/** The work-stealing pool. */
class Executor
{
  public:
    explicit Executor(ExecutorOptions options = {});

    /**
     * Stops the workers (each finishes its in-flight task), joins
     * them, then fails every still-queued task with Cancelled.
     */
    ~Executor();

    Executor(const Executor &) = delete;
    Executor &operator=(const Executor &) = delete;

    /**
     * The process-wide pool every scan path schedules onto
     * (hardware_concurrency workers), constructed on first use and
     * shut down cleanly before static teardown unwinds past it.
     */
    static Executor &shared();

    /**
     * Resolve a worker-thread request: 0 = hardware_concurrency (at
     * least 1), n = n. The one implementation of the 0-means-all-cores
     * convention — every scan path resolves through here, and because
     * the resolved lanes are pool *tasks* rather than fresh threads,
     * nested parallel scans cannot multiply OS thread counts.
     */
    static unsigned resolveThreads(unsigned requested);

    /**
     * Schedule `fn`; the future rethrows anything `fn` throws. Blocks
     * for queue space when called from outside the pool and the
     * injection queue is full.
     */
    template <typename F>
    auto
    submit(F &&fn, TaskOptions opts = {})
        -> std::future<std::invoke_result_t<std::decay_t<F>>>
    {
        using R = std::invoke_result_t<std::decay_t<F>>;
        auto promise = std::make_shared<std::promise<R>>();
        std::future<R> fut = promise->get_future();
        Task task;
        task.deadline = opts.deadline;
        task.trace = opts.trace;
        task.mayBlock = opts.mayBlock;
        task.run = [promise, fn = std::forward<F>(fn)]() mutable {
            try {
                if constexpr (std::is_void_v<R>) {
                    fn();
                    promise->set_value();
                } else {
                    promise->set_value(fn());
                }
            } catch (...) {
                promise->set_exception(std::current_exception());
            }
        };
        task.drop = [promise](Error error) {
            promise->set_exception(std::make_exception_ptr(
                ErrorException(std::move(error))));
        };
        enqueue(std::move(task), /*block_on_full=*/true);
        return fut;
    }

    /**
     * Run `body(index, lane)` for every index in [0, n): the calling
     * thread is lane 0 and up to `lanes - 1` pool tasks join as extra
     * lanes, so the loop makes progress even when the pool is
     * saturated — and a loop running inside a pool worker borrows
     * idle workers instead of spawning threads. Lane ids are dense in
     * [0, lanes) and each lane is one thread of control, so per-lane
     * scratch (scanner clones, event buffers) indexed by lane is
     * race-free. `body` returning false stops further index grabs
     * (deadline/failure); indices already grabbed still complete.
     * Returns the number of indices actually run. The caller helps
     * execute unrelated pool tasks while it waits for its own lanes
     * to finish, which is what makes nested joins deadlock-free.
     */
    size_t forIndices(
        size_t n, unsigned lanes, TaskOptions opts,
        const std::function<bool(size_t index, unsigned lane)> &body);

    /**
     * Help execute pool tasks until `fut` is ready (deadlock-free
     * join usable from inside a pool worker). By default the helping
     * loop skips tasks submitted with TaskOptions::mayBlock — a scan
     * helping-executes only work guaranteed to finish on its own.
     * Pass `include_blocking = true` only from contexts that no
     * blocking task can transitively wait on (a coordinator draining
     * its own gathers, not a thread inside a scan or dispatch loop).
     */
    template <typename T>
    void
    wait(std::future<T> &fut, bool include_blocking = false)
    {
        helpWhile(
            [&fut] {
                return fut.wait_for(std::chrono::seconds(0)) ==
                       std::future_status::ready;
            },
            include_blocking);
    }

    unsigned workerCount() const
    {
        return static_cast<unsigned>(workers_.size());
    }
    /** Tasks queued but not yet started. */
    size_t pendingCount() const
    {
        return pending_.load(std::memory_order_relaxed);
    }
    uint64_t tasksExecuted() const { return tasks_.value(); }
    uint64_t steals() const { return stealsCounter_.value(); }
    uint64_t dropped() const { return droppedCounter_.value(); }

    /** executor.* metrics (tasks, steals, dropped, queue_depth,
     *  wait_seconds.*). */
    std::map<std::string, double> metricsSnapshot() const;
    void mergeMetricsInto(std::map<std::string, double> &out) const;

  private:
    struct Task
    {
        std::function<void()> run;
        std::function<void(Error)> drop; //!< fail the future instead
        Deadline deadline;
        TraceSink *trace = nullptr;
        bool mayBlock = false; //!< skipped by helping loops
        std::chrono::steady_clock::time_point enqueued;
    };

    struct Worker
    {
        std::mutex mutex;
        std::deque<Task> deque;
        std::thread thread;
    };

    void workerLoop(size_t index);
    void enqueue(Task task, bool block_on_full);
    /** Pop/steal one task and execute (or drop) it. Helping loops
     *  pass include_blocking = false to skip mayBlock tasks. */
    bool tryExecuteOne(bool include_blocking);
    bool popOwn(Task &out, bool include_blocking);
    bool popGlobal(Task &out, bool include_blocking);
    bool steal(Task &out, bool include_blocking);
    void execute(Task task);
    /** Execute pending tasks until done() holds; naps when idle. */
    void helpWhile(const std::function<bool()> &done,
                   bool include_blocking);
    void noteDequeued(const Task &task);

    const ExecutorOptions options_;
    std::vector<std::unique_ptr<Worker>> workers_;

    std::mutex mutex_; //!< global queue + sleep/wake + stop
    std::condition_variable cv_;      //!< wakes idle workers
    std::condition_variable spaceCv_; //!< wakes blocked submitters
    std::deque<Task> global_;
    std::atomic<bool> stop_{false};
    std::atomic<size_t> pending_{0}; //!< queued, not yet started

    mutable MetricsRegistry metrics_;
    Counter tasks_;
    Counter stealsCounter_;
    Counter droppedCounter_;
    Gauge queueDepth_;
    Histogram waitSeconds_;
};

} // namespace crispr::common

#endif // CRISPR_COMMON_EXECUTOR_HPP_
