/**
 * @file
 * Binary serialization substrate for the ahead-of-time pattern
 * databases (DESIGN.md "Pattern databases & engine auto-selection").
 * Two layers:
 *
 *  - BlobWriter / BlobReader: little-endian primitive encode/decode.
 *    The reader is sticky-error: a truncated or malformed read records
 *    the first failure, subsequent reads return zeros, and status()
 *    reports the typed Error — so decode routines read the whole
 *    layout linearly and check once.
 *
 *  - sealBlob / openBlob: the versioned envelope every persisted
 *    artifact wears. Layout (all little-endian):
 *
 *        u32 magic "CPDB"      (0x42445043)
 *        u32 format version    (kind-specific; bumped on layout change)
 *        u32 kind tag          (fnv1a32 of the kind string, "dfa", ...)
 *        u64 payload size
 *        u64 content hash      (fnv1a64 of the payload bytes)
 *        payload...
 *
 *    openBlob rejects wrong magic/kind (InvalidArgument), version skew
 *    (InvalidArgument, with found/expected context), truncation and
 *    content-hash mismatch (ParseError) — so a bit-flipped or
 *    half-written database file fails loudly and the caller falls back
 *    to a cold compile.
 */

#ifndef CRISPR_COMMON_SERIAL_HPP_
#define CRISPR_COMMON_SERIAL_HPP_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"

namespace crispr::common {

/** FNV-1a 64-bit hash of a byte range. */
uint64_t fnv1a64(std::span<const uint8_t> data);

/** FNV-1a 32-bit hash of a string (kind tags, short keys). */
uint32_t fnv1a32(std::string_view text);

/** Little-endian primitive encoder appending to an internal buffer. */
class BlobWriter
{
  public:
    void u8(uint8_t v) { buf_.push_back(v); }
    void u32(uint32_t v);
    void u64(uint64_t v);
    void bytes(std::span<const uint8_t> data);
    /** u32 length prefix + raw bytes. */
    void str(std::string_view text);

    size_t size() const { return buf_.size(); }
    const std::vector<uint8_t> &buffer() const { return buf_; }
    std::vector<uint8_t> take() { return std::move(buf_); }

  private:
    std::vector<uint8_t> buf_;
};

/**
 * Little-endian primitive decoder over a borrowed byte range.
 * Sticky-error: the first out-of-bounds or invalid read records an
 * Error; later reads return zero values. Callers decode the full
 * layout, then check status() once.
 */
class BlobReader
{
  public:
    explicit BlobReader(std::span<const uint8_t> data) : data_(data) {}

    uint8_t u8();
    uint32_t u32();
    uint64_t u64();
    /** Counterpart of BlobWriter::str; empty on failure. */
    std::string str();
    /** Borrow the next n bytes; empty span on failure. */
    std::span<const uint8_t> raw(size_t n);

    size_t remaining() const { return data_.size() - pos_; }
    bool atEnd() const { return pos_ == data_.size(); }

    /** Record a caller-detected decode failure (bad enum value, ...). */
    void fail(std::string message);

    bool ok() const { return error_.ok(); }
    /** Ok, or the first recorded failure (ParseError). */
    Status status() const;

    /**
     * status(), plus a ParseError when decoding stopped short of the
     * end — a well-formed blob is consumed exactly.
     */
    Status finish() const;

  private:
    bool need(size_t n);

    std::span<const uint8_t> data_;
    size_t pos_ = 0;
    Error error_;
};

/** Envelope format version of a serialized artifact kind. */
inline constexpr uint32_t kSerialMagic = 0x42445043u; // "CPDB"

/** Wrap a payload in the versioned, content-hashed envelope. */
std::vector<uint8_t> sealBlob(std::string_view kind, uint32_t version,
                              std::span<const uint8_t> payload);

/**
 * Validate an envelope and return a view of its payload. The blob must
 * outlive the returned span. @return InvalidArgument on magic/kind/
 * version mismatch, ParseError on truncation or content-hash mismatch.
 */
Expected<std::span<const uint8_t>>
openBlob(std::string_view kind, uint32_t version,
         std::span<const uint8_t> blob);

} // namespace crispr::common

#endif // CRISPR_COMMON_SERIAL_HPP_
