#include "common/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <ostream>

namespace crispr::common {

using metrics_detail::CounterCell;
using metrics_detail::GaugeCell;
using metrics_detail::HistogramCell;
using metrics_detail::kHistogramScale;

uint64_t
Histogram::scale(double v)
{
    // Saturate instead of overflowing: 2^63 ns is ~292 years.
    const double scaled = v * kHistogramScale;
    if (scaled >= 9.2e18)
        return UINT64_MAX;
    return static_cast<uint64_t>(scaled);
}

void
Histogram::observeScaled(uint64_t scaled)
{
    const auto b = std::min<size_t>(std::bit_width(scaled),
                                    HistogramCell::kBuckets - 1);
    cell_->buckets[b].fetch_add(1, std::memory_order_relaxed);
    cell_->count.fetch_add(1, std::memory_order_relaxed);
    cell_->sumScaled.fetch_add(scaled, std::memory_order_relaxed);
    uint64_t seen = cell_->maxScaled.load(std::memory_order_relaxed);
    while (scaled > seen &&
           !cell_->maxScaled.compare_exchange_weak(
               seen, scaled, std::memory_order_relaxed))
        ;
}

uint64_t
Histogram::count() const
{
    return cell_ ? cell_->count.load(std::memory_order_relaxed) : 0;
}

double
Histogram::sum() const
{
    return cell_ ? static_cast<double>(cell_->sumScaled.load(
                       std::memory_order_relaxed)) /
                       kHistogramScale
                 : 0.0;
}

double
Histogram::max() const
{
    return cell_ ? static_cast<double>(cell_->maxScaled.load(
                       std::memory_order_relaxed)) /
                       kHistogramScale
                 : 0.0;
}

double
Histogram::quantile(double q) const
{
    if (!cell_)
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    uint64_t counts[HistogramCell::kBuckets];
    uint64_t total = 0;
    for (size_t b = 0; b < HistogramCell::kBuckets; ++b) {
        counts[b] = cell_->buckets[b].load(std::memory_order_relaxed);
        total += counts[b];
    }
    if (total == 0)
        return 0.0;
    const uint64_t target = std::max<uint64_t>(
        1, static_cast<uint64_t>(std::ceil(q * total)));
    uint64_t cum = 0;
    for (size_t b = 0; b < HistogramCell::kBuckets; ++b) {
        cum += counts[b];
        if (cum < target)
            continue;
        // Interpolate inside bucket b: [2^(b-1), 2^b - 1] scaled.
        const double lo =
            b == 0 ? 0.0
                   : static_cast<double>(uint64_t{1} << (b - 1));
        const double hi =
            b == 0 ? 0.0
                   : (b >= 63 ? 9.2e18
                              : static_cast<double>(
                                    (uint64_t{1} << b) - 1));
        const uint64_t into = target - (cum - counts[b]);
        const double frac =
            counts[b] > 1
                ? static_cast<double>(into - 1) /
                      static_cast<double>(counts[b] - 1)
                : 1.0;
        // The bucket's upper bound can overshoot the largest value
        // actually observed; the exact max is a better bound.
        return std::min((lo + frac * (hi - lo)) / kHistogramScale,
                        max());
    }
    return max();
}

Counter
MetricsRegistry::counter(std::string_view name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = counters_.find(name);
    if (it == counters_.end())
        it = counters_
                 .emplace(std::string(name),
                          std::make_unique<CounterCell>())
                 .first;
    return Counter(it->second.get());
}

Gauge
MetricsRegistry::gauge(std::string_view name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = gauges_.find(name);
    if (it == gauges_.end())
        it = gauges_
                 .emplace(std::string(name),
                          std::make_unique<GaugeCell>())
                 .first;
    return Gauge(it->second.get());
}

Histogram
MetricsRegistry::histogram(std::string_view name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = histograms_.find(name);
    if (it == histograms_.end())
        it = histograms_
                 .emplace(std::string(name),
                          std::make_unique<HistogramCell>())
                 .first;
    return Histogram(it->second.get());
}

void
MetricsRegistry::mergeInto(std::map<std::string, double> &out) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &[name, cell] : counters_)
        out[name] = static_cast<double>(
            cell->value.load(std::memory_order_relaxed));
    for (const auto &[name, cell] : gauges_)
        out[name] = cell->value.load(std::memory_order_relaxed);
    for (const auto &[name, cell] : histograms_) {
        Histogram h(cell.get());
        if (h.count() == 0)
            continue;
        out[name + ".count"] = static_cast<double>(h.count());
        out[name + ".sum"] = h.sum();
        out[name + ".max"] = h.max();
        out[name + ".p50"] = h.quantile(0.50);
        out[name + ".p90"] = h.quantile(0.90);
        out[name + ".p99"] = h.quantile(0.99);
    }
}

std::map<std::string, double>
MetricsRegistry::toMap() const
{
    std::map<std::string, double> out;
    mergeInto(out);
    return out;
}

void
writeMetricsJson(const std::map<std::string, double> &metrics,
                 std::ostream &out, int indent)
{
    const std::string pad(static_cast<size_t>(indent), ' ');
    out << "{";
    bool first = true;
    for (const auto &[key, value] : metrics) {
        out << (first ? "\n" : ",\n") << pad << "  \"" << key
            << "\": ";
        if (std::isfinite(value))
            out << value;
        else
            out << "null";
        first = false;
    }
    if (!first)
        out << "\n" << pad;
    out << "}";
}

} // namespace crispr::common
