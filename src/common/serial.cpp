#include "common/serial.hpp"

#include "common/logging.hpp"

namespace crispr::common {

uint64_t
fnv1a64(std::span<const uint8_t> data)
{
    uint64_t h = 0xcbf29ce484222325ull;
    for (uint8_t b : data) {
        h ^= b;
        h *= 0x100000001b3ull;
    }
    return h;
}

uint32_t
fnv1a32(std::string_view text)
{
    uint32_t h = 0x811c9dc5u;
    for (char c : text) {
        h ^= static_cast<uint8_t>(c);
        h *= 0x01000193u;
    }
    return h;
}

void
BlobWriter::u32(uint32_t v)
{
    buf_.push_back(static_cast<uint8_t>(v));
    buf_.push_back(static_cast<uint8_t>(v >> 8));
    buf_.push_back(static_cast<uint8_t>(v >> 16));
    buf_.push_back(static_cast<uint8_t>(v >> 24));
}

void
BlobWriter::u64(uint64_t v)
{
    u32(static_cast<uint32_t>(v));
    u32(static_cast<uint32_t>(v >> 32));
}

void
BlobWriter::bytes(std::span<const uint8_t> data)
{
    buf_.insert(buf_.end(), data.begin(), data.end());
}

void
BlobWriter::str(std::string_view text)
{
    u32(static_cast<uint32_t>(text.size()));
    buf_.insert(buf_.end(), text.begin(), text.end());
}

bool
BlobReader::need(size_t n)
{
    if (!error_.ok())
        return false;
    if (n > data_.size() - pos_) {
        error_ = Error(ErrorCode::ParseError,
                       strprintf("blob truncated: need %zu bytes at "
                                 "offset %zu of %zu",
                                 n, pos_, data_.size()));
        return false;
    }
    return true;
}

uint8_t
BlobReader::u8()
{
    if (!need(1))
        return 0;
    return data_[pos_++];
}

uint32_t
BlobReader::u32()
{
    if (!need(4))
        return 0;
    uint32_t v = static_cast<uint32_t>(data_[pos_]) |
                 static_cast<uint32_t>(data_[pos_ + 1]) << 8 |
                 static_cast<uint32_t>(data_[pos_ + 2]) << 16 |
                 static_cast<uint32_t>(data_[pos_ + 3]) << 24;
    pos_ += 4;
    return v;
}

uint64_t
BlobReader::u64()
{
    const uint64_t lo = u32();
    const uint64_t hi = u32();
    return lo | (hi << 32);
}

std::string
BlobReader::str()
{
    const uint32_t len = u32();
    if (!need(len))
        return {};
    std::string out(reinterpret_cast<const char *>(data_.data()) + pos_,
                    len);
    pos_ += len;
    return out;
}

std::span<const uint8_t>
BlobReader::raw(size_t n)
{
    if (!need(n))
        return {};
    std::span<const uint8_t> out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
}

void
BlobReader::fail(std::string message)
{
    if (error_.ok())
        error_ = Error(ErrorCode::ParseError, std::move(message));
}

Status
BlobReader::status() const
{
    if (error_.ok())
        return {};
    return error_;
}

Status
BlobReader::finish() const
{
    if (!error_.ok())
        return error_;
    if (!atEnd())
        return Error(ErrorCode::ParseError,
                     strprintf("blob has %zu trailing bytes",
                               remaining()));
    return {};
}

std::vector<uint8_t>
sealBlob(std::string_view kind, uint32_t version,
         std::span<const uint8_t> payload)
{
    BlobWriter header;
    header.u32(kSerialMagic);
    header.u32(version);
    header.u32(fnv1a32(kind));
    header.u64(payload.size());
    header.u64(fnv1a64(payload));
    std::vector<uint8_t> out = header.take();
    out.insert(out.end(), payload.begin(), payload.end());
    return out;
}

Expected<std::span<const uint8_t>>
openBlob(std::string_view kind, uint32_t version,
         std::span<const uint8_t> blob)
{
    BlobReader reader(blob);
    const uint32_t magic = reader.u32();
    const uint32_t found_version = reader.u32();
    const uint32_t found_kind = reader.u32();
    const uint64_t payload_size = reader.u64();
    const uint64_t content_hash = reader.u64();
    if (auto st = reader.status(); !st.ok())
        return st.error();
    if (magic != kSerialMagic)
        return Error(ErrorCode::InvalidArgument,
                     strprintf("blob has wrong magic 0x%08x", magic))
            .withContext("kind", std::string(kind));
    if (found_kind != fnv1a32(kind))
        return Error(ErrorCode::InvalidArgument,
                     strprintf("blob is not a '%.*s' artifact",
                               static_cast<int>(kind.size()),
                               kind.data()));
    if (found_version != version)
        return Error(ErrorCode::InvalidArgument,
                     strprintf("unsupported '%.*s' format version",
                               static_cast<int>(kind.size()),
                               kind.data()))
            .withContext("found", std::to_string(found_version))
            .withContext("expected", std::to_string(version));
    if (payload_size != reader.remaining())
        return Error(ErrorCode::ParseError,
                     strprintf("blob payload size mismatch: header "
                               "says %llu, %zu bytes present",
                               static_cast<unsigned long long>(
                                   payload_size),
                               reader.remaining()));
    std::span<const uint8_t> payload =
        reader.raw(static_cast<size_t>(payload_size));
    if (fnv1a64(payload) != content_hash)
        return Error(ErrorCode::ParseError,
                     "blob content hash mismatch (corrupt payload)")
            .withContext("kind", std::string(kind));
    return payload;
}

} // namespace crispr::common
