/**
 * @file
 * ASCII table formatting used by the benchmark harnesses to print
 * paper-style result tables, plus a CSV emitter for post-processing.
 */

#ifndef CRISPR_COMMON_TABLE_HPP_
#define CRISPR_COMMON_TABLE_HPP_

#include <cstdint>
#include <string>
#include <vector>

namespace crispr {

/**
 * A simple column-aligned ASCII table. Cells are strings; numeric
 * convenience adders format with sensible precision.
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> header);

    /** Begin a new row; subsequent add() calls fill it left to right. */
    Table &row();

    /** Append one cell to the current row. */
    Table &add(const std::string &cell);
    Table &add(const char *cell);
    Table &add(double v, int precision = 3);
    Table &add(uint64_t v);
    Table &add(int64_t v);
    Table &add(int v);

    /** Render with box-drawing separators. */
    std::string str() const;

    /** Render as CSV (header + rows). */
    std::string csv() const;

    /** Number of data rows so far. */
    size_t rows() const { return rows_.size(); }

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a byte count as a human-readable string (e.g. "16.0 MB"). */
std::string formatBytes(uint64_t bytes);

/** Format a duration in seconds with an auto-selected unit. */
std::string formatSeconds(double s);

} // namespace crispr

#endif // CRISPR_COMMON_TABLE_HPP_
