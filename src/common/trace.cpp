#include "common/trace.hpp"

#include <atomic>
#include <chrono>
#include <fstream>
#include <ostream>

#include "common/logging.hpp"

namespace crispr::common {

namespace {

/** Small, stable per-thread id (nicer trace rows than hashed ids). */
uint64_t
currentTid()
{
    static std::atomic<uint64_t> next{1};
    thread_local const uint64_t tid =
        next.fetch_add(1, std::memory_order_relaxed);
    return tid;
}

} // namespace

uint64_t
TraceSink::nowMicros()
{
    static const auto epoch = std::chrono::steady_clock::now();
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - epoch)
            .count());
}

void
TraceSink::record(std::string_view name, uint64_t start_micros,
                  uint64_t dur_micros)
{
    if constexpr (!kMetricsEnabled)
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    events_.push_back(TraceEvent{std::string(name), start_micros,
                                 dur_micros, currentTid()});
}

size_t
TraceSink::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return events_.size();
}

size_t
TraceSink::count(std::string_view name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    size_t n = 0;
    for (const TraceEvent &ev : events_)
        if (ev.name == name)
            ++n;
    return n;
}

std::vector<TraceEvent>
TraceSink::events() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return events_;
}

void
TraceSink::writeJson(std::ostream &out) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    out << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
    bool first = true;
    for (const TraceEvent &ev : events_) {
        out << (first ? "\n" : ",\n");
        // Span names are fixed identifiers; no escaping needed.
        out << "  {\"name\": \"" << ev.name
            << "\", \"cat\": \"crispr\", \"ph\": \"X\", \"ts\": "
            << ev.startMicros << ", \"dur\": " << ev.durMicros
            << ", \"pid\": 1, \"tid\": " << ev.tid << "}";
        first = false;
    }
    out << (first ? "" : "\n") << "]}\n";
}

void
TraceSink::writeJsonFile(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot open trace output file %s", path.c_str());
    writeJson(out);
}

} // namespace crispr::common
