/**
 * @file
 * Minimal command-line flag parser used by the example programs and the
 * benchmark harnesses. Supports `--flag value`, `--flag=value`, and
 * boolean `--flag` forms, plus automatic --help generation.
 */

#ifndef CRISPR_COMMON_CLI_HPP_
#define CRISPR_COMMON_CLI_HPP_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace crispr {

/** Declarative command-line parser. Declare flags, then parse(). */
class Cli
{
  public:
    explicit Cli(std::string description);

    /** Declare a string flag with default value. */
    void addString(const std::string &name, const std::string &def,
                   const std::string &help);
    /** Declare an integer flag with default value. */
    void addInt(const std::string &name, int64_t def,
                const std::string &help);
    /** Declare a boolean flag (default false). */
    void addBool(const std::string &name, const std::string &help);

    /**
     * Parse argv. Returns false if --help was requested (usage printed).
     * Unknown flags raise FatalError.
     */
    bool parse(int argc, const char *const *argv);

    const std::string &getString(const std::string &name) const;
    int64_t getInt(const std::string &name) const;
    bool getBool(const std::string &name) const;

    /** Positional (non-flag) arguments in order. */
    const std::vector<std::string> &positional() const { return positional_; }

    /** Render the usage/help text. */
    std::string usage() const;

  private:
    struct Flag
    {
        enum class Kind { String, Int, Bool } kind;
        std::string value;
        std::string help;
        std::string def;
    };

    const Flag &find(const std::string &name, Flag::Kind kind) const;

    std::string description_;
    std::string program_;
    std::map<std::string, Flag> flags_;
    std::vector<std::string> positional_;
};

} // namespace crispr

#endif // CRISPR_COMMON_CLI_HPP_
