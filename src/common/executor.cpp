#include "common/executor.hpp"

#include <algorithm>

namespace crispr::common {

namespace {

/** Which pool (if any) the current thread is a worker of. */
struct TlsWorker
{
    Executor *owner = nullptr;
    void *worker = nullptr;
};
thread_local TlsWorker tls_worker;

/** Rotating steal start so thieves don't all hammer worker 0. */
thread_local unsigned tls_rotor = 0;

std::chrono::steady_clock::time_point
now()
{
    return std::chrono::steady_clock::now();
}

} // namespace

Executor::Executor(ExecutorOptions options)
    : options_(options),
      tasks_(metrics_.counter("executor.tasks")),
      stealsCounter_(metrics_.counter("executor.steals")),
      droppedCounter_(metrics_.counter("executor.dropped")),
      queueDepth_(metrics_.gauge("executor.queue_depth")),
      waitSeconds_(metrics_.histogram("executor.wait_seconds"))
{
    const unsigned n = resolveThreads(options_.threads);
    workers_.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        workers_.push_back(std::make_unique<Worker>());
    for (unsigned i = 0; i < n; ++i)
        workers_[i]->thread =
            std::thread([this, i] { workerLoop(i); });
}

Executor::~Executor()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    cv_.notify_all();
    spaceCv_.notify_all();
    for (auto &worker : workers_)
        if (worker->thread.joinable())
            worker->thread.join();

    // Fail every task that never ran so no future is abandoned.
    std::vector<Task> orphans;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (Task &task : global_)
            orphans.push_back(std::move(task));
        global_.clear();
    }
    for (auto &worker : workers_) {
        std::lock_guard<std::mutex> lock(worker->mutex);
        for (Task &task : worker->deque)
            orphans.push_back(std::move(task));
        worker->deque.clear();
    }
    pending_.store(0, std::memory_order_relaxed);
    for (Task &task : orphans) {
        droppedCounter_.inc();
        if (task.drop)
            task.drop(Error(ErrorCode::Cancelled,
                            "executor shut down with the task still "
                            "queued"));
    }
}

Executor &
Executor::shared()
{
    static Executor instance{ExecutorOptions{}};
    return instance;
}

unsigned
Executor::resolveThreads(unsigned requested)
{
    if (requested != 0)
        return requested;
    return std::max(1u, std::thread::hardware_concurrency());
}

void
Executor::workerLoop(size_t index)
{
    Worker *self = workers_[index].get();
    tls_worker = TlsWorker{this, self};
    tls_rotor = static_cast<unsigned>(index) + 1;
    for (;;) {
        // Checked before every dequeue, not just when idle: shutdown
        // lets the in-flight task finish but must not drain the
        // backlog — still-queued tasks are failed with Cancelled by
        // the destructor instead.
        if (stop_.load(std::memory_order_acquire))
            break;
        if (tryExecuteOne(/*include_blocking=*/true))
            continue;
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait_for(lock, std::chrono::milliseconds(10), [this] {
            return stop_.load(std::memory_order_relaxed) ||
                   pending_.load(std::memory_order_relaxed) > 0;
        });
    }
    tls_worker = TlsWorker{};
}

void
Executor::enqueue(Task task, bool block_on_full)
{
    task.enqueued = now();
    if (tls_worker.owner == this) {
        // Nested submission from a worker: the task goes to the
        // worker's own (unbounded) deque, so a full injection queue
        // can never deadlock the pool against itself.
        auto *self = static_cast<Worker *>(tls_worker.worker);
        {
            std::lock_guard<std::mutex> lock(self->mutex);
            self->deque.push_back(std::move(task));
            pending_.fetch_add(1, std::memory_order_relaxed);
        }
        queueDepth_.set(static_cast<double>(
            pending_.load(std::memory_order_relaxed)));
        cv_.notify_one();
        return;
    }
    std::unique_lock<std::mutex> lock(mutex_);
    if (block_on_full) {
        spaceCv_.wait(lock, [this] {
            return stop_ || global_.size() < options_.queueBound;
        });
    } else if (!stop_ && global_.size() >= options_.queueBound) {
        // Best-effort submission (extra scan lanes): the caller makes
        // progress on its own, so a full queue just means fewer lanes.
        lock.unlock();
        droppedCounter_.inc();
        if (task.drop)
            task.drop(Error(ErrorCode::ResourceExhausted,
                            "executor queue full"));
        return;
    }
    if (stop_) {
        lock.unlock();
        droppedCounter_.inc();
        if (task.drop)
            task.drop(Error(ErrorCode::Cancelled,
                            "executor is shutting down"));
        return;
    }
    global_.push_back(std::move(task));
    pending_.fetch_add(1, std::memory_order_relaxed);
    queueDepth_.set(
        static_cast<double>(pending_.load(std::memory_order_relaxed)));
    cv_.notify_one();
}

namespace {

/** Pop the first eligible task scanning from `begin` in the given
 *  direction; skips mayBlock tasks unless include_blocking. */
template <typename Deque, typename Iter>
bool
takeEligible(Deque &deque, Iter begin, Iter end, bool include_blocking,
             typename Deque::value_type &out)
{
    for (Iter it = begin; it != end; ++it) {
        if (!include_blocking && it->mayBlock)
            continue;
        out = std::move(*it);
        // reverse_iterator erase: base() points one past the element.
        if constexpr (std::is_same_v<Iter,
                                     typename Deque::iterator>) {
            deque.erase(it);
        } else {
            deque.erase(std::next(it).base());
        }
        return true;
    }
    return false;
}

} // namespace

bool
Executor::popOwn(Task &out, bool include_blocking)
{
    if (tls_worker.owner != this)
        return false;
    auto *self = static_cast<Worker *>(tls_worker.worker);
    std::lock_guard<std::mutex> lock(self->mutex);
    // LIFO for the owner: newest eligible first (cache warm).
    if (!takeEligible(self->deque, self->deque.rbegin(),
                      self->deque.rend(), include_blocking, out))
        return false;
    pending_.fetch_sub(1, std::memory_order_relaxed);
    return true;
}

bool
Executor::popGlobal(Task &out, bool include_blocking)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!takeEligible(global_, global_.begin(), global_.end(),
                      include_blocking, out))
        return false;
    pending_.fetch_sub(1, std::memory_order_relaxed);
    spaceCv_.notify_one();
    return true;
}

bool
Executor::steal(Task &out, bool include_blocking)
{
    const size_t n = workers_.size();
    for (size_t i = 0; i < n; ++i) {
        Worker *victim = workers_[(tls_rotor + i) % n].get();
        if (victim == tls_worker.worker && tls_worker.owner == this)
            continue;
        std::lock_guard<std::mutex> lock(victim->mutex);
        // FIFO from the victim: oldest eligible first.
        if (!takeEligible(victim->deque, victim->deque.begin(),
                          victim->deque.end(), include_blocking, out))
            continue;
        pending_.fetch_sub(1, std::memory_order_relaxed);
        stealsCounter_.inc();
        ++tls_rotor;
        return true;
    }
    return false;
}

bool
Executor::tryExecuteOne(bool include_blocking)
{
    Task task;
    if (popOwn(task, include_blocking) ||
        popGlobal(task, include_blocking) ||
        steal(task, include_blocking)) {
        execute(std::move(task));
        return true;
    }
    return false;
}

void
Executor::noteDequeued(const Task &task)
{
    queueDepth_.set(
        static_cast<double>(pending_.load(std::memory_order_relaxed)));
    waitSeconds_.observe(
        std::chrono::duration<double>(now() - task.enqueued).count());
}

void
Executor::execute(Task task)
{
    noteDequeued(task);
    if (task.deadline.expired()) {
        droppedCounter_.inc();
        if (task.drop) {
            const bool cancelled = task.deadline.cancelled();
            task.drop(Error(cancelled ? ErrorCode::Cancelled
                                      : ErrorCode::DeadlineExceeded,
                            cancelled
                                ? "task cancelled before execution"
                                : "task deadline expired before "
                                  "execution"));
        }
        return;
    }
    tasks_.inc();
    TraceSpan span(task.trace, "pool");
    task.run(); // never throws: submit/forIndices wrap the callable
}

void
Executor::helpWhile(const std::function<bool()> &done,
                    bool include_blocking)
{
    while (!done()) {
        if (tryExecuteOne(include_blocking))
            continue;
        std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
}

size_t
Executor::forIndices(
    size_t n, unsigned lanes, TaskOptions opts,
    const std::function<bool(size_t index, unsigned lane)> &body)
{
    if (n == 0)
        return 0;
    lanes = std::max(1u, lanes);

    /** Shared loop state; helper lanes hold it via shared_ptr, so a
     *  lane that dequeues after the loop finished exits safely without
     *  touching the (long-gone) caller frame through `body`. */
    struct Loop
    {
        size_t n;
        std::function<bool(size_t, unsigned)> body;
        std::atomic<size_t> next{0};
        std::atomic<size_t> inflight{0};
        std::atomic<size_t> done{0};
        std::atomic<bool> stop{false};
        std::mutex mutex;
        std::condition_variable cv;
        std::exception_ptr error;
    };
    auto loop = std::make_shared<Loop>();
    loop->n = n;
    loop->body = body;

    auto run_lane = [](Loop &state, unsigned lane) {
        for (;;) {
            // inflight is raised *before* the index grab, so the
            // joining caller can never observe "indices exhausted,
            // nothing in flight" while a lane holds an index.
            state.inflight.fetch_add(1, std::memory_order_acq_rel);
            bool grabbed = false;
            if (!state.stop.load(std::memory_order_acquire)) {
                const size_t w = state.next.fetch_add(
                    1, std::memory_order_relaxed);
                if (w < state.n) {
                    grabbed = true;
                    bool keep = false;
                    try {
                        keep = state.body(w, lane);
                    } catch (...) {
                        std::lock_guard<std::mutex> lock(state.mutex);
                        if (!state.error)
                            state.error = std::current_exception();
                    }
                    state.done.fetch_add(1,
                                         std::memory_order_relaxed);
                    if (!keep)
                        state.stop.store(true,
                                         std::memory_order_release);
                }
            }
            const size_t left = state.inflight.fetch_sub(
                                    1, std::memory_order_acq_rel) -
                                1;
            if (!grabbed || state.stop.load(std::memory_order_acquire)
                || state.next.load(std::memory_order_relaxed) >=
                       state.n) {
                if (left == 0) {
                    std::lock_guard<std::mutex> lock(state.mutex);
                    state.cv.notify_all();
                }
                if (!grabbed)
                    return;
            }
        }
    };

    const unsigned helper_lanes = static_cast<unsigned>(std::min(
        {static_cast<size_t>(lanes) - 1, n - 1, workers_.size()}));
    for (unsigned lane = 1; lane <= helper_lanes; ++lane) {
        Task task;
        task.deadline = opts.deadline;
        task.trace = opts.trace;
        task.run = [loop, run_lane, lane] { run_lane(*loop, lane); };
        // No future behind helper lanes: a dropped lane just means
        // the remaining lanes (always including the caller) do the
        // work, so drop stays empty and enqueue never blocks.
        enqueue(std::move(task), /*block_on_full=*/false);
    }

    run_lane(*loop, 0);

    // Join the lanes that grabbed work, helping with unrelated pool
    // tasks meanwhile (a nested loop inside a saturated pool must not
    // park a worker). Lanes that never started will find the indices
    // exhausted and exit without calling body.
    auto finished = [&] {
        return loop->inflight.load(std::memory_order_acquire) == 0;
    };
    // Blocking tasks (shard gathers) are excluded: one could wait on
    // a sub-request queued behind this very thread's dispatch loop.
    while (!finished()) {
        if (tryExecuteOne(/*include_blocking=*/false))
            continue;
        std::unique_lock<std::mutex> lock(loop->mutex);
        loop->cv.wait_for(lock, std::chrono::milliseconds(1),
                          finished);
    }
    if (loop->error)
        std::rethrow_exception(loop->error);
    return loop->done.load(std::memory_order_relaxed);
}

std::map<std::string, double>
Executor::metricsSnapshot() const
{
    return metrics_.toMap();
}

void
Executor::mergeMetricsInto(std::map<std::string, double> &out) const
{
    metrics_.mergeInto(out);
}

} // namespace crispr::common
