/**
 * @file
 * Deterministic, seedable pseudo-random number generation used by every
 * workload generator in the repository. All experiments are reproducible
 * from a single 64-bit seed.
 */

#ifndef CRISPR_COMMON_RNG_HPP_
#define CRISPR_COMMON_RNG_HPP_

#include <cstdint>

namespace crispr {

/** SplitMix64 — used to expand a user seed into xoshiro state. */
inline uint64_t
splitmix64(uint64_t &state)
{
    uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/**
 * xoshiro256** PRNG. Small, fast, and statistically strong enough for
 * workload generation; not for cryptography.
 */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x5eed5eed5eedULL)
    {
        uint64_t sm = seed;
        for (auto &w : s_)
            w = splitmix64(sm);
    }

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        const uint64_t result = rotl(s_[1] * 5, 7) * 9;
        const uint64_t t = s_[1] << 17;
        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound) via Lemire's method. bound > 0. */
    uint64_t
    below(uint64_t bound)
    {
        // 128-bit multiply keeps the distribution unbiased enough for
        // workload generation without a rejection loop.
        return static_cast<uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability p. */
    bool chance(double p) { return uniform() < p; }

  private:
    static uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    uint64_t s_[4];
};

} // namespace crispr

#endif // CRISPR_COMMON_RNG_HPP_
