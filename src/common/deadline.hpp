/**
 * @file
 * Cooperative deadline / cancellation token for the search pipeline. A
 * Deadline is a cheap copyable handle over shared state: every copy
 * observes the same time budget and the same cancel() call, so a server
 * can hand one to SearchSession::trySearch and cancel it from another
 * thread. Checks are cooperative — ChunkedScanner polls expired()
 * between chunks and stops dispatching, reporting partial results with
 * a `search.timed_out` metric (see DESIGN.md "Failure model").
 *
 * A default-constructed Deadline is unlimited and not cancellable
 * (cancel() is a no-op): passing it costs nothing on the hot path.
 */

#ifndef CRISPR_COMMON_DEADLINE_HPP_
#define CRISPR_COMMON_DEADLINE_HPP_

#include <atomic>
#include <chrono>
#include <limits>
#include <memory>

namespace crispr::common {

/** Shared time-budget + cancellation handle. */
class Deadline
{
  public:
    /** Unlimited, not cancellable. */
    Deadline() = default;

    /** A deadline `seconds` from now (also cancellable). */
    static Deadline
    after(double seconds)
    {
        Deadline d;
        d.state_ = std::make_shared<State>();
        d.state_->hasDue = true;
        d.state_->due =
            Clock::now() +
            std::chrono::duration_cast<Clock::duration>(
                std::chrono::duration<double>(seconds));
        return d;
    }

    /** A cancellable token with no time budget. */
    static Deadline
    manual()
    {
        Deadline d;
        d.state_ = std::make_shared<State>();
        return d;
    }

    /** True when this handle carries a budget or a cancel token. */
    bool limited() const { return state_ != nullptr; }

    bool
    cancelled() const
    {
        return state_ &&
               state_->cancelled.load(std::memory_order_relaxed);
    }

    /** True when the time budget has passed (never for manual()). */
    bool
    timedOut() const
    {
        return state_ && state_->hasDue && Clock::now() >= state_->due;
    }

    /** Cancelled or past due: stop starting new work. */
    bool expired() const { return cancelled() || timedOut(); }

    /** Cancel every copy of this handle; no-op when not limited(). */
    void
    cancel() const
    {
        if (state_)
            state_->cancelled.store(true, std::memory_order_relaxed);
    }

    /** Seconds left (+inf when unlimited, 0 when expired). */
    double
    remainingSeconds() const
    {
        if (cancelled())
            return 0.0;
        if (!state_ || !state_->hasDue)
            return std::numeric_limits<double>::infinity();
        const double left =
            std::chrono::duration<double>(state_->due - Clock::now())
                .count();
        return left > 0.0 ? left : 0.0;
    }

  private:
    using Clock = std::chrono::steady_clock;

    struct State
    {
        bool hasDue = false;
        Clock::time_point due{};
        std::atomic<bool> cancelled{false};
    };

    std::shared_ptr<State> state_;
};

} // namespace crispr::common

#endif // CRISPR_COMMON_DEADLINE_HPP_
