/**
 * @file
 * Typed, thread-safe metrics: a MetricsRegistry hands out Counter,
 * Gauge, and Histogram handles that are plain relaxed-atomic writes on
 * the hot path (registration takes a lock once; increments never do).
 * A registry snapshot bridges to the legacy `std::map<std::string,
 * double>` surface via toMap()/mergeInto(), so EngineRun.metrics and
 * every existing consumer keep working unchanged.
 *
 * Naming convention: dotted lower-case, `<stage>.<what>` —
 * `compile.states`, `scan.bytes`, `session.cache_hits`; see DESIGN.md
 * "Observability" for the catalog. Scan-path keys with a contract
 * test (tests/test_metrics.cpp): `scan.simd_tier` (resolved kernel
 * tier: 0 scalar, 1 avx2, 2 avx512) and the filter-cascade counters
 * `scan.prefilter.anchors_probed` / `.anchors_hit` /
 * `.verifications`.
 *
 * Histograms are log-bucketed (power-of-two nanosecond-scale buckets,
 * so ~2x worst-case resolution over 12 decades) with interpolated
 * p50/p90/p99 extraction; a histogram named `x` exports `x.count`,
 * `x.sum`, `x.max`, `x.p50`, `x.p90`, `x.p99`.
 *
 * Compile-time gating: building with -DCRISPR_METRICS=OFF (the
 * `CRISPR_METRICS` CMake option) turns Histogram::observe() and the
 * trace layer (trace.hpp) into no-ops. Counters and gauges stay live
 * in every build: they carry result-bearing keys the API contract
 * depends on (session.compiles, events.dropped, ...), and a relaxed
 * add is already as cheap as the no-op call boundary.
 */

#ifndef CRISPR_COMMON_METRICS_HPP_
#define CRISPR_COMMON_METRICS_HPP_

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#ifndef CRISPR_METRICS_ENABLED
#define CRISPR_METRICS_ENABLED 1
#endif

namespace crispr::common {

/** True when the build carries histogram/trace instrumentation. */
inline constexpr bool kMetricsEnabled = CRISPR_METRICS_ENABLED != 0;

namespace metrics_detail {

struct CounterCell
{
    std::atomic<uint64_t> value{0};
};

struct GaugeCell
{
    std::atomic<double> value{0.0};
};

struct HistogramCell
{
    /** Bucket b holds scaled values whose bit width is b (~2x wide). */
    static constexpr size_t kBuckets = 64;
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sumScaled{0};
    std::atomic<uint64_t> maxScaled{0};
    std::atomic<uint64_t> buckets[kBuckets];
};

/** Fixed-point scale: seconds -> integer nanoseconds. */
inline constexpr double kHistogramScale = 1e9;

} // namespace metrics_detail

/**
 * A monotonically-increasing count. Handles are trivially copyable
 * value types pointing at a cell owned by the registry; the registry
 * must outlive every handle. A default-constructed handle is inert.
 */
class Counter
{
  public:
    Counter() = default;

    void
    inc(uint64_t n = 1)
    {
        if (cell_)
            cell_->value.fetch_add(n, std::memory_order_relaxed);
    }

    uint64_t
    value() const
    {
        return cell_ ? cell_->value.load(std::memory_order_relaxed)
                     : 0;
    }

  private:
    friend class MetricsRegistry;
    explicit Counter(metrics_detail::CounterCell *cell) : cell_(cell) {}
    metrics_detail::CounterCell *cell_ = nullptr;
};

/** A point-in-time value (throughput, utilisation, config echo). */
class Gauge
{
  public:
    Gauge() = default;

    void
    set(double v)
    {
        if (cell_)
            cell_->value.store(v, std::memory_order_relaxed);
    }

    double
    value() const
    {
        return cell_ ? cell_->value.load(std::memory_order_relaxed)
                     : 0.0;
    }

  private:
    friend class MetricsRegistry;
    explicit Gauge(metrics_detail::GaugeCell *cell) : cell_(cell) {}
    metrics_detail::GaugeCell *cell_ = nullptr;
};

/**
 * A log-bucketed distribution of non-negative values (typically
 * seconds). observe() is three relaxed atomic adds plus a CAS for the
 * max — safe from any thread — and compiles out entirely under
 * -DCRISPR_METRICS=OFF.
 */
class Histogram
{
  public:
    Histogram() = default;

    void
    observe(double v)
    {
        if constexpr (!kMetricsEnabled)
            return;
        if (cell_ && v >= 0.0)
            observeScaled(scale(v));
    }

    uint64_t count() const;
    double sum() const;
    double max() const;

    /**
     * The q-quantile (q in [0,1]) with linear interpolation inside the
     * landing bucket: exact to within one bucket (a factor of two).
     * 0 when the histogram is empty.
     */
    double quantile(double q) const;

  private:
    friend class MetricsRegistry;
    explicit Histogram(metrics_detail::HistogramCell *cell)
        : cell_(cell)
    {
    }

    static uint64_t scale(double v);
    void observeScaled(uint64_t scaled);

    metrics_detail::HistogramCell *cell_ = nullptr;
};

/**
 * The registry: owns every cell, hands out handles by dotted name.
 * Handle creation locks; handle use never does. One registry per
 * scope-of-aggregation — Engine::scan makes a per-run registry that
 * bridges into EngineRun.metrics, SearchSession holds a long-lived one
 * for its cross-search counters.
 */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /** The handle for `name`, creating the cell on first use. */
    Counter counter(std::string_view name);
    Gauge gauge(std::string_view name);
    Histogram histogram(std::string_view name);

    /**
     * Snapshot every metric into `out` (assigning over existing keys).
     * Histograms expand to `<name>.{count,sum,max,p50,p90,p99}` and
     * are omitted while empty, so OFF builds emit no histogram keys.
     */
    void mergeInto(std::map<std::string, double> &out) const;

    /** mergeInto() starting from an empty map. */
    std::map<std::string, double> toMap() const;

  private:
    mutable std::mutex mutex_;
    std::map<std::string,
             std::unique_ptr<metrics_detail::CounterCell>, std::less<>>
        counters_;
    std::map<std::string, std::unique_ptr<metrics_detail::GaugeCell>,
             std::less<>>
        gauges_;
    std::map<std::string,
             std::unique_ptr<metrics_detail::HistogramCell>,
             std::less<>>
        histograms_;
};

/** Write a metrics map as one pretty-printed JSON object. */
void writeMetricsJson(const std::map<std::string, double> &metrics,
                      std::ostream &out, int indent = 0);

} // namespace crispr::common

#endif // CRISPR_COMMON_METRICS_HPP_
