/**
 * @file
 * Typed error taxonomy for the request-serving paths. A server loop
 * must survive a malformed FASTA record or a failing engine, so the
 * search APIs report failures as values instead of calling fatal():
 *
 *  - Error: an error code plus a message and key=value context;
 *  - Expected<T>: a value or an Error (the return type of the
 *    `try*` APIs: trySearch, tryCompile, tryNext, ...);
 *  - Status: an Expected with no value (validation routines);
 *  - ErrorException: the bridge to the legacy throwing surface. It
 *    derives from FatalError so pre-existing `catch (FatalError&)`
 *    sites keep working while carrying the typed Error.
 *
 * fatal() remains for CLI startup and programmer errors only; the
 * request path (session/engine/chunked-scan/FASTA-stream) returns
 * these types. See DESIGN.md "Failure model".
 */

#ifndef CRISPR_COMMON_ERROR_HPP_
#define CRISPR_COMMON_ERROR_HPP_

#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "common/logging.hpp"

namespace crispr::common {

/** Failure category of a request-path error. */
enum class ErrorCode : uint8_t
{
    Ok = 0,
    InvalidArgument,   //!< bad config / guide set / chunk geometry
    ParseError,        //!< malformed input (FASTA, ...)
    UnsupportedEngine, //!< engine missing or unfit for the request
    CompileFailed,     //!< pattern compilation failed on an engine
    ScanFailed,        //!< a scan failed after exhausting retries
    DeadlineExceeded,  //!< the request's deadline passed
    Cancelled,         //!< the request's token was cancelled
    ResourceExhausted, //!< capacity/memory budget exceeded
    Overloaded,        //!< shed by admission control / open breaker
    FaultInjected,     //!< a faultpoints:: test fault fired
    Internal,          //!< unclassified failure (bug shield)
};

/** Stable lower-snake name of a code ("scan_failed", ...). */
const char *errorCodeName(ErrorCode code);

/** One request-path failure: code + message + key=value context. */
class Error
{
  public:
    Error() = default; //!< Ok
    Error(ErrorCode code, std::string message)
        : code_(code), message_(std::move(message))
    {
    }

    ErrorCode code() const { return code_; }
    const std::string &message() const { return message_; }
    bool ok() const { return code_ == ErrorCode::Ok; }

    /** Attach a key=value breadcrumb (engine name, chunk index, ...). */
    Error &&
    withContext(std::string key, std::string value) &&
    {
        context_.emplace_back(std::move(key), std::move(value));
        return std::move(*this);
    }
    Error &
    withContext(std::string key, std::string value) &
    {
        context_.emplace_back(std::move(key), std::move(value));
        return *this;
    }

    const std::vector<std::pair<std::string, std::string>> &
    context() const
    {
        return context_;
    }

    /** "[scan_failed] message (engine=hs-auto, chunk=3)". */
    std::string str() const;

  private:
    ErrorCode code_ = ErrorCode::Ok;
    std::string message_;
    std::vector<std::pair<std::string, std::string>> context_;
};

/**
 * The throwing bridge: raised by the legacy (non-`try`) wrappers when
 * the underlying typed API fails. Derives from FatalError so existing
 * catch sites and EXPECT_THROW(..., FatalError) tests keep passing.
 */
class ErrorException : public FatalError
{
  public:
    explicit ErrorException(Error error)
        : FatalError(error.str()), error_(std::move(error))
    {
    }

    const Error &error() const { return error_; }

  private:
    Error error_;
};

/** A value or an Error; the return type of the `try*` APIs. */
template <typename T>
class [[nodiscard]] Expected
{
  public:
    Expected(T value) : data_(std::move(value)) {}
    Expected(Error error) : data_(std::move(error))
    {
        CRISPR_ASSERT(!std::get<Error>(data_).ok());
    }

    bool ok() const { return std::holds_alternative<T>(data_); }
    explicit operator bool() const { return ok(); }

    T &
    value() &
    {
        CRISPR_ASSERT(ok());
        return std::get<T>(data_);
    }
    const T &
    value() const &
    {
        CRISPR_ASSERT(ok());
        return std::get<T>(data_);
    }
    T &&
    value() &&
    {
        CRISPR_ASSERT(ok());
        return std::get<T>(std::move(data_));
    }

    const Error &
    error() const
    {
        CRISPR_ASSERT(!ok());
        return std::get<Error>(data_);
    }

    /** The value, or throw the error as an ErrorException. */
    T &&
    valueOrThrow() &&
    {
        if (!ok())
            throw ErrorException(std::get<Error>(data_));
        return std::get<T>(std::move(data_));
    }

  private:
    std::variant<T, Error> data_;
};

/** Success or an Error; the valueless Expected. */
class [[nodiscard]] Status
{
  public:
    Status() = default; //!< success
    Status(Error error) : error_(std::move(error)) {}

    bool ok() const { return error_.ok(); }
    explicit operator bool() const { return ok(); }
    const Error &error() const { return error_; }

    /** Throw the error as an ErrorException when not ok. */
    void
    throwIfError() const
    {
        if (!ok())
            throw ErrorException(error_);
    }

  private:
    Error error_;
};

} // namespace crispr::common

#endif // CRISPR_COMMON_ERROR_HPP_
