/**
 * @file
 * Status / error reporting helpers in the gem5 spirit: fatal() for user
 * errors, panic() for internal invariant violations, warn()/inform() for
 * non-fatal diagnostics.
 */

#ifndef CRISPR_COMMON_LOGGING_HPP_
#define CRISPR_COMMON_LOGGING_HPP_

#include <cstdarg>
#include <stdexcept>
#include <string>

namespace crispr {

/** Error raised for conditions caused by bad user input or configuration. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

/** Error raised for internal invariant violations (library bugs). */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

/** printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Raise a FatalError for a condition that is the user's fault
 * (bad configuration, malformed input file, ...).
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Raise a PanicError for a condition that should never happen regardless
 * of user input (an internal bug).
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a warning to stderr; execution continues. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print an informational message to stderr; execution continues. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Globally silence warn()/inform() output (used by tests). */
void setQuiet(bool quiet);

} // namespace crispr

/**
 * Check an internal invariant; raises PanicError when violated.
 * Active in all build types (this library is correctness-first).
 */
#define CRISPR_ASSERT(cond)                                               \
    do {                                                                  \
        if (!(cond)) {                                                    \
            ::crispr::panic("assertion failed: %s at %s:%d", #cond,       \
                            __FILE__, __LINE__);                          \
        }                                                                 \
    } while (0)

#endif // CRISPR_COMMON_LOGGING_HPP_
