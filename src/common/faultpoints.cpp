#include "common/faultpoints.hpp"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <unordered_map>

#include "common/logging.hpp"

namespace crispr::common::faultpoints {

namespace {

struct Point
{
    Spec spec;
    bool armed = false;
    uint64_t visits = 0;
    uint64_t failures = 0;
    uint64_t rngState = 1;
};

struct Registry
{
    std::mutex mutex;
    std::unordered_map<std::string, Point> points;
};

Registry &
registry()
{
    static Registry r;
    return r;
}

/** >0 when any point is (or ever was) armed: the shouldFail fast path. */
std::atomic<int> everArmed{0};

/** xorshift64: deterministic per-point probability stream. */
double
nextUnit(uint64_t &state)
{
    uint64_t x = state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    state = x;
    return static_cast<double>(x >> 11) /
           static_cast<double>(1ull << 53);
}

void
armLocked(Registry &r, const std::string &name, const Spec &spec)
{
    Point &p = r.points[name];
    p.spec = spec;
    p.armed = true;
    p.visits = 0;
    p.failures = 0;
    p.rngState = spec.seed ? spec.seed : 1;
    everArmed.store(1, std::memory_order_relaxed);
}

/** Parse one "name=mode[:arg[:arg]]" entry; false when malformed. */
bool
parseEntry(const std::string &entry, std::string &name, Spec &spec)
{
    const auto eq = entry.find('=');
    if (eq == std::string::npos || eq == 0)
        return false;
    name = entry.substr(0, eq);
    std::string mode = entry.substr(eq + 1);
    std::string arg1, arg2;
    if (auto c1 = mode.find(':'); c1 != std::string::npos) {
        arg1 = mode.substr(c1 + 1);
        mode.resize(c1);
        if (auto c2 = arg1.find(':'); c2 != std::string::npos) {
            arg2 = arg1.substr(c2 + 1);
            arg1.resize(c2);
        }
    }
    try {
        if (mode == "once") {
            spec = Spec{Mode::FailOnce, 1, 0.0, 1};
        } else if (mode == "nth") {
            spec = Spec{Mode::FailNth, std::stoull(arg1), 0.0, 1};
        } else if (mode == "prob") {
            spec = Spec{Mode::FailProb, 1, std::stod(arg1),
                        arg2.empty() ? 1 : std::stoull(arg2)};
        } else {
            return false;
        }
    } catch (const std::exception &) {
        return false;
    }
    return true;
}

void
armFromEnvOnce()
{
    static std::once_flag once;
    std::call_once(once, [] {
        if (const char *env = std::getenv("CRISPR_FAULTPOINTS"))
            armFromSpec(env);
    });
}

} // namespace

void
arm(const std::string &name, const Spec &spec)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    armLocked(r, name, spec);
}

void
armFailOnce(const std::string &name)
{
    arm(name, Spec{Mode::FailOnce, 1, 0.0, 1});
}

void
armFailNth(const std::string &name, uint64_t nth)
{
    arm(name, Spec{Mode::FailNth, nth, 0.0, 1});
}

void
armProbability(const std::string &name, double probability,
               uint64_t seed)
{
    arm(name, Spec{Mode::FailProb, 1, probability, seed});
}

void
disarm(const std::string &name)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    auto it = r.points.find(name);
    if (it != r.points.end())
        it->second.armed = false;
}

void
resetAll()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    r.points.clear();
}

bool
shouldFail(const char *name)
{
    armFromEnvOnce();
    if (everArmed.load(std::memory_order_relaxed) == 0)
        return false;
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    auto it = r.points.find(name);
    if (it == r.points.end() || !it->second.armed)
        return false;
    Point &p = it->second;
    ++p.visits;
    bool fail = false;
    switch (p.spec.mode) {
    case Mode::FailOnce:
        fail = true;
        p.armed = false;
        break;
    case Mode::FailNth:
        fail = p.visits == p.spec.nth;
        break;
    case Mode::FailProb:
        fail = nextUnit(p.rngState) < p.spec.probability;
        break;
    }
    if (fail)
        ++p.failures;
    return fail;
}

uint64_t
visits(const std::string &name)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    auto it = r.points.find(name);
    return it == r.points.end() ? 0 : it->second.visits;
}

uint64_t
failures(const std::string &name)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    auto it = r.points.find(name);
    return it == r.points.end() ? 0 : it->second.failures;
}

size_t
armFromSpec(const std::string &spec)
{
    size_t armed = 0;
    size_t from = 0;
    while (from <= spec.size()) {
        size_t to = spec.find_first_of(";,", from);
        if (to == std::string::npos)
            to = spec.size();
        const std::string entry = spec.substr(from, to - from);
        from = to + 1;
        if (entry.empty())
            continue;
        std::string name;
        Spec parsed;
        if (!parseEntry(entry, name, parsed)) {
            warn("faultpoints: ignoring malformed entry '%s'",
                 entry.c_str());
            continue;
        }
        arm(name, parsed);
        ++armed;
    }
    return armed;
}

size_t
armFromEnv()
{
    const char *env = std::getenv("CRISPR_FAULTPOINTS");
    return env ? armFromSpec(env) : 0;
}

} // namespace crispr::common::faultpoints
