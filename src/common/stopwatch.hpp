/**
 * @file
 * Wall-clock stopwatch used by the measured (CPU-side) experiments.
 */

#ifndef CRISPR_COMMON_STOPWATCH_HPP_
#define CRISPR_COMMON_STOPWATCH_HPP_

#include <chrono>

namespace crispr {

/** Monotonic wall-clock stopwatch with nanosecond resolution. */
class Stopwatch
{
  public:
    Stopwatch() { reset(); }

    /** Restart timing from now. */
    void reset() { start_ = Clock::now(); }

    /** Elapsed seconds since construction or the last reset(). */
    double
    seconds() const
    {
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }

    /** Elapsed milliseconds. */
    double millis() const { return seconds() * 1e3; }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

} // namespace crispr

#endif // CRISPR_COMMON_STOPWATCH_HPP_
