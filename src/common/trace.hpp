/**
 * @file
 * RAII wall-time tracing: a TraceSpan measures one pipeline stage
 * (parse -> pattern.compile -> engine.compile -> chunk.scan ->
 * report) from construction to destruction and records it into a
 * TraceSink, which serializes to the chrome://tracing JSON event
 * format — open chrome://tracing (or https://ui.perfetto.dev) and
 * load the file to see the search timeline per thread.
 *
 * A null sink makes every span inert, so callers thread an optional
 * `TraceSink *` through the config (SearchConfig::trace) and pay
 * nothing when tracing is off. Building with -DCRISPR_METRICS=OFF
 * compiles recording out entirely (see metrics.hpp).
 *
 * Thread-safety: record() locks the sink; spans themselves are
 * stack-local. Per-chunk spans from scanner worker threads land on
 * their own tid rows in the trace viewer.
 */

#ifndef CRISPR_COMMON_TRACE_HPP_
#define CRISPR_COMMON_TRACE_HPP_

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/metrics.hpp" // kMetricsEnabled

namespace crispr::common {

/** One completed span ("X" event in the trace JSON). */
struct TraceEvent
{
    std::string name;
    uint64_t startMicros; //!< since process trace epoch
    uint64_t durMicros;
    uint64_t tid; //!< stable id of the recording thread
};

/** Collects spans; serializes chrome://tracing JSON. */
class TraceSink
{
  public:
    TraceSink() = default;
    TraceSink(const TraceSink &) = delete;
    TraceSink &operator=(const TraceSink &) = delete;

    /** Append a completed span (no-op under -DCRISPR_METRICS=OFF). */
    void record(std::string_view name, uint64_t start_micros,
                uint64_t dur_micros);

    size_t size() const;
    /** Spans recorded under `name` so far. */
    size_t count(std::string_view name) const;
    std::vector<TraceEvent> events() const;

    /**
     * Write the chrome://tracing JSON object ({"traceEvents": [...]})
     * — complete "X" (duration) events, timestamps in microseconds.
     */
    void writeJson(std::ostream &out) const;
    /** writeJson to a file; FatalError when the file cannot open. */
    void writeJsonFile(const std::string &path) const;

    /** Microseconds since the process trace epoch (first call). */
    static uint64_t nowMicros();

  private:
    mutable std::mutex mutex_;
    std::vector<TraceEvent> events_;
};

/**
 * RAII scope timer: records `name` into `sink` over the constructor-
 * to-destructor window. A null sink (tracing off) is free. finish()
 * ends the span early; the destructor is then a no-op.
 */
class TraceSpan
{
  public:
    TraceSpan() = default;

    TraceSpan(TraceSink *sink, std::string_view name)
    {
        if constexpr (kMetricsEnabled) {
            if (sink) {
                sink_ = sink;
                name_ = name;
                start_ = TraceSink::nowMicros();
            }
        }
    }

    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

    ~TraceSpan() { finish(); }

    void
    finish()
    {
        if (!sink_)
            return;
        sink_->record(name_, start_, TraceSink::nowMicros() - start_);
        sink_ = nullptr;
    }

  private:
    TraceSink *sink_ = nullptr;
    std::string_view name_;
    uint64_t start_ = 0;
};

} // namespace crispr::common

#endif // CRISPR_COMMON_TRACE_HPP_
