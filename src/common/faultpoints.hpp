/**
 * @file
 * Named fault points: deterministic fault injection for the recovery
 * paths. The scan/compile/parse pipeline calls shouldFail("name") at
 * its failure seams; tests (or an operator, via the environment) arm a
 * point to fire once, on the nth visit, or probabilistically, and the
 * pipeline's typed-error / fallback / retry machinery is driven for
 * real instead of being mocked.
 *
 * Compiled-in fault points (see DESIGN.md "Failure model"):
 *   session.compile  pattern compilation inside SearchSession
 *   engine.scan      a whole-genome engine scan inside SearchSession
 *   chunk.scan       one chunk scan inside ChunkedScanner (retryable)
 *   fasta.record     a FASTA record header in FastaStreamReader
 *   db.store         persisting a blob in PatternDatabase::store
 *
 * Environment arming (read once, lazily):
 *   CRISPR_FAULTPOINTS="chunk.scan=nth:3;fasta.record=prob:0.01:42"
 * with modes `once`, `nth:<n>` (1-based, fires on that visit only) and
 * `prob:<p>[:<seed>]` (deterministic xorshift stream per point).
 *
 * When nothing is armed, shouldFail() is one relaxed atomic load.
 */

#ifndef CRISPR_COMMON_FAULTPOINTS_HPP_
#define CRISPR_COMMON_FAULTPOINTS_HPP_

#include <cstdint>
#include <string>

namespace crispr::common::faultpoints {

/** When an armed point fires. */
enum class Mode : uint8_t
{
    FailOnce, //!< first visit after arming, then auto-disarm
    FailNth,  //!< the nth visit (1-based) only
    FailProb, //!< each visit independently with probability p
};

/** Arming spec for one fault point. */
struct Spec
{
    Mode mode = Mode::FailOnce;
    uint64_t nth = 1;         //!< FailNth: visit that fails
    double probability = 0.0; //!< FailProb: per-visit failure chance
    uint64_t seed = 1;        //!< FailProb: rng seed (deterministic)
};

/** Arm (or re-arm) a fault point; resets its counters. */
void arm(const std::string &name, const Spec &spec);

/** Convenience arming helpers. */
void armFailOnce(const std::string &name);
void armFailNth(const std::string &name, uint64_t nth);
void armProbability(const std::string &name, double probability,
                    uint64_t seed = 1);

/** Disarm one point (its counters remain readable). */
void disarm(const std::string &name);

/** Disarm everything and drop all counters (test teardown). */
void resetAll();

/**
 * The pipeline-side check: true when the armed spec says this visit
 * fails. Counts visits/failures; a no-op returning false (one relaxed
 * atomic load) when nothing was ever armed.
 */
bool shouldFail(const char *name);

/** Visits of a point since it was (re-)armed. */
uint64_t visits(const std::string &name);

/** Failures a point has injected since it was (re-)armed. */
uint64_t failures(const std::string &name);

/**
 * Arm points from a spec string ("a=once;b=nth:3;c=prob:0.5:7");
 * malformed entries are warn()ed and skipped. @return points armed.
 */
size_t armFromSpec(const std::string &spec);

/** Arm from $CRISPR_FAULTPOINTS (also done lazily by shouldFail). */
size_t armFromEnv();

} // namespace crispr::common::faultpoints

#endif // CRISPR_COMMON_FAULTPOINTS_HPP_
