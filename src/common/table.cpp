#include "common/table.hpp"

#include <algorithm>
#include <sstream>

#include "common/logging.hpp"

namespace crispr {

Table::Table(std::vector<std::string> header) : header_(std::move(header))
{
    CRISPR_ASSERT(!header_.empty());
}

Table &
Table::row()
{
    rows_.emplace_back();
    return *this;
}

Table &
Table::add(const std::string &cell)
{
    if (rows_.empty())
        rows_.emplace_back();
    rows_.back().push_back(cell);
    return *this;
}

Table &
Table::add(const char *cell)
{
    return add(std::string(cell));
}

Table &
Table::add(double v, int precision)
{
    return add(strprintf("%.*f", precision, v));
}

Table &
Table::add(uint64_t v)
{
    return add(strprintf("%llu", static_cast<unsigned long long>(v)));
}

Table &
Table::add(int64_t v)
{
    return add(strprintf("%lld", static_cast<long long>(v)));
}

Table &
Table::add(int v)
{
    return add(strprintf("%d", v));
}

std::string
Table::str() const
{
    std::vector<size_t> width(header_.size());
    for (size_t c = 0; c < header_.size(); ++c)
        width[c] = header_[c].size();
    for (const auto &r : rows_)
        for (size_t c = 0; c < r.size() && c < width.size(); ++c)
            width[c] = std::max(width[c], r[c].size());

    auto rule = [&] {
        std::string s = "+";
        for (size_t w : width)
            s += std::string(w + 2, '-') + "+";
        return s + "\n";
    };
    auto line = [&](const std::vector<std::string> &cells) {
        std::string s = "|";
        for (size_t c = 0; c < width.size(); ++c) {
            std::string cell = c < cells.size() ? cells[c] : "";
            s += " " + cell + std::string(width[c] - cell.size(), ' ') + " |";
        }
        return s + "\n";
    };

    std::string out = rule() + line(header_) + rule();
    for (const auto &r : rows_)
        out += line(r);
    out += rule();
    return out;
}

std::string
Table::csv() const
{
    auto join = [](const std::vector<std::string> &cells) {
        std::string s;
        for (size_t c = 0; c < cells.size(); ++c) {
            if (c)
                s += ",";
            s += cells[c];
        }
        return s + "\n";
    };
    std::string out = join(header_);
    for (const auto &r : rows_)
        out += join(r);
    return out;
}

std::string
formatBytes(uint64_t bytes)
{
    const char *units[] = {"B", "KB", "MB", "GB", "TB"};
    double v = static_cast<double>(bytes);
    int u = 0;
    while (v >= 1024.0 && u < 4) {
        v /= 1024.0;
        ++u;
    }
    return strprintf("%.1f %s", v, units[u]);
}

std::string
formatSeconds(double s)
{
    if (s < 0)
        return strprintf("%.3g s", s);
    if (s < 1e-6)
        return strprintf("%.1f ns", s * 1e9);
    if (s < 1e-3)
        return strprintf("%.2f us", s * 1e6);
    if (s < 1.0)
        return strprintf("%.2f ms", s * 1e3);
    return strprintf("%.3f s", s);
}

} // namespace crispr
