#include "common/cli.hpp"

#include <cstdio>
#include <cstdlib>

#include "common/logging.hpp"

namespace crispr {

Cli::Cli(std::string description) : description_(std::move(description)) {}

void
Cli::addString(const std::string &name, const std::string &def,
               const std::string &help)
{
    flags_[name] = Flag{Flag::Kind::String, def, help, def};
}

void
Cli::addInt(const std::string &name, int64_t def, const std::string &help)
{
    std::string s = std::to_string(def);
    flags_[name] = Flag{Flag::Kind::Int, s, help, s};
}

void
Cli::addBool(const std::string &name, const std::string &help)
{
    flags_[name] = Flag{Flag::Kind::Bool, "0", help, "0"};
}

bool
Cli::parse(int argc, const char *const *argv)
{
    program_ = argc > 0 ? argv[0] : "prog";
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            std::fputs(usage().c_str(), stdout);
            return false;
        }
        if (arg.rfind("--", 0) != 0) {
            positional_.push_back(arg);
            continue;
        }
        std::string name = arg.substr(2);
        std::string value;
        bool has_value = false;
        auto eq = name.find('=');
        if (eq != std::string::npos) {
            value = name.substr(eq + 1);
            name = name.substr(0, eq);
            has_value = true;
        }
        auto it = flags_.find(name);
        if (it == flags_.end())
            fatal("unknown flag --%s (try --help)", name.c_str());
        Flag &f = it->second;
        if (f.kind == Flag::Kind::Bool) {
            f.value = has_value ? value : "1";
            if (f.value == "true")
                f.value = "1";
            continue;
        }
        if (!has_value) {
            if (i + 1 >= argc)
                fatal("flag --%s expects a value", name.c_str());
            value = argv[++i];
        }
        if (f.kind == Flag::Kind::Int) {
            char *end = nullptr;
            std::strtoll(value.c_str(), &end, 0);
            if (end == value.c_str() || *end != '\0')
                fatal("flag --%s expects an integer, got '%s'",
                      name.c_str(), value.c_str());
        }
        f.value = value;
    }
    return true;
}

const Cli::Flag &
Cli::find(const std::string &name, Flag::Kind kind) const
{
    auto it = flags_.find(name);
    if (it == flags_.end())
        panic("flag --%s was never declared", name.c_str());
    if (it->second.kind != kind)
        panic("flag --%s accessed with the wrong type", name.c_str());
    return it->second;
}

const std::string &
Cli::getString(const std::string &name) const
{
    return find(name, Flag::Kind::String).value;
}

int64_t
Cli::getInt(const std::string &name) const
{
    return std::strtoll(find(name, Flag::Kind::Int).value.c_str(),
                        nullptr, 0);
}

bool
Cli::getBool(const std::string &name) const
{
    return find(name, Flag::Kind::Bool).value == "1";
}

std::string
Cli::usage() const
{
    std::string out = description_ + "\n\nUsage: " + program_ +
                      " [flags]\n\nFlags:\n";
    for (const auto &[name, f] : flags_) {
        out += strprintf("  --%-18s %s (default: %s)\n", name.c_str(),
                         f.help.c_str(),
                         f.def.empty() ? "\"\"" : f.def.c_str());
    }
    return out;
}

} // namespace crispr
