#include "fpga/resource.hpp"

#include <algorithm>
#include <cmath>

namespace crispr::fpga {

ResourceEstimate
estimateResources(const automata::NfaStats &stats,
                  const FpgaDeviceSpec &spec)
{
    ResourceEstimate r;
    // Per STE: the 5-way symbol decode is shared; matching the decoded
    // one-hot against the state's class plus the enable AND folds into
    // one LUT6. The enable OR over fan-in costs a LUT6 tree.
    const uint64_t match_luts = stats.states;
    const uint64_t enable_luts = (stats.edges + 5) / 6;
    const uint64_t infra_luts = 256; // stream interface + control
    r.luts = match_luts + enable_luts + infra_luts;
    r.flipflops = stats.states + 512;
    // Report capture: one BRAM FIFO per 64 reporting states plus the
    // offset counter block.
    r.brams = 2 + (stats.reportStates + 63) / 64;

    r.lutUtilization = static_cast<double>(r.luts) /
                       static_cast<double>(spec.luts);
    const double ff_util = static_cast<double>(r.flipflops) /
                           static_cast<double>(spec.flipflops);
    const double util = std::max(r.lutUtilization, ff_util);
    r.fits = r.luts <= spec.luts && r.flipflops <= spec.flipflops &&
             r.brams <= spec.brams;
    r.passes = r.fits ? 1
                      : static_cast<uint32_t>(std::ceil(util));

    // Congestion model: achievable clock degrades with utilisation of
    // the (per-pass) device.
    const double per_pass_util = std::min(1.0, util / r.passes);
    double clock =
        spec.baseClockHz / (1.0 + spec.congestionAlpha * per_pass_util);
    r.clockHz = std::max(clock, spec.minClockHz);
    return r;
}

} // namespace crispr::fpga
