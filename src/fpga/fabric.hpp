/**
 * @file
 * FPGA spatial-automata fabric simulator: functionally cycle-accurate
 * (every state register updates once per clock; one input symbol per
 * clock), with the kernel time derived from the resource model's
 * achievable frequency. Functional behaviour is exactly the homogeneous
 * NFA semantics, reusing the reference interpreter as the datapath.
 */

#ifndef CRISPR_FPGA_FABRIC_HPP_
#define CRISPR_FPGA_FABRIC_HPP_

#include <cstdint>
#include <memory>
#include <vector>

#include "automata/interp.hpp"
#include "fpga/resource.hpp"
#include "genome/sequence.hpp"

namespace crispr::fpga {

/** Statistics of one fabric run. */
struct FpgaRunStats
{
    uint64_t cycles = 0;       //!< symbol clocks (1 per input symbol)
    uint64_t reportEvents = 0;
    uint64_t stateToggles = 0; //!< FF activations (energy proxy)
};

/** End-to-end time decomposition. */
struct FpgaTimeBreakdown
{
    double configureSeconds = 0.0;
    double transferSeconds = 0.0; //!< input streaming over PCIe
    double kernelSeconds = 0.0;
    double
    totalSeconds() const
    {
        return configureSeconds + transferSeconds + kernelSeconds;
    }
};

/** A compiled spatial design: automaton + resources + clock. */
class FpgaFabric
{
  public:
    /** "Synthesise" an automaton onto the device (resource model). */
    FpgaFabric(automata::Nfa nfa, const FpgaDeviceSpec &spec = {});

    const ResourceEstimate &resources() const { return resources_; }
    const FpgaDeviceSpec &device() const { return spec_; }

    /** Run the fabric over an input stream. */
    FpgaRunStats run(std::span<const uint8_t> input,
                     const automata::ReportSink &sink);

    /** Run and collect normalised events. */
    std::vector<automata::ReportEvent>
    scanAll(const genome::Sequence &seq);

    /** Kernel seconds of a run at the modelled clock. */
    double
    kernelSeconds(const FpgaRunStats &stats) const
    {
        return static_cast<double>(stats.cycles) / resources_.clockHz *
               resources_.passes;
    }

    /** Full time decomposition for `symbols` of input. */
    FpgaTimeBreakdown timeBreakdown(uint64_t symbols) const;

  private:
    automata::Nfa nfa_;
    FpgaDeviceSpec spec_;
    ResourceEstimate resources_;
};

} // namespace crispr::fpga

#endif // CRISPR_FPGA_FABRIC_HPP_
