#include "fpga/report.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace crispr::fpga {

const char *
reportFormatName(ReportFormat format)
{
    switch (format) {
      case ReportFormat::RecordPerEvent:
        return "record-per-event";
      case ReportFormat::CycleBitmap:
        return "cycle-bitmap";
      case ReportFormat::CompressedIds:
        return "compressed-ids";
      case ReportFormat::OffsetDelta:
        return "offset-delta";
    }
    return "unknown";
}

ReportTraffic
trafficOf(const std::vector<automata::ReportEvent> &events,
          uint64_t report_states, uint64_t total_cycles)
{
    ReportTraffic t;
    t.events = events.size();
    t.reportStates = report_states;
    t.totalCycles = total_cycles;
    uint64_t last = UINT64_MAX;
    for (const auto &e : events) {
        if (e.end != last) {
            ++t.reportingCycles;
            last = e.end;
        }
    }
    return t;
}

namespace {

uint64_t
varintBytes(uint64_t v)
{
    uint64_t bytes = 1;
    while (v >= 0x80) {
        v >>= 7;
        ++bytes;
    }
    return bytes;
}

} // namespace

uint64_t
encodedBytes(ReportFormat format, const ReportTraffic &traffic,
             const std::vector<automata::ReportEvent> &events)
{
    switch (format) {
      case ReportFormat::RecordPerEvent:
        // 32-bit id + 32-bit offset per event.
        return traffic.events * 8;
      case ReportFormat::CycleBitmap: {
        // Per reporting cycle: 32-bit offset + one bit per reporting
        // element, byte-padded.
        const uint64_t bitmap = (traffic.reportStates + 7) / 8;
        return traffic.reportingCycles * (4 + bitmap);
      }
      case ReportFormat::CompressedIds:
        // Per reporting cycle: 32-bit offset + 8-bit count; 16-bit id
        // per event in the cycle.
        return traffic.reportingCycles * 5 + traffic.events * 2;
      case ReportFormat::OffsetDelta: {
        // Varint offset deltas between reporting cycles + 8-bit count
        // + 16-bit ids.
        uint64_t bytes = 0;
        uint64_t last = 0;
        uint64_t last_cycle = UINT64_MAX;
        for (const auto &e : events) {
            if (e.end != last_cycle) {
                bytes += varintBytes(e.end - last) + 1;
                last = e.end;
                last_cycle = e.end;
            }
            bytes += 2;
        }
        return bytes;
      }
    }
    panic("unknown report format");
}

double
drainSeconds(uint64_t bytes, double link_gbs)
{
    CRISPR_ASSERT(link_gbs > 0);
    return static_cast<double>(bytes) / (link_gbs * 1e9);
}

ReportFormat
recommendFormat(const ReportTraffic &traffic,
                const std::vector<automata::ReportEvent> &events)
{
    ReportFormat best = ReportFormat::RecordPerEvent;
    uint64_t best_bytes = encodedBytes(best, traffic, events);
    for (ReportFormat f :
         {ReportFormat::CycleBitmap, ReportFormat::CompressedIds,
          ReportFormat::OffsetDelta}) {
        const uint64_t bytes = encodedBytes(f, traffic, events);
        if (bytes < best_bytes) {
            best_bytes = bytes;
            best = f;
        }
    }
    return best;
}

} // namespace crispr::fpga
