/**
 * @file
 * Report-stream encodings for spatial automata platforms. The paper's
 * closing section proposes reporting-architecture improvements; this
 * module models the output traffic of the candidate encodings so the
 * E10 experiment can compare them:
 *
 *  - RecordPerEvent: one (report-id, offset) record per event — what
 *    the AP driver effectively delivers;
 *  - CycleBitmap: one bitmap over all reporting elements per reporting
 *    cycle plus the cycle offset — what a naive FPGA capture does;
 *  - CompressedIds: per reporting cycle, the offset plus a short id
 *    list — the paper-style compression (few reporters fire at once);
 *  - OffsetDelta: CompressedIds with varint-coded offset deltas —
 *    exploits report clustering.
 */

#ifndef CRISPR_FPGA_REPORT_HPP_
#define CRISPR_FPGA_REPORT_HPP_

#include <cstdint>
#include <string>
#include <vector>

#include "automata/interp.hpp"

namespace crispr::fpga {

/** Candidate report-stream encodings. */
enum class ReportFormat
{
    RecordPerEvent,
    CycleBitmap,
    CompressedIds,
    OffsetDelta,
};

const char *reportFormatName(ReportFormat format);

/** Aggregate description of a run's report traffic. */
struct ReportTraffic
{
    uint64_t events = 0;          //!< total report events
    uint64_t reportingCycles = 0; //!< cycles with >= 1 event
    uint64_t reportStates = 0;    //!< reporting elements in the design
    uint64_t totalCycles = 0;     //!< stream length
};

/** Gather traffic statistics from a normalised event list. */
ReportTraffic trafficOf(const std::vector<automata::ReportEvent> &events,
                        uint64_t report_states, uint64_t total_cycles);

/** Encoded output bytes of a run under a format (exact for
 *  RecordPerEvent/CycleBitmap; OffsetDelta uses the actual deltas). */
uint64_t encodedBytes(ReportFormat format, const ReportTraffic &traffic,
                      const std::vector<automata::ReportEvent> &events);

/** Seconds to drain `bytes` over the host link. */
double drainSeconds(uint64_t bytes, double link_gbs);

/** The cheapest format for the given traffic. */
ReportFormat recommendFormat(const ReportTraffic &traffic,
                             const std::vector<automata::ReportEvent>
                                 &events);

} // namespace crispr::fpga

#endif // CRISPR_FPGA_REPORT_HPP_
