#include "fpga/fabric.hpp"

#include "common/logging.hpp"

namespace crispr::fpga {

using automata::ReportEvent;
using automata::ReportSink;

FpgaFabric::FpgaFabric(automata::Nfa nfa, const FpgaDeviceSpec &spec)
    : nfa_(std::move(nfa)), spec_(spec)
{
    nfa_.validate();
    resources_ = estimateResources(automata::computeStats(nfa_), spec_);
}

FpgaRunStats
FpgaFabric::run(std::span<const uint8_t> input, const ReportSink &sink)
{
    FpgaRunStats stats;
    automata::NfaInterpreter interp(nfa_);
    interp.scan(input, [&](uint32_t id, uint64_t end) {
        ++stats.reportEvents;
        if (sink)
            sink(id, end);
    });
    stats.cycles = input.size();
    stats.stateToggles = interp.activationCount();
    return stats;
}

std::vector<ReportEvent>
FpgaFabric::scanAll(const genome::Sequence &seq)
{
    std::vector<ReportEvent> events;
    run(seq.codes(), [&](uint32_t id, uint64_t end) {
        events.push_back(ReportEvent{id, end});
    });
    automata::normalizeEvents(events);
    return events;
}

FpgaTimeBreakdown
FpgaFabric::timeBreakdown(uint64_t symbols) const
{
    FpgaTimeBreakdown t;
    t.configureSeconds = spec_.configureSeconds * resources_.passes;
    const double stream =
        static_cast<double>(symbols) / resources_.clockHz;
    const double pcie =
        static_cast<double>(symbols) / (spec_.pcieGBs * 1e9);
    // Streaming overlaps the kernel; the slower of the two paces it.
    t.kernelSeconds = std::max(stream, pcie) * resources_.passes;
    t.transferSeconds = 0.0; // folded into kernel pacing above
    return t;
}

} // namespace crispr::fpga
