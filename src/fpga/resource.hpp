/**
 * @file
 * FPGA resource and frequency model for spatial automata (the REAPR
 * flow the paper uses): one flip-flop per STE, LUT-mapped symbol match
 * and enable logic, BRAM-backed report capture. The achievable clock
 * degrades with device utilisation (routing congestion), which is what
 * makes a full board slower per symbol than the AP's fixed 133 MHz.
 */

#ifndef CRISPR_FPGA_RESOURCE_HPP_
#define CRISPR_FPGA_RESOURCE_HPP_

#include <cstdint>

#include "automata/nfa.hpp"

namespace crispr::fpga {

/** Target device constants (defaults: Xilinx Kintex UltraScale KU060). */
struct FpgaDeviceSpec
{
    const char *name = "xcku060";
    uint64_t luts = 331680;
    uint64_t flipflops = 663360;
    uint64_t brams = 1080;       //!< 36 Kb blocks
    /**
     * Small-design achievable clock and its congestion slope
     * (f = base / (1 + alpha * util)). REAPR reports 200-680 MHz for
     * small automata and ~100 MHz once routing congests; the slope is
     * calibrated so a device-filling off-target design closes timing
     * near 90 MHz — the clock the paper's own "AP kernel 1.5x faster
     * than FPGA" result implies (AP is fixed at 133 MHz).
     */
    double baseClockHz = 220e6;
    double congestionAlpha = 5.5;
    double minClockHz = 60e6;
    double pcieGBs = 3.0;        //!< streaming input bandwidth
    double configureSeconds = 0.35; //!< partial-reconfig bitstream load
    double watts = 25.0;         //!< board power under load (KU060 card)
};

/** Resource estimate of a compiled automaton. */
struct ResourceEstimate
{
    uint64_t luts = 0;
    uint64_t flipflops = 0;
    uint64_t brams = 0;
    double lutUtilization = 0.0;
    bool fits = false;
    uint32_t passes = 1;     //!< reconfig passes when over capacity
    double clockHz = 0.0;    //!< modelled achievable frequency
};

/** Estimate resources + clock for an automaton on a device. */
ResourceEstimate estimateResources(const automata::NfaStats &stats,
                                   const FpgaDeviceSpec &spec = {});

} // namespace crispr::fpga

#endif // CRISPR_FPGA_RESOURCE_HPP_
