/**
 * @file
 * Guide specificity scoring: the downstream consumer of off-target
 * search results. Implements the position-weighted (MIT/Hsu-style)
 * per-site penalty and the aggregate specificity score
 *
 *   S(guide) = 100 / (1 + sum over off-target sites of s_site),
 *
 * where each site's s_site decays with its mismatch count and the
 * PAM-distal-ness of the mismatching positions. The exact published
 * weight table is reproduced for 20-nt guides; other lengths fall back
 * to a linear position ramp.
 */

#ifndef CRISPR_CORE_SCORE_HPP_
#define CRISPR_CORE_SCORE_HPP_

#include <vector>

#include "core/score_table.hpp"
#include "core/search.hpp"

namespace crispr::core {

/**
 * Single-site penalty in [0, 1]: 1 for a perfect off-target duplicate,
 * decaying with mismatch count and position. `mismatch_positions` are
 * 0-based protospacer positions (0 = PAM-distal end for the standard
 * 5'->3' guide orientation). Delegates to sitePenaltyFromWeights()
 * over scoreWeightTable() — the same primitives the in-scan path
 * uses, so a hit's precomputed `penalty` is bit-identical to calling
 * this on its hitMismatchPositions() (the scoring conformance tier
 * asserts exactly that).
 */
double sitePenalty(const std::vector<size_t> &mismatch_positions,
                   size_t guide_length);

/**
 * Mismatching protospacer positions of a hit (guide coordinates,
 * 5'->3'), recomputed against the genome.
 */
std::vector<size_t>
hitMismatchPositions(const genome::Sequence &genome,
                     const PatternSet &set, const OffTargetHit &hit);

/** Per-guide specificity summary. */
struct GuideScore
{
    uint32_t guide = 0;
    /**
     * Perfect (0-mismatch) sites — ALL of them, including duplicates.
     * This is deliberate and asymmetric with the penalty treatment:
     * every perfect site counts here (so `onTargets` answers "how many
     * places does this guide cut perfectly?"), while only perfect
     * sites *beyond the first* contribute to `penaltySum` (at full
     * penalty 1.0 — the first is the intended target). Tested in
     * tests/test_score.cpp.
     */
    size_t onTargets = 0;
    size_t offTargets = 0;  //!< sites with >= 1 mismatch
    double penaltySum = 0.0;
    /**
     * 100 / (1 + penaltySum). Exactly 100.0 (not merely close) for a
     * guide with no hits or only its single intended perfect site:
     * penaltySum stays exactly 0.0 in both cases, and the quotient is
     * exact. Never NaN — penalties are finite and non-negative.
     */
    double specificity = 100.0;
};

/**
 * Aggregate specificity per guide from a search result. Perfect sites
 * beyond the first are treated as off-target duplicates (full
 * penalty), matching the usual convention (see GuideScore::onTargets
 * for the counting convention). Re-walks the genome per hit via
 * hitMismatchPositions(); prefer scoreGuidesFromHits() when the
 * result carries in-scan penalties (the default).
 */
std::vector<GuideScore>
scoreGuides(const genome::Sequence &genome,
            const std::vector<Guide> &guides, const SearchResult &result);

/**
 * scoreGuides() without the genome: aggregates the penalties the scan
 * already computed (OffTargetHit::penalty), bit-identical to
 * scoreGuides() on the same result (tested) since both paths sum the
 * same doubles in the same hit order. Requires a result searched with
 * in-scan scoring (ExecutionOptions::inScanScores, the default).
 */
std::vector<GuideScore>
scoreGuidesFromHits(size_t guide_count, const SearchResult &result);

} // namespace crispr::core

#endif // CRISPR_CORE_SCORE_HPP_
