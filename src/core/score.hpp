/**
 * @file
 * Guide specificity scoring: the downstream consumer of off-target
 * search results. Implements the position-weighted (MIT/Hsu-style)
 * per-site penalty and the aggregate specificity score
 *
 *   S(guide) = 100 / (1 + sum over off-target sites of s_site),
 *
 * where each site's s_site decays with its mismatch count and the
 * PAM-distal-ness of the mismatching positions. The exact published
 * weight table is reproduced for 20-nt guides; other lengths fall back
 * to a linear position ramp.
 */

#ifndef CRISPR_CORE_SCORE_HPP_
#define CRISPR_CORE_SCORE_HPP_

#include <vector>

#include "core/search.hpp"

namespace crispr::core {

/**
 * Single-site penalty in [0, 1]: 1 for a perfect off-target duplicate,
 * decaying with mismatch count and position. `mismatch_positions` are
 * 0-based protospacer positions (0 = PAM-distal end for the standard
 * 5'->3' guide orientation).
 */
double sitePenalty(const std::vector<size_t> &mismatch_positions,
                   size_t guide_length);

/**
 * Mismatching protospacer positions of a hit (guide coordinates,
 * 5'->3'), recomputed against the genome.
 */
std::vector<size_t>
hitMismatchPositions(const genome::Sequence &genome,
                     const PatternSet &set, const OffTargetHit &hit);

/** Per-guide specificity summary. */
struct GuideScore
{
    uint32_t guide = 0;
    size_t onTargets = 0;   //!< perfect (0-mismatch) sites
    size_t offTargets = 0;  //!< sites with >= 1 mismatch
    double penaltySum = 0.0;
    double specificity = 100.0; //!< 100 / (1 + penaltySum)
};

/**
 * Aggregate specificity per guide from a search result. Perfect sites
 * beyond the first are treated as off-target duplicates (full
 * penalty), matching the usual convention.
 */
std::vector<GuideScore>
scoreGuides(const genome::Sequence &genome,
            const std::vector<Guide> &guides, const SearchResult &result);

} // namespace crispr::core

#endif // CRISPR_CORE_SCORE_HPP_
