/**
 * @file
 * ShardedSearchService: horizontal scale-out of the serving layer.
 * The coordinator partitions each request's genome into N contiguous
 * byte ranges — one per in-process shard worker — scatters the request
 * as N sub-requests whose `scanRange` restricts the emit interval to
 * that shard's slice, and gathers the shard results into one merged
 * SearchResult that is bit-identical to a single-shard (or direct
 * session) search at every shard count.
 *
 * @code
 *   core::ShardOptions opts;
 *   opts.shards = 4;
 *   core::ShardedSearchService service(opts);
 *   core::RequestOptions req;
 *   req.genomeRef = core::GenomeRef::packed("hg38.2bit");
 *   auto fut = service.submit({guide}, req);   // scanned by 4 workers
 *   core::SearchResult merged = fut.get();
 * @endcode
 *
 * Why the merge is exact (DESIGN.md §14):
 *  - Shard boundaries reuse the ChunkedScanner's seam machinery: a
 *    non-whole scanRange re-reads up to the compiled pattern overlap
 *    *before* its begin offset but emits only events ending inside
 *    [begin, end). The shard ranges are disjoint and cover [0, n), so
 *    every site is owned by exactly one shard — the same rule that
 *    already makes chunk geometry invisible within one scan.
 *  - Hits are re-sorted with hitsFromEvents' comparator and
 *    deduplicated; events go through automata::normalizeEvents. Both
 *    are idempotent, so a union of disjoint emit intervals collapses
 *    to exactly the single-pass result. Device-model engines (no
 *    chunked scan) consume the whole stream per shard; their repeated
 *    full-genome results deduplicate away in the same merge.
 *
 * Topology: the N workers are ordinary SearchServices sharing ONE
 * GenomeStore, so a genome referenced by every shard is decoded once
 * and a packed (".2bit") reference is additionally mmap-shared — one
 * physical copy of the packed payload regardless of shard count
 * (`store.mmap_bytes`). Worker i always serves slice i of a given
 * genome, so per-worker request coalescing keeps working: two
 * requests for the same reference land on each worker with identical
 * scanRanges and merge into one pass there.
 *
 * Gathers run as tasks on the process-wide Executor and join their
 * shard futures with the executor's *helping* wait, so a gather
 * blocked on a busy pool executes other tasks (including its own
 * shards' chunk work) instead of deadlocking — safe even on a
 * single-core host. Gathers themselves are submitted with
 * TaskOptions::mayBlock, which helping loops skip: a shard
 * dispatcher's mid-scan helper must never pick up a gather that may
 * wait on a sub-request queued behind that very dispatcher
 * (executor.hpp documents the rule).
 *
 * Deadlines stay per-request: every sub-request carries the caller's
 * deadline; a shard that runs out of time returns its partial prefix
 * with `timedOut` set, and the merged result is the union of whatever
 * the shards produced, `timedOut` if any shard was cut short
 * (`shard.partials`).
 *
 * Thread-safety: every public method may be called from any thread.
 */

#ifndef CRISPR_CORE_SHARD_HPP_
#define CRISPR_CORE_SHARD_HPP_

#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <vector>

#include "core/service.hpp"

namespace crispr::core {

/** Coordinator-wide options. */
struct ShardOptions
{
    /**
     * Shard worker count (clamped to at least 1). Each worker is a
     * full SearchService with its own admission queue, batching
     * window, and breaker board; shards = 1 degenerates to a plain
     * SearchService behind the same API.
     */
    size_t shards = 1;

    /** Options applied to every shard worker (service.hpp). */
    ServiceOptions service;
};

/**
 * The scatter-gather serving front end: SearchService's submit API
 * over N shard workers that each scan one slice of the genome.
 */
class ShardedSearchService
{
  public:
    explicit ShardedSearchService(
        ShardOptions options = {},
        std::shared_ptr<GenomeStore> store = nullptr);

    /** Serves every still-pending request, then joins the gathers. */
    ~ShardedSearchService();

    ShardedSearchService(const ShardedSearchService &) = delete;
    ShardedSearchService &operator=(const ShardedSearchService &) = delete;

    /**
     * Submit a search request; mirrors SearchService::submit. The
     * genome is resolved once at the coordinator (genome >
     * genomeRef > deprecated genomePath, through the shared store),
     * scattered across the shard workers, and the future resolves
     * with the merged result. A caller-supplied non-whole
     * `config.scanRange` is honoured: the coordinator partitions that
     * interval instead of the whole genome.
     */
    std::future<SearchResult> submit(std::vector<Guide> guides,
                                     RequestOptions options);

    /** Typed-error variant: the future carries Expected instead. */
    std::future<common::Expected<SearchResult>>
    trySubmit(std::vector<Guide> guides, RequestOptions options);

    /**
     * Dispatch every worker's pending requests on the caller's thread
     * (the manual-mode path), then wait for the in-flight gathers to
     * merge. @return coordinator requests completed during the call.
     */
    size_t drain();

    /** Block until no request is pending, executing, or gathering. */
    void flush();

    /** The genome cache shared by every shard worker. */
    GenomeStore &store() { return *store_; }
    std::shared_ptr<GenomeStore> sharedStore() { return store_; }

    size_t shardCount() const { return workers_.size(); }

    /** Direct access to one shard worker (tests and introspection). */
    SearchService &worker(size_t shard) { return *workers_[shard]; }

    /**
     * Aggregated health: queue depth / bytes / executing summed over
     * the workers, store totals from the shared store (mmap-resident
     * and heap-decoded bytes reported separately), pressure and
     * accepting as the worst worker's view, breakers from worker 0
     * (every worker shares the coordinator's options).
     */
    ServiceHealth health() const;

    /** Coordinator shard.* metrics + summed worker service.* metrics
     *  + the shared store / breaker / executor views. */
    std::map<std::string, double> metricsSnapshot() const;

    size_t requestCount() const { return requests_.value(); }
    /** Completed scatter-gather cycles. */
    size_t gatherCount() const { return gathers_.value(); }
    /** Merged results cut short by a deadline (timedOut set). */
    size_t partialCount() const { return partials_.value(); }
    /** Requests completed with an error (resolution or shard). */
    size_t errorCount() const { return errors_.value(); }

  private:
    using Completion =
        std::function<void(common::Expected<SearchResult>)>;

    void enqueue(std::vector<Guide> guides, RequestOptions options,
                 Completion complete);
    /**
     * Join every in-flight gather with the executor's helping wait —
     * safe to call from inside a pool worker (the caller executes
     * queued tasks, including the gathers themselves, while waiting).
     */
    void waitGathersIdle();

    /**
     * Fold the shard results into one canonical SearchResult: first
     * shard error (by shard index) wins; otherwise hits are
     * concatenated + re-sorted + deduplicated, events re-normalised,
     * additive scan metrics summed, timings folded as the max across
     * shards (the parallel wall-clock view), and rates recomputed.
     *
     * Ranked mode: per-shard top-K listings merge exactly. Any hit in
     * the global top-K has fewer than K hits ranked above it globally,
     * hence fewer than K within its own shard, so it survives its
     * shard's truncation — the concatenation is a superset of the
     * global top-K, and re-sorting under the same total order +
     * re-truncating to `top_k` (the request's effective K) yields the
     * single-shard listing bit-for-bit at every shard count. A
     * timed-out shard contributes its partial ranking; the merge stays
     * duplicate- and phantom-free because every entry is one shard's
     * verified hit.
     */
    static common::Expected<SearchResult>
    mergeShardResults(std::vector<common::Expected<SearchResult>> shards,
                      size_t top_k);

    const ShardOptions options_;
    std::shared_ptr<GenomeStore> store_;
    std::vector<std::unique_ptr<SearchService>> workers_;

    mutable std::mutex mutex_;
    /** Futures of the gather tasks still in flight (pruned lazily). */
    std::list<std::future<void>> gatherTasks_;

    mutable common::MetricsRegistry metrics_;
    common::Counter requests_;
    common::Counter subRequests_;
    common::Counter gathers_;
    common::Counter partials_;
    common::Counter errors_;
    common::Counter completed_;
    common::Histogram gatherSeconds_;
    common::Gauge shardCountGauge_;
};

} // namespace crispr::core

#endif // CRISPR_CORE_SHARD_HPP_
