/**
 * @file
 * ExecutionOptions: the one definition of the execution-tuning knobs
 * that RequestOptions, RuntimeOptions, and ServiceOptions used to
 * re-declare independently (threads, SIMD tier, executor, chunk
 * geometry, deadline, retry budget, tracing). RuntimeOptions and
 * ChunkedScanOptions inherit it; ServiceOptions embeds one as the
 * service-wide default layer.
 *
 * Precedence (documented for the public API in crispr.hpp): a value
 * set on the request wins; a request field left at its built-in
 * default inherits the service's `ServiceOptions::defaults`; a service
 * field left at its built-in default leaves the built-in in force.
 *
 * Every field here except `scanRange` and the ranked-report knobs is
 * pure tuning — it may change how a pass executes, never which events
 * it reports (tested). The exception, `scanRange`, restricts a scan
 * to a genome interval and therefore *is* result-affecting: it exists
 * for the shard coordinator (core/shard.hpp), which relies on
 * disjoint emit ranges merging back into the whole-genome result, and
 * it participates in the service's coalescing key for exactly that
 * reason. The ranked-report knobs (`scoreThreshold`, `topK`) shape
 * only the derived `SearchResult::ranked` listing — the verified
 * `hits` list is never filtered by them — and `inScanScores` governs
 * whether hits carry per-site penalties at all (a benchmarking
 * baseline; ranked requests force it on).
 */

#ifndef CRISPR_CORE_OPTIONS_HPP_
#define CRISPR_CORE_OPTIONS_HPP_

#include <cstddef>
#include <cstdint>

#include "common/deadline.hpp"
#include "common/trace.hpp"
#include "hscan/simd.hpp"

namespace crispr::common {
class Executor;
} // namespace crispr::common

namespace crispr::core {

/**
 * Half-open genome interval [begin, end) a scan emits events for.
 * The default {0, 0} means the whole sequence. A non-whole range is
 * seam-safe: the scan re-reads up to overlap (longest pattern - 1)
 * codes *before* `begin` so a site straddling the lower boundary is
 * still matched, but only events whose end index lies inside
 * [begin, end) are emitted — the same ownership rule ChunkedScanner
 * applies between chunks, lifted to shard boundaries. Ranges are
 * clamped to the sequence length.
 */
struct ScanRange
{
    uint64_t begin = 0;
    uint64_t end = 0;

    /** True for the default whole-sequence range. */
    bool whole() const { return begin == 0 && end == 0; }

    bool operator==(const ScanRange &) const = default;
};

/**
 * The shared execution-tuning layer. See the file comment for the
 * request > service-default > built-in precedence contract.
 */
struct ExecutionOptions
{
    /**
     * Worker threads for chunk-capable (CPU) engines: 1 = serial (the
     * paper's single-core setups — never touches the shared pool),
     * 0 = all hardware threads, n = n. Multi-threaded scans run as
     * tasks on the process-wide work-stealing Executor (shared by
     * every concurrent request), not on freshly spawned threads.
     * Device-model engines (GPU/FPGA/AP) always consume the whole
     * stream and ignore this.
     */
    unsigned threads = 1;

    /**
     * Requested SIMD tier for the vector-capable CPU scan kernels
     * (hscan Shift-Or, prefilter anchor probe). Resolved per scan
     * against the CRISPR_SIMD env override (which wins) and host
     * CPUID; an unsupported request degrades to the widest usable
     * tier. Every tier reports bit-identical hits (tested), so this
     * is runtime tuning like `threads`, not a result knob.
     */
    hscan::SimdTier simdTier = hscan::SimdTier::Auto;

    /**
     * Pool multi-threaded scans schedule onto; nullptr = the
     * process-wide Executor::shared(). Instanced pools are for tests
     * and benchmarks.
     */
    common::Executor *executor = nullptr;

    /**
     * Benchmark baseline only: spawn fresh threads per scan (the
     * pre-executor behaviour) instead of using the shared pool.
     */
    bool spawnThreads = false;

    /** Emit-zone size per chunk when scanning chunked or streamed. */
    size_t chunkSize = 4 << 20;

    /**
     * Genome interval this scan emits events for (default: whole).
     * Set by the shard coordinator; see ScanRange for seam semantics.
     */
    ScanRange scanRange;

    /**
     * Cooperative deadline / cancel token: checked between chunks (and
     * before an unchunkable whole-genome scan starts), so an expired or
     * cancelled search stops early and reports the partial results with
     * `search.timed_out` = 1. Default: unlimited.
     */
    common::Deadline deadline;

    /**
     * Per-chunk retries for transient scan failures (exponential
     * backoff from retryBackoffSeconds, capped). 0 = fail fast.
     */
    unsigned scanRetries = 0;
    double retryBackoffSeconds = 0.001;
    double retryBackoffCapSeconds = 0.050;

    /**
     * Optional trace sink: when set, the search records RAII spans
     * (search, parse, pattern.compile, engine.compile, scan,
     * chunk.scan, report) into it, serializable to chrome://tracing
     * JSON via TraceSink::writeJson. The sink must outlive the search.
     */
    common::TraceSink *trace = nullptr;

    /**
     * Ranked-report mode, part 1: keep only hits whose in-scan site
     * penalty is >= this in `SearchResult::ranked`. 0.0 (the default)
     * keeps every hit — penalties of verified hits are always > 0.
     * Setting either ranked knob turns the ranked listing on; `hits`
     * itself is never filtered.
     */
    double scoreThreshold = 0.0;

    /**
     * Ranked-report mode, part 2: truncate `SearchResult::ranked` to
     * the K most dangerous sites (penalty descending, ties by guide /
     * position / strand — a total order, so the listing is bit-stable
     * across shard counts and chunk geometry, tested). 0 = unlimited.
     */
    size_t topK = 0;

    /**
     * Compute each hit's mismatch-position mask and site penalty
     * during verification (the in-scan scoring path). On by default —
     * the marginal cost is a table lookup per mismatch already found.
     * Off is the boolean-scan baseline for benchmarks; a ranked
     * request (topK / scoreThreshold) forces scoring back on.
     */
    bool inScanScores = true;

    /** True when either ranked-report knob is engaged. */
    bool rankedRequested() const
    {
        return topK > 0 || scoreThreshold > 0.0;
    }
};

} // namespace crispr::core

#endif // CRISPR_CORE_OPTIONS_HPP_
