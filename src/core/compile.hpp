/**
 * @file
 * Guide -> pattern compilation: expands a guide set into Hamming
 * pattern specs for both strands, in either of two stream orientations:
 *
 *  - SiteOrder (default): patterns are written in forward-genome
 *    coordinates and the forward genome stream is scanned once. The
 *    forward-strand pattern is guide+PAM; the reverse-strand pattern is
 *    its reverse complement (so the PAM leads it).
 *
 *  - PamFirst: every pattern leads with its exact (PAM) region — the
 *    orientation the AP counter design requires, because the PAM is the
 *    trigger that resets the mismatch counter. Reverse-strand patterns
 *    already lead with the PAM on the forward stream; forward-strand
 *    patterns are reversed (not complemented) and scanned against the
 *    *reversed* genome stream (a second pass).
 *
 * Report id = index into PatternSet::patterns.
 */

#ifndef CRISPR_CORE_COMPILE_HPP_
#define CRISPR_CORE_COMPILE_HPP_

#include <cstdint>
#include <vector>

#include "automata/builders.hpp"
#include "common/error.hpp"
#include "core/guide.hpp"

namespace crispr::core {

/** Strand of the genome the site lies on. */
enum class Strand : uint8_t
{
    Forward = 0,
    Reverse = 1,
};

/** Render a strand as "+" / "-". */
const char *strandStr(Strand s);

/** Stream orientation of compiled patterns (see file comment). */
enum class Orientation : uint8_t
{
    SiteOrder,
    PamFirst,
};

/** One compiled pattern. */
struct Pattern
{
    uint32_t guideIndex;
    Strand strand;
    /** Pattern matches against the reversed genome stream. */
    bool reversedStream;
    automata::HammingSpec spec;
};

/** The compiled set of patterns for a search. */
struct PatternSet
{
    std::vector<Pattern> patterns;
    size_t guideLength = 0;
    size_t pamLength = 0;
    Orientation orientation = Orientation::SiteOrder;
    int maxMismatches = 0;

    /**
     * Per-position mismatch weights (score_table.hpp), one per guide
     * position, baked in at compile time so every scan scores hits
     * in-flight without consulting global tables. Participates in
     * patternSetDigest() and the serialized engine-state envelope, so
     * a persisted compiled state can never replay with a different
     * weight table.
     */
    std::vector<double> scoreWeights;

    size_t siteLength() const { return guideLength + pamLength; }

    /** Specs of the patterns scanning the given stream direction. */
    std::vector<automata::HammingSpec>
    specsForStream(bool reversed) const;

    /** True if any pattern scans the reversed stream. */
    bool needsReversedStream() const;

    /**
     * The SiteOrder (forward-coordinate) spec of a pattern, used for
     * mismatch recomputation regardless of this set's orientation.
     */
    automata::HammingSpec forwardSpec(uint32_t pattern_id) const;
};

/**
 * Order-sensitive content digest of a pattern set (FNV-1a over a
 * canonical serialization). Engine::serializeState embeds it so a
 * persisted compiled state can never be paired with a different guide
 * set or compile configuration at load time.
 */
uint64_t patternSetDigest(const PatternSet &set);

/**
 * Compile guides x strands into a pattern set. All guides must share
 * one length. @param both_strands include reverse-strand patterns.
 * @return InvalidArgument for an empty guide set, mixed guide lengths,
 * or a mismatch budget outside [0, guide length].
 */
common::Expected<PatternSet>
tryBuildPatternSet(const std::vector<Guide> &guides, const PamSpec &pam,
                   int max_mismatches, bool both_strands,
                   Orientation orientation = Orientation::SiteOrder);

/** Throwing wrapper over tryBuildPatternSet (ErrorException). */
PatternSet buildPatternSet(const std::vector<Guide> &guides,
                           const PamSpec &pam, int max_mismatches,
                           bool both_strands,
                           Orientation orientation =
                               Orientation::SiteOrder);

} // namespace crispr::core

#endif // CRISPR_CORE_COMPILE_HPP_
