#include "core/report.hpp"

#include <algorithm>
#include <ostream>
#include <vector>

#include "common/logging.hpp"
#include "common/table.hpp"
#include "core/score.hpp"

namespace crispr::core {

void
printHits(std::ostream &out, const genome::Sequence &genome_seq,
          const std::vector<Guide> &guides, const SearchResult &result,
          size_t max_lines, const genome::RecordMap *record_map)
{
    size_t n = 0;
    for (const OffTargetHit &hit : result.hits) {
        if (n++ >= max_lines) {
            out << "... (" << result.hits.size() - max_lines
                << " more hits)\n";
            break;
        }
        out << guides[hit.guide].name << '\t';
        if (record_map) {
            auto loc = record_map->locateWindow(
                hit.start, result.patterns.siteLength());
            out << loc.name << ':' << loc.offset;
        } else {
            out << hit.start;
        }
        out << '\t' << strandStr(hit.strand) << '\t' << hit.mismatches
            << '\t'
            << hitAlignmentString(genome_seq, result.patterns, hit)
            << '\n';
    }
}

void
printSummary(std::ostream &out, const std::vector<Guide> &guides,
             const SearchResult &result)
{
    const int max_mm = result.patterns.maxMismatches;
    std::vector<std::string> header = {"guide", "total"};
    for (int k = 0; k <= max_mm; ++k)
        header.push_back(strprintf("mm=%d", k));
    Table table(std::move(header));

    std::vector<std::vector<uint64_t>> counts(
        guides.size(), std::vector<uint64_t>(max_mm + 1, 0));
    for (const OffTargetHit &hit : result.hits) {
        if (hit.guide < counts.size() && hit.mismatches <= max_mm)
            ++counts[hit.guide][hit.mismatches];
    }
    for (size_t gi = 0; gi < guides.size(); ++gi) {
        uint64_t total = 0;
        for (uint64_t c : counts[gi])
            total += c;
        table.row().add(guides[gi].name).add(total);
        for (int k = 0; k <= max_mm; ++k)
            table.add(counts[gi][k]);
    }
    out << table.str();
}

std::string
timingLine(const EngineRun &run)
{
    return strprintf(
        "%-18s events=%-8zu compile=%-10s host=%-10s kernel=%-10s "
        "total=%s",
        engineName(run.kind), run.events.size(),
        formatSeconds(run.timing.compileSeconds).c_str(),
        formatSeconds(run.timing.hostSeconds).c_str(),
        formatSeconds(run.timing.kernelSeconds).c_str(),
        formatSeconds(run.timing.totalSeconds).c_str());
}

void
writeHitsCsv(std::ostream &out, const genome::Sequence &genome_seq,
             const std::vector<Guide> &guides, const SearchResult &result)
{
    out << "guide,start,strand,mismatches,site\n";
    for (const OffTargetHit &hit : result.hits) {
        out << guides[hit.guide].name << ',' << hit.start << ','
            << strandStr(hit.strand) << ',' << hit.mismatches << ','
            << hitSiteString(genome_seq, result.patterns, hit) << '\n';
    }
}

void
printRanked(std::ostream &out, const genome::Sequence &genome_seq,
            const std::vector<Guide> &guides, const SearchResult &result,
            const genome::RecordMap *record_map)
{
    if (!result.rankedMode) {
        out << "(no ranked report: search without topK/scoreThreshold)"
            << '\n';
        return;
    }
    size_t rank = 0;
    for (const OffTargetHit &hit : result.ranked) {
        out << ++rank << '\t' << guides[hit.guide].name << '\t';
        if (record_map) {
            auto loc = record_map->locateWindow(
                hit.start, result.patterns.siteLength());
            out << loc.name << ':' << loc.offset;
        } else {
            out << hit.start;
        }
        out << '\t' << strandStr(hit.strand) << '\t' << hit.mismatches
            << '\t' << strprintf("%.6f", hit.penalty) << '\t'
            << hitAlignmentString(genome_seq, result.patterns, hit)
            << '\n';
    }
}

void
writeRankedCsv(std::ostream &out, const genome::Sequence &genome_seq,
               const std::vector<Guide> &guides,
               const SearchResult &result)
{
    const std::vector<GuideScore> scores =
        scoreGuidesFromHits(guides.size(), result);
    out << "rank,guide,start,strand,mismatches,penalty,"
           "guide_specificity,site\n";
    size_t rank = 0;
    for (const OffTargetHit &hit : result.ranked) {
        out << ++rank << ',' << guides[hit.guide].name << ','
            << hit.start << ',' << strandStr(hit.strand) << ','
            << hit.mismatches << ','
            << strprintf("%.9g", hit.penalty) << ','
            << strprintf("%.9g", scores[hit.guide].specificity) << ','
            << hitSiteString(genome_seq, result.patterns, hit) << '\n';
    }
}

} // namespace crispr::core
