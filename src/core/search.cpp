#include "core/search.hpp"

#include <sstream>

#include "core/session.hpp"

namespace crispr::core {

std::string
compileOptionsKey(const CompileOptions &options)
{
    const EngineParams &p = options.params;
    std::ostringstream key;
    key << options.maxMismatches << '|' << options.bothStrands << '|'
        << options.pam.iupac << '|'
        << static_cast<int>(p.hscanOpts.mode) << ':'
        << p.hscanOpts.maxDfaStates << ':' << p.hscanOpts.minimizeDfa
        << '|' << p.gpuChunk << '|' << p.fullSimSymbolLimit << '|'
        << p.casotConfig.seedLength << ':'
        << p.casotConfig.maxSeedMismatches;
    return key.str();
}

SearchResult
search(const genome::Sequence &genome_seq,
       const std::vector<Guide> &guides, const SearchConfig &config)
{
    SearchSession session(guides, config);
    return session.search(genome_seq);
}

} // namespace crispr::core
