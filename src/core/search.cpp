#include "core/search.hpp"

#include "common/logging.hpp"

namespace crispr::core {

SearchResult
search(const genome::Sequence &genome_seq, const std::vector<Guide> &guides,
       const SearchConfig &config)
{
    SearchResult result;
    result.patterns =
        buildPatternSet(guides, config.pam, config.maxMismatches,
                        config.bothStrands,
                        requiredOrientation(config.engine));
    result.run =
        runEngine(config.engine, genome_seq, result.patterns,
                  config.params);
    const bool tolerant = config.engine == EngineKind::ApCounter;
    result.hits = hitsFromEvents(genome_seq, result.patterns,
                                 result.run.events, tolerant,
                                 &result.droppedEvents);
    return result;
}

} // namespace crispr::core
