#include "core/search.hpp"

#include "core/session.hpp"

namespace crispr::core {

SearchResult
search(const genome::Sequence &genome_seq,
       const std::vector<Guide> &guides, const SearchConfig &config)
{
    SearchSession session(guides, config);
    return session.search(genome_seq);
}

} // namespace crispr::core
