#include "core/session.hpp"

#include <algorithm>
#include <sstream>

#include "common/faultpoints.hpp"
#include "common/logging.hpp"
#include "common/stopwatch.hpp"
#include "core/engine_auto.hpp"
#include "core/engine_registry.hpp"
#include "core/pattern_db.hpp"
#include "genome/fasta_stream.hpp"

namespace crispr::core {

using common::Error;
using common::ErrorCode;

namespace {

std::string
joinEngineNames(const std::vector<EngineKind> &kinds)
{
    std::string out;
    for (EngineKind kind : kinds) {
        if (!out.empty())
            out += ',';
        out += engineName(kind);
    }
    return out;
}

} // namespace

SearchSession::SearchSession(std::vector<Guide> guides,
                             SearchConfig config, size_t cache_capacity)
    : guides_(std::move(guides)), config_(std::move(config)),
      capacity_(std::max<size_t>(1, cache_capacity)),
      compiles_(metrics_.counter("session.compiles")),
      cacheHits_(metrics_.counter("session.cache_hits")),
      dbHits_(metrics_.counter("session.db_hits")),
      dbMisses_(metrics_.counter("session.db_misses")),
      dbStoreFailures_(metrics_.counter("session.db_store_failures")),
      breakers_(config_.breakers
                    ? config_.breakers
                    : std::make_shared<CircuitBreakerBoard>())
{
}

CircuitBreakerBoard &
SearchSession::boardFor(const SearchConfig &config) const
{
    return config.breakers ? *config.breakers : *breakers_;
}

std::string
SearchSession::cacheKey(const CompileOptions &options,
                        const Engine &engine) const
{
    return std::string(engine.name()) + '|' +
           compileOptionsKey(options);
}

std::string
SearchSession::databaseKey(const CompileOptions &options,
                           const Engine &engine) const
{
    return cacheKey(options, engine) + '|' +
           strprintf("%016llx", static_cast<unsigned long long>(
                                    guideSetDigest(guides_)));
}

std::vector<EngineKind>
SearchSession::engineChain(const SearchConfig &config) const
{
    std::vector<EngineKind> chain;
    auto push = [&chain](EngineKind kind) {
        if (std::find(chain.begin(), chain.end(), kind) == chain.end())
            chain.push_back(kind);
    };
    auto expand = [&](EngineKind kind, bool count_choice) {
        if (kind != EngineKind::Auto) {
            push(kind);
            return;
        }
        WorkloadShape shape;
        shape.guideCount = guides_.size();
        shape.guideLength =
            guides_.empty() ? 0 : guides_.front().protospacer.size();
        shape.pamLength = config.pam.size();
        shape.maxMismatches = config.maxMismatches;
        shape.bothStrands = config.bothStrands;
        const std::vector<EngineKind> ranked = autoEngineRanking(
            shape, config.params.hscanOpts.maxDfaStates);
        if (count_choice)
            metrics_
                .counter(std::string("session.engine_auto.") +
                         engineName(ranked.front()))
                .inc();
        for (EngineKind r : ranked)
            push(r);
    };
    expand(config.engine, /*count_choice=*/true);
    for (EngineKind kind : config.fallbacks)
        expand(kind, /*count_choice=*/false);
    return chain;
}

ChunkedScanOptions
SearchSession::chunkOptions(const SearchConfig &config) const
{
    // ChunkedScanOptions *is* the shared ExecutionOptions layer that
    // RuntimeOptions inherits, so the handoff is one slice-assign —
    // no per-field copy to fall out of date when a knob is added.
    ChunkedScanOptions opts;
    static_cast<ExecutionOptions &>(opts) = config.execution();
    return opts;
}

common::Expected<std::shared_ptr<const CompiledPattern>>
SearchSession::compiledFor(const SearchConfig &config,
                           const Engine &engine)
{
    const std::string key = cacheKey(config.compile(), engine);
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = cache_.begin(); it != cache_.end(); ++it) {
        if (it->first == key) {
            cache_.splice(cache_.begin(), cache_, it);
            cacheHits_.inc();
            return cache_.front().second;
        }
    }
    if (common::faultpoints::shouldFail("session.compile"))
        return Error(ErrorCode::FaultInjected,
                     "injected session.compile fault")
            .withContext("engine", engine.name());
    common::TraceSpan pattern_span(config.trace, "pattern.compile");
    auto set =
        tryBuildPatternSet(guides_, config.pam, config.maxMismatches,
                           config.bothStrands,
                           engine.requiredOrientation());
    pattern_span.finish();
    if (!set.ok())
        return set.error();

    // Disk tier: a serialized compiled state loads in milliseconds
    // where subset construction takes seconds. A blob that fails any
    // integrity check is a miss, never an error — the compile below
    // overwrites it.
    std::shared_ptr<PatternDatabase> db;
    std::string db_key;
    if (!config.compile().databaseDir.empty() &&
        engine.supportsSerialization()) {
        auto opened = PatternDatabase::open(config.compile().databaseDir);
        if (!opened.ok()) {
            warn("pattern database disabled: %s",
                 opened.error().message().c_str());
        } else {
            db = std::move(opened).value();
            db_key = databaseKey(config.compile(), engine);
            if (auto blob = db->load(db_key)) {
                Stopwatch load_timer;
                auto loaded = engine.deserializeState(
                    set.value(), config.params, *blob);
                if (loaded.ok()) {
                    dbHits_.inc();
                    metrics_.histogram("session.db_load_seconds")
                        .observe(load_timer.seconds());
                    auto compiled =
                        std::make_shared<const CompiledPattern>(
                            std::move(loaded).value());
                    cache_.emplace_front(key, compiled);
                    while (cache_.size() > capacity_)
                        cache_.pop_back();
                    return compiled;
                }
                warn("stale pattern database entry recompiled: %s",
                     loaded.error().message().c_str());
            }
            dbMisses_.inc();
        }
    }

    common::TraceSpan compile_span(config.trace, "engine.compile");
    auto built = engine.tryCompile(std::move(set).value(),
                                   config.params);
    compile_span.finish();
    if (!built.ok())
        return built.error();
    auto compiled = std::make_shared<const CompiledPattern>(
        std::move(built).value());
    compiles_.inc();
    if (db) {
        auto blob = engine.serializeState(*compiled);
        if (blob.ok()) {
            if (auto st = db->store(db_key, blob.value()); !st.ok()) {
                // Unwritable/full databaseDir degrades to in-memory
                // operation; the search itself must never fail here.
                dbStoreFailures_.inc();
                warn("pattern database store failed (continuing "
                     "in-memory): %s",
                     st.error().message().c_str());
            }
        }
    }
    cache_.emplace_front(key, compiled);
    while (cache_.size() > capacity_)
        cache_.pop_back();
    return compiled;
}

void
SearchSession::recordEngineFailure(const char *name)
{
    metrics_.counter(std::string("session.failures.") + name).inc();
}

void
SearchSession::annotate(EngineRun &run) const
{
    metrics_.mergeInto(run.metrics);
    breakers_->mergeMetricsInto(run.metrics);
}

common::Expected<EngineRun>
SearchSession::scanWith(
    const Engine &engine,
    const std::shared_ptr<const CompiledPattern> &compiled,
    const genome::Sequence &genome_seq,
    const SearchConfig &config) const
{
    if (common::faultpoints::shouldFail("engine.scan"))
        return Error(ErrorCode::FaultInjected,
                     "injected engine.scan fault")
            .withContext("engine", engine.name());

    // A deadline or retry budget routes chunk-capable engines through
    // the chunked pipeline even when serial, for per-chunk checks; a
    // non-whole scanRange requires it (only the chunked path knows the
    // emit-zone seam rule). Device-model engines consume the whole
    // stream regardless — the shard coordinator's merge dedups their
    // repeated full-genome results, so identity still holds.
    const bool chunked =
        engine.supportsChunkedScan() &&
        (config.threads != 1 || config.deadline.limited() ||
         config.scanRetries > 0 || !config.scanRange.whole());
    if (chunked) {
        const ChunkedScanOptions opts = chunkOptions(config);
        if (auto st = ChunkedScanner::validate(engine, compiled, opts);
            !st.ok())
            return st.error();
        return ChunkedScanner(engine, compiled, opts)
            .tryScan(genome_seq);
    }
    if (config.deadline.expired()) {
        // Unchunkable engines cannot stop mid-scan; the cooperative
        // check degrades to never starting an already-expired scan.
        EngineRun run;
        run.kind = engine.kind();
        run.timing.compileSeconds = compiled->compileSeconds;
        run.metrics = compiled->metrics;
        run.metrics["scan.bytes"] = 0.0;
        run.metrics["scan.events"] = 0.0;
        run.metrics.emplace("events.dropped", 0.0);
        run.metrics["search.timed_out"] =
            config.deadline.timedOut() ? 1.0 : 0.0;
        run.metrics["search.cancelled"] =
            config.deadline.cancelled() ? 1.0 : 0.0;
        run.notes = "deadline expired before scan";
        return run;
    }
    ScanOptions scan_options;
    scan_options.simdTier = config.simdTier;
    return engine.tryScan(*compiled, SequenceView(genome_seq),
                          scan_options);
}

common::Expected<SearchResult>
SearchSession::trySearch(const genome::Sequence &genome_seq)
{
    return trySearch(genome_seq, config_);
}

common::Expected<SearchResult>
SearchSession::trySearch(const genome::Sequence &genome_seq,
                         const SearchConfig &config)
{
    common::TraceSpan search_span(config.trace, "search");
    const std::vector<EngineKind> chain = engineChain(config);
    CircuitBreakerBoard &board = boardFor(config);
    Error last(ErrorCode::Internal, "no engine attempted");
    size_t failed_engines = 0;

    for (EngineKind kind : chain) {
        const char *name = engineName(kind);
        if (!board.admit(name)) {
            // Breaker open: skip to the next engine without burning a
            // compile/scan attempt (and without counting a failure —
            // the engine was never tried).
            last = Error(ErrorCode::Overloaded,
                         strprintf("circuit breaker open for %s",
                                   name))
                       .withContext("engine", name);
            ++failed_engines;
            continue;
        }
        const Engine *engine =
            EngineRegistry::instance().tryFind(kind);
        if (!engine) {
            last = Error(ErrorCode::UnsupportedEngine,
                         strprintf("no engine registered for %s",
                                   name));
            recordEngineFailure(name);
            board.recordFailure(name);
            ++failed_engines;
            continue;
        }
        auto compiled = compiledFor(config, *engine);
        if (!compiled.ok()) {
            last = compiled.error();
            recordEngineFailure(engine->name());
            board.recordFailure(name);
            ++failed_engines;
            continue;
        }
        common::TraceSpan scan_span(config.trace, "scan");
        auto run = scanWith(*engine, compiled.value(), genome_seq,
                            config);
        scan_span.finish();
        if (!run.ok()) {
            last = run.error();
            recordEngineFailure(engine->name());
            board.recordFailure(name);
            ++failed_engines;
            continue;
        }
        board.recordSuccess(name);

        SearchResult result;
        result.patterns = *compiled.value()->set;
        result.run = std::move(run).value();
        common::TraceSpan report_span(config.trace, "report");
        const bool tolerant = engine->kind() == EngineKind::ApCounter;
        // A ranked request needs penalties even when the caller turned
        // the in-scan scoring baseline off.
        const bool with_scores =
            config.inScanScores || config.rankedRequested();
        result.hits = hitsFromEvents(genome_seq, result.patterns,
                                     result.run.events, tolerant,
                                     &result.droppedEvents, with_scores);
        if (config.rankedRequested()) {
            result.rankedMode = true;
            result.ranked = rankHits(result.hits, config.scoreThreshold,
                                     config.topK);
            result.run.metrics["search.ranked"] =
                static_cast<double>(result.ranked.size());
        }
        report_span.finish();
        result.run.metrics["events.dropped"] =
            static_cast<double>(result.droppedEvents);
        result.run.metrics["search.hits"] =
            static_cast<double>(result.hits.size());
        if (result.run.timing.hostSeconds > 0.0)
            result.run.metrics["search.hits_per_sec"] =
                static_cast<double>(result.hits.size()) /
                result.run.timing.hostSeconds;
        result.run.metrics["session.fallbacks"] =
            static_cast<double>(failed_engines);
        result.run.metrics.emplace("search.timed_out", 0.0);
        result.run.metrics.emplace("search.cancelled", 0.0);
        result.timedOut =
            result.run.metrics.at("search.timed_out") > 0.0;
        annotate(result.run);
        return result;
    }
    return std::move(last).withContext("engines_tried",
                                       joinEngineNames(chain));
}

common::Expected<SearchResult>
SearchSession::trySearchStream(std::istream &fasta)
{
    return trySearchStream(fasta, config_);
}

common::Expected<SearchResult>
SearchSession::trySearchStream(std::istream &fasta,
                               const SearchConfig &config)
{
    common::TraceSpan search_span(config.trace, "search");
    const std::vector<EngineKind> chain = engineChain(config);
    CircuitBreakerBoard &board = boardFor(config);
    Error last(ErrorCode::Internal, "no engine attempted");
    size_t failed_engines = 0;

    for (EngineKind kind : chain) {
        const char *name = engineName(kind);
        if (!board.admit(name)) {
            last = Error(ErrorCode::Overloaded,
                         strprintf("circuit breaker open for %s",
                                   name))
                       .withContext("engine", name);
            ++failed_engines;
            continue;
        }
        const Engine *engine =
            EngineRegistry::instance().tryFind(kind);
        if (!engine) {
            last = Error(ErrorCode::UnsupportedEngine,
                         strprintf("no engine registered for %s",
                                   name));
            recordEngineFailure(name);
            board.recordFailure(name);
            ++failed_engines;
            continue;
        }
        auto compiled = compiledFor(config, *engine);
        if (!compiled.ok()) {
            last = compiled.error();
            recordEngineFailure(engine->name());
            board.recordFailure(name);
            ++failed_engines;
            continue;
        }
        const ChunkedScanOptions opts = chunkOptions(config);
        if (auto st =
                ChunkedScanner::validate(*engine, compiled.value(),
                                         opts);
            !st.ok()) {
            last = st.error();
            recordEngineFailure(engine->name());
            board.recordFailure(name);
            ++failed_engines;
            continue;
        }
        ChunkedScanner scanner(*engine, compiled.value(), opts);

        SearchResult result;
        result.patterns = *compiled.value()->set;

        // Chunk-capable engines compile SiteOrder sets (no
        // reversed-stream patterns), so a hit's window is local to the
        // chunk buffer that reported it: verify per chunk, then lift
        // start to global.
        const bool with_scores =
            config.inScanScores || config.rankedRequested();
        ChunkObserver verify = [&](const ChunkScanView &chunk) {
            common::TraceSpan report_span(config.trace, "report");
            size_t dropped = 0;
            std::vector<OffTargetHit> hits = hitsFromEvents(
                chunk.buffer, result.patterns, chunk.events,
                /*drop_unverified=*/false, &dropped, with_scores);
            result.droppedEvents += dropped;
            for (OffTargetHit hit : hits) {
                hit.start += chunk.bufferStart;
                result.hits.push_back(hit);
            }
        };

        genome::FastaStreamReader reader(
            fasta, genome::FastaStreamOptions{config.lenientFasta});
        auto run = scanner.tryScanStream(reader, verify);
        if (!run.ok()) {
            // The stream is part-consumed: falling back to another
            // engine would rescan a truncated genome, so surface the
            // error instead.
            recordEngineFailure(engine->name());
            board.recordFailure(name);
            return run.error();
        }
        board.recordSuccess(name);
        result.run = std::move(run).value();

        // Chunks arrive in stream order; restore the (guide, start,
        // strand) order hitsFromEvents gives a whole-genome verify.
        std::sort(result.hits.begin(), result.hits.end(),
                  [](const OffTargetHit &a, const OffTargetHit &b) {
                      if (a.guide != b.guide)
                          return a.guide < b.guide;
                      if (a.start != b.start)
                          return a.start < b.start;
                      return a.strand < b.strand;
                  });
        result.run.metrics["events.dropped"] =
            static_cast<double>(result.droppedEvents);
        result.run.metrics["parse.records_dropped"] =
            static_cast<double>(reader.recordsDropped());
        result.run.metrics["search.hits"] =
            static_cast<double>(result.hits.size());
        if (result.run.timing.hostSeconds > 0.0)
            result.run.metrics["search.hits_per_sec"] =
                static_cast<double>(result.hits.size()) /
                result.run.timing.hostSeconds;
        result.run.metrics["session.fallbacks"] =
            static_cast<double>(failed_engines);
        result.timedOut =
            result.run.metrics.at("search.timed_out") > 0.0;
        if (config.rankedRequested()) {
            result.rankedMode = true;
            result.ranked = rankHits(result.hits, config.scoreThreshold,
                                     config.topK);
            result.run.metrics["search.ranked"] =
                static_cast<double>(result.ranked.size());
        }
        annotate(result.run);
        return result;
    }
    return std::move(last).withContext("engines_tried",
                                       joinEngineNames(chain));
}

SearchResult
SearchSession::search(const genome::Sequence &genome_seq)
{
    return search(genome_seq, config_);
}

SearchResult
SearchSession::search(const genome::Sequence &genome_seq,
                      const SearchConfig &config)
{
    return trySearch(genome_seq, config).valueOrThrow();
}

SearchResult
SearchSession::searchStream(std::istream &fasta)
{
    return searchStream(fasta, config_);
}

SearchResult
SearchSession::searchStream(std::istream &fasta,
                            const SearchConfig &config)
{
    return trySearchStream(fasta, config).valueOrThrow();
}

size_t
SearchSession::compileCount() const
{
    return compiles_.value();
}

size_t
SearchSession::cacheHits() const
{
    return cacheHits_.value();
}

size_t
SearchSession::databaseHits() const
{
    return dbHits_.value();
}

size_t
SearchSession::databaseMisses() const
{
    return dbMisses_.value();
}

size_t
SearchSession::engineFailures(EngineKind kind) const
{
    return metrics_
        .counter(std::string("session.failures.") +
                 engineName(kind))
        .value();
}

std::map<std::string, double>
SearchSession::metricsSnapshot() const
{
    std::map<std::string, double> out = metrics_.toMap();
    breakers_->mergeMetricsInto(out);
    return out;
}

void
SearchSession::clearCache()
{
    std::lock_guard<std::mutex> lock(mutex_);
    cache_.clear();
}

} // namespace crispr::core
