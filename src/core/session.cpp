#include "core/session.hpp"

#include <algorithm>
#include <sstream>

#include "common/logging.hpp"
#include "core/engine_registry.hpp"
#include "genome/fasta_stream.hpp"

namespace crispr::core {

namespace {

/**
 * Effective worker-thread count for a config. SearchConfig::threads is
 * authoritative; the deprecated EngineParams::hscanThreads still steers
 * the HScan kinds when threads keeps its default, so pre-session
 * callers see identical behaviour.
 */
unsigned
effectiveThreads(const SearchConfig &config)
{
    if (config.threads != 1)
        return config.threads;
    switch (config.engine) {
    case EngineKind::HscanAuto:
    case EngineKind::HscanDfa:
    case EngineKind::HscanBitParallel:
        return config.params.hscanThreads;
    default:
        return 1;
    }
}

} // namespace

SearchSession::SearchSession(std::vector<Guide> guides,
                             SearchConfig config, size_t cache_capacity)
    : guides_(std::move(guides)), config_(std::move(config)),
      capacity_(std::max<size_t>(1, cache_capacity))
{
}

std::string
SearchSession::cacheKey(const SearchConfig &config,
                        const Engine &engine) const
{
    const EngineParams &p = config.params;
    std::ostringstream key;
    key << engine.name() << '|' << config.maxMismatches << '|'
        << config.bothStrands << '|' << config.pam.iupac << '|'
        << static_cast<int>(p.hscanOpts.mode) << ':'
        << p.hscanOpts.maxDfaStates << ':' << p.hscanOpts.minimizeDfa
        << '|' << p.gpuChunk << '|' << p.fullSimSymbolLimit << '|'
        << p.casotConfig.seedLength << ':'
        << p.casotConfig.maxSeedMismatches;
    return key.str();
}

std::shared_ptr<const CompiledPattern>
SearchSession::compiledFor(const SearchConfig &config,
                           const Engine &engine)
{
    const std::string key = cacheKey(config, engine);
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = cache_.begin(); it != cache_.end(); ++it) {
        if (it->first == key) {
            cache_.splice(cache_.begin(), cache_, it);
            ++cacheHits_;
            return cache_.front().second;
        }
    }
    PatternSet set =
        buildPatternSet(guides_, config.pam, config.maxMismatches,
                        config.bothStrands,
                        engine.requiredOrientation());
    auto compiled = std::make_shared<const CompiledPattern>(
        engine.compile(set, config.params));
    ++compiles_;
    cache_.emplace_front(key, compiled);
    while (cache_.size() > capacity_)
        cache_.pop_back();
    return compiled;
}

void
SearchSession::annotate(EngineRun &run) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    run.metrics["session.compiles"] = static_cast<double>(compiles_);
    run.metrics["session.cache_hits"] =
        static_cast<double>(cacheHits_);
}

SearchResult
SearchSession::search(const genome::Sequence &genome)
{
    return search(genome, config_);
}

SearchResult
SearchSession::search(const genome::Sequence &genome,
                      const SearchConfig &config)
{
    const Engine &engine =
        EngineRegistry::instance().engine(config.engine);
    std::shared_ptr<const CompiledPattern> compiled =
        compiledFor(config, engine);

    SearchResult result;
    result.patterns = *compiled->set;

    const unsigned threads = effectiveThreads(config);
    if (threads != 1 && engine.supportsChunkedScan()) {
        ChunkedScanOptions opts;
        opts.chunkSize = config.chunkSize;
        opts.threads = threads;
        result.run = ChunkedScanner(engine, compiled, opts).scan(genome);
    } else {
        result.run = engine.scan(*compiled, SequenceView(genome));
    }

    const bool tolerant = config.engine == EngineKind::ApCounter;
    result.hits = hitsFromEvents(genome, result.patterns,
                                 result.run.events, tolerant,
                                 &result.droppedEvents);
    result.run.metrics["events.dropped"] =
        static_cast<double>(result.droppedEvents);
    annotate(result.run);
    return result;
}

SearchResult
SearchSession::searchStream(std::istream &fasta)
{
    return searchStream(fasta, config_);
}

SearchResult
SearchSession::searchStream(std::istream &fasta,
                            const SearchConfig &config)
{
    const Engine &engine =
        EngineRegistry::instance().engine(config.engine);
    std::shared_ptr<const CompiledPattern> compiled =
        compiledFor(config, engine);

    SearchResult result;
    result.patterns = *compiled->set;

    ChunkedScanOptions opts;
    opts.chunkSize = config.chunkSize;
    opts.threads = effectiveThreads(config);
    ChunkedScanner scanner(engine, compiled, opts);

    // Chunk-capable engines compile SiteOrder sets (no reversed-stream
    // patterns), so a hit's window is local to the chunk buffer that
    // reported it: verify per chunk, then lift start to global.
    ChunkObserver verify = [&](const ChunkScanView &chunk) {
        size_t dropped = 0;
        std::vector<OffTargetHit> hits =
            hitsFromEvents(chunk.buffer, result.patterns, chunk.events,
                           /*drop_unverified=*/false, &dropped);
        result.droppedEvents += dropped;
        for (OffTargetHit hit : hits) {
            hit.start += chunk.bufferStart;
            result.hits.push_back(hit);
        }
    };

    genome::FastaStreamReader reader(fasta);
    result.run = scanner.scanStream(reader, verify);

    // Chunks arrive in stream order; restore the (guide, start,
    // strand) order hitsFromEvents gives a whole-genome verify.
    std::sort(result.hits.begin(), result.hits.end(),
              [](const OffTargetHit &a, const OffTargetHit &b) {
                  if (a.guide != b.guide)
                      return a.guide < b.guide;
                  if (a.start != b.start)
                      return a.start < b.start;
                  return a.strand < b.strand;
              });
    result.run.metrics["events.dropped"] =
        static_cast<double>(result.droppedEvents);
    annotate(result.run);
    return result;
}

size_t
SearchSession::compileCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return compiles_;
}

size_t
SearchSession::cacheHits() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return cacheHits_;
}

void
SearchSession::clearCache()
{
    std::lock_guard<std::mutex> lock(mutex_);
    cache_.clear();
}

} // namespace crispr::core
