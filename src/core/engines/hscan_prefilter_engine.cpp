/** @file Engine adapter: the PAM-anchored prefilter + confirm engine. */

#include <memory>

#include "common/stopwatch.hpp"
#include "core/engine_registry.hpp"
#include "core/engines/adapters.hpp"
#include "hscan/prefilter.hpp"

namespace crispr::core {
namespace {

class HscanPrefilterEngine final : public Engine
{
  public:
    EngineKind kind() const override
    {
        return EngineKind::HscanPrefilter;
    }
    const char *name() const override { return "hscan-prefilter"; }
    bool supportsChunkedScan() const override { return true; }

  protected:
    struct State
    {
        hscan::PrefilterMatcher matcher;
    };

    std::shared_ptr<const void>
    compileState(const PatternSet &set, const EngineParams &,
                 common::MetricsRegistry &metrics) const override
    {
        auto state = std::make_shared<State>(
            State{hscan::PrefilterMatcher(set.specsForStream(false))});
        metrics.gauge("prefilter.shapes")
            .set(static_cast<double>(state->matcher.shapeCount()));
        return state;
    }

    void
    scanImpl(const CompiledPattern &compiled, const SequenceView &view,
             const ScanOptions &options, EngineRun &run,
             common::MetricsRegistry &metrics) const override
    {
        // The matcher accumulates per-run stats; scan a copy so one
        // compilation serves concurrent scans.
        hscan::PrefilterMatcher matcher =
            compiled.stateAs<State>().matcher;
        matcher.setSimdTier(hscan::resolveSimdTier(options.simdTier));
        genome::Sequence storage;
        const genome::Sequence &g = view.sequence(storage);
        Stopwatch timer;
        run.events = matcher.scanAll(g);
        run.timing.hostSeconds = timer.seconds();
        run.timing.kernelSeconds = run.timing.hostSeconds;
        run.timing.totalSeconds = run.timing.hostSeconds;
        metrics.gauge("scan.simd_tier")
            .set(hscan::simdTierGaugeValue(matcher.simdTier()));
        metrics.counter("scan.prefilter.anchors_probed")
            .inc(matcher.stats().anchorsProbed);
        metrics.counter("scan.prefilter.anchors_hit")
            .inc(matcher.stats().anchorsHit);
        metrics.counter("scan.prefilter.verifications")
            .inc(matcher.stats().verifications);
    }
};

} // namespace

void
registerHscanPrefilterEngine(EngineRegistry &registry)
{
    registry.add(std::make_unique<HscanPrefilterEngine>());
}

} // namespace crispr::core
