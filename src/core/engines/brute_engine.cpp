/** @file Engine adapter: the golden O(n*L) brute-force verifier. */

#include <memory>

#include "baselines/brute.hpp"
#include "common/stopwatch.hpp"
#include "core/engine_registry.hpp"
#include "core/engines/adapters.hpp"

namespace crispr::core {
namespace {

class BruteEngine final : public Engine
{
  public:
    EngineKind kind() const override { return EngineKind::Brute; }
    const char *name() const override { return "brute-force"; }
    bool supportsChunkedScan() const override { return true; }

  protected:
    struct State
    {
        std::vector<automata::HammingSpec> specs;
    };

    std::shared_ptr<const void>
    compileState(const PatternSet &set, const EngineParams &,
                 common::MetricsRegistry &) const override
    {
        auto state = std::make_shared<State>();
        state->specs = set.specsForStream(false);
        return state;
    }

    void
    scanImpl(const CompiledPattern &compiled, const SequenceView &view,
             const ScanOptions &, EngineRun &run,
             common::MetricsRegistry &) const override
    {
        const State &state = compiled.stateAs<State>();
        genome::Sequence storage;
        const genome::Sequence &g = view.sequence(storage);
        Stopwatch timer;
        run.events = baselines::bruteForceScan(g, state.specs);
        run.timing.hostSeconds = timer.seconds();
        run.timing.kernelSeconds = run.timing.hostSeconds;
        run.timing.totalSeconds = run.timing.hostSeconds;
    }
};

} // namespace

void
registerBruteEngine(EngineRegistry &registry)
{
    registry.add(std::make_unique<BruteEngine>());
}

} // namespace crispr::core
