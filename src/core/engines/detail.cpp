#include "core/engines/detail.hpp"

#include <algorithm>

#include "genome/alphabet.hpp"
#include "hscan/multipattern.hpp"

namespace crispr::core::detail {

genome::Sequence
reversedStream(const genome::Sequence &g)
{
    std::vector<uint8_t> codes(g.size());
    for (size_t i = 0; i < g.size(); ++i)
        codes[g.size() - 1 - i] = g[i];
    return genome::Sequence(std::move(codes));
}

automata::Nfa
unionNfaOf(const std::vector<automata::HammingSpec> &specs)
{
    std::vector<automata::Nfa> nfas;
    nfas.reserve(specs.size());
    for (const automata::HammingSpec &s : specs)
        nfas.push_back(automata::buildHammingNfa(s));
    return automata::unionNfas(nfas);
}

std::vector<automata::ReportEvent>
fastEvents(const genome::Sequence &stream,
           const std::vector<automata::HammingSpec> &specs)
{
    if (specs.empty())
        return {};
    hscan::Database db = hscan::Database::compile(specs);
    hscan::Scanner scanner(db);
    auto events = scanner.scanAll(stream);
    automata::normalizeEvents(events);
    return events;
}

void
histogramOf(const genome::Sequence &g, uint64_t *hist)
{
    std::fill(hist, hist + genome::kNumSymbols, 0);
    for (size_t i = 0; i < g.size(); ++i)
        ++hist[g[i]];
}

} // namespace crispr::core::detail
