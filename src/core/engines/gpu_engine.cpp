/** @file Engine adapter: iNFAnt2 functional sim + SIMT timing model. */

#include <memory>

#include "common/stopwatch.hpp"
#include "core/engine_registry.hpp"
#include "core/engines/adapters.hpp"
#include "core/engines/detail.hpp"
#include "gpu/infant2.hpp"

namespace crispr::core {
namespace {

class GpuInfant2Engine final : public Engine
{
  public:
    EngineKind kind() const override { return EngineKind::GpuInfant2; }
    const char *name() const override { return "infant2-gpu"; }

  protected:
    struct State
    {
        gpu::Infant2Engine engine; //!< prototype; copied per scan
        std::vector<automata::HammingSpec> specs;
    };

    std::shared_ptr<const void>
    compileState(const PatternSet &set, const EngineParams &params,
                 common::MetricsRegistry &metrics) const override
    {
        auto specs = set.specsForStream(false);
        automata::Nfa nfa = detail::unionNfaOf(specs);
        const size_t overlap = set.siteLength() + 2;
        auto state = std::make_shared<State>(State{
            gpu::Infant2Engine(nfa, params.gpuModel, params.gpuChunk,
                               overlap),
            std::move(specs)});
        metrics.gauge("compile.states")
            .set(static_cast<double>(nfa.size()));
        metrics.gauge("gpu.transitions")
            .set(static_cast<double>(
                state->engine.graph().totalTransitions()));
        metrics.gauge("gpu.max_list")
            .set(static_cast<double>(
                state->engine.graph().maxListLength()));
        return state;
    }

    void
    scanImpl(const CompiledPattern &compiled, const SequenceView &view,
             const ScanOptions &, EngineRun &run,
             common::MetricsRegistry &metrics) const override
    {
        const State &state = compiled.stateAs<State>();
        const EngineParams &params = compiled.params;
        genome::Sequence storage;
        const genome::Sequence &g = view.sequence(storage);

        gpu::Infant2Time time;
        if (g.size() <= params.fullSimSymbolLimit) {
            // scanAll mutates the engine's work counters; run a copy.
            gpu::Infant2Engine engine = state.engine;
            Stopwatch timer;
            run.events = engine.scanAll(g);
            run.timing.hostSeconds = timer.seconds();
            time = engine.estimateTime();
            metrics.counter("gpu.transitions_fetched")
                .inc(engine.work().transitionsFetched);
            metrics.counter("gpu.transitions_taken")
                .inc(engine.work().transitionsTaken);
        } else {
            Stopwatch timer;
            run.events = detail::fastEvents(g, state.specs);
            run.timing.hostSeconds = timer.seconds();
            uint64_t hist[genome::kNumSymbols];
            detail::histogramOf(g, hist);
            const size_t overlap = compiled.set->siteLength() + 2;
            gpu::Infant2Work work = gpu::workFromHistogram(
                state.engine.graph(), hist, g.size(), params.gpuChunk,
                overlap);
            work.reportEvents = run.events.size();
            time = gpu::estimateInfant2Time(work, state.engine.graph(),
                                            g.size(), params.gpuModel);
            metrics.counter("gpu.transitions_fetched")
                .inc(work.transitionsFetched);
            run.notes = "analytic timing (genome over full-sim limit)";
        }
        run.timing.modelKernelSeconds = time.kernelSeconds;
        run.timing.modelTotalSeconds = time.totalSeconds();
        run.timing.kernelSeconds = time.kernelSeconds;
        run.timing.totalSeconds = time.totalSeconds();
    }
};

} // namespace

void
registerGpuInfant2Engine(EngineRegistry &registry)
{
    registry.add(std::make_unique<GpuInfant2Engine>());
}

} // namespace crispr::core
