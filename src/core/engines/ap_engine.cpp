/** @file Engine adapter: AP mismatch-matrix design (STEs only). */

#include <memory>

#include "ap/capacity.hpp"
#include "ap/simulator.hpp"
#include "automata/builders.hpp"
#include "common/stopwatch.hpp"
#include "core/engine_registry.hpp"
#include "core/engines/adapters.hpp"
#include "core/engines/detail.hpp"

namespace crispr::core {
namespace {

class ApEngine final : public Engine
{
  public:
    EngineKind kind() const override { return EngineKind::Ap; }
    const char *name() const override { return "ap"; }

  protected:
    struct State
    {
        ap::Placement placement;
        ap::ApMachine machine;
        std::vector<automata::HammingSpec> specs;
    };

    std::shared_ptr<const void>
    compileState(const PatternSet &set, const EngineParams &params,
                 common::MetricsRegistry &metrics) const override
    {
        auto state = std::make_shared<State>();
        state->specs = set.specsForStream(false);

        // Placement of per-pattern automata (capacity model
        // granularity).
        std::vector<ap::MachineStats> machine_stats;
        machine_stats.reserve(state->specs.size());
        for (const automata::HammingSpec &s : state->specs) {
            ap::MachineStats ms;
            ms.stes = automata::hammingNfaStates(
                s.masks.size(), s.maxMismatches, s.mismatchLo,
                s.mismatchHi);
            machine_stats.push_back(ms);
        }
        state->placement =
            ap::placeMachines(machine_stats, params.apSpec);
        metrics.gauge("compile.states")
            .set(static_cast<double>(state->placement.stes));
        metrics.gauge("ap.stes")
            .set(static_cast<double>(state->placement.stes));
        metrics.gauge("ap.blocks")
            .set(static_cast<double>(state->placement.blocksUsed));
        metrics.gauge("ap.chips").set(state->placement.chipsUsed);
        metrics.gauge("ap.passes").set(state->placement.passes);
        metrics.gauge("ap.utilization")
            .set(state->placement.utilization);

        state->machine =
            ap::fromNfa(detail::unionNfaOf(state->specs));
        return state;
    }

    void
    scanImpl(const CompiledPattern &compiled, const SequenceView &view,
             const ScanOptions &, EngineRun &run,
             common::MetricsRegistry &metrics) const override
    {
        const State &state = compiled.stateAs<State>();
        const EngineParams &params = compiled.params;
        genome::Sequence storage;
        const genome::Sequence &g = view.sequence(storage);

        double kernel = 0.0;
        uint64_t events_count = 0;
        Stopwatch timer;
        if (g.size() <= params.fullSimSymbolLimit) {
            ap::ApSimulator sim(state.machine, params.apSimConfig);
            ap::ApRunStats stats =
                sim.run(g.codes(), [&](uint32_t id, uint64_t end) {
                    run.events.push_back(
                        automata::ReportEvent{id, end});
                });
            automata::normalizeEvents(run.events);
            events_count = stats.reportEvents;
            kernel =
                sim.kernelSeconds(stats) * state.placement.passes;
            metrics.counter("ap.stall_cycles")
                .inc(stats.stallCycles);
            metrics.counter("ap.reporting_cycles")
                .inc(stats.reportingCycles);
        } else {
            run.events = detail::fastEvents(g, state.specs);
            events_count = run.events.size();
            kernel = static_cast<double>(g.size()) /
                     params.apSpec.clockHz * state.placement.passes;
            run.notes = "analytic timing (genome over full-sim limit)";
        }
        run.timing.hostSeconds = timer.seconds();

        ap::ApTimeBreakdown t =
            ap::estimateRun(g.size(), events_count,
                            state.placement.passes, params.apSpec);
        run.timing.modelKernelSeconds = kernel;
        run.timing.modelTotalSeconds =
            t.configureSeconds + kernel + t.outputSeconds;
        run.timing.kernelSeconds = run.timing.modelKernelSeconds;
        run.timing.totalSeconds = run.timing.modelTotalSeconds;
    }
};

} // namespace

void
registerApEngine(EngineRegistry &registry)
{
    registry.add(std::make_unique<ApEngine>());
}

} // namespace crispr::core
