/** @file Engine adapter: FPGA spatial fabric sim + resource model. */

#include <memory>

#include "common/stopwatch.hpp"
#include "core/engine_registry.hpp"
#include "core/engines/adapters.hpp"
#include "core/engines/detail.hpp"
#include "fpga/fabric.hpp"

namespace crispr::core {
namespace {

class FpgaEngine final : public Engine
{
  public:
    EngineKind kind() const override { return EngineKind::Fpga; }
    const char *name() const override { return "fpga"; }

  protected:
    struct State
    {
        fpga::FpgaFabric fabric; //!< synthesised design; copied per scan
        std::vector<automata::HammingSpec> specs;
    };

    std::shared_ptr<const void>
    compileState(const PatternSet &set, const EngineParams &params,
                 common::MetricsRegistry &metrics) const override
    {
        auto specs = set.specsForStream(false);
        auto state = std::make_shared<State>(State{
            fpga::FpgaFabric(detail::unionNfaOf(specs),
                             params.fpgaSpec),
            std::move(specs)});
        const auto &res = state->fabric.resources();
        // One flip-flop per mapped STE: the natural state count.
        metrics.gauge("compile.states")
            .set(static_cast<double>(res.flipflops));
        metrics.gauge("fpga.luts")
            .set(static_cast<double>(res.luts));
        metrics.gauge("fpga.ffs")
            .set(static_cast<double>(res.flipflops));
        metrics.gauge("fpga.clock_mhz").set(res.clockHz / 1e6);
        metrics.gauge("fpga.passes").set(res.passes);
        metrics.gauge("fpga.lut_util").set(res.lutUtilization);
        return state;
    }

    void
    scanImpl(const CompiledPattern &compiled, const SequenceView &view,
             const ScanOptions &, EngineRun &run,
             common::MetricsRegistry &) const override
    {
        const State &state = compiled.stateAs<State>();
        const EngineParams &params = compiled.params;
        genome::Sequence storage;
        const genome::Sequence &g = view.sequence(storage);

        Stopwatch timer;
        if (g.size() <= params.fullSimSymbolLimit) {
            fpga::FpgaFabric fabric = state.fabric;
            run.events = fabric.scanAll(g);
        } else {
            run.events = detail::fastEvents(g, state.specs);
            run.notes = "analytic timing (genome over full-sim limit)";
        }
        run.timing.hostSeconds = timer.seconds();

        fpga::FpgaTimeBreakdown t =
            state.fabric.timeBreakdown(g.size());
        run.timing.modelKernelSeconds = t.kernelSeconds;
        run.timing.modelTotalSeconds = t.totalSeconds();
        run.timing.kernelSeconds = t.kernelSeconds;
        run.timing.totalSeconds = t.totalSeconds();
    }
};

} // namespace

void
registerFpgaEngine(EngineRegistry &registry)
{
    registry.add(std::make_unique<FpgaEngine>());
}

} // namespace crispr::core
