/** @file Engine adapter: the homogeneous-NFA reference interpreter. */

#include <memory>

#include "common/stopwatch.hpp"
#include "core/engine_registry.hpp"
#include "core/engines/adapters.hpp"
#include "core/engines/detail.hpp"

namespace crispr::core {
namespace {

class ReferenceEngine final : public Engine
{
  public:
    EngineKind kind() const override { return EngineKind::Reference; }
    const char *name() const override { return "nfa-reference"; }
    bool supportsChunkedScan() const override { return true; }
    bool supportsSerialization() const override { return true; }

  protected:
    struct State
    {
        automata::Nfa nfa;
    };

    std::shared_ptr<const void>
    compileState(const PatternSet &set, const EngineParams &,
                 common::MetricsRegistry &metrics) const override
    {
        auto state = std::make_shared<State>();
        state->nfa = detail::unionNfaOf(set.specsForStream(false));
        metrics.gauge("compile.states")
            .set(static_cast<double>(state->nfa.size()));
        metrics.gauge("nfa.states")
            .set(static_cast<double>(state->nfa.size()));
        metrics.gauge("nfa.edges")
            .set(static_cast<double>(state->nfa.edgeCount()));
        return state;
    }

    common::Expected<std::vector<uint8_t>>
    serializeStateImpl(const CompiledPattern &compiled) const override
    {
        return compiled.stateAs<State>().nfa.encode();
    }

    common::Expected<std::shared_ptr<const void>>
    deserializeStateImpl(const PatternSet &, const EngineParams &,
                         std::span<const uint8_t> payload,
                         common::MetricsRegistry &metrics) const override
    {
        auto nfa = automata::Nfa::decode(payload);
        if (!nfa.ok()) {
            common::Error err = nfa.error();
            return std::move(err).withContext("engine", name());
        }
        auto state = std::make_shared<State>();
        state->nfa = std::move(nfa).value();
        metrics.gauge("compile.states")
            .set(static_cast<double>(state->nfa.size()));
        metrics.gauge("nfa.states")
            .set(static_cast<double>(state->nfa.size()));
        metrics.gauge("nfa.edges")
            .set(static_cast<double>(state->nfa.edgeCount()));
        return std::shared_ptr<const void>(std::move(state));
    }

    void
    scanImpl(const CompiledPattern &compiled, const SequenceView &view,
             const ScanOptions &, EngineRun &run,
             common::MetricsRegistry &metrics) const override
    {
        const State &state = compiled.stateAs<State>();
        Stopwatch timer;
        automata::NfaInterpreter interp(state.nfa);
        interp.scan(view.codes(), [&](uint32_t id, uint64_t end) {
            run.events.push_back(automata::ReportEvent{id, end});
        });
        automata::normalizeEvents(run.events);
        run.timing.hostSeconds = timer.seconds();
        run.timing.kernelSeconds = run.timing.hostSeconds;
        run.timing.totalSeconds = run.timing.hostSeconds;
        metrics.counter("nfa.activations")
            .inc(interp.activationCount());
    }
};

} // namespace

void
registerReferenceEngine(EngineRegistry &registry)
{
    registry.add(std::make_unique<ReferenceEngine>());
}

} // namespace crispr::core
