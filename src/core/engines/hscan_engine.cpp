/** @file Engine adapters: the HScan CPU engine (auto / forced-DFA /
 *  forced-bit-parallel scan paths — three registered kinds, one
 *  adapter class). */

#include <memory>

#include "common/stopwatch.hpp"
#include "core/engine_registry.hpp"
#include "core/engines/adapters.hpp"
#include "hscan/multipattern.hpp"

namespace crispr::core {
namespace {

class HscanEngine final : public Engine
{
  public:
    HscanEngine(EngineKind kind, const char *name, hscan::ScanMode mode)
        : kind_(kind), name_(name), mode_(mode)
    {
    }

    EngineKind kind() const override { return kind_; }
    const char *name() const override { return name_; }
    bool supportsChunkedScan() const override { return true; }
    bool supportsSerialization() const override { return true; }

  protected:
    struct State
    {
        hscan::Database db;
        std::string info;
    };

    std::shared_ptr<const void>
    compileState(const PatternSet &set, const EngineParams &params,
                 common::MetricsRegistry &metrics) const override
    {
        hscan::DatabaseOptions opts = params.hscanOpts;
        if (mode_ != hscan::ScanMode::Auto)
            opts.mode = mode_;
        auto state = std::make_shared<State>(State{
            hscan::Database::compile(set.specsForStream(false), opts),
            ""});
        state->info = state->db.info();
        metrics.gauge("hscan.dfa_path")
            .set(state->db.effectiveMode() == hscan::ScanMode::Dfa
                     ? 1.0
                     : 0.0);
        if (state->db.dfaPrototype()) {
            const auto &dfa = state->db.dfaPrototype()->dfa();
            metrics.gauge("compile.states")
                .set(static_cast<double>(dfa.size()));
            metrics.gauge("hscan.dfa_states")
                .set(static_cast<double>(dfa.size()));
            metrics.gauge("hscan.dfa_bytes")
                .set(static_cast<double>(dfa.tableBytes()));
        }
        return state;
    }

    common::Expected<std::vector<uint8_t>>
    serializeStateImpl(const CompiledPattern &compiled) const override
    {
        return compiled.stateAs<State>().db.serializeCompiled();
    }

    common::Expected<std::shared_ptr<const void>>
    deserializeStateImpl(const PatternSet &, const EngineParams &,
                         std::span<const uint8_t> payload,
                         common::MetricsRegistry &metrics) const override
    {
        auto db = hscan::Database::deserializeCompiled(payload);
        if (!db.ok()) {
            common::Error err = db.error();
            return std::move(err).withContext("engine", name());
        }
        // A forced-mode engine must never scan through the other path,
        // even if a blob compiled by a sibling kind is handed to it.
        if (mode_ != hscan::ScanMode::Auto &&
            db.value().effectiveMode() != mode_)
            return common::Error(
                       common::ErrorCode::InvalidArgument,
                       strprintf("blob scan path does not match "
                                 "engine %s",
                                 name()))
                .withContext("engine", name());
        auto state =
            std::make_shared<State>(State{std::move(db).value(), ""});
        state->info = state->db.info();
        metrics.gauge("hscan.dfa_path")
            .set(state->db.effectiveMode() == hscan::ScanMode::Dfa
                     ? 1.0
                     : 0.0);
        if (state->db.dfaPrototype()) {
            const auto &dfa = state->db.dfaPrototype()->dfa();
            metrics.gauge("compile.states")
                .set(static_cast<double>(dfa.size()));
            metrics.gauge("hscan.dfa_states")
                .set(static_cast<double>(dfa.size()));
            metrics.gauge("hscan.dfa_bytes")
                .set(static_cast<double>(dfa.tableBytes()));
        }
        return std::shared_ptr<const void>(std::move(state));
    }

    void
    scanImpl(const CompiledPattern &compiled, const SequenceView &view,
             const ScanOptions &options, EngineRun &run,
             common::MetricsRegistry &metrics) const override
    {
        const State &state = compiled.stateAs<State>();
        run.notes = state.info;
        Stopwatch timer;
        hscan::Scanner scanner(state.db, options.simdTier);
        scanner.scan(view.codes(), [&](uint32_t id, uint64_t end) {
            run.events.push_back(automata::ReportEvent{id, end});
        });
        automata::normalizeEvents(run.events);
        run.timing.hostSeconds = timer.seconds();
        run.timing.kernelSeconds = run.timing.hostSeconds;
        run.timing.totalSeconds = run.timing.hostSeconds;
        metrics.gauge("scan.simd_tier")
            .set(hscan::simdTierGaugeValue(scanner.simdTier()));
    }

  private:
    EngineKind kind_;
    const char *name_;
    hscan::ScanMode mode_;
};

} // namespace

void
registerHscanEngines(EngineRegistry &registry)
{
    registry.add(std::make_unique<HscanEngine>(
        EngineKind::HscanAuto, "hscan", hscan::ScanMode::Auto));
    registry.add(std::make_unique<HscanEngine>(
        EngineKind::HscanDfa, "hscan-dfa", hscan::ScanMode::Dfa));
    registry.add(std::make_unique<HscanEngine>(
        EngineKind::HscanBitParallel, "hscan-bitparallel",
        hscan::ScanMode::BitParallel));
}

} // namespace crispr::core
