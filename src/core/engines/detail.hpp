/**
 * @file
 * Helpers shared by the built-in engine adapters (internal header).
 */

#ifndef CRISPR_CORE_ENGINES_DETAIL_HPP_
#define CRISPR_CORE_ENGINES_DETAIL_HPP_

#include <vector>

#include "automata/builders.hpp"
#include "automata/interp.hpp"
#include "genome/sequence.hpp"

namespace crispr::core::detail {

/** Reverse (not complement) of a genome, for PamFirst second passes. */
genome::Sequence reversedStream(const genome::Sequence &g);

/** Union mismatch-matrix NFA over a spec list. */
automata::Nfa
unionNfaOf(const std::vector<automata::HammingSpec> &specs);

/**
 * Functionally-equivalent fast event source (HScan auto path), used by
 * the device engines when the input exceeds the full-simulation limit.
 */
std::vector<automata::ReportEvent>
fastEvents(const genome::Sequence &stream,
           const std::vector<automata::HammingSpec> &specs);

/** Symbol histogram of a stream. */
void histogramOf(const genome::Sequence &g, uint64_t *hist);

} // namespace crispr::core::detail

#endif // CRISPR_CORE_ENGINES_DETAIL_HPP_
