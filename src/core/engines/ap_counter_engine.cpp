/** @file Engine adapter: AP counter design (PamFirst orientation;
 *  forward + reversed genome passes). */

#include <memory>

#include "ap/capacity.hpp"
#include "ap/simulator.hpp"
#include "common/stopwatch.hpp"
#include "core/engine_registry.hpp"
#include "core/engines/adapters.hpp"
#include "core/engines/detail.hpp"

namespace crispr::core {
namespace {

class ApCounterEngine final : public Engine
{
  public:
    EngineKind kind() const override { return EngineKind::ApCounter; }
    const char *name() const override { return "ap-counter"; }

    Orientation
    requiredOrientation() const override
    {
        return Orientation::PamFirst;
    }

  protected:
    struct State
    {
        ap::ApMachine forward;
        ap::ApMachine reversed;
        bool anyReversed = false;
        ap::Placement placement;
    };

    std::shared_ptr<const void>
    compileState(const PatternSet &set, const EngineParams &params,
                 common::MetricsRegistry &metrics) const override
    {
        auto state = std::make_shared<State>();

        // Build one counter machine per pattern, merged per stream.
        std::vector<ap::MachineStats> machine_stats;
        for (const Pattern &p : set.patterns) {
            ap::ApMachine m = ap::buildCounterMachine(p.spec);
            machine_stats.push_back(m.stats());
            if (p.reversedStream) {
                state->anyReversed = true;
                ap::mergeMachines(state->reversed, m);
            } else {
                ap::mergeMachines(state->forward, m);
            }
        }
        state->placement =
            ap::placeMachines(machine_stats, params.apSpec);
        metrics.gauge("compile.states")
            .set(static_cast<double>(state->placement.stes));
        metrics.gauge("ap.stes")
            .set(static_cast<double>(state->placement.stes));
        metrics.gauge("ap.counters")
            .set(static_cast<double>(state->placement.counters));
        metrics.gauge("ap.gates")
            .set(static_cast<double>(state->placement.gates));
        metrics.gauge("ap.passes").set(state->placement.passes);
        return state;
    }

    void
    scanImpl(const CompiledPattern &compiled, const SequenceView &view,
             const ScanOptions &, EngineRun &run,
             common::MetricsRegistry &) const override
    {
        const State &state = compiled.stateAs<State>();
        const EngineParams &params = compiled.params;
        const PatternSet &set = *compiled.set;
        genome::Sequence storage;
        const genome::Sequence &g = view.sequence(storage);

        const genome::Sequence reversed =
            state.anyReversed ? detail::reversedStream(g)
                              : genome::Sequence();
        const uint64_t total_symbols =
            g.size() + (state.anyReversed ? reversed.size() : 0);

        Stopwatch timer;
        uint64_t total_cycles = 0;
        uint64_t events_count = 0;
        if (total_symbols <= params.fullSimSymbolLimit) {
            auto run_stream = [&](const ap::ApMachine &m,
                                  const genome::Sequence &stream) {
                if (m.size() == 0 || stream.empty())
                    return;
                ap::ApSimulator sim(m, params.apSimConfig);
                ap::ApRunStats stats = sim.run(
                    stream.codes(), [&](uint32_t id, uint64_t end) {
                        run.events.push_back(
                            automata::ReportEvent{id, end});
                    });
                total_cycles += stats.totalCycles();
                events_count += stats.reportEvents;
            };
            run_stream(state.forward, g);
            run_stream(state.reversed, reversed);
            automata::normalizeEvents(run.events);
        } else {
            // Events via the verified fast path; note the counter
            // design's own overlap artefacts are then not represented.
            auto fwd =
                detail::fastEvents(g, set.specsForStream(false));
            auto rev = detail::fastEvents(reversed,
                                          set.specsForStream(true));
            run.events = std::move(fwd);
            run.events.insert(run.events.end(), rev.begin(),
                              rev.end());
            automata::normalizeEvents(run.events);
            events_count = run.events.size();
            total_cycles = total_symbols;
            run.notes = "analytic timing (genome over full-sim limit)";
        }
        run.timing.hostSeconds = timer.seconds();

        const double kernel = static_cast<double>(total_cycles) /
                              params.apSpec.clockHz *
                              state.placement.passes;
        ap::ApTimeBreakdown t =
            ap::estimateRun(total_symbols, events_count,
                            state.placement.passes, params.apSpec);
        run.timing.modelKernelSeconds = kernel;
        run.timing.modelTotalSeconds =
            t.configureSeconds + kernel + t.outputSeconds;
        run.timing.kernelSeconds = kernel;
        run.timing.totalSeconds = run.timing.modelTotalSeconds;
    }
};

} // namespace

void
registerApCounterEngine(EngineRegistry &registry)
{
    registry.add(std::make_unique<ApCounterEngine>());
}

} // namespace crispr::core
