/**
 * @file
 * Registration hooks of the built-in engine adapters. Each is defined
 * in its own translation unit under core/engines/ and registers the
 * adapter(s) for its platform; EngineRegistry::instance() invokes the
 * list below exactly once. Adding a built-in engine means adding one
 * translation unit and one line here — no dispatch code changes.
 */

#ifndef CRISPR_CORE_ENGINES_ADAPTERS_HPP_
#define CRISPR_CORE_ENGINES_ADAPTERS_HPP_

namespace crispr::core {

class EngineRegistry;

void registerBruteEngine(EngineRegistry &registry);
void registerReferenceEngine(EngineRegistry &registry);
void registerHscanEngines(EngineRegistry &registry);
void registerHscanPrefilterEngine(EngineRegistry &registry);
void registerGpuInfant2Engine(EngineRegistry &registry);
void registerFpgaEngine(EngineRegistry &registry);
void registerApEngine(EngineRegistry &registry);
void registerApCounterEngine(EngineRegistry &registry);
void registerCasOffinderEngine(EngineRegistry &registry);
void registerCasOtEngines(EngineRegistry &registry);

} // namespace crispr::core

#endif // CRISPR_CORE_ENGINES_ADAPTERS_HPP_
