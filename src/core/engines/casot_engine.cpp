/** @file Engine adapters: CasOT baseline (direct and seed-indexed
 *  modes — two registered kinds, one adapter class). */

#include <memory>

#include "baselines/casot.hpp"
#include "core/engine_registry.hpp"
#include "core/engines/adapters.hpp"

namespace crispr::core {
namespace {

class CasOtEngine final : public Engine
{
  public:
    CasOtEngine(EngineKind kind, const char *name,
                baselines::CasOtMode mode)
        : kind_(kind), name_(name), mode_(mode)
    {
    }

    EngineKind kind() const override { return kind_; }
    const char *name() const override { return name_; }
    bool supportsChunkedScan() const override { return true; }

  protected:
    struct State
    {
        std::vector<automata::HammingSpec> specs;
        baselines::CasOtConfig config;
    };

    std::shared_ptr<const void>
    compileState(const PatternSet &set, const EngineParams &params,
                 common::MetricsRegistry &) const override
    {
        auto state = std::make_shared<State>();
        state->specs = set.specsForStream(false);
        state->config = params.casotConfig;
        state->config.mode = mode_;
        return state;
    }

    void
    scanImpl(const CompiledPattern &compiled, const SequenceView &view,
             const ScanOptions &, EngineRun &run,
             common::MetricsRegistry &metrics) const override
    {
        const State &state = compiled.stateAs<State>();
        genome::Sequence storage;
        const genome::Sequence &g = view.sequence(storage);
        baselines::CasOtResult r =
            baselines::casOtScan(g, state.specs, state.config);
        run.events = std::move(r.events);
        run.timing.hostSeconds = r.seconds;
        run.timing.kernelSeconds = r.seconds;
        run.timing.totalSeconds = r.seconds;
        metrics.counter("casot.pam_sites").inc(r.work.pamSites);
        metrics.counter("casot.bases").inc(r.work.basesCompared);
        metrics.counter("casot.seed_variants")
            .inc(r.work.seedVariants);
        metrics.counter("casot.lookups").inc(r.work.indexLookups);
        metrics.counter("casot.verifications")
            .inc(r.work.verifications);
        metrics.gauge("casot.perl_adjusted_s")
            .set(r.perlAdjustedSeconds(state.config));
    }

  private:
    EngineKind kind_;
    const char *name_;
    baselines::CasOtMode mode_;
};

} // namespace

void
registerCasOtEngines(EngineRegistry &registry)
{
    registry.add(std::make_unique<CasOtEngine>(
        EngineKind::CasOt, "casot", baselines::CasOtMode::Direct));
    registry.add(std::make_unique<CasOtEngine>(
        EngineKind::CasOtIndexed, "casot-indexed",
        baselines::CasOtMode::Indexed));
}

} // namespace crispr::core
