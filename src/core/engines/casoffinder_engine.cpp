/** @file Engine adapter: Cas-OFFinder baseline (GPU device model). */

#include <memory>

#include "baselines/casoffinder.hpp"
#include "common/stopwatch.hpp"
#include "core/engine_registry.hpp"
#include "core/engines/adapters.hpp"

namespace crispr::core {
namespace {

class CasOffinderEngine final : public Engine
{
  public:
    EngineKind kind() const override { return EngineKind::CasOffinder; }
    const char *name() const override { return "casoffinder"; }
    bool supportsChunkedScan() const override { return true; }

  protected:
    struct State
    {
        std::vector<automata::HammingSpec> specs;
    };

    std::shared_ptr<const void>
    compileState(const PatternSet &set, const EngineParams &,
                 common::MetricsRegistry &) const override
    {
        auto state = std::make_shared<State>();
        state->specs = set.specsForStream(false);
        return state;
    }

    void
    scanImpl(const CompiledPattern &compiled, const SequenceView &view,
             const ScanOptions &, EngineRun &run,
             common::MetricsRegistry &metrics) const override
    {
        const State &state = compiled.stateAs<State>();
        genome::Sequence storage;
        const genome::Sequence &g = view.sequence(storage);
        Stopwatch timer;
        baselines::CasOffinderResult r =
            baselines::casOffinderScan(g, state.specs);
        run.events = std::move(r.events);
        run.timing.hostSeconds = timer.seconds();
        run.timing.modelKernelSeconds =
            compiled.params.casoffinderModel.kernelSeconds(r.work);
        run.timing.modelTotalSeconds =
            compiled.params.casoffinderModel.totalSeconds(r.work);
        run.timing.kernelSeconds = run.timing.modelKernelSeconds;
        run.timing.totalSeconds = run.timing.modelTotalSeconds;
        metrics.counter("casoffinder.pam_hits").inc(r.work.pamHits);
        metrics.counter("casoffinder.comparisons")
            .inc(r.work.comparisons);
        metrics.counter("casoffinder.bases")
            .inc(r.work.basesCompared);
    }
};

} // namespace

void
registerCasOffinderEngine(EngineRegistry &registry)
{
    registry.add(std::make_unique<CasOffinderEngine>());
}

} // namespace crispr::core
