#include "core/score.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"

namespace crispr::core {

namespace {

/** Hsu et al. 2013 per-position mismatch weights for 20-nt guides,
 *  index 0 = PAM-distal. Higher weight = more damaging mismatch. */
constexpr double kHsuWeights[20] = {
    0.000, 0.000, 0.014, 0.000, 0.000, 0.395, 0.317, 0.000, 0.389,
    0.079, 0.445, 0.508, 0.613, 0.851, 0.732, 0.828, 0.615, 0.804,
    0.685, 0.583,
};

double
weightAt(size_t pos, size_t guide_length)
{
    if (guide_length == 20)
        return kHsuWeights[pos];
    // Fallback: linear ramp from 0 (PAM-distal) to ~0.8 (PAM-proximal).
    if (guide_length <= 1)
        return 0.0;
    return 0.8 * static_cast<double>(pos) /
           static_cast<double>(guide_length - 1);
}

} // namespace

double
sitePenalty(const std::vector<size_t> &mismatch_positions,
            size_t guide_length)
{
    if (mismatch_positions.empty())
        return 1.0; // a perfect duplicate competes at full strength

    // Product of (1 - w_p) over mismatches ...
    double product = 1.0;
    for (size_t p : mismatch_positions) {
        CRISPR_ASSERT(p < guide_length);
        product *= 1.0 - weightAt(p, guide_length);
    }
    // ... damped by mean pairwise mismatch distance and count (the
    // published formula's second and third factors).
    const size_t n = mismatch_positions.size();
    double distance_term = 1.0;
    if (n > 1) {
        auto sorted = mismatch_positions;
        std::sort(sorted.begin(), sorted.end());
        const double mean_d =
            static_cast<double>(sorted.back() - sorted.front()) /
            static_cast<double>(n - 1);
        distance_term =
            1.0 / ((static_cast<double>(guide_length - 1) - mean_d) /
                       static_cast<double>(guide_length - 1) * 4.0 +
                   1.0);
    }
    const double count_term =
        1.0 / (static_cast<double>(n) * static_cast<double>(n));
    return product * distance_term * count_term;
}

std::vector<size_t>
hitMismatchPositions(const genome::Sequence &genome_seq,
                     const PatternSet &set, const OffTargetHit &hit)
{
    const Pattern *pattern = nullptr;
    for (const Pattern &p : set.patterns) {
        if (p.guideIndex == hit.guide && p.strand == hit.strand) {
            pattern = &p;
            break;
        }
    }
    if (!pattern)
        panic("hit references a (guide, strand) with no pattern");
    const automata::HammingSpec fwd =
        set.forwardSpec(pattern->spec.reportId);

    std::vector<size_t> positions;
    const size_t glen = set.guideLength;
    for (size_t j = 0; j < fwd.masks.size(); ++j) {
        if (genome::maskMatches(fwd.masks[j], genome_seq[hit.start + j]))
            continue;
        // Map site position to guide coordinates (5'->3').
        size_t guide_pos;
        if (hit.strand == Strand::Forward) {
            CRISPR_ASSERT(j < glen);
            guide_pos = j;
        } else {
            // Reverse-strand site: forward-coordinate position j maps
            // to guide position (siteLength-1-j) - pamLength.
            CRISPR_ASSERT(j >= set.pamLength);
            guide_pos = set.siteLength() - 1 - j;
            CRISPR_ASSERT(guide_pos < glen);
        }
        positions.push_back(guide_pos);
    }
    std::sort(positions.begin(), positions.end());
    return positions;
}

std::vector<GuideScore>
scoreGuides(const genome::Sequence &genome_seq,
            const std::vector<Guide> &guides, const SearchResult &result)
{
    std::vector<GuideScore> scores(guides.size());
    for (uint32_t gi = 0; gi < guides.size(); ++gi)
        scores[gi].guide = gi;

    for (const OffTargetHit &hit : result.hits) {
        CRISPR_ASSERT(hit.guide < scores.size());
        GuideScore &score = scores[hit.guide];
        if (hit.mismatches == 0) {
            ++score.onTargets;
            // The first perfect site is the intended target; further
            // duplicates compete at full penalty.
            if (score.onTargets > 1)
                score.penaltySum += 1.0;
            continue;
        }
        ++score.offTargets;
        score.penaltySum += sitePenalty(
            hitMismatchPositions(genome_seq, result.patterns, hit),
            result.patterns.guideLength);
    }
    for (GuideScore &score : scores)
        score.specificity = 100.0 / (1.0 + score.penaltySum);
    return scores;
}

} // namespace crispr::core
