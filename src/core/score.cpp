#include "core/score.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"

namespace crispr::core {

double
sitePenalty(const std::vector<size_t> &mismatch_positions,
            size_t guide_length)
{
    return sitePenaltyFromWeights(mismatch_positions,
                                  scoreWeightTable(guide_length));
}

std::vector<size_t>
hitMismatchPositions(const genome::Sequence &genome_seq,
                     const PatternSet &set, const OffTargetHit &hit)
{
    const Pattern *pattern = nullptr;
    for (const Pattern &p : set.patterns) {
        if (p.guideIndex == hit.guide && p.strand == hit.strand) {
            pattern = &p;
            break;
        }
    }
    if (!pattern)
        panic("hit references a (guide, strand) with no pattern");
    const automata::HammingSpec fwd =
        set.forwardSpec(pattern->spec.reportId);

    std::vector<size_t> positions;
    const size_t glen = set.guideLength;
    for (size_t j = 0; j < fwd.masks.size(); ++j) {
        if (genome::maskMatches(fwd.masks[j], genome_seq[hit.start + j]))
            continue;
        // Map site position to guide coordinates (5'->3').
        size_t guide_pos;
        if (hit.strand == Strand::Forward) {
            CRISPR_ASSERT(j < glen);
            guide_pos = j;
        } else {
            // Reverse-strand site: forward-coordinate position j maps
            // to guide position (siteLength-1-j) - pamLength.
            CRISPR_ASSERT(j >= set.pamLength);
            guide_pos = set.siteLength() - 1 - j;
            CRISPR_ASSERT(guide_pos < glen);
        }
        positions.push_back(guide_pos);
    }
    std::sort(positions.begin(), positions.end());
    return positions;
}

std::vector<GuideScore>
scoreGuides(const genome::Sequence &genome_seq,
            const std::vector<Guide> &guides, const SearchResult &result)
{
    std::vector<GuideScore> scores(guides.size());
    for (uint32_t gi = 0; gi < guides.size(); ++gi)
        scores[gi].guide = gi;

    for (const OffTargetHit &hit : result.hits) {
        CRISPR_ASSERT(hit.guide < scores.size());
        GuideScore &score = scores[hit.guide];
        if (hit.mismatches == 0) {
            ++score.onTargets;
            // The first perfect site is the intended target; further
            // duplicates compete at full penalty.
            if (score.onTargets > 1)
                score.penaltySum += 1.0;
            continue;
        }
        ++score.offTargets;
        score.penaltySum += sitePenalty(
            hitMismatchPositions(genome_seq, result.patterns, hit),
            result.patterns.guideLength);
    }
    for (GuideScore &score : scores)
        score.specificity = 100.0 / (1.0 + score.penaltySum);
    return scores;
}

std::vector<GuideScore>
scoreGuidesFromHits(size_t guide_count, const SearchResult &result)
{
    std::vector<GuideScore> scores(guide_count);
    for (uint32_t gi = 0; gi < guide_count; ++gi)
        scores[gi].guide = gi;

    for (const OffTargetHit &hit : result.hits) {
        CRISPR_ASSERT(hit.guide < scores.size());
        GuideScore &score = scores[hit.guide];
        if (hit.mismatches == 0) {
            ++score.onTargets;
            // A perfect site's in-scan penalty is exactly 1.0 (empty
            // mismatch set), matching scoreGuides' += 1.0 bit for bit.
            if (score.onTargets > 1)
                score.penaltySum += hit.penalty;
            continue;
        }
        ++score.offTargets;
        score.penaltySum += hit.penalty;
    }
    for (GuideScore &score : scores) {
        // Finite non-negative penalties guarantee an exact 100.0 for
        // penaltySum == 0.0 and never a NaN.
        CRISPR_ASSERT(score.penaltySum >= 0.0);
        score.specificity = 100.0 / (1.0 + score.penaltySum);
    }
    return scores;
}

} // namespace crispr::core
