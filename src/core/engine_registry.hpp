/**
 * @file
 * Engine registry: the single name -> adapter table the rest of the
 * library dispatches through. Each built-in adapter lives in its own
 * translation unit under core/engines/ and registers itself via a
 * registration hook the registry invokes once, lazily (function-based
 * rather than static-initialiser-based so adapters are never silently
 * dropped from static-library links). External backends register the
 * same way at startup:
 *
 *   core::EngineRegistry::instance().add(
 *       std::make_unique<MyEngine>());
 *
 * after which sessions, `core::search`, and the examples reach the new
 * engine with no change to core/.
 */

#ifndef CRISPR_CORE_ENGINE_REGISTRY_HPP_
#define CRISPR_CORE_ENGINE_REGISTRY_HPP_

#include <memory>
#include <mutex>
#include <string_view>
#include <vector>

#include "core/engine.hpp"

namespace crispr::core {

/** The process-wide engine table. Thread-safe. */
class EngineRegistry
{
  public:
    /** The singleton, with the built-in adapters registered. */
    static EngineRegistry &instance();

    /**
     * Register an adapter. Fatal if its kind or name collides with an
     * already-registered engine.
     */
    void add(std::unique_ptr<Engine> engine);

    /** The adapter for a kind; fatal when unregistered. */
    const Engine &engine(EngineKind kind) const;

    /** The adapter for a kind, or nullptr. */
    const Engine *find(EngineKind kind) const;

    /**
     * Probing alias of find(): the name callers should use when an
     * unregistered engine is an expected, recoverable condition (a
     * platform sweep, a fallback chain) rather than a config error —
     * degrade to a skipped row / the next engine instead of dying.
     */
    const Engine *tryFind(EngineKind kind) const { return find(kind); }

    /** The adapter with the given printable name, or nullptr. */
    const Engine *findByName(std::string_view name) const;

    /** Every registered kind, in registration (presentation) order. */
    std::vector<EngineKind> kinds() const;

  private:
    EngineRegistry() = default;

    mutable std::mutex mutex_;
    std::vector<std::unique_ptr<Engine>> engines_;
};

} // namespace crispr::core

#endif // CRISPR_CORE_ENGINE_REGISTRY_HPP_
