/**
 * @file
 * SearchService: the serving front end of the library. Callers submit
 * asynchronous search requests; the service coalesces requests that
 * share a compatible configuration (PAM, mismatch budget, strands,
 * engine chain, engine params) and the same resident genome into one
 * merged PatternSet, runs a single compile + chunked scan per batch
 * window, and demultiplexes the hits back to each requester by guide
 * ownership — so N concurrent single-guide requests cost one genome
 * pass instead of N. This is the paper's central throughput lever (one
 * automaton pass serves many gRNAs at once) turned into an API.
 *
 * @code
 *   core::SearchService service;           // windowed batching
 *   auto ref = service.store().loadFile("hg38.fa");
 *   core::RequestOptions req;
 *   req.genome = ref;
 *   req.config.maxMismatches = 3;
 *   auto f1 = service.submit({guideA}, req);   // these coalesce into
 *   auto f2 = service.submit({guideB}, req);   // one genome pass
 *   core::SearchResult r1 = f1.get(), r2 = f2.get();
 * @endcode
 *
 * Batching semantics (DESIGN.md "Serving layer"):
 *  - The coalescing key is (genome identity, guide length,
 *    engine + fallback chain, compileOptionsKey). Runtime options do
 *    not split batches; the batch runs with the runtime options of its
 *    earliest request.
 *  - Deadlines stay per-request: the batch scan runs under the most
 *    permissive member deadline (checked per chunk by the existing
 *    ChunkedScanner machinery), a request whose own deadline expires
 *    is completed with `timedOut` set, and a request already expired
 *    at dispatch completes immediately without costing a scan.
 *  - A batch whose merged compile or scan fails degrades to
 *    per-request serial execution (`service.batch_splits`), so one
 *    request's guides can never poison its batchmates.
 *  - Results are bit-identical to per-request search() calls: the
 *    merged pattern set is the concatenation of the members' sets, and
 *    hits/events/patterns are filtered and re-indexed per requester.
 *
 * Thread-safety: every public method may be called from any thread.
 */

#ifndef CRISPR_CORE_SERVICE_HPP_
#define CRISPR_CORE_SERVICE_HPP_

#include <chrono>
#include <condition_variable>
#include <functional>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/genome_store.hpp"
#include "core/search.hpp"

namespace crispr::core {

/** Service-wide batching options. */
struct ServiceOptions
{
    /**
     * Seconds a batch window stays open after the first pending
     * request arrives (more arrivals ride along). Negative = manual
     * mode: no dispatcher thread runs and requests accumulate until
     * drain() — the deterministic mode tests and benches use.
     */
    double batchWindowSeconds = 0.002;

    /** Dispatch early once this many requests are pending. */
    size_t maxBatchRequests = 64;

    /** Merged guides per scan; an oversized group splits into runs. */
    size_t maxBatchGuides = 4096;

    /**
     * Ahead-of-time pattern database directory (core/pattern_db.hpp).
     * When set, the service preloads every blob in it at construction
     * (`service.db_preloaded`) — the millisecond-restart path — and
     * every request whose own config names no databaseDir inherits
     * this one, so the per-batch sessions hit the warmed disk tier
     * instead of recompiling.
     */
    std::string databaseDir;
};

/** Per-request options: which genome to scan, and how. */
struct RequestOptions
{
    /** Decoded reference to scan (shared, immutable). */
    SharedSequence genome;

    /**
     * Alternative to `genome`: a FASTA path resolved through the
     * service's GenomeStore at submit time (load-once, LRU-cached).
     */
    std::string genomePath;

    /**
     * Compile options form the coalescing key; runtime options ride
     * along (the batch adopts its earliest request's runtime options,
     * except the deadline, which stays per-request).
     */
    SearchConfig config;
};

/** The batching search front end. */
class SearchService
{
  public:
    explicit SearchService(ServiceOptions options = {},
                           std::shared_ptr<GenomeStore> store = nullptr);

    /** Serves every still-pending request before returning. */
    ~SearchService();

    SearchService(const SearchService &) = delete;
    SearchService &operator=(const SearchService &) = delete;

    /**
     * Submit a search request. The future resolves when the request's
     * batch completes; get() throws ErrorException on failure, mirrors
     * SearchSession::search otherwise.
     */
    std::future<SearchResult> submit(std::vector<Guide> guides,
                                     RequestOptions options);

    /** Typed-error variant: the future carries Expected instead. */
    std::future<common::Expected<SearchResult>>
    trySubmit(std::vector<Guide> guides, RequestOptions options);

    /**
     * Dispatch every pending request on the caller's thread (the only
     * dispatch path in manual mode; also usable to cut a window
     * short). @return requests served.
     */
    size_t drain();

    /** Block until no request is pending or executing. */
    void flush();

    /** The genome cache requests resolve `genomePath` against. */
    GenomeStore &store() { return *store_; }
    std::shared_ptr<GenomeStore> sharedStore() { return store_; }

    /** Cumulative service.* (+ store.*) metrics. */
    std::map<std::string, double> metricsSnapshot() const;

    size_t requestCount() const { return requests_.value(); }
    /** Merged passes executed (a solo request still counts one). */
    size_t batchCount() const { return batches_.value(); }
    /** Requests that shared a genome pass with at least one other. */
    size_t coalescedCount() const { return coalesced_.value(); }
    /** Merged runs degraded to per-request serial execution. */
    size_t batchSplitCount() const { return batchSplits_.value(); }

  private:
    using Completion =
        std::function<void(common::Expected<SearchResult>)>;

    struct Pending
    {
        std::vector<Guide> guides;
        SharedSequence genome;
        SearchConfig config;
        Completion complete;
        std::chrono::steady_clock::time_point arrival;
    };

    void enqueue(std::vector<Guide> guides, RequestOptions options,
                 Completion complete);
    void loop();
    /** Group by coalescing key and execute each group. */
    void dispatch(std::vector<Pending> pending);
    /** Run one compatible group as one or more merged passes. */
    void executeGroup(std::vector<Pending> group);
    /** One merged compile+scan serving `members`, demuxed per member. */
    void executeMerged(std::vector<Pending> members);
    /** Per-request serial fallback after a failed merged run. */
    void executeSingle(Pending member);

    static std::string coalescingKey(const Pending &request);
    static common::Deadline
    combinedDeadline(const std::vector<Pending> &members);
    /** Empty timed-out result for a request expired before dispatch. */
    static SearchResult expiredResult(const Pending &member);
    /** Slice `batch` down to one member's guides, re-indexed. */
    static SearchResult demux(const SearchResult &batch, size_t offset,
                              size_t count, size_t batch_requests,
                              size_t batch_guides);

    const ServiceOptions options_;
    std::shared_ptr<GenomeStore> store_;

    mutable std::mutex mutex_;
    std::condition_variable cv_;     //!< wakes the dispatcher
    std::condition_variable idleCv_; //!< wakes flush()
    std::vector<Pending> queue_;
    size_t executing_ = 0;
    bool stop_ = false;
    bool flushRequested_ = false;
    std::thread worker_;

    mutable common::MetricsRegistry metrics_;
    common::Counter requests_;
    common::Counter batches_;
    common::Counter coalesced_;
    common::Counter batchSplits_;
    common::Counter expired_;
    common::Histogram batchSize_;
};

} // namespace crispr::core

#endif // CRISPR_CORE_SERVICE_HPP_
