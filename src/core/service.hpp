/**
 * @file
 * SearchService: the serving front end of the library. Callers submit
 * asynchronous search requests; the service coalesces requests that
 * share a compatible configuration (PAM, mismatch budget, strands,
 * engine chain, engine params) and the same resident genome into one
 * merged PatternSet, runs a single compile + chunked scan per batch
 * window, and demultiplexes the hits back to each requester by guide
 * ownership — so N concurrent single-guide requests cost one genome
 * pass instead of N. This is the paper's central throughput lever (one
 * automaton pass serves many gRNAs at once) turned into an API.
 *
 * @code
 *   core::SearchService service;           // windowed batching
 *   auto ref = service.store().loadFile("hg38.fa");
 *   core::RequestOptions req;
 *   req.genome = ref;
 *   req.config.maxMismatches = 3;
 *   auto f1 = service.submit({guideA}, req);   // these coalesce into
 *   auto f2 = service.submit({guideB}, req);   // one genome pass
 *   core::SearchResult r1 = f1.get(), r2 = f2.get();
 * @endcode
 *
 * Batching semantics (DESIGN.md "Serving layer"):
 *  - The coalescing key is (genome identity, guide length,
 *    engine + fallback chain, compileOptionsKey). Runtime options do
 *    not split batches; the batch runs with the runtime options of its
 *    earliest request.
 *  - Deadlines stay per-request: the batch scan runs under the most
 *    permissive member deadline (checked per chunk by the existing
 *    ChunkedScanner machinery), a request whose own deadline expires
 *    is completed with `timedOut` set, and a request already expired
 *    at dispatch completes immediately without costing a scan.
 *  - A batch whose merged compile or scan fails degrades to
 *    per-request serial execution (`service.batch_splits`), so one
 *    request's guides can never poison its batchmates.
 *  - Results are bit-identical to per-request search() calls: the
 *    merged pattern set is the concatenation of the members' sets, and
 *    hits/events/patterns are filtered and re-indexed per requester.
 *
 * Overload protection (DESIGN.md §12): the admission queue is bounded
 * in requests and bytes with a reject-new / drop-oldest policy, a
 * cost-model estimate rejects deadline-bearing requests that cannot
 * finish in time, sustained backlog flips the service into a
 * hysteresis-gated pressure state (zero batch window, engine=auto
 * pinned to its cheapest viable choice), per-engine circuit breakers
 * guard the fallback chain across batches, and health() exposes the
 * whole picture for readiness probes.
 *
 * Thread-safety: every public method may be called from any thread.
 */

#ifndef CRISPR_CORE_SERVICE_HPP_
#define CRISPR_CORE_SERVICE_HPP_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/genome_store.hpp"
#include "core/search.hpp"

namespace crispr::core {

/**
 * What happens when a request arrives and the admission queue is at
 * its request or byte bound (DESIGN.md §12).
 */
enum class AdmissionPolicy : uint8_t
{
    /** Refuse the new arrival with Error::overloaded (the default:
     *  callers with retry logic back off; queued work is preserved). */
    RejectNew,
    /** Admit the arrival and shed the oldest queued request(s) with
     *  Error::overloaded — freshest-work-wins, for callers whose old
     *  requests have stale deadlines anyway. */
    DropOldest,
};

/** Service-wide batching + admission options. */
struct ServiceOptions
{
    /**
     * Service-default execution layer (core/options.hpp): a submitted
     * request whose execution field is still at its built-in default
     * inherits the value set here (request > service default >
     * built-in; the precedence contract documented in crispr.hpp).
     * `scanRange` is exempt — it is result-affecting and stays
     * strictly per-request (the shard coordinator owns it).
     */
    ExecutionOptions defaults;

    /**
     * Seconds a batch window stays open after the first pending
     * request arrives (more arrivals ride along). Negative = manual
     * mode: no dispatcher thread runs and requests accumulate until
     * drain() — the deterministic mode tests and benches use. Under
     * queue pressure (see pressureHighWatermark) the dispatcher
     * shrinks the window to zero until the backlog recedes.
     */
    double batchWindowSeconds = 0.002;

    /** Dispatch early once this many requests are pending. */
    size_t maxBatchRequests = 64;

    /** Merged guides per scan; an oversized group splits into runs. */
    size_t maxBatchGuides = 4096;

    /**
     * Admission queue bound in requests (0 = unbounded). An arrival
     * past the bound is resolved per `admissionPolicy`; shed/rejected
     * requests complete promptly with Error::overloaded and never
     * cost a scan.
     */
    size_t maxQueueRequests = 4096;

    /**
     * Admission queue bound in queued work bytes — the sum of the
     * pending requests' genome sizes (0 = unbounded). Bounds memory
     * and scan backlog together for mixed genome sizes.
     */
    size_t maxQueueBytes = 0;

    /** Policy at either queue bound. */
    AdmissionPolicy admissionPolicy = AdmissionPolicy::RejectNew;

    /**
     * Cost-aware early rejection: estimate each arrival's scan cost
     * (engine_auto cost model x an EWMA of measured-vs-predicted scan
     * time) plus the estimated wait behind the current queue, and
     * reject a deadline-bearing request that cannot finish in time
     * (`service.rejected`) instead of burning a scan that will be
     * thrown away. Requests that are *already* expired at submit are
     * still admitted — they complete instantly as timed-out, which is
     * cheaper than an error path and keeps deadline semantics exact.
     */
    bool costAwareAdmission = true;

    /**
     * Queue depth at which the service enters the degraded "pressure"
     * state: the batch window collapses to zero and engine=auto
     * requests are pinned to the cost model's cheapest viable engine
     * (compile + scan) instead of its steady-state-fastest. 0 = never.
     * Hysteresis: pressure exits only when the queue drains to
     * pressureLowWatermark.
     */
    size_t pressureHighWatermark = 256;
    size_t pressureLowWatermark = 64;

    /** Circuit breakers for the per-batch sessions' fallback chains
     *  (one shared board per service; see core/breaker.hpp). */
    BreakerOptions breaker;

    /**
     * Ahead-of-time pattern database directory (core/pattern_db.hpp).
     * When set, the service preloads every blob in it at construction
     * (`service.db_preloaded`) — the millisecond-restart path — and
     * every request whose own config names no databaseDir inherits
     * this one, so the per-batch sessions hit the warmed disk tier
     * instead of recompiling.
     */
    std::string databaseDir;
};

/**
 * A point-in-time health snapshot (health()): what a readiness probe
 * or operator dashboard needs to decide "is this instance taking
 * traffic, and should it be".
 */
struct ServiceHealth
{
    size_t queueDepth = 0;       //!< admitted requests waiting
    size_t queuedBytes = 0;      //!< their summed genome bytes
    size_t executingBatches = 0; //!< dispatch cycles in flight
    double estWaitSeconds = 0.0; //!< predicted wait behind the queue
    bool pressured = false;      //!< degraded mode active
    bool accepting = true;       //!< queue bounds not currently hit
    size_t executorQueueDepth = 0; //!< process-wide pool backlog
    size_t storeBytes = 0;         //!< heap-decoded genome bytes
    /** Bytes resident via packed-file mmaps — shared across workers
     *  (one physical copy), reported separately from the decoded
     *  heap so operators can see the sharing win. */
    size_t storeMmapBytes = 0;
    size_t storeEntries = 0;
    /** Engine -> breaker state name ("closed"/"half_open"/"open"). */
    std::map<std::string, std::string> breakers;

    /** The readiness-probe verdict: accepting and not degraded. */
    bool ready() const { return accepting && !pressured; }
};

/** Per-request options: which genome to scan, and how. */
struct RequestOptions
{
    /** Decoded reference to scan (shared, immutable). */
    SharedSequence genome;

    /**
     * Alternative to `genome`: a typed reference (in-memory key,
     * FASTA path, or packed ".2bit" file) resolved through the
     * service's GenomeStore at submit time (load-once, LRU-cached;
     * packed refs are mmap-shared). Precedence: `genome` wins, then
     * `genomeRef`, then the deprecated `genomePath`.
     */
    GenomeRef genomeRef;

    /**
     * Deprecated: a FASTA path, equivalent to
     * `genomeRef = GenomeRef::fasta(path)`. Kept so existing call
     * sites compile unchanged.
     */
    std::string genomePath;

    /**
     * Compile options form the coalescing key; runtime options ride
     * along (the batch adopts its earliest request's runtime options,
     * except the deadline, which stays per-request).
     */
    SearchConfig config;
};

/** The batching search front end. */
class SearchService
{
  public:
    explicit SearchService(ServiceOptions options = {},
                           std::shared_ptr<GenomeStore> store = nullptr);

    /** Serves every still-pending request before returning. */
    ~SearchService();

    SearchService(const SearchService &) = delete;
    SearchService &operator=(const SearchService &) = delete;

    /**
     * Submit a search request. The future resolves when the request's
     * batch completes; get() throws ErrorException on failure, mirrors
     * SearchSession::search otherwise.
     */
    std::future<SearchResult> submit(std::vector<Guide> guides,
                                     RequestOptions options);

    /** Typed-error variant: the future carries Expected instead. */
    std::future<common::Expected<SearchResult>>
    trySubmit(std::vector<Guide> guides, RequestOptions options);

    /**
     * Dispatch every pending request on the caller's thread (the only
     * dispatch path in manual mode; also usable to cut a window
     * short). @return requests served.
     */
    size_t drain();

    /** Block until no request is pending or executing. */
    void flush();

    /** The genome cache requests resolve `genomePath` against. */
    GenomeStore &store() { return *store_; }
    std::shared_ptr<GenomeStore> sharedStore() { return store_; }

    /** The shared per-engine circuit breaker board (never null). */
    const std::shared_ptr<CircuitBreakerBoard> &
    breakers() const
    {
        return breakers_;
    }

    /** Point-in-time health snapshot (queue, pressure, breakers). */
    ServiceHealth health() const;

    /** Cumulative service.* (+ store.*, breaker, executor) metrics. */
    std::map<std::string, double> metricsSnapshot() const;

    size_t requestCount() const { return requests_.value(); }
    /** Merged passes executed (a solo request still counts one). */
    size_t batchCount() const { return batches_.value(); }
    /** Requests that shared a genome pass with at least one other. */
    size_t coalescedCount() const { return coalesced_.value(); }
    /** Merged runs degraded to per-request serial execution. */
    size_t batchSplitCount() const { return batchSplits_.value(); }
    /** Arrivals refused at admission (bounds or cost model). */
    size_t rejectedCount() const { return rejected_.value(); }
    /** Queued requests shed to make room (DropOldest). */
    size_t shedCount() const { return shed_.value(); }
    /** Batches whose engine=auto was pinned cheap under pressure. */
    size_t degradedCount() const { return degraded_.value(); }

  private:
    using Completion =
        std::function<void(common::Expected<SearchResult>)>;

    struct Pending
    {
        std::vector<Guide> guides;
        SharedSequence genome;
        SearchConfig config;
        Completion complete;
        std::chrono::steady_clock::time_point arrival;
        double estSeconds = 0.0; //!< admission-time cost estimate
        size_t bytes = 0;        //!< genome bytes (queue byte bound)
    };

    void enqueue(std::vector<Guide> guides, RequestOptions options,
                 Completion complete);
    void loop();
    /** Predicted scan seconds for one request (cost model x EWMA). */
    double estimateSeconds(const Pending &request) const;
    /** Fold a measured batch into the cost-model EWMA scale. */
    void observeMeasuredCost(double predicted, double measured);
    /** Swap out the whole queue (resets queued-work accounting). */
    std::vector<Pending> takeQueueLocked();
    /** Re-evaluate the pressure exit watermark after a dispatch. */
    void updatePressureLocked();
    /** Group by coalescing key and execute each group. */
    void dispatch(std::vector<Pending> pending);
    /** Run one compatible group as one or more merged passes. */
    void executeGroup(std::vector<Pending> group);
    /** One merged compile+scan serving `members`, demuxed per member. */
    void executeMerged(std::vector<Pending> members);
    /** Per-request serial fallback after a failed merged run. */
    void executeSingle(Pending member);

    static std::string coalescingKey(const Pending &request);
    static common::Deadline
    combinedDeadline(const std::vector<Pending> &members);
    /** Empty timed-out result for a request expired before dispatch. */
    static SearchResult expiredResult(const Pending &member);
    /** Slice `batch` down to one member's guides, re-indexed. */
    static SearchResult demux(const SearchResult &batch, size_t offset,
                              size_t count, size_t batch_requests,
                              size_t batch_guides);

    const ServiceOptions options_;
    std::shared_ptr<GenomeStore> store_;
    std::shared_ptr<CircuitBreakerBoard> breakers_;

    mutable std::mutex mutex_;
    std::condition_variable cv_;     //!< wakes the dispatcher
    std::condition_variable idleCv_; //!< wakes flush()
    std::vector<Pending> queue_;
    double queuedSeconds_ = 0.0; //!< sum of queued estSeconds
    size_t queuedBytes_ = 0;     //!< sum of queued genome bytes
    double costScale_ = 1.0;     //!< EWMA measured / predicted cost
    size_t executing_ = 0;
    bool stop_ = false;
    bool flushRequested_ = false;
    /** Degraded mode; atomic so executeMerged reads it lock-free. */
    std::atomic<bool> pressured_{false};
    std::thread worker_;

    mutable common::MetricsRegistry metrics_;
    common::Counter requests_;
    common::Counter batches_;
    common::Counter coalesced_;
    common::Counter batchSplits_;
    common::Counter expired_;
    common::Counter rejected_;
    common::Counter shed_;
    common::Counter degraded_;
    common::Counter pressureEnters_;
    common::Counter pressureExits_;
    common::Histogram batchSize_;
    common::Histogram estWait_;
    common::Gauge queueDepthGauge_;
    common::Gauge queuedBytesGauge_;
    common::Gauge pressureGauge_;
};

} // namespace crispr::core

#endif // CRISPR_CORE_SERVICE_HPP_
