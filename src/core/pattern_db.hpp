/**
 * @file
 * On-disk tier of the compile cache: a directory of ahead-of-time
 * compiled pattern blobs (`<fnv1a64-hex>.cpdb`), each produced by
 * Engine::serializeState. The hyperscan deployment idiom: compile once
 * (anywhere), persist, and restart services in milliseconds by loading
 * the compiled artifact instead of re-running subset construction.
 *
 * A PatternDatabase is shared process-wide per directory (open()
 * returns the same instance for the same path), so SearchService's
 * construction-time preload warms the in-memory tier that every
 * per-batch SearchSession then hits. Writes go through a temp file +
 * atomic rename, so a crashed writer never leaves a torn blob and
 * concurrent writers of one key settle on one complete file.
 *
 * Integrity is layered: this class only moves bytes; the envelope
 * checks (magic, format version, content hash, engine name, pattern-set
 * digest) happen in Engine::deserializeState, and a blob that fails
 * them is treated as a miss and recompiled, never trusted.
 */

#ifndef CRISPR_CORE_PATTERN_DB_HPP_
#define CRISPR_CORE_PATTERN_DB_HPP_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace crispr::core {

/** A directory of serialized compiled-pattern blobs. Thread-safe. */
class PatternDatabase
{
  public:
    /**
     * The shared database for a directory, creating the directory on
     * first open. One instance per canonical path per process.
     * @return InvalidArgument when the path exists and is not a
     * directory, or cannot be created.
     */
    static common::Expected<std::shared_ptr<PatternDatabase>>
    open(const std::string &dir);

    const std::string &dir() const { return dir_; }

    /**
     * The blob stored under `key`, from the in-memory tier when
     * preloaded (or previously loaded/stored), else from disk.
     * std::nullopt when absent or unreadable — a database miss is
     * never an error, just a compile.
     */
    std::optional<std::vector<uint8_t>> load(const std::string &key);

    /**
     * Remember a blob under `key` in the in-memory tier, then persist
     * it (temp file + rename). Best-effort: an I/O failure (read-only
     * or full directory) returns a Status but must not fail the
     * search that compiled the blob — the memory tier is filled
     * before the disk attempt, so this process keeps serving the blob
     * either way. Faultpoint `db.store` injects the disk failure.
     */
    common::Status store(const std::string &key,
                         std::span<const uint8_t> blob);

    /**
     * Read every *.cpdb in the directory into the in-memory tier (the
     * service pre-warm). @return blobs resident after the sweep.
     */
    size_t preload();

    /** Blobs resident in the in-memory tier. */
    size_t residentCount() const;

    /** The file name a key maps to: fnv1a64(key) as hex + ".cpdb". */
    static std::string fileNameFor(const std::string &key);

  private:
    explicit PatternDatabase(std::string dir) : dir_(std::move(dir)) {}

    std::string pathFor(const std::string &key) const;

    std::string dir_;
    mutable std::mutex mutex_; //!< guards mem_
    std::map<std::string, std::vector<uint8_t>> mem_; //!< file name -> blob
};

} // namespace crispr::core

#endif // CRISPR_CORE_PATTERN_DB_HPP_
