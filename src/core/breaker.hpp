/**
 * @file
 * Per-engine circuit breakers for the fallback chain. The existing
 * fallback machinery retries a broken engine on *every* request — N
 * concurrent requests each burn a compile attempt (or a wedged scan)
 * against an engine that has been failing for minutes. A breaker
 * remembers: after `failureThreshold` consecutive failures the engine's
 * breaker opens and the chain skips straight to the next engine; after
 * `openSeconds` of cool-down the breaker half-opens and admits exactly
 * one probe request — success closes it, failure re-opens it.
 *
 * The board is the unit of sharing: `SearchService` owns one and hands
 * it to every per-batch `SearchSession` through
 * `RuntimeOptions::breakers`, so breaker state survives the sessions it
 * protects (a fresh session per batch would otherwise forget every
 * failure). A standalone session makes its own board.
 *
 * State transitions are counted per engine
 * (`session.breaker.<engine>.open/half_open/closed`) and the current
 * state is exported as a gauge (`session.breaker.<engine>.state`,
 * 0 = closed, 1 = half-open, 2 = open) — both merged into
 * SearchSession::metricsSnapshot and SearchService::metricsSnapshot,
 * and surfaced in ServiceHealth. Thread-safe; every method may be
 * called from any thread.
 */

#ifndef CRISPR_CORE_BREAKER_HPP_
#define CRISPR_CORE_BREAKER_HPP_

#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/metrics.hpp"

namespace crispr::core {

/** Breaker tuning; fixed for the board's lifetime. */
struct BreakerOptions
{
    /**
     * Consecutive failures that open an engine's breaker. 0 disables
     * the board entirely (every engine is always admitted).
     */
    unsigned failureThreshold = 5;

    /**
     * Cool-down before an open breaker half-opens and admits one probe
     * request. 0 = the very next request probes (deterministic tests).
     */
    double openSeconds = 5.0;
};

/** Shared per-engine breaker state. */
class CircuitBreakerBoard
{
  public:
    enum class State : uint8_t
    {
        Closed = 0,   //!< healthy: every request admitted
        HalfOpen = 1, //!< probing: exactly one request admitted
        Open = 2,     //!< failing: requests skip this engine
    };

    explicit CircuitBreakerBoard(BreakerOptions options = {});

    /**
     * May `engine` be attempted now? Closed admits; Open admits
     * nothing until the cool-down elapses, then transitions to
     * HalfOpen and admits exactly one probe (concurrent callers are
     * refused until the probe reports back).
     */
    bool admit(const std::string &engine);

    /** The probe (or any admitted request) served: close the breaker
     *  and reset the consecutive-failure count. */
    void recordSuccess(const std::string &engine);

    /** An admitted request failed on `engine`: count it, opening the
     *  breaker at the threshold (a failed half-open probe re-opens). */
    void recordFailure(const std::string &engine);

    State state(const std::string &engine) const;
    static const char *stateName(State state);

    /** Engine -> state name, for ServiceHealth / operator views. */
    std::map<std::string, std::string> stateNames() const;

    const BreakerOptions &options() const { return options_; }

    /** session.breaker.<engine>.{open,half_open,closed,state}. */
    std::map<std::string, double> metricsSnapshot() const;
    void mergeMetricsInto(std::map<std::string, double> &out) const;

  private:
    using Clock = std::chrono::steady_clock;

    struct Cell
    {
        State state = State::Closed;
        unsigned consecutiveFailures = 0;
        Clock::time_point openedAt{};
        bool probeInFlight = false;
        common::Counter opens;     //!< closed/half-open -> open
        common::Counter halfOpens; //!< open -> half-open
        common::Counter closes;    //!< half-open -> closed
        common::Gauge stateGauge;
    };

    Cell &cellLocked(const std::string &engine);
    void setStateLocked(Cell &cell, State next);

    const BreakerOptions options_;
    mutable std::mutex mutex_;
    std::map<std::string, Cell> cells_;
    mutable common::MetricsRegistry metrics_;
};

} // namespace crispr::core

#endif // CRISPR_CORE_BREAKER_HPP_
