/**
 * @file
 * The library's top-level entry point: off-target search of a guide set
 * against a genome on a chosen engine.
 *
 * @code
 *   using namespace crispr;
 *   auto genome = genome::readFastaFile("hg.fa");
 *   auto seq = genome::concatenateRecords(genome);
 *   std::vector<core::Guide> guides = {
 *       core::makeGuide("g1", "GGGTGGGGGGAGTTTGCTCC")};
 *   core::SearchConfig cfg;
 *   cfg.maxMismatches = 3;
 *   cfg.engine = core::EngineKind::HscanAuto;
 *   core::SearchResult res = core::search(seq, guides, cfg);
 * @endcode
 */

#ifndef CRISPR_CORE_SEARCH_HPP_
#define CRISPR_CORE_SEARCH_HPP_

#include <memory>
#include <string>
#include <vector>

#include "common/deadline.hpp"
#include "common/executor.hpp"
#include "common/trace.hpp"
#include "core/breaker.hpp"
#include "core/engines.hpp"
#include "core/offtarget.hpp"
#include "hscan/simd.hpp"

namespace crispr::core {

/**
 * The compile-relevant half of a search configuration: everything a
 * compiled pattern depends on. Two searches whose CompileOptions agree
 * can share one compilation (SearchSession's cache key is derived from
 * this struct alone) and — when their guide sets are compatible — one
 * genome pass (SearchService's coalescing key is derived from it plus
 * the engine chain).
 */
struct CompileOptions
{
    PamSpec pam = pamNRG();    //!< NGG + NAG in one class, per the paper
    int maxMismatches = 3;
    bool bothStrands = true;
    EngineKind engine = EngineKind::HscanAuto;
    EngineParams params;

    /**
     * Directory of ahead-of-time compiled pattern blobs (the disk tier
     * under SearchSession's in-memory compile cache; see
     * core/pattern_db.hpp). Empty = no disk tier. When set, a compile
     * cache miss first tries to load the engine's serialized state
     * (keyed by engine + these options + the guide-set digest) and a
     * fresh compilation is persisted back for the next process. The
     * recommended production config pairs this with
     * `engine = EngineKind::Auto`.
     */
    std::string databaseDir;
};

/**
 * The runtime half of a search configuration: how a scan executes —
 * none of it affects which compilation serves the request or what hits
 * come back (geometry-independence is tested), only how the pass runs.
 */
struct RuntimeOptions
{
    /**
     * Worker threads for chunk-capable (CPU) engines: 1 = serial (the
     * paper's single-core setups — never touches the shared pool),
     * 0 = all hardware threads, n = n. Multi-threaded scans run as
     * tasks on the process-wide work-stealing Executor (shared by
     * every concurrent request), not on freshly spawned threads.
     * Device-model engines (GPU/FPGA/AP) always consume the whole
     * stream and ignore this.
     */
    unsigned threads = 1;

    /**
     * Requested SIMD tier for the vector-capable CPU scan kernels
     * (hscan Shift-Or, prefilter anchor probe). Resolved per scan
     * against the CRISPR_SIMD env override (which wins) and host
     * CPUID; an unsupported request degrades to the widest usable
     * tier. Every tier reports bit-identical hits (tested), so this
     * is runtime tuning like `threads`, not a result knob.
     */
    hscan::SimdTier simdTier = hscan::SimdTier::Auto;

    /**
     * Pool multi-threaded scans schedule onto; nullptr = the
     * process-wide Executor::shared(). Instanced pools are for tests
     * and benchmarks.
     */
    common::Executor *executor = nullptr;

    /**
     * Benchmark baseline only: spawn fresh threads per scan (the
     * pre-executor behaviour) instead of using the shared pool.
     */
    bool spawnThreads = false;

    /** Emit-zone size per chunk when scanning chunked or streamed. */
    size_t chunkSize = 4 << 20;

    /**
     * Engines tried in order when `engine` fails to compile or scan
     * (the paper's cross-platform degradation: AP down -> same workload
     * on FPGA/GPU/CPU). Failures are counted per engine and the run's
     * `session.fallbacks` metric records how many engines failed before
     * the one that served. Duplicates of `engine` are ignored.
     */
    std::vector<EngineKind> fallbacks;

    /**
     * Cooperative deadline / cancel token: checked between chunks (and
     * before an unchunkable whole-genome scan starts), so an expired or
     * cancelled search stops early and reports the partial results with
     * `search.timed_out` = 1. Default: unlimited.
     */
    common::Deadline deadline;

    /**
     * Per-chunk retries for transient scan failures (exponential
     * backoff from retryBackoffSeconds, capped). 0 = fail fast.
     */
    unsigned scanRetries = 0;
    double retryBackoffSeconds = 0.001;

    /**
     * Streamed-FASTA leniency: skip malformed records (counted in the
     * `parse.records_dropped` metric) instead of failing the search.
     */
    bool lenientFasta = false;

    /**
     * Shared per-engine circuit breakers wrapped around the fallback
     * chain (core/breaker.hpp): an engine whose breaker is open is
     * skipped without burning a compile/scan attempt. nullptr = the
     * session makes a private board (breakers still protect repeated
     * searches on one session, but state dies with it). SearchService
     * injects its long-lived board here so breaker state survives
     * across batches.
     */
    std::shared_ptr<CircuitBreakerBoard> breakers;

    /**
     * Optional trace sink: when set, the search records RAII spans
     * (search, parse, pattern.compile, engine.compile, scan,
     * chunk.scan, report) into it, serializable to chrome://tracing
     * JSON via TraceSink::writeJson. The sink must outlive the search.
     */
    common::TraceSink *trace = nullptr;
};

/**
 * Search configuration: CompileOptions + RuntimeOptions in one value.
 * The flat field names (`cfg.maxMismatches`, `cfg.threads`, ...) keep
 * working through the base classes, so existing call sites compile
 * unchanged; new code that cares about the compile/runtime split uses
 * the `compile()` / `runtime()` views.
 */
struct SearchConfig : CompileOptions, RuntimeOptions
{
    CompileOptions &compile() { return *this; }
    const CompileOptions &compile() const { return *this; }
    RuntimeOptions &runtime() { return *this; }
    const RuntimeOptions &runtime() const { return *this; }
};

/**
 * Canonical serialization of the compile-relevant options (pam,
 * mismatch budget, strands, and the cache-key-relevant engine params).
 * SearchSession's compile cache key is `engine name + '|' + this`;
 * SearchService's coalescing key builds on it too. The device-model
 * specs (fpgaSpec, apSpec, gpuModel, apSimConfig, casoffinderModel)
 * are deployment constants and deliberately excluded — see the caching
 * caveat in session.hpp.
 */
std::string compileOptionsKey(const CompileOptions &options);

/** Search result: verified hits plus the raw engine run. */
struct SearchResult
{
    std::vector<OffTargetHit> hits;
    PatternSet patterns;
    EngineRun run;
    size_t droppedEvents = 0; //!< unverifiable events (AP counter design)
    /** Deadline expired mid-scan: `hits` is a partial prefix. */
    bool timedOut = false;
};

/**
 * Run a one-shot off-target search. Compiles the guide set, scans, and
 * verifies in one call; repeated searches over one guide set should
 * hold a SearchSession (session.hpp) instead, which caches the
 * compilation — and concurrent requests should go through a
 * SearchService (service.hpp), which coalesces them into shared genome
 * passes.
 */
SearchResult search(const genome::Sequence &genome,
                    const std::vector<Guide> &guides,
                    const SearchConfig &config = {});

} // namespace crispr::core

#endif // CRISPR_CORE_SEARCH_HPP_
