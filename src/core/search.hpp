/**
 * @file
 * The library's top-level entry point: off-target search of a guide set
 * against a genome on a chosen engine.
 *
 * @code
 *   using namespace crispr;
 *   auto genome = genome::readFastaFile("hg.fa");
 *   auto seq = genome::concatenateRecords(genome);
 *   std::vector<core::Guide> guides = {
 *       core::makeGuide("g1", "GGGTGGGGGGAGTTTGCTCC")};
 *   core::SearchConfig cfg;
 *   cfg.maxMismatches = 3;
 *   cfg.engine = core::EngineKind::HscanAuto;
 *   core::SearchResult res = core::search(seq, guides, cfg);
 * @endcode
 */

#ifndef CRISPR_CORE_SEARCH_HPP_
#define CRISPR_CORE_SEARCH_HPP_

#include <vector>

#include "core/engines.hpp"
#include "core/offtarget.hpp"

namespace crispr::core {

/** Search configuration. */
struct SearchConfig
{
    PamSpec pam = pamNRG();    //!< NGG + NAG in one class, per the paper
    int maxMismatches = 3;
    bool bothStrands = true;
    EngineKind engine = EngineKind::HscanAuto;
    EngineParams params;
};

/** Search result: verified hits plus the raw engine run. */
struct SearchResult
{
    std::vector<OffTargetHit> hits;
    PatternSet patterns;
    EngineRun run;
    size_t droppedEvents = 0; //!< unverifiable events (AP counter design)
};

/** Run an off-target search. */
SearchResult search(const genome::Sequence &genome,
                    const std::vector<Guide> &guides,
                    const SearchConfig &config = {});

} // namespace crispr::core

#endif // CRISPR_CORE_SEARCH_HPP_
