/**
 * @file
 * The library's top-level entry point: off-target search of a guide set
 * against a genome on a chosen engine.
 *
 * @code
 *   using namespace crispr;
 *   auto genome = genome::readFastaFile("hg.fa");
 *   auto seq = genome::concatenateRecords(genome);
 *   std::vector<core::Guide> guides = {
 *       core::makeGuide("g1", "GGGTGGGGGGAGTTTGCTCC")};
 *   core::SearchConfig cfg;
 *   cfg.maxMismatches = 3;
 *   cfg.engine = core::EngineKind::HscanAuto;
 *   core::SearchResult res = core::search(seq, guides, cfg);
 * @endcode
 */

#ifndef CRISPR_CORE_SEARCH_HPP_
#define CRISPR_CORE_SEARCH_HPP_

#include <memory>
#include <string>
#include <vector>

#include "common/deadline.hpp"
#include "common/executor.hpp"
#include "common/trace.hpp"
#include "core/breaker.hpp"
#include "core/engines.hpp"
#include "core/offtarget.hpp"
#include "core/options.hpp"
#include "hscan/simd.hpp"

namespace crispr::core {

/**
 * The compile-relevant half of a search configuration: everything a
 * compiled pattern depends on. Two searches whose CompileOptions agree
 * can share one compilation (SearchSession's cache key is derived from
 * this struct alone) and — when their guide sets are compatible — one
 * genome pass (SearchService's coalescing key is derived from it plus
 * the engine chain).
 */
struct CompileOptions
{
    PamSpec pam = pamNRG();    //!< NGG + NAG in one class, per the paper
    int maxMismatches = 3;
    bool bothStrands = true;
    EngineKind engine = EngineKind::HscanAuto;
    EngineParams params;

    /**
     * Directory of ahead-of-time compiled pattern blobs (the disk tier
     * under SearchSession's in-memory compile cache; see
     * core/pattern_db.hpp). Empty = no disk tier. When set, a compile
     * cache miss first tries to load the engine's serialized state
     * (keyed by engine + these options + the guide-set digest) and a
     * fresh compilation is persisted back for the next process. The
     * recommended production config pairs this with
     * `engine = EngineKind::Auto`.
     */
    std::string databaseDir;
};

/**
 * The runtime half of a search configuration: how a scan executes —
 * none of it affects which compilation serves the request, and (with
 * the one documented exception of `scanRange`, the shard coordinator's
 * emit-interval restriction) none of it affects what hits come back
 * (geometry-independence is tested), only how the pass runs. The
 * execution-tuning knobs themselves (threads, simdTier, executor,
 * chunkSize, deadline, retries, trace, scanRange) live in the shared
 * ExecutionOptions base (core/options.hpp), which ChunkedScanOptions
 * inherits and ServiceOptions embeds as its default layer — one
 * definition instead of three per-site copies.
 */
struct RuntimeOptions : ExecutionOptions
{
    /**
     * Engines tried in order when `engine` fails to compile or scan
     * (the paper's cross-platform degradation: AP down -> same workload
     * on FPGA/GPU/CPU). Failures are counted per engine and the run's
     * `session.fallbacks` metric records how many engines failed before
     * the one that served. Duplicates of `engine` are ignored.
     */
    std::vector<EngineKind> fallbacks;

    /**
     * Streamed-FASTA leniency: skip malformed records (counted in the
     * `parse.records_dropped` metric) instead of failing the search.
     */
    bool lenientFasta = false;

    /**
     * Shared per-engine circuit breakers wrapped around the fallback
     * chain (core/breaker.hpp): an engine whose breaker is open is
     * skipped without burning a compile/scan attempt. nullptr = the
     * session makes a private board (breakers still protect repeated
     * searches on one session, but state dies with it). SearchService
     * injects its long-lived board here so breaker state survives
     * across batches.
     */
    std::shared_ptr<CircuitBreakerBoard> breakers;

    ExecutionOptions &execution() { return *this; }
    const ExecutionOptions &execution() const { return *this; }
};

/**
 * Search configuration: CompileOptions + RuntimeOptions in one value.
 * The flat field names (`cfg.maxMismatches`, `cfg.threads`, ...) keep
 * working through the base classes, so existing call sites compile
 * unchanged; new code that cares about the compile/runtime split uses
 * the `compile()` / `runtime()` views.
 */
struct SearchConfig : CompileOptions, RuntimeOptions
{
    CompileOptions &compile() { return *this; }
    const CompileOptions &compile() const { return *this; }
    RuntimeOptions &runtime() { return *this; }
    const RuntimeOptions &runtime() const { return *this; }
};

/**
 * Canonical serialization of the compile-relevant options (pam,
 * mismatch budget, strands, and the cache-key-relevant engine params).
 * SearchSession's compile cache key is `engine name + '|' + this`;
 * SearchService's coalescing key builds on it too. The device-model
 * specs (fpgaSpec, apSpec, gpuModel, apSimConfig, casoffinderModel)
 * are deployment constants and deliberately excluded — see the caching
 * caveat in session.hpp.
 */
std::string compileOptionsKey(const CompileOptions &options);

/** Search result: verified hits plus the raw engine run. */
struct SearchResult
{
    std::vector<OffTargetHit> hits;
    PatternSet patterns;
    EngineRun run;
    size_t droppedEvents = 0; //!< unverifiable events (AP counter design)
    /** Deadline expired mid-scan: `hits` is a partial prefix. */
    bool timedOut = false;

    /**
     * Ranked report (rankHits over `hits`): populated when the request
     * engaged a ranked knob (ExecutionOptions::topK / scoreThreshold),
     * ordered penalty-descending with deterministic tiebreaks and
     * truncated to topK. On a timed-out partial result this is the
     * ranking of the partial hit set — still duplicate- and
     * phantom-free. Empty (with rankedMode false) otherwise.
     */
    std::vector<OffTargetHit> ranked;
    /** The request asked for a ranked report. */
    bool rankedMode = false;
};

/**
 * Run a one-shot off-target search. Compiles the guide set, scans, and
 * verifies in one call; repeated searches over one guide set should
 * hold a SearchSession (session.hpp) instead, which caches the
 * compilation — and concurrent requests should go through a
 * SearchService (service.hpp), which coalesces them into shared genome
 * passes.
 */
SearchResult search(const genome::Sequence &genome,
                    const std::vector<Guide> &guides,
                    const SearchConfig &config = {});

} // namespace crispr::core

#endif // CRISPR_CORE_SEARCH_HPP_
