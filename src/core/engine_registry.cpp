#include "core/engine_registry.hpp"

#include "common/logging.hpp"
#include "core/engines/adapters.hpp"

namespace crispr::core {

EngineRegistry &
EngineRegistry::instance()
{
    static EngineRegistry registry;
    static std::once_flag builtins;
    std::call_once(builtins, [] {
        // Registration order is the presentation order of allEngines().
        registerBruteEngine(registry);
        registerReferenceEngine(registry);
        registerHscanEngines(registry);
        registerHscanPrefilterEngine(registry);
        registerGpuInfant2Engine(registry);
        registerFpgaEngine(registry);
        registerApEngine(registry);
        registerApCounterEngine(registry);
        registerCasOffinderEngine(registry);
        registerCasOtEngines(registry);
    });
    return registry;
}

void
EngineRegistry::add(std::unique_ptr<Engine> engine)
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &e : engines_) {
        if (e->kind() == engine->kind())
            fatal("engine kind %d registered twice (%s, %s)",
                  static_cast<int>(engine->kind()), e->name(),
                  engine->name());
        if (std::string_view(e->name()) == engine->name())
            fatal("engine name '%s' registered twice", engine->name());
    }
    engines_.push_back(std::move(engine));
}

const Engine &
EngineRegistry::engine(EngineKind kind) const
{
    const Engine *e = find(kind);
    if (!e)
        fatal("no engine registered for kind %d",
              static_cast<int>(kind));
    return *e;
}

const Engine *
EngineRegistry::find(EngineKind kind) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &e : engines_)
        if (e->kind() == kind)
            return e.get();
    return nullptr;
}

const Engine *
EngineRegistry::findByName(std::string_view name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &e : engines_)
        if (std::string_view(e->name()) == name)
            return e.get();
    return nullptr;
}

std::vector<EngineKind>
EngineRegistry::kinds() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<EngineKind> kinds;
    kinds.reserve(engines_.size());
    for (const auto &e : engines_)
        kinds.push_back(e->kind());
    return kinds;
}

} // namespace crispr::core
