/**
 * @file
 * The position-weight primitives behind guide scoring, split out of
 * core/score.hpp so the compile pipeline (core/compile.hpp) can bake
 * the weight table into compiled pattern state without pulling in the
 * whole search surface. score.hpp's sitePenalty() delegates here, and
 * hitsFromEvents() uses the same routines in-scan, so the two paths
 * are bit-identical by construction (tested by the scoring
 * conformance tier).
 */

#ifndef CRISPR_CORE_SCORE_TABLE_HPP_
#define CRISPR_CORE_SCORE_TABLE_HPP_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace crispr::core {

/**
 * Per-position mismatch weights for a guide length, index 0 =
 * PAM-distal. 20-nt guides get the published Hsu et al. 2013 table;
 * other lengths fall back to a linear ramp from 0 (PAM-distal) to
 * ~0.8 (PAM-proximal). Compiled pattern sets carry a copy
 * (PatternSet::scoreWeights) that is serialized with the engine state
 * and digest-checked on load.
 */
std::vector<double> scoreWeightTable(size_t guide_length);

/**
 * Single-site penalty in [0, 1] from an explicit weight table
 * (weights.size() is the guide length): 1 for a perfect duplicate,
 * decaying with mismatch count and position. The leading product
 * multiplies in the order given, so callers that require bit-stable
 * results must pass `mismatch_positions` sorted ascending — both the
 * in-scan path and hitMismatchPositions() do.
 */
double sitePenaltyFromWeights(const std::vector<size_t> &mismatch_positions,
                              const std::vector<double> &weights);

/** Fold 0-based guide positions into a bitmask (bit p = position p).
 *  Positions must be < 64 (guide lengths are far below that). */
uint64_t mismatchPositionsToMask(const std::vector<size_t> &positions);

/** Expand a mismatch mask back to ascending 0-based positions. */
std::vector<size_t> mismatchMaskToPositions(uint64_t mask);

} // namespace crispr::core

#endif // CRISPR_CORE_SCORE_TABLE_HPP_
