#include "core/engine.hpp"

#include "common/logging.hpp"
#include "common/stopwatch.hpp"

namespace crispr::core {

const genome::Sequence &
SequenceView::sequence(genome::Sequence &storage) const
{
    if (seq_)
        return *seq_;
    storage = genome::Sequence(
        std::vector<uint8_t>(codes_.begin(), codes_.end()));
    return storage;
}

CompiledPattern
Engine::compile(const PatternSet &set, const EngineParams &params) const
{
    if (set.orientation != requiredOrientation())
        fatal("engine %s requires a %s pattern set", name(),
              requiredOrientation() == Orientation::PamFirst
                  ? "PamFirst"
                  : "SiteOrder");
    CompiledPattern compiled;
    compiled.kind = kind();
    compiled.set = std::make_shared<const PatternSet>(set);
    compiled.params = params;
    Stopwatch timer;
    compiled.state = compileState(set, params, compiled.metrics);
    compiled.compileSeconds = timer.seconds();
    return compiled;
}

EngineRun
Engine::scan(const CompiledPattern &compiled, const SequenceView &view) const
{
    if (compiled.kind != kind())
        panic("compiled pattern for engine %d handed to engine %s",
              static_cast<int>(compiled.kind), name());
    EngineRun run;
    scanImpl(compiled, view, run);
    run.kind = kind();
    run.timing.compileSeconds = compiled.compileSeconds;
    for (const auto &[key, value] : compiled.metrics)
        run.metrics.emplace(key, value);
    run.metrics["events"] = static_cast<double>(run.events.size());
    run.metrics.emplace("events.dropped", 0.0);
    return run;
}

} // namespace crispr::core
