#include "core/engine.hpp"

#include "common/logging.hpp"
#include "common/stopwatch.hpp"

namespace crispr::core {

const genome::Sequence &
SequenceView::sequence(genome::Sequence &storage) const
{
    if (seq_)
        return *seq_;
    storage = genome::Sequence(
        std::vector<uint8_t>(codes_.begin(), codes_.end()));
    return storage;
}

CompiledPattern
Engine::compile(const PatternSet &set, const EngineParams &params) const
{
    if (set.orientation != requiredOrientation())
        fatal("engine %s requires a %s pattern set", name(),
              requiredOrientation() == Orientation::PamFirst
                  ? "PamFirst"
                  : "SiteOrder");
    CompiledPattern compiled;
    compiled.kind = kind();
    compiled.set = std::make_shared<const PatternSet>(set);
    compiled.params = params;
    common::MetricsRegistry metrics;
    Stopwatch timer;
    compiled.state = compileState(set, params, metrics);
    compiled.compileSeconds = timer.seconds();
    metrics.gauge("compile.patterns")
        .set(static_cast<double>(set.patterns.size()));
    metrics.gauge("compile.seconds").set(compiled.compileSeconds);
    metrics.mergeInto(compiled.metrics);
    return compiled;
}

EngineRun
Engine::scan(const CompiledPattern &compiled, const SequenceView &view) const
{
    if (compiled.kind != kind())
        panic("compiled pattern for engine %d handed to engine %s",
              static_cast<int>(compiled.kind), name());
    EngineRun run;
    common::MetricsRegistry metrics;
    scanImpl(compiled, view, run, metrics);
    run.kind = kind();
    run.timing.compileSeconds = compiled.compileSeconds;
    for (const auto &[key, value] : compiled.metrics)
        run.metrics.emplace(key, value);
    metrics.mergeInto(run.metrics);
    run.metrics["scan.bytes"] = static_cast<double>(view.size());
    run.metrics["scan.events"] =
        static_cast<double>(run.events.size());
    if (run.timing.hostSeconds > 0.0)
        run.metrics["scan.bytes_per_sec"] =
            static_cast<double>(view.size()) /
            run.timing.hostSeconds;
    run.metrics.emplace("events.dropped", 0.0);
    return run;
}

common::Expected<CompiledPattern>
Engine::tryCompile(const PatternSet &set,
                   const EngineParams &params) const
{
    using common::Error;
    using common::ErrorCode;
    if (set.orientation != requiredOrientation()) {
        return Error(ErrorCode::InvalidArgument,
                     strprintf("engine %s requires a %s pattern set",
                               name(),
                               requiredOrientation() ==
                                       Orientation::PamFirst
                                   ? "PamFirst"
                                   : "SiteOrder"))
            .withContext("engine", name());
    }
    try {
        return compile(set, params);
    } catch (const common::ErrorException &e) {
        return e.error();
    } catch (const FatalError &e) {
        return Error(ErrorCode::CompileFailed, e.what())
            .withContext("engine", name());
    }
}

common::Expected<EngineRun>
Engine::tryScan(const CompiledPattern &compiled,
                const SequenceView &view) const
{
    try {
        return scan(compiled, view);
    } catch (const common::ErrorException &e) {
        return e.error();
    } catch (const FatalError &e) {
        return common::Error(common::ErrorCode::ScanFailed, e.what())
            .withContext("engine", name());
    }
}

} // namespace crispr::core
