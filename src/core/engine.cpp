#include "core/engine.hpp"

#include <bit>

#include "common/logging.hpp"
#include "common/serial.hpp"
#include "common/stopwatch.hpp"

namespace crispr::core {

namespace {

/** Envelope version of the engine-state wrapper (not the inner
 *  artifact, which carries its own kind + version). v2 added the
 *  compiled score-weight table to the envelope; v1 blobs fail
 *  openBlob's version check and fall back to a recompile (a database
 *  miss, never an error). */
constexpr uint32_t kEngineStateVersion = 2;

} // namespace

const genome::Sequence &
SequenceView::sequence(genome::Sequence &storage) const
{
    if (seq_)
        return *seq_;
    storage = genome::Sequence(
        std::vector<uint8_t>(codes_.begin(), codes_.end()));
    return storage;
}

CompiledPattern
Engine::compile(const PatternSet &set, const EngineParams &params) const
{
    if (set.orientation != requiredOrientation())
        fatal("engine %s requires a %s pattern set", name(),
              requiredOrientation() == Orientation::PamFirst
                  ? "PamFirst"
                  : "SiteOrder");
    CompiledPattern compiled;
    compiled.kind = kind();
    compiled.set = std::make_shared<const PatternSet>(set);
    compiled.params = params;
    common::MetricsRegistry metrics;
    Stopwatch timer;
    compiled.state = compileState(set, params, metrics);
    compiled.compileSeconds = timer.seconds();
    metrics.gauge("compile.patterns")
        .set(static_cast<double>(set.patterns.size()));
    metrics.gauge("compile.seconds").set(compiled.compileSeconds);
    metrics.mergeInto(compiled.metrics);
    return compiled;
}

EngineRun
Engine::scan(const CompiledPattern &compiled, const SequenceView &view,
             const ScanOptions &options) const
{
    if (compiled.kind != kind())
        panic("compiled pattern for engine %d handed to engine %s",
              static_cast<int>(compiled.kind), name());
    EngineRun run;
    common::MetricsRegistry metrics;
    scanImpl(compiled, view, options, run, metrics);
    run.kind = kind();
    run.timing.compileSeconds = compiled.compileSeconds;
    for (const auto &[key, value] : compiled.metrics)
        run.metrics.emplace(key, value);
    metrics.mergeInto(run.metrics);
    run.metrics["scan.bytes"] = static_cast<double>(view.size());
    run.metrics["scan.events"] =
        static_cast<double>(run.events.size());
    if (run.timing.hostSeconds > 0.0)
        run.metrics["scan.bytes_per_sec"] =
            static_cast<double>(view.size()) /
            run.timing.hostSeconds;
    run.metrics.emplace("events.dropped", 0.0);
    return run;
}

common::Expected<CompiledPattern>
Engine::tryCompile(const PatternSet &set,
                   const EngineParams &params) const
{
    using common::Error;
    using common::ErrorCode;
    if (set.orientation != requiredOrientation()) {
        return Error(ErrorCode::InvalidArgument,
                     strprintf("engine %s requires a %s pattern set",
                               name(),
                               requiredOrientation() ==
                                       Orientation::PamFirst
                                   ? "PamFirst"
                                   : "SiteOrder"))
            .withContext("engine", name());
    }
    try {
        return compile(set, params);
    } catch (const common::ErrorException &e) {
        return e.error();
    } catch (const FatalError &e) {
        return Error(ErrorCode::CompileFailed, e.what())
            .withContext("engine", name());
    }
}

common::Expected<EngineRun>
Engine::tryScan(const CompiledPattern &compiled,
                const SequenceView &view,
                const ScanOptions &options) const
{
    try {
        return scan(compiled, view, options);
    } catch (const common::ErrorException &e) {
        return e.error();
    } catch (const FatalError &e) {
        return common::Error(common::ErrorCode::ScanFailed, e.what())
            .withContext("engine", name());
    }
}

common::Expected<std::vector<uint8_t>>
Engine::serializeStateImpl(const CompiledPattern &) const
{
    return common::Error(common::ErrorCode::UnsupportedEngine,
                         strprintf("engine %s does not support "
                                   "compiled-state serialization",
                                   name()))
        .withContext("engine", name());
}

common::Expected<std::shared_ptr<const void>>
Engine::deserializeStateImpl(const PatternSet &, const EngineParams &,
                             std::span<const uint8_t>,
                             common::MetricsRegistry &) const
{
    return common::Error(common::ErrorCode::UnsupportedEngine,
                         strprintf("engine %s does not support "
                                   "compiled-state serialization",
                                   name()))
        .withContext("engine", name());
}

common::Expected<std::vector<uint8_t>>
Engine::serializeState(const CompiledPattern &compiled) const
{
    using common::Error;
    using common::ErrorCode;
    if (!supportsSerialization())
        return Error(ErrorCode::UnsupportedEngine,
                     strprintf("engine %s does not support "
                               "compiled-state serialization",
                               name()))
            .withContext("engine", name());
    if (compiled.kind != kind())
        return Error(ErrorCode::InvalidArgument,
                     strprintf("compiled pattern for engine %d handed "
                               "to engine %s",
                               static_cast<int>(compiled.kind), name()))
            .withContext("engine", name());
    auto inner = serializeStateImpl(compiled);
    if (!inner.ok())
        return inner.error();
    common::BlobWriter w;
    w.str(name());
    w.u64(patternSetDigest(*compiled.set));
    // The scored state: the weight table the compiled patterns score
    // with, stored bit-exact (the digest above already commits to it;
    // carrying it explicitly lets load verify and report a weight
    // mismatch instead of a generic digest failure).
    w.u32(static_cast<uint32_t>(compiled.set->scoreWeights.size()));
    for (double weight : compiled.set->scoreWeights)
        w.u64(std::bit_cast<uint64_t>(weight));
    w.u32(static_cast<uint32_t>(inner.value().size()));
    w.bytes(inner.value());
    return common::sealBlob("engine-state", kEngineStateVersion,
                            w.buffer());
}

common::Expected<CompiledPattern>
Engine::deserializeState(const PatternSet &set,
                         const EngineParams &params,
                         std::span<const uint8_t> blob) const
{
    using common::Error;
    using common::ErrorCode;
    if (!supportsSerialization())
        return Error(ErrorCode::UnsupportedEngine,
                     strprintf("engine %s does not support "
                               "compiled-state serialization",
                               name()))
            .withContext("engine", name());
    if (set.orientation != requiredOrientation())
        return Error(ErrorCode::InvalidArgument,
                     strprintf("engine %s requires a %s pattern set",
                               name(),
                               requiredOrientation() ==
                                       Orientation::PamFirst
                                   ? "PamFirst"
                                   : "SiteOrder"))
            .withContext("engine", name());

    auto payload =
        common::openBlob("engine-state", kEngineStateVersion, blob);
    if (!payload.ok())
        return payload.error();
    common::BlobReader r(payload.value());
    const std::string blob_engine = r.str();
    const uint64_t digest = r.u64();
    const uint32_t weight_count = r.u32();
    std::vector<double> blob_weights;
    blob_weights.reserve(weight_count);
    for (uint32_t i = 0; i < weight_count; ++i)
        blob_weights.push_back(std::bit_cast<double>(r.u64()));
    const uint32_t inner_size = r.u32();
    std::span<const uint8_t> inner = r.raw(inner_size);
    if (auto st = r.finish(); !st.ok())
        return st.error();
    if (blob_engine != name())
        return Error(ErrorCode::InvalidArgument,
                     strprintf("blob was serialized by engine %s",
                               blob_engine.c_str()))
            .withContext("engine", name());
    if (digest != patternSetDigest(set))
        return Error(ErrorCode::InvalidArgument,
                     "blob does not match the pattern set (guide set "
                     "or compile options changed)")
            .withContext("engine", name());
    // Bit-exact equality: the scored scan must reproduce the penalties
    // of the compile that produced this blob, so a weight table that
    // drifted by even one ULP is a stale entry.
    bool weights_match = blob_weights.size() == set.scoreWeights.size();
    for (size_t i = 0; weights_match && i < blob_weights.size(); ++i)
        weights_match = std::bit_cast<uint64_t>(blob_weights[i]) ==
                        std::bit_cast<uint64_t>(set.scoreWeights[i]);
    if (!weights_match)
        return Error(ErrorCode::InvalidArgument,
                     "blob score-weight table does not match the "
                     "pattern set")
            .withContext("engine", name());

    CompiledPattern compiled;
    compiled.kind = kind();
    compiled.set = std::make_shared<const PatternSet>(set);
    compiled.params = params;
    common::MetricsRegistry metrics;
    Stopwatch timer;
    auto state = deserializeStateImpl(set, params, inner, metrics);
    if (!state.ok())
        return state.error();
    compiled.state = std::move(state).value();
    compiled.compileSeconds = timer.seconds();
    metrics.gauge("compile.patterns")
        .set(static_cast<double>(set.patterns.size()));
    metrics.gauge("compile.seconds").set(compiled.compileSeconds);
    metrics.gauge("compile.from_database").set(1.0);
    metrics.mergeInto(compiled.metrics);
    return compiled;
}

} // namespace crispr::core
