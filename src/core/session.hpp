/**
 * @file
 * SearchSession: the compile-once unit of the search API. A session
 * owns a guide set and an LRU cache of compiled patterns keyed by
 * (engine, mismatch budget, PAM, strands, orientation), so repeated
 * search() calls against different genomes — or streamed chunks of one
 * huge genome — never recompile. This is the object a server loop
 * holds per client.
 *
 * @code
 *   core::SearchSession session(guides, config);
 *   auto chr1 = session.search(chr1_seq);   // compiles once
 *   auto chr2 = session.search(chr2_seq);   // cache hit
 *   std::ifstream fa("hg38.fa");
 *   auto all = session.searchStream(fa);    // chunked, O(chunk) memory
 * @endcode
 *
 * Thread-safety: the compile cache is internally locked; concurrent
 * search() calls on one session are safe and share compilations.
 *
 * Caching caveat: a CompiledPattern captures the EngineParams it was
 * compiled with. The cache key covers the compile-relevant fields
 * (hscan options, GPU chunk, CasOT indexing, full-sim limit); the
 * device-model specs (fpgaSpec, apSpec, gpuModel, apSimConfig,
 * casoffinderModel) are treated as deployment constants — call
 * clearCache() after changing them mid-session.
 */

#ifndef CRISPR_CORE_SESSION_HPP_
#define CRISPR_CORE_SESSION_HPP_

#include <iosfwd>
#include <list>
#include <memory>
#include <mutex>
#include <string>

#include "core/chunked_scan.hpp"
#include "core/search.hpp"

namespace crispr::core {

/** A compile-once search session over a fixed guide set. */
class SearchSession
{
  public:
    /** @param cacheCapacity compiled patterns kept (LRU evicted). */
    explicit SearchSession(std::vector<Guide> guides,
                           SearchConfig config = {},
                           size_t cache_capacity = 4);

    /** Search an in-memory genome with the session's config. */
    SearchResult search(const genome::Sequence &genome);

    /**
     * Search with a per-call config (same guide set). Recompiles only
     * when the config's cache key differs from every cached entry.
     */
    SearchResult search(const genome::Sequence &genome,
                        const SearchConfig &config);

    /**
     * Search a FASTA text stream chunk-by-chunk without materialising
     * the reference; hits are verified per chunk while its window is
     * resident. Chunk-capable (CPU) engines only (fatal otherwise).
     * Hit coordinates are concatenated-stream offsets, as produced by
     * genome::concatenateRecords (single-N record separators).
     */
    SearchResult searchStream(std::istream &fasta);
    SearchResult searchStream(std::istream &fasta,
                              const SearchConfig &config);

    const std::vector<Guide> &guides() const { return guides_; }
    const SearchConfig &config() const { return config_; }

    /** Pattern compilations performed (cache misses) so far. */
    size_t compileCount() const;
    /** search() calls served from the compile cache so far. */
    size_t cacheHits() const;

    /** Drop every cached compilation. */
    void clearCache();

  private:
    std::shared_ptr<const CompiledPattern>
    compiledFor(const SearchConfig &config, const Engine &engine);
    std::string cacheKey(const SearchConfig &config,
                         const Engine &engine) const;
    void annotate(EngineRun &run) const;

    std::vector<Guide> guides_;
    SearchConfig config_;
    size_t capacity_;

    mutable std::mutex mutex_;
    std::list<std::pair<std::string,
                        std::shared_ptr<const CompiledPattern>>>
        cache_; //!< front = most recently used
    size_t compiles_ = 0;
    size_t cacheHits_ = 0;
};

} // namespace crispr::core

#endif // CRISPR_CORE_SESSION_HPP_
