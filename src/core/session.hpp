/**
 * @file
 * SearchSession: the compile-once unit of the search API. A session
 * owns a guide set and an LRU cache of compiled patterns keyed by
 * (engine, mismatch budget, PAM, strands, orientation), so repeated
 * search() calls against different genomes — or streamed chunks of one
 * huge genome — never recompile. This is the object a server loop
 * holds per client.
 *
 * @code
 *   core::SearchSession session(guides, config);
 *   auto chr1 = session.search(chr1_seq);   // compiles once
 *   auto chr2 = session.search(chr2_seq);   // cache hit
 *   std::ifstream fa("hg38.fa");
 *   auto all = session.searchStream(fa);    // chunked, O(chunk) memory
 * @endcode
 *
 * Fault tolerance (DESIGN.md "Failure model"): the trySearch /
 * trySearchStream entry points never call fatal() for malformed input,
 * engine failure, or config errors — they return a typed
 * common::Error. A config's `fallbacks` list is tried in order when an
 * engine fails to compile or scan (the paper's cross-platform
 * degradation), the `deadline` bounds the scan cooperatively per
 * chunk, and `scanRetries` retries transient chunk failures. The
 * legacy search()/searchStream() wrappers throw the same errors as
 * ErrorException (a FatalError).
 *
 * Thread-safety: the compile cache is internally locked; concurrent
 * search() calls on one session are safe and share compilations.
 *
 * Caching caveat: a CompiledPattern captures the EngineParams it was
 * compiled with. The cache key covers the compile-relevant fields
 * (hscan options, GPU chunk, CasOT indexing, full-sim limit); the
 * device-model specs (fpgaSpec, apSpec, gpuModel, apSimConfig,
 * casoffinderModel) are treated as deployment constants — call
 * clearCache() after changing them mid-session.
 */

#ifndef CRISPR_CORE_SESSION_HPP_
#define CRISPR_CORE_SESSION_HPP_

#include <iosfwd>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/error.hpp"
#include "common/metrics.hpp"
#include "core/chunked_scan.hpp"
#include "core/search.hpp"

namespace crispr::core {

class PatternDatabase;

/** A compile-once search session over a fixed guide set. */
class SearchSession
{
  public:
    /** @param cache_capacity compiled patterns kept (LRU evicted). */
    explicit SearchSession(std::vector<Guide> guides,
                           SearchConfig config = {},
                           size_t cache_capacity = 4);

    /**
     * Search an in-memory genome with the session's config (or a
     * per-call one; recompiles only when the config's cache key
     * differs from every cached entry). The config's engine is tried
     * first, then each of config.fallbacks in order; the error of the
     * last engine is returned when every one fails. A timed-out search
     * succeeds with partial hits and result.timedOut set.
     */
    common::Expected<SearchResult>
    trySearch(const genome::Sequence &genome);
    common::Expected<SearchResult>
    trySearch(const genome::Sequence &genome,
              const SearchConfig &config);

    /**
     * Search a FASTA text stream chunk-by-chunk without materialising
     * the reference; hits are verified per chunk while its window is
     * resident. Chunk-capable (CPU) engines only — a device-model
     * engine falls through to the next chunk-capable fallback, or
     * returns UnsupportedEngine. Engine fallback applies only to
     * failures before the stream is consumed (lookup, capability,
     * compile); a mid-stream scan or parse failure is returned as-is
     * since the stream cannot be rewound. Hit coordinates are
     * concatenated-stream offsets, as produced by
     * genome::concatenateRecords (single-N record separators).
     */
    common::Expected<SearchResult> trySearchStream(std::istream &fasta);
    common::Expected<SearchResult>
    trySearchStream(std::istream &fasta, const SearchConfig &config);

    /** Throwing wrappers over the try* APIs (ErrorException). */
    SearchResult search(const genome::Sequence &genome);
    SearchResult search(const genome::Sequence &genome,
                        const SearchConfig &config);
    SearchResult searchStream(std::istream &fasta);
    SearchResult searchStream(std::istream &fasta,
                              const SearchConfig &config);

    const std::vector<Guide> &guides() const { return guides_; }
    const SearchConfig &config() const { return config_; }

    /** Pattern compilations performed (cache misses) so far. */
    size_t compileCount() const;
    /** search() calls served from the compile cache so far. */
    size_t cacheHits() const;
    /** Compilations loaded from the on-disk pattern database so far. */
    size_t databaseHits() const;
    /** Disk-tier lookups that fell through to a fresh compile. */
    size_t databaseMisses() const;
    /** Compile/scan failures recorded against one engine so far. */
    size_t engineFailures(EngineKind kind) const;

    /**
     * Snapshot of the session's cumulative metrics (session.compiles,
     * session.cache_hits, session.db_hits, session.db_misses,
     * session.db_store_failures, session.db_load_seconds.*,
     * session.engine_auto.<choice>, session.failures.<name>, and the
     * breaker board's session.breaker.<engine>.*), as merged into
     * every run's metric map.
     */
    std::map<std::string, double> metricsSnapshot() const;

    /**
     * The per-engine circuit breaker board guarding this session's
     * fallback chain: config.breakers when the constructor config
     * carried one (SearchService's shared board), else a private board
     * created by the constructor. Never null.
     */
    const std::shared_ptr<CircuitBreakerBoard> &
    breakers() const
    {
        return breakers_;
    }

    /** Drop every cached compilation. */
    void clearCache();

  private:
    common::Expected<std::shared_ptr<const CompiledPattern>>
    compiledFor(const SearchConfig &config, const Engine &engine);
    common::Expected<EngineRun>
    scanWith(const Engine &engine,
             const std::shared_ptr<const CompiledPattern> &compiled,
             const genome::Sequence &genome,
             const SearchConfig &config) const;
    /** Compile cache key: engine name + compileOptionsKey(options). */
    std::string cacheKey(const CompileOptions &options,
                         const Engine &engine) const;
    /**
     * Disk-tier key: the cache key plus the guide-set digest, so one
     * database directory can serve many sessions and guide sets.
     */
    std::string databaseKey(const CompileOptions &options,
                            const Engine &engine) const;
    /**
     * config.engine then config.fallbacks, deduplicated in order.
     * EngineKind::Auto is expanded in place into the cost model's
     * ranked CPU chain (engine_auto.hpp), counting the first choice in
     * `session.engine_auto.<name>`.
     */
    std::vector<EngineKind>
    engineChain(const SearchConfig &config) const;
    /** The board serving `config`: its own, else the session's. */
    CircuitBreakerBoard &boardFor(const SearchConfig &config) const;
    void recordEngineFailure(const char *name);
    void annotate(EngineRun &run) const;
    ChunkedScanOptions chunkOptions(const SearchConfig &config) const;

    std::vector<Guide> guides_;
    SearchConfig config_;
    size_t capacity_;

    mutable std::mutex mutex_; //!< guards cache_ only
    std::list<std::pair<std::string,
                        std::shared_ptr<const CompiledPattern>>>
        cache_; //!< front = most recently used

    /**
     * Session-lifetime observability: the registry is internally
     * synchronized, so counters are bumped without mutex_ and
     * annotate() merges a snapshot into every run's metric map.
     */
    mutable common::MetricsRegistry metrics_;
    common::Counter compiles_;
    common::Counter cacheHits_;
    common::Counter dbHits_;
    common::Counter dbMisses_;
    common::Counter dbStoreFailures_;

    std::shared_ptr<CircuitBreakerBoard> breakers_;
};

} // namespace crispr::core

#endif // CRISPR_CORE_SESSION_HPP_
