/**
 * @file
 * Off-target hits: engine-independent, forward-genome-coordinate
 * results. Raw engine events ((pattern id, stream end index)) are
 * converted here, with the mismatch count recomputed against the
 * genome so every engine reports identical, verified hits.
 */

#ifndef CRISPR_CORE_OFFTARGET_HPP_
#define CRISPR_CORE_OFFTARGET_HPP_

#include <compare>
#include <cstdint>
#include <string>
#include <vector>

#include "automata/interp.hpp"
#include "core/compile.hpp"
#include "genome/sequence.hpp"

namespace crispr::core {

/** One off-target site. */
struct OffTargetHit
{
    uint32_t guide;     //!< guide index in the search's guide list
    Strand strand;
    uint64_t start;     //!< forward-genome offset of the site's first base
    int mismatches;     //!< Hamming distance within the protospacer

    /**
     * Mismatching protospacer positions in guide coordinates (bit p =
     * 0-based position p, 0 = PAM-distal), filled in-scan during hit
     * verification. Equals hitMismatchPositions() folded to a mask
     * (tested); 0 for a perfect site.
     */
    uint64_t mismatchMask = 0;

    /**
     * Position-weighted site penalty (MIT/Hsu-style), bit-identical to
     * post-hoc sitePenalty() on this hit's mismatch positions
     * (tested). 1.0 for a perfect site; 0.0 only when scoring was
     * disabled (ExecutionOptions::inScanScores = false).
     */
    double penalty = 0.0;

    auto operator<=>(const OffTargetHit &) const = default;
};

/**
 * Ranked-report order: penalty descending (most dangerous site
 * first), ties broken by (guide, start, strand) ascending. A total
 * order over verified hits (penalties are never NaN), so ranked
 * output is deterministic and bit-stable across shard counts and
 * chunk geometry.
 */
bool rankedHitBefore(const OffTargetHit &a, const OffTargetHit &b);

/**
 * Derive the ranked listing from a hit list: keep hits with
 * penalty >= score_threshold, order by rankedHitBefore, and truncate
 * to the top_k most dangerous (top_k = 0 keeps all). Equivalent to
 * filter-after-full-search by construction (tested by the scoring
 * conformance tier).
 */
std::vector<OffTargetHit> rankHits(const std::vector<OffTargetHit> &hits,
                                   double score_threshold, size_t top_k);

/**
 * Convert engine events to hits. Events carry the pattern id; the
 * pattern's stream orientation decides the coordinate mapping:
 *  - forward stream: start = end - len + 1
 *  - reversed stream: start = genome_len - 1 - end
 * The mismatch count is recomputed against the forward genome; events
 * that fail re-verification raise PanicError (an engine bug) unless
 * `drop_unverified` is set (used for the AP counter design, whose
 * shared-counter overlap artefacts can produce spurious events; the
 * count of dropped events is returned via `dropped`).
 *
 * The result is sorted by (guide, start, strand) and deduplicated.
 *
 * With `with_scores` (the default) each verified hit also carries its
 * mismatch-position mask and precomputed site penalty, derived from
 * the same verification walk — this is the in-scan scoring path every
 * engine (and the per-chunk streamed path) funnels through. The
 * weight table comes from the compiled set (PatternSet::scoreWeights)
 * when present, else from scoreWeightTable(). `with_scores = false`
 * (the boolean baseline) leaves mask/penalty at 0.
 */
std::vector<OffTargetHit>
hitsFromEvents(const genome::Sequence &genome, const PatternSet &set,
               const std::vector<automata::ReportEvent> &events,
               bool drop_unverified = false, size_t *dropped = nullptr,
               bool with_scores = true);

/** The site sequence of a hit as it reads 5'->3' on its strand. */
std::string hitSiteString(const genome::Sequence &genome,
                          const PatternSet &set, const OffTargetHit &hit);

/**
 * Aligned annotation of a hit against its guide: upper case where the
 * site matches the guide pattern, lower case at mismatching positions
 * (the CasOFFinder output convention).
 */
std::string hitAlignmentString(const genome::Sequence &genome,
                               const PatternSet &set,
                               const OffTargetHit &hit);

} // namespace crispr::core

#endif // CRISPR_CORE_OFFTARGET_HPP_
