/**
 * @file
 * Off-target hits: engine-independent, forward-genome-coordinate
 * results. Raw engine events ((pattern id, stream end index)) are
 * converted here, with the mismatch count recomputed against the
 * genome so every engine reports identical, verified hits.
 */

#ifndef CRISPR_CORE_OFFTARGET_HPP_
#define CRISPR_CORE_OFFTARGET_HPP_

#include <compare>
#include <cstdint>
#include <string>
#include <vector>

#include "automata/interp.hpp"
#include "core/compile.hpp"
#include "genome/sequence.hpp"

namespace crispr::core {

/** One off-target site. */
struct OffTargetHit
{
    uint32_t guide;     //!< guide index in the search's guide list
    Strand strand;
    uint64_t start;     //!< forward-genome offset of the site's first base
    int mismatches;     //!< Hamming distance within the protospacer

    auto operator<=>(const OffTargetHit &) const = default;
};

/**
 * Convert engine events to hits. Events carry the pattern id; the
 * pattern's stream orientation decides the coordinate mapping:
 *  - forward stream: start = end - len + 1
 *  - reversed stream: start = genome_len - 1 - end
 * The mismatch count is recomputed against the forward genome; events
 * that fail re-verification raise PanicError (an engine bug) unless
 * `drop_unverified` is set (used for the AP counter design, whose
 * shared-counter overlap artefacts can produce spurious events; the
 * count of dropped events is returned via `dropped`).
 *
 * The result is sorted by (guide, start, strand) and deduplicated.
 */
std::vector<OffTargetHit>
hitsFromEvents(const genome::Sequence &genome, const PatternSet &set,
               const std::vector<automata::ReportEvent> &events,
               bool drop_unverified = false, size_t *dropped = nullptr);

/** The site sequence of a hit as it reads 5'->3' on its strand. */
std::string hitSiteString(const genome::Sequence &genome,
                          const PatternSet &set, const OffTargetHit &hit);

/**
 * Aligned annotation of a hit against its guide: upper case where the
 * site matches the guide pattern, lower case at mismatching positions
 * (the CasOFFinder output convention).
 */
std::string hitAlignmentString(const genome::Sequence &genome,
                               const PatternSet &set,
                               const OffTargetHit &hit);

} // namespace crispr::core

#endif // CRISPR_CORE_OFFTARGET_HPP_
